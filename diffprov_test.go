package diffprov_test

import (
	"errors"
	"testing"

	diffprov "repro"
)

// The public-API smoke test: the SDN1 scenario expressed purely through
// the facade, as a downstream user would write it.
const model = `
table flowEntry/3 base mutable;
table packet/1 event base;

rule fw packet(@Nxt, Dst) :-
    packet(@Sw, Dst),
    flowEntry(@Sw, Prio, M, Nxt),
    matches(Dst, M),
    argmax Prio.
`

func TestPublicAPIQuickstart(t *testing.T) {
	prog := diffprov.MustParse(model)
	sess := diffprov.NewSession(prog)
	fe := func(prio int64, m, nxt string) diffprov.Tuple {
		return diffprov.NewTuple("flowEntry",
			diffprov.Int(prio), diffprov.MustParsePrefix(m), diffprov.Str(nxt))
	}
	pkt := func(ip string) diffprov.Tuple {
		return diffprov.NewTuple("packet", diffprov.MustParseIP(ip))
	}
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(sess.Insert("s1", fe(10, "4.3.2.0/24", "good"), 0))
	must(sess.Insert("s1", fe(1, "0.0.0.0/0", "bad"), 0))
	must(sess.Insert("s1", pkt("4.3.2.1"), 10))
	must(sess.Insert("s1", pkt("4.3.3.1"), 20))
	must(sess.Run())

	_, g, err := sess.Graph()
	if err != nil {
		t.Fatal(err)
	}
	good := g.Tree(g.LastAppear("good", pkt("4.3.2.1")).ID)
	bad := g.Tree(g.LastAppear("bad", pkt("4.3.3.1")).ID)
	world, err := diffprov.NewWorld(sess)
	if err != nil {
		t.Fatal(err)
	}
	res, err := diffprov.Diagnose(good, bad, world, diffprov.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Changes) != 1 {
		t.Fatalf("Δ = %v, want 1", res.Changes)
	}
	want := fe(10, "4.3.2.0/23", "good")
	if !res.Changes[0].Tuple.Equal(want) {
		t.Fatalf("change = %s, want %s", res.Changes[0].Tuple, want)
	}
}

func TestPublicAPIErrorTypes(t *testing.T) {
	prog := diffprov.MustParse(model)
	sess := diffprov.NewSession(prog)
	pkt := func(ip string) diffprov.Tuple {
		return diffprov.NewTuple("packet", diffprov.MustParseIP(ip))
	}
	fe := diffprov.NewTuple("flowEntry",
		diffprov.Int(1), diffprov.MustParsePrefix("0.0.0.0/0"), diffprov.Str("h"))
	if err := sess.Insert("s1", fe, 0); err != nil {
		t.Fatal(err)
	}
	if err := sess.Insert("s1", pkt("1.1.1.1"), 5); err != nil {
		t.Fatal(err)
	}
	if err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	_, g, err := sess.Graph()
	if err != nil {
		t.Fatal(err)
	}
	// A flow entry as reference for a packet: seed type mismatch.
	good := g.Tree(g.LastAppear("s1", fe).ID)
	bad := g.Tree(g.LastAppear("h", pkt("1.1.1.1")).ID)
	world, err := diffprov.NewWorld(sess)
	if err != nil {
		t.Fatal(err)
	}
	_, derr := diffprov.Diagnose(good, bad, world, diffprov.Options{})
	var de *diffprov.DiagnosisError
	if !errors.As(derr, &de) {
		t.Fatalf("error = %v, want *DiagnosisError", derr)
	}
	if de.Kind != diffprov.SeedTypeMismatch {
		t.Errorf("kind = %v, want SeedTypeMismatch", de.Kind)
	}
}

func TestRuntimeModeOption(t *testing.T) {
	sess := diffprov.NewSession(diffprov.MustParse(model), diffprov.WithRuntimeProvenance())
	if err := sess.Insert("s1", diffprov.NewTuple("packet", diffprov.IP(1)), 0); err != nil {
		t.Fatal(err)
	}
	if err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	_, g, err := sess.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertexes() == 0 {
		t.Error("runtime mode should capture provenance live")
	}
}

func TestFacadeValueHelpers(t *testing.T) {
	if _, err := diffprov.Parse("table t/1 base;"); err != nil {
		t.Fatal(err)
	}
	if _, err := diffprov.Parse("garbage"); err == nil {
		t.Error("Parse must propagate errors")
	}
	if ip, err := diffprov.ParseIP("1.2.3.4"); err != nil || ip != diffprov.MustParseIP("1.2.3.4") {
		t.Error("ParseIP facade broken")
	}
	if _, err := diffprov.ParseIP("x"); err == nil {
		t.Error("ParseIP must propagate errors")
	}
	if p, err := diffprov.ParsePrefix("10.0.0.0/8"); err != nil || p != diffprov.MustParsePrefix("10.0.0.0/8") {
		t.Error("ParsePrefix facade broken")
	}
	if _, err := diffprov.ParsePrefix("x"); err == nil {
		t.Error("ParsePrefix must propagate errors")
	}
	tu := diffprov.NewTuple("t", diffprov.Int(1), diffprov.Str("x"), diffprov.Bool(true), diffprov.ID(7))
	if tu.Table != "t" || len(tu.Args) != 4 {
		t.Error("NewTuple facade broken")
	}
}

func TestFacadeBuilder(t *testing.T) {
	spec := diffprov.MustParse(`
table in/1 base;
table out/1;
rule r out(X) :- in(X).
`)
	b := diffprov.NewBuilder(spec)
	at, err := b.Insert("n", diffprov.NewTuple("in", diffprov.Int(1)), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Derive("r", "n", diffprov.NewTuple("out", diffprov.Int(1)), 1, nil, 0); err == nil {
		t.Error("empty body must fail")
	}
	if _, err := b.Derive("r", "n", diffprov.NewTuple("out", diffprov.Int(1)), 1, []diffprov.At{at}, 0); err != nil {
		t.Errorf("valid derive: %v", err)
	}
}

func TestFacadeCheckpointOption(t *testing.T) {
	sess := diffprov.NewSession(diffprov.MustParse(model), diffprov.WithCheckpointEvery(1))
	if err := sess.Insert("s1", diffprov.NewTuple("flowEntry",
		diffprov.Int(1), diffprov.MustParsePrefix("0.0.0.0/0"), diffprov.Str("h")), 5); err != nil {
		t.Fatal(err)
	}
	if err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	if len(sess.Checkpoints()) == 0 {
		t.Error("checkpoint option not applied")
	}
}

func TestFacadeAutoDiagnose(t *testing.T) {
	prog := diffprov.MustParse(model)
	sess := diffprov.NewSession(prog)
	fe := func(prio int64, m, nxt string) diffprov.Tuple {
		return diffprov.NewTuple("flowEntry",
			diffprov.Int(prio), diffprov.MustParsePrefix(m), diffprov.Str(nxt))
	}
	pkt := func(ip string) diffprov.Tuple {
		return diffprov.NewTuple("packet", diffprov.MustParseIP(ip))
	}
	sess.Insert("s1", fe(10, "4.3.2.0/24", "good"), 0)
	sess.Insert("s1", fe(1, "0.0.0.0/0", "bad"), 0)
	sess.Insert("s1", pkt("4.3.2.1"), 10)
	sess.Insert("s1", pkt("4.3.3.1"), 20)
	if err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	_, g, err := sess.Graph()
	if err != nil {
		t.Fatal(err)
	}
	bad := g.Tree(g.LastAppear("bad", pkt("4.3.3.1")).ID)
	world, err := diffprov.NewWorld(sess)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := diffprov.FindReferenceCandidates(bad, world, 5)
	if err != nil || len(cands) == 0 {
		t.Fatalf("candidates: %v, %v", cands, err)
	}
	res, ref, err := diffprov.AutoDiagnose(bad, world, diffprov.Options{Minimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if ref == nil || len(res.Changes) != 1 {
		t.Fatalf("autodiagnose = %v / %v", res.Changes, ref)
	}
}
