// Package diffprov is a Go implementation of differential provenance, the
// network diagnostic technique of "The Good, the Bad, and the
// Differences: Better Network Diagnostics with Differential Provenance"
// (SIGCOMM 2016).
//
// Classical provenance answers "why did this event happen?" with a
// complete — and often overwhelming — causal explanation. Differential
// provenance instead takes a reference event (a similar event that
// produced the correct outcome) and reasons about the differences between
// the two provenance trees, returning a small set of changes to mutable
// configuration state — often a single tuple — that explains the
// divergence: the estimated root cause.
//
// The package re-exports the supported surface of the implementation:
//
//   - the NDlog declarative engine (tuples, rules, programs) that models
//     the diagnosed system,
//   - the temporal provenance graph and tree queries,
//   - the logging/replay session that captures executions,
//   - the DiffProv reasoning engine itself,
//   - the SDN and MapReduce substrates and the paper's case studies.
//
// A minimal diagnosis looks like this:
//
//	prog := diffprov.MustParse(modelSource)
//	sess := diffprov.NewSession(prog)
//	// ... drive the system: sess.Insert / sess.Delete / sess.Run ...
//	_, graph, _ := sess.Graph()
//	good := graph.Tree(graph.LastAppear("host1", goodTuple).ID)
//	bad := graph.Tree(graph.LastAppear("host2", badTuple).ID)
//	world, _ := diffprov.NewWorld(sess)
//	res, err := diffprov.Diagnose(good, bad, world, diffprov.Options{})
//	// res.Changes is Δ(B→G): the root cause estimate.
//
// See the examples directory for complete programs, and DESIGN.md /
// EXPERIMENTS.md for the mapping to the paper's evaluation.
package diffprov

import (
	"context"

	"repro/internal/core"
	"repro/internal/ndlog"
	"repro/internal/provenance"
	"repro/internal/replay"
)

// ---- Declarative system model (NDlog) ----

// Value is a runtime value held in a tuple field.
type Value = ndlog.Value

// Convenience value constructors and types.
type (
	// Int is a 64-bit integer value.
	Int = ndlog.Int
	// Str is a string value.
	Str = ndlog.Str
	// Bool is a boolean value.
	Bool = ndlog.Bool
	// IP is an IPv4 address value.
	IP = ndlog.IP
	// Prefix is an IPv4 CIDR prefix value.
	Prefix = ndlog.Prefix
	// ID is an opaque identifier (checksum, version) value.
	ID = ndlog.ID
)

// Tuple is a row of a table: the unit of system state and events.
type Tuple = ndlog.Tuple

// Program is a set of table declarations and NDlog rules.
type Program = ndlog.Program

// Engine evaluates a program over a simulated distributed system.
type Engine = ndlog.Engine

// Stamp is a logical timestamp.
type Stamp = ndlog.Stamp

// At is a located, timestamped tuple occurrence (used when reporting
// provenance from instrumented systems).
type At = ndlog.At

// NewTuple constructs a tuple.
func NewTuple(table string, args ...Value) Tuple { return ndlog.NewTuple(table, args...) }

// Parse parses an NDlog program from source text.
func Parse(src string) (*Program, error) { return ndlog.Parse(src) }

// MustParse is Parse that panics on error.
func MustParse(src string) *Program { return ndlog.MustParse(src) }

// ParseIP parses dotted-quad IPv4 notation.
func ParseIP(s string) (IP, error) { return ndlog.ParseIP(s) }

// MustParseIP is ParseIP that panics on error.
func MustParseIP(s string) IP { return ndlog.MustParseIP(s) }

// ParsePrefix parses "a.b.c.d/len" notation.
func ParsePrefix(s string) (Prefix, error) { return ndlog.ParsePrefix(s) }

// MustParsePrefix is ParsePrefix that panics on error.
func MustParsePrefix(s string) Prefix { return ndlog.MustParsePrefix(s) }

// Hash64 is the deterministic hash used by the hash/hashmod builtins.
func Hash64(v Value) uint64 { return ndlog.Hash64(v) }

// ---- Provenance ----

// Graph is the temporal provenance graph (INSERT, DELETE, EXIST, DERIVE,
// UNDERIVE, APPEAR, DISAPPEAR).
type Graph = provenance.Graph

// Tree is a provenance tree projected from the graph.
type Tree = provenance.Tree

// Vertex is one provenance graph vertex.
type Vertex = provenance.Vertex

// Builder reports provenance from instrumented (non-declarative) systems.
type Builder = provenance.Builder

// NewBuilder creates a reported-provenance builder over a specification
// program.
func NewBuilder(spec *Program) *Builder { return provenance.NewBuilder(spec) }

// ---- Logging and replay ----

// Session couples a live engine with the logging and replay engines.
type Session = replay.Session

// Log is an append-only base-event log.
type Log = replay.Log

// Change is a counterfactual base-tuple change (insert or delete).
type Change = replay.Change

// NewSession creates a session for a program.
func NewSession(prog *Program, opts ...replay.SessionOption) *Session {
	return replay.NewSession(prog, opts...)
}

// WithRuntimeProvenance selects the runtime capture mode (log every
// derivation); the default is query-time capture via replay.
func WithRuntimeProvenance() replay.SessionOption { return replay.WithMode(replay.Runtime) }

// WithCheckpointEvery enables periodic state checkpoints.
func WithCheckpointEvery(ticks int64) replay.SessionOption {
	return replay.WithCheckpointEvery(ticks)
}

// WithEagerAggregates materializes full contributor lists on every
// aggregate derivation at record time instead of folding delta chains
// lazily. The default (lazy) yields identical trees and diagnoses at
// O(1) recording cost per update; eager mode is the reference side of
// the fold-differential tests.
func WithEagerAggregates(on bool) replay.SessionOption {
	return replay.WithEagerAggregates(on)
}

// ---- The DiffProv reasoning engine ----

// World is the bad execution as DiffProv sees it.
type World = core.World

// Options configure the DiffProv algorithm.
type Options = core.Options

// Result is the output of a diagnosis: Changes is Δ(B→G).
type Result = core.Result

// Timings decomposes the reasoning time (the paper's Figure 8).
type Timings = core.Timings

// DiagnosisError reports why a diagnosis failed (§4.7), with attempted
// changes as diagnostic clues.
type DiagnosisError = core.DiagnosisError

// FailureKind classifies diagnosis failures.
type FailureKind = core.FailureKind

// The failure kinds.
const (
	SeedTypeMismatch = core.SeedTypeMismatch
	ImmutableChange  = core.ImmutableChange
	NonInvertible    = core.NonInvertible
	NoProgress       = core.NoProgress
)

// NewWorld wraps a replay session as a diagnosable world.
func NewWorld(s *Session) (World, error) { return core.NewWorld(s) }

// Diagnose runs the DiffProv algorithm: given the good and bad provenance
// trees and the bad execution's world, it returns the set of changes to
// mutable base tuples that aligns the trees — the root cause estimate.
func Diagnose(good, bad *Tree, world World, opts Options) (*Result, error) {
	return core.Diagnose(context.Background(), good, bad, world, opts)
}

// DiagnoseContext is Diagnose honoring the context's cancellation and
// deadline: the diagnosis aborts between rounds and inside counterfactual
// replays, returning the context's error (wrapped).
func DiagnoseContext(ctx context.Context, good, bad *Tree, world World, opts Options) (*Result, error) {
	return core.Diagnose(ctx, good, bad, world, opts)
}

// AutoDiagnose diagnoses a bad event without an operator-supplied
// reference, mining candidate references from the execution itself (the
// automation the paper sketches in §4.9). It returns the result and the
// reference tree that produced it.
func AutoDiagnose(bad *Tree, world World, opts Options) (*Result, *Tree, error) {
	return core.AutoDiagnose(context.Background(), bad, world, opts)
}

// AutoDiagnoseContext is AutoDiagnose honoring the context's cancellation
// and deadline.
func AutoDiagnoseContext(ctx context.Context, bad *Tree, world World, opts Options) (*Result, *Tree, error) {
	return core.AutoDiagnose(ctx, bad, world, opts)
}

// ReferenceCandidate is a mined reference candidate.
type ReferenceCandidate = core.Candidate

// FindReferenceCandidates mines and ranks reference candidates for a bad
// tree from the world's provenance.
func FindReferenceCandidates(bad *Tree, world World, limit int) ([]ReferenceCandidate, error) {
	return core.FindReferenceCandidates(bad, world, limit)
}
