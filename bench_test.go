// Benchmarks regenerating the paper's evaluation (one bench per table and
// figure, plus ablations of the design choices DESIGN.md calls out). Run:
//
//	go test -bench=. -benchmem
package diffprov_test

import (
	"fmt"
	"testing"

	diffprov "repro"
	"repro/internal/evaluation"
	"repro/internal/failures"
	"repro/internal/mapreduce"
	"repro/internal/ndlog"
	"repro/internal/provenance"
	"repro/internal/replay"
	"repro/internal/scenarios"
	"repro/internal/stanford"
	"repro/internal/trace"
	"repro/internal/treediff"
)

// BenchmarkTable1 runs each diagnostic scenario end to end (build, query
// both trees, diagnose) — the workload behind Table 1.
func BenchmarkTable1(b *testing.B) {
	for _, name := range scenarios.Names() {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := scenarios.Build(name, scenarios.Small)
				if err != nil {
					b.Fatal(err)
				}
				res, err := s.Diagnose()
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Changes) == 0 {
					b.Fatal("no changes")
				}
			}
		})
	}
}

// BenchmarkFig5LoggingRate measures log encoding throughput per traffic
// rate (Figure 5's underlying cost).
func BenchmarkFig5LoggingRate(b *testing.B) {
	for _, rate := range []float64{1e6, 1e8, 1e10} {
		b.Run(fmt.Sprintf("rate=%.0e", rate), func(b *testing.B) {
			g := trace.New(trace.Config{Seed: 50, RateBps: rate, PacketSize: 500})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bps, err := g.LoggingRate(2000)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(bps, "logbytes/sec")
			}
		})
	}
}

// BenchmarkFig6PacketSize measures the log rate per packet size at 1 Gbps.
func BenchmarkFig6PacketSize(b *testing.B) {
	for _, size := range []int{500, 1000, 1500} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			g := trace.New(trace.Config{Seed: 60, RateBps: 1e9, PacketSize: size})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bps, err := g.LoggingRate(2000)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(bps, "logbytes/sec")
			}
		})
	}
}

// BenchmarkFig7Turnaround measures the full differential query (DiffProv
// side of Figure 7) against prebuilt scenarios.
func BenchmarkFig7Turnaround(b *testing.B) {
	for _, name := range scenarios.Names() {
		s, err := scenarios.Build(name, scenarios.Small)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.Diagnose(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig7YBang measures the Y!-style single-tree baseline.
func BenchmarkFig7YBang(b *testing.B) {
	for _, name := range []string{"SDN1", "SDN4", "MR1-D"} {
		s, err := scenarios.Build(name, scenarios.Small)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := s.BadSession.Replay(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig8Reasoning isolates DiffProv's pure reasoning time (Figure
// 8): the replay (UpdateTree) portion is subtracted via the timings.
func BenchmarkFig8Reasoning(b *testing.B) {
	for _, name := range scenarios.Names() {
		s, err := scenarios.Build(name, scenarios.Small)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			var reasoning float64
			for i := 0; i < b.N; i++ {
				res, err := s.Diagnose()
				if err != nil {
					b.Fatal(err)
				}
				t := res.Timings
				reasoning += float64((t.FindSeed + t.Divergence + t.MakeAppear).Nanoseconds())
			}
			b.ReportMetric(reasoning/float64(b.N), "reasoning-ns/op")
		})
	}
}

// BenchmarkLoggingLatencySDN measures the §6.4 per-packet logging cost.
func BenchmarkLoggingLatencySDN(b *testing.B) {
	prog := diffprov.MustParse(`
table flowEntry/3 base mutable;
table packet/1 event base;
rule fw packet(@Nxt, Dst) :-
    packet(@Sw, Dst), flowEntry(@Sw, Prio, M, Nxt), matches(Dst, M), argmax Prio.
`)
	fe := diffprov.NewTuple("flowEntry", diffprov.Int(1), diffprov.MustParsePrefix("0.0.0.0/0"), diffprov.Str("h"))
	gen := trace.New(trace.Config{Seed: 70})
	pkts := gen.Packets(4096)
	b.Run("logged", func(b *testing.B) {
		s := diffprov.NewSession(prog)
		if err := s.Insert("s1", fe, 0); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := pkts[i%len(pkts)]
			if err := s.Insert("s1", diffprov.NewTuple("packet", p.Dst), int64(i+1)); err != nil {
				b.Fatal(err)
			}
			if err := s.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bare", func(b *testing.B) {
		e := ndlog.New(ndlog.MustParse(`
table flowEntry/3 base mutable;
table packet/1 event base;
rule fw packet(@Nxt, Dst) :-
    packet(@Sw, Dst), flowEntry(@Sw, Prio, M, Nxt), matches(Dst, M), argmax Prio.
`), nil)
		if err := e.ScheduleInsert("s1", ndlog.NewTuple("flowEntry", ndlog.Int(1), ndlog.MustParsePrefix("0.0.0.0/0"), ndlog.Str("h")), 0); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := pkts[i%len(pkts)]
			if err := e.ScheduleInsert("s1", ndlog.NewTuple("packet", p.Dst), int64(i+1)); err != nil {
				b.Fatal(err)
			}
			if err := e.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLoggingLatencyMR measures the §6.4 job overheads: provenance
// off, on with cached checksums, and on with per-record checksums.
func BenchmarkLoggingLatencyMR(b *testing.B) {
	f := mapreduce.ParseInput("bench.txt", benchCorpus())
	cases := []struct {
		name                string
		recompute, disabled bool
	}{
		{"provenance-off", false, true},
		{"cached-checksums", false, false},
		{"per-record-checksums", true, false},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				j := mapreduce.NewJob("bench", f, 2, 4, mapreduce.GoodMapper)
				j.RecomputeChecksums = c.recompute
				j.DisableProvenance = c.disabled
				if _, err := j.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchCorpus() string {
	out := ""
	for i := 0; i < 64; i++ {
		out += "alpha beta gamma delta epsilon zeta eta theta\n"
	}
	return out
}

// BenchmarkStanford runs the §6.7 diagnosis at increasing scale.
func BenchmarkStanford(b *testing.B) {
	for _, entries := range []int{1000, 4000} {
		b.Run(fmt.Sprintf("entries=%d", entries), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bb, err := stanford.Build(stanford.Config{
					Seed: 7, ForwardingEntries: entries, ACLRules: 100, BackgroundPackets: 200,
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := bb.Diagnose()
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Changes) != 1 {
					b.Fatal("wrong diagnosis")
				}
			}
		})
	}
}

// BenchmarkAblationArgmax compares the argmax (priority-select) rule
// against a derive-all variant: the cost of OpenFlow semantics in the
// engine (DESIGN.md ablation).
func BenchmarkAblationArgmax(b *testing.B) {
	run := func(b *testing.B, src string) {
		prog := ndlog.MustParse(src)
		gen := trace.New(trace.Config{Seed: 80})
		pkts := gen.Packets(2048)
		e := ndlog.New(prog, nil)
		for p := 0; p < 64; p++ {
			pfx := ndlog.Prefix{Addr: ndlog.IP(uint32(p) << 24), Bits: 8}
			if err := e.ScheduleInsert("s1", ndlog.NewTuple("flowEntry", ndlog.Int(int64(p)), pfx, ndlog.Str("h")), 0); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := pkts[i%len(pkts)]
			if err := e.ScheduleInsert("s1", ndlog.NewTuple("packet", p.Dst), int64(i+1)); err != nil {
				b.Fatal(err)
			}
			if err := e.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("argmax", func(b *testing.B) {
		run(b, `
table flowEntry/3 base mutable;
table packet/1 event base;
table out/2 event;
rule fw out(Dst, Nxt) :- packet(@Sw, Dst), flowEntry(@Sw, Prio, M, Nxt), matches(Dst, M), argmax Prio.
`)
	})
	b.Run("derive-all", func(b *testing.B) {
		run(b, `
table flowEntry/3 base mutable;
table packet/1 event base;
table out/2 event;
rule fw out(Dst, Nxt) :- packet(@Sw, Dst), flowEntry(@Sw, Prio, M, Nxt), matches(Dst, M).
`)
	})
}

// BenchmarkAblationRuntimeVsQuerytime compares the two provenance capture
// modes (§5): runtime capture pays per event; query-time capture pays at
// query time via replay.
func BenchmarkAblationRuntimeVsQuerytime(b *testing.B) {
	prog := diffprov.MustParse(`
table flowEntry/3 base mutable;
table packet/1 event base;
rule fw packet(@Nxt, Dst) :-
    packet(@Sw, Dst), flowEntry(@Sw, Prio, M, Nxt), matches(Dst, M), argmax Prio.
`)
	gen := trace.New(trace.Config{Seed: 81})
	pkts := gen.Packets(512)
	drive := func(s *diffprov.Session) error {
		if err := s.Insert("s1", diffprov.NewTuple("flowEntry",
			diffprov.Int(1), diffprov.MustParsePrefix("0.0.0.0/0"), diffprov.Str("h")), 0); err != nil {
			return err
		}
		for i, p := range pkts {
			if err := s.Insert("s1", diffprov.NewTuple("packet", p.Dst), int64(i+1)); err != nil {
				return err
			}
		}
		if err := s.Run(); err != nil {
			return err
		}
		_, _, err := s.Graph() // one provenance query
		return err
	}
	b.Run("querytime", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := drive(diffprov.NewSession(prog)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("runtime", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := drive(diffprov.NewSession(prog, diffprov.WithRuntimeProvenance())); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationCheckpointSpacing sweeps the checkpoint interval: the
// cost of state snapshots during the live run.
func BenchmarkAblationCheckpointSpacing(b *testing.B) {
	prog := diffprov.MustParse(`
table flowEntry/3 base mutable;
table packet/1 event base;
rule fw packet(@Nxt, Dst) :-
    packet(@Sw, Dst), flowEntry(@Sw, Prio, M, Nxt), matches(Dst, M), argmax Prio.
`)
	gen := trace.New(trace.Config{Seed: 82})
	pkts := gen.Packets(512)
	for _, every := range []int64{0, 64, 16} {
		name := fmt.Sprintf("every=%d", every)
		if every == 0 {
			name = "disabled"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var s *diffprov.Session
				if every == 0 {
					s = diffprov.NewSession(prog)
				} else {
					s = diffprov.NewSession(prog, diffprov.WithCheckpointEvery(every))
				}
				if err := s.Insert("s1", diffprov.NewTuple("flowEntry",
					diffprov.Int(1), diffprov.MustParsePrefix("0.0.0.0/0"), diffprov.Str("h")), 0); err != nil {
					b.Fatal(err)
				}
				for j, p := range pkts {
					if err := s.Insert("s1", diffprov.NewTuple("packet", p.Dst), int64(j+1)); err != nil {
						b.Fatal(err)
					}
					if j%32 == 0 {
						if err := s.Run(); err != nil {
							b.Fatal(err)
						}
					}
				}
				if err := s.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSelectiveReplay compares a full replay against the
// truncated (ReplayUntil) reconstruction used for queries about past
// events.
func BenchmarkAblationSelectiveReplay(b *testing.B) {
	s, err := scenarios.Build("SDN1", scenarios.Small)
	if err != nil {
		b.Fatal(err)
	}
	sess := s.BadSession
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := sess.Replay(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("until-mid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := sess.ReplayUntil(sess.Live().Now().T / 2); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCounterfactualReplay measures the three counterfactual replay
// strategies against each other on a long synthetic log of N base events
// with a change injected near the end (tick N-10, the UPDATETREE pattern
// — changes land "shortly before they are needed"). The from-scratch
// path re-executes all N events per replay; the incremental (full-
// suffix) path forks a cached prefix shortly before the change and
// re-fires the suffix; the delta path forks the fully evaluated base run
// and propagates only the change set through the engine's semi-naïve
// delta phase, re-firing nothing. At N=10000 incremental must beat
// scratch by at least ~5x, and delta must beat incremental by at least
// ~3x on the late change.
func BenchmarkCounterfactualReplay(b *testing.B) {
	const replayProgram = `
table edge/2 base mutable;
table probe/1 event base;
table hit/2 event;
rule j hit(S, D) :- probe(@r, S), edge(@r, S, D).
`
	prog := ndlog.MustParse(replayProgram)
	for _, n := range []int{1000, 10000} {
		for _, mode := range []struct {
			name        string
			incremental bool
			delta       bool
		}{{"delta", true, true}, {"incremental", true, false}, {"scratch", false, false}} {
			b.Run(fmt.Sprintf("N=%d/%s", n, mode.name), func(b *testing.B) {
				sess := replay.NewSession(prog,
					replay.WithIncrementalReplay(mode.incremental),
					replay.WithDeltaReplay(mode.delta),
					replay.WithCheckpointEvery(int64(n/16)))
				if err := sess.Insert("r", ndlog.NewTuple("edge", ndlog.Int(1), ndlog.Int(2)), 0); err != nil {
					b.Fatal(err)
				}
				for i := 1; i < n; i++ {
					v := ndlog.Int(int64(i % 64))
					if err := sess.Insert("r", ndlog.NewTuple("probe", v), int64(i)); err != nil {
						b.Fatal(err)
					}
				}
				if err := sess.Run(); err != nil {
					b.Fatal(err)
				}
				change := []replay.Change{{
					Insert: true, Node: "r",
					Tuple: ndlog.NewTuple("probe", ndlog.Int(1)),
					Tick:  int64(n - 10),
				}}
				// Warm once: the first incremental replay materializes the
				// prefix; steady state (every minimize candidate, every
				// UPDATETREE round) forks it.
				if _, _, err := sess.ReplayWith(change); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, err := sess.ReplayWith(change); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFork isolates the cost at the head of every counterfactual
// replay: forking a sealed prefix engine together with its provenance
// recorder. The cow variant shares tables, index buckets, support maps,
// and the graph vertex arena with the sealed parent, cloning pieces only
// when the fork first writes them; the deep variant copies everything up
// front, so its cost (and allocations) grow with N while cow stays flat.
func BenchmarkFork(b *testing.B) {
	const forkProgram = `
table edge/2 base mutable;
table probe/1 event base;
table hit/2 event;
rule j hit(S, D) :- probe(@r, S), edge(@r, S, D).
`
	prog := ndlog.MustParse(forkProgram)
	for _, n := range []int{1000, 10000} {
		for _, mode := range []struct {
			name string
			cow  bool
		}{{"cow", true}, {"deep", false}} {
			b.Run(fmt.Sprintf("N=%d/%s", n, mode.name), func(b *testing.B) {
				rec := provenance.NewRecorder(prog, provenance.WithCopyOnWriteForks(mode.cow))
				e := ndlog.New(prog, rec, ndlog.WithCopyOnWriteForks(mode.cow))
				if err := e.ScheduleInsert("r", ndlog.NewTuple("edge", ndlog.Int(1), ndlog.Int(2)), 0); err != nil {
					b.Fatal(err)
				}
				for i := 1; i < n; i++ {
					v := ndlog.Int(int64(i % 64))
					if err := e.ScheduleInsert("r", ndlog.NewTuple("probe", v), int64(i)); err != nil {
						b.Fatal(err)
					}
				}
				if err := e.Run(); err != nil {
					b.Fatal(err)
				}
				rec.Seal()
				e.Seal()
				// Warm once so one-time lazy work is off the clock.
				e.Fork(rec.Fork())
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.Fork(rec.Fork())
				}
			})
		}
	}
}

// BenchmarkDiagnosisCandidates measures counterfactual candidate
// evaluation — the dominant cost of a diagnosis with minimization (§4.9)
// over an aggregate: the bad collector is missing `missing` contributor
// reports, so the diagnosis yields `missing` insert changes and the
// minimization pass replays `missing` independent drop candidates (all of
// which fail, since every insert is necessary). The variants isolate the
// two tentpole optimizations: parallel evaluation of the candidates over
// pooled session clones, and the fingerprint-keyed alignment memo that
// answers each trial's O(contributors) aggregate prediction in O(1).
// Results are byte-identical across all variants (see
// TestParallelDifferential); only the wall clock moves.
func BenchmarkDiagnosisCandidates(b *testing.B) {
	const aggProgram = `
table report/1 event base mutable;
table tally/1;
rule t tally(@C, N) :- report(@C, S), N := count().
`
	const (
		contributors = 200 // reports at the good collector A
		missing      = 16  // reports the bad collector B never saw
	)
	prog := diffprov.MustParse(aggProgram)
	build := func(b *testing.B) (diffprov.World, *diffprov.Tree, *diffprov.Tree) {
		b.Helper()
		sess := diffprov.NewSession(prog, diffprov.WithCheckpointEvery(48))
		tick := int64(0)
		for i := 0; i < contributors; i++ {
			if err := sess.Insert("A", diffprov.NewTuple("report", diffprov.Int(int64(i))), tick); err != nil {
				b.Fatal(err)
			}
			tick++
			if i < contributors-missing {
				if err := sess.Insert("B", diffprov.NewTuple("report", diffprov.Int(int64(i))), tick); err != nil {
					b.Fatal(err)
				}
				tick++
			}
		}
		if err := sess.Run(); err != nil {
			b.Fatal(err)
		}
		_, g, err := sess.Graph()
		if err != nil {
			b.Fatal(err)
		}
		goodV := g.LastAppear("A", diffprov.NewTuple("tally", diffprov.Int(contributors)))
		badV := g.LastAppear("B", diffprov.NewTuple("tally", diffprov.Int(contributors-missing)))
		if goodV == nil || badV == nil {
			b.Fatal("tally tuples not found")
		}
		world, err := diffprov.NewWorld(sess)
		if err != nil {
			b.Fatal(err)
		}
		return world, g.Tree(goodV.ID), g.Tree(badV.ID)
	}
	for _, variant := range []struct {
		name string
		opts diffprov.Options
	}{
		{"sequential", diffprov.Options{Parallelism: -1, Minimize: true}},
		{"sequential-nofp", diffprov.Options{Parallelism: -1, Minimize: true, DisableFingerprints: true}},
		{"parallel8", diffprov.Options{Parallelism: 8, Minimize: true}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			world, good, bad := build(b)
			// Warm once: the first diagnosis materializes the replay
			// prefix every later candidate evaluation forks.
			if _, err := diffprov.Diagnose(good, bad, world, variant.opts); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := diffprov.Diagnose(good, bad, world, variant.opts)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Changes) != missing {
					b.Fatalf("Δ = %d changes, want %d", len(res.Changes), missing)
				}
			}
		})
	}

	// The fallback variants exercise the §4.9 log search: an intra-tick
	// race (the corrected config value arrives in the probe's tick, after
	// the probe) empties the forward prediction, so the diagnosis must
	// enumerate logged mutable events. 20 of the 26 mutable events (77%)
	// belong to an audit pipeline with no rule path to the symptom; the
	// static slice prunes them before any replay, and the -noslice
	// variant measures what those replays would have cost.
	const raceProgram = `
table cfg/2 base mutable key(0);
table probe/1 event base;
table out/2 event;
table audit/2 base mutable;
table auditTrail/2;
rule fwd out(@N, K, V) :- probe(@N, K), cfg(@N, K, V).
rule a1  auditTrail(@N, K, V) :- audit(@N, K, V).
`
	const auditEvents = 20
	raceProg := diffprov.MustParse(raceProgram)
	buildRace := func(b *testing.B) (diffprov.World, *diffprov.Tree, *diffprov.Tree) {
		b.Helper()
		sess := diffprov.NewSession(raceProg)
		cfg := func(val string) diffprov.Tuple {
			return diffprov.NewTuple("cfg", diffprov.Str("k"), diffprov.Str(val))
		}
		ins := func(node string, t diffprov.Tuple, tick int64) {
			if err := sess.Insert(node, t, tick); err != nil {
				b.Fatal(err)
			}
		}
		ins("g", cfg("right"), 5)
		ins("b", cfg("wrong"), 5)
		for i := 0; i < auditEvents; i++ {
			ins("b", diffprov.NewTuple("audit", diffprov.Int(int64(i)), diffprov.Int(int64(i))), int64(6+i))
		}
		ins("g", diffprov.NewTuple("probe", diffprov.Str("k")), 40)
		ins("b", diffprov.NewTuple("probe", diffprov.Str("k")), 40)
		ins("b", cfg("right"), 40) // after the probe within tick 40: the race
		if err := sess.Run(); err != nil {
			b.Fatal(err)
		}
		_, g, err := sess.Graph()
		if err != nil {
			b.Fatal(err)
		}
		goodV := g.LastAppear("g", diffprov.NewTuple("out", diffprov.Str("k"), diffprov.Str("right")))
		badV := g.LastAppear("b", diffprov.NewTuple("out", diffprov.Str("k"), diffprov.Str("wrong")))
		if goodV == nil || badV == nil {
			b.Fatal("out tuples not found")
		}
		world, err := diffprov.NewWorld(sess)
		if err != nil {
			b.Fatal(err)
		}
		return world, g.Tree(goodV.ID), g.Tree(badV.ID)
	}
	for _, variant := range []struct {
		name       string
		opts       diffprov.Options
		wantSliced int64
	}{
		{"fallback-sliced", diffprov.Options{Parallelism: -1}, auditEvents},
		{"fallback-noslice", diffprov.Options{Parallelism: -1, DisableSlicing: true}, 0},
	} {
		b.Run(variant.name, func(b *testing.B) {
			world, good, bad := buildRace(b)
			if _, err := diffprov.Diagnose(good, bad, world, variant.opts); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var sliced int64
			for i := 0; i < b.N; i++ {
				res, err := diffprov.Diagnose(good, bad, world, variant.opts)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Changes) != 1 {
					b.Fatalf("Δ = %d changes, want 1", len(res.Changes))
				}
				if res.Stats.CandidatesSliced != variant.wantSliced {
					b.Fatalf("CandidatesSliced = %d, want %d", res.Stats.CandidatesSliced, variant.wantSliced)
				}
				sliced += res.Stats.CandidatesSliced
			}
			b.ReportMetric(float64(sliced)/float64(b.N), "sliced/op")
		})
	}
}

// BenchmarkTreeDiffBaselines compares the §2.5 strawmen on real
// provenance trees: label-multiset diff vs Zhang–Shasha edit distance.
func BenchmarkTreeDiffBaselines(b *testing.B) {
	s, err := scenarios.Build("SDN1", scenarios.Small)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("plain-diff", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if treediff.PlainDiff(s.Good, s.Bad) == 0 {
				b.Fatal("unexpected zero diff")
			}
		}
	})
	b.Run("zhang-shasha", func(b *testing.B) {
		t1 := treediff.FromProvenance(s.Good)
		t2 := treediff.FromProvenance(s.Bad)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if treediff.EditDistance(t1, t2) == 0 {
				b.Fatal("unexpected zero distance")
			}
		}
	})
}

// BenchmarkLogEncode measures raw log serialization throughput (the
// logging engine's write path).
func BenchmarkLogEncode(b *testing.B) {
	gen := trace.New(trace.Config{Seed: 83})
	l := gen.BuildLog("border", 0, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if l.EncodedSize() == 0 {
			b.Fatal("empty encoding")
		}
	}
	b.SetBytes(l.EncodedSize())
}

// BenchmarkLogDecode measures log deserialization.
func BenchmarkLogDecode(b *testing.B) {
	gen := trace.New(trace.Config{Seed: 84})
	l := gen.BuildLog("border", 0, 10000)
	var buf writeBuffer
	if err := l.Encode(&buf); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := replay.Decode(readerOf(buf)); err != nil {
			b.Fatal(err)
		}
	}
}

type writeBuffer []byte

func (w *writeBuffer) Write(p []byte) (int, error) {
	*w = append(*w, p...)
	return len(p), nil
}

func readerOf(b []byte) *sliceReader { return &sliceReader{b: b} }

type sliceReader struct {
	b   []byte
	pos int
}

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.b) {
		return 0, fmt.Errorf("EOF")
	}
	n := copy(p, r.b[r.pos:])
	r.pos += n
	return n, nil
}

// BenchmarkFailureClasses diagnoses the §2.3 failure taxonomy.
func BenchmarkFailureClasses(b *testing.B) {
	for _, class := range []failures.Class{failures.Partial, failures.Sudden, failures.Intermittent} {
		b.Run(class.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c, err := failures.Generate(class)
				if err != nil {
					b.Fatal(err)
				}
				res, err := c.Diagnose()
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Changes) != 1 {
					b.Fatal("wrong diagnosis")
				}
			}
		})
	}
}

// BenchmarkLatencyHarness runs the §6.4 measurement harness itself.
func BenchmarkLatencyHarness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := evaluation.MeasureLatency(2000, 50); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJoinFanout measures the hash-indexed join against the naive
// table scan on a wide fan-in rule: one probe event joined against N
// edge tuples on the same node, of which exactly one matches. With
// indexing, each trigger costs one bucket probe; without, it scans all
// N rows. At N=10000 the indexed variant must be at least ~5x faster.
func BenchmarkJoinFanout(b *testing.B) {
	const fanoutProgram = `
table edge/2 base;
table probe/1 event base;
table hit/2 event;
rule j hit(S, D) :- probe(@r, S), edge(@r, S, D).
`
	for _, n := range []int{100, 1000, 10000} {
		for _, mode := range []struct {
			name     string
			indexing bool
		}{{"indexed", true}, {"scan", false}} {
			b.Run(fmt.Sprintf("N=%d/%s", n, mode.name), func(b *testing.B) {
				e := ndlog.New(ndlog.MustParse(fanoutProgram), nil,
					ndlog.WithIndexing(mode.indexing))
				for i := 0; i < n; i++ {
					v := ndlog.Int(int64(i))
					if err := e.ScheduleInsert("r", ndlog.NewTuple("edge", v, v), 0); err != nil {
						b.Fatal(err)
					}
				}
				if err := e.Run(); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s := ndlog.Int(int64(i % n))
					if err := e.ScheduleInsert("r", ndlog.NewTuple("probe", s), int64(i+1)); err != nil {
						b.Fatal(err)
					}
					if err := e.Run(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
