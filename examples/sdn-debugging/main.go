// SDN debugging: the paper's Figure 1 scenario end to end.
//
// The network has six switches, two web servers, and a DPI box. The
// operator's NetCore policy routes untrusted sources through the DPI
// path, but the untrusted subnet 4.3.2.0/23 was mistyped as /24, so part
// of it reaches web2 unscrubbed. We query the provenance of a misrouted
// packet, supply a correctly-routed packet as the reference, and let
// DiffProv trace the divergence back to the typo in the controller's
// intent — through the derived flow entries, across switches, into the
// controller program.
//
//	go run ./examples/sdn-debugging
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ndlog"
	"repro/internal/netcore"
	"repro/internal/sdn"
	"repro/internal/treediff"
)

const policy = `
// Untrusted subnets go to web1, which is co-located with the DPI.
policy untrusted priority 10 {
    match src in 4.3.2.0/24;   // TYPO: the untrusted subnet is /23
    route web1;
}
policy default priority 1 {
    route web2;
}
mirror at s6 {
    match src in 0.0.0.0/0;
    to dpi;
}
`

func main() {
	check := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}

	// Build the Figure 1 topology.
	n := sdn.NewNetwork()
	for _, sw := range []string{"s1", "s2", "s3", "s4", "s5", "s6"} {
		check(n.SwitchUp(sw))
	}
	check(n.AddPath("web1", "s1", "s2", "s6", "web1"))
	check(n.AddPath("web2", "s1", "s2", "s3", "s4", "s5", "web2"))

	// Compile and install the controller program.
	prog, err := netcore.Parse(policy)
	check(err)
	check(prog.Install(n))

	// Two HTTP requests from the untrusted /23.
	web := ndlog.MustParseIP("10.0.0.80")
	good := sdn.Header{Src: ndlog.MustParseIP("4.3.2.1"), Dst: web, Proto: 6}
	bad := sdn.Header{Src: ndlog.MustParseIP("4.3.3.1"), Dst: web, Proto: 6}
	_, err = n.InjectPacket("s1", good)
	check(err)
	_, err = n.InjectPacket("s1", bad)
	check(err)
	check(n.Run())

	fmt.Println("request from 4.3.2.1: web1 =", n.Arrived("web1", good), " dpi =", n.Arrived("dpi", good))
	fmt.Println("request from 4.3.3.1: web2 =", n.Arrived("web2", bad), " dpi =", n.Arrived("dpi", bad))
	fmt.Println("-> 4.3.3.1 bypassed the DPI: the security hole of §2.")

	// Classical provenance is complete but overwhelming.
	goodTree, err := n.ArrivalTree("web1", good)
	check(err)
	badTree, err := n.ArrivalTree("web2", bad)
	check(err)
	fmt.Printf("\nprovenance trees: good %d vertexes, bad %d vertexes\n", goodTree.Size(), badTree.Size())
	fmt.Printf("naive tree diff (§2.5): %d vertexes — larger than the root cause by two orders\n",
		treediff.PlainDiff(goodTree, badTree))

	// Differential provenance pinpoints the intent.
	world, err := core.NewWorld(n.Session())
	check(err)
	res, err := core.Diagnose(context.Background(), goodTree, badTree, world, core.Options{})
	check(err)
	fmt.Println("\nDiffProv root cause:")
	for _, c := range res.Changes {
		fmt.Println(" ", c)
	}
	fmt.Println("\nThe divergence was traced through the flow entries on s2, the")
	fmt.Println("controller's policyRoute, down to the mistyped intent — and the")
	fmt.Println("proposed change generalizes it to the /23 the operator meant.")
	fmt.Printf("\nreasoning time: %v (plus %v replaying the clone)\n",
		res.Timings.FindSeed+res.Timings.Divergence+res.Timings.MakeAppear, res.Timings.UpdateTree)
}
