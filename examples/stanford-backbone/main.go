// Stanford backbone: the paper's §6.7 complex-network case study.
//
// A replica of the Stanford campus backbone — 14 operational-zone routers
// and 2 backbone routers — is loaded with generated forwarding entries
// and ACL rules, 20 additional injected faults, and heavy mixed
// background traffic. One entry on S2 is misconfigured: it drops packets
// to H2's subnet 172.20.10.32/27. The reference event is a packet to the
// co-located subnet 172.19.254.0/24, which H1 can still reach. DiffProv
// must find the one faulty entry despite all the noise.
//
//	go run ./examples/stanford-backbone
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/stanford"
	"repro/internal/treediff"
)

func main() {
	cfg := stanford.Config{
		Seed:              7,
		ForwardingEntries: 5000,
		ACLRules:          300,
		ExtraFaults:       20,
		BackgroundPackets: 1000,
	}
	fmt.Printf("building the backbone: %d forwarding entries, %d ACLs, %d injected faults, %d background packets...\n",
		cfg.ForwardingEntries, cfg.ACLRules, cfg.ExtraFaults, cfg.BackgroundPackets)
	b, err := stanford.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nH1 -> %s (reference): delivered = %v\n", stanford.RefSubnet, b.Net.Arrived(b.Zone2Hosts, b.GoodHeader))
	fmt.Printf("H1 -> %s (faulty):    dropped  = %v\n", stanford.H2Subnet, b.Net.Arrived(b.DropNode, b.BadHeader))

	good, bad, err := b.Trees()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprovenance trees: good %d, bad %d vertexes (paper: 67 and 75)\n", good.Size(), bad.Size())
	fmt.Printf("plain diff: %d vertexes (paper: 108)\n", treediff.PlainDiff(good, bad))

	start := time.Now()
	res, err := b.Diagnose()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDiffProv root cause (found in %v):\n", time.Since(start))
	for _, c := range res.Changes {
		fmt.Println(" ", c)
	}
	if len(res.Changes) == 1 && b.IsFaultChange(res.Changes[0]) {
		fmt.Println("\nThe one misconfigured entry was identified — despite 20 other")
		fmt.Println("concurrent faults and the background traffic. Provenance captures")
		fmt.Println("true causality, so unrelated noise cannot confuse the diagnosis.")
	} else {
		fmt.Println("\nWARNING: expected exactly the misconfigured drop entry")
	}
}
