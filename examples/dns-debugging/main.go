// DNS debugging: the survey's lead example (§2.4 of the paper): "one
// thread reported that a batch of DNS servers contained expired entries,
// while records on other servers were up to date" — a partial failure
// with a reference readily available on a healthy server.
//
// The model: authoritative servers hold zone records (keyed by name, so
// a zone transfer replaces stale values); the service address is anycast
// — each query lands on a replica picked deterministically from the
// query id. One server missed the last zone transfer and still serves
// the old address, so some queries get stale answers while others are
// fine (a textbook partial failure). DiffProv compares a stale response
// against a fresh one and pinpoints the stale record as the root cause:
// the anycast choice re-derives from the (immutable) query, so the only
// way to align the trees is to fix the record.
//
//	go run ./examples/dns-debugging
package main

import (
	"fmt"
	"log"

	diffprov "repro"
)

const dnsModel = `
// Authoritative state: one record per name per server (keyed by name, so
// zone transfers replace).
table record/2 base mutable key(0);      // (name, address)

// The anycast pool the resolver knows about.
table pool/2 base mutable key(0);        // (index, serverNode)
table poolSize/1 base mutable;           // (n)

// Events.
table query/2 event base;                // (queryID, name) at the resolver
table ask/2 event;                       // (queryID, name) at a server
table response/3 event;                  // (queryID, name, address)

// Anycast: the query id picks a replica deterministically.
rule q1 ask(@Srv, Q, Name) :-
    query(@R, Q, Name),
    poolSize(@R, N),
    I := hashmod(Q, N),
    pool(@R, I, Srv).

// The chosen server answers from its zone.
rule q2 response(@resolver1, Q, Name, Addr) :-
    ask(@Srv, Q, Name),
    record(@Srv, Name, Addr).
`

func main() {
	check := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	prog := diffprov.MustParse(dnsModel)
	sess := diffprov.NewSession(prog)

	oldAddr := diffprov.MustParseIP("192.0.2.10")
	newAddr := diffprov.MustParseIP("192.0.2.99")
	rec := func(name string, a diffprov.IP) diffprov.Tuple {
		return diffprov.NewTuple("record", diffprov.Str(name), a)
	}

	// All three authoritative servers initially hold the old record.
	for _, srv := range []string{"nsA", "nsB", "nsC"} {
		check(sess.Insert(srv, rec("api.example.com", oldAddr), 1))
	}
	// The zone is updated; the transfer reaches nsB and nsC but nsA
	// misses it (the fault).
	check(sess.Insert("nsB", rec("api.example.com", newAddr), 50))
	check(sess.Insert("nsC", rec("api.example.com", newAddr), 51))

	// The anycast pool.
	for i, srv := range []string{"nsA", "nsB", "nsC"} {
		check(sess.Insert("resolver1", diffprov.NewTuple("pool", diffprov.Int(int64(i)), diffprov.Str(srv)), 60))
	}
	check(sess.Insert("resolver1", diffprov.NewTuple("poolSize", diffprov.Int(3)), 61))

	// Find query ids landing on the stale nsA (index 0) and a healthy
	// replica, then issue both queries.
	badQ, goodQ := int64(-1), int64(-1)
	for q := int64(1); badQ < 0 || goodQ < 0; q++ {
		switch diffprov.Hash64(diffprov.Int(q)) % 3 {
		case 0:
			if badQ < 0 {
				badQ = q
			}
		default:
			if goodQ < 0 {
				goodQ = q
			}
		}
	}
	check(sess.Insert("resolver1", diffprov.NewTuple("query", diffprov.Int(badQ), diffprov.Str("api.example.com")), 100))
	check(sess.Insert("resolver1", diffprov.NewTuple("query", diffprov.Int(goodQ), diffprov.Str("api.example.com")), 110))
	check(sess.Run())

	_, g, err := sess.Graph()
	check(err)
	badResp := diffprov.NewTuple("response", diffprov.Int(badQ), diffprov.Str("api.example.com"), oldAddr)
	goodResp := diffprov.NewTuple("response", diffprov.Int(goodQ), diffprov.Str("api.example.com"), newAddr)
	fmt.Printf("query %d (anycast -> nsA): %s  <- STALE\n", badQ, badResp)
	fmt.Printf("query %d (anycast -> healthy): %s\n", goodQ, goodResp)

	bad := g.Tree(g.LastAppear("resolver1", badResp).ID)
	good := g.Tree(g.LastAppear("resolver1", goodResp).ID)
	fmt.Printf("\nprovenance: good tree %d vertexes, bad tree %d vertexes\n", good.Size(), bad.Size())

	world, err := diffprov.NewWorld(sess)
	check(err)
	// FollowKeyedRows makes the diagnosis respect the anycast selection:
	// the bad query's hash picked replica slot 0, so slot 0's SERVER and
	// that server's RECORD are what the alignment reasons about — rather
	// than proposing to re-aim the selector itself.
	res, err := diffprov.Diagnose(good, bad, world, diffprov.Options{FollowKeyedRows: true})
	check(err)
	fmt.Println("\nDiffProv root cause:")
	for _, c := range res.Changes {
		fmt.Println(" ", c)
	}
	fmt.Println("\nThe stale record on nsA is replaced by the fresh one — the answer the")
	fmt.Println("operator on the Outages list was looking for. The anycast choice is")
	fmt.Println("recomputed from the (immutable) query id, so DiffProv cannot cheat by")
	fmt.Println("re-routing the query; the only alignment is fixing the record.")
}
