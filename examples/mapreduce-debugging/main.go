// MapReduce debugging: the paper's MR2 scenario on the instrumented
// (imperative) WordCount pipeline.
//
// The user deploys a new mapper version with a subtle bug: it omits the
// first word of each line. The job's output differs from yesterday's run
// over the same input. DiffProv compares the provenance of the two final
// counts and — although it cannot look inside the mapper's code — it
// pinpoints the bytecode checksum of the new version as the root cause.
//
//	go run ./examples/mapreduce-debugging
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mapreduce"
)

const corpus = `the tragedy of hamlet prince of denmark
the play opens on a platform before the castle
the ghost of the king appears to the watchmen
the prince resolves to avenge his father
`

func main() {
	check := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	input := mapreduce.ParseInput("hamlet-excerpt.txt", corpus)

	// Yesterday: the job ran with the correct mapper.
	goodRun, err := mapreduce.NewJob("yesterday", input, 2, 4, mapreduce.GoodMapper).Run()
	check(err)
	// Today: a new mapper version was deployed.
	badRun, err := mapreduce.NewJob("today", input, 2, 4, mapreduce.BuggyMapper).Run()
	check(err)

	count := func(ex *mapreduce.Execution, w string) int64 {
		total := int64(0)
		for _, m := range ex.Counts {
			total += m[w]
		}
		return total
	}
	fmt.Printf("count(\"the\") yesterday: %d, today: %d — the output changed!\n",
		count(goodRun, "the"), count(badRun, "the"))

	goodTree, err := goodRun.CountTree("the")
	check(err)
	badTree, err := badRun.CountTree("the")
	check(err)
	fmt.Printf("provenance: good tree %d vertexes, bad tree %d vertexes\n",
		goodTree.Size(), badTree.Size())
	fmt.Println("(each tree explains a count in terms of every contributing key-value")
	fmt.Println(" pair, its input record, the job configuration, and the mapper code)")

	res, err := core.Diagnose(context.Background(), goodTree, badTree, badRun.World(), core.Options{})
	check(err)
	fmt.Println("\nDiffProv root cause:")
	for _, c := range res.Changes {
		fmt.Println(" ", c)
	}
	fmt.Printf("\nThe change restores the mapper version with checksum %s —\n", mapreduce.GoodMapper)
	fmt.Println("DiffProv cannot reason about the mapper's internals, but it correctly")
	fmt.Println("identifies WHICH code version caused the different output (paper §6.3).")
}
