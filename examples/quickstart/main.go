// Quickstart: diagnose a misrouted packet with differential provenance,
// using only the public diffprov API.
//
// We model a single switch with two flow entries: a specific one that
// should cover the whole untrusted /23 but was mistyped as /24, and a
// default route. A packet from the uncovered half of the subnet is
// misrouted; a packet from the covered half serves as the reference.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	diffprov "repro"
)

const model = `
// A one-switch network: packets follow the highest-priority match.
table flowEntry/3 base mutable;   // (priority, srcMatch, nextHop)
table packet/1 event base;        // (srcIP)

rule fw packet(@Nxt, Src) :-
    packet(@Sw, Src),
    flowEntry(@Sw, Prio, M, Nxt),
    matches(Src, M),
    argmax Prio.
`

func main() {
	prog := diffprov.MustParse(model)
	sess := diffprov.NewSession(prog)

	fe := func(prio int64, match, nxt string) diffprov.Tuple {
		return diffprov.NewTuple("flowEntry",
			diffprov.Int(prio), diffprov.MustParsePrefix(match), diffprov.Str(nxt))
	}
	pkt := func(src string) diffprov.Tuple {
		return diffprov.NewTuple("packet", diffprov.MustParseIP(src))
	}
	check := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}

	// The operator meant 4.3.2.0/23 but typed /24.
	check(sess.Insert("s1", fe(10, "4.3.2.0/24", "dpi-server"), 0))
	check(sess.Insert("s1", fe(1, "0.0.0.0/0", "default-server"), 0))

	// Traffic: 4.3.2.1 is handled correctly, 4.3.3.1 is not.
	check(sess.Insert("s1", pkt("4.3.2.1"), 10))
	check(sess.Insert("s1", pkt("4.3.3.1"), 20))
	check(sess.Run())

	fmt.Println("4.3.2.1 ->", where(sess, pkt("4.3.2.1")))
	fmt.Println("4.3.3.1 ->", where(sess, pkt("4.3.3.1")), " (should have been dpi-server!)")

	// Ask: why was 4.3.3.1 treated differently from 4.3.2.1?
	_, graph, err := sess.Graph()
	check(err)
	good := graph.Tree(graph.LastAppear("dpi-server", pkt("4.3.2.1")).ID)
	bad := graph.Tree(graph.LastAppear("default-server", pkt("4.3.3.1")).ID)
	fmt.Printf("\nclassical provenance: good tree %d vertexes, bad tree %d vertexes\n",
		good.Size(), bad.Size())

	world, err := diffprov.NewWorld(sess)
	check(err)
	res, err := diffprov.Diagnose(good, bad, world, diffprov.Options{})
	check(err)

	fmt.Println("\ndifferential provenance (the root cause):")
	for _, c := range res.Changes {
		fmt.Println(" ", c)
	}
	fmt.Println("\nDiffProv generalized the mistyped /24 to the /23 the operator intended.")
}

// where reports the host a packet was delivered to.
func where(sess *diffprov.Session, p diffprov.Tuple) string {
	for _, node := range sess.Live().Nodes() {
		if node != "s1" && sess.Live().ExistsEver(node, p) {
			return node
		}
	}
	return "(dropped)"
}
