package ndlog

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
)

// Observer receives primitive provenance events from the engine. The
// provenance package implements it to build the temporal provenance graph.
// All callbacks happen synchronously in deterministic order.
type Observer interface {
	// OnBaseInsert fires when a base tuple is inserted by the outside world.
	OnBaseInsert(at At)
	// OnBaseDelete fires when a base tuple is deleted by the outside world.
	OnBaseDelete(at At)
	// OnAppear fires when a tuple appears on a node (count 0 -> 1, or an
	// event tuple occurs). deriveID is the derivation that produced it,
	// or 0 for base insertions.
	OnAppear(at At, deriveID int64)
	// OnDisappear fires when a state tuple disappears (count 1 -> 0).
	// underiveID is the underivation that removed the last support, or 0
	// when the cause was a base deletion.
	OnDisappear(at At, underiveID int64)
	// OnDerive fires when a rule derives a tuple.
	OnDerive(d Derivation)
	// OnUnderive fires when a derivation's support is retracted.
	OnUnderive(u Underivation)
}

// Derivation describes one rule firing.
//
// For counting rules the derivation is a delta: Body holds only the new
// contributor (the triggering event), and the full contributor set is the
// chain of predecessors linked through AggPrev. Provenance recorders fold
// the chain back into the complete list on demand; the engine never
// materializes it, which keeps aggregate recording O(1) per update
// instead of O(k) (and O(k) total per group instead of O(k²)).
type Derivation struct {
	ID      int64
	Rule    string
	Node    string // node that evaluated the rule
	Head    At     // head tuple at its destination (stamp = appearance there)
	Body    []At   // body tuples with the stamps at which they appeared
	Trigger int    // index into Body of the tuple that appeared last

	// AggPrev is the derivation ID of the previous head of the same
	// aggregate group (0 for the group's first derivation), and AggCount
	// the running contributor count. AggCount > 0 marks an aggregate
	// delta derivation; both are 0 for ordinary rules.
	AggPrev  int64
	AggCount int64
	// AggRemove marks a counterfactual decrement link: Body[0] is the
	// contributor being removed from the group (its occurrence was
	// erased), and AggCount is the already-decremented count. Provenance
	// folds subtract the contributor instead of adding it.
	AggRemove bool
}

// Underivation describes the retraction of a prior derivation.
type Underivation struct {
	ID       int64 // fresh id of the underivation
	DeriveID int64 // the derivation being retracted
	Rule     string
	Node     string
	Head     At // head tuple, stamp = retraction time
	Cause    At // the body tuple whose disappearance triggered this
}

// NopObserver discards all events.
type NopObserver struct{}

// OnBaseInsert implements Observer.
func (NopObserver) OnBaseInsert(At) {}

// OnBaseDelete implements Observer.
func (NopObserver) OnBaseDelete(At) {}

// OnAppear implements Observer.
func (NopObserver) OnAppear(At, int64) {}

// OnDisappear implements Observer.
func (NopObserver) OnDisappear(At, int64) {}

// OnDerive implements Observer.
func (NopObserver) OnDerive(Derivation) {}

// OnUnderive implements Observer.
func (NopObserver) OnUnderive(Underivation) {}

// Interval is a half-open span of logical time during which a tuple
// existed on a node. Open intervals (tuple still live) have Open == true.
type Interval struct {
	From Stamp
	To   Stamp
	Open bool
}

// Contains reports whether the interval covers the stamp. A closed
// zero-length interval (an event occurrence) contains exactly its point.
func (iv Interval) Contains(s Stamp) bool {
	if s.Before(iv.From) {
		return false
	}
	if iv.Open {
		return true
	}
	if iv.From == iv.To {
		return s == iv.From
	}
	return s.Before(iv.To)
}

// Engine evaluates an NDlog program over a simulated distributed system in
// deterministic logical time.
type Engine struct {
	prog      *Program
	obs       Observer
	nodes     map[string]*node
	nodeOrder []string
	queue     workHeap
	seq       uint64
	// seqBand splits the stamp sequence space when non-zero: externally
	// scheduled base events draw from baseSeq (1..seqBand-1, in schedule
	// order) while engine-internal stamps (derived arrivals, retractions,
	// aggregate updates) draw from seqBand+seq. The split makes execution
	// order a function of the event schedule alone — independent of how
	// scheduling interleaves with Run calls — which is what lets a forked
	// prefix engine reproduce a from-scratch replay stamp-for-stamp.
	seqBand  uint64
	baseSeq  uint64
	now      Stamp
	deriveID int64
	delay    int64 // cross-node transit delay in ticks
	// dependents maps a row reference (node|key) to the derived rows it
	// supports, for the deletion cascade. Refs are pruned when a support
	// is retracted through any cause (see unindexSupport), so the map
	// stays bounded by the number of live supports.
	dependents map[string][]dependentRef
	// immutable records tuples individually pinned immutable (beyond
	// table-level mutability), e.g. "static flow entries declared off
	// limits" (§4.7).
	immutable map[string]bool
	// aggGroups holds the incremental state of counting rules.
	aggGroups map[string]*aggGroup
	// deriveLimit bounds lifetime derivations as a guard against
	// non-terminating models (e.g. forwarding loops).
	deriveLimit int
	stats       Stats
	// indexing enables secondary hash indexes for body-atom joins (see
	// index.go); plans and tableSpecs are computed once from the program.
	indexing   bool
	plans      map[planKey][]*indexSpec
	tableSpecs map[string][]*indexSpec
	// analysis enables the static program analysis in New (default on);
	// analysisDiags holds its result and analysisErr the first
	// Error-severity diagnostic, which makes Run refuse the program.
	analysis      bool
	analysisDiags []Diag
	analysisErr   error
	// cow enables copy-on-write Fork for sealed engines (default on).
	// sealed marks an engine frozen in the prefix cache: it refuses Run
	// and Schedule calls, and forks clone its tables on first write.
	// cowBase chains a CoW fork to the frozen engine whose dependents and
	// aggGroups maps it overlays; immutableShared marks the immutable map
	// as borrowed from that engine (cloned by PinImmutable before any
	// write). See cow.go.
	cow             bool
	sealed          bool
	cowBase         *Engine
	immutableShared bool
	// Counterfactual (delta) evaluation state; see delta.go. Changes
	// scheduled via ScheduleCFInsert/ScheduleCFDelete wait on cfQueue
	// until the main heap drains, then propagate semi-naively: cfPhase
	// marks the drain, the era marks tell counterfactual stamps from main
	// ones (isCF), cfDirty collects the (node, table) pairs the changes
	// touched, cfReevals queues argmax trigger re-evaluations, and
	// amDeriv maps each argmax trigger to the winner it currently
	// supports (overlaying cowBase like dependents).
	cfQueue    workHeap
	cfPhase    bool
	cfMarksSet bool
	cfBaseMark uint64
	cfSeqMark  uint64
	cfDirty    map[string]struct{}
	cfReevals  []cfReeval
	amDeriv    map[string]*amEntry
	// rfPin pins one counterfactual row at body atom rfPinAtom (on node
	// rfPinNode) during a delta re-fire, so joinRest matches only that
	// row at the pinned position.
	rfPin     *row
	rfPinAtom int
	rfPinNode string
	// evDeps maps a body-element reference (node|key) to the event-head
	// derivations it fed, so the counterfactual phase can erase derived
	// event occurrences whose preconditions are retracted (events have no
	// rows, so the dependents cascade cannot reach them). Overlays
	// cowBase like dependents; entries are never deleted (stale ones are
	// filtered by the body sequence number). killedOccs marks erased
	// event occurrences by stamp sequence; lastDeriveStamp is the stamp
	// derive() assigned to its most recent head, recorded by argmax
	// bookkeeping (see delta.go).
	evDeps          map[string][]evConsumer
	killedOccs      map[uint64]struct{}
	lastDeriveStamp Stamp
}

// errSealed is returned by Run and Schedule calls on a sealed engine.
var errSealed = errors.New("ndlog: engine is sealed (fork it to schedule or run)")

// Stats counts engine activity, used by the evaluation harness.
type Stats struct {
	BaseInserts int
	BaseDeletes int
	Derivations int
	Appears     int
	Disappears  int
	Messages    int
	// IndexProbes counts join lookups answered from a hash index,
	// IndexScans full scans of atoms with no bound columns, and
	// IndexFallbacks planned probes that had to degrade to a scan (a
	// variable the analysis expected bound was missing at runtime).
	IndexProbes    int
	IndexScans     int
	IndexFallbacks int
	// AggRetractMisses counts retractDerived calls that found the node,
	// table, row, or support they expected missing. Every aggregate
	// update retracts exactly the head it previously derived, so any
	// miss means a broken engine invariant (a stale head left live with
	// no trace); the differential suites assert this stays 0.
	AggRetractMisses int
	// DirtyTables counts the distinct (node, table) pairs the
	// counterfactual phase touched — how much of the state the change set
	// actually perturbed. CFRefires counts delta re-firings: main-phase
	// trigger occurrences re-evaluated because a counterfactual row
	// appeared before them (see delta.go).
	DirtyTables int
	CFRefires   int
}

type dependentRef struct {
	node     string
	key      string
	deriveID int64
}

type node struct {
	name   string
	tables map[string]*table
}

type table struct {
	decl   *TableDecl
	live   map[string]*row
	order  []*row // insertion-ordered; dead rows skipped
	hist   map[string][]Interval
	keyIdx map[string]*row // primary-key index, for tables with key columns
	// indexes holds the secondary hash indexes (sig -> index) planned
	// for this table; buckets mirror order (see index.go).
	indexes map[string]*tableIndex
	// sealed marks the table frozen (shared between a sealed engine and
	// its CoW forks); writableTable clones it on first write. histBase,
	// on such a clone, is the frozen table whose interval histories the
	// clone overlays: hist holds only keys written since the clone, each
	// entry a complete private copy of that key's history. See cow.go.
	sealed   bool
	histBase *table
	// occs logs event-tuple occurrences (events are not stored as rows),
	// so the counterfactual phase can re-enumerate event triggers that
	// fired in the main phase. occSorted and orderSorted track the
	// stamp-sorted prefixes of occs and order: main-phase appends are
	// stamp-monotone, counterfactual appends land in a short unsorted
	// tail, and the delta re-fire scans binary-search the prefix. See
	// delta.go.
	occs        []eventOcc
	occSorted   int
	orderSorted int
	// A forked table shares occs with its parent (occsShared); appends —
	// only the counterfactual phase appends to a fork — go to the small
	// private occsTail instead of reallocating the whole shared log.
	occsShared bool
	occsTail   []eventOcc
}

type row struct {
	tuple      Tuple
	key        string
	appearedAt Stamp
	diedAt     Stamp
	supports   []support
	dead       bool
}

type support struct {
	deriveID int64 // 0 for base insertion
	rule     string
	body     []bodyRef
}

type bodyRef struct {
	node string
	key  string
	seq  uint64 // appearance seq of the supporting row
}

type workKind uint8

const (
	wkInsertBase workKind = iota
	wkDeleteBase
	wkArriveDerived
)

type workItem struct {
	stamp Stamp
	kind  workKind
	node  string
	tuple Tuple
	deriv *Derivation // for wkArriveDerived
}

type workHeap []*workItem

func (h workHeap) Len() int { return len(h) }
func (h workHeap) Less(i, j int) bool {
	return h[i].stamp.Before(h[j].stamp)
}
func (h workHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *workHeap) Push(x interface{}) { *h = append(*h, x.(*workItem)) }
func (h *workHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// Option configures an Engine.
type Option func(*Engine)

// WithDelay sets the cross-node message delay in ticks (default 1).
func WithDelay(ticks int64) Option {
	return func(e *Engine) { e.delay = ticks }
}

// WithDerivationLimit bounds the total number of derivations the engine
// will perform over its lifetime (default 10 million). Exceeding it makes
// Run fail instead of looping forever on a cyclic model (e.g. a
// forwarding loop).
func WithDerivationLimit(n int) Option {
	return func(e *Engine) { e.deriveLimit = n }
}

// WithSeqBand splits the stamp sequence space at start: externally
// scheduled base events take sequence numbers 1..start-1 in schedule
// order, and engine-internal events (derived arrivals, retractions) take
// start+1, start+2, ... in processing order. Within one tick every base
// event therefore sorts before every internal event, and a stamp depends
// only on the schedule position (base) or processing position (internal)
// — never on how scheduling interleaves with Run calls. Replay sessions
// rely on this to make a forked prefix engine byte-identical to a
// from-scratch replay. Zero (the default) keeps the single shared
// counter.
func WithSeqBand(start uint64) Option {
	return func(e *Engine) { e.seqBand = start }
}

// SeqBandDefault is the band start replay sessions use: large enough that
// no realistic schedule exhausts the base band, small enough that the
// internal band cannot overflow uint64.
const SeqBandDefault = uint64(1) << 32

// WithIndexing enables or disables the secondary hash indexes that
// accelerate rule-body joins (default on). Evaluation results are
// identical either way — bucket rows keep appearance order, so the
// derivation stream, provenance graph, and replay behavior are
// byte-for-byte the same (asserted by TestIndexDifferential); the switch
// exists for that differential test and for debugging index maintenance.
func WithIndexing(on bool) Option {
	return func(e *Engine) { e.indexing = on }
}

// WithAnalysis enables or disables the static program analysis New runs
// (default on). Programs built through Declare/AddRule are validated
// rule-by-rule already, so the analysis mainly adds whole-program checks
// (stratification, usage, kind conflicts); disabling it skips that work
// for engines constructed in tight loops over known-good programs.
func WithAnalysis(on bool) Option {
	return func(e *Engine) { e.analysis = on }
}

// New creates an engine for the program. A nil observer is allowed.
//
// Unless disabled with WithAnalysis(false), New statically analyzes the
// program (cached per program); Error-severity findings make Run refuse
// to evaluate, and AnalysisDiags exposes the full report.
func New(prog *Program, obs Observer, opts ...Option) *Engine {
	if obs == nil {
		obs = NopObserver{}
	}
	e := &Engine{
		prog:        prog,
		obs:         obs,
		nodes:       map[string]*node{},
		delay:       1,
		dependents:  map[string][]dependentRef{},
		evDeps:      map[string][]evConsumer{},
		immutable:   map[string]bool{},
		aggGroups:   map[string]*aggGroup{},
		deriveLimit: 10_000_000,
		indexing:    true,
		analysis:    true,
		cow:         true,
	}
	for _, o := range opts {
		o(e)
	}
	if e.analysis {
		e.analysisDiags = prog.Analyze()
		e.analysisErr = firstError(e.analysisDiags)
	}
	if e.indexing {
		// One-time static analysis; rules added to the program after this
		// point are evaluated with scans (no plan entry).
		e.plans, e.tableSpecs = buildJoinPlans(prog)
	}
	return e
}

// AnalysisDiags returns the diagnostics the static analysis reported for
// the engine's program (nil when analysis was disabled).
func (e *Engine) AnalysisDiags() []Diag {
	return append([]Diag(nil), e.analysisDiags...)
}

// Program returns the program the engine evaluates.
func (e *Engine) Program() *Program { return e.prog }

// Stats returns activity counters.
func (e *Engine) Stats() Stats { return e.stats }

// Now returns the latest processed stamp.
func (e *Engine) Now() Stamp { return e.now }

func (e *Engine) nodeFor(name string) *node {
	n, ok := e.nodes[name]
	if !ok {
		n = &node{name: name, tables: map[string]*table{}}
		e.nodes[name] = n
		e.nodeOrder = append(e.nodeOrder, name)
	}
	return n
}

func (e *Engine) tableFor(n *node, decl *TableDecl) *table {
	t, ok := n.tables[decl.Name]
	if !ok {
		t = &table{decl: decl, live: map[string]*row{}, hist: map[string][]Interval{}}
		if len(decl.Key) > 0 {
			t.keyIdx = map[string]*row{}
		}
		// Attach the planned secondary indexes up front: the table is
		// empty here, so incremental maintenance in appear suffices and
		// query-time reads never have to build (or lock) anything.
		if len(e.tableSpecs[decl.Name]) > 0 {
			t.indexes = map[string]*tableIndex{}
			for _, spec := range e.tableSpecs[decl.Name] {
				t.indexes[spec.sig] = &tableIndex{spec: spec, buckets: map[string][]*row{}}
			}
		}
		n.tables[decl.Name] = t
	}
	return t
}

// nextStamp allocates a stamp for an engine-internal event (derived
// arrival, retraction, aggregate update). With a sequence band configured
// these sort after every base event of the same tick.
func (e *Engine) nextStamp(tick int64) Stamp {
	e.seq++
	st := Stamp{T: tick, Seq: e.seqBand + e.seq}
	if e.now.Before(st) {
		e.now = st
	}
	return st
}

// scheduleStamp allocates a stamp for an externally scheduled base event.
// With a sequence band configured, base events draw from the low band in
// schedule order, so the stamp depends only on the event's position in the
// schedule — not on how many internal events the engine has processed.
func (e *Engine) scheduleStamp(tick int64) (Stamp, error) {
	if e.seqBand == 0 {
		return e.nextStamp(tick), nil
	}
	e.baseSeq++
	if e.baseSeq >= e.seqBand {
		return Stamp{}, fmt.Errorf("ndlog: base-event sequence band exhausted after %d events", e.baseSeq-1)
	}
	st := Stamp{T: tick, Seq: e.baseSeq}
	if e.now.Before(st) {
		e.now = st
	}
	return st, nil
}

// ScheduleInsert schedules a base-tuple insertion at the given tick.
func (e *Engine) ScheduleInsert(nodeName string, t Tuple, tick int64) error {
	if e.sealed {
		return errSealed
	}
	d := e.prog.Decl(t.Table)
	if d == nil {
		return fmt.Errorf("ndlog: insert into undeclared table %s", t.Table)
	}
	if !d.Base {
		return fmt.Errorf("ndlog: table %s is not a base table", t.Table)
	}
	if len(t.Args) != d.Arity {
		return fmt.Errorf("ndlog: %s has arity %d, got %d args", t.Table, d.Arity, len(t.Args))
	}
	st, err := e.scheduleStamp(tick)
	if err != nil {
		return err
	}
	heap.Push(&e.queue, &workItem{stamp: st, kind: wkInsertBase, node: nodeName, tuple: t})
	return nil
}

// ScheduleDelete schedules a base-tuple deletion at the given tick.
func (e *Engine) ScheduleDelete(nodeName string, t Tuple, tick int64) error {
	if e.sealed {
		return errSealed
	}
	d := e.prog.Decl(t.Table)
	if d == nil {
		return fmt.Errorf("ndlog: delete from undeclared table %s", t.Table)
	}
	if !d.Base {
		return fmt.Errorf("ndlog: table %s is not a base table", t.Table)
	}
	st, err := e.scheduleStamp(tick)
	if err != nil {
		return err
	}
	heap.Push(&e.queue, &workItem{stamp: st, kind: wkDeleteBase, node: nodeName, tuple: t})
	return nil
}

// PinImmutable marks one specific tuple occurrence immutable regardless of
// its table's mutability (e.g. a static flow entry declared off limits).
func (e *Engine) PinImmutable(nodeName string, t Tuple) {
	if e.sealed {
		panic("ndlog: PinImmutable on sealed engine")
	}
	if e.immutableShared {
		m := make(map[string]bool, len(e.immutable)+1)
		for k, v := range e.immutable {
			m[k] = v
		}
		e.immutable, e.immutableShared = m, false
	}
	e.immutable[nodeName+"|"+t.Key()] = true
}

// IsMutable reports whether DiffProv may change the given base tuple.
func (e *Engine) IsMutable(nodeName string, t Tuple) bool {
	d := e.prog.Decl(t.Table)
	if d == nil || !d.Base || !d.Mutable {
		return false
	}
	return !e.immutable[nodeName+"|"+t.Key()]
}

// Run drains the work queue, evaluating all scheduled events and their
// consequences in deterministic order. A program the static analysis
// found erroneous is refused outright.
func (e *Engine) Run() error {
	if e.sealed {
		return errSealed
	}
	if e.analysisErr != nil {
		return e.analysisErr
	}
	for e.queue.Len() > 0 {
		it := heap.Pop(&e.queue).(*workItem)
		if e.now.Before(it.stamp) {
			e.now = it.stamp
		}
		if err := e.process(it); err != nil {
			return err
		}
	}
	// Counterfactual changes (ScheduleCFInsert/ScheduleCFDelete) evaluate
	// only after the main heap drains, as deltas against the completed
	// execution; see delta.go.
	return e.runCF()
}

// RunUntil evaluates scheduled events and their consequences while the
// earliest pending work item's tick is <= maxTick, then stops. Work at
// later ticks — including derived arrivals spilled past maxTick by the
// transit delay — stays pending, so a later Run (or a Fork followed by
// Run) continues exactly where this call left off.
func (e *Engine) RunUntil(maxTick int64) error {
	if e.sealed {
		return errSealed
	}
	if e.analysisErr != nil {
		return e.analysisErr
	}
	for e.queue.Len() > 0 && e.queue[0].stamp.T <= maxTick {
		it := heap.Pop(&e.queue).(*workItem)
		if e.now.Before(it.stamp) {
			e.now = it.stamp
		}
		if err := e.process(it); err != nil {
			return err
		}
	}
	return nil
}

// NextPendingTick reports the tick of the earliest pending work item, or
// false if the queue is empty.
func (e *Engine) NextPendingTick() (int64, bool) {
	if e.queue.Len() == 0 {
		return 0, false
	}
	return e.queue[0].stamp.T, true
}

// DropPendingBaseAfter removes pending base-event work (inserts and
// deletes) scheduled strictly after tick, returning the number removed.
// Pending derived arrivals are kept regardless of tick: truncated replay
// (ReplayUntil) includes the full consequences of every event up to the
// horizon, even when the transit delay carries them past it.
func (e *Engine) DropPendingBaseAfter(tick int64) int {
	kept := e.queue[:0]
	dropped := 0
	for _, it := range e.queue {
		if (it.kind == wkInsertBase || it.kind == wkDeleteBase) && it.stamp.T > tick {
			dropped++
			continue
		}
		kept = append(kept, it)
	}
	for i := len(kept); i < len(e.queue); i++ {
		e.queue[i] = nil
	}
	e.queue = kept
	if dropped > 0 {
		heap.Init(&e.queue)
	}
	return dropped
}

func (e *Engine) process(it *workItem) error {
	switch it.kind {
	case wkInsertBase:
		e.stats.BaseInserts++
		at := At{Node: it.node, Tuple: it.tuple, Stamp: it.stamp}
		e.obs.OnBaseInsert(at)
		return e.appear(it.node, it.tuple, it.stamp, 0, support{deriveID: 0})
	case wkDeleteBase:
		e.stats.BaseDeletes++
		return e.deleteBase(it.node, it.tuple, it.stamp)
	case wkArriveDerived:
		if e.cfPhase && e.isKilledOcc(it.stamp.Seq) {
			// A displaced argmax event winner erased before its delivery:
			// the occurrence never happens (delta.go).
			return nil
		}
		d := it.deriv
		d.Head.Stamp = it.stamp
		e.obs.OnDerive(*d)
		sup := support{deriveID: d.ID, rule: d.Rule, body: bodyRefsOf(d)}
		if dec := e.prog.Decl(it.tuple.Table); dec != nil && dec.Event {
			// Event heads have no row for the dependents cascade to
			// retract; register the derivation under each body element so
			// the counterfactual phase can erase the occurrence when a
			// precondition is retracted (delta.go).
			e.registerEventDeriv(d, sup.body)
		}
		return e.appear(it.node, it.tuple, it.stamp, d.ID, sup)
	default:
		return fmt.Errorf("ndlog: unknown work kind %d", it.kind)
	}
}

func bodyRefsOf(d *Derivation) []bodyRef {
	refs := make([]bodyRef, len(d.Body))
	for i, b := range d.Body {
		refs[i] = bodyRef{node: b.Node, key: b.Tuple.Key(), seq: b.Stamp.Seq}
	}
	return refs
}

// appear handles a tuple occurrence on a node: event tuples trigger rules
// and vanish; state tuples are stored (possibly as an additional support)
// and trigger rules on first appearance.
func (e *Engine) appear(nodeName string, t Tuple, st Stamp, deriveID int64, sup support) error {
	decl := e.prog.Decl(t.Table)
	if decl == nil {
		return fmt.Errorf("ndlog: tuple for undeclared table %s", t.Table)
	}
	n := e.nodeFor(nodeName)
	if decl.Event {
		e.stats.Appears++
		at := At{Node: nodeName, Tuple: t, Stamp: st}
		e.obs.OnAppear(at, deriveID)
		// Record the instantaneous occurrence in history for temporal
		// queries (zero-length closed interval).
		tb := e.writableTable(n, e.tableFor(n, decl))
		tb.histAppend(t.Key(), Interval{From: st, To: st})
		tb.occAppend(t, st)
		if e.cfPhase {
			e.cfMarkDirty(nodeName, t.Table)
		}
		// Events need no delta re-fire: a non-delta event atom never joins
		// (events are not stored), so an event occurrence only ever fires
		// rules as their trigger — which this very call does.
		return e.trigger(nodeName, t, st)
	}
	// An appearance always writes (a new row or an extra support), so the
	// table must be writable up front; rows fetched below come out of the
	// fork-private clone.
	tb := e.writableTable(n, e.tableFor(n, decl))
	key := t.Key()
	if r, ok := tb.live[key]; ok {
		// Additional support for an existing tuple.
		r.supports = append(r.supports, sup)
		e.indexSupport(nodeName, key, sup)
		if e.cfPhase && sup.deriveID == 0 && st.Before(r.appearedAt) {
			// The main run inserted the same tuple later; in the timely
			// run the row exists from st on (delta.go).
			return e.cfBackdateRow(nodeName, tb, decl, r, st)
		}
		return nil
	}
	// Primary-key replacement: a base insertion whose key collides with a
	// live row of a keyed table deletes the old row first.
	if tb.keyIdx != nil && sup.deriveID == 0 {
		pk := primaryKey(decl, t)
		if old, ok := tb.keyIdx[pk]; ok && !old.dead && old.key != key {
			at := At{Node: nodeName, Tuple: old.tuple, Stamp: st}
			for i, s := range old.supports {
				if s.deriveID == 0 {
					old.supports = append(old.supports[:i], old.supports[i+1:]...)
					e.obs.OnBaseDelete(at)
					break
				}
			}
			if len(old.supports) == 0 {
				e.retractRow(nodeName, tb, old, st, 0)
			}
		}
	}
	r := &row{tuple: t.Clone(), key: key, appearedAt: st, supports: []support{sup}}
	tb.live[key] = r
	tb.order = append(tb.order, r)
	tb.noteOrderAppend()
	// Secondary indexes mirror order: a re-appearance after death is a
	// fresh row and is appended again; dead rows stay behind the probe's
	// liveness filter (and serve temporal as-of lookups).
	for _, ix := range tb.indexes {
		ix.insert(r)
	}
	if tb.keyIdx != nil {
		tb.keyIdx[primaryKey(decl, t)] = r
	}
	tb.histAppend(key, Interval{From: st, Open: true})
	e.indexSupport(nodeName, key, sup)
	e.stats.Appears++
	at := At{Node: nodeName, Tuple: t, Stamp: st}
	e.obs.OnAppear(at, deriveID)
	if err := e.trigger(nodeName, t, st); err != nil {
		return err
	}
	if e.cfPhase {
		// A state row that appears during the counterfactual phase was
		// missing from the main run: re-fire the main-phase trigger
		// occurrences that would have joined it (delta.go).
		e.cfMarkDirty(nodeName, t.Table)
		return e.refireForRow(nodeName, r, st, Stamp{})
	}
	return nil
}

func (e *Engine) indexSupport(nodeName, key string, sup support) {
	for _, b := range sup.body {
		ref := b.node + "|" + b.key
		deps, ok := e.dependents[ref]
		if !ok && e.cowBase != nil {
			// First local write to this ref: copy the frozen base's list so
			// the append below never lands in a sealed backing array.
			if base := e.cowBase.depsOf(ref); len(base) > 0 {
				deps = append(make([]dependentRef, 0, len(base)+1), base...)
			}
		}
		e.dependents[ref] = append(deps, dependentRef{node: nodeName, key: key, deriveID: sup.deriveID})
	}
}

// unindexSupport removes a retracted support's dependent refs from every
// body row it referenced. Without this, a dependent retracted through one
// body tuple would leave stale refs under all its other body tuples —
// leaking memory under churn and making later retractions scan dead refs.
func (e *Engine) unindexSupport(nodeName, key string, sup support) {
	for _, b := range sup.body {
		ref := b.node + "|" + b.key
		deps, ok := e.dependents[ref]
		if !ok && e.cowBase != nil {
			if base := e.cowBase.depsOf(ref); len(base) > 0 {
				deps, ok = append([]dependentRef(nil), base...), true
			}
		}
		if !ok || len(deps) == 0 {
			continue // the body row itself is being retracted; its refs went wholesale
		}
		for i, d := range deps {
			if d.node == nodeName && d.key == key && d.deriveID == sup.deriveID {
				deps = append(deps[:i], deps[i+1:]...)
				break
			}
		}
		if len(deps) == 0 {
			e.deleteDeps(ref)
		} else {
			e.dependents[ref] = deps
		}
	}
}

// deleteBase removes one base support from a stored tuple and cascades.
func (e *Engine) deleteBase(nodeName string, t Tuple, st Stamp) error {
	decl := e.prog.Decl(t.Table)
	if decl == nil {
		return fmt.Errorf("ndlog: delete from undeclared table %s", t.Table)
	}
	if decl.Event {
		return fmt.Errorf("ndlog: cannot delete event tuple %s", t)
	}
	n := e.nodeFor(nodeName)
	tb := e.tableFor(n, decl)
	key := t.Key()
	if _, ok := tb.live[key]; !ok {
		return nil // deleting a non-existent tuple is a no-op
	}
	// The delete will mutate the row; clone a sealed table first and
	// re-fetch the row from the writable clone.
	tb = e.writableTable(n, tb)
	r := tb.live[key]
	// Remove one base support.
	removed := false
	for i, s := range r.supports {
		if s.deriveID == 0 {
			r.supports = append(r.supports[:i], r.supports[i+1:]...)
			removed = true
			break
		}
	}
	if !removed {
		return fmt.Errorf("ndlog: %s on %s has no base support to delete", t, nodeName)
	}
	at := At{Node: nodeName, Tuple: t, Stamp: st}
	e.obs.OnBaseDelete(at)
	if len(r.supports) == 0 {
		e.retractRow(nodeName, tb, r, st, 0)
	}
	return nil
}

// primaryKey computes the primary-key projection of a tuple.
func primaryKey(decl *TableDecl, t Tuple) string {
	kb := getKeyBuf()
	b := kb.b[:0]
	for _, i := range decl.Key {
		if i >= 0 && i < len(t.Args) {
			b = append(b, '|')
			b = t.Args[i].appendKey(b)
		}
	}
	s := string(b)
	putKeyBuf(kb, b)
	return s
}

// retractRow removes a row whose support count dropped to zero, emits
// DISAPPEAR, and cascades underivations to dependents.
func (e *Engine) retractRow(nodeName string, tb *table, r *row, st Stamp, underiveID int64) {
	r.dead = true
	r.diedAt = st
	delete(tb.live, r.key)
	if tb.keyIdx != nil {
		pk := primaryKey(tb.decl, r.tuple)
		if tb.keyIdx[pk] == r {
			delete(tb.keyIdx, pk)
		}
	}
	tb.histCloseLast(r.key, st)
	e.stats.Disappears++
	e.obs.OnDisappear(At{Node: nodeName, Tuple: r.tuple, Stamp: st}, underiveID)
	if e.cfPhase {
		e.cfMarkDirty(nodeName, r.tuple.Table)
	}

	ref := nodeName + "|" + r.key
	deps := e.depsOf(ref)
	e.deleteDeps(ref)
	cause := At{Node: nodeName, Tuple: r.tuple, Stamp: st}
	for _, dep := range deps {
		e.retractSupport(dep, cause, st)
	}
	if e.cfPhase {
		// Event-head derivations that joined this row after the stamp of
		// its counterfactual deletion would not have fired in a timely
		// run: erase their occurrences and cascade (delta.go).
		e.eraseEventConsumers(ref, r.appearedAt.Seq, cause, st, true)
	}
}

func (e *Engine) retractSupport(dep dependentRef, cause At, st Stamp) {
	n := e.nodes[dep.node]
	if n == nil {
		return
	}
	var tb *table
	for _, t := range n.tables {
		if _, ok := t.live[dep.key]; ok {
			tb = t
			break
		}
	}
	if tb == nil {
		return
	}
	// The retraction mutates the row's supports; clone a sealed table
	// first and re-fetch the row from the writable clone.
	tb = e.writableTable(n, tb)
	r := tb.live[dep.key]
	idx := -1
	for i, s := range r.supports {
		if s.deriveID == dep.deriveID {
			idx = i
			break
		}
	}
	if idx < 0 {
		return // support already retracted
	}
	s := r.supports[idx]
	r.supports = append(r.supports[:idx], r.supports[idx+1:]...)
	e.unindexSupport(dep.node, dep.key, s)
	if e.cfPhase {
		// An argmax winner retracted after its trigger fired must be
		// re-evaluated: a timely run would have chosen another winner at
		// the trigger (delta.go).
		e.noteCFRetraction(s, st)
	}
	e.deriveID++
	uid := e.deriveID
	ust := e.nextStamp(st.T)
	e.obs.OnUnderive(Underivation{
		ID:       uid,
		DeriveID: s.deriveID,
		Rule:     s.rule,
		Node:     dep.node,
		Head:     At{Node: dep.node, Tuple: r.tuple, Stamp: ust},
		Cause:    cause,
	})
	if len(r.supports) == 0 {
		e.retractRow(dep.node, tb, r, ust, uid)
	}
}

// trigger fires every rule that has a body atom over the delta tuple's
// table, with the delta bound at that atom.
func (e *Engine) trigger(nodeName string, delta Tuple, st Stamp) error {
	for _, ref := range e.prog.triggers(delta.Table) {
		if err := e.fireRule(ref.rule, ref.atom, nodeName, delta, st); err != nil {
			return err
		}
	}
	return nil
}

// binding is one satisfying assignment of a rule body.
type binding struct {
	env  Env
	body []At // per body atom: the matched tuple and its appearance stamp
}

// fireRule evaluates one rule with the delta tuple bound at body atom
// deltaAtom, deriving head tuples for every satisfying binding (or only
// the argmax-winning binding).
func (e *Engine) fireRule(r *Rule, deltaAtom int, nodeName string, delta Tuple, st Stamp) error {
	atom := r.Body[deltaAtom]
	env := Env{}
	if !unifyAtom(atom, nodeName, delta, env) {
		return nil
	}
	seed := binding{env: env, body: make([]At, len(r.Body))}
	seed.body[deltaAtom] = At{Node: nodeName, Tuple: delta, Stamp: st}

	bindings, err := e.joinRest(r, deltaAtom, nodeName, seed, 0, st)
	if err != nil {
		return err
	}
	// Apply assignments and constraints.
	var sat []binding
	for _, b := range bindings {
		ok, err := e.finishBinding(r, &b)
		if err != nil {
			return fmt.Errorf("ndlog: rule %s: %v", r.Name, err)
		}
		if ok {
			sat = append(sat, b)
		}
	}
	if len(sat) == 0 {
		return nil
	}
	if r.CountVar != "" {
		for _, b := range sat {
			if err := e.fireAggregate(r, nodeName, b, st); err != nil {
				return err
			}
		}
		return nil
	}
	if r.ArgMax != "" {
		best := 0
		for i := 1; i < len(sat); i++ {
			bi := sat[i].env[r.ArgMax]
			bb := sat[best].env[r.ArgMax]
			if Less(bb, bi) || (!Less(bi, bb) && bindingKey(sat[i], r) < bindingKey(sat[best], r)) {
				best = i
			}
		}
		sat = sat[best : best+1]
	}
	for _, b := range sat {
		if err := e.derive(r, nodeName, b, deltaAtom, st); err != nil {
			return err
		}
		if r.ArgMax != "" {
			// Remember which winner this trigger derived, so a
			// counterfactual change that flips the winner can retract it
			// (delta.go).
			e.noteArgMaxWin(r, nodeName, delta, st, b)
		}
	}
	return nil
}

func bindingKey(b binding, r *Rule) string {
	_ = r
	return BindingKey(b.env)
}

// BindingKey canonically encodes a variable binding; the engine breaks
// argmax ties by comparing these keys, and the DiffProv reasoning engine
// uses the same encoding to predict argmax outcomes.
func BindingKey(env Env) string {
	keys := make([]string, 0, len(env))
	for k := range env {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	kb := getKeyBuf()
	out := kb.b[:0]
	for _, k := range keys {
		out = append(out, k...)
		out = append(out, '=')
		out = env[k].appendKey(out)
		out = append(out, ';')
	}
	s := string(out)
	putKeyBuf(kb, out)
	return s
}

// joinRest extends the binding over the remaining body atoms (hash join
// in atom order, skipping the delta atom; atoms with no bound columns
// fall back to a nested-loop scan). On error it returns (nil, err) —
// never partially accumulated bindings — and leaves the caller's binding
// untouched.
func (e *Engine) joinRest(r *Rule, deltaAtom int, evalNode string, b binding, next int, st Stamp) ([]binding, error) {
	if next == len(r.Body) {
		return []binding{b}, nil
	}
	if next == deltaAtom {
		return e.joinRest(r, deltaAtom, evalNode, b, next+1, st)
	}
	if e.rfPin != nil && next == e.rfPinAtom {
		// Delta re-fire: the counterfactual row is pinned at this position
		// (delta.go); only it may match, so unchanged main-phase bindings
		// are not re-derived.
		return e.joinPinned(r, deltaAtom, evalNode, b, next, st)
	}
	atom := r.Body[next]
	decl := e.prog.Decl(atom.Table)
	if decl == nil {
		return nil, fmt.Errorf("ndlog: rule %s: unknown table %s", r.Name, atom.Table)
	}
	if decl.Event {
		// Event tuples are not stored; only the delta position can be
		// an event atom, so a non-delta event atom never joins.
		return nil, nil
	}
	// Resolve the atom's location.
	locNode, locKnown, err := resolveLoc(atom.Loc, evalNode, b.env)
	if err != nil {
		return nil, fmt.Errorf("ndlog: rule %s: %v", r.Name, err)
	}
	if locKnown {
		return e.joinAtom(r, deltaAtom, evalNode, b, next, st, locNode)
	}
	// Unbound location variable: try every node deterministically. The
	// location is bound in a per-node clone of the environment, so no
	// binding can leak into the caller's environment or into sibling
	// bindings — on any exit path, including errors.
	v := atom.Loc.(Var)
	var out []binding
	for _, nn := range e.nodeOrder {
		bn := binding{env: b.env.Clone(), body: b.body}
		bn.env[string(v)] = Str(nn)
		sub, err := e.joinAtom(r, deltaAtom, evalNode, bn, next, st, nn)
		if err != nil {
			return nil, err
		}
		out = append(out, sub...)
	}
	return out, nil
}

// joinAtom matches body atom next against one node's table, extending the
// binding per matching row and recursing over the remaining atoms. When
// the join plan has bound columns for this atom it probes the table's
// hash index — the bucket holds rows in appearance order, so results are
// identical to (a subsequence of) the full scan.
func (e *Engine) joinAtom(r *Rule, deltaAtom int, evalNode string, b binding, next int, st Stamp, nodeName string) ([]binding, error) {
	atom := r.Body[next]
	n := e.nodes[nodeName]
	if n == nil {
		return nil, nil
	}
	tb := n.tables[atom.Table]
	if tb == nil {
		return nil, nil
	}
	rows := tb.order
	if spec := e.planFor(r, deltaAtom, next); spec != nil {
		if key, ok := probeKey(atom, spec, b.env); ok {
			if ix := tb.indexes[spec.sig]; ix != nil {
				rows = ix.buckets[key]
				e.stats.IndexProbes++
			} else {
				e.stats.IndexFallbacks++
			}
		} else {
			e.stats.IndexFallbacks++
		}
	} else {
		e.stats.IndexScans++
	}
	var out []binding
	for _, rw := range rows {
		if rw.dead || st.Before(rw.appearedAt) {
			continue
		}
		if !quickMatch(atom, b.env, rw.tuple) {
			continue
		}
		env2 := b.env.Clone()
		if !unifyAtom(atom, nodeName, rw.tuple, env2) {
			continue
		}
		b2 := binding{env: env2, body: make([]At, len(b.body))}
		copy(b2.body, b.body)
		b2.body[next] = At{Node: nodeName, Tuple: rw.tuple, Stamp: rw.appearedAt}
		rest, err := e.joinRest(r, deltaAtom, evalNode, b2, next+1, st)
		if err != nil {
			return nil, err
		}
		out = append(out, rest...)
	}
	return out, nil
}

// resolveLoc resolves a body atom's location term. Returns the node name
// and whether it is determined by the current environment.
func resolveLoc(loc Expr, evalNode string, env Env) (string, bool, error) {
	if loc == nil {
		return evalNode, true, nil
	}
	switch l := loc.(type) {
	case Const:
		s, ok := l.V.(Str)
		if !ok {
			return "", false, fmt.Errorf("location constant %s is not a node name", l.V)
		}
		return string(s), true, nil
	case Var:
		if v, ok := env[string(l)]; ok {
			s, ok := v.(Str)
			if !ok {
				return "", false, fmt.Errorf("location variable %s bound to non-node %s", string(l), v)
			}
			return string(s), true, nil
		}
		return "", false, nil
	default:
		v, err := loc.Eval(env)
		if err != nil {
			return "", false, err
		}
		s, ok := v.(Str)
		if !ok {
			return "", false, fmt.Errorf("location expression %s is not a node name", loc)
		}
		return string(s), true, nil
	}
}

// quickMatch cheaply rejects rows that cannot unify: constant arguments
// and already-bound variables must equal the tuple's fields. It never
// mutates the environment, so callers can filter before cloning.
func quickMatch(atom Atom, env Env, t Tuple) bool {
	if len(atom.Args) != len(t.Args) {
		return false
	}
	for i, arg := range atom.Args {
		switch a := arg.(type) {
		case Const:
			if a.V != t.Args[i] {
				return false
			}
		case Var:
			if v, ok := env[string(a)]; ok && v != t.Args[i] {
				return false
			}
		}
	}
	return true
}

// unifyAtom unifies a body atom against a concrete tuple at a node,
// extending env in place. Returns false (env possibly partially extended;
// callers clone) on mismatch.
func unifyAtom(atom Atom, nodeName string, t Tuple, env Env) bool {
	if atom.Table != t.Table || len(atom.Args) != len(t.Args) {
		return false
	}
	if atom.Loc != nil {
		switch l := atom.Loc.(type) {
		case Var:
			if v, ok := env[string(l)]; ok {
				if v != Str(nodeName) {
					return false
				}
			} else {
				env[string(l)] = Str(nodeName)
			}
		case Const:
			if l.V != Str(nodeName) {
				return false
			}
		default:
			v, err := atom.Loc.Eval(env)
			if err != nil || v != Str(nodeName) {
				return false
			}
		}
	}
	for i, arg := range atom.Args {
		switch a := arg.(type) {
		case Var:
			if v, ok := env[string(a)]; ok {
				if v != t.Args[i] {
					return false
				}
			} else {
				env[string(a)] = t.Args[i]
			}
		case Const:
			if a.V != t.Args[i] {
				return false
			}
		default:
			v, err := arg.Eval(env)
			if err != nil || v != t.Args[i] {
				return false
			}
		}
	}
	return true
}

// finishBinding applies the rule's assignments and checks constraints.
// An assignment whose variable is already bound by the body acts as a
// unification constraint: the binding survives only if the computed value
// matches (datalog semantics of "=").
func (e *Engine) finishBinding(r *Rule, b *binding) (bool, error) {
	for _, a := range r.Assigns {
		v, err := a.Expr.Eval(b.env)
		if err != nil {
			return false, err
		}
		if old, bound := b.env[a.Var]; bound {
			if old != v {
				return false, nil
			}
			continue
		}
		b.env[a.Var] = v
	}
	for _, w := range r.Where {
		ok, err := EvalBool(w, b.env)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// derive produces the rule head for a satisfying binding.
func (e *Engine) derive(r *Rule, evalNode string, b binding, deltaAtom int, st Stamp) error {
	args := make([]Value, len(r.Head.Args))
	for i, expr := range r.Head.Args {
		v, err := expr.Eval(b.env)
		if err != nil {
			return fmt.Errorf("ndlog: rule %s head: %v", r.Name, err)
		}
		args[i] = v
	}
	head := Tuple{Table: r.Head.Table, Args: args}
	destNode, known, err := resolveLoc(r.Head.Loc, evalNode, b.env)
	if err != nil || !known {
		return fmt.Errorf("ndlog: rule %s: unresolved head location: %v", r.Name, err)
	}
	e.stats.Derivations++
	if e.deriveLimit > 0 && e.stats.Derivations > e.deriveLimit {
		return fmt.Errorf("ndlog: derivation limit %d exceeded (non-terminating model? e.g. a forwarding loop)", e.deriveLimit)
	}
	e.deriveID++
	d := &Derivation{
		ID:      e.deriveID,
		Rule:    r.Name,
		Node:    evalNode,
		Body:    b.body,
		Trigger: deltaAtom,
	}
	// Heads are always delivered through the work queue — local heads in
	// the same tick, remote heads after the transit delay — so that long
	// derivation chains iterate instead of recursing (a cyclic model
	// must hit the derivation limit, not the Go stack).
	tick := st.T
	if destNode != evalNode {
		e.stats.Messages++
		tick += e.delay
	}
	d.Head = At{Node: destNode, Tuple: head} // stamp filled on delivery
	q := &e.queue
	if e.cfPhase {
		// Consequences of counterfactual changes stay in the
		// counterfactual phase: they arrive through its heap, in stamp
		// order among the remaining changes.
		q = &e.cfQueue
	}
	dst := e.nextStamp(tick)
	e.lastDeriveStamp = dst
	heap.Push(q, &workItem{
		stamp: dst,
		kind:  wkArriveDerived,
		node:  destNode,
		tuple: head,
		deriv: d,
	})
	return nil
}

// Exists reports whether the tuple existed on the node at the given stamp
// (for event tuples: whether it occurred exactly then or earlier in the
// same tick).
func (e *Engine) Exists(nodeName string, t Tuple, at Stamp) bool {
	n := e.nodes[nodeName]
	if n == nil {
		return false
	}
	tb := n.tables[t.Table]
	if tb == nil {
		return false
	}
	for _, iv := range tb.histOf(t.Key()) {
		if iv.Contains(at) {
			return true
		}
	}
	return false
}

// ExistsEver reports whether the tuple ever existed on the node up to now.
func (e *Engine) ExistsEver(nodeName string, t Tuple) bool {
	n := e.nodes[nodeName]
	if n == nil {
		return false
	}
	tb := n.tables[t.Table]
	if tb == nil {
		return false
	}
	return len(tb.histOf(t.Key())) > 0
}

// History returns the existence intervals of a tuple on a node.
func (e *Engine) History(nodeName string, t Tuple) []Interval {
	n := e.nodes[nodeName]
	if n == nil {
		return nil
	}
	tb := n.tables[t.Table]
	if tb == nil {
		return nil
	}
	return append([]Interval(nil), tb.histOf(t.Key())...)
}

// TuplesAt returns the tuples of a table that existed on the node at the
// given stamp, in appearance order. Used for temporal joins ("the state
// of the system as of the time at which the missing tuple would have had
// to exist", §4.8).
func (e *Engine) TuplesAt(nodeName, tableName string, at Stamp) []Tuple {
	n := e.nodes[nodeName]
	if n == nil {
		return nil
	}
	tb := n.tables[tableName]
	if tb == nil {
		return nil
	}
	var out []Tuple
	for _, r := range tb.order {
		if at.Before(r.appearedAt) {
			continue
		}
		if r.dead && !at.Before(r.diedAt) {
			continue
		}
		out = append(out, r.tuple)
	}
	return out
}

// UnifyAtom unifies a body atom against a concrete tuple located on a
// node, extending env in place; it returns false on mismatch (env may be
// partially extended — clone before calling if that matters). Exported
// for the DiffProv reasoning engine, which re-binds rules against
// provenance vertexes.
func UnifyAtom(atom Atom, nodeName string, t Tuple, env Env) bool {
	return unifyAtom(atom, nodeName, t, env)
}

// ResolveLocation resolves a location term under an environment,
// reporting the node name and whether it is determined.
func ResolveLocation(loc Expr, evalNode string, env Env) (string, bool, error) {
	return resolveLoc(loc, evalNode, env)
}

// LiveTuples returns the live tuples of a table on a node in appearance
// order.
func (e *Engine) LiveTuples(nodeName, tableName string) []Tuple {
	n := e.nodes[nodeName]
	if n == nil {
		return nil
	}
	tb := n.tables[tableName]
	if tb == nil {
		return nil
	}
	var out []Tuple
	for _, r := range tb.order {
		if !r.dead {
			out = append(out, r.tuple)
		}
	}
	return out
}

// Nodes returns the node names in first-reference order.
func (e *Engine) Nodes() []string {
	return append([]string(nil), e.nodeOrder...)
}
