package ndlog

import (
	"fmt"
	"strconv"
	"strings"
)

// parseError is a positioned syntax error. Strict parsing (Parse) returns
// it as an error; loose parsing (ParseLoose) converts it into a
// CodeSyntax diagnostic.
type parseError struct {
	pos Pos
	msg string
}

func (e *parseError) Error() string {
	return fmt.Sprintf("ndlog: %d:%d: %s", e.pos.Line, e.pos.Col, e.msg)
}

// errAt builds a parseError at a token's position.
func errAt(t token, format string, args ...interface{}) *parseError {
	return &parseError{pos: t.pos(), msg: fmt.Sprintf(format, args...)}
}

// Parse parses an NDlog program from source text. The syntax:
//
//	// declarations come first
//	table flowEntry/4 base mutable;
//	table packet/3 event base;
//	table packetOut/3 event;
//
//	// rules; uppercase identifiers are variables
//	rule r1 packetOut(@Sw, Hdr, Prt) :-
//	    packet(@Sw, Hdr, InPrt),
//	    flowEntry(@Sw, Prio, Match, Prt),
//	    matches(Hdr, Match),
//	    argmax Prio.
//
// Body items are atoms, assignments (X := expr), boolean constraint
// expressions, "argmax Var" clauses, and "inverse X := expr" clauses
// (hand-written inverse rules per §4.5 of the paper).
//
// Syntax and validation errors cite their source position as line:col.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, prog: NewProgram()}
	if err := p.parseProgram(); err != nil {
		return nil, err
	}
	return p.prog, nil
}

// ParseLoose parses with error recovery for static analysis: instead of
// stopping at the first problem it records a CodeSyntax diagnostic,
// resynchronizes at the next ';' or '.', and keeps going. Rules are added
// without validation (AnalyzeProgram reports their problems with
// positions), and duplicate declarations or rule names become
// CodeDuplicateDecl / CodeDuplicateRule diagnostics instead of errors.
// The returned program contains everything that parsed; the diagnostics
// are not sorted (callers typically append AnalyzeProgram output and sort
// the union).
func ParseLoose(src string) (*Program, []Diag) {
	toks, err := lex(src)
	if err != nil {
		d := Diag{Severity: Error, Code: CodeSyntax, Msg: err.Error()}
		if pe, ok := err.(*parseError); ok {
			d.Pos, d.Msg = pe.pos, pe.msg
		}
		return NewProgram(), []Diag{d}
	}
	p := &parser{toks: toks, prog: NewProgram(), loose: true}
	// parseProgram never returns an error in loose mode.
	_ = p.parseProgram()
	return p.prog, p.diags
}

// MustParse is Parse that panics on error; for embedded scenario sources.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	toks []token
	pos  int
	prog *Program
	// loose enables error recovery: errors become diags and the parser
	// resynchronizes at the next statement terminator.
	loose bool
	diags []Diag
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

// expectSym consumes the next token when it is the expected symbol. On a
// mismatch it reports the error WITHOUT consuming the offending token:
// loose-mode recovery resynchronizes at the next 'table'/'rule' keyword,
// and if the mismatched token is that very keyword (a statement missing
// its terminator), consuming it would silently swallow the whole next
// statement and anchor later diagnostics at the wrong position.
func (p *parser) expectSym(s string) error {
	t := p.peek()
	if t.kind != tokSym || t.text != s {
		return errAt(t, "expected %q, got %s", s, t)
	}
	p.advance()
	return nil
}

func (p *parser) atSym(s string) bool {
	t := p.peek()
	return t.kind == tokSym && t.text == s
}

func (p *parser) atIdent(s string) bool {
	t := p.peek()
	return t.kind == tokIdent && t.text == s
}

// recover converts a parse error into a CodeSyntax diagnostic and skips
// ahead to the next statement start ('table' or 'rule', which cannot
// occur inside a statement) so the declarations and rules after the
// error still parse.
func (p *parser) recover(err error) {
	d := Diag{Severity: Error, Code: CodeSyntax, Msg: err.Error()}
	if pe, ok := err.(*parseError); ok {
		d.Pos, d.Msg = pe.pos, pe.msg
	}
	p.diags = append(p.diags, d)
	for {
		t := p.peek()
		if t.kind == tokEOF {
			return
		}
		if t.kind == tokIdent && (t.text == "table" || t.text == "rule") {
			return
		}
		p.advance()
	}
}

func (p *parser) parseProgram() error {
	for {
		t := p.peek()
		var err error
		switch {
		case t.kind == tokEOF:
			return nil
		case t.kind == tokIdent && t.text == "table":
			err = p.parseDecl()
		case t.kind == tokIdent && t.text == "rule":
			err = p.parseRule()
		default:
			err = errAt(t, "expected 'table' or 'rule', got %s", t)
			if p.loose {
				p.recover(err)
				continue
			}
			return err
		}
		if err != nil {
			if p.loose {
				p.recover(err)
				continue
			}
			return err
		}
	}
}

func (p *parser) parseDecl() error {
	p.advance() // "table"
	name := p.advance()
	if name.kind != tokIdent {
		return errAt(name, "expected table name, got %s", name)
	}
	if err := p.expectSym("/"); err != nil {
		return err
	}
	ar := p.advance()
	if ar.kind != tokNumber {
		return errAt(ar, "expected arity, got %s", ar)
	}
	arity, err := strconv.Atoi(ar.text)
	if err != nil || arity < 0 {
		return errAt(ar, "bad arity %q", ar.text)
	}
	d := TableDecl{Name: name.text, Arity: arity, Pos: name.pos()}
	for {
		t := p.peek()
		if t.kind == tokIdent {
			switch t.text {
			case "event":
				d.Event = true
				p.advance()
				continue
			case "base":
				d.Base = true
				p.advance()
				continue
			case "mutable":
				d.Mutable = true
				p.advance()
				continue
			case "key":
				p.advance()
				if err := p.expectSym("("); err != nil {
					return err
				}
				for !p.atSym(")") {
					it := p.advance()
					if it.kind != tokNumber {
						return errAt(it, "key() expects column indices")
					}
					idx, err := strconv.Atoi(it.text)
					if err != nil || idx < 0 || idx >= arity {
						return errAt(it, "key index %q out of range", it.text)
					}
					d.Key = append(d.Key, idx)
					if p.atSym(",") {
						p.advance()
					}
				}
				if err := p.expectSym(")"); err != nil {
					return err
				}
				continue
			}
		}
		break
	}
	if err := p.expectSym(";"); err != nil {
		return err
	}
	if p.loose && p.prog.Decl(d.Name) != nil {
		p.diags = append(p.diags, Diag{Pos: d.Pos, Severity: Error, Code: CodeDuplicateDecl,
			Msg: fmt.Sprintf("duplicate table declaration %s", d.Name)})
		return nil
	}
	return p.prog.Declare(d)
}

func (p *parser) parseRule() error {
	p.advance() // "rule"
	name := p.advance()
	if name.kind != tokIdent {
		return errAt(name, "expected rule name, got %s", name)
	}
	head, err := p.parseAtom()
	if err != nil {
		return err
	}
	if err := p.expectSym(":-"); err != nil {
		return err
	}
	r := Rule{Name: name.text, Head: head, Pos: name.pos()}
	for {
		if err := p.parseBodyItem(&r); err != nil {
			return err
		}
		if p.atSym(",") {
			p.advance()
			continue
		}
		break
	}
	if err := p.expectSym("."); err != nil {
		return err
	}
	if p.loose {
		if p.prog.Rule(r.Name) != nil {
			p.diags = append(p.diags, Diag{Pos: r.Pos, Severity: Error, Code: CodeDuplicateRule,
				Msg: fmt.Sprintf("duplicate rule name %s", r.Name)})
			return nil
		}
		p.prog.addRuleUnchecked(r)
		return nil
	}
	return p.prog.AddRule(r)
}

// peekAt returns the token n positions ahead, clamped to the trailing EOF.
func (p *parser) peekAt(n int) token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}

func (p *parser) parseBodyItem(r *Rule) error {
	t := p.peek()
	switch {
	case (t.kind == tokSym && t.text == "!" || t.kind == tokIdent && t.text == "not") &&
		p.peekAt(1).kind == tokIdent &&
		p.peekAt(2).kind == tokSym && p.peekAt(2).text == "(":
		// Negated body atom: `!t(...)` or `not t(...)`. Parsed and
		// analyzed (safety, slicing, stratification) but not executable:
		// AnalyzeProgram reports CodeNegation, so strict Parse and
		// Engine.Run refuse the program while `diffprov vet` and
		// `diffprov slice` still reason about it.
		p.advance() // "!" or "not"
		a, err := p.parseAtom()
		if err != nil {
			return err
		}
		a.Negated = true
		r.Body = append(r.Body, a)
		return nil

	case t.kind == tokIdent && t.text == "argmax":
		p.advance()
		v := p.advance()
		if v.kind != tokVar {
			return errAt(v, "argmax expects a variable, got %s", v)
		}
		if r.ArgMax != "" {
			return errAt(v, "duplicate argmax clause")
		}
		r.ArgMax = string(v.text)
		return nil

	case t.kind == tokIdent && t.text == "inverse":
		p.advance()
		v := p.advance()
		if v.kind != tokVar {
			return errAt(v, "inverse expects a variable, got %s", v)
		}
		if err := p.expectSym(":="); err != nil {
			return err
		}
		e, err := p.parseExpr()
		if err != nil {
			return err
		}
		r.Inverses = append(r.Inverses, Assign{Var: v.text, Expr: e})
		return nil

	case t.kind == tokVar && p.toks[p.pos+1].kind == tokSym && p.toks[p.pos+1].text == ":=":
		p.advance()
		p.advance()
		if p.atIdent("count") {
			p.advance()
			if err := p.expectSym("("); err != nil {
				return err
			}
			if err := p.expectSym(")"); err != nil {
				return err
			}
			if r.CountVar != "" {
				return errAt(t, "duplicate count() clause")
			}
			r.CountVar = t.text
			return nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return err
		}
		r.Assigns = append(r.Assigns, Assign{Var: t.text, Expr: e})
		return nil

	case t.kind == tokIdent && p.toks[p.pos+1].kind == tokSym && p.toks[p.pos+1].text == "(" &&
		(p.prog.Decl(t.text) != nil || !HasBuiltin(t.text)):
		// A declared table is always an atom. An identifier that is
		// neither a declared table nor a builtin is parsed as an atom too,
		// so the analyzer can report "unknown table" with a position
		// rather than the parser rejecting it as an unknown function.
		a, err := p.parseAtom()
		if err != nil {
			return err
		}
		r.Body = append(r.Body, a)
		return nil

	default:
		// A constraint expression (comparison or boolean builtin call).
		e, err := p.parseExpr()
		if err != nil {
			return err
		}
		r.Where = append(r.Where, e)
		return nil
	}
}

func (p *parser) parseAtom() (Atom, error) {
	name := p.advance()
	if name.kind != tokIdent {
		return Atom{}, errAt(name, "expected predicate name, got %s", name)
	}
	if err := p.expectSym("("); err != nil {
		return Atom{}, err
	}
	a := Atom{Table: name.text, Pos: name.pos()}
	if p.atSym("@") {
		p.advance()
		loc, err := p.parsePrimary()
		if err != nil {
			return Atom{}, err
		}
		a.Loc = loc
		if p.atSym(",") {
			p.advance()
		}
	}
	for !p.atSym(")") {
		e, err := p.parseExpr()
		if err != nil {
			return Atom{}, err
		}
		a.Args = append(a.Args, e)
		if p.atSym(",") {
			p.advance()
			continue
		}
		break
	}
	if err := p.expectSym(")"); err != nil {
		return Atom{}, err
	}
	return a, nil
}

// Operator precedence levels, loosest first.
var precLevels = [][]string{
	{"==", "!=", "<", "<=", ">", ">="},
	{"|"},
	{"^"},
	{"&"},
	{"<<", ">>"},
	{"+", "-", "++"},
	{"*", "/", "%"},
}

var symToOp = map[string]BinOp{
	"==": OpEq, "!=": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
	"|": OpOr, "^": OpXor, "&": OpAnd, "<<": OpShl, ">>": OpShr,
	"+": OpAdd, "-": OpSub, "++": OpConcat, "*": OpMul, "/": OpDiv, "%": OpMod,
}

func (p *parser) parseExpr() (Expr, error) { return p.parseLevel(0) }

func (p *parser) parseLevel(level int) (Expr, error) {
	if level == len(precLevels) {
		return p.parsePrimary()
	}
	left, err := p.parseLevel(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokSym || !contains(precLevels[level], t.text) {
			return left, nil
		}
		p.advance()
		right, err := p.parseLevel(level + 1)
		if err != nil {
			return nil, err
		}
		left = Bin{Op: symToOp[t.text], L: left, R: right}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.advance()
	switch t.kind {
	case tokVar:
		return Var(t.text), nil
	case tokNumber, tokString, tokHashID:
		v, err := ParseValue(t.text)
		if err != nil {
			return nil, errAt(t, "%v", err)
		}
		return Const{V: v}, nil
	case tokIdent:
		switch t.text {
		case "true":
			return Const{V: Bool(true)}, nil
		case "false":
			return Const{V: Bool(false)}, nil
		}
		if p.atSym("(") {
			p.advance()
			c := Call{Fn: t.text}
			for !p.atSym(")") {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				c.Args = append(c.Args, e)
				if p.atSym(",") {
					p.advance()
					continue
				}
				break
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			// Unknown functions are reported by the analyzer (CodeBuiltin)
			// with a position, not rejected here: Rule.Validate still makes
			// strict Parse fail on them.
			return c, nil
		}
		// Bare lowercase identifier: treat as a string constant (node
		// names like s1, h2 appear as location constants).
		return Const{V: Str(t.text)}, nil
	case tokSym:
		if t.text == "(" {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		if t.text == "-" {
			e, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			return Bin{Op: OpSub, L: Const{V: Int(0)}, R: e}, nil
		}
	}
	return nil, errAt(t, "unexpected token %s in expression", t)
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// FormatTuples renders tuples one per line, for debugging and golden tests.
func FormatTuples(ts []Tuple) string {
	var sb strings.Builder
	for _, t := range ts {
		sb.WriteString(t.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
