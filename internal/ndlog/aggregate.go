package ndlog

import (
	"fmt"
	"sort"
)

// Aggregation support: a rule may bind a variable with `N := count()`,
// turning it into an incremental counting rule. Each triggering event
// increments the group's count, underives the previous head tuple, and
// derives a new head. The provenance of an aggregate is the full set of
// its contributing events, but the engine records it as a delta chain:
// each derivation carries only the new contributor plus a link to the
// previous head derivation (Derivation.AggPrev/AggCount), and the
// provenance layer folds the chain into the full contributor list on
// demand. Recording is therefore O(1) per update and O(k) per group,
// where the old full-list scheme was O(k) and O(k²).
//
// Aggregate rules are restricted to a single event-table body atom with a
// local head: this covers the MapReduce reduce phase (WordCount) while
// keeping evaluation deterministic.

type aggGroup struct {
	count   int64
	prev    Tuple // previous head tuple (to be underived)
	prevID  int64 // derivation id of the previous head
	prevSet bool
}

// validateAggregate checks the restrictions on counting rules, reporting
// the first violation as an error.
func validateAggregate(r *Rule, p *Program) error {
	return firstError(analyzeAggregate(p, r))
}

// analyzeAggregate reports every counting-rule restriction violated by
// the rule as a CodeAggregate diagnostic.
func analyzeAggregate(p *Program, r *Rule) []Diag {
	if r.CountVar == "" {
		return nil
	}
	var ds []Diag
	bad := func(format string, args ...interface{}) {
		ds = append(ds, Diag{
			Pos:      r.Pos,
			Severity: Error,
			Code:     CodeAggregate,
			Msg:      fmt.Sprintf("rule %s: ", r.Name) + fmt.Sprintf(format, args...),
		})
	}
	if r.ArgMax != "" {
		bad("count() and argmax cannot be combined")
	}
	if len(r.Body) != 1 {
		bad("counting rules must have exactly one body atom")
		return ds
	}
	d := p.Decl(r.Body[0].Table)
	if d == nil || !d.Event {
		bad("counting rules must be triggered by an event table")
	}
	hd := p.Decl(r.Head.Table)
	if hd != nil && hd.Event {
		bad("counting rules must derive state, not events")
	}
	if r.Head.Loc != nil {
		// The head location must coincide with the body atom's location
		// (local derivation): either the same variable or the same
		// constant node name.
		local := false
		if r.Body[0].Loc != nil {
			switch hl := r.Head.Loc.(type) {
			case Var:
				bl, ok := r.Body[0].Loc.(Var)
				local = ok && bl == hl
			case Const:
				bl, ok := r.Body[0].Loc.(Const)
				local = ok && bl.V == hl.V
			}
		}
		if !local {
			bad("counting rules must derive locally")
		}
	}
	uses := false
	for _, a := range r.Head.Args {
		for _, v := range FreeVars(a) {
			if v == r.CountVar {
				uses = true
			}
		}
	}
	if !uses {
		bad("head does not use count variable %s", r.CountVar)
	}
	return ds
}

// groupKey computes the aggregation group for a binding: the values of
// every head-referenced variable except the count variable.
func (e *Engine) groupKey(r *Rule, nodeName string, env Env) string {
	vars := map[string]bool{}
	for _, a := range r.Head.Args {
		for _, v := range FreeVars(a) {
			if v != r.CountVar {
				vars[v] = true
			}
		}
	}
	if r.Head.Loc != nil {
		for _, v := range FreeVars(r.Head.Loc) {
			vars[v] = true
		}
	}
	names := make([]string, 0, len(vars))
	for v := range vars {
		names = append(names, v)
	}
	sort.Strings(names)
	kb := getKeyBuf()
	key := kb.b[:0]
	key = append(key, r.Name...)
	key = append(key, '@')
	key = append(key, nodeName...)
	for _, v := range names {
		key = append(key, '|')
		key = append(key, v...)
		key = append(key, '=')
		if val, ok := env[v]; ok {
			key = val.appendKey(key)
		} else {
			// Distinct sentinel for an unbound variable: every appendKey
			// encoding starts with a kind byte ('i', 's', 'b', 'a', 'p',
			// '#'), so '?' cannot collide with any bound value.
			key = append(key, '?')
		}
	}
	s := string(key)
	putKeyBuf(kb, key)
	return s
}

// fireAggregate handles one triggering event for a counting rule. The
// emitted derivation is a delta: its body is the new contributor alone,
// with AggPrev linking to the previous head's derivation and AggCount
// carrying the running count (see the package comment above).
func (e *Engine) fireAggregate(r *Rule, nodeName string, b binding, st Stamp) error {
	// Resolve the head location before touching any group state: a failed
	// derivation must not inflate the group's count.
	destNode, known, err := resolveLoc(r.Head.Loc, nodeName, b.env)
	if err != nil || !known {
		return fmt.Errorf("ndlog: rule %s: unresolved aggregate head location: %v", r.Name, err)
	}

	// Evaluate the head against the incremented count, still without
	// mutating the group, so an evaluation error leaves it untouched too.
	gk := e.groupKey(r, nodeName, b.env)
	g := e.aggGroupFor(gk)
	env := b.env.Clone()
	env[r.CountVar] = Int(g.count + 1)
	args := make([]Value, len(r.Head.Args))
	for i, expr := range r.Head.Args {
		v, err := expr.Eval(env)
		if err != nil {
			return fmt.Errorf("ndlog: rule %s head: %v", r.Name, err)
		}
		args[i] = v
	}
	g.count++

	// Retract the previous count tuple for this group.
	prevID := g.prevID
	if g.prevSet {
		e.retractDerived(destNode, g.prev, g.prevID, b.body[0], st)
	} else {
		prevID = 0
	}

	head := Tuple{Table: r.Head.Table, Args: args}
	e.stats.Derivations++
	e.deriveID++
	d := &Derivation{
		ID:       e.deriveID,
		Rule:     r.Name,
		Node:     nodeName,
		Body:     []At{b.body[0]},
		Trigger:  0,
		AggPrev:  prevID,
		AggCount: g.count,
	}
	hst := e.nextStamp(st.T)
	d.Head = At{Node: destNode, Tuple: head, Stamp: hst}
	g.prev, g.prevID, g.prevSet = head.Clone(), d.ID, true
	e.obs.OnDerive(*d)
	sup := support{deriveID: d.ID, rule: d.Rule, body: bodyRefsOf(d)}
	return e.appear(destNode, head, hst, d.ID, sup)
}

// retractDerived removes a specific derivation's support from a stored
// tuple, underiving it (and cascading) if that was the last support. The
// caller always names a head it previously derived, so a missing node,
// table, row, or support is a broken invariant: it is counted in
// Stats.AggRetractMisses rather than silently ignored, and the
// differential suites assert the counter never moves.
func (e *Engine) retractDerived(nodeName string, t Tuple, deriveID int64, cause At, st Stamp) {
	n := e.nodes[nodeName]
	if n == nil {
		e.stats.AggRetractMisses++
		return
	}
	tb := n.tables[t.Table]
	if tb == nil {
		e.stats.AggRetractMisses++
		return
	}
	if _, ok := tb.live[t.Key()]; !ok {
		e.stats.AggRetractMisses++
		return
	}
	// The retraction mutates the row's supports; clone a sealed table
	// first and re-fetch the row from the writable clone.
	tb = e.writableTable(n, tb)
	r := tb.live[t.Key()]
	idx := -1
	for i, s := range r.supports {
		if s.deriveID == deriveID {
			idx = i
			break
		}
	}
	if idx < 0 {
		e.stats.AggRetractMisses++
		return
	}
	s := r.supports[idx]
	r.supports = append(r.supports[:idx], r.supports[idx+1:]...)
	e.unindexSupport(nodeName, t.Key(), s)
	e.deriveID++
	uid := e.deriveID
	ust := e.nextStamp(st.T)
	e.obs.OnUnderive(Underivation{
		ID:       uid,
		DeriveID: s.deriveID,
		Rule:     s.rule,
		Node:     nodeName,
		Head:     At{Node: nodeName, Tuple: r.tuple, Stamp: ust},
		Cause:    cause,
	})
	if len(r.supports) == 0 {
		e.retractRow(nodeName, tb, r, ust, uid)
	}
}
