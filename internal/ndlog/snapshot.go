package ndlog

import "sort"

// Snapshot is a point-in-time capture of all live state tuples, keyed by
// node and table. Event tuples are never part of a snapshot.
type Snapshot struct {
	Tick  int64
	State map[string]map[string][]Tuple // node -> table -> tuples
}

// CaptureState snapshots the engine's current live state deterministically
// (tuples sorted by canonical key). Used by the checkpointing logging
// engine.
func (e *Engine) CaptureState() Snapshot {
	return e.CaptureStateAt(e.now.T)
}

// CaptureStateAt snapshots the engine's current live state, labeling the
// snapshot with an explicit tick. Checkpointing sessions use it because
// e.now.T can run ahead of the last processed event: scheduling a future
// event bumps the clock immediately.
func (e *Engine) CaptureStateAt(tick int64) Snapshot {
	s := Snapshot{Tick: tick, State: map[string]map[string][]Tuple{}}
	for _, name := range e.nodeOrder {
		n := e.nodes[name]
		tbls := map[string][]Tuple{}
		names := make([]string, 0, len(n.tables))
		for tn := range n.tables {
			names = append(names, tn)
		}
		sort.Strings(names)
		for _, tn := range names {
			tb := n.tables[tn]
			var rows []Tuple
			for _, r := range tb.order {
				if !r.dead {
					rows = append(rows, r.tuple.Clone())
				}
			}
			if len(rows) > 0 {
				sort.Slice(rows, func(i, j int) bool { return rows[i].Key() < rows[j].Key() })
				tbls[tn] = rows
			}
		}
		if len(tbls) > 0 {
			s.State[name] = tbls
		}
	}
	return s
}

// Lookup reports whether the snapshot contains the tuple on the node.
// Rows are stored sorted by canonical key, so the lookup is a binary
// search.
func (s Snapshot) Lookup(node string, t Tuple) bool {
	tbls, ok := s.State[node]
	if !ok {
		return false
	}
	rows := tbls[t.Table]
	key := t.Key()
	i := sort.Search(len(rows), func(i int) bool { return rows[i].Key() >= key })
	return i < len(rows) && rows[i].Key() == key
}

// NumTuples returns the total number of tuples in the snapshot.
func (s Snapshot) NumTuples() int {
	n := 0
	for _, tbls := range s.State {
		for _, rows := range tbls {
			n += len(rows)
		}
	}
	return n
}
