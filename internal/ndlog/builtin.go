package ndlog

import (
	"fmt"
	"hash/fnv"
)

// builtin is a registered function callable from rule bodies and heads.
type builtin struct {
	arity int // -1 = variadic
	eval  func(args []Value) (Value, error)
	// invert, when non-nil, enumerates the possible values of argument
	// arg such that the function applied to args (with args[arg]
	// replaced) yields out. The other argument slots carry their known
	// values. A nil return with nil error means "no preimage"; an
	// ErrNonInvertible error means inversion is not supported.
	invert func(out Value, args []Value, arg int) ([]Value, error)
	// argKinds/resKind, when hasKinds is set, record the value kinds of
	// the builtin's parameters and result for static analysis (AnyKind
	// marks unconstrained slots). Purely advisory: evaluation still
	// type-checks dynamically.
	argKinds []Kind
	resKind  Kind
	hasKinds bool
}

// AnyKind marks an unconstrained builtin parameter or result in a kind
// signature registered with SetBuiltinKinds.
const AnyKind Kind = 0xFF

// ErrNonInvertible is returned when a computation cannot be inverted while
// propagating taints (e.g., a hash). Per §4.9 of the paper, DiffProv
// surfaces the attempted change as a diagnostic clue in that case.
var ErrNonInvertible = fmt.Errorf("ndlog: computation is not invertible")

var builtins = map[string]*builtin{}

// RegisterBuiltin installs a builtin function. Arity -1 means variadic.
// Registration is not safe for concurrent use and is expected to happen
// during package initialization.
func RegisterBuiltin(name string, arity int, eval func([]Value) (Value, error)) {
	builtins[name] = &builtin{arity: arity, eval: eval}
}

// RegisterInvertibleBuiltin installs a builtin with an inverse enumerator.
func RegisterInvertibleBuiltin(name string, arity int,
	eval func([]Value) (Value, error),
	invert func(out Value, args []Value, arg int) ([]Value, error)) {
	builtins[name] = &builtin{arity: arity, eval: eval, invert: invert}
}

// HasBuiltin reports whether a builtin with the given name exists.
func HasBuiltin(name string) bool {
	_, ok := builtins[name]
	return ok
}

// BuiltinArity returns the registered arity of a builtin (-1 = variadic)
// and whether the builtin exists.
func BuiltinArity(name string) (int, bool) {
	b, ok := builtins[name]
	if !ok {
		return 0, false
	}
	return b.arity, true
}

// SetBuiltinKinds records the kind signature of an already-registered
// builtin for static analysis (doc/analysis.md, code ND103). Use AnyKind
// for unconstrained slots. Like registration itself, this is expected to
// happen during package initialization.
func SetBuiltinKinds(name string, result Kind, args ...Kind) {
	b, ok := builtins[name]
	if !ok {
		panic("ndlog: SetBuiltinKinds on unregistered builtin " + name)
	}
	if b.arity >= 0 && len(args) != b.arity {
		panic("ndlog: SetBuiltinKinds arity mismatch for " + name)
	}
	b.argKinds = append([]Kind(nil), args...)
	b.resKind = result
	b.hasKinds = true
}

// BuiltinKinds returns the kind signature registered for a builtin, or
// ok=false when none was declared.
func BuiltinKinds(name string) (args []Kind, result Kind, ok bool) {
	b, found := builtins[name]
	if !found || !b.hasKinds {
		return nil, AnyKind, false
	}
	return b.argKinds, b.resKind, true
}

// Hash64 is the deterministic hash used by hash builtins (and by the
// simulated MapReduce partitioner): FNV-1a over the canonical encoding.
func Hash64(v Value) uint64 {
	h := fnv.New64a()
	h.Write(v.appendKey(nil))
	return h.Sum64()
}

func init() {
	// matches(ip, prefix) — prefix containment test for flow matching.
	RegisterBuiltin("matches", 2, func(args []Value) (Value, error) {
		ip, ok1 := args[0].(IP)
		pfx, ok2 := args[1].(Prefix)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("ndlog: matches(ip, prefix), got %s, %s", args[0].Kind(), args[1].Kind())
		}
		return Bool(pfx.Contains(ip)), nil
	})

	// covers(outer, inner) — prefix-over-prefix containment.
	RegisterBuiltin("covers", 2, func(args []Value) (Value, error) {
		a, ok1 := args[0].(Prefix)
		b, ok2 := args[1].(Prefix)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("ndlog: covers(prefix, prefix), got %s, %s", args[0].Kind(), args[1].Kind())
		}
		return Bool(a.ContainsPrefix(b)), nil
	})

	// octet(ip, i) — i-th octet of an address (invertible only in the
	// trivial sense of enumerating 2^24 preimages, so not invertible).
	RegisterBuiltin("octet", 2, func(args []Value) (Value, error) {
		ip, ok1 := args[0].(IP)
		i, ok2 := args[1].(Int)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("ndlog: octet(ip, int), got %s, %s", args[0].Kind(), args[1].Kind())
		}
		return Int(ip.Octet(int(i))), nil
	})

	// prefix(ip, bits) — construct a prefix from an address. Inverting
	// for the address argument yields the network address itself (the
	// canonical preimage).
	RegisterInvertibleBuiltin("prefix", 2,
		func(args []Value) (Value, error) {
			ip, ok1 := args[0].(IP)
			bits, ok2 := args[1].(Int)
			if !ok1 || !ok2 || bits < 0 || bits > 32 {
				return nil, fmt.Errorf("ndlog: prefix(ip, 0..32)")
			}
			return Prefix{Addr: ip.Mask(uint8(bits)), Bits: uint8(bits)}, nil
		},
		func(out Value, args []Value, arg int) ([]Value, error) {
			pfx, ok := out.(Prefix)
			if !ok {
				return nil, nil
			}
			switch arg {
			case 0:
				return []Value{pfx.Addr}, nil
			case 1:
				return []Value{Int(pfx.Bits)}, nil
			}
			return nil, ErrNonInvertible
		})

	// mask(ip, bits) — network address of ip under a mask length.
	RegisterBuiltin("mask", 2, func(args []Value) (Value, error) {
		ip, ok1 := args[0].(IP)
		bits, ok2 := args[1].(Int)
		if !ok1 || !ok2 || bits < 0 || bits > 32 {
			return nil, fmt.Errorf("ndlog: mask(ip, 0..32)")
		}
		return ip.Mask(uint8(bits)), nil
	})

	// hash(v) — deterministic 64-bit hash; NOT invertible (used to model
	// checksums, bytecode signatures, shuffle partitioners).
	RegisterInvertibleBuiltin("hash", 1,
		func(args []Value) (Value, error) {
			return ID(Hash64(args[0])), nil
		},
		func(Value, []Value, int) ([]Value, error) {
			return nil, ErrNonInvertible
		})

	// hashmod(v, n) — hash(v) mod n; the shuffle partitioner. Not
	// invertible for the hashed argument.
	RegisterInvertibleBuiltin("hashmod", 2,
		func(args []Value) (Value, error) {
			n, ok := args[1].(Int)
			if !ok || n <= 0 {
				return nil, fmt.Errorf("ndlog: hashmod(v, n>0)")
			}
			return Int(Hash64(args[0]) % uint64(n)), nil
		},
		func(Value, []Value, int) ([]Value, error) {
			return nil, ErrNonInvertible
		})

	// min/max over two ints.
	RegisterBuiltin("min2", 2, func(args []Value) (Value, error) {
		if Less(args[0], args[1]) {
			return args[0], nil
		}
		return args[1], nil
	})
	RegisterBuiltin("max2", 2, func(args []Value) (Value, error) {
		if Less(args[0], args[1]) {
			return args[1], nil
		}
		return args[0], nil
	})

	// Kind signatures for static analysis (see analyze.go).
	SetBuiltinKinds("matches", KindBool, KindIP, KindPrefix)
	SetBuiltinKinds("covers", KindBool, KindPrefix, KindPrefix)
	SetBuiltinKinds("octet", KindInt, KindIP, KindInt)
	SetBuiltinKinds("prefix", KindPrefix, KindIP, KindInt)
	SetBuiltinKinds("mask", KindIP, KindIP, KindInt)
	SetBuiltinKinds("hash", KindID, AnyKind)
	SetBuiltinKinds("hashmod", KindInt, AnyKind, KindInt)
	SetBuiltinKinds("min2", AnyKind, AnyKind, AnyKind)
	SetBuiltinKinds("max2", AnyKind, AnyKind, AnyKind)
}
