package ndlog

import (
	"fmt"
	"strings"
)

// Tuple is a row of a table: the unit of system state and events.
type Tuple struct {
	Table string
	Args  []Value
}

// NewTuple constructs a tuple.
func NewTuple(table string, args ...Value) Tuple {
	return Tuple{Table: table, Args: args}
}

// Key returns a canonical string encoding of the tuple, suitable as a map
// key. Two tuples have equal keys iff they are equal.
func (t Tuple) Key() string {
	b := make([]byte, 0, 16+8*len(t.Args))
	b = append(b, t.Table...)
	for _, a := range t.Args {
		b = append(b, '|')
		b = a.appendKey(b)
	}
	return string(b)
}

// Equal reports field-by-field equality.
func (t Tuple) Equal(o Tuple) bool {
	if t.Table != o.Table || len(t.Args) != len(o.Args) {
		return false
	}
	for i := range t.Args {
		if t.Args[i] != o.Args[i] {
			return false
		}
	}
	return true
}

// String renders the tuple in NDlog syntax, e.g. flowEntry(5, 1.2.3.0/24, 8).
func (t Tuple) String() string {
	var sb strings.Builder
	sb.WriteString(t.Table)
	sb.WriteByte('(')
	for i, a := range t.Args {
		if i > 0 {
			sb.WriteString(", ")
		}
		if s, ok := a.(Str); ok {
			fmt.Fprintf(&sb, "%q", string(s))
		} else {
			sb.WriteString(a.String())
		}
	}
	sb.WriteByte(')')
	return sb.String()
}

// Clone returns a deep copy of the tuple.
func (t Tuple) Clone() Tuple {
	args := make([]Value, len(t.Args))
	copy(args, t.Args)
	return Tuple{Table: t.Table, Args: args}
}

// Stamp is a logical timestamp: a tick of simulated time plus an
// engine-global sequence number that orders events within a tick.
type Stamp struct {
	T   int64
	Seq uint64
}

// Before reports whether s orders strictly before o.
func (s Stamp) Before(o Stamp) bool {
	if s.T != o.T {
		return s.T < o.T
	}
	return s.Seq < o.Seq
}

// After reports whether s orders strictly after o.
func (s Stamp) After(o Stamp) bool { return o.Before(s) }

func (s Stamp) String() string { return fmt.Sprintf("t%d.%d", s.T, s.Seq) }

// At is a located, timestamped tuple occurrence.
type At struct {
	Node  string
	Tuple Tuple
	Stamp Stamp
}
