package ndlog

import "testing"

// FuzzParseValue: the literal parser must never panic and successful
// parses of non-string values must render back parseably.
func FuzzParseValue(f *testing.F) {
	for _, seed := range []string{
		"42", "-7", "true", "false", `"hi"`, "1.2.3.4", "10.0.0.0/8",
		"#ff", "", "1.2.3", "300.0.0.1", "1.2.3.4/", "#zz", `"unterminated`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseValue(s)
		if err != nil {
			return
		}
		if _, isStr := v.(Str); isStr {
			return // bare strings are not self-delimiting
		}
		if p, isPfx := v.(Prefix); isPfx && p.Addr != p.Addr.Mask(p.Bits) {
			t.Fatalf("parsed prefix not canonical: %v", p)
		}
		back, err := ParseValue(v.String())
		if err != nil {
			t.Fatalf("rendering %q of %#v does not re-parse: %v", v.String(), v, err)
		}
		if back != v {
			t.Fatalf("round trip changed value: %#v -> %#v", v, back)
		}
	})
}

// FuzzParse: the NDlog program parser must never panic, and accepted
// programs must render to re-parseable text.
func FuzzParse(f *testing.F) {
	f.Add("table t/1 base;\nrule r t2(X) :- t(X).")
	f.Add("table flowEntry/3 base mutable;\ntable packet/1 event base;\nrule fw packet(@N, D) :- packet(@S, D), flowEntry(@S, P, M, N), matches(D, M), argmax P.")
	f.Add("table kv/2 event base; table wc/2; rule w wc(K, N) :- kv(K, V), N := count().")
	f.Add("table a/2 base key(0); rule r a(X, Y) :- a(Y, X), X := Y + 1, inverse Y := X - 1.")
	f.Add("// comment\ntable x/0;")
	f.Add("rule broken")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		rendered := p.String()
		if _, err := Parse(rendered); err != nil {
			t.Fatalf("accepted program does not re-parse: %v\ninput: %q\nrendered: %q", err, src, rendered)
		}
		// An accepted program must analyze without panicking. (Errors are
		// still possible: Parse validates rule-by-rule, while whole-program
		// checks like stratification only run here.)
		for _, d := range AnalyzeProgram(p) {
			if d.String() == "" {
				t.Fatalf("empty diagnostic rendering for %q", src)
			}
		}
	})
}

// FuzzParseLoose: loose parsing plus analysis must never panic, whatever
// the input; every diagnostic must render, and errors recorded by the
// loose parser must not corrupt the recovered program so badly that
// analysis panics on it.
func FuzzParseLoose(f *testing.F) {
	f.Add("table t/1 base;\nrule r t2(X) :- t(X).")
	f.Add("rule broken h( :- .")
	f.Add("table a/1; table a/2; rule r a() :- a(X, Y), Z := nosuch(W).")
	f.Add("table ev/1 event; table agg/1; rule c agg(@N, C) :- ev(@N, X), C := count(). rule f ev(@N, C) :- agg(@N, C).")
	f.Add("\"")
	f.Add("#")
	f.Fuzz(func(t *testing.T, src string) {
		prog, diags := ParseLoose(src)
		diags = append(diags, AnalyzeProgram(prog)...)
		SortDiags(diags)
		for _, d := range diags {
			if d.String() == "" {
				t.Fatal("empty diagnostic rendering")
			}
		}
	})
}

// FuzzAnalyzeProgram drives loose-parser-recovered programs through the
// whole-program analysis and the static slicer: neither may panic, the
// slice must contain its symptom, and it may only name tables the
// program itself mentions.
func FuzzAnalyzeProgram(f *testing.F) {
	f.Add("table t/1 base;\nrule r t2(X) :- t(X).", "t2")
	f.Add(sliceProgram, "out")
	f.Add("table a/1\ntable b/2;\nrule r b(@X, X, Y) :- b(@X, X, Y).", "b")
	f.Add("table t/1 base;\ntable s/1;\nrule r s(X) :- t(X), !s(X).", "s")
	f.Add("table ev/1 event base; table agg/1; rule c agg(@N, C) :- ev(@N, X), C := count().", "agg")
	f.Add("rule broken", "nosuch")
	f.Fuzz(func(t *testing.T, src, symptom string) {
		prog, _ := ParseLoose(src)
		_ = AnalyzeProgram(prog)
		decls := map[string]bool{}
		for _, tb := range prog.Tables() {
			decls[tb] = true
		}
		mentioned := map[string]bool{}
		for _, r := range prog.Rules() {
			mentioned[r.Head.Table] = true
			for i := range r.Body {
				mentioned[r.Body[i].Table] = true
			}
		}
		for _, sym := range append(prog.Tables(), symptom) {
			s := Slice(prog, sym)
			if !s.Contains(sym) {
				t.Fatalf("slice of %q does not contain its own symptom", sym)
			}
			for tb := range s.Tables {
				if tb != sym && !decls[tb] && !mentioned[tb] {
					t.Fatalf("slice of %q includes %q, which the program never mentions", sym, tb)
				}
			}
			for _, tb := range s.Order {
				if !decls[tb] {
					t.Fatalf("slice Order includes undeclared table %q", tb)
				}
			}
			if len(s.Rules) > len(prog.Rules()) {
				t.Fatalf("slice has more rules than the program")
			}
		}
	})
}
