package ndlog

import (
	"strings"
	"testing"
)

func TestAssignActsAsUnificationConstraint(t *testing.T) {
	// B is bound by the route row AND computed by the assignment: only
	// the row whose bucket matches the computed value may derive.
	src := `
table route/2 base mutable;
table seedv/1 base mutable;
table packet/1 event base;
rule fw packet(@Nxt, X) :-
    packet(@Sw, X),
    seedv(@Sw, S),
    B := (X + S) % 2,
    route(@Sw, B, Nxt).
`
	p := MustParse(src)
	e := New(p, nil)
	e.ScheduleInsert("lb", NewTuple("seedv", Int(1)), 0)
	e.ScheduleInsert("lb", NewTuple("route", Int(0), Str("a")), 0)
	e.ScheduleInsert("lb", NewTuple("route", Int(1), Str("b")), 0)
	e.ScheduleInsert("lb", NewTuple("packet", Int(1)), 5) // (1+1)%2 = 0 -> a
	e.ScheduleInsert("lb", NewTuple("packet", Int(2)), 6) // (2+1)%2 = 1 -> b
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !e.ExistsEver("a", NewTuple("packet", Int(1))) {
		t.Error("packet 1 must reach a")
	}
	if !e.ExistsEver("b", NewTuple("packet", Int(2))) {
		t.Error("packet 2 must reach b")
	}
	if e.ExistsEver("b", NewTuple("packet", Int(1))) || e.ExistsEver("a", NewTuple("packet", Int(2))) {
		t.Error("the assignment must filter the non-matching route row")
	}
	// Exactly one derivation per packet.
	if e.Stats().Derivations != 2 {
		t.Errorf("derivations = %d, want 2", e.Stats().Derivations)
	}
}

func TestDerivationLimitStopsLoops(t *testing.T) {
	// A forwarding loop: n1 sends everything to n2 and vice versa.
	src := `
table fwd/1 base mutable;
table packet/1 event base;
rule fw packet(@Nxt, X) :- packet(@Sw, X), fwd(@Sw, Nxt).
`
	p := MustParse(src)
	e := New(p, nil, WithDerivationLimit(1000))
	e.ScheduleInsert("n1", NewTuple("fwd", Str("n2")), 0)
	e.ScheduleInsert("n2", NewTuple("fwd", Str("n1")), 0)
	e.ScheduleInsert("n1", NewTuple("packet", Int(1)), 5)
	err := e.Run()
	if err == nil {
		t.Fatal("a forwarding loop must hit the derivation limit")
	}
	if !strings.Contains(err.Error(), "derivation limit") {
		t.Errorf("error = %v, want a derivation-limit diagnosis", err)
	}
}

func TestDerivationLimitDisabled(t *testing.T) {
	src := `
table a/1 base;
table b/1;
rule r b(X) :- a(X).
`
	e := New(MustParse(src), nil, WithDerivationLimit(0))
	for i := 0; i < 100; i++ {
		e.ScheduleInsert("n", NewTuple("a", Int(int64(i))), int64(i))
	}
	if err := e.Run(); err != nil {
		t.Fatalf("limit 0 disables the guard: %v", err)
	}
}

func TestSnapshotCapture(t *testing.T) {
	src := `
table cfg/1 base mutable;
table d/1;
rule r d(X) :- cfg(X).
`
	e := New(MustParse(src), nil)
	e.ScheduleInsert("n", NewTuple("cfg", Int(2)), 0)
	e.ScheduleInsert("n", NewTuple("cfg", Int(1)), 0)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	snap := e.CaptureState()
	if snap.NumTuples() != 4 {
		t.Fatalf("snapshot tuples = %d, want 4 (2 cfg + 2 derived)", snap.NumTuples())
	}
	if !snap.Lookup("n", NewTuple("d", Int(1))) {
		t.Error("derived tuple missing from snapshot")
	}
	if snap.Lookup("n", NewTuple("d", Int(3))) {
		t.Error("phantom tuple in snapshot")
	}
	if snap.Lookup("m", NewTuple("d", Int(1))) {
		t.Error("snapshot lookup must be per node")
	}
	// Deterministic ordering: tuples sorted by key.
	rows := snap.State["n"]["cfg"]
	if len(rows) != 2 || !(rows[0].Key() < rows[1].Key()) {
		t.Errorf("snapshot rows not in canonical order: %v", rows)
	}
	// Snapshots are deep copies.
	rows[0].Args[0] = Int(99)
	if e.LiveTuples("n", "cfg")[0].Args[0] == Int(99) {
		t.Error("snapshot must not share storage with the engine")
	}
}

func TestEngineErrorsOnBadRuleEval(t *testing.T) {
	// Division by zero inside a rule surfaces as a Run error.
	src := `
table a/1 base;
table b/1;
rule r b(X / 0) :- a(X).
`
	e := New(MustParse(src), nil)
	e.ScheduleInsert("n", NewTuple("a", Int(1)), 0)
	if err := e.Run(); err == nil {
		t.Error("rule evaluation errors must surface")
	}
}

func TestEngineEventChainsInterleaved(t *testing.T) {
	// Two packets in flight simultaneously stay independent.
	p := buildFwdProgram(t)
	e := New(p, nil, WithDelay(5))
	e.ScheduleInsert("s1", NewTuple("flowEntry", Int(1), MustParsePrefix("0.0.0.0/0"), Str("s2")), 0)
	e.ScheduleInsert("s2", NewTuple("flowEntry", Int(1), MustParsePrefix("0.0.0.0/0"), Str("h")), 0)
	e.ScheduleInsert("s1", NewTuple("packet", MustParseIP("1.1.1.1")), 10)
	e.ScheduleInsert("s1", NewTuple("packet", MustParseIP("2.2.2.2")), 11)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for _, ip := range []string{"1.1.1.1", "2.2.2.2"} {
		if !e.ExistsEver("h", NewTuple("packet", MustParseIP(ip))) {
			t.Errorf("packet %s lost", ip)
		}
	}
}
