// Package analysis is the source-level front end of the NDlog program
// checker: it parses program text with error recovery (ndlog.ParseLoose),
// merges the parse diagnostics with the whole-program analysis
// (ndlog.AnalyzeProgram), and renders file:line:col reports. It backs the
// `diffprov vet` subcommand; doc/analysis.md documents the diagnostic
// codes.
package analysis

import (
	"fmt"
	"io"
	"os"

	"repro/internal/ndlog"
)

// Result holds the diagnostics for one source unit (a .ndlog file or a
// built-in scenario program).
type Result struct {
	// Name identifies the unit in reports: a file path, or a built-in
	// program name like "builtin:sdn".
	Name string
	// Program is what parsed; in loose mode it contains every
	// declaration and rule that survived error recovery.
	Program *ndlog.Program
	// Diags is the merged, sorted diagnostic list.
	Diags []ndlog.Diag
}

// Errors counts Error-severity diagnostics.
func (r *Result) Errors() int {
	n := 0
	for _, d := range r.Diags {
		if d.Severity == ndlog.Error {
			n++
		}
	}
	return n
}

// Warnings counts Warning-severity diagnostics.
func (r *Result) Warnings() int { return len(r.Diags) - r.Errors() }

// Format writes one line per diagnostic as
// "name:line:col: severity[CODE]: message" (the position part is omitted
// for diagnostics with no source position).
func (r *Result) Format(w io.Writer) {
	for _, d := range r.Diags {
		if d.Pos.IsValid() {
			fmt.Fprintf(w, "%s:%s: %s[%s]: %s\n", r.Name, d.Pos, d.Severity, d.Code, d.Msg)
		} else {
			fmt.Fprintf(w, "%s: %s[%s]: %s\n", r.Name, d.Severity, d.Code, d.Msg)
		}
	}
}

// AnalyzeSource parses NDlog source with error recovery and analyzes
// whatever parsed, returning every diagnostic found.
func AnalyzeSource(name, src string) *Result {
	prog, diags := ndlog.ParseLoose(src)
	diags = append(diags, ndlog.AnalyzeProgram(prog)...)
	ndlog.SortDiags(diags)
	return &Result{Name: name, Program: prog, Diags: diags}
}

// AnalyzeProgram analyzes an already-constructed program (e.g. one of the
// built-in scenario models).
func AnalyzeProgram(name string, p *ndlog.Program) *Result {
	diags := ndlog.AnalyzeProgram(p)
	return &Result{Name: name, Program: p, Diags: diags}
}

// AnalyzeFile reads and analyzes one .ndlog source file.
func AnalyzeFile(path string) (*Result, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return AnalyzeSource(path, string(src)), nil
}
