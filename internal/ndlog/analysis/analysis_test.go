package analysis

import (
	"strings"
	"testing"

	"repro/internal/ndlog"
)

// badProgram is one checker test case: a source, the diagnostic code it
// must produce, and the exact position the diagnostic must cite.
type badProgram struct {
	name string
	src  string
	code string
	line int
	col  int
}

var badPrograms = []badProgram{
	{
		name: "syntax-missing-arity",
		src:  `table t/;`,
		code: ndlog.CodeSyntax, line: 1, col: 9,
	},
	{
		name: "syntax-unexpected-char",
		src:  "table t/1 $;",
		code: ndlog.CodeSyntax, line: 1, col: 11,
	},
	{
		name: "syntax-unterminated-string",
		src:  "table t/1 base;\ntable h/0 event;\nrule r h() :- t(A), A == \"oops.",
		code: ndlog.CodeSyntax, line: 3, col: 26,
	},
	{
		name: "undefined-body-table",
		src:  "table h/1;\nrule r h(@n, X) :- ghost(@n, X).",
		code: ndlog.CodeUndefined, line: 2, col: 20,
	},
	{
		name: "undefined-head-table",
		src:  "table b/1 base;\nrule r ghost(@n, X) :- b(@n, X).",
		code: ndlog.CodeUndefined, line: 2, col: 8,
	},
	{
		name: "body-arity",
		src:  "table b/2 base;\ntable h/1;\nrule r h(@n, X) :- b(@n, X).",
		code: ndlog.CodeArity, line: 3, col: 20,
	},
	{
		name: "head-arity",
		src:  "table b/1 base;\ntable h/2;\nrule r h(@n, X) :- b(@n, X).",
		code: ndlog.CodeArity, line: 3, col: 8,
	},
	{
		name: "unsafe-head-var",
		src:  "table b/1 base;\ntable h/1;\nrule r h(@n, Y) :- b(@n, X).",
		code: ndlog.CodeUnsafe, line: 3, col: 8,
	},
	{
		name: "unsafe-head-loc",
		src:  "table b/1 base;\ntable h/1;\nrule r h(@L, X) :- b(@n, X).",
		code: ndlog.CodeUnsafe, line: 3, col: 8,
	},
	{
		name: "unsafe-where-var",
		src:  "table b/1 base;\ntable h/1;\nrule r h(@n, X) :- b(@n, X), Y == 3.",
		code: ndlog.CodeUnsafe, line: 3, col: 6,
	},
	{
		name: "unsafe-assign-var",
		src:  "table b/1 base;\ntable h/1;\nrule r h(@n, X) :- b(@n, X), Z := Y + 1.",
		code: ndlog.CodeUnsafe, line: 3, col: 6,
	},
	{
		name: "unsafe-argmax",
		src:  "table b/1 base;\ntable h/1;\nrule r h(@n, X) :- b(@n, X), argmax P.",
		code: ndlog.CodeUnsafe, line: 3, col: 6,
	},
	{
		name: "unknown-function",
		src:  "table b/1 base;\ntable h/1;\nrule r h(@n, X) :- b(@n, X), X == nosuch(X).",
		code: ndlog.CodeBuiltin, line: 3, col: 6,
	},
	{
		name: "builtin-arity",
		src:  "table b/1 base;\ntable h/1;\nrule r h(@n, X) :- b(@n, X), matches(X).",
		code: ndlog.CodeBuiltin, line: 3, col: 6,
	},
	{
		name: "bad-location-kind",
		src:  "table b/1 base;\ntable h/1;\nrule r h(@7, X) :- b(@n, X).",
		code: ndlog.CodeLocation, line: 3, col: 8,
	},
	{
		name: "non-stratified-aggregation",
		src: "table ev/1 event;\ntable agg/1;\n" +
			"rule c agg(@N, C) :- ev(@N, X), C := count().\n" +
			"rule f ev(@N, C) :- agg(@N, C).",
		code: ndlog.CodeStratify, line: 3, col: 6,
	},
	{
		name: "duplicate-decl",
		src:  "table a/1 base;\ntable a/2;",
		code: ndlog.CodeDuplicateDecl, line: 2, col: 7,
	},
	{
		name: "duplicate-rule",
		src: "table b/1 base;\ntable h/1;\n" +
			"rule r h(@n, X) :- b(@n, X).\nrule r h(@n, X) :- b(@n, X).",
		code: ndlog.CodeDuplicateRule, line: 4, col: 6,
	},
	{
		name: "aggregate-over-state",
		src: "table st/1 base;\ntable agg/1;\n" +
			"rule c agg(@N, C) :- st(@N, X), C := count().",
		code: ndlog.CodeAggregate, line: 3, col: 6,
	},
	{
		name: "unused-table",
		src:  "table b/1 base;\ntable lone/2;\ntable h/1;\nrule r h(@n, X) :- b(@n, X).",
		code: ndlog.CodeUnusedTable, line: 2, col: 7,
	},
	{
		name: "underived-table",
		src:  "table b/1 base;\ntable mid/1;\ntable h/1;\nrule r h(@n, X) :- b(@n, X), mid(@n, X).",
		code: ndlog.CodeUnderivedTable, line: 4, col: 30,
	},
	{
		name: "type-conflict",
		src: "table b/1 base;\ntable h/1;\n" +
			"rule r1 h(@n, 5) :- b(@n, X).\nrule r2 h(@n, \"s\") :- b(@n, X).",
		code: ndlog.CodeTypeConflict, line: 2, col: 7,
	},
	{
		name: "shadowed-rule",
		src: "table b/1 base;\ntable h/1;\n" +
			"rule r1 h(@n, X) :- b(@n, X).\nrule r2 h(@n, X) :- b(@n, X).",
		code: ndlog.CodeShadowedRule, line: 4, col: 6,
	},
	{
		name: "implicit-head-loc",
		src:  "table b/1 base;\ntable h/1;\nrule r h(X) :- b(@n, X).",
		code: ndlog.CodeImplicitLoc, line: 3, col: 8,
	},
}

func TestBadPrograms(t *testing.T) {
	for _, tc := range badPrograms {
		t.Run(tc.name, func(t *testing.T) {
			res := AnalyzeSource(tc.name+".ndlog", tc.src)
			want := ndlog.Pos{Line: tc.line, Col: tc.col}
			for _, d := range res.Diags {
				if d.Code == tc.code && d.Pos == want {
					return
				}
			}
			t.Errorf("no %s at %s; got:\n%s", tc.code, want, formatAll(res))
		})
	}
}

// TestBadProgramSeverities checks that ND0xx codes are errors and ND1xx
// codes warnings, matching the documented scheme.
func TestBadProgramSeverities(t *testing.T) {
	for _, tc := range badPrograms {
		res := AnalyzeSource(tc.name+".ndlog", tc.src)
		for _, d := range res.Diags {
			wantErr := strings.HasPrefix(d.Code, "ND0")
			if (d.Severity == ndlog.Error) != wantErr {
				t.Errorf("%s: %s has severity %s", tc.name, d.Code, d.Severity)
			}
		}
	}
}

func TestCleanProgram(t *testing.T) {
	res := AnalyzeSource("clean.ndlog", "table b/1 base;\ntable h/1;\nrule r h(@n, X) :- b(@n, X).")
	if len(res.Diags) != 0 {
		t.Errorf("clean program reported:\n%s", formatAll(res))
	}
	if res.Errors() != 0 || res.Warnings() != 0 {
		t.Errorf("counts = %d errors, %d warnings", res.Errors(), res.Warnings())
	}
}

// TestLooseRecovery checks that a syntax error in one statement does not
// hide the statements after it: the second rule still parses and its
// problems are still reported.
func TestLooseRecovery(t *testing.T) {
	src := "table b/1 base;\ntable h/1;\n" +
		"rule broken h(@n, X) :- ;\n" +
		"rule ok h(@n, Y) :- b(@n, X)."
	res := AnalyzeSource("recover.ndlog", src)
	if res.Program.Rule("ok") == nil {
		t.Fatalf("rule after syntax error was dropped; diags:\n%s", formatAll(res))
	}
	var haveSyntax, haveUnsafe bool
	for _, d := range res.Diags {
		haveSyntax = haveSyntax || d.Code == ndlog.CodeSyntax
		haveUnsafe = haveUnsafe || d.Code == ndlog.CodeUnsafe
	}
	if !haveSyntax || !haveUnsafe {
		t.Errorf("want ND000 and ND003, got:\n%s", formatAll(res))
	}
}

// TestEmptyBodyViaAPI covers CodeEmptyBody, which the grammar cannot
// produce (an empty body fails to parse) but the rule API can: AddRule's
// validation error must cite the code.
func TestEmptyBodyViaAPI(t *testing.T) {
	p := ndlog.NewProgram()
	if err := p.Declare(ndlog.TableDecl{Name: "h", Arity: 0}); err != nil {
		t.Fatal(err)
	}
	err := p.AddRule(ndlog.Rule{Name: "r", Head: ndlog.Atom{Table: "h"}})
	if err == nil {
		t.Fatal("AddRule accepted an empty body")
	}
	if !strings.Contains(err.Error(), ndlog.CodeEmptyBody) {
		t.Errorf("error %v does not cite %s", err, ndlog.CodeEmptyBody)
	}
}

// TestDiagOrdering checks that diagnostics come out sorted by position.
func TestDiagOrdering(t *testing.T) {
	src := "table b/1 base;\ntable lone/2;\ntable h/1;\n" +
		"rule r h(@n, Y) :- b(@n, X), matches(X)."
	res := AnalyzeSource("order.ndlog", src)
	for i := 1; i < len(res.Diags); i++ {
		if res.Diags[i].Pos.Before(res.Diags[i-1].Pos) {
			t.Fatalf("diags out of order:\n%s", formatAll(res))
		}
	}
}

func formatAll(r *Result) string {
	var sb strings.Builder
	r.Format(&sb)
	return sb.String()
}

// TestND2xxExample pins the dependency-graph diagnostics on the seeded
// examples/ndlog/bad/nd2xx.ndlog to exact positions: the same file CI
// requires `diffprov vet` to fail on. Each (code, line, col) here is a
// contract — golden positions the checker must keep stable.
func TestND2xxExample(t *testing.T) {
	res, err := AnalyzeFile("../../../examples/ndlog/bad/nd2xx.ndlog")
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		code string
		line int
		col  int
	}{
		{ndlog.CodeNegation, 18, 48},
		{ndlog.CodeNegationCycle, 18, 48},
		{ndlog.CodeCartesianJoin, 19, 44},
		{ndlog.CodeUnreachable, 20, 6},
		{ndlog.CodeUnreachable, 21, 6},
		{ndlog.CodeAggOverAgg, 25, 6},
	}
	if len(res.Diags) != len(want) {
		t.Fatalf("got %d diagnostics, want %d:\n%s", len(res.Diags), len(want), formatAll(res))
	}
	for i, w := range want {
		d := res.Diags[i]
		if d.Code != w.code || d.Pos.Line != w.line || d.Pos.Col != w.col {
			t.Errorf("diag %d = %s at %d:%d, want %s at %d:%d",
				i, d.Code, d.Pos.Line, d.Pos.Col, w.code, w.line, w.col)
		}
	}
	if res.Errors() != 1 || res.Warnings() != 5 {
		t.Errorf("counts = %d errors, %d warnings, want 1/5", res.Errors(), res.Warnings())
	}
}
