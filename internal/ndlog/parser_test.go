package ndlog

import (
	"strings"
	"testing"
)

const miniProgram = `
// A two-hop forwarding model.
table flowEntry/2 base mutable;
table packet/2 event base;
table delivered/2 event;

rule fwd delivered(@Dst, Hdr, Prt) :-
    packet(@Sw, Hdr, Prt),
    flowEntry(@Sw, Match, Dst),
    matches(Hdr, Match).
`

func TestParseDeclarations(t *testing.T) {
	p, err := Parse(`
table a/2 base mutable;
table b/0 event;
table c/1;
`)
	if err != nil {
		t.Fatal(err)
	}
	a := p.Decl("a")
	if a == nil || a.Arity != 2 || !a.Base || !a.Mutable || a.Event {
		t.Errorf("decl a = %+v", a)
	}
	b := p.Decl("b")
	if b == nil || b.Arity != 0 || !b.Event {
		t.Errorf("decl b = %+v", b)
	}
	c := p.Decl("c")
	if c == nil || c.Arity != 1 || c.Base || c.Event || c.Mutable {
		t.Errorf("decl c = %+v", c)
	}
	if got := p.Tables(); len(got) != 3 || got[0] != "a" {
		t.Errorf("Tables() = %v", got)
	}
}

func TestParseRuleShape(t *testing.T) {
	// The arities in the source below are deliberately consistent.
	src := `
table packet/2 event base;
table flowEntry/2 base mutable;
table out/1 event;
rule r1 out(@Sw, Hdr) :- packet(@Sw, Hdr, P), flowEntry(@Sw, Prio, M), matches(Hdr, M), argmax Prio.
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	r := p.Rule("r1")
	if r == nil {
		t.Fatal("rule r1 missing")
	}
	if r.Head.Table != "out" || len(r.Head.Args) != 1 {
		t.Errorf("head = %v", r.Head)
	}
	if len(r.Body) != 2 {
		t.Errorf("body atoms = %d, want 2", len(r.Body))
	}
	if len(r.Where) != 1 {
		t.Errorf("constraints = %d, want 1", len(r.Where))
	}
	if r.ArgMax != "Prio" {
		t.Errorf("argmax = %q", r.ArgMax)
	}
	if loc, ok := r.Body[0].Loc.(Var); !ok || loc != "Sw" {
		t.Errorf("body[0] loc = %v", r.Body[0].Loc)
	}
}

func TestParseAssignAndInverse(t *testing.T) {
	src := `
table foo/2 base;
table bar/2;
rule r bar(A, D) :- foo(A, C), D := 2*C+1, inverse C := (D-1)/2.
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	r := p.Rule("r")
	if len(r.Assigns) != 1 || r.Assigns[0].Var != "D" {
		t.Fatalf("assigns = %v", r.Assigns)
	}
	v, err := r.Assigns[0].Expr.Eval(Env{"C": Int(3)})
	if err != nil || v != Int(7) {
		t.Errorf("2*3+1 = %v, %v", v, err)
	}
	if len(r.Inverses) != 1 || r.Inverses[0].Var != "C" {
		t.Fatalf("inverses = %v", r.Inverses)
	}
	iv, err := r.Inverses[0].Expr.Eval(Env{"D": Int(7)})
	if err != nil || iv != Int(3) {
		t.Errorf("(7-1)/2 = %v, %v", iv, err)
	}
}

func TestParseLiterals(t *testing.T) {
	src := `
table t/5 base;
table h/0 event;
rule r h() :- t(A, B, C, D, E), A == 1.2.3.4, B == 10.0.0.0/8, C == 42, D == "text", E == #ff.
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	r := p.Rule("r")
	if len(r.Where) != 5 {
		t.Fatalf("constraints = %d", len(r.Where))
	}
	wants := []Value{MustParseIP("1.2.3.4"), MustParsePrefix("10.0.0.0/8"), Int(42), Str("text"), ID(255)}
	for i, w := range r.Where {
		b, ok := w.(Bin)
		if !ok || b.Op != OpEq {
			t.Fatalf("constraint %d is %v", i, w)
		}
		c, ok := b.R.(Const)
		if !ok || c.V != wants[i] {
			t.Errorf("literal %d = %v, want %v", i, b.R, wants[i])
		}
	}
}

func TestParseNodeConstants(t *testing.T) {
	src := `
table cfg/1 base;
table out/1 event;
rule r out(@s2, X) :- cfg(@s1, X).
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	r := p.Rule("r")
	hl, ok := r.Head.Loc.(Const)
	if !ok || hl.V != Str("s2") {
		t.Errorf("head loc = %v", r.Head.Loc)
	}
	bl, ok := r.Body[0].Loc.(Const)
	if !ok || bl.V != Str("s1") {
		t.Errorf("body loc = %v", r.Body[0].Loc)
	}
}

func TestParseOperatorPrecedence(t *testing.T) {
	src := `
table t/1 base;
table h/0 event;
rule r h() :- t(A), A + 2 * 3 == 7.
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	w := p.Rule("r").Where[0]
	ok, err := EvalBool(w, Env{"A": Int(1)})
	if err != nil || !ok {
		t.Errorf("1 + 2*3 == 7 should hold: %v %v", ok, err)
	}
}

func TestParseParenAndUnaryMinus(t *testing.T) {
	src := `
table t/1 base;
table h/1 event;
rule r h((A + 1) * -2) :- t(A).
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	v, err := p.Rule("r").Head.Args[0].Eval(Env{"A": Int(2)})
	if err != nil || v != Int(-6) {
		t.Errorf("(2+1)*-2 = %v, %v", v, err)
	}
}

func TestParseErrors(t *testing.T) {
	// Each case is a bad source and a fragment its error message must
	// contain; position fragments (line:col) pin the reported location.
	bad := []struct {
		src  string
		want string
	}{
		{"table;", "1:6: expected table name"},
		{"table t/x;", "1:9: expected arity"},
		{"table t/1", `1:10: expected ";"`},
		{"rule r h() :- .", "1:15: unexpected token"},
		{"table t/1 base; rule r x() :- t(A).", "1:24: "}, // unknown head table x
		{"table t/1 base; table h/0 event; rule r h() :- u(A).", "unknown table u"},
		{"table t/1 base; table h/0 event; rule r h() :- t(A, B).", "arity"},
		{"table t/1 base; table h/1 event; rule r h(B) :- t(A).", "unbound variable B"},
		{"table t/1 base; table h/0 event; rule r h() :- t(A), B < 1.", "unbound variable B"},
		{"table t/1 base; table h/0 event; rule r h() :- t(A), argmax B.", "argmax variable B is unbound"},
		{"table t/1 base; table h/0 event; rule r h() :- t(A), nosuchfn(A).", "unknown table nosuchfn"},
		{"table t/1 base; table t/1;", "duplicate table declaration t"},
		{"frobnicate t/1;", "1:1: expected 'table' or 'rule'"},
		{"table t/1 base; table h/0 event; rule r h() :- t(A). rule r h() :- t(A).", "duplicate rule name r"},
		{`table t/1 base; table h/0 event; rule r h() :- t(A), A == "unterminated.`, "1:59: unterminated string"},
		{"table t/1 base; table h/0 event; rule r h() :- t(A), A == #zz.", "1:59: expected hex digits"},
		{"table t/1 base; table h/0 event; rule r h() :- t(A), A == nope(A).", "unknown function nope"},
	}
	for _, tc := range bad {
		_, err := Parse(tc.src)
		if err == nil {
			t.Errorf("Parse(%q) should fail", tc.src)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Parse(%q) error = %q, want fragment %q", tc.src, err, tc.want)
		}
	}
}

func TestParseComments(t *testing.T) {
	src := `
// leading comment
table t/1 base; // trailing comment
// comment between items
table h/0 event;
rule r h() :- t(A). // done
`
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestProgramStringRoundTrip(t *testing.T) {
	p, err := Parse(miniProgram)
	if err != nil {
		t.Fatal(err)
	}
	rendered := p.String()
	p2, err := Parse(rendered)
	if err != nil {
		t.Fatalf("re-parsing rendered program: %v\n%s", err, rendered)
	}
	if p2.String() != rendered {
		t.Errorf("program rendering is not a fixed point:\n%s\nvs\n%s", rendered, p2.String())
	}
}

func TestRuleString(t *testing.T) {
	p := MustParse(miniProgram)
	s := p.Rule("fwd").String()
	for _, frag := range []string{"rule fwd", "delivered(@Dst", "matches(Hdr, Match)"} {
		if !strings.Contains(s, frag) {
			t.Errorf("rule rendering %q missing %q", s, frag)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	MustParse("nonsense !!!")
}

func TestLexerNumberBoundaries(t *testing.T) {
	toks, err := lex("packet(4.3.2.1).")
	if err != nil {
		t.Fatal(err)
	}
	// ident ( number ) . EOF
	var kinds []tokKind
	var texts []string
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
		texts = append(texts, tk.text)
	}
	if texts[2] != "4.3.2.1" {
		t.Errorf("IP literal lexed as %q", texts[2])
	}
	if texts[4] != "." {
		t.Errorf("rule terminator lexed as %q (kinds %v)", texts[4], kinds)
	}
}

func TestLexerPrefixVsDivision(t *testing.T) {
	toks, err := lex("10.0.0.0/8 6/2")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].text != "10.0.0.0/8" {
		t.Errorf("prefix lexed as %q", toks[0].text)
	}
	if toks[1].text != "6" || toks[2].text != "/" || toks[3].text != "2" {
		t.Errorf("division lexed as %q %q %q", toks[1].text, toks[2].text, toks[3].text)
	}
}

// TestParserRenderRoundTripProperty: rendering any generated program and
// re-parsing it yields an identical rendering (Parse∘String is a fixed
// point over the constructs the generator covers).
func TestParserRenderRoundTripProperty(t *testing.T) {
	gen := func(seed int64) string {
		r := newTestRand(seed)
		src := "table t0/2 base mutable;\ntable t1/3 base key(0);\ntable ev/2 event base;\ntable h/2;\n"
		ruleCount := 1 + int(r()%4)
		for i := 0; i < ruleCount; i++ {
			switch r() % 4 {
			case 0:
				src += "rule r" + itoa(i) + " h(A, B) :- t0(A, B), A > " + itoa(int(r()%9)) + ".\n"
			case 1:
				src += "rule r" + itoa(i) + " h(A, C) :- ev(A, B), C := B * " + itoa(1+int(r()%5)) + " + A.\n"
			case 2:
				src += "rule r" + itoa(i) + " h(A, N) :- ev(A, B), N := count().\n"
			default:
				src += "rule r" + itoa(i) + " h(@X, A, B) :- t1(@X, A, B, P), t0(@y, A, B), argmax P.\n"
			}
		}
		return src
	}
	for seed := int64(0); seed < 40; seed++ {
		src := gen(seed)
		p1, err := Parse(src)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		rendered := p1.String()
		p2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("seed %d: re-parse: %v\n%s", seed, err, rendered)
		}
		if p2.String() != rendered {
			t.Fatalf("seed %d: not a fixed point:\n%s\nvs\n%s", seed, rendered, p2.String())
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	if neg {
		b = append([]byte{'-'}, b...)
	}
	return string(b)
}

func newTestRand(seed int64) func() uint64 {
	s := uint64(seed)*2862933555777941757 + 3037000493
	return func() uint64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
}

// TestParseLooseRecoveryPositions pins the recovery behavior around a
// missing statement terminator: the offending token must NOT be consumed
// by the failed expectation, so the diagnostic anchors at the exact
// token and the following statement still parses. (A former bug had
// expectSym swallow the next statement's 'table'/'rule' keyword, which
// dropped that whole statement and produced spurious downstream
// diagnostics with wrong anchors.)
func TestParseLooseRecoveryPositions(t *testing.T) {
	cases := []struct {
		name     string
		src      string
		wantLine int
		wantCol  int
		check    func(t *testing.T, p *Program)
	}{
		{
			name: "missing semicolon before next decl",
			src: `table a/1
table b/2;
rule r b(@X, X, Y) :- b(@X, X, Y).
`,
			wantLine: 2, wantCol: 1,
			check: func(t *testing.T, p *Program) {
				// The malformed declaration itself is dropped; the
				// statements after the recovery point must all survive.
				if p.Decl("b") == nil {
					t.Error("decl b swallowed by recovery")
				}
				if p.Rule("r") == nil {
					t.Error("rule r lost")
				}
			},
		},
		{
			name: "missing period before next rule",
			src: `table b/2;
rule r1 b(@X, X, Y) :- b(@X, X, Y)
rule r2 b(@X, X, Y) :- b(@X, X, Y).
`,
			wantLine: 3, wantCol: 1,
			check: func(t *testing.T, p *Program) {
				if p.Rule("r2") == nil {
					t.Error("rule r2 swallowed by recovery")
				}
			},
		},
		{
			name: "garbage token anchors exactly",
			src: `table b/2;
rule r1 b(@X, X, ;) :- b(@X, X, Y).
rule r2 b(@X, X, Y) :- b(@X, X, Y).
`,
			wantLine: 2, wantCol: 18,
			check: func(t *testing.T, p *Program) {
				if p.Rule("r2") == nil {
					t.Error("rule r2 lost")
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, diags := ParseLoose(tc.src)
			var syntax []Diag
			for _, d := range diags {
				if d.Code == CodeSyntax {
					syntax = append(syntax, d)
				}
			}
			if len(syntax) != 1 {
				t.Fatalf("want exactly one syntax diagnostic, got %v", diags)
			}
			if syntax[0].Pos.Line != tc.wantLine || syntax[0].Pos.Col != tc.wantCol {
				t.Errorf("diagnostic at %s, want %d:%d (%s)", syntax[0].Pos, tc.wantLine, tc.wantCol, syntax[0].Msg)
			}
			tc.check(t, p)
		})
	}
}
