package ndlog

// Whole-program dependency analysis and static slicing.
//
// The dependency graph has one edge per (rule, body atom): the body
// table can influence the head table. Edges are labeled positive,
// negated, or aggregate; all three count for slicing — a negated atom
// influences the head by its absence, and an aggregate's contributors
// influence the count — so the slice is conservative: it may include
// tables that cannot actually matter, but never excludes one that can.
// Location terms are handled conservatively too: edges are table-level,
// never restricted to particular nodes, so a tuple on ANY node of an
// in-slice table is considered able to influence the symptom.
//
// Slice(p, symptom) is the backward closure over this graph from the
// symptom table. core.Diagnose uses it to skip candidate events whose
// table provably cannot reach the diverging derivation chain, and
// analyzeDeps reuses the same graph for the ND2xx diagnostics.

import (
	"fmt"
	"sort"
)

// DepEdge is one table-level dependency: a tuple of From can influence
// derivations of To through Rule's body atom at Pos.
type DepEdge struct {
	From string
	To   string
	Rule *Rule
	// Negated marks an edge through a negated body atom.
	Negated bool
	// Aggregate marks an edge into a counting rule's head: the From
	// table's tuples are the contributions the aggregate folds over
	// (AggPrev delta chains in the provenance layer).
	Aggregate bool
	// Pos anchors the edge at the body atom's source position.
	Pos Pos
}

// DepGraph is the table dependency graph of a program.
type DepGraph struct {
	prog  *Program
	edges []DepEdge
	// fwd/rev index edges by From/To table.
	fwd map[string][]int
	rev map[string][]int
}

// NewDepGraph builds the dependency graph. Rules whose head or body
// reference undeclared tables still contribute edges (the loose parser
// produces such programs; ND001 reports them separately), so slicing and
// the ND2xx checks stay meaningful on partially-broken programs.
func NewDepGraph(p *Program) *DepGraph {
	g := &DepGraph{prog: p, fwd: map[string][]int{}, rev: map[string][]int{}}
	for _, r := range p.rules {
		for i := range r.Body {
			b := &r.Body[i]
			e := DepEdge{
				From:      b.Table,
				To:        r.Head.Table,
				Rule:      r,
				Negated:   b.Negated,
				Aggregate: r.CountVar != "",
				Pos:       b.Pos,
			}
			g.fwd[e.From] = append(g.fwd[e.From], len(g.edges))
			g.rev[e.To] = append(g.rev[e.To], len(g.edges))
			g.edges = append(g.edges, e)
		}
	}
	return g
}

// Edges returns the dependency edges in rule-definition, body order.
func (g *DepGraph) Edges() []DepEdge { return append([]DepEdge(nil), g.edges...) }

// reachesFwd reports whether target is reachable from start by following
// one or more forward edges.
func (g *DepGraph) reachesFwd(start, target string) bool {
	seen := map[string]bool{}
	stack := []string{}
	for _, ei := range g.fwd[start] {
		stack = append(stack, g.edges[ei].To)
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == target {
			return true
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		for _, ei := range g.fwd[n] {
			stack = append(stack, g.edges[ei].To)
		}
	}
	return false
}

// SliceResult is the outcome of a backward slice from a symptom table.
type SliceResult struct {
	// Symptom is the table the slice was taken from; always in Tables.
	Symptom string
	// Tables is the set of tables that can possibly influence the
	// symptom (including the symptom itself).
	Tables map[string]bool
	// Order lists the declared in-slice tables in declaration order
	// (tables referenced by rules but never declared are in Tables only).
	Order []string
	// Rules lists the in-slice rules — those whose head is in Tables —
	// in definition order. Every body table of an in-slice rule is in
	// Tables.
	Rules []*Rule
}

// Contains reports whether the table is in the slice.
func (s *SliceResult) Contains(table string) bool { return s.Tables[table] }

// Slice computes the backward dependency closure from the symptom table:
// the set of tables and rules that can possibly influence it. Negated
// and aggregate edges are included (conservatism: absence and counts are
// influences too), and location terms are ignored (a tuple on any node
// counts). The symptom itself is always in the slice, declared or not.
func (g *DepGraph) Slice(symptom string) *SliceResult {
	res := &SliceResult{Symptom: symptom, Tables: map[string]bool{symptom: true}}
	stack := []string{symptom}
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ei := range g.rev[t] {
			from := g.edges[ei].From
			if !res.Tables[from] {
				res.Tables[from] = true
				stack = append(stack, from)
			}
		}
	}
	for _, name := range g.prog.declOrder {
		if res.Tables[name] {
			res.Order = append(res.Order, name)
		}
	}
	for _, r := range g.prog.rules {
		if res.Tables[r.Head.Table] {
			res.Rules = append(res.Rules, r)
		}
	}
	return res
}

// Slice is the one-shot form of DepGraph.Slice.
func Slice(p *Program, symptom string) *SliceResult {
	return NewDepGraph(p).Slice(symptom)
}

// analyzeDeps runs the ND2xx dependency-graph diagnostics:
// joins no index plan can cover (CodeCartesianJoin), rules that can
// never influence an output table (CodeUnreachable), negation inside a
// dependency cycle (CodeNegationCycle), and aggregates counting other
// aggregates' outputs (CodeAggOverAgg).
func analyzeDeps(p *Program) []Diag {
	if len(p.rules) == 0 {
		return nil
	}
	g := NewDepGraph(p)
	var ds []Diag
	ds = append(ds, analyzeCartesian(p)...)
	ds = append(ds, analyzeReachability(p, g)...)
	ds = append(ds, analyzeNegationCycles(g)...)
	ds = append(ds, analyzeAggChains(p, g)...)
	return ds
}

// analyzeCartesian flags body atoms that share no variable with any
// earlier positive atom and carry no constant column or location: the
// join planner has nothing to index on, so the atom multiplies the
// binding set by the table's full size (a cartesian product). Negated
// atoms are filters, not joins, and are skipped.
func analyzeCartesian(p *Program) []Diag {
	var ds []Diag
	for _, r := range p.rules {
		prior := map[string]bool{}
		for i := range r.Body {
			b := &r.Body[i]
			if b.Negated {
				continue
			}
			vars := atomVars(b)
			if i > 0 && len(vars) > 0 && !atomHasConst(b) && !sharesAny(vars, prior) {
				ds = append(ds, Diag{Pos: b.Pos, Severity: Warning, Code: CodeCartesianJoin,
					Msg: fmt.Sprintf("rule %s: %s shares no variables with the earlier body atoms and has no constant columns; no index can cover this join (cartesian product)", r.Name, b.Table)})
			}
			for _, v := range vars {
				prior[v] = true
			}
		}
	}
	return ds
}

// atomVars returns the variables of an atom's location and arguments.
func atomVars(a *Atom) []string {
	var out []string
	if a.Loc != nil {
		out = append(out, FreeVars(a.Loc)...)
	}
	for _, arg := range a.Args {
		out = append(out, FreeVars(arg)...)
	}
	return out
}

// atomHasConst reports whether any argument or the location is a
// constant (a point-lookup column an index plan can cover).
func atomHasConst(a *Atom) bool {
	if _, ok := a.Loc.(Const); ok {
		return true
	}
	for _, arg := range a.Args {
		if _, ok := arg.(Const); ok {
			return true
		}
	}
	return false
}

func sharesAny(vars []string, set map[string]bool) bool {
	for _, v := range vars {
		if set[v] {
			return true
		}
	}
	return false
}

// analyzeReachability flags rules whose head can never influence an
// output table. Outputs are inferred: derived event tables (emitted
// events are the observable behavior) plus derived tables no rule body
// reads (chain ends). A rule whose head reaches neither feeds a closed
// cycle that never escapes to anything observable. Programs where the
// inference finds no outputs are skipped.
func analyzeReachability(p *Program, g *DepGraph) []Diag {
	read := map[string]bool{}
	derived := map[string]bool{}
	for _, r := range p.rules {
		derived[r.Head.Table] = true
		for i := range r.Body {
			read[r.Body[i].Table] = true
		}
	}
	sinks := map[string]bool{}
	for t := range derived {
		if !read[t] {
			sinks[t] = true
		}
		if d := p.Decl(t); d != nil && d.Event && !d.Base {
			sinks[t] = true
		}
	}
	if len(sinks) == 0 {
		return nil
	}
	sinkList := make([]string, 0, len(sinks))
	for t := range sinks {
		sinkList = append(sinkList, t)
	}
	sort.Strings(sinkList)
	var ds []Diag
	for _, r := range p.rules {
		head := r.Head.Table
		ok := sinks[head]
		for _, s := range sinkList {
			if ok {
				break
			}
			ok = g.reachesFwd(head, s)
		}
		if !ok {
			ds = append(ds, Diag{Pos: r.Pos, Severity: Warning, Code: CodeUnreachable,
				Msg: fmt.Sprintf("rule %s: derives %s, which cannot reach any output table; the rule can never influence an observable result", r.Name, head)})
		}
	}
	return ds
}

// analyzeNegationCycles flags negated edges inside a dependency cycle:
// the head depends on the absence of a table its own derivations can
// (transitively) produce, so no stratification can order the program.
func analyzeNegationCycles(g *DepGraph) []Diag {
	var ds []Diag
	for _, e := range g.edges {
		if !e.Negated {
			continue
		}
		if e.From == e.To || g.reachesFwd(e.To, e.From) {
			ds = append(ds, Diag{Pos: e.Pos, Severity: Warning, Code: CodeNegationCycle,
				Msg: fmt.Sprintf("rule %s: negation of %s is inside a dependency cycle (%s derives %s back); the program cannot be stratified", e.Rule.Name, e.From, e.To, e.From)})
		}
	}
	return ds
}

// analyzeAggChains flags counting rules that count another counting
// rule's output (directly or transitively): every upstream count change
// retracts and re-derives the downstream aggregate, so the AggPrev
// delta chains compound — O(updates) per upstream contribution instead
// of O(1).
func analyzeAggChains(p *Program, g *DepGraph) []Diag {
	var ds []Diag
	for _, r := range p.rules {
		if r.CountVar == "" || len(r.Body) != 1 {
			continue
		}
		counted := r.Body[0].Table
		for _, q := range p.rules {
			if q == r || q.CountVar == "" {
				continue
			}
			if q.Head.Table == counted || g.reachesFwd(q.Head.Table, counted) {
				ds = append(ds, Diag{Pos: r.Pos, Severity: Warning, Code: CodeAggOverAgg,
					Msg: fmt.Sprintf("rule %s: counts %s, which is derived from aggregate rule %s; aggregate-over-aggregate chains compound incremental folding cost", r.Name, counted, q.Name)})
				break
			}
		}
	}
	return ds
}
