package ndlog

import "sync"

// Pooled scratch buffers for the replay hot path. Counterfactual trials
// run thousands of key encodings (primary keys, group keys, binding keys,
// index probe keys) and table clones per second across candidate-pool
// workers; every buffer pooled here holds data only within a single call
// — the encoded string is materialized with string(b), and the remap map
// is cleared before it is returned — so reuse cannot affect determinism.

// keyBuf wraps the byte slice so Put does not box a fresh interface
// allocation per call.
type keyBuf struct{ b []byte }

var keyBufPool = sync.Pool{
	New: func() interface{} { return &keyBuf{b: make([]byte, 0, 64)} },
}

func getKeyBuf() *keyBuf { return keyBufPool.Get().(*keyBuf) }

func putKeyBuf(kb *keyBuf, b []byte) {
	kb.b = b
	keyBufPool.Put(kb)
}

// rowRemapPool recycles the pointer-remap maps forkTable uses to clone a
// table; cloning happens on every first write to a sealed table, so the
// map would otherwise be reallocated once per dirtied table per trial.
var rowRemapPool = sync.Pool{
	New: func() interface{} { return make(map[*row]*row) },
}
