package ndlog

import (
	"strings"
	"testing"
)

// A counting rule whose head location fails to resolve must not mutate
// the group: the old fireAggregate incremented the count and retracted
// the previous head before resolving the location, so one failed firing
// permanently skewed every later count and left a stale head live.
// Parse validates that counting rules derive locally, so the failure is
// only reachable by mutating the rule after parsing (with the static
// analysis gate off) — which is exactly what this test does.
func TestAggregateFailedHeadResolutionLeavesGroupUntouched(t *testing.T) {
	p := MustParse(wcProgram)
	r := p.Rule("wc")
	origLoc := r.Head.Loc
	r.Head.Loc = Var("Zed") // never bound: resolveLoc reports unknown
	obs := &recordingObserver{}
	e := New(p, obs, WithAnalysis(false))
	e.ScheduleInsert("r1", NewTuple("kv", Str("the"), Int(0)), 0)
	if err := e.Run(); err == nil {
		t.Fatal("Run should fail on the unresolvable head location")
	}
	if len(e.aggGroups) != 0 {
		t.Fatalf("failed firing created/mutated group state: %v", e.aggGroups)
	}
	if len(obs.derives) != 0 {
		t.Errorf("failed firing emitted %d derivations, want 0", len(obs.derives))
	}

	// Repair the rule and fire again on the same engine: the count starts
	// at 1, proving the failed firing neither inflated the count nor left
	// a stale previous head to retract.
	r.Head.Loc = origLoc
	e.ScheduleInsert("r1", NewTuple("kv", Str("the"), Int(1)), 1)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !e.Exists("r1", NewTuple("wordcount", Str("the"), Int(1)), e.Now()) {
		t.Error("count after repair should be 1")
	}
	if e.ExistsEver("r1", NewTuple("wordcount", Str("the"), Int(2))) {
		t.Error("a count of 2 should never have existed")
	}
	if got := e.Stats().AggRetractMisses; got != 0 {
		t.Errorf("AggRetractMisses = %d, want 0", got)
	}
}

// An unbound head variable must contribute a distinct sentinel to the
// group key: the old groupKey appended nothing after "V=", making an
// unbound variable indistinguishable from encodings that end at the same
// byte and collapsing groups that should be independent.
func TestAggregateGroupKeyUnboundSentinel(t *testing.T) {
	p := MustParse(wcProgram)
	e := New(p, nil)
	r := p.Rule("wc")
	bound := e.groupKey(r, "r1", Env{"R": Str("r1"), "W": Str("")})
	unbound := e.groupKey(r, "r1", Env{"R": Str("r1")})
	if bound == unbound {
		t.Errorf("unbound W collides with W bound to the empty string: %q", bound)
	}
	if !strings.Contains(unbound, "W=?") {
		t.Errorf("unbound variable missing the '?' sentinel: %q", unbound)
	}
	// Bound values always open with a kind byte ('i', 's', 'b', 'a', 'p',
	// '#'), so the sentinel cannot alias a bound encoding.
	if strings.Contains(bound, "W=?") {
		t.Errorf("bound W rendered as the sentinel: %q", bound)
	}
}

// retractDerived is always called with a head the engine itself derived,
// so a missing node, table, row, or support is a broken invariant. The
// old code silently returned on all four paths; now each one counts in
// Stats.AggRetractMisses so the differential suites can assert the
// counter never moves in a healthy run.
func TestRetractDerivedMissesAreCounted(t *testing.T) {
	p := MustParse(wcProgram)
	e := New(p, nil)
	e.ScheduleInsert("r1", NewTuple("kv", Str("the"), Int(0)), 0)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().AggRetractMisses; got != 0 {
		t.Fatalf("healthy run: AggRetractMisses = %d, want 0", got)
	}
	head := NewTuple("wordcount", Str("the"), Int(1))
	cause := At{Node: "r1", Tuple: NewTuple("kv", Str("the"), Int(0)), Stamp: e.Now()}
	cases := []struct {
		name     string
		node     string
		tuple    Tuple
		deriveID int64
	}{
		{"unknown node", "nope", head, 1},
		{"unknown table", "r1", NewTuple("bogus", Int(1)), 1},
		{"row not live", "r1", NewTuple("wordcount", Str("zzz"), Int(1)), 1},
		{"support missing", "r1", head, 999_999},
	}
	for i, c := range cases {
		e.retractDerived(c.node, c.tuple, c.deriveID, cause, e.Now())
		if got := e.Stats().AggRetractMisses; got != i+1 {
			t.Errorf("%s: AggRetractMisses = %d, want %d", c.name, got, i+1)
		}
	}
	// Missed retractions must not disturb live state.
	if !e.Exists("r1", head, e.Now()) {
		t.Error("missed retractions must not retract the live head")
	}
}
