package ndlog

import (
	"fmt"
	"strings"
	"testing"
)

// deriveStream renders an observer's derivations compactly for equality
// assertions between indexed and scanning evaluation.
func deriveStream(obs *recordingObserver) string {
	var sb strings.Builder
	for _, d := range obs.derives {
		fmt.Fprintf(&sb, "%d %s %s %s %s trig=%d\n", d.ID, d.Rule, d.Node, d.Head.Tuple, d.Head.Stamp, d.Trigger)
		for _, b := range d.Body {
			fmt.Fprintf(&sb, "  %s %s %s\n", b.Node, b.Tuple, b.Stamp)
		}
	}
	for _, u := range obs.underives {
		fmt.Fprintf(&sb, "underive %d of %d %s\n", u.ID, u.DeriveID, u.Head.Tuple)
	}
	return sb.String()
}

const multiJoinProgram = `
table link/2 base;        // (src, dst)
table cost/2 base;        // (dst, metric)
table ping/1 event base;  // (src)
table reach/3 event;      // (src, dst, metric)
rule r reach(S, D, C) :- ping(@n1, S), link(@n1, S, D), cost(@n1, D, C).
`

func driveMultiJoin(t *testing.T, indexing bool) (*Engine, *recordingObserver) {
	t.Helper()
	p, err := Parse(multiJoinProgram)
	if err != nil {
		t.Fatal(err)
	}
	obs := &recordingObserver{}
	e := New(p, obs, WithIndexing(indexing))
	for i := 0; i < 20; i++ {
		src, dst := Int(int64(i%5)), Int(int64(i))
		if err := e.ScheduleInsert("n1", NewTuple("link", src, dst), 0); err != nil {
			t.Fatal(err)
		}
		if err := e.ScheduleInsert("n1", NewTuple("cost", dst, Int(int64(100+i))), 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if err := e.ScheduleInsert("n1", NewTuple("ping", Int(int64(i))), int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	// Churn: delete some links and ping again, exercising retraction and
	// the liveness filter on index buckets.
	if err := e.ScheduleDelete("n1", NewTuple("link", Int(0), Int(0)), 10); err != nil {
		t.Fatal(err)
	}
	if err := e.ScheduleInsert("n1", NewTuple("ping", Int(0)), 11); err != nil {
		t.Fatal(err)
	}
	// Re-insert after death: the join must see the fresh row.
	if err := e.ScheduleInsert("n1", NewTuple("link", Int(0), Int(0)), 12); err != nil {
		t.Fatal(err)
	}
	if err := e.ScheduleInsert("n1", NewTuple("ping", Int(0)), 13); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return e, obs
}

func TestIndexedJoinMatchesScan(t *testing.T) {
	eIdx, obsIdx := driveMultiJoin(t, true)
	eScan, obsScan := driveMultiJoin(t, false)
	if got, want := deriveStream(obsIdx), deriveStream(obsScan); got != want {
		t.Fatalf("indexed derivation stream differs from scan:\nindexed:\n%s\nscan:\n%s", got, want)
	}
	si, ss := eIdx.Stats(), eScan.Stats()
	if si.IndexProbes == 0 {
		t.Fatalf("indexed run performed no index probes: %+v", si)
	}
	if si.Derivations != ss.Derivations || si.Appears != ss.Appears || si.Disappears != ss.Disappears {
		t.Fatalf("activity counters diverge: indexed %+v, scan %+v", si, ss)
	}
	if ss.IndexProbes != 0 || ss.IndexFallbacks != 0 {
		t.Fatalf("scan run should not probe: %+v", ss)
	}
	if ss.IndexScans == 0 {
		t.Fatalf("scan run recorded no scans: %+v", ss)
	}
}

func TestTuplesMatchingAt(t *testing.T) {
	for _, indexing := range []bool{true, false} {
		t.Run(fmt.Sprintf("indexing=%v", indexing), func(t *testing.T) {
			p, err := Parse(`
table cfg/2 base mutable key(0);
table f/2 base;
table g/2;
rule r g(X, Y) :- f(@n1, X, Y).
`)
			if err != nil {
				t.Fatal(err)
			}
			e := New(p, nil, WithIndexing(indexing))
			if err := e.ScheduleInsert("n1", NewTuple("cfg", Str("a"), Int(1)), 1); err != nil {
				t.Fatal(err)
			}
			if err := e.ScheduleInsert("n1", NewTuple("cfg", Str("b"), Int(2)), 2); err != nil {
				t.Fatal(err)
			}
			// Keyed replacement at t=5: cfg(a, 1) -> cfg(a, 3).
			if err := e.ScheduleInsert("n1", NewTuple("cfg", Str("a"), Int(3)), 5); err != nil {
				t.Fatal(err)
			}
			if err := e.Run(); err != nil {
				t.Fatal(err)
			}
			end := Stamp{T: 100, Seq: ^uint64(0)}
			match := []Match{{Col: 0, Val: Str("a")}}
			got := e.TuplesMatchingAt("n1", "cfg", end, match)
			if len(got) != 1 || !got[0].Equal(NewTuple("cfg", Str("a"), Int(3))) {
				t.Fatalf("live lookup = %v, want [cfg(a, 3)]", got)
			}
			// As-of lookup before the replacement must see the dead row.
			past := Stamp{T: 3, Seq: ^uint64(0)}
			got = e.TuplesMatchingAt("n1", "cfg", past, match)
			if len(got) != 1 || !got[0].Equal(NewTuple("cfg", Str("a"), Int(1))) {
				t.Fatalf("as-of lookup = %v, want [cfg(a, 1)]", got)
			}
			// The indexed result must equal a manual filter of TuplesAt.
			var manual []Tuple
			for _, tp := range e.TuplesAt("n1", "cfg", end) {
				if MatchTuple(match, tp) {
					manual = append(manual, tp)
				}
			}
			got = e.TuplesMatchingAt("n1", "cfg", end, match)
			if len(got) != len(manual) {
				t.Fatalf("TuplesMatchingAt = %v, filtered TuplesAt = %v", got, manual)
			}
			// Unindexed column sets degrade to a filtered scan.
			got = e.TuplesMatchingAt("n1", "cfg", end, []Match{{Col: 1, Val: Int(2)}})
			if len(got) != 1 || !got[0].Equal(NewTuple("cfg", Str("b"), Int(2))) {
				t.Fatalf("fallback lookup = %v, want [cfg(b, 2)]", got)
			}
			// Out-of-range and missing-table lookups are empty, not panics.
			if got := e.TuplesMatchingAt("n1", "cfg", end, []Match{{Col: 9, Val: Int(0)}}); got != nil {
				t.Fatalf("out-of-range column matched %v", got)
			}
			if got := e.TuplesMatchingAt("nx", "cfg", end, match); got != nil {
				t.Fatalf("unknown node matched %v", got)
			}
		})
	}
}

// progWithGhostAtom builds a program whose rule references an undeclared
// table in its second body atom, bypassing AddRule validation — the
// engine must surface the error at evaluation time without returning
// partial bindings or leaking environment entries.
func progWithGhostAtom(t *testing.T, midLoc Expr) *Program {
	t.Helper()
	p := NewProgram()
	for _, d := range []TableDecl{
		{Name: "a", Arity: 1, Base: true, Event: true},
		{Name: "mid", Arity: 1, Base: true},
		{Name: "h", Arity: 1},
	} {
		if err := p.Declare(d); err != nil {
			t.Fatal(err)
		}
	}
	r := &Rule{
		Name: "bad",
		Head: Atom{Table: "h", Args: []Expr{Var("X")}},
		Body: []Atom{
			{Table: "a", Args: []Expr{Var("X")}},
			{Table: "mid", Loc: midLoc, Args: []Expr{Var("X")}},
			{Table: "ghost", Args: []Expr{Var("X")}},
		},
	}
	p.rules = append(p.rules, r)
	p.rulesByName[r.Name] = r
	p.byBodyTable["a"] = append(p.byBodyTable["a"], ruleAtomRef{rule: r, atom: 0})
	return p
}

func TestJoinRestErrorReturnsNoBindings(t *testing.T) {
	p := progWithGhostAtom(t, nil)
	// Analysis off: the ghost atom is the point of the test, and it must
	// reach the runtime join path rather than being refused up front.
	e := New(p, nil, WithAnalysis(false))
	// Two mid rows would each recurse into the ghost atom; the first
	// recursion errors, and joinRest must return (nil, err) rather than
	// the partially accumulated bindings.
	if err := e.ScheduleInsert("n1", NewTuple("mid", Int(1)), 0); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	r := p.Rule("bad")
	b := binding{env: Env{"X": Int(1)}, body: make([]At, len(r.Body))}
	out, err := e.joinRest(r, 0, "n1", b, 1, e.Now())
	if err == nil {
		t.Fatal("expected unknown-table error")
	}
	if out != nil {
		t.Fatalf("joinRest returned %d bindings alongside error %v", len(out), err)
	}
	// End to end: the event insertion surfaces the same error from Run.
	if err := e.ScheduleInsert("n1", NewTuple("a", Int(1)), 1); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err == nil || !strings.Contains(err.Error(), "unknown table ghost") {
		t.Fatalf("Run error = %v, want unknown table ghost", err)
	}
}

func TestJoinRestUnboundLocationDoesNotLeakOnError(t *testing.T) {
	p := progWithGhostAtom(t, Var("L"))
	e := New(p, nil, WithAnalysis(false))
	if err := e.ScheduleInsert("n1", NewTuple("mid", Int(1)), 0); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	r := p.Rule("bad")
	b := binding{env: Env{"X": Int(1)}, body: make([]At, len(r.Body))}
	out, err := e.joinRest(r, 0, "n1", b, 1, e.Now())
	if err == nil {
		t.Fatal("expected unknown-table error")
	}
	if out != nil {
		t.Fatalf("joinRest returned bindings %v alongside error", out)
	}
	if _, leaked := b.env["L"]; leaked {
		t.Fatalf("location binding leaked into caller environment: %v", b.env)
	}
	if len(b.env) != 1 {
		t.Fatalf("caller environment mutated: %v", b.env)
	}
}

func TestUnboundLocationSharedVariableName(t *testing.T) {
	// Two rules use the same location variable name L over different
	// tables; a single trigger fires both. Each must resolve L
	// independently — no binding from one rule's (or one node's) probe
	// may leak into the other's.
	p, err := Parse(`
table t2/1 base;
table t3/1 base;
table ev/1 event base;
table h1/2 event;
table h2/2 event;
rule r1 h1(L, X) :- ev(@n1, X), t2(@L, X).
rule r2 h2(L, X) :- ev(@n1, X), t3(@L, X).
`)
	if err != nil {
		t.Fatal(err)
	}
	obs := &recordingObserver{}
	e := New(p, obs)
	if err := e.ScheduleInsert("nodeA", NewTuple("t2", Int(1)), 0); err != nil {
		t.Fatal(err)
	}
	if err := e.ScheduleInsert("nodeB", NewTuple("t3", Int(1)), 0); err != nil {
		t.Fatal(err)
	}
	if err := e.ScheduleInsert("n1", NewTuple("ev", Int(1)), 1); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, d := range obs.derives {
		got[d.Head.Tuple.String()] = true
	}
	for _, want := range []string{`h1("nodeA", 1)`, `h2("nodeB", 1)`} {
		if !got[want] {
			t.Fatalf("missing derivation %s; got %v", want, got)
		}
	}
	if len(obs.derives) != 2 {
		t.Fatalf("derived %d heads, want 2: %v", len(obs.derives), got)
	}
}

func TestDependentsPrunedUnderChurn(t *testing.T) {
	p, err := Parse(`
table a/1 base;
table b/1 base;
table c/1;
rule r c(X) :- a(@n, X), b(@n, X).
`)
	if err != nil {
		t.Fatal(err)
	}
	e := New(p, nil)
	if err := e.ScheduleInsert("n", NewTuple("b", Int(1)), 0); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	tick := int64(1)
	for i := 0; i < 50; i++ {
		if err := e.ScheduleInsert("n", NewTuple("a", Int(1)), tick); err != nil {
			t.Fatal(err)
		}
		tick++
		if err := e.ScheduleDelete("n", NewTuple("a", Int(1)), tick); err != nil {
			t.Fatal(err)
		}
		tick++
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	for _, refs := range e.dependents {
		total += len(refs)
	}
	// Every cycle fully retracts its derivation: the refs under b's row
	// (the "other cause" body tuple) must be pruned, not accumulate one
	// per cycle.
	if total > 2 {
		t.Fatalf("dependents leak: %d refs remain after churn (want <= 2): %v", total, e.dependents)
	}
}

// TestQuickMatchAgreesWithUnify pins quickMatch's interface equality,
// unifyAtom's unification, and the index-key encoding to one equality
// relation across every Value kind, so the hash-index probe can never
// diverge from unification semantics.
func TestQuickMatchAgreesWithUnify(t *testing.T) {
	vals := []Value{
		Int(0), Int(1), Int(-7),
		Str(""), Str("x"), Str("x|y"),
		Bool(true), Bool(false),
		MustParseIP("1.2.3.4"), MustParseIP("0.0.0.1"),
		MustParsePrefix("10.0.0.0/8"), MustParsePrefix("10.0.0.0/16"),
		ID(0), ID(7),
	}
	for _, a := range vals {
		for _, b := range vals {
			eq := a == b
			tuple := NewTuple("t", b)

			// Constant argument.
			atomC := Atom{Table: "t", Args: []Expr{Const{V: a}}}
			if got := quickMatch(atomC, Env{}, tuple); got != eq {
				t.Errorf("quickMatch(Const %v vs %v) = %v, want %v", a, b, got, eq)
			}
			if got := unifyAtom(atomC, "n", tuple, Env{}); got != eq {
				t.Errorf("unifyAtom(Const %v vs %v) = %v, want %v", a, b, got, eq)
			}

			// Bound variable.
			atomV := Atom{Table: "t", Args: []Expr{Var("X")}}
			if got := quickMatch(atomV, Env{"X": a}, tuple); got != eq {
				t.Errorf("quickMatch(Var=%v vs %v) = %v, want %v", a, b, got, eq)
			}
			if got := unifyAtom(atomV, "n", tuple, Env{"X": a}); got != eq {
				t.Errorf("unifyAtom(Var=%v vs %v) = %v, want %v", a, b, got, eq)
			}

			// Index-key encoding: equal keys iff equal values.
			ka, kb := string(a.appendKey(nil)), string(b.appendKey(nil))
			if (ka == kb) != eq {
				t.Errorf("appendKey(%v)=%q vs appendKey(%v)=%q disagrees with == (%v)", a, ka, b, kb, eq)
			}
		}
	}
	// Multi-column keys stay injective even with separator characters
	// inside string values.
	ix := &tableIndex{spec: &indexSpec{cols: []int{0, 1}, sig: "0,1"}}
	k1 := ix.rowKey(NewTuple("t", Str("x|i1"), Int(2)))
	k2 := ix.rowKey(NewTuple("t", Str("x"), Str("i1|i2")))
	if k1 == k2 {
		t.Fatalf("multi-column row keys collide: %q", k1)
	}
}

// TestJoinPlanSelection pins the static analysis: which columns each
// body atom is indexed on, per choice of delta atom.
func TestJoinPlanSelection(t *testing.T) {
	p, err := Parse(`
table f/2 base;
table g/2 base;
table ev/1 event base;
table out/1 event;
rule r out(Z) :- ev(@n, X), f(@n, X, Y), g(@n, Y, Z).
`)
	if err != nil {
		t.Fatal(err)
	}
	e := New(p, nil)
	r := p.Rule("r")
	// Delta = ev (atom 0): f is probed on col 0 (X bound by the delta);
	// g on col 0 (Y bound by f, which is evaluated first).
	if spec := e.planFor(r, 0, 1); spec == nil || spec.sig != "0" {
		t.Fatalf("plan(delta=0, atom=1) = %v, want cols [0]", spec)
	}
	if spec := e.planFor(r, 0, 2); spec == nil || spec.sig != "0" {
		t.Fatalf("plan(delta=0, atom=2) = %v, want cols [0]", spec)
	}
	// Delta = g (atom 2): by the time f is joined, X is bound by the ev
	// atom (evaluated first) and Y by the delta, so f probes both cols.
	if spec := e.planFor(r, 2, 1); spec == nil || spec.sig != "0,1" {
		t.Fatalf("plan(delta=2, atom=1) = %v, want cols [0,1]", spec)
	}
	// The event table never gets an index.
	if specs := e.tableSpecs["ev"]; len(specs) != 0 {
		t.Fatalf("event table indexed: %v", specs)
	}
	// Indexing off: no plans at all.
	eOff := New(p, nil, WithIndexing(false))
	if spec := eOff.planFor(r, 0, 1); spec != nil {
		t.Fatalf("plan with indexing off = %v, want nil", spec)
	}
}
