package ndlog_test

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ndlog"
	"repro/internal/provenance"
	"repro/internal/replay"
	"repro/internal/scenarios"
)

// serializeGraph renders every vertex of a provenance graph, ID first, so
// two graphs compare byte-identical exactly when their vertexes (and
// hence derivation order) are identical.
func serializeGraph(g *provenance.Graph) string {
	var sb strings.Builder
	g.Vertexes(func(v *provenance.Vertex) {
		fmt.Fprintf(&sb, "%d %s trig=%d kids=%v\n", v.ID, v.String(), v.Trigger, v.Children)
	})
	return sb.String()
}

// serializeSnapshot renders a state snapshot deterministically.
func serializeSnapshot(s ndlog.Snapshot) string {
	var sb strings.Builder
	nodes := make([]string, 0, len(s.State))
	for n := range s.State {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	fmt.Fprintf(&sb, "tick=%d\n", s.Tick)
	for _, n := range nodes {
		tables := make([]string, 0, len(s.State[n]))
		for tn := range s.State[n] {
			tables = append(tables, tn)
		}
		sort.Strings(tables)
		for _, tn := range tables {
			for _, tp := range s.State[n][tn] {
				fmt.Fprintf(&sb, "%s %s\n", n, tp)
			}
		}
	}
	return sb.String()
}

// TestIndexDifferential replays every Table 1 scenario's captured bad
// execution twice — hash-indexed joins on and off — and requires the two
// runs to be byte-identical: same provenance graph (same derivations, in
// the same order, with the same vertex IDs), same final state, and the
// same diagnosis with the same number of rounds. This is the determinism
// guarantee of the indexing layer: an index probe returns exactly the
// rows a table scan would, in appearance order.
func TestIndexDifferential(t *testing.T) {
	for _, name := range scenarios.Names() {
		t.Run(name, func(t *testing.T) {
			s, err := scenarios.Build(name, scenarios.Small)
			if err != nil {
				t.Fatal(err)
			}
			if s.BadSession == nil {
				t.Skipf("%s is imperative (no replay session)", name)
			}
			prog := s.BadSession.Program()
			log := s.BadSession.Log()

			type run struct {
				graph    string
				state    string
				diagnose string
				rounds   int
			}
			runs := map[bool]run{}
			for _, indexing := range []bool{true, false} {
				sess, err := replay.FromLog(prog, log,
					replay.WithEngineOptions(ndlog.WithIndexing(indexing)))
				if err != nil {
					t.Fatal(err)
				}
				eng, g, err := sess.Graph()
				if err != nil {
					t.Fatal(err)
				}
				// The graphs must be identical, so the scenario's bad
				// vertex ID addresses the same derivation in this graph.
				badTree := g.Tree(s.Bad.Vertex.ID)
				if badTree == nil {
					t.Fatalf("bad vertex %d missing from replayed graph", s.Bad.Vertex.ID)
				}
				world, err := core.NewWorld(sess)
				if err != nil {
					t.Fatal(err)
				}
				res, err := core.Diagnose(context.Background(), s.Good, badTree, world, core.Options{})
				if err != nil {
					t.Fatalf("diagnose (indexing=%v): %v", indexing, err)
				}
				if s.Check != nil {
					if err := s.Check(res); err != nil {
						t.Fatalf("check (indexing=%v): %v", indexing, err)
					}
				}
				var ch []string
				for _, c := range res.Changes {
					ch = append(ch, c.String())
				}
				runs[indexing] = run{
					graph:    serializeGraph(g),
					state:    serializeSnapshot(eng.CaptureState()),
					diagnose: strings.Join(ch, "\n"),
					rounds:   res.Iterations,
				}
			}
			on, off := runs[true], runs[false]
			if on.graph != off.graph {
				t.Errorf("provenance graphs differ between indexing on and off:\non (%d bytes):\n%.2000s\noff (%d bytes):\n%.2000s",
					len(on.graph), on.graph, len(off.graph), off.graph)
			}
			if on.state != off.state {
				t.Errorf("final states differ:\non:\n%s\noff:\n%s", on.state, off.state)
			}
			if on.diagnose != off.diagnose {
				t.Errorf("diagnoses differ:\non:\n%s\noff:\n%s", on.diagnose, off.diagnose)
			}
			if on.rounds != off.rounds {
				t.Errorf("iteration counts differ: on=%d off=%d", on.rounds, off.rounds)
			}
		})
	}
}
