package ndlog

// Fork copies the engine's runnable mid-execution state — tables and rows
// with their appearance order, supports and dependents, the pending work
// queue, the clock, sequence counters, and the secondary hash indexes —
// into a new engine observed by obs. The fork and the original evolve
// independently afterwards: scheduling and running either engine never
// affects the other.
//
// A sealed engine (Seal) with copy-on-write enabled (the default) is
// forked in O(#tables + pending queue): the frozen tables, dependent
// maps, aggregate groups, and immutable pins are shared by reference and
// cloned only on first write (see cow.go). Otherwise Fork deep-copies;
// the results are byte-identical either way.
//
// Fork never mutates the receiver, so many goroutines may fork the same
// sealed engine concurrently (replay sessions fork a shared cached prefix
// engine from concurrent clones). Immutable structure is shared rather
// than copied: the program, join plans, tuple argument slices, derivation
// body slices, and support body references are all written once before
// they become reachable and only read afterwards.
//
// A nil obs discards observer callbacks (like New). To reproduce a
// from-scratch run stamp-for-stamp, the original engine must use a
// sequence band (WithSeqBand) so base-event stamps depend only on
// schedule positions; Fork copies the band configuration and counters.
func (e *Engine) Fork(obs Observer) *Engine {
	if obs == nil {
		obs = NopObserver{}
	}
	if e.cow && e.sealed {
		return e.forkCoW(obs)
	}
	f := &Engine{
		prog:        e.prog,
		obs:         obs,
		nodes:       make(map[string]*node, len(e.nodes)),
		nodeOrder:   append([]string(nil), e.nodeOrder...),
		seq:         e.seq,
		seqBand:     e.seqBand,
		baseSeq:     e.baseSeq,
		now:         e.now,
		deriveID:    e.deriveID,
		delay:       e.delay,
		dependents:  make(map[string][]dependentRef, len(e.dependents)),
		immutable:   make(map[string]bool, len(e.immutable)),
		aggGroups:   make(map[string]*aggGroup, len(e.aggGroups)),
		deriveLimit: e.deriveLimit,
		stats:       e.stats,
		indexing:    e.indexing,
		plans:       e.plans,
		tableSpecs:  e.tableSpecs,
		analysis:    e.analysis,
		analysisErr: e.analysisErr,
		cow:         e.cow,
	}
	f.analysisDiags = append([]Diag(nil), e.analysisDiags...)
	for name, n := range e.nodes {
		fn := &node{name: n.name, tables: make(map[string]*table, len(n.tables))}
		for tn, tb := range n.tables {
			fn.tables[tn] = forkTable(tb, false)
		}
		f.nodes[name] = fn
	}
	// The forEach walks materialize copy-on-write overlays (a no-op chain
	// for a root engine): a deep fork of a CoW fork must collapse local
	// entries, shadowed base entries, and tombstones into one flat map.
	e.forEachDependent(func(ref string, deps []dependentRef) {
		f.dependents[ref] = append([]dependentRef(nil), deps...)
	})
	for k, v := range e.immutable {
		f.immutable[k] = v
	}
	// Aggregate group state is O(1) per group (delta chains live in the
	// provenance layer, not here), so a struct copy suffices.
	e.forEachAggGroup(func(gk string, g *aggGroup) {
		fg := *g
		f.aggGroups[gk] = &fg
	})
	// Argmax winner entries are write-once; materialize the overlay chain
	// into a flat map sharing the entries.
	e.forEachAm(func(k string, v *amEntry) {
		if f.amDeriv == nil {
			f.amDeriv = make(map[string]*amEntry)
		}
		f.amDeriv[k] = v
	})
	// Event-consumer lists and killed-occurrence marks likewise flatten;
	// consumer entries (and their body ref slices) are write-once.
	e.forEachEvDeps(func(ref string, deps []evConsumer) {
		if f.evDeps == nil {
			f.evDeps = make(map[string][]evConsumer)
		}
		f.evDeps[ref] = append([]evConsumer(nil), deps...)
	})
	for en := e; en != nil; en = en.cowBase {
		for seq := range en.killedOccs {
			if f.killedOccs == nil {
				f.killedOccs = map[uint64]struct{}{}
			}
			f.killedOccs[seq] = struct{}{}
		}
	}
	f.queue = copyQueue(e.queue)
	f.cfQueue = copyQueue(e.cfQueue)
	f.cfMarksSet, f.cfBaseMark, f.cfSeqMark = e.cfMarksSet, e.cfBaseMark, e.cfSeqMark
	return f
}

// forkCoW shares the sealed receiver's frozen state with the fork: table
// pointers are copied into fresh per-fork node/table maps (so a clone can
// be swapped in on first write), the dependents and aggGroups overlays
// start empty with the receiver as their read-through base, and the
// immutable map is borrowed by reference. Only the pending work queue is
// copied eagerly — its Derivations are stamped in place on delivery.
func (e *Engine) forkCoW(obs Observer) *Engine {
	f := &Engine{
		prog:            e.prog,
		obs:             obs,
		nodes:           make(map[string]*node, len(e.nodes)),
		nodeOrder:       append([]string(nil), e.nodeOrder...),
		seq:             e.seq,
		seqBand:         e.seqBand,
		baseSeq:         e.baseSeq,
		now:             e.now,
		deriveID:        e.deriveID,
		delay:           e.delay,
		dependents:      map[string][]dependentRef{},
		immutable:       e.immutable,
		immutableShared: true,
		aggGroups:       map[string]*aggGroup{},
		deriveLimit:     e.deriveLimit,
		stats:           e.stats,
		indexing:        e.indexing,
		plans:           e.plans,
		tableSpecs:      e.tableSpecs,
		analysis:        e.analysis,
		analysisDiags:   e.analysisDiags,
		analysisErr:     e.analysisErr,
		cow:             true,
		cowBase:         e,
	}
	for name, n := range e.nodes {
		fn := &node{name: n.name, tables: make(map[string]*table, len(n.tables))}
		for tn, tb := range n.tables {
			fn.tables[tn] = tb
		}
		f.nodes[name] = fn
	}
	f.queue = copyQueue(e.queue)
	f.cfQueue = copyQueue(e.cfQueue)
	f.cfMarksSet, f.cfBaseMark, f.cfSeqMark = e.cfMarksSet, e.cfBaseMark, e.cfSeqMark
	return f
}

// copyQueue copies the pending work heap. The heap is laid out in a
// slice; copying it (with fresh work items) preserves the heap shape and
// hence the pop order. Head.Stamp is filled in on delivery, so each
// Derivation must be private to the copy; its Body slice is write-once
// and stays shared.
func copyQueue(q workHeap) workHeap {
	out := make(workHeap, len(q))
	for i, it := range q {
		fit := *it
		if it.deriv != nil {
			d := *it.deriv
			fit.deriv = &d
		}
		out[i] = &fit
	}
	return out
}

// forkTable copies one table. Rows are remapped pointer-for-pointer so
// the copies of live, order, keyIdx, and the index buckets all reference
// the same fresh row structs; remapping is cheaper than re-deriving
// bucket keys from tuples.
//
// With cowHist set (clone-on-first-write of a sealed table), the interval
// histories are not copied: the clone overlays them on the frozen base
// and copies a per-key slice only when that key is written. A deep fork
// (cowHist false) materializes the effective histories instead.
func forkTable(tb *table, cowHist bool) *table {
	remap := rowRemapPool.Get().(map[*row]*row)
	// Row copies come out of one backing array (every row the table has
	// ever held is in order, so the capacity never grows — but if a row
	// somehow reaches us outside order, fall back to a fresh allocation
	// rather than let append move the array under earlier pointers).
	backing := make([]row, 0, len(tb.order))
	rowOf := func(r *row) *row {
		fr, ok := remap[r]
		if !ok {
			if len(backing) < cap(backing) {
				backing = append(backing, *r)
				fr = &backing[len(backing)-1]
			} else {
				cp := *r
				fr = &cp
			}
			// supports is spliced in place on retraction; each support's
			// body refs are write-once and shared.
			fr.supports = append([]support(nil), r.supports...)
			remap[r] = fr
		}
		return fr
	}
	ft := &table{
		decl: tb.decl,
		live: make(map[string]*row, len(tb.live)),
		// Event occurrences are write-once (tuple, stamp) pairs, so the
		// clone shares the backing array up to the current length (the
		// capped capacity keeps a stray append off the base); appends on
		// the clone go to its private occsTail (occAppend), and the
		// parent's tail — counterfactual appends, so short — is copied.
		occs:        tb.occs[:len(tb.occs):len(tb.occs)],
		occsShared:  true,
		occsTail:    append([]eventOcc(nil), tb.occsTail...),
		occSorted:   tb.occSorted,
		orderSorted: tb.orderSorted,
	}
	if cowHist {
		ft.hist = map[string][]Interval{}
		ft.histBase = tb
	} else {
		// The final interval of a history is closed in place when the row
		// dies, so interval slices are copied.
		ft.hist = map[string][]Interval{}
		tb.forEachHist(func(k string, ivs []Interval) {
			ft.hist[k] = append([]Interval(nil), ivs...)
		})
	}
	ft.order = make([]*row, len(tb.order))
	for i, r := range tb.order {
		ft.order[i] = rowOf(r)
	}
	for k, r := range tb.live {
		ft.live[k] = rowOf(r)
	}
	if tb.keyIdx != nil {
		ft.keyIdx = make(map[string]*row, len(tb.keyIdx))
		for k, r := range tb.keyIdx {
			ft.keyIdx[k] = rowOf(r)
		}
	}
	if tb.indexes != nil {
		ft.indexes = make(map[string]*tableIndex, len(tb.indexes))
		for sig, ix := range tb.indexes {
			fix := &tableIndex{spec: ix.spec, buckets: make(map[string][]*row, len(ix.buckets))}
			for k, rows := range ix.buckets {
				frows := make([]*row, len(rows))
				for i, r := range rows {
					frows[i] = rowOf(r)
				}
				fix.buckets[k] = frows
			}
			ft.indexes[sig] = fix
		}
	}
	clear(remap)
	rowRemapPool.Put(remap)
	return ft
}
