package ndlog

// Fork deep-copies the engine's runnable mid-execution state — tables and
// rows with their appearance order, supports and dependents, the pending
// work queue, the clock, sequence counters, and the secondary hash
// indexes — into a new engine observed by obs. The fork and the original
// evolve independently afterwards: scheduling and running either engine
// never affects the other.
//
// Fork never mutates the receiver, so many goroutines may fork the same
// engine concurrently (replay sessions fork a shared cached prefix engine
// from concurrent clones). Immutable structure is shared rather than
// copied: the program, join plans, tuple argument slices, derivation body
// slices, and support body references are all written once before they
// become reachable and only read afterwards.
//
// A nil obs discards observer callbacks (like New). To reproduce a
// from-scratch run stamp-for-stamp, the original engine must use a
// sequence band (WithSeqBand) so base-event stamps depend only on
// schedule positions; Fork copies the band configuration and counters.
func (e *Engine) Fork(obs Observer) *Engine {
	if obs == nil {
		obs = NopObserver{}
	}
	f := &Engine{
		prog:        e.prog,
		obs:         obs,
		nodes:       make(map[string]*node, len(e.nodes)),
		nodeOrder:   append([]string(nil), e.nodeOrder...),
		seq:         e.seq,
		seqBand:     e.seqBand,
		baseSeq:     e.baseSeq,
		now:         e.now,
		deriveID:    e.deriveID,
		delay:       e.delay,
		dependents:  make(map[string][]dependentRef, len(e.dependents)),
		immutable:   make(map[string]bool, len(e.immutable)),
		aggGroups:   make(map[string]*aggGroup, len(e.aggGroups)),
		deriveLimit: e.deriveLimit,
		stats:       e.stats,
		indexing:    e.indexing,
		plans:       e.plans,
		tableSpecs:  e.tableSpecs,
		analysis:    e.analysis,
		analysisErr: e.analysisErr,
	}
	f.analysisDiags = append([]Diag(nil), e.analysisDiags...)
	for name, n := range e.nodes {
		fn := &node{name: n.name, tables: make(map[string]*table, len(n.tables))}
		for tn, tb := range n.tables {
			fn.tables[tn] = forkTable(tb)
		}
		f.nodes[name] = fn
	}
	for ref, deps := range e.dependents {
		f.dependents[ref] = append([]dependentRef(nil), deps...)
	}
	for k, v := range e.immutable {
		f.immutable[k] = v
	}
	// Aggregate group state is O(1) per group (delta chains live in the
	// provenance layer, not here), so a struct copy suffices.
	for gk, g := range e.aggGroups {
		fg := *g
		f.aggGroups[gk] = &fg
	}
	// The queue is a heap laid out in a slice; copying the slice (with
	// fresh work items) preserves the heap shape and hence the pop order.
	f.queue = make(workHeap, len(e.queue))
	for i, it := range e.queue {
		fit := *it
		if it.deriv != nil {
			// Head.Stamp is filled in on delivery, so the Derivation must
			// be private to the fork; its Body slice is write-once and
			// stays shared.
			d := *it.deriv
			fit.deriv = &d
		}
		f.queue[i] = &fit
	}
	return f
}

// forkTable copies one table. Rows are remapped pointer-for-pointer so
// the copies of live, order, keyIdx, and the index buckets all reference
// the same fresh row structs; remapping is cheaper than re-deriving
// bucket keys from tuples.
func forkTable(tb *table) *table {
	remap := make(map[*row]*row, len(tb.order))
	// Row copies come out of one backing array (every row the table has
	// ever held is in order, so the capacity never grows — but if a row
	// somehow reaches us outside order, fall back to a fresh allocation
	// rather than let append move the array under earlier pointers).
	backing := make([]row, 0, len(tb.order))
	rowOf := func(r *row) *row {
		fr, ok := remap[r]
		if !ok {
			if len(backing) < cap(backing) {
				backing = append(backing, *r)
				fr = &backing[len(backing)-1]
			} else {
				cp := *r
				fr = &cp
			}
			// supports is spliced in place on retraction; each support's
			// body refs are write-once and shared.
			fr.supports = append([]support(nil), r.supports...)
			remap[r] = fr
		}
		return fr
	}
	ft := &table{
		decl: tb.decl,
		live: make(map[string]*row, len(tb.live)),
		hist: make(map[string][]Interval, len(tb.hist)),
	}
	ft.order = make([]*row, len(tb.order))
	for i, r := range tb.order {
		ft.order[i] = rowOf(r)
	}
	for k, r := range tb.live {
		ft.live[k] = rowOf(r)
	}
	// The final interval of a history is closed in place when the row
	// dies, so interval slices are copied.
	for k, ivs := range tb.hist {
		ft.hist[k] = append([]Interval(nil), ivs...)
	}
	if tb.keyIdx != nil {
		ft.keyIdx = make(map[string]*row, len(tb.keyIdx))
		for k, r := range tb.keyIdx {
			ft.keyIdx[k] = rowOf(r)
		}
	}
	if tb.indexes != nil {
		ft.indexes = make(map[string]*tableIndex, len(tb.indexes))
		for sig, ix := range tb.indexes {
			fix := &tableIndex{spec: ix.spec, buckets: make(map[string][]*row, len(ix.buckets))}
			for k, rows := range ix.buckets {
				frows := make([]*row, len(rows))
				for i, r := range rows {
					frows[i] = rowOf(r)
				}
				fix.buckets[k] = frows
			}
			ft.indexes[sig] = fix
		}
	}
	return ft
}
