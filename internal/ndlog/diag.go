package ndlog

import (
	"fmt"
	"sort"
)

// Pos is a source position in an NDlog program: 1-based line and column.
// The zero Pos means "no position" (programs built through the API rather
// than parsed from text).
type Pos struct {
	Line int
	Col  int
}

// IsValid reports whether the position refers to actual source text.
func (p Pos) IsValid() bool { return p.Line > 0 }

func (p Pos) String() string {
	if !p.IsValid() {
		return "-"
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}

// Before orders positions lexicographically.
func (p Pos) Before(q Pos) bool {
	if p.Line != q.Line {
		return p.Line < q.Line
	}
	return p.Col < q.Col
}

// Severity classifies a diagnostic.
type Severity uint8

// Severities. Errors make a program unrunnable (New/Run refuse it);
// warnings flag constructs that are legal but suspicious.
const (
	Warning Severity = iota
	Error
)

func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Diagnostic codes reported by AnalyzeProgram and the loose parser.
// Errors are ND0xx, warnings ND1xx; doc/analysis.md documents each.
const (
	CodeSyntax        = "ND000" // loose-mode parse error
	CodeUndefined     = "ND001" // reference to an undeclared predicate
	CodeArity         = "ND002" // predicate used with the wrong number of arguments
	CodeUnsafe        = "ND003" // variable not bound by a positive body atom
	CodeEmptyBody     = "ND004" // rule with no body atoms
	CodeBuiltin       = "ND005" // unknown builtin function or wrong builtin arity
	CodeLocation      = "ND006" // malformed location specifier
	CodeStratify      = "ND007" // non-stratified aggregation
	CodeDuplicateDecl = "ND008" // duplicate table declaration
	CodeDuplicateRule = "ND009" // duplicate rule name
	CodeAggregate     = "ND010" // counting-rule restriction violated
	CodeNegation      = "ND011" // negated atom: analyzed but not executable by this engine

	CodeUnusedTable    = "ND101" // table never referenced by any rule
	CodeUnderivedTable = "ND102" // derived table read by rules but never derived
	CodeTypeConflict   = "ND103" // column used with conflicting value kinds
	CodeShadowedRule   = "ND104" // rule duplicates another rule's head and body
	CodeImplicitLoc    = "ND105" // head atom without an explicit @loc specifier

	// ND2xx: dependency-graph diagnostics (see slice.go). All warnings:
	// the program runs, but the flagged construct is either expensive or
	// can never matter.
	CodeCartesianJoin  = "ND201" // join shares no variables and no index can cover it
	CodeUnreachable    = "ND202" // rule's head can never influence any output table
	CodeNegationCycle  = "ND203" // negation inside a dependency cycle (not stratifiable)
	CodeAggOverAgg     = "ND204" // aggregate counting another aggregate's output
)

// Diag is one positioned analysis diagnostic.
type Diag struct {
	Pos      Pos
	Severity Severity
	Code     string
	Msg      string
}

func (d Diag) String() string {
	return fmt.Sprintf("%s: %s[%s]: %s", d.Pos, d.Severity, d.Code, d.Msg)
}

// Error implements the error interface, so a single Diag can be returned
// where an error is expected.
func (d Diag) Error() string { return "ndlog: " + d.String() }

// SortDiags orders diagnostics by position, then severity (errors
// first), then code, for deterministic reporting. Callers merging
// diagnostics from several passes (e.g. ParseLoose + AnalyzeProgram)
// sort the union before display.
func SortDiags(ds []Diag) { sortDiags(ds) }

// sortDiags orders diagnostics by position, then severity (errors first),
// then code, for deterministic reporting.
func sortDiags(ds []Diag) {
	sort.SliceStable(ds, func(i, j int) bool {
		if ds[i].Pos != ds[j].Pos {
			return ds[i].Pos.Before(ds[j].Pos)
		}
		if ds[i].Severity != ds[j].Severity {
			return ds[i].Severity > ds[j].Severity
		}
		if ds[i].Code != ds[j].Code {
			return ds[i].Code < ds[j].Code
		}
		return ds[i].Msg < ds[j].Msg
	})
}

// ErrorDiags filters a diagnostic list down to the errors.
func ErrorDiags(ds []Diag) []Diag {
	var out []Diag
	for _, d := range ds {
		if d.Severity == Error {
			out = append(out, d)
		}
	}
	return out
}

// firstError returns the first Error-severity diagnostic as an error, or
// nil if the list has none.
func firstError(ds []Diag) error {
	for _, d := range ds {
		if d.Severity == Error {
			return d
		}
	}
	return nil
}
