package ndlog

import (
	"reflect"
	"strings"
	"testing"
)

// sliceProgram has a diagnosis-relevant chain (link -> route -> out), an
// unrelated audit branch (ping -> auditLog), a negated dependency, and an
// aggregate chain, so one program exercises every edge kind.
const sliceProgram = `
table link/2 base mutable;
table blocked/2 base mutable;
table route/2;
table out/2 event;
table ping/2 event base;
table auditLog/2 event;
table cnt/2;
table cnt2/2;

rule r1 route(@S, S, D) :- link(@S, S, D), !blocked(@S, S, D).
rule r2 out(@S, S, D) :- route(@S, S, D).
rule a1 auditLog(@S, S, D) :- ping(@S, S, D).
rule c1 cnt(@S, S, N) :- route(@S, S, D), N := count().
rule c2 cnt2(@S, S, M) :- cnt(@S, S, N), M := count().
`

func parseLooseOK(t *testing.T, src string) *Program {
	t.Helper()
	p, diags := ParseLoose(src)
	for _, d := range diags {
		t.Fatalf("unexpected parse diagnostic: %s", d)
	}
	return p
}

func TestSliceBackwardClosure(t *testing.T) {
	p := parseLooseOK(t, sliceProgram)
	s := Slice(p, "out")
	for _, want := range []string{"out", "route", "link", "blocked"} {
		if !s.Contains(want) {
			t.Errorf("slice of out should contain %s; got %v", want, s.Order)
		}
	}
	for _, not := range []string{"ping", "auditLog", "cnt", "cnt2"} {
		if s.Contains(not) {
			t.Errorf("slice of out must not contain %s", not)
		}
	}
	// Order follows declaration order.
	if want := []string{"link", "blocked", "route", "out"}; !reflect.DeepEqual(s.Order, want) {
		t.Errorf("Order = %v, want %v", s.Order, want)
	}
	// In-slice rules: r1 and r2 only, in definition order.
	var names []string
	for _, r := range s.Rules {
		names = append(names, r.Name)
	}
	if want := []string{"r1", "r2"}; !reflect.DeepEqual(names, want) {
		t.Errorf("Rules = %v, want %v", names, want)
	}
}

func TestSliceNegatedEdgeIsConservative(t *testing.T) {
	// blocked only influences out through a negated atom; the slice must
	// keep it (its absence is an influence).
	p := parseLooseOK(t, sliceProgram)
	if !Slice(p, "out").Contains("blocked") {
		t.Fatal("negated dependency blocked pruned from slice")
	}
}

func TestSliceAggregateChain(t *testing.T) {
	// cnt2 folds cnt which folds route: the AggPrev delta chain must pull
	// the whole positive chain (and the negated blocked) into the slice.
	p := parseLooseOK(t, sliceProgram)
	s := Slice(p, "cnt2")
	for _, want := range []string{"cnt2", "cnt", "route", "link", "blocked"} {
		if !s.Contains(want) {
			t.Errorf("slice of cnt2 missing %s", want)
		}
	}
	if s.Contains("auditLog") || s.Contains("out") {
		t.Errorf("slice of cnt2 includes unrelated tables: %v", s.Order)
	}
}

func TestSliceUndeclaredSymptom(t *testing.T) {
	p := parseLooseOK(t, sliceProgram)
	s := Slice(p, "nosuch")
	if !s.Contains("nosuch") || len(s.Order) != 0 || len(s.Rules) != 0 {
		t.Errorf("slice of undeclared symptom = %+v", s)
	}
}

func TestNegationParsing(t *testing.T) {
	for _, form := range []string{"!blocked(@S, S, D)", "not blocked(@S, S, D)"} {
		src := `
table link/2 base;
table blocked/2 base;
table route/2;
rule r1 route(@S, S, D) :- link(@S, S, D), ` + form + `.
`
		p, diags := ParseLoose(src)
		if len(diags) != 0 {
			t.Fatalf("%s: parse diagnostics: %v", form, diags)
		}
		r := p.Rule("r1")
		if r == nil || len(r.Body) != 2 || !r.Body[1].Negated {
			t.Fatalf("%s: negated atom not parsed: %+v", form, r)
		}
		if got := r.Body[1].String(); !strings.HasPrefix(got, "!blocked(") {
			t.Errorf("%s: negated atom renders %q", form, got)
		}
		// The engine cannot execute negation: analysis reports ND011 and
		// strict Parse refuses the program.
		if !hasDiag(AnalyzeProgram(p), CodeNegation) {
			t.Errorf("%s: AnalyzeProgram did not report %s", form, CodeNegation)
		}
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: strict Parse accepted a negated program", form)
		}
	}
}

func TestNegatedAtomBindsNothing(t *testing.T) {
	// D appears only in the negated atom: unsafe (no positive witness).
	src := `
table link/1 base;
table blocked/2 base;
table route/2;
rule r1 route(@S, S, D) :- link(@S, S), !blocked(@S, S, D).
`
	p, diags := ParseLoose(src)
	if len(diags) != 0 {
		t.Fatalf("parse diagnostics: %v", diags)
	}
	ds := AnalyzeProgram(p)
	if !hasDiag(ds, CodeUnsafe) {
		t.Errorf("expected %s for variable bound only by a negated atom; got %v", CodeUnsafe, ds)
	}
}

func hasDiag(ds []Diag, code string) bool {
	for _, d := range ds {
		if d.Code == code {
			return true
		}
	}
	return false
}

func diagAt(ds []Diag, code string) (Diag, bool) {
	for _, d := range ds {
		if d.Code == code {
			return d, true
		}
	}
	return Diag{}, false
}

func TestDependencyDiagnostics(t *testing.T) {
	src := `table link/2 base;
table route/2;
table blocked/2;
table stale/2;
table spin/2;
table out/2 event;
rule r1 route(@S, S, D) :- link(@S, S, D).
rule nc route(@S, S, D) :- blocked(@S, S, D).
rule neg blocked(@S, S, D) :- link(@S, S, D), !route(@S, S, D).
rule cart out(@S, S, D) :- link(@S, S, D), route(@A, A, B).
rule spin1 stale(@S, S, D) :- spin(@S, S, D).
rule spin2 spin(@S, S, D) :- stale(@S, S, D).
rule use out(@S, S, D) :- route(@S, S, D).
`
	p, diags := ParseLoose(src)
	if len(diags) != 0 {
		t.Fatalf("parse diagnostics: %v", diags)
	}
	ds := AnalyzeProgram(p)
	if d, ok := diagAt(ds, CodeCartesianJoin); !ok || d.Pos.Line != 10 {
		t.Errorf("CodeCartesianJoin = %+v (want line 10)", d)
	}
	if d, ok := diagAt(ds, CodeNegationCycle); !ok || d.Pos.Line != 9 {
		t.Errorf("CodeNegationCycle = %+v (want line 9)", d)
	}
	var unreachable []int
	for _, d := range ds {
		if d.Code == CodeUnreachable {
			unreachable = append(unreachable, d.Pos.Line)
		}
	}
	if want := []int{11, 12}; !reflect.DeepEqual(unreachable, want) {
		t.Errorf("CodeUnreachable lines = %v, want %v", unreachable, want)
	}
}

func TestAggregateOverAggregateDiagnostic(t *testing.T) {
	src := `table kv/2 event base;
table cnt/2;
table tick/2 event;
table cnt2/2;
rule c1 cnt(@S, S, N) :- kv(@S, S, V), N := count().
rule t1 tick(@S, S, N) :- cnt(@S, S, N).
rule c2 cnt2(@S, S, M) :- tick(@S, S, K), M := count().
`
	p, diags := ParseLoose(src)
	if len(diags) != 0 {
		t.Fatalf("parse diagnostics: %v", diags)
	}
	ds := AnalyzeProgram(p)
	if hasDiag(ds, CodeAggregate) {
		t.Fatalf("seeded chain should be a legal aggregate program: %v", ds)
	}
	d, ok := diagAt(ds, CodeAggOverAgg)
	if !ok || d.Pos.Line != 7 {
		t.Errorf("CodeAggOverAgg = %+v (want line 7)", d)
	}
	if hasDiag(ds, CodeStratify) {
		t.Errorf("agg-over-agg chain is stratified; got %v", ds)
	}
}

// TestAnalyzeProgramDeterministicOrder pins the (line, col, code)
// ordering of AnalyzeProgram output: golden files and CI diffs depend on
// repeat runs producing identical, position-sorted diagnostics.
func TestAnalyzeProgramDeterministicOrder(t *testing.T) {
	src := `table link/2 base;
table route/3;
table orphan/1;
table spin/2;
table stale/2;
table out/2 event;
rule r1 route(@S, S, D) :- link(@S, S, D).
rule bad route(@S, S, D, X) :- nowhere(@S, S, D), !route(@S, S, D).
rule spin1 stale(@S, S, D) :- spin(@S, S, D).
rule spin2 spin(@S, S, D) :- stale(@S, S, D).
rule use out(@S, S, D) :- route(@S, S, D, D).
`
	p, parseDiags := ParseLoose(src)
	first := append(append([]Diag(nil), parseDiags...), AnalyzeProgram(p)...)
	SortDiags(first)
	for run := 0; run < 5; run++ {
		q, pd := ParseLoose(src)
		ds := append(append([]Diag(nil), pd...), AnalyzeProgram(q)...)
		SortDiags(ds)
		if !reflect.DeepEqual(ds, first) {
			t.Fatalf("run %d: diagnostics differ:\n%v\nvs\n%v", run, ds, first)
		}
	}
	if len(first) == 0 {
		t.Fatal("expected diagnostics from the seeded program")
	}
	for i := 1; i < len(first); i++ {
		a, b := first[i-1], first[i]
		if a.Pos.Line > b.Pos.Line ||
			(a.Pos.Line == b.Pos.Line && a.Pos.Col > b.Pos.Col) ||
			(a.Pos == b.Pos && a.Code > b.Code) {
			t.Errorf("diagnostics not (line, col, code)-ordered at %d: %v then %v", i, a, b)
		}
	}
}
