package ndlog

import (
	"testing"
)

// recordingObserver collects all observer callbacks for assertions.
type recordingObserver struct {
	inserts    []At
	deletes    []At
	appears    []At
	disappears []At
	derives    []Derivation
	underives  []Underivation
}

func (o *recordingObserver) OnBaseInsert(at At)          { o.inserts = append(o.inserts, at) }
func (o *recordingObserver) OnBaseDelete(at At)          { o.deletes = append(o.deletes, at) }
func (o *recordingObserver) OnAppear(at At, id int64)    { o.appears = append(o.appears, at) }
func (o *recordingObserver) OnDisappear(at At, id int64) { o.disappears = append(o.disappears, at) }
func (o *recordingObserver) OnDerive(d Derivation)       { o.derives = append(o.derives, d) }
func (o *recordingObserver) OnUnderive(u Underivation)   { o.underives = append(o.underives, u) }

const fwdProgram = `
table flowEntry/3 base mutable;   // (prio, match, nextNode)
table packet/1 event base;        // (dstIP)
table arrived/1 event;            // (dstIP) at destination host
`

// buildFwdProgram adds forwarding rules to the table declarations above:
// a packet at a switch follows the highest-priority matching flow entry.
func buildFwdProgram(t *testing.T) *Program {
	t.Helper()
	src := fwdProgram + `
rule fw packet(@Nxt, Dst) :-
    packet(@Sw, Dst),
    flowEntry(@Sw, Prio, M, Nxt),
    matches(Dst, M),
    argmax Prio.
`
	// packet heads to hosts are also packets; hosts convert to arrived via
	// a host-local flow "deliver" entry sentinel: model hosts with a rule.
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestEngineEventForwardingChain(t *testing.T) {
	p := buildFwdProgram(t)
	obs := &recordingObserver{}
	e := New(p, obs)

	// Topology: s1 -> s2 -> h1; flow entries route 10.0.0.0/8.
	pfx := MustParsePrefix("10.0.0.0/8")
	if err := e.ScheduleInsert("s1", NewTuple("flowEntry", Int(1), pfx, Str("s2")), 0); err != nil {
		t.Fatal(err)
	}
	if err := e.ScheduleInsert("s2", NewTuple("flowEntry", Int(1), pfx, Str("h1")), 0); err != nil {
		t.Fatal(err)
	}
	if err := e.ScheduleInsert("s1", NewTuple("packet", MustParseIP("10.1.2.3")), 5); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}

	// The packet should appear at s1 (base), s2 (derived), and h1 (derived).
	var hops []string
	for _, a := range obs.appears {
		if a.Tuple.Table == "packet" {
			hops = append(hops, a.Node)
		}
	}
	want := []string{"s1", "s2", "h1"}
	if len(hops) != 3 {
		t.Fatalf("packet hops = %v, want %v", hops, want)
	}
	for i := range want {
		if hops[i] != want[i] {
			t.Fatalf("packet hops = %v, want %v", hops, want)
		}
	}
	if len(obs.derives) != 2 {
		t.Fatalf("derivations = %d, want 2", len(obs.derives))
	}
	// Each derivation's trigger must be the packet atom (index 0).
	for _, d := range obs.derives {
		if d.Trigger != 0 {
			t.Errorf("trigger = %d, want 0 (the packet event)", d.Trigger)
		}
		if d.Body[0].Tuple.Table != "packet" {
			t.Errorf("trigger body = %v", d.Body[0].Tuple)
		}
	}
}

func TestEngineArgMaxPriority(t *testing.T) {
	p := buildFwdProgram(t)
	obs := &recordingObserver{}
	e := New(p, obs)

	// Two overlapping entries on s1: specific high-prio to s6, general
	// low-prio to s3 (the paper's SDN1 setup).
	specific := MustParsePrefix("4.3.2.0/24")
	general := MustParsePrefix("0.0.0.0/0")
	e.ScheduleInsert("s1", NewTuple("flowEntry", Int(10), specific, Str("s6")), 0)
	e.ScheduleInsert("s1", NewTuple("flowEntry", Int(1), general, Str("s3")), 0)

	e.ScheduleInsert("s1", NewTuple("packet", MustParseIP("4.3.2.1")), 5) // matches both
	e.ScheduleInsert("s1", NewTuple("packet", MustParseIP("4.3.3.1")), 6) // matches general only
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}

	got := map[string]string{}
	for _, d := range obs.derives {
		dst := d.Body[0].Tuple.Args[0].(IP).String()
		got[dst] = d.Head.Node
	}
	if got["4.3.2.1"] != "s6" {
		t.Errorf("4.3.2.1 routed to %s, want s6 (higher priority wins)", got["4.3.2.1"])
	}
	if got["4.3.3.1"] != "s3" {
		t.Errorf("4.3.3.1 routed to %s, want s3", got["4.3.3.1"])
	}
}

func TestEngineArgMaxDeterministicTieBreak(t *testing.T) {
	p := buildFwdProgram(t)
	run := func() string {
		e := New(p, nil)
		// Two same-priority entries; tie-break must be deterministic.
		e.ScheduleInsert("s1", NewTuple("flowEntry", Int(5), MustParsePrefix("0.0.0.0/0"), Str("a")), 0)
		e.ScheduleInsert("s1", NewTuple("flowEntry", Int(5), MustParsePrefix("1.0.0.0/8"), Str("b")), 0)
		e.ScheduleInsert("s1", NewTuple("packet", MustParseIP("1.2.3.4")), 5)
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		for _, n := range []string{"a", "b"} {
			if e.ExistsEver(n, NewTuple("packet", MustParseIP("1.2.3.4"))) {
				return n
			}
		}
		return ""
	}
	first := run()
	if first == "" {
		t.Fatal("packet not delivered")
	}
	for i := 0; i < 5; i++ {
		if got := run(); got != first {
			t.Fatalf("tie-break not deterministic: %s vs %s", got, first)
		}
	}
}

func TestEngineStateJoinDerivation(t *testing.T) {
	src := `
table a/1 base;
table b/1 base;
table c/2;
rule j c(X, Y) :- a(X), b(Y).
`
	p := MustParse(src)
	e := New(p, nil)
	e.ScheduleInsert("n", NewTuple("a", Int(1)), 0)
	e.ScheduleInsert("n", NewTuple("b", Int(2)), 1)
	e.ScheduleInsert("n", NewTuple("a", Int(3)), 2)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	got := e.LiveTuples("n", "c")
	if len(got) != 2 {
		t.Fatalf("c tuples = %v, want 2", got)
	}
	// Derived exactly once each (no duplicate derivations).
	if e.Stats().Derivations != 2 {
		t.Errorf("derivations = %d, want 2", e.Stats().Derivations)
	}
}

func TestEngineRecursiveDerivation(t *testing.T) {
	src := `
table link/2 base;
table reach/2;
rule r1 reach(X, Y) :- link(X, Y).
rule r2 reach(X, Z) :- link(X, Y), reach(Y, Z).
`
	p := MustParse(src)
	e := New(p, nil)
	for _, l := range [][2]int64{{1, 2}, {2, 3}, {3, 4}} {
		e.ScheduleInsert("n", NewTuple("link", Int(l[0]), Int(l[1])), 0)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := [][2]int64{{1, 2}, {2, 3}, {3, 4}, {1, 3}, {2, 4}, {1, 4}}
	got := e.LiveTuples("n", "reach")
	if len(got) != len(want) {
		t.Fatalf("reach = %v, want %d tuples", got, len(want))
	}
	for _, w := range want {
		if !e.ExistsEver("n", NewTuple("reach", Int(w[0]), Int(w[1]))) {
			t.Errorf("missing reach(%d, %d)", w[0], w[1])
		}
	}
}

func TestEngineDeletionCascade(t *testing.T) {
	src := `
table base1/1 base mutable;
table derived1/1;
table derived2/1;
rule d1 derived1(X) :- base1(X).
rule d2 derived2(X) :- derived1(X).
`
	p := MustParse(src)
	obs := &recordingObserver{}
	e := New(p, obs)
	e.ScheduleInsert("n", NewTuple("base1", Int(7)), 0)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !e.Exists("n", NewTuple("derived2", Int(7)), e.Now()) {
		t.Fatal("derived2(7) should exist")
	}
	e.ScheduleDelete("n", NewTuple("base1", Int(7)), 10)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Exists("n", NewTuple("derived2", Int(7)), e.Now()) {
		t.Error("derived2(7) should have been underived after base deletion")
	}
	if len(obs.underives) != 2 {
		t.Errorf("underivations = %d, want 2", len(obs.underives))
	}
	if len(obs.disappears) != 3 {
		t.Errorf("disappears = %d, want 3 (base + 2 derived)", len(obs.disappears))
	}
	// Temporal query: the tuple still "existed" at its historic time.
	if !e.Exists("n", NewTuple("derived2", Int(7)), Stamp{T: 5, Seq: 1 << 60}) {
		t.Error("temporal query at t=5 should still see derived2(7)")
	}
}

func TestEngineDeleteRederive(t *testing.T) {
	// SDN3 shape: after the high-priority rule is deleted, packets follow
	// the low-priority rule.
	p := buildFwdProgram(t)
	e := New(p, nil)
	all := MustParsePrefix("0.0.0.0/0")
	e.ScheduleInsert("s1", NewTuple("flowEntry", Int(10), all, Str("hostA")), 0)
	e.ScheduleInsert("s1", NewTuple("flowEntry", Int(1), all, Str("hostB")), 0)
	e.ScheduleInsert("s1", NewTuple("packet", MustParseIP("9.9.9.9")), 5)
	e.ScheduleDelete("s1", NewTuple("flowEntry", Int(10), all, Str("hostA")), 10)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	e.ScheduleInsert("s1", NewTuple("packet", MustParseIP("9.9.9.8")), 15)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !e.ExistsEver("hostA", NewTuple("packet", MustParseIP("9.9.9.9"))) {
		t.Error("first packet should reach hostA (rule still installed)")
	}
	if !e.ExistsEver("hostB", NewTuple("packet", MustParseIP("9.9.9.8"))) {
		t.Error("second packet should reach hostB (rule expired)")
	}
	if e.ExistsEver("hostA", NewTuple("packet", MustParseIP("9.9.9.8"))) {
		t.Error("second packet must not reach hostA")
	}
}

func TestEngineMultisetSupports(t *testing.T) {
	// A tuple derivable two ways survives deletion of one support.
	src := `
table a/1 base mutable;
table b/1 base mutable;
table d/1;
rule r1 d(X) :- a(X).
rule r2 d(X) :- b(X).
`
	p := MustParse(src)
	e := New(p, nil)
	e.ScheduleInsert("n", NewTuple("a", Int(1)), 0)
	e.ScheduleInsert("n", NewTuple("b", Int(1)), 1)
	e.ScheduleDelete("n", NewTuple("a", Int(1)), 2)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !e.Exists("n", NewTuple("d", Int(1)), e.Now()) {
		t.Error("d(1) still has one support and must survive")
	}
	e.ScheduleDelete("n", NewTuple("b", Int(1)), 3)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Exists("n", NewTuple("d", Int(1)), e.Now()) {
		t.Error("d(1) lost all supports and must disappear")
	}
}

func TestEngineAssignAndConstraint(t *testing.T) {
	src := `
table foo/2 base;
table bar/2;
rule r bar(A, D) :- foo(A, C), D := 2*C+1, D > 5.
`
	p := MustParse(src)
	e := New(p, nil)
	e.ScheduleInsert("n", NewTuple("foo", Int(1), Int(3)), 0) // D=7 passes
	e.ScheduleInsert("n", NewTuple("foo", Int(2), Int(1)), 0) // D=3 fails
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !e.ExistsEver("n", NewTuple("bar", Int(1), Int(7))) {
		t.Error("bar(1, 7) should be derived")
	}
	if e.ExistsEver("n", NewTuple("bar", Int(2), Int(3))) {
		t.Error("bar(2, 3) must be filtered by the constraint")
	}
}

func TestEngineRemoteJoin(t *testing.T) {
	// The paper's distributed rule: A(i,j)@X :- B(i)@X, C(j)@Y.
	src := `
table b/1 base;
table c/1 base;
table a/2;
rule r a(@X, I, J) :- b(@X, I), c(@y, J).
`
	p := MustParse(src)
	e := New(p, nil)
	e.ScheduleInsert("y", NewTuple("c", Int(2)), 0)
	e.ScheduleInsert("x", NewTuple("b", Int(1)), 1)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !e.ExistsEver("x", NewTuple("a", Int(1), Int(2))) {
		t.Error("a(1,2) should be derived on x from remote c on y")
	}
}

func TestEngineRemoteHeadDelay(t *testing.T) {
	p := buildFwdProgram(t)
	e := New(p, nil, WithDelay(3))
	e.ScheduleInsert("s1", NewTuple("flowEntry", Int(1), MustParsePrefix("0.0.0.0/0"), Str("s2")), 0)
	e.ScheduleInsert("s1", NewTuple("packet", MustParseIP("1.1.1.1")), 10)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	hist := e.History("s2", NewTuple("packet", MustParseIP("1.1.1.1")))
	if len(hist) != 1 {
		t.Fatalf("history = %v", hist)
	}
	if hist[0].From.T != 13 {
		t.Errorf("arrival tick = %d, want 13 (10 + delay 3)", hist[0].From.T)
	}
}

func TestEngineDeterministicReplay(t *testing.T) {
	p := buildFwdProgram(t)
	run := func() (Stats, []string) {
		obs := &recordingObserver{}
		e := New(p, obs)
		e.ScheduleInsert("s1", NewTuple("flowEntry", Int(2), MustParsePrefix("10.0.0.0/8"), Str("s2")), 0)
		e.ScheduleInsert("s1", NewTuple("flowEntry", Int(1), MustParsePrefix("0.0.0.0/0"), Str("s3")), 0)
		e.ScheduleInsert("s2", NewTuple("flowEntry", Int(1), MustParsePrefix("0.0.0.0/0"), Str("h")), 0)
		e.ScheduleInsert("s3", NewTuple("flowEntry", Int(1), MustParsePrefix("0.0.0.0/0"), Str("h")), 0)
		for i := 0; i < 50; i++ {
			ip := IP(uint32(0x0a000000 + i*7919))
			e.ScheduleInsert("s1", NewTuple("packet", ip), int64(10+i))
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		var trace []string
		for _, a := range obs.appears {
			trace = append(trace, a.Node+":"+a.Tuple.String()+"@"+a.Stamp.String())
		}
		return e.Stats(), trace
	}
	s1, t1 := run()
	s2, t2 := run()
	if s1 != s2 {
		t.Fatalf("stats differ across identical runs: %+v vs %+v", s1, s2)
	}
	if len(t1) != len(t2) {
		t.Fatalf("trace lengths differ: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("trace diverges at %d: %s vs %s", i, t1[i], t2[i])
		}
	}
}

func TestEngineScheduleErrors(t *testing.T) {
	p := buildFwdProgram(t)
	e := New(p, nil)
	if err := e.ScheduleInsert("n", NewTuple("nosuch", Int(1)), 0); err == nil {
		t.Error("insert into undeclared table must fail")
	}
	if err := e.ScheduleInsert("n", NewTuple("arrived", Int(1)), 0); err == nil {
		t.Error("insert into non-base table must fail")
	}
	if err := e.ScheduleInsert("n", NewTuple("packet", Int(1), Int(2)), 0); err == nil {
		t.Error("wrong-arity insert must fail")
	}
	if err := e.ScheduleDelete("n", NewTuple("nosuch", Int(1)), 0); err == nil {
		t.Error("delete from undeclared table must fail")
	}
}

func TestEngineDeleteNonexistentIsNoop(t *testing.T) {
	p := MustParse("table a/1 base;")
	e := New(p, nil)
	e.ScheduleDelete("n", NewTuple("a", Int(1)), 0)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineEventDeleteRejected(t *testing.T) {
	p := MustParse("table ev/1 event base;")
	e := New(p, nil)
	e.ScheduleDelete("n", NewTuple("ev", Int(1)), 0)
	if err := e.Run(); err == nil {
		t.Error("deleting an event tuple must fail")
	}
}

func TestEngineMutability(t *testing.T) {
	p := MustParse(`
table cfg/1 base mutable;
table pkt/1 event base;
table derived/1;
rule r derived(X) :- cfg(X).
`)
	e := New(p, nil)
	cfg := NewTuple("cfg", Int(1))
	pkt := NewTuple("pkt", Int(1))
	if !e.IsMutable("n", cfg) {
		t.Error("cfg should be mutable")
	}
	if e.IsMutable("n", pkt) {
		t.Error("packets must be immutable")
	}
	if e.IsMutable("n", NewTuple("derived", Int(1))) {
		t.Error("derived tuples are not base, hence not mutable")
	}
	e.PinImmutable("n", cfg)
	if e.IsMutable("n", cfg) {
		t.Error("pinned tuple must be immutable")
	}
	if !e.IsMutable("m", cfg) {
		t.Error("pin is per-node")
	}
}

func TestEngineExistsTemporal(t *testing.T) {
	p := MustParse("table a/1 base mutable;")
	e := New(p, nil)
	tup := NewTuple("a", Int(1))
	e.ScheduleInsert("n", tup, 10)
	e.ScheduleDelete("n", tup, 20)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Exists("n", tup, Stamp{T: 5}) {
		t.Error("must not exist before insertion")
	}
	if !e.Exists("n", tup, Stamp{T: 15}) {
		t.Error("must exist between insert and delete")
	}
	if e.Exists("n", tup, Stamp{T: 25}) {
		t.Error("must not exist after deletion")
	}
	// Reinsertion opens a second interval.
	e.ScheduleInsert("n", tup, 30)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := len(e.History("n", tup)); got != 2 {
		t.Errorf("history intervals = %d, want 2", got)
	}
	if !e.Exists("n", tup, Stamp{T: 35}) {
		t.Error("must exist after reinsertion")
	}
}

func TestEngineUnboundLocationScansAllNodes(t *testing.T) {
	src := `
table item/1 base;
table probe/0 event base;
table found/2 event;
rule r found(@here, N, X) :- probe(@here), item(@N, X).
`
	p := MustParse(src)
	obs := &recordingObserver{}
	e := New(p, obs)
	e.ScheduleInsert("a", NewTuple("item", Int(1)), 0)
	e.ScheduleInsert("b", NewTuple("item", Int(2)), 0)
	e.ScheduleInsert("here", NewTuple("probe"), 5)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, a := range obs.appears {
		if a.Tuple.Table == "found" {
			found[a.Tuple.String()] = true
		}
	}
	if len(found) != 2 {
		t.Fatalf("found = %v, want items from both nodes", found)
	}
}

func TestEngineStatsCounts(t *testing.T) {
	p := buildFwdProgram(t)
	e := New(p, nil)
	e.ScheduleInsert("s1", NewTuple("flowEntry", Int(1), MustParsePrefix("0.0.0.0/0"), Str("s2")), 0)
	e.ScheduleInsert("s1", NewTuple("packet", MustParseIP("1.1.1.1")), 1)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.BaseInserts != 2 {
		t.Errorf("BaseInserts = %d", s.BaseInserts)
	}
	if s.Derivations != 1 {
		t.Errorf("Derivations = %d", s.Derivations)
	}
	if s.Messages != 1 {
		t.Errorf("Messages = %d", s.Messages)
	}
	if got := e.Nodes(); len(got) != 2 {
		t.Errorf("Nodes = %v", got)
	}
}
