// Package ndlog implements a Network Datalog (NDlog) engine: a declarative
// networking runtime in the style of RapidNet. System state is modeled as
// tuples organized into tables, and system logic as derivation rules with
// location specifiers (@node) that describe how tuples are derived and where.
//
// The engine simulates a distributed system deterministically in logical
// time and emits primitive provenance events (insert, appear, derive, ...)
// to an Observer, from which a temporal provenance graph can be built.
package ndlog

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The closed set of value kinds understood by the engine.
const (
	KindInt Kind = iota
	KindStr
	KindBool
	KindIP
	KindPrefix
	KindID
)

func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindStr:
		return "str"
	case KindBool:
		return "bool"
	case KindIP:
		return "ip"
	case KindPrefix:
		return "prefix"
	case KindID:
		return "id"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a runtime value held in a tuple field. All implementations are
// small comparable types, so Value itself is comparable with == and usable
// as a map key.
type Value interface {
	Kind() Kind
	String() string
	appendKey(b []byte) []byte
}

// Int is a 64-bit signed integer value.
type Int int64

// Kind implements Value.
func (Int) Kind() Kind { return KindInt }

func (v Int) String() string { return strconv.FormatInt(int64(v), 10) }

func (v Int) appendKey(b []byte) []byte {
	b = append(b, 'i')
	return strconv.AppendInt(b, int64(v), 10)
}

// Str is a string value.
type Str string

// Kind implements Value.
func (Str) Kind() Kind { return KindStr }

func (v Str) String() string { return string(v) }

func (v Str) appendKey(b []byte) []byte {
	b = append(b, 's')
	b = strconv.AppendInt(b, int64(len(v)), 10)
	b = append(b, ':')
	return append(b, v...)
}

// Bool is a boolean value.
type Bool bool

// Kind implements Value.
func (Bool) Kind() Kind { return KindBool }

func (v Bool) String() string {
	if v {
		return "true"
	}
	return "false"
}

func (v Bool) appendKey(b []byte) []byte {
	if v {
		return append(b, 'b', '1')
	}
	return append(b, 'b', '0')
}

// IP is an IPv4 address value.
type IP uint32

// ParseIP parses dotted-quad notation into an IP.
func ParseIP(s string) (IP, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("ndlog: invalid IPv4 address %q", s)
	}
	var v uint32
	for _, p := range parts {
		n, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("ndlog: invalid IPv4 address %q: %v", s, err)
		}
		v = v<<8 | uint32(n)
	}
	return IP(v), nil
}

// MustParseIP is ParseIP that panics on error; for constants in tests and
// scenario definitions.
func MustParseIP(s string) IP {
	ip, err := ParseIP(s)
	if err != nil {
		panic(err)
	}
	return ip
}

// Kind implements Value.
func (IP) Kind() Kind { return KindIP }

func (v IP) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func (v IP) appendKey(b []byte) []byte {
	b = append(b, 'a')
	return strconv.AppendUint(b, uint64(v), 16)
}

// Octet returns the i-th octet of the address (0 = most significant).
func (v IP) Octet(i int) byte {
	return byte(v >> (24 - 8*uint(i&3)))
}

// Prefix is an IPv4 CIDR prefix value.
type Prefix struct {
	Addr IP
	Bits uint8
}

// ParsePrefix parses "a.b.c.d/len" notation.
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("ndlog: invalid prefix %q: missing /", s)
	}
	ip, err := ParseIP(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	n, err := strconv.ParseUint(s[slash+1:], 10, 8)
	if err != nil || n > 32 {
		return Prefix{}, fmt.Errorf("ndlog: invalid prefix length in %q", s)
	}
	return Prefix{Addr: ip.Mask(uint8(n)), Bits: uint8(n)}, nil
}

// MustParsePrefix is ParsePrefix that panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Mask returns the address with all but the first bits cleared.
func (v IP) Mask(bits uint8) IP {
	if bits >= 32 {
		return v
	}
	if bits == 0 {
		return 0
	}
	return v &^ (1<<(32-uint(bits)) - 1)
}

// Kind implements Value.
func (Prefix) Kind() Kind { return KindPrefix }

func (v Prefix) String() string {
	return fmt.Sprintf("%s/%d", v.Addr.String(), v.Bits)
}

func (v Prefix) appendKey(b []byte) []byte {
	b = append(b, 'p')
	b = strconv.AppendUint(b, uint64(v.Addr), 16)
	b = append(b, '/')
	return strconv.AppendUint(b, uint64(v.Bits), 10)
}

// Contains reports whether the prefix covers the given address.
func (v Prefix) Contains(ip IP) bool {
	return ip.Mask(v.Bits) == v.Addr
}

// ContainsPrefix reports whether the prefix covers all of other.
func (v Prefix) ContainsPrefix(other Prefix) bool {
	return other.Bits >= v.Bits && other.Addr.Mask(v.Bits) == v.Addr
}

// ID is an opaque identifier value (checksums, version ids, packet ids).
type ID uint64

// Kind implements Value.
func (ID) Kind() Kind { return KindID }

func (v ID) String() string { return fmt.Sprintf("#%x", uint64(v)) }

func (v ID) appendKey(b []byte) []byte {
	b = append(b, '#')
	return strconv.AppendUint(b, uint64(v), 16)
}

// Eq reports whether two values are equal. Values of different kinds are
// never equal.
func Eq(a, b Value) bool { return a == b }

// Less imposes a deterministic total order on values, first by kind and
// then by value, used for tie-breaking and canonical iteration order.
func Less(a, b Value) bool {
	if a.Kind() != b.Kind() {
		return a.Kind() < b.Kind()
	}
	switch av := a.(type) {
	case Int:
		return av < b.(Int)
	case Str:
		return av < b.(Str)
	case Bool:
		return !bool(av) && bool(b.(Bool))
	case IP:
		return av < b.(IP)
	case Prefix:
		bv := b.(Prefix)
		if av.Addr != bv.Addr {
			return av.Addr < bv.Addr
		}
		return av.Bits < bv.Bits
	case ID:
		return av < b.(ID)
	default:
		return a.String() < b.String()
	}
}

// ParseValue parses a literal in NDlog source syntax: integers, quoted
// strings, booleans, IPv4 addresses, prefixes, and #hex identifiers.
func ParseValue(s string) (Value, error) {
	switch {
	case s == "":
		return nil, fmt.Errorf("ndlog: empty literal")
	case s == "true":
		return Bool(true), nil
	case s == "false":
		return Bool(false), nil
	case s[0] == '"':
		unq, err := strconv.Unquote(s)
		if err != nil {
			return nil, fmt.Errorf("ndlog: bad string literal %s: %v", s, err)
		}
		return Str(unq), nil
	case s[0] == '#':
		n, err := strconv.ParseUint(s[1:], 16, 64)
		if err != nil {
			return nil, fmt.Errorf("ndlog: bad id literal %s: %v", s, err)
		}
		return ID(n), nil
	case strings.ContainsRune(s, '/'):
		return ParsePrefix(s)
	case strings.Count(s, ".") == 3:
		return ParseIP(s)
	default:
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("ndlog: bad literal %q", s)
		}
		return Int(n), nil
	}
}
