package ndlog

// Delta (counterfactual-phase) evaluation.
//
// A counterfactual replay injects a small change set against an execution
// that has already been evaluated in full. Re-running the whole suffix of
// the log re-derives everything the base run derived just to reach the
// handful of derivations the changes actually perturb. Delta evaluation
// avoids that: changes scheduled through ScheduleCFInsert/ScheduleCFDelete
// go onto a separate counterfactual work heap, the main heap drains first
// (unperturbed — in a fork of a fully evaluated base run that is a no-op
// beyond pending spill items), and only then does Run switch into the
// counterfactual phase and propagate the changes semi-naively:
//
//   - An inserted tuple appears, triggers its rules normally (the delta
//     join probes the same hash indexes as the main phase, as-of the
//     change stamp), and then RE-FIRES every later occurrence of a sibling
//     body atom with the new row pinned at its position — exactly the
//     firings the base run's suffix would have produced had the row been
//     present. The as-of join makes the max-stamp element of each binding
//     its only effective trigger, so every new binding fires exactly once.
//   - A deleted tuple retracts one base support; support counting cascades
//     the underivation to every derivation that transitively depended on
//     the row (DRed's delete phase — the re-derive phase is subsumed by
//     support counting for plain rules).
//   - Argmax rules need genuine re-derivation: when a retraction removes
//     an argmax winner whose trigger fired after the change, or a new row
//     displaces a winner, the trigger is re-evaluated in full
//     (reevalArgMax) and the head flipped to the new winner.
//   - count() aggregates extend their delta chains from the end-state
//     group exactly as a timely firing at the change tick would, since
//     contributor events are append-only.
//
// Byte-identity with full-suffix replay falls out by construction: both
// arms finish the main phase with identical state and counters (the
// full-suffix arm re-runs the suffix unperturbed because changes no
// longer interleave with it), and then execute the identical
// counterfactual phase. The differential suites assert this across every
// scenario, sequential and parallel, CoW on and off.

import (
	"container/heap"
	"fmt"
	"sort"
	"strconv"
)

// eventOcc records one event-tuple occurrence on a table, so the
// counterfactual phase can re-enumerate event triggers that fired in the
// main phase. Appended in processing order; occSorted tracks the
// stamp-sorted prefix for binary search.
type eventOcc struct {
	tuple Tuple
	at    Stamp
}

// occAppend records an event occurrence, maintaining the sorted-prefix
// length (main-phase appends are stamp-monotone; counterfactual appends
// land in a short unsorted tail). On a forked table the occs backing is
// shared with the parent, so appends go to the private occsTail — a
// reallocating append of the whole log would cost O(#occurrences) per
// counterfactual trial.
func (tb *table) occAppend(t Tuple, st Stamp) {
	if tb.occsShared {
		tb.occsTail = append(tb.occsTail, eventOcc{tuple: t, at: st})
		return
	}
	if tb.occSorted == len(tb.occs) &&
		(tb.occSorted == 0 || !st.Before(tb.occs[tb.occSorted-1].at)) {
		tb.occSorted++
	}
	tb.occs = append(tb.occs, eventOcc{tuple: t, at: st})
}

// flattenOccs folds a shared occurrence log and its private tail into
// one engine-owned array, re-extending the sorted prefix over the
// folded entries. Seal calls it on each written table entering the
// prefix cache: forks copy the tail on clone-on-first-write, so a long
// tail — a checkpoint fork that ran a long suffix to the anchor — would
// otherwise be re-copied by every counterfactual trial forked off the
// cached prefix.
func (tb *table) flattenOccs() {
	if !tb.occsShared {
		return
	}
	occs := make([]eventOcc, 0, len(tb.occs)+len(tb.occsTail))
	occs = append(occs, tb.occs...)
	occs = append(occs, tb.occsTail...)
	tb.occs = occs
	tb.occsTail = nil
	tb.occsShared = false
	for tb.occSorted < len(tb.occs) &&
		(tb.occSorted == 0 || !tb.occs[tb.occSorted].at.Before(tb.occs[tb.occSorted-1].at)) {
		tb.occSorted++
	}
}

// noteOrderAppend maintains the stamp-sorted prefix length of tb.order;
// called just after a row is appended.
func (tb *table) noteOrderAppend() {
	i := len(tb.order) - 1
	if tb.orderSorted == i &&
		(i == 0 || !tb.order[i].appearedAt.Before(tb.order[i-1].appearedAt)) {
		tb.orderSorted++
	}
}

// ScheduleCFInsert schedules a counterfactual base-tuple insertion. It
// allocates the next base-band stamp exactly like ScheduleInsert, but the
// work item goes on the counterfactual heap: Run evaluates it only after
// the main heap drains, propagating its consequences as deltas.
func (e *Engine) ScheduleCFInsert(nodeName string, t Tuple, tick int64) error {
	return e.scheduleCF(nodeName, t, tick, wkInsertBase)
}

// ScheduleCFDelete schedules a counterfactual base-tuple deletion; see
// ScheduleCFInsert.
func (e *Engine) ScheduleCFDelete(nodeName string, t Tuple, tick int64) error {
	return e.scheduleCF(nodeName, t, tick, wkDeleteBase)
}

func (e *Engine) scheduleCF(nodeName string, t Tuple, tick int64, kind workKind) error {
	if e.sealed {
		return errSealed
	}
	d := e.prog.Decl(t.Table)
	if d == nil {
		return fmt.Errorf("ndlog: counterfactual change to undeclared table %s", t.Table)
	}
	if !d.Base {
		return fmt.Errorf("ndlog: table %s is not a base table", t.Table)
	}
	if kind == wkInsertBase && len(t.Args) != d.Arity {
		return fmt.Errorf("ndlog: %s has arity %d, got %d args", t.Table, d.Arity, len(t.Args))
	}
	if kind == wkDeleteBase && d.Event {
		return fmt.Errorf("ndlog: cannot delete event tuple %s", t)
	}
	if !e.cfMarksSet {
		// Everything allocated from here on is counterfactual-era; isCF
		// relies on these marks to tell counterfactual rows from main rows.
		e.cfMarksSet = true
		if e.seqBand == 0 {
			e.cfBaseMark = e.seq
		} else {
			e.cfBaseMark = e.baseSeq
		}
		e.cfSeqMark = ^uint64(0) // no internal cf stamps until the drain starts
	}
	st, err := e.scheduleStamp(tick)
	if err != nil {
		return err
	}
	heap.Push(&e.cfQueue, &workItem{stamp: st, kind: kind, node: nodeName, tuple: t})
	return nil
}

// isCF reports whether a stamp was allocated in the counterfactual era:
// a base-band sequence past the first ScheduleCF call, or an internal
// sequence past the start of the counterfactual drain.
func (e *Engine) isCF(st Stamp) bool {
	if !e.cfMarksSet {
		return false
	}
	if e.seqBand == 0 {
		return st.Seq > e.cfBaseMark
	}
	if st.Seq < e.seqBand {
		return st.Seq > e.cfBaseMark
	}
	return st.Seq > e.cfSeqMark
}

// runCF drains the counterfactual heap in stamp order. Called by Run once
// the main heap is empty; derivations spawned during the phase route back
// onto the counterfactual heap (see derive), so the phase runs to its own
// fixpoint. After each item the queued argmax re-evaluations are drained
// in deterministic order.
func (e *Engine) runCF() error {
	if e.cfQueue.Len() == 0 {
		return nil
	}
	e.cfPhase = true
	defer func() { e.cfPhase = false }()
	if e.cfSeqMark == ^uint64(0) {
		e.cfSeqMark = e.seqBand + e.seq
	}
	if e.cfDirty == nil {
		e.cfDirty = map[string]struct{}{}
	}
	for e.cfQueue.Len() > 0 {
		it := heap.Pop(&e.cfQueue).(*workItem)
		if e.now.Before(it.stamp) {
			e.now = it.stamp
		}
		if err := e.process(it); err != nil {
			return err
		}
		if err := e.drainCFReevals(); err != nil {
			return err
		}
	}
	e.stats.DirtyTables = len(e.cfDirty)
	return nil
}

// cfMarkDirty records that counterfactual propagation touched a table on
// a node; Stats.DirtyTables reports how many distinct (node, table) pairs
// the change set actually perturbed.
func (e *Engine) cfMarkDirty(nodeName, tableName string) {
	e.cfDirty[nodeName+"|"+tableName] = struct{}{}
}

// refireForRow re-fires the rules a freshly appeared counterfactual state
// row participates in, against every main-phase occurrence of a sibling
// body atom later than the row's appearance. The row is pinned at its
// atom position and the later occurrence drives the join as the delta, so
// each re-firing reproduces exactly the firing the base run would have
// performed had the row existed — at the occurrence's own stamp, joining
// state as of that stamp. Occurrences at or before the row's appearance
// need no re-fire: the row's own appearance already triggered those rules
// (class-a), and the as-of join covers earlier state. A non-zero until
// bounds the window from above: a backdated row (cfBackdateRow) was
// present from its original appearance on, so occurrences past it fired
// with the row in the base run already.
func (e *Engine) refireForRow(nodeName string, rw *row, s, until Stamp) error {
	for _, ref := range e.prog.triggers(rw.tuple.Table) {
		r := ref.rule
		if r.CountVar != "" {
			continue // aggregate bodies are single event atoms; a state row never matches
		}
		// The pinned atom must actually unify with the row before any
		// enumeration (cheap pre-filter; the pinned join re-checks).
		if !quickMatch(r.Body[ref.atom], Env{}, rw.tuple) {
			continue
		}
		for q := range r.Body {
			if q == ref.atom {
				continue
			}
			if err := e.refireAtomOccurrences(r, ref.atom, nodeName, rw, q, s, until); err != nil {
				return err
			}
		}
	}
	return nil
}

// refireAtomOccurrences enumerates the main-phase occurrences of body
// atom q (events from the occurrence log, state rows from the appearance
// order) with stamps after s — and, when until is non-zero, before until
// — firing rule r for each with the counterfactual row pinned at atom p.
// Argmax rules re-evaluate the full trigger instead of a pinned fire.
func (e *Engine) refireAtomOccurrences(r *Rule, p int, pinNode string, pin *row, q int, s, until Stamp) error {
	atom := r.Body[q]
	decl := e.prog.Decl(atom.Table)
	if decl == nil {
		return fmt.Errorf("ndlog: rule %s: unknown table %s", r.Name, atom.Table)
	}
	for _, nn := range e.nodeOrder {
		n := e.nodes[nn]
		tb := n.tables[atom.Table]
		if tb == nil {
			continue
		}
		if decl.Event {
			fire := func(o eventOcc) error {
				if !s.Before(o.at) || e.isKilledOcc(o.at.Seq) {
					return nil
				}
				if until != (Stamp{}) && !o.at.Before(until) {
					return nil
				}
				return e.refireAt(r, p, pinNode, pin, q, nn, o.tuple, o.at)
			}
			// Sorted prefix by binary search, then the short unsorted
			// tail, then the fork-private counterfactual tail.
			i := sort.Search(tb.occSorted, func(i int) bool { return s.Before(tb.occs[i].at) })
			for ; i < len(tb.occs); i++ {
				if err := fire(tb.occs[i]); err != nil {
					return err
				}
			}
			for _, o := range tb.occsTail {
				if err := fire(o); err != nil {
					return err
				}
			}
			continue
		}
		i := sort.Search(tb.orderSorted, func(i int) bool { return s.Before(tb.order[i].appearedAt) })
		for ; i < len(tb.order); i++ {
			o := tb.order[i]
			// Dead rows need no re-fire: a firing at their appearance would
			// have been retracted when they died (main-phase death), or the
			// row was killed by the change set itself and in a timely run
			// would never have appeared.
			if o.dead || !s.Before(o.appearedAt) {
				continue
			}
			if until != (Stamp{}) && !o.appearedAt.Before(until) {
				continue
			}
			if err := e.refireAt(r, p, pinNode, pin, q, nn, o.tuple, o.appearedAt); err != nil {
				return err
			}
		}
	}
	return nil
}

// refireAt fires rule r once for a single re-enumerated trigger
// occurrence: a pinned fire for plain rules, a full trigger
// re-evaluation for argmax rules.
func (e *Engine) refireAt(r *Rule, p int, pinNode string, pin *row, q int, nodeName string, delta Tuple, st Stamp) error {
	if r.ArgMax != "" {
		cause := At{Node: pinNode, Tuple: pin.tuple, Stamp: pin.appearedAt}
		return e.reevalArgMax(r, q, nodeName, delta, st, cause)
	}
	e.rfPin, e.rfPinAtom, e.rfPinNode = pin, p, pinNode
	e.stats.CFRefires++
	err := e.fireRule(r, q, nodeName, delta, st)
	e.rfPin = nil
	return err
}

// joinPinned matches the pinned counterfactual row — and only it — at
// body atom next, extending the binding and recursing like joinAtom.
// Restricting the pinned position to the new row is what makes a delta
// re-fire derive only the bindings the change introduced: bindings over
// main-phase rows alone were already derived by the base run.
func (e *Engine) joinPinned(r *Rule, deltaAtom int, evalNode string, b binding, next int, st Stamp) ([]binding, error) {
	atom := r.Body[next]
	rw, nodeName := e.rfPin, e.rfPinNode
	locNode, locKnown, err := resolveLoc(atom.Loc, evalNode, b.env)
	if err != nil {
		return nil, fmt.Errorf("ndlog: rule %s: %v", r.Name, err)
	}
	if locKnown && locNode != nodeName {
		return nil, nil
	}
	if rw.dead || st.Before(rw.appearedAt) {
		return nil, nil
	}
	if !quickMatch(atom, b.env, rw.tuple) {
		return nil, nil
	}
	env2 := b.env.Clone()
	if !unifyAtom(atom, nodeName, rw.tuple, env2) {
		return nil, nil
	}
	b2 := binding{env: env2, body: make([]At, len(b.body))}
	copy(b2.body, b.body)
	b2.body[next] = At{Node: nodeName, Tuple: rw.tuple, Stamp: rw.appearedAt}
	return e.joinRest(r, deltaAtom, evalNode, b2, next+1, st)
}

// cfBackdateRow moves an already-live row's appearance back to a
// counterfactual base insertion's stamp: the main run inserted the same
// tuple later, so in the timely run the row exists from st on. Three
// consequences follow. The row's live history interval opens at st.
// Trigger occurrences inside the widened window (st, old appearance) are
// re-fired with the row pinned — occurrences past the old appearance
// fired with the row in the base run already. And on a keyed table the
// generation the main-run insert displaced gives up the window too: its
// death moves back to st, and the event firings it fed in between are
// erased, because the timely run had replaced it before they triggered
// (the §4.9 intra-tick race: the corrected config arrived after the
// probe; inserting it a tick earlier must both erase the stale answer
// and derive the correct one).
func (e *Engine) cfBackdateRow(nodeName string, tb *table, decl *TableDecl, r *row, st Stamp) error {
	old := r.appearedAt
	histBackdateFrom(tb, r.key, old.Seq, st)
	r.appearedAt = st
	// Backdating can break the appearance-order sorted prefix at the
	// row's position; shrink it so binary searches stay sound.
	for i, o := range tb.order {
		if o == r {
			if i < tb.orderSorted && i > 0 && o.appearedAt.Before(tb.order[i-1].appearedAt) {
				tb.orderSorted = i
			}
			break
		}
	}
	e.cfMarkDirty(nodeName, decl.Name)
	if tb.keyIdx != nil {
		pk := primaryKey(decl, r.tuple)
		cause := At{Node: nodeName, Tuple: r.tuple, Stamp: st}
		for _, o := range tb.order {
			if o == r || !o.dead || o.key == r.key || primaryKey(decl, o.tuple) != pk {
				continue
			}
			// The displaced generation is the one that died exactly when r
			// appeared and was live at st; anything between st and the old
			// appearance is a multi-generation interleave we leave as-is.
			for _, iv := range tb.histOf(o.key) {
				if iv.Open || iv.From.Seq != o.appearedAt.Seq || iv.To.Seq != old.Seq || st.Before(iv.From) {
					continue
				}
				histCloseAt(tb, o.key, o.appearedAt.Seq, st)
				e.eraseEventConsumers(nodeName+"|"+o.key, o.appearedAt.Seq, cause, st, true)
				break
			}
		}
	}
	return e.refireForRow(nodeName, r, st, old)
}

// histBackdateFrom moves the start of the interval opened at seq back to
// st, copying the effective base history on a clone's first local write
// (like histCloseLast).
func histBackdateFrom(tb *table, key string, seq uint64, st Stamp) {
	ivs, ok := tb.hist[key]
	if !ok && tb.histBase != nil {
		base := tb.histBase.histOf(key)
		if len(base) == 0 {
			return
		}
		ivs = append([]Interval(nil), base...)
	}
	for i, iv := range ivs {
		if iv.From.Seq == seq {
			ivs[i].From = st
			tb.hist[key] = ivs
			return
		}
	}
}

// histCloseAt moves the end of the interval opened at seq back to st
// (closing it if still open); same copy-on-write discipline as
// histBackdateFrom.
func histCloseAt(tb *table, key string, seq uint64, st Stamp) {
	ivs, ok := tb.hist[key]
	if !ok && tb.histBase != nil {
		base := tb.histBase.histOf(key)
		if len(base) == 0 {
			return
		}
		ivs = append([]Interval(nil), base...)
	}
	for i, iv := range ivs {
		if iv.From.Seq == seq {
			ivs[i].To = st
			ivs[i].Open = false
			tb.hist[key] = ivs
			return
		}
	}
}

// evConsumer records one event-head derivation: which occurrence it
// produced (node, tuple, headAt, deriveID) and which body elements fed it.
// Derived events have no rows, so the support-counting cascade cannot
// retract them; the counterfactual phase erases their occurrences through
// these records instead (DRed's delete phase, extended to events).
type evConsumer struct {
	deriveID int64
	rule     string
	node     string
	tuple    Tuple
	headAt   Stamp // the occurrence's delivery stamp
	trig     At    // the body element that triggered the firing
	trigAtom int   // its body atom index
	body     []bodyRef
}

// registerEventDeriv indexes an event-head derivation under each of its
// body elements, at delivery time (process). The body slice is the
// support's, write-once and shared.
func (e *Engine) registerEventDeriv(d *Derivation, body []bodyRef) {
	c := evConsumer{
		deriveID: d.ID,
		rule:     d.Rule,
		node:     d.Head.Node,
		tuple:    d.Head.Tuple,
		headAt:   d.Head.Stamp,
		trig:     d.Body[d.Trigger],
		trigAtom: d.Trigger,
		body:     body,
	}
	for _, b := range body {
		e.appendEvDep(b.node+"|"+b.key, c)
	}
}

// appendEvDep appends an event consumer under a body-element ref. A
// fork's local entry holds only the consumers the fork itself registers
// (a tail); the base chain's frozen lists are never copied — evDepsOf
// concatenates on read, which is rare (erasure) while registration is
// per-derivation hot.
func (e *Engine) appendEvDep(ref string, c evConsumer) {
	if e.evDeps == nil {
		e.evDeps = map[string][]evConsumer{}
	}
	e.evDeps[ref] = append(e.evDeps[ref], c)
}

// evDepsOf returns the effective consumer list for a body-element ref:
// the copy-on-write chain's entries oldest-first (base registrations
// precede the fork's tail). Entries are never deleted (stale ones are
// filtered by body sequence number at use), so there are no tombstones
// to honor. The returned slice may alias a single chain link's frozen
// storage; do not mutate.
func (e *Engine) evDepsOf(ref string) []evConsumer {
	if e.cowBase == nil {
		return e.evDeps[ref]
	}
	base := e.cowBase.evDepsOf(ref)
	local := e.evDeps[ref]
	if len(local) == 0 {
		return base
	}
	if len(base) == 0 {
		return local
	}
	return append(append(make([]evConsumer, 0, len(base)+len(local)), base...), local...)
}

// forEachEvDeps visits every ref's effective (chain-concatenated)
// consumer list exactly once; used to materialize the overlay on deep
// forks.
func (e *Engine) forEachEvDeps(fn func(ref string, deps []evConsumer)) {
	if e.cowBase == nil {
		for ref, deps := range e.evDeps {
			fn(ref, deps)
		}
		return
	}
	seen := map[string]bool{}
	for en := e; en != nil; en = en.cowBase {
		for ref := range en.evDeps {
			if seen[ref] {
				continue
			}
			seen[ref] = true
			fn(ref, e.evDepsOf(ref))
		}
	}
}

// isKilledOcc reports whether the counterfactual phase erased the event
// occurrence with this stamp sequence (stamp sequences are unique).
func (e *Engine) isKilledOcc(seq uint64) bool {
	for en := e; en != nil; en = en.cowBase {
		if _, ok := en.killedOccs[seq]; ok {
			return true
		}
	}
	return false
}

func (e *Engine) killOcc(seq uint64) {
	if e.killedOccs == nil {
		e.killedOccs = map[uint64]struct{}{}
	}
	e.killedOccs[seq] = struct{}{}
}

// eraseEventConsumers erases the event occurrences derived from a body
// element that a counterfactual retraction just removed. With gate set
// (the element existed until st and then died), only firings triggered
// after st are erased — earlier firings happened in the timely run too.
// Without it (the element's own occurrence was erased, so it never
// happened in the counterfactual timeline), every consumer goes.
func (e *Engine) eraseEventConsumers(ref string, bodySeq uint64, cause At, st Stamp, gate bool) {
	deps := e.evDepsOf(ref)
	if len(deps) == 0 {
		return
	}
	// Snapshot: the cascade can append to other refs' lists via the map.
	snap := append([]evConsumer(nil), deps...)
	for _, c := range snap {
		match := false
		for _, b := range c.body {
			if b.seq == bodySeq {
				match = true
				break
			}
		}
		if !match {
			continue
		}
		if gate && !st.Before(c.trig.Stamp) {
			continue
		}
		e.eraseOccurrence(c, cause, st)
		if gate {
			// The body element existed at the trigger but the timely run
			// loses it by then; an argmax trigger would have fired anyway
			// and chosen the next-best winner — re-evaluate it. (Plain
			// rules need nothing: bindings over other rows were separate
			// firings and still stand. Ungated erasure needs nothing
			// either: events only join as triggers, so the erased
			// occurrence was the consumer's trigger and never happened.)
			if r := e.prog.Rule(c.rule); r != nil && r.ArgMax != "" {
				e.cfReevals = append(e.cfReevals, cfReeval{
					rule: r, atom: c.trigAtom, node: c.trig.Node,
					tuple: c.trig.Tuple, st: c.trig.Stamp,
					cause: cause,
				})
			}
		}
	}
}

// eraseOccurrence erases one derived event occurrence: the timely run the
// counterfactual phase reconstructs would never have fired it. The
// occurrence's zero-length history interval is removed (so Exists,
// ExistsEver, History, and TuplesAt no longer see it), the stamp is
// marked killed (so delta re-fires skip it and a pending delivery is
// dropped), an underivation is emitted, and the erasure cascades: count()
// groups it contributed to are decremented, state rows it supported are
// retracted, and event occurrences derived from it are erased in turn.
func (e *Engine) eraseOccurrence(c evConsumer, cause At, st Stamp) {
	if e.isKilledOcc(c.headAt.Seq) {
		return
	}
	e.killOcc(c.headAt.Seq)
	decl := e.prog.Decl(c.tuple.Table)
	if decl == nil {
		return
	}
	n := e.nodeFor(c.node)
	tb := e.writableTable(n, e.tableFor(n, decl))
	histRemoveOcc(tb, c.tuple.Key(), c.headAt.Seq)
	e.cfMarkDirty(c.node, c.tuple.Table)
	e.deriveID++
	e.obs.OnUnderive(Underivation{
		ID:       e.deriveID,
		DeriveID: c.deriveID,
		Rule:     c.rule,
		Node:     c.node,
		Head:     At{Node: c.node, Tuple: c.tuple, Stamp: e.nextStamp(st.T)},
		Cause:    cause,
	})
	occ := At{Node: c.node, Tuple: c.tuple, Stamp: c.headAt}
	// count() groups the occurrence contributed to shrink by one.
	for _, ref := range e.prog.triggers(c.tuple.Table) {
		if ref.rule.CountVar != "" {
			e.cfAggregateErase(ref.rule, c.node, c.tuple, occ, st)
		}
	}
	// State rows supported by the occurrence lose that support. Aggregate
	// heads are skipped: the group decrement above already replaced them.
	occRef := c.node + "|" + c.tuple.Key()
	for _, dep := range append([]dependentRef(nil), e.depsOf(occRef)...) {
		e.retractSupportIf(dep, c.headAt.Seq, occ, st)
	}
	// Event occurrences derived from this one never happened either.
	e.eraseEventConsumers(occRef, c.headAt.Seq, occ, st, false)
}

// histRemoveOcc removes an event occurrence's zero-length interval from a
// key's history, copying the effective base history on a clone's first
// local write (like histCloseLast).
func histRemoveOcc(tb *table, key string, seq uint64) {
	ivs, ok := tb.hist[key]
	if !ok && tb.histBase != nil {
		base := tb.histBase.histOf(key)
		if len(base) == 0 {
			return
		}
		ivs = append([]Interval(nil), base...)
	}
	for i, iv := range ivs {
		if !iv.Open && iv.From == iv.To && iv.From.Seq == seq {
			tb.hist[key] = append(ivs[:i], ivs[i+1:]...)
			return
		}
	}
}

// retractSupportIf retracts one dependent's support only if that support
// actually contains the erased occurrence (dependent refs carry no body
// sequence, and the same node|key can occur more than once) and the
// support is not an aggregate delta (the group decrement handles those).
func (e *Engine) retractSupportIf(dep dependentRef, bodySeq uint64, cause At, st Stamp) {
	n := e.nodes[dep.node]
	if n == nil {
		return
	}
	var r *row
	for _, t := range n.tables {
		if rw, ok := t.live[dep.key]; ok {
			r = rw
			break
		}
	}
	if r == nil {
		return
	}
	for _, s := range r.supports {
		if s.deriveID != dep.deriveID {
			continue
		}
		if ru := e.prog.Rule(s.rule); ru != nil && ru.CountVar != "" {
			return
		}
		for _, b := range s.body {
			if b.seq == bodySeq {
				e.retractSupport(dep, cause, st)
				return
			}
		}
		return
	}
}

// cfAggregateErase removes one erased contributor from a counting rule's
// group: the previous head is retracted and a head with the decremented
// count derived, linked into the delta chain as a removal (AggRemove) so
// provenance folds subtract the contributor instead of adding it. A group
// whose count reaches zero simply loses its head. Mirrors fireAggregate
// with the sign flipped; invariant breaks (the contributor never matched,
// the group is empty, the head fails to evaluate) count as
// AggRetractMisses, which the differential suites assert stay zero.
func (e *Engine) cfAggregateErase(r *Rule, nodeName string, t Tuple, occ At, st Stamp) {
	env := Env{}
	if !unifyAtom(r.Body[0], nodeName, t, env) {
		return
	}
	b := binding{env: env, body: []At{occ}}
	ok, err := e.finishBinding(r, &b)
	if err != nil {
		e.stats.AggRetractMisses++
		return
	}
	if !ok {
		return // the occurrence never contributed (constraint filtered it)
	}
	destNode, known, err := resolveLoc(r.Head.Loc, nodeName, b.env)
	if err != nil || !known {
		e.stats.AggRetractMisses++
		return
	}
	gk := e.groupKey(r, nodeName, b.env)
	g := e.aggGroupFor(gk)
	if g.count == 0 || !g.prevSet {
		e.stats.AggRetractMisses++
		return
	}
	// Evaluate the decremented head before mutating the group, so an
	// evaluation error leaves it untouched (like fireAggregate).
	env2 := b.env.Clone()
	env2[r.CountVar] = Int(g.count - 1)
	args := make([]Value, len(r.Head.Args))
	for i, expr := range r.Head.Args {
		v, err := expr.Eval(env2)
		if err != nil {
			e.stats.AggRetractMisses++
			return
		}
		args[i] = v
	}
	g.count--
	prevID := g.prevID
	e.retractDerived(destNode, g.prev, g.prevID, occ, st)
	if g.count == 0 {
		g.prev, g.prevID, g.prevSet = Tuple{}, 0, false
		return
	}
	head := Tuple{Table: r.Head.Table, Args: args}
	e.stats.Derivations++
	e.deriveID++
	d := &Derivation{
		ID:        e.deriveID,
		Rule:      r.Name,
		Node:      nodeName,
		Body:      []At{occ},
		Trigger:   0,
		AggPrev:   prevID,
		AggCount:  g.count,
		AggRemove: true,
	}
	hst := e.nextStamp(st.T)
	d.Head = At{Node: destNode, Tuple: head, Stamp: hst}
	g.prev, g.prevID, g.prevSet = head.Clone(), d.ID, true
	e.obs.OnDerive(*d)
	sup := support{deriveID: d.ID, rule: d.Rule, body: bodyRefsOf(d)}
	if err := e.appear(destNode, head, hst, d.ID, sup); err != nil {
		e.stats.AggRetractMisses++
	}
}

// amKey canonically identifies an argmax trigger occurrence: the rule
// plus the (node, key, seq) of the triggering element. Every binding a
// trigger produces shares it, so it keys "the derivation this trigger
// currently supports".
func amKey(ruleName, node, key string, seq uint64) string {
	return ruleName + "|" + node + "|" + key + "|" + strconv.FormatUint(seq, 10)
}

// amEntry records the argmax winner currently derived for one trigger
// occurrence: the head it derived (for retraction when a counterfactual
// change flips the winner) and the winning binding's canonical key (to
// detect that the winner is unchanged). Entries are write-once; updates
// store a fresh entry.
type amEntry struct {
	ref       dependentRef // head row ref; key=="" for event heads
	bk        string       // canonical key of the winning binding
	eventHead bool
	headTuple Tuple // event heads: the derived occurrence, for erasure
	headAt    Stamp // event heads: its delivery stamp
}

// amOf reads the argmax-winner map through the copy-on-write chain.
func (e *Engine) amOf(key string) *amEntry {
	for en := e; en != nil; en = en.cowBase {
		if v, ok := en.amDeriv[key]; ok {
			return v
		}
	}
	return nil
}

// amSet records the winner for a trigger in this engine's local map.
// Entries are never deleted: a stale entry (its derivation has since been
// retracted) is detected at use — the retraction is skipped gracefully
// and the binding-key comparison still answers "did the winner change".
func (e *Engine) amSet(key string, v *amEntry) {
	if e.amDeriv == nil {
		e.amDeriv = map[string]*amEntry{}
	}
	e.amDeriv[key] = v
}

// forEachAm visits every trigger's effective winner entry exactly once;
// used to materialize the overlay on deep forks.
func (e *Engine) forEachAm(fn func(key string, v *amEntry)) {
	if e.cowBase == nil {
		for k, v := range e.amDeriv {
			fn(k, v)
		}
		return
	}
	seen := map[string]bool{}
	for en := e; en != nil; en = en.cowBase {
		for k, v := range en.amDeriv {
			if seen[k] {
				continue
			}
			seen[k] = true
			fn(k, v)
		}
	}
}

// noteArgMaxWin records the winner just derived by a main-phase (or
// class-a counterfactual) argmax firing, so the counterfactual phase can
// retract it if a change flips the winner. Called from fireRule after
// derive; the delta that fired the rule is the trigger (it always carries
// the binding's max stamp — rules fire in processing order).
func (e *Engine) noteArgMaxWin(r *Rule, deltaNode string, delta Tuple, st Stamp, win binding) {
	key := amKey(r.Name, deltaNode, delta.Key(), st.Seq)
	e.amSet(key, e.amEntryFor(r, deltaNode, win))
}

// amEntryFor builds the winner entry for a binding whose head was just
// derived (e.deriveID is the head's derivation id).
func (e *Engine) amEntryFor(r *Rule, evalNode string, win binding) *amEntry {
	ent := &amEntry{bk: bindingKey(win, r)}
	head, destNode, err := e.headOf(r, evalNode, win)
	if err != nil {
		// derive already succeeded with this binding; an evaluation error
		// here is unreachable, but degrade to an unretractable entry
		// rather than corrupt state.
		return ent
	}
	if d := e.prog.Decl(head.Table); d != nil && d.Event {
		// Event heads have no row to retract; record the occurrence the
		// derive just pushed (its delivery stamp is lastDeriveStamp) so a
		// displaced winner can be erased instead.
		ent.eventHead = true
		ent.ref = dependentRef{node: destNode, deriveID: e.deriveID}
		ent.headTuple = head
		ent.headAt = e.lastDeriveStamp
		return ent
	}
	ent.ref = dependentRef{node: destNode, key: head.Key(), deriveID: e.deriveID}
	return ent
}

// headOf evaluates a rule's head tuple and destination node under a
// binding (the same computation derive performs).
func (e *Engine) headOf(r *Rule, evalNode string, b binding) (Tuple, string, error) {
	args := make([]Value, len(r.Head.Args))
	for i, expr := range r.Head.Args {
		v, err := expr.Eval(b.env)
		if err != nil {
			return Tuple{}, "", fmt.Errorf("ndlog: rule %s head: %v", r.Name, err)
		}
		args[i] = v
	}
	destNode, known, err := resolveLoc(r.Head.Loc, evalNode, b.env)
	if err != nil || !known {
		return Tuple{}, "", fmt.Errorf("ndlog: rule %s: unresolved head location: %v", r.Name, err)
	}
	return Tuple{Table: r.Head.Table, Args: args}, destNode, nil
}

// cfReeval is one queued argmax trigger re-evaluation, recorded when a
// counterfactual retraction removes an argmax winner whose trigger fired
// after the retraction point.
type cfReeval struct {
	rule  *Rule
	atom  int
	node  string
	tuple Tuple
	st    Stamp
	cause At
}

// noteCFRetraction is called from retractSupport during the
// counterfactual phase: if the retracted support belonged to an argmax
// rule and its trigger fired after the retraction stamp, the trigger must
// be re-evaluated — in a timely run the firing would have happened
// without the vanished element and chosen a different winner. Plain rules
// need nothing (support counting already retracted exactly the bindings
// that contained the element), and triggers at or before the retraction
// match timely behavior as-is (fired, then retracted, never re-fired).
func (e *Engine) noteCFRetraction(sup support, st Stamp) {
	if sup.rule == "" {
		return
	}
	r := e.prog.Rule(sup.rule)
	if r == nil || r.ArgMax == "" {
		return
	}
	atom, node, tuple, trig, ok := e.triggerOf(r, sup)
	if !ok || !st.Before(trig) {
		return
	}
	e.cfReevals = append(e.cfReevals, cfReeval{
		rule: r, atom: atom, node: node, tuple: tuple, st: trig,
		cause: At{Node: node, Tuple: tuple, Stamp: st},
	})
}

// triggerOf reconstructs the trigger occurrence of a support: the
// max-stamp body element. Element stamps come from the interval
// histories (the bodyRef seq identifies the appearance interval), event
// tuples from the occurrence log, state tuples from the appearance
// order. A state trigger that has since died is dropped (ok=false): its
// firings were retracted with it and a timely run would not re-fire.
func (e *Engine) triggerOf(r *Rule, sup support) (atom int, node string, tuple Tuple, st Stamp, ok bool) {
	best := -1
	var bestStamp Stamp
	for i, b := range sup.body {
		if i >= len(r.Body) {
			return 0, "", Tuple{}, Stamp{}, false
		}
		n := e.nodes[b.node]
		if n == nil {
			return 0, "", Tuple{}, Stamp{}, false
		}
		tb := n.tables[r.Body[i].Table]
		if tb == nil {
			return 0, "", Tuple{}, Stamp{}, false
		}
		var at Stamp
		found := false
		for _, iv := range tb.histOf(b.key) {
			if iv.From.Seq == b.seq {
				at, found = iv.From, true
				break
			}
		}
		if !found {
			return 0, "", Tuple{}, Stamp{}, false
		}
		if best < 0 || bestStamp.Before(at) {
			best, bestStamp = i, at
		}
	}
	if best < 0 {
		return 0, "", Tuple{}, Stamp{}, false
	}
	bref := sup.body[best]
	n := e.nodes[bref.node]
	tb := n.tables[r.Body[best].Table]
	if d := e.prog.Decl(r.Body[best].Table); d != nil && d.Event {
		t, ok := occAtStamp(tb, bestStamp)
		if !ok {
			return 0, "", Tuple{}, Stamp{}, false
		}
		return best, bref.node, t, bestStamp, true
	}
	rw, ok2 := rowAtStamp(tb, bestStamp)
	if !ok2 || rw.dead {
		return 0, "", Tuple{}, Stamp{}, false
	}
	return best, bref.node, rw.tuple, bestStamp, true
}

// occAtStamp finds the event occurrence with the given stamp (binary
// search over the sorted prefix, linear over the tail).
func occAtStamp(tb *table, st Stamp) (Tuple, bool) {
	i := sort.Search(tb.occSorted, func(i int) bool { return !tb.occs[i].at.Before(st) })
	if i < tb.occSorted && tb.occs[i].at == st {
		return tb.occs[i].tuple, true
	}
	for j := tb.occSorted; j < len(tb.occs); j++ {
		if tb.occs[j].at == st {
			return tb.occs[j].tuple, true
		}
	}
	for _, o := range tb.occsTail {
		if o.at == st {
			return o.tuple, true
		}
	}
	return Tuple{}, false
}

// rowAtStamp finds the row that appeared at the given stamp.
func rowAtStamp(tb *table, st Stamp) (*row, bool) {
	i := sort.Search(tb.orderSorted, func(i int) bool { return !tb.order[i].appearedAt.Before(st) })
	if i < tb.orderSorted && tb.order[i].appearedAt == st {
		return tb.order[i], true
	}
	for j := tb.orderSorted; j < len(tb.order); j++ {
		if tb.order[j].appearedAt == st {
			return tb.order[j], true
		}
	}
	return nil, false
}

// drainCFReevals processes the queued argmax re-evaluations in
// deterministic order (trigger stamp, then rule name, then trigger key).
// A re-evaluation can cascade into further retractions and hence further
// queued re-evaluations; the loop runs to fixpoint. reevalArgMax is
// idempotent (it compares winners before acting), so duplicates across
// batches are harmless.
func (e *Engine) drainCFReevals() error {
	for len(e.cfReevals) > 0 {
		batch := e.cfReevals
		e.cfReevals = nil
		sort.Slice(batch, func(i, j int) bool {
			if batch[i].st != batch[j].st {
				return batch[i].st.Before(batch[j].st)
			}
			if batch[i].rule.Name != batch[j].rule.Name {
				return batch[i].rule.Name < batch[j].rule.Name
			}
			return batch[i].tuple.Key() < batch[j].tuple.Key()
		})
		for _, rq := range batch {
			if err := e.reevalArgMax(rq.rule, rq.atom, rq.node, rq.tuple, rq.st, rq.cause); err != nil {
				return err
			}
		}
	}
	return nil
}

// reevalArgMax re-evaluates one argmax trigger occurrence in full, as of
// its own stamp, against current state — counterfactual rows included,
// rows the change set killed excluded. If the winner differs from the one
// the trigger currently supports, the old head is retracted (cascading)
// and the new winner derived. Idempotent: an unchanged winner is a no-op.
func (e *Engine) reevalArgMax(r *Rule, deltaAtom int, nodeName string, delta Tuple, st Stamp, cause At) error {
	if d := e.prog.Decl(delta.Table); d != nil && d.Event && e.isKilledOcc(st.Seq) {
		return nil // the trigger occurrence was erased after this re-eval was queued
	}
	atom := r.Body[deltaAtom]
	env := Env{}
	if !unifyAtom(atom, nodeName, delta, env) {
		return nil
	}
	seed := binding{env: env, body: make([]At, len(r.Body))}
	seed.body[deltaAtom] = At{Node: nodeName, Tuple: delta, Stamp: st}
	bindings, err := e.joinRest(r, deltaAtom, nodeName, seed, 0, st)
	if err != nil {
		return err
	}
	var sat []binding
	for _, b := range bindings {
		ok, err := e.finishBinding(r, &b)
		if err != nil {
			return fmt.Errorf("ndlog: rule %s: %v", r.Name, err)
		}
		if ok {
			sat = append(sat, b)
		}
	}
	key := amKey(r.Name, nodeName, delta.Key(), st.Seq)
	cur := e.amOf(key)
	if len(sat) == 0 {
		// No satisfying binding survives the changes; whatever the trigger
		// derived has been (or is being) retracted by the support cascade.
		return nil
	}
	best := 0
	for i := 1; i < len(sat); i++ {
		bi := sat[i].env[r.ArgMax]
		bb := sat[best].env[r.ArgMax]
		if Less(bb, bi) || (!Less(bi, bb) && bindingKey(sat[i], r) < bindingKey(sat[best], r)) {
			best = i
		}
	}
	win := sat[best]
	bk := bindingKey(win, r)
	if cur != nil && cur.bk == bk {
		return nil // winner unchanged; the main-phase derivation stands (or fell with its own supports)
	}
	if cur != nil && !cur.eventHead && cur.ref.key != "" {
		// Retract the displaced winner's head. The support may already be
		// gone (retracted by a cascade); retractSupport handles that.
		e.retractSupport(cur.ref, cause, st)
	}
	if cur != nil && cur.eventHead && cur.headTuple.Table != "" {
		// A displaced event-head winner has no row; erase its occurrence
		// (idempotent — a cascade may already have erased it).
		e.eraseOccurrence(evConsumer{
			deriveID: cur.ref.deriveID,
			rule:     r.Name,
			node:     cur.ref.node,
			tuple:    cur.headTuple,
			headAt:   cur.headAt,
		}, cause, st)
	}
	e.stats.CFRefires++
	if err := e.derive(r, nodeName, win, deltaAtom, st); err != nil {
		return err
	}
	e.amSet(key, e.amEntryFor(r, nodeName, win))
	return nil
}
