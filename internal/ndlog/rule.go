package ndlog

import (
	"fmt"
	"strings"
	"sync"
)

// Atom is a predicate occurrence in a rule head or body: a table name, an
// optional location term (the @ specifier of distributed NDlog), and one
// expression per column. Body atom arguments are typically variables or
// constants; head arguments may be arbitrary expressions.
type Atom struct {
	Table string
	Loc   Expr // nil means "local" (the node evaluating the rule)
	Args  []Expr
	// Negated marks a negated body atom (`!t(...)` or `not t(...)`):
	// the rule fires only when no matching tuple exists. The engine does
	// not execute negation — AnalyzeProgram reports it as CodeNegation
	// (an error) — but the parser and the dependency analyses
	// (slice.go) understand it, so sliced/vetted programs written in the
	// wider NDlog dialect are still analyzable. Head atoms are never
	// negated.
	Negated bool
	// Pos is the source position of the predicate name, when the atom
	// came from parsed text (zero for API-built atoms).
	Pos Pos
}

func (a Atom) String() string {
	var sb strings.Builder
	if a.Negated {
		sb.WriteByte('!')
	}
	sb.WriteString(a.Table)
	sb.WriteByte('(')
	if a.Loc != nil {
		sb.WriteByte('@')
		sb.WriteString(a.Loc.String())
		if len(a.Args) > 0 {
			sb.WriteString(", ")
		}
	}
	for i, arg := range a.Args {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(arg.String())
	}
	sb.WriteByte(')')
	return sb.String()
}

// Assign is a let-binding in a rule body: Var := Expr.
type Assign struct {
	Var  string
	Expr Expr
}

func (a Assign) String() string { return fmt.Sprintf("%s := %s", a.Var, a.Expr) }

// Rule is an NDlog derivation rule: Head :- Body, Constraints, Assigns.
// A tuple matching the head is derived whenever all body atoms are
// satisfiable under a consistent binding that passes every constraint.
type Rule struct {
	Name    string
	Head    Atom
	Body    []Atom
	Where   []Expr   // boolean constraint expressions
	Assigns []Assign // evaluated in order after body binding
	// ArgMax, when non-empty, names a variable: among all satisfying
	// bindings produced by a single trigger event, only the one
	// maximizing that variable derives the head (deterministic
	// tie-break on the full binding). This models OpenFlow's
	// highest-priority-match semantics declaratively.
	ArgMax string
	// Inverses optionally provides hand-written inverse assignments for
	// rules whose computations cannot be inverted automatically
	// (paper §4.5: "we depend on the model to provide inverse rules").
	Inverses []Assign
	// CountVar, when non-empty, names a variable bound by `N := count()`
	// in the body, turning the rule into an incremental counting rule
	// (see aggregate.go).
	CountVar string
	// Pos is the source position of the rule name (zero for API-built
	// rules).
	Pos Pos
}

func (r Rule) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "rule %s %s :- ", r.Name, r.Head)
	first := true
	sep := func() {
		if !first {
			sb.WriteString(", ")
		}
		first = false
	}
	for _, b := range r.Body {
		sep()
		sb.WriteString(b.String())
	}
	for _, a := range r.Assigns {
		sep()
		sb.WriteString(a.String())
	}
	for _, w := range r.Where {
		sep()
		sb.WriteString(w.String())
	}
	if r.CountVar != "" {
		sep()
		sb.WriteString(r.CountVar + " := count()")
	}
	if r.ArgMax != "" {
		sep()
		sb.WriteString("argmax " + r.ArgMax)
	}
	sb.WriteByte('.')
	return sb.String()
}

// Validate checks rule well-formedness: every head variable must be bound
// by the body or an assignment, and the location terms must be variables
// or constants. It is a thin wrapper over the per-rule static analysis
// (see analyze.go) that reports the first Error-severity diagnostic.
func (r Rule) Validate(p *Program) error {
	if err := firstError(analyzeRule(p, &r)); err != nil {
		return err
	}
	return validateAggregate(&r, p)
}

// TableDecl declares a table: its arity and its role in the system model.
type TableDecl struct {
	Name  string
	Arity int
	// Event marks event tables: tuples that trigger derivations but are
	// not stored as state (packets, job records). Event tuples exist
	// only at their appearance instant.
	Event bool
	// Base marks tables populated by external inputs rather than rules.
	Base bool
	// Mutable marks base tables whose tuples DiffProv may change when
	// computing differential provenance (§3.3 refinement #1). Incoming
	// packets are immutable; configuration state is mutable.
	Mutable bool
	// Key lists the argument indices forming the table's primary key.
	// Inserting a base tuple whose key matches a live row replaces that
	// row (configuration-store semantics). Empty = whole tuple is the key.
	Key []int
	// Pos is the source position of the declaration (zero for API-built
	// declarations).
	Pos Pos
}

func (d TableDecl) String() string {
	attrs := []string{fmt.Sprintf("/%d", d.Arity)}
	if d.Event {
		attrs = append(attrs, "event")
	}
	if d.Base {
		attrs = append(attrs, "base")
	}
	if d.Mutable {
		attrs = append(attrs, "mutable")
	}
	return d.Name + strings.Join(attrs, " ")
}

// Program is a set of table declarations and rules: the declarative model
// of the system being diagnosed.
type Program struct {
	decls       map[string]*TableDecl
	declOrder   []string
	rules       []*Rule
	rulesByName map[string]*Rule
	// byBodyTable indexes rules by the tables appearing in their bodies
	// for trigger dispatch.
	byBodyTable map[string][]ruleAtomRef
	// analyzeOnce/analyzed cache the whole-program analysis (see
	// Program.Analyze in analyze.go): replay sessions rebuild engines over
	// the same program many times and must not re-pay the analysis.
	analyzeOnce sync.Once
	analyzed    []Diag
}

type ruleAtomRef struct {
	rule *Rule
	atom int // index into rule.Body
}

// NewProgram creates an empty program.
func NewProgram() *Program {
	return &Program{
		decls:       map[string]*TableDecl{},
		rulesByName: map[string]*Rule{},
		byBodyTable: map[string][]ruleAtomRef{},
	}
}

// Declare adds a table declaration.
func (p *Program) Declare(d TableDecl) error {
	if _, dup := p.decls[d.Name]; dup {
		return fmt.Errorf("ndlog: duplicate table declaration %s", d.Name)
	}
	dd := d
	p.decls[d.Name] = &dd
	p.declOrder = append(p.declOrder, d.Name)
	return nil
}

// Decl returns the declaration for a table, or nil.
func (p *Program) Decl(table string) *TableDecl {
	return p.decls[table]
}

// Tables returns the declared table names in declaration order.
func (p *Program) Tables() []string {
	return append([]string(nil), p.declOrder...)
}

// AddRule validates and adds a rule.
func (p *Program) AddRule(r Rule) error {
	if err := r.Validate(p); err != nil {
		return err
	}
	if _, dup := p.rulesByName[r.Name]; dup {
		return fmt.Errorf("ndlog: duplicate rule name %s", r.Name)
	}
	rr := r
	p.rules = append(p.rules, &rr)
	p.rulesByName[r.Name] = &rr
	for i, b := range rr.Body {
		p.byBodyTable[b.Table] = append(p.byBodyTable[b.Table], ruleAtomRef{rule: &rr, atom: i})
	}
	return nil
}

// addRuleUnchecked adds a rule without validating it. The loose parser
// uses it so AnalyzeProgram can report on malformed rules with positions;
// the caller must have rejected duplicate names already.
func (p *Program) addRuleUnchecked(r Rule) {
	rr := r
	p.rules = append(p.rules, &rr)
	p.rulesByName[r.Name] = &rr
	for i, b := range rr.Body {
		p.byBodyTable[b.Table] = append(p.byBodyTable[b.Table], ruleAtomRef{rule: &rr, atom: i})
	}
}

// Rule returns the rule with the given name, or nil.
func (p *Program) Rule(name string) *Rule {
	return p.rulesByName[name]
}

// Rules returns the rules in definition order.
func (p *Program) Rules() []*Rule {
	return append([]*Rule(nil), p.rules...)
}

// triggers returns the (rule, body-atom) pairs that a tuple of the given
// table may trigger.
func (p *Program) triggers(table string) []ruleAtomRef {
	return p.byBodyTable[table]
}

// String renders the program in NDlog source syntax.
func (p *Program) String() string {
	var sb strings.Builder
	for _, name := range p.declOrder {
		d := p.decls[name]
		sb.WriteString("table ")
		sb.WriteString(d.Name)
		fmt.Fprintf(&sb, "/%d", d.Arity)
		if d.Event {
			sb.WriteString(" event")
		}
		if d.Base {
			sb.WriteString(" base")
		}
		if d.Mutable {
			sb.WriteString(" mutable")
		}
		if len(d.Key) > 0 {
			sb.WriteString(" key(")
			for i, k := range d.Key {
				if i > 0 {
					sb.WriteString(", ")
				}
				fmt.Fprintf(&sb, "%d", k)
			}
			sb.WriteString(")")
		}
		sb.WriteString(";\n")
	}
	for _, r := range p.rules {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
