package ndlog_test

import (
	"testing"

	"repro/internal/ndlog"
	"repro/internal/provenance"
)

// forkProg exercises the structures Fork must copy faithfully: transitive
// derivations across nodes (supports, dependents, the work queue's
// in-flight arrivals), deletions (retraction cascades, closed history
// intervals, dead rows), and keyed tables (primary-key index).
var forkProg = ndlog.MustParse(`
table link/2 base mutable;
table reach/2;
rule direct reach(@S, S, D) :- link(@S, S, D).
rule trans reach(@S, S, D) :- link(@S, S, M), reach(@M, M, D).
`)

type forkEvent struct {
	insert bool
	node   string
	a, b   string
	tick   int64
}

// forkSchedule drives a little network through growth and churn: links
// appear across ticks, reach spreads transitively, then links die and
// the cascade retracts.
var forkSchedule = []forkEvent{
	{true, "a", "a", "b", 0},
	{true, "b", "b", "c", 0},
	{true, "c", "c", "d", 1},
	{true, "a", "a", "c", 2},
	{true, "d", "d", "e", 3},
	{false, "b", "b", "c", 5},
	{true, "b", "b", "e", 6},
	{false, "a", "a", "b", 8},
	{true, "a", "a", "d", 9},
	{false, "c", "c", "d", 11},
}

func scheduleFork(t *testing.T, e *ndlog.Engine) {
	t.Helper()
	for _, ev := range forkSchedule {
		tu := ndlog.NewTuple("link", ndlog.Str(ev.a), ndlog.Str(ev.b))
		var err error
		if ev.insert {
			err = e.ScheduleInsert(ev.node, tu, ev.tick)
		} else {
			err = e.ScheduleDelete(ev.node, tu, ev.tick)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestForkHalfRunEqualsStraightThrough is the fork layer's property test:
// for every cut tick, scheduling the whole event sequence, evaluating up
// to the cut, forking (engine and recorder), and running the fork to
// completion must produce exactly the graph and state of an uncut run —
// and so must the original engine when it resumes after the fork,
// proving the fork did not perturb it.
func TestForkHalfRunEqualsStraightThrough(t *testing.T) {
	band := ndlog.WithSeqBand(ndlog.SeqBandDefault)

	// The reference: one straight-through run.
	recRef := provenance.NewRecorder(forkProg)
	ref := ndlog.New(forkProg, recRef, band)
	scheduleFork(t, ref)
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	wantGraph := serializeGraph(recRef.Graph())
	wantState := serializeSnapshot(ref.CaptureState())

	lastTick := forkSchedule[len(forkSchedule)-1].tick
	for cut := int64(0); cut <= lastTick+1; cut++ {
		rec := provenance.NewRecorder(forkProg)
		e := ndlog.New(forkProg, rec, band)
		scheduleFork(t, e)
		if err := e.RunUntil(cut); err != nil {
			t.Fatal(err)
		}

		frec := rec.Fork()
		f := e.Fork(frec)
		if err := f.Run(); err != nil {
			t.Fatal(err)
		}
		if got := serializeGraph(frec.Graph()); got != wantGraph {
			t.Fatalf("cut %d: forked run's graph differs from straight-through:\nfork:\n%s\nwant:\n%s", cut, got, wantGraph)
		}
		if got := serializeSnapshot(f.CaptureStateAt(ref.Now().T)); got != wantState {
			t.Fatalf("cut %d: forked run's state differs from straight-through:\nfork:\n%s\nwant:\n%s", cut, got, wantState)
		}

		// The original resumes as if the fork never happened.
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		if got := serializeGraph(rec.Graph()); got != wantGraph {
			t.Fatalf("cut %d: original engine perturbed by fork:\ngot:\n%s\nwant:\n%s", cut, got, wantGraph)
		}
		if got := serializeSnapshot(e.CaptureStateAt(ref.Now().T)); got != wantState {
			t.Fatalf("cut %d: original engine's state perturbed by fork", cut)
		}
	}
}

// TestForkIsolation: after a fork, events applied to one side must not
// leak into the other — in either direction.
func TestForkIsolation(t *testing.T) {
	e := ndlog.New(forkProg, nil, ndlog.WithSeqBand(ndlog.SeqBandDefault))
	scheduleFork(t, e)
	if err := e.RunUntil(6); err != nil {
		t.Fatal(err)
	}
	f := e.Fork(nil)

	onlyFork := ndlog.NewTuple("link", ndlog.Str("x"), ndlog.Str("y"))
	if err := f.ScheduleInsert("x", onlyFork, 20); err != nil {
		t.Fatal(err)
	}
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	onlyOrig := ndlog.NewTuple("link", ndlog.Str("p"), ndlog.Str("q"))
	if err := e.ScheduleInsert("p", onlyOrig, 20); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}

	if e.ExistsEver("x", onlyFork) {
		t.Error("fork-only event leaked into the original")
	}
	if f.ExistsEver("p", onlyOrig) {
		t.Error("original-only event leaked into the fork")
	}
	reach := ndlog.NewTuple("reach", ndlog.Str("x"), ndlog.Str("y"))
	if !f.ExistsEver("x", reach) {
		t.Error("fork failed to derive from its own event")
	}
	if e.ExistsEver("x", reach) {
		t.Error("fork derivation leaked into the original")
	}
}

// TestSeqBandExhaustion: the base band is guarded — scheduling more base
// events than the band holds fails instead of colliding with internal
// stamps.
func TestSeqBandExhaustion(t *testing.T) {
	e := ndlog.New(forkProg, nil, ndlog.WithSeqBand(3))
	tu := func(i int) ndlog.Tuple {
		return ndlog.NewTuple("link", ndlog.Str("n"), ndlog.Str(string(rune('a'+i))))
	}
	if err := e.ScheduleInsert("n", tu(0), 0); err != nil {
		t.Fatal(err)
	}
	if err := e.ScheduleInsert("n", tu(1), 0); err != nil {
		t.Fatal(err)
	}
	if err := e.ScheduleInsert("n", tu(2), 0); err == nil {
		t.Fatal("scheduling past the sequence band must fail")
	}
}
