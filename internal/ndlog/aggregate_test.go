package ndlog

import "testing"

const wcProgram = `
table kv/2 event base;          // (word, seq) arriving at a reducer
table wordcount/2;              // (word, count)
rule wc wordcount(@R, W, N) :- kv(@R, W, S), N := count().
`

func TestAggregateCounting(t *testing.T) {
	p := MustParse(wcProgram)
	obs := &recordingObserver{}
	e := New(p, obs)
	words := []string{"the", "fox", "the", "dog", "the"}
	for i, w := range words {
		e.ScheduleInsert("r1", NewTuple("kv", Str(w), Int(int64(i))), int64(i))
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !e.Exists("r1", NewTuple("wordcount", Str("the"), Int(3)), e.Now()) {
		t.Error("wordcount(the, 3) should be live")
	}
	if !e.Exists("r1", NewTuple("wordcount", Str("fox"), Int(1)), e.Now()) {
		t.Error("wordcount(fox, 1) should be live")
	}
	// Intermediate counts were underived.
	if e.Exists("r1", NewTuple("wordcount", Str("the"), Int(2)), e.Now()) {
		t.Error("intermediate wordcount(the, 2) must be retracted")
	}
	if !e.ExistsEver("r1", NewTuple("wordcount", Str("the"), Int(2))) {
		t.Error("intermediate count must exist in history")
	}
	// The final count's derivation is a delta: it carries only the newest
	// contributor plus a chain link to the previous head. Walking AggPrev
	// back recovers all three contributors in arrival order.
	var finalDeriv *Derivation
	byID := map[int64]*Derivation{}
	for i := range obs.derives {
		d := &obs.derives[i]
		byID[d.ID] = d
		if d.Head.Tuple.Equal(NewTuple("wordcount", Str("the"), Int(3))) {
			finalDeriv = d
		}
	}
	if finalDeriv == nil {
		t.Fatal("no derivation for wordcount(the, 3)")
	}
	if len(finalDeriv.Body) != 1 {
		t.Errorf("delta derivation carries %d body atoms, want 1 (the new contributor)", len(finalDeriv.Body))
	}
	if finalDeriv.Trigger != 0 {
		t.Errorf("trigger = %d, want 0 (the sole recorded contributor)", finalDeriv.Trigger)
	}
	if finalDeriv.AggCount != 3 {
		t.Errorf("AggCount = %d, want 3", finalDeriv.AggCount)
	}
	var contribs []Tuple
	for d := finalDeriv; d != nil; {
		if len(d.Body) != 1 {
			t.Fatalf("chain derivation %d carries %d body atoms, want 1", d.ID, len(d.Body))
		}
		contribs = append(contribs, d.Body[0].Tuple)
		if d.AggPrev == 0 {
			if d.AggCount != 1 {
				t.Errorf("chain head has AggCount %d, want 1", d.AggCount)
			}
			break
		}
		prev, ok := byID[d.AggPrev]
		if !ok {
			t.Fatalf("AggPrev %d not among observed derivations", d.AggPrev)
		}
		if prev.AggCount != d.AggCount-1 {
			t.Errorf("chain counts not consecutive: %d follows %d", d.AggCount, prev.AggCount)
		}
		d = prev
	}
	if len(contribs) != 3 {
		t.Fatalf("folded chain has %d contributors, want 3", len(contribs))
	}
	// Newest first along the chain: seqs 4, 2, 0 of the "the" events.
	for i, wantSeq := range []int64{4, 2, 0} {
		if got := contribs[i].Args[1]; got != Int(wantSeq) {
			t.Errorf("contributor %d = kv(the, %v), want seq %d", i, got, wantSeq)
		}
	}
	// Two underivations for "the" (counts 1 and 2 superseded).
	under := 0
	for _, u := range obs.underives {
		if u.Head.Tuple.Args[0] == Str("the") {
			under++
		}
	}
	if under != 2 {
		t.Errorf("underivations for 'the' = %d, want 2", under)
	}
}

func TestAggregateGroupsAreIndependent(t *testing.T) {
	p := MustParse(wcProgram)
	e := New(p, nil)
	// Same word on two reducers: independent groups.
	e.ScheduleInsert("r1", NewTuple("kv", Str("w"), Int(0)), 0)
	e.ScheduleInsert("r2", NewTuple("kv", Str("w"), Int(1)), 1)
	e.ScheduleInsert("r1", NewTuple("kv", Str("w"), Int(2)), 2)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !e.Exists("r1", NewTuple("wordcount", Str("w"), Int(2)), e.Now()) {
		t.Error("r1 should count 2")
	}
	if !e.Exists("r2", NewTuple("wordcount", Str("w"), Int(1)), e.Now()) {
		t.Error("r2 should count 1")
	}
}

func TestAggregateValidation(t *testing.T) {
	bad := []string{
		// argmax + count
		`table kv/1 event base; table c/2; rule r c(W, N) :- kv(W, P), N := count(), argmax P.`,
		// two body atoms
		`table kv/1 event base; table s/1 base; table c/2; rule r c(W, N) :- kv(W), s(W), N := count().`,
		// state-triggered
		`table st/1 base; table c/2; rule r c(W, N) :- st(W), N := count().`,
		// event head
		`table kv/1 event base; table c/2 event; rule r c(W, N) :- kv(W), N := count().`,
		// head does not use count var
		`table kv/1 event base; table c/1; rule r c(W) :- kv(W), N := count().`,
		// remote head
		`table kv/1 event base; table c/2; rule r c(@other, W, N) :- kv(@here, W), N := count().`,
		// duplicate count clauses
		`table kv/1 event base; table c/2; rule r c(W, N) :- kv(W), N := count(), N := count().`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
	// A variable head location equal to the body location is fine.
	ok := `table kv/1 event base; table c/2; rule r c(@R, W, N) :- kv(@R, W), N := count().`
	if _, err := Parse(ok); err != nil {
		t.Errorf("local-variable head location should be accepted: %v", err)
	}
}

func TestKeyedTableReplacement(t *testing.T) {
	p := MustParse(`
table config/2 base mutable key(0);
table uses/2;
rule r uses(K, V) :- config(K, V).
`)
	obs := &recordingObserver{}
	e := New(p, obs)
	e.ScheduleInsert("m", NewTuple("config", Str("reducers"), Int(4)), 0)
	e.ScheduleInsert("m", NewTuple("config", Str("reducers"), Int(2)), 10)
	e.ScheduleInsert("m", NewTuple("config", Str("mappers"), Int(8)), 11)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	live := e.LiveTuples("m", "config")
	if len(live) != 2 {
		t.Fatalf("live config = %v, want 2 (reducers replaced, mappers added)", live)
	}
	if e.Exists("m", NewTuple("config", Str("reducers"), Int(4)), e.Now()) {
		t.Error("old value must be replaced")
	}
	if !e.Exists("m", NewTuple("config", Str("reducers"), Int(2)), e.Now()) {
		t.Error("new value must be live")
	}
	// Derived state follows the replacement.
	if e.Exists("m", NewTuple("uses", Str("reducers"), Int(4)), e.Now()) {
		t.Error("derived tuple from old config must be underived")
	}
	if !e.Exists("m", NewTuple("uses", Str("reducers"), Int(2)), e.Now()) {
		t.Error("derived tuple from new config must exist")
	}
	// Temporal history preserved.
	if !e.Exists("m", NewTuple("config", Str("reducers"), Int(4)), Stamp{T: 5, Seq: 1 << 60}) {
		t.Error("old value must remain visible at historic times")
	}
}

func TestKeyedReinsertSameTupleIsSupport(t *testing.T) {
	p := MustParse(`table config/2 base mutable key(0);`)
	e := New(p, nil)
	tup := NewTuple("config", Str("k"), Int(1))
	e.ScheduleInsert("m", tup, 0)
	e.ScheduleInsert("m", tup, 5) // identical tuple: extra support, no replacement
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(e.History("m", tup)) != 1 {
		t.Error("identical reinsert must not cycle the tuple")
	}
}

func TestTuplesAt(t *testing.T) {
	p := MustParse(`table a/1 base mutable;`)
	e := New(p, nil)
	e.ScheduleInsert("n", NewTuple("a", Int(1)), 0)
	e.ScheduleInsert("n", NewTuple("a", Int(2)), 10)
	e.ScheduleDelete("n", NewTuple("a", Int(1)), 20)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	at := func(tick int64) int {
		return len(e.TuplesAt("n", "a", Stamp{T: tick, Seq: 1 << 60}))
	}
	if at(5) != 1 {
		t.Errorf("tuples at t=5: %d, want 1", at(5))
	}
	if at(15) != 2 {
		t.Errorf("tuples at t=15: %d, want 2", at(15))
	}
	if at(25) != 1 {
		t.Errorf("tuples at t=25: %d, want 1", at(25))
	}
	if got := e.TuplesAt("nope", "a", Stamp{}); got != nil {
		t.Error("unknown node must return nil")
	}
	if got := e.TuplesAt("n", "nope", Stamp{}); got != nil {
		t.Error("unknown table must return nil")
	}
}

func TestParseKeyDecl(t *testing.T) {
	p := MustParse(`table t/3 base key(0, 2);`)
	d := p.Decl("t")
	if len(d.Key) != 2 || d.Key[0] != 0 || d.Key[1] != 2 {
		t.Errorf("Key = %v", d.Key)
	}
	if _, err := Parse(`table t/2 base key(5);`); err == nil {
		t.Error("out-of-range key index must fail")
	}
	if _, err := Parse(`table t/2 base key(x);`); err == nil {
		t.Error("non-numeric key index must fail")
	}
	// Rendering round trip.
	if _, err := Parse(p.String()); err != nil {
		t.Errorf("rendered keyed decl does not re-parse: %v\n%s", err, p.String())
	}
}

func TestAggregateRuleString(t *testing.T) {
	p := MustParse(wcProgram)
	s := p.Rule("wc").String()
	if want := "N := count()"; !containsStr(s, want) {
		t.Errorf("rule rendering %q missing %q", s, want)
	}
	if _, err := Parse(`table kv/2 event base;
table wordcount/2;
` + p.Rule("wc").String()); err != nil {
		t.Errorf("rendered aggregate rule does not re-parse: %v", err)
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}
