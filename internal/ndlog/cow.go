package ndlog

// Copy-on-write forks.
//
// Counterfactual replay forks a cached prefix engine once per candidate
// trial, and the trial's suffix touches only a handful of tuples. A deep
// Fork copies every table, row, support list, interval history, and index
// bucket — O(state) work per trial. The CoW scheme makes fork cost
// proportional to what the trial actually changes:
//
//   - Seal freezes an engine once it enters the prefix cache: a sealed
//     engine refuses Run and Schedule calls, and every table it holds is
//     marked sealed.
//   - Fork of a sealed CoW engine shares the frozen tables by pointer
//     (fresh per-fork node and table maps, O(#tables)), reads the
//     dependents / aggGroups maps through an overlay chain (cowBase),
//     borrows the immutable map by reference, and copies only the pending
//     work queue.
//   - The first write to a sealed table clones it (writableTable) and
//     swaps the fork's pointer to the clone; the set of swapped pointers
//     is the fork's dirty set. A clone overlays its interval histories on
//     the frozen base (histBase), copying a per-key slice only when that
//     key is written.
//
// Results are byte-identical to deep forks: sealed state is immutable by
// construction (every write site routes through writableTable or an
// overlay helper, and writableTable panics on a sealed engine), reads see
// through the overlays in shadowing order, and execution order is a
// function of the event schedule alone (WithSeqBand), never of how state
// is laid out. The differential suites run with CoW on and off to pin
// this.
//
// Concurrency: sealed state is only ever read after Seal returns, so any
// number of goroutines may fork one sealed engine and run the forks
// concurrently — each fork's writes land in fork-private clones.

// WithCopyOnWriteForks enables or disables copy-on-write Fork for sealed
// engines (default on). With it off, Fork always deep-copies. Results are
// byte-identical either way; the switch exists as the ablation arm of the
// fork differential suites.
func WithCopyOnWriteForks(on bool) Option {
	return func(e *Engine) { e.cow = on }
}

// Seal freezes the engine: Run, RunUntil, ScheduleInsert, and
// ScheduleDelete are refused from now on, and every table is marked
// sealed so forks clone it on first write. Replay sessions seal an engine
// when it enters the prefix cache; cache entries are only ever forked.
// Sealing is idempotent, and safe while forks of earlier sealed engines
// run concurrently: only tables private to this engine are written.
func (e *Engine) Seal() {
	if e.sealed {
		return
	}
	e.sealed = true
	for _, n := range e.nodes {
		for _, tb := range n.tables {
			if !tb.sealed {
				// Engine-private table: safe to restructure before it
				// freezes (already-sealed tables are shared with a
				// frozen base and must not be touched).
				tb.flattenOccs()
				tb.sealed = true
			}
		}
	}
}

// Sealed reports whether Seal froze the engine.
func (e *Engine) Sealed() bool { return e.sealed }

// writableTable returns a table this engine may mutate. Unsealed tables
// (engine-private) pass through; a sealed table — shared with the frozen
// engine a CoW fork was taken from — is cloned on first write and the
// fork's pointer swapped to the clone. Writing to a sealed engine itself
// is a bug by construction (sealed engines refuse Run), so it panics
// rather than corrupt forks sharing the state.
func (e *Engine) writableTable(n *node, tb *table) *table {
	if !tb.sealed {
		return tb
	}
	if e.sealed {
		panic("ndlog: write to sealed engine table " + tb.decl.Name)
	}
	ft := forkTable(tb, true)
	n.tables[tb.decl.Name] = ft
	return ft
}

// histOf returns the effective interval history of a key, walking the
// copy-on-write chain. The returned slice may belong to a frozen base and
// must not be mutated.
func (tb *table) histOf(key string) []Interval {
	for t := tb; t != nil; t = t.histBase {
		if ivs, ok := t.hist[key]; ok {
			return ivs
		}
	}
	return nil
}

// histAppend appends an interval to a key's history, copying the
// effective base history into this table on the key's first local write.
func (tb *table) histAppend(key string, iv Interval) {
	ivs, ok := tb.hist[key]
	if !ok && tb.histBase != nil {
		if base := tb.histBase.histOf(key); len(base) > 0 {
			ivs = make([]Interval, len(base), len(base)+1)
			copy(ivs, base)
		}
	}
	tb.hist[key] = append(ivs, iv)
}

// histCloseLast closes a key's trailing open interval at st, copying the
// effective history first if it is still owned by a frozen base.
func (tb *table) histCloseLast(key string, st Stamp) {
	ivs, ok := tb.hist[key]
	if !ok && tb.histBase != nil {
		base := tb.histBase.histOf(key)
		if len(base) == 0 {
			return
		}
		ivs = append([]Interval(nil), base...)
	}
	if len(ivs) > 0 && ivs[len(ivs)-1].Open {
		ivs[len(ivs)-1].To = st
		ivs[len(ivs)-1].Open = false
		tb.hist[key] = ivs
	}
}

// forEachHist visits every key's effective interval history exactly once,
// chain-local entries shadowing frozen-base ones.
func (tb *table) forEachHist(fn func(key string, ivs []Interval)) {
	if tb.histBase == nil {
		for k, ivs := range tb.hist {
			fn(k, ivs)
		}
		return
	}
	seen := map[string]bool{}
	for t := tb; t != nil; t = t.histBase {
		for k, ivs := range t.hist {
			if seen[k] {
				continue
			}
			seen[k] = true
			fn(k, ivs)
		}
	}
}

// depsOf returns the effective dependent list for a body-row ref, walking
// the frozen-base chain. Stored entries are never empty, so nil means the
// ref has no dependents (absent everywhere, or tombstoned by deleteDeps).
// The returned slice may be owned by a frozen base; do not mutate it.
func (e *Engine) depsOf(ref string) []dependentRef {
	for en := e; en != nil; en = en.cowBase {
		if deps, ok := en.dependents[ref]; ok {
			return deps
		}
	}
	return nil
}

// deleteDeps removes a ref's dependent list: deleted outright at a chain
// root, tombstoned (stored nil) in a CoW fork so the frozen base's entry
// stays shadowed.
func (e *Engine) deleteDeps(ref string) {
	if e.cowBase != nil {
		e.dependents[ref] = nil
	} else {
		delete(e.dependents, ref)
	}
}

// forEachDependent visits every ref's effective dependent list exactly
// once, skipping tombstones; used to materialize the overlay on deep
// forks.
func (e *Engine) forEachDependent(fn func(ref string, deps []dependentRef)) {
	if e.cowBase == nil {
		for ref, deps := range e.dependents {
			fn(ref, deps)
		}
		return
	}
	seen := map[string]bool{}
	for en := e; en != nil; en = en.cowBase {
		for ref, deps := range en.dependents {
			if seen[ref] {
				continue
			}
			seen[ref] = true
			if deps != nil {
				fn(ref, deps)
			}
		}
	}
}

// aggGroupFor returns this engine's mutable aggregate group for a key,
// copying the frozen base's group state on first access (the state is a
// few scalars) or creating a fresh group.
func (e *Engine) aggGroupFor(gk string) *aggGroup {
	if g, ok := e.aggGroups[gk]; ok {
		return g
	}
	for en := e.cowBase; en != nil; en = en.cowBase {
		if g, ok := en.aggGroups[gk]; ok {
			cp := *g
			e.aggGroups[gk] = &cp
			return &cp
		}
	}
	g := &aggGroup{}
	e.aggGroups[gk] = g
	return g
}

// forEachAggGroup visits every group's effective state exactly once.
func (e *Engine) forEachAggGroup(fn func(gk string, g *aggGroup)) {
	if e.cowBase == nil {
		for gk, g := range e.aggGroups {
			fn(gk, g)
		}
		return
	}
	seen := map[string]bool{}
	for en := e; en != nil; en = en.cowBase {
		for gk, g := range en.aggGroups {
			if seen[gk] {
				continue
			}
			seen[gk] = true
			fn(gk, g)
		}
	}
}
