package ndlog

// Static analysis of NDlog programs ("shift errors left"): every check
// that can run before a single event is simulated lives here. The
// analyses mirror the static safety and stratification checks RapidNet
// performs before executing an NDlog program, plus repo-specific ones
// (location well-formedness, kind inference across predicate uses).
//
// AnalyzeProgram reports positioned diagnostics; Error-severity
// diagnostics make a program unrunnable (Engine.Run refuses it, Parse
// rejects it via Rule.Validate), Warning-severity ones are surfaced by
// `diffprov vet` and Engine.AnalysisDiags. doc/analysis.md documents
// every code.

import (
	"fmt"
	"math/bits"
	"strings"
)

// AnalyzeProgram statically checks a whole program and returns its
// diagnostics sorted by position. It never mutates the program.
//
// Checks: rule safety / range restriction (CodeUnsafe), undefined
// predicates (CodeUndefined), arity mismatches (CodeArity), unknown or
// misused builtins (CodeBuiltin), location-specifier well-formedness
// (CodeLocation, CodeImplicitLoc), counting-rule restrictions
// (CodeAggregate), stratifiable aggregation (CodeStratify), negated
// atoms (CodeNegation), unused and underived predicates
// (CodeUnusedTable, CodeUnderivedTable), column kind conflicts
// (CodeTypeConflict), duplicated rule bodies (CodeShadowedRule), and the
// dependency-graph family of slice.go (CodeCartesianJoin,
// CodeUnreachable, CodeNegationCycle, CodeAggOverAgg).
func AnalyzeProgram(p *Program) []Diag {
	var ds []Diag
	for _, r := range p.rules {
		ds = append(ds, analyzeRule(p, r)...)
		ds = append(ds, analyzeAggregate(p, r)...)
	}
	ds = append(ds, analyzeUsage(p)...)
	ds = append(ds, analyzeStratification(p)...)
	ds = append(ds, analyzeTypes(p)...)
	ds = append(ds, analyzeShadowing(p)...)
	ds = append(ds, analyzeDeps(p)...)
	sortDiags(ds)
	return ds
}

// Analyze returns the program's diagnostics, computing them once and
// caching the result (engines re-created over the same program — replay
// sessions do this per replay — must not re-pay the analysis). Rules
// added after the first call are not re-analyzed here; call
// AnalyzeProgram directly for a fresh pass.
func (p *Program) Analyze() []Diag {
	p.analyzeOnce.Do(func() { p.analyzed = AnalyzeProgram(p) })
	return p.analyzed
}

// analyzeRule checks one rule: safety (every variable consumed by the
// head, constraints, assignments, argmax, inverses, or locations must be
// bound by a positive body atom or a prior assignment), predicate
// existence and arity, builtin existence and arity, and location
// well-formedness. Diagnostics are emitted in the order the older
// Rule.Validate reported them, so firstError over the result preserves
// its behavior.
func analyzeRule(p *Program, r *Rule) []Diag {
	var ds []Diag
	report := func(pos Pos, sev Severity, code, format string, args ...interface{}) {
		if !pos.IsValid() {
			pos = r.Pos
		}
		ds = append(ds, Diag{Pos: pos, Severity: sev, Code: code, Msg: fmt.Sprintf(format, args...)})
	}

	if len(r.Body) == 0 {
		report(r.Pos, Error, CodeEmptyBody, "rule %s has an empty body", r.Name)
	}
	bound := map[string]bool{}
	for i := range r.Body {
		b := &r.Body[i]
		// Negated atoms bind nothing: the rule fires when NO matching
		// tuple exists, so there is no witness to take values from.
		if !b.Negated {
			if b.Loc != nil {
				if v, ok := b.Loc.(Var); ok {
					bound[string(v)] = true
				}
			}
			for _, arg := range b.Args {
				if v, ok := arg.(Var); ok {
					bound[string(v)] = true
				}
			}
		}
		if d := p.Decl(b.Table); d == nil {
			report(b.Pos, Error, CodeUndefined, "rule %s: unknown table %s", r.Name, b.Table)
		} else if len(b.Args) != d.Arity {
			report(b.Pos, Error, CodeArity, "rule %s: %s has arity %d, used with %d args", r.Name, b.Table, d.Arity, len(b.Args))
		}
		if b.Negated {
			report(b.Pos, Error, CodeNegation, "rule %s: negated atom %s is analyzed but not executable by this engine", r.Name, *b)
		}
	}
	if r.CountVar != "" {
		bound[r.CountVar] = true
	}
	for _, a := range r.Assigns {
		for _, v := range FreeVars(a.Expr) {
			if !bound[v] {
				report(r.Pos, Error, CodeUnsafe, "rule %s: assignment %s uses unbound variable %s", r.Name, a, v)
			}
		}
		bound[a.Var] = true
	}
	for i := range r.Body {
		b := &r.Body[i]
		if !b.Negated {
			continue
		}
		vars := append([]Expr(nil), b.Args...)
		if b.Loc != nil {
			vars = append(vars, b.Loc)
		}
		for _, arg := range vars {
			for _, v := range FreeVars(arg) {
				if !bound[v] {
					report(b.Pos, Error, CodeUnsafe, "rule %s: negated atom %s uses variable %s not bound by a positive atom", r.Name, *b, v)
				}
			}
		}
	}
	for _, w := range r.Where {
		for _, v := range FreeVars(w) {
			if !bound[v] {
				report(r.Pos, Error, CodeUnsafe, "rule %s: constraint %s uses unbound variable %s", r.Name, w, v)
			}
		}
	}
	if d := p.Decl(r.Head.Table); d == nil {
		report(r.Head.Pos, Error, CodeUndefined, "rule %s: unknown head table %s", r.Name, r.Head.Table)
	} else if len(r.Head.Args) != d.Arity {
		report(r.Head.Pos, Error, CodeArity, "rule %s: head %s has arity %d, used with %d args", r.Name, r.Head.Table, d.Arity, len(r.Head.Args))
	}
	for _, arg := range r.Head.Args {
		for _, v := range FreeVars(arg) {
			if !bound[v] {
				report(r.Head.Pos, Error, CodeUnsafe, "rule %s: head uses unbound variable %s", r.Name, v)
			}
		}
	}
	if r.Head.Loc != nil {
		for _, v := range FreeVars(r.Head.Loc) {
			if !bound[v] {
				report(r.Head.Pos, Error, CodeUnsafe, "rule %s: head location uses unbound variable %s", r.Name, v)
			}
		}
	}
	if r.ArgMax != "" && !bound[r.ArgMax] {
		report(r.Pos, Error, CodeUnsafe, "rule %s: argmax variable %s is unbound", r.Name, r.ArgMax)
	}
	for _, inv := range r.Inverses {
		for _, v := range FreeVars(inv.Expr) {
			// Inverse assignments run during counterfactual reasoning with
			// the head bound; head variables and body-bound variables are
			// both legal inputs there — anything else can never resolve.
			if !bound[v] && !headBinds(r, v) {
				report(r.Pos, Error, CodeUnsafe, "rule %s: inverse %s uses variable %s bound by neither body nor head", r.Name, inv, v)
			}
		}
	}

	// Location well-formedness and builtin checks come after the safety
	// checks so that firstError keeps reporting what Validate always did.
	analyzeLoc(r, &r.Head, "head", report)
	for i := range r.Body {
		analyzeLoc(r, &r.Body[i], "body", report)
	}
	eachExpr(r, func(pos Pos, e Expr) {
		walkCalls(e, func(c Call) {
			if !HasBuiltin(c.Fn) {
				report(pos, Error, CodeBuiltin, "rule %s: unknown function %s", r.Name, c.Fn)
				return
			}
			if ar, ok := BuiltinArity(c.Fn); ok && ar >= 0 && ar != len(c.Args) {
				report(pos, Error, CodeBuiltin, "rule %s: %s expects %d args, got %d", r.Name, c.Fn, ar, len(c.Args))
			}
		})
	})
	if r.Head.Loc == nil {
		for i := range r.Body {
			if r.Body[i].Loc != nil {
				report(r.Head.Pos, Warning, CodeImplicitLoc,
					"rule %s: head %s has no @loc specifier; the tuple is delivered to the evaluating node", r.Name, r.Head.Table)
				break
			}
		}
	}
	return ds
}

// headBinds reports whether the variable occurs directly as a head
// argument or head location of the rule.
func headBinds(r *Rule, v string) bool {
	if r.Head.Loc != nil {
		for _, hv := range FreeVars(r.Head.Loc) {
			if hv == v {
				return true
			}
		}
	}
	for _, arg := range r.Head.Args {
		for _, hv := range FreeVars(arg) {
			if hv == v {
				return true
			}
		}
	}
	return false
}

// analyzeLoc checks a single atom's location specifier: it must be a
// variable, a node-name string constant, or a computed expression (whose
// kind can only be checked at runtime).
func analyzeLoc(r *Rule, a *Atom, what string, report func(Pos, Severity, string, string, ...interface{})) {
	c, ok := a.Loc.(Const)
	if !ok {
		return
	}
	if _, isStr := c.V.(Str); !isStr {
		report(a.Pos, Error, CodeLocation,
			"rule %s: %s atom %s has location @%s of kind %s; locations must be node names", r.Name, what, a.Table, c.V, c.V.Kind())
	}
}

// eachExpr visits every expression of a rule with the position it is
// anchored to (the enclosing atom for atom arguments, the rule for
// constraints, assignments, and inverses).
func eachExpr(r *Rule, fn func(Pos, Expr)) {
	visitAtom := func(a *Atom) {
		if a.Loc != nil {
			fn(a.Pos, a.Loc)
		}
		for _, arg := range a.Args {
			fn(a.Pos, arg)
		}
	}
	visitAtom(&r.Head)
	for i := range r.Body {
		visitAtom(&r.Body[i])
	}
	for _, w := range r.Where {
		fn(r.Pos, w)
	}
	for _, a := range r.Assigns {
		fn(r.Pos, a.Expr)
	}
	for _, inv := range r.Inverses {
		fn(r.Pos, inv.Expr)
	}
}

// walkCalls invokes fn for every builtin call nested in the expression.
func walkCalls(e Expr, fn func(Call)) {
	switch x := e.(type) {
	case Bin:
		walkCalls(x.L, fn)
		walkCalls(x.R, fn)
	case Call:
		fn(x)
		for _, a := range x.Args {
			walkCalls(a, fn)
		}
	}
}

// analyzeUsage reports tables that no rule ever references
// (CodeUnusedTable) and non-base tables that rules read but nothing
// derives (CodeUnderivedTable) — joins over such a table are always
// empty. Programs with no rules are pure state stores and are skipped.
func analyzeUsage(p *Program) []Diag {
	if len(p.rules) == 0 {
		return nil
	}
	used := map[string]bool{}
	derived := map[string]bool{}
	readAt := map[string]Pos{}
	for _, r := range p.rules {
		used[r.Head.Table] = true
		derived[r.Head.Table] = true
		for i := range r.Body {
			b := &r.Body[i]
			used[b.Table] = true
			if _, ok := readAt[b.Table]; !ok {
				readAt[b.Table] = b.Pos
			}
		}
	}
	var ds []Diag
	for _, name := range p.declOrder {
		d := p.decls[name]
		if !used[name] {
			ds = append(ds, Diag{Pos: d.Pos, Severity: Warning, Code: CodeUnusedTable,
				Msg: fmt.Sprintf("table %s is declared but never used by any rule", name)})
			continue
		}
		if pos, ok := readAt[name]; ok && !d.Base && !derived[name] {
			ds = append(ds, Diag{Pos: pos, Severity: Warning, Code: CodeUnderivedTable,
				Msg: fmt.Sprintf("table %s is read by rules but never derived and is not a base table; joins over it are always empty", name)})
		}
	}
	return ds
}

// analyzeStratification rejects aggregation through recursion: a
// counting rule whose own output can (transitively) derive the event
// table it counts would have to retract and re-derive its aggregate
// forever. The check runs over the table dependency graph (body table ->
// head table per rule). Negation — the other non-monotonic construct,
// parsed but not executable (CodeNegation) — gets the analogous cycle
// check in analyzeDeps (CodeNegationCycle).
func analyzeStratification(p *Program) []Diag {
	succ := map[string][]string{}
	for _, r := range p.rules {
		for i := range r.Body {
			succ[r.Body[i].Table] = append(succ[r.Body[i].Table], r.Head.Table)
		}
	}
	var ds []Diag
	for _, r := range p.rules {
		if r.CountVar == "" || len(r.Body) != 1 {
			continue
		}
		counted := r.Body[0].Table
		if reaches(succ, r.Head.Table, counted) {
			ds = append(ds, Diag{Pos: r.Pos, Severity: Error, Code: CodeStratify,
				Msg: fmt.Sprintf("rule %s: aggregation is not stratified: counted table %s is derivable from the aggregate output %s", r.Name, counted, r.Head.Table)})
		}
	}
	return ds
}

// reaches reports whether target is reachable from start in the edge map
// (including via a direct self-loop, but start == target alone does not
// count unless an edge path exists).
func reaches(succ map[string][]string, start, target string) bool {
	seen := map[string]bool{}
	stack := append([]string(nil), succ[start]...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == target {
			return true
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		stack = append(stack, succ[n]...)
	}
	return false
}

// analyzeShadowing reports rules whose head and body duplicate an
// earlier rule verbatim: both fire identically, doubling derivations
// (and provenance) silently.
func analyzeShadowing(p *Program) []Diag {
	var ds []Diag
	seen := map[string]*Rule{}
	for _, r := range p.rules {
		sig := strings.TrimPrefix(r.String(), "rule "+r.Name+" ")
		if prev, ok := seen[sig]; ok {
			ds = append(ds, Diag{Pos: r.Pos, Severity: Warning, Code: CodeShadowedRule,
				Msg: fmt.Sprintf("rule %s duplicates the head and body of rule %s", r.Name, prev.Name)})
			continue
		}
		seen[sig] = r
	}
	return ds
}

// colRef identifies one column of a declared table.
type colRef struct {
	table string
	col   int
}

// analyzeTypes infers the value kind of each table column from strong
// evidence — literal constants in atom arguments, builtin signatures
// (SetBuiltinKinds), comparisons against literals, string concatenation,
// count() variables, and location positions (node names are strings) —
// and warns when a column is used with conflicting kinds across the
// program's rules.
func analyzeTypes(p *Program) []Diag {
	kinds := map[colRef]uint16{}
	for _, r := range p.rules {
		vk := ruleVarKinds(r)
		record := func(a *Atom) {
			decl := p.Decl(a.Table)
			if decl == nil || len(a.Args) != decl.Arity {
				return
			}
			for i, arg := range a.Args {
				ref := colRef{table: a.Table, col: i}
				switch x := arg.(type) {
				case Const:
					kinds[ref] |= kindBit(x.V.Kind())
				case Var:
					kinds[ref] |= vk[string(x)]
				}
			}
		}
		record(&r.Head)
		for i := range r.Body {
			record(&r.Body[i])
		}
	}
	var ds []Diag
	for _, name := range p.declOrder {
		d := p.decls[name]
		for col := 0; col < d.Arity; col++ {
			mask := kinds[colRef{table: name, col: col}]
			if bits.OnesCount16(mask) > 1 {
				ds = append(ds, Diag{Pos: d.Pos, Severity: Warning, Code: CodeTypeConflict,
					Msg: fmt.Sprintf("column %d of %s is used with conflicting kinds: %s", col, name, maskKinds(mask))})
			}
		}
	}
	return ds
}

// ruleVarKinds infers kind constraints for the variables of one rule.
func ruleVarKinds(r *Rule) map[string]uint16 {
	vk := map[string]uint16{}
	add := func(v string, k Kind) {
		if k != AnyKind {
			vk[v] |= kindBit(k)
		}
	}
	if r.CountVar != "" {
		add(r.CountVar, KindInt)
	}
	locVar := func(a *Atom) {
		if v, ok := a.Loc.(Var); ok {
			add(string(v), KindStr)
		}
	}
	locVar(&r.Head)
	for i := range r.Body {
		locVar(&r.Body[i])
	}
	constrain := func(e Expr) {
		walkBins(e, func(b Bin) {
			switch b.Op {
			case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
				if v, ok := b.L.(Var); ok {
					if c, ok := b.R.(Const); ok {
						add(string(v), c.V.Kind())
					}
				}
				if v, ok := b.R.(Var); ok {
					if c, ok := b.L.(Const); ok {
						add(string(v), c.V.Kind())
					}
				}
			case OpConcat:
				if v, ok := b.L.(Var); ok {
					add(string(v), KindStr)
				}
				if v, ok := b.R.(Var); ok {
					add(string(v), KindStr)
				}
			}
		})
		walkCalls(e, func(c Call) {
			args, _, ok := BuiltinKinds(c.Fn)
			if !ok || len(args) != len(c.Args) {
				return
			}
			for i, a := range c.Args {
				if v, ok := a.(Var); ok {
					add(string(v), args[i])
				}
			}
		})
	}
	eachExpr(r, func(_ Pos, e Expr) { constrain(e) })
	for _, a := range r.Assigns {
		switch x := a.Expr.(type) {
		case Const:
			add(a.Var, x.V.Kind())
		case Call:
			if _, res, ok := BuiltinKinds(x.Fn); ok {
				add(a.Var, res)
			}
		}
	}
	return vk
}

// walkBins invokes fn for every binary operation nested in the expression.
func walkBins(e Expr, fn func(Bin)) {
	switch x := e.(type) {
	case Bin:
		fn(x)
		walkBins(x.L, fn)
		walkBins(x.R, fn)
	case Call:
		for _, a := range x.Args {
			walkBins(a, fn)
		}
	}
}

func kindBit(k Kind) uint16 {
	if k == AnyKind || k > 15 {
		return 0
	}
	return 1 << k
}

// maskKinds renders a kind bitmask as a sorted list of kind names.
func maskKinds(mask uint16) string {
	var names []string
	for k := Kind(0); k <= 15; k++ {
		if mask&(1<<k) != 0 {
			names = append(names, k.String())
		}
	}
	return strings.Join(names, ", ")
}
