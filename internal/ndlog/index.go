package ndlog

import (
	"sort"
	"strconv"
)

// This file implements secondary hash indexes for rule-body joins.
//
// At engine construction the program is analyzed once: for every rule and
// every choice of delta atom (the body atom bound to the triggering
// tuple), the argument positions of each remaining body atom that are
// guaranteed bound when that atom is evaluated — constants, variables of
// the delta atom, and variables of earlier body atoms — become that
// atom's index key. joinRest then probes a hash bucket instead of
// scanning the table's appearance-ordered rows.
//
// Buckets mirror tb.order exactly: rows are appended on appearance (so a
// bucket is in appearance order, preserving the engine's deterministic
// result order) and are never removed on retraction — the probe applies
// the same liveness/temporal filter as the scan (rw.dead ||
// st.Before(rw.appearedAt)), and temporal queries (TuplesMatchingAt)
// need the dead rows for as-of lookups. A tuple that reappears after
// dying is a fresh row and is appended again, exactly as in tb.order.
//
// Key encoding reuses Value.appendKey — the same injective encoding
// Tuple.Key is built from — so two index keys are equal iff the indexed
// values are equal under Go ==, which is the equality quickMatch and
// unifyAtom use (pinned by TestQuickMatchAgreesWithUnify).

// indexSpec identifies one secondary index: a sorted set of column
// positions plus its canonical signature (e.g. "0,2").
type indexSpec struct {
	cols []int
	sig  string
}

func sigOf(cols []int) string {
	b := make([]byte, 0, 8)
	for i, c := range cols {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(c), 10)
	}
	return string(b)
}

// tableIndex is one secondary hash index over a table's rows.
type tableIndex struct {
	spec    *indexSpec
	buckets map[string][]*row
}

// rowKey encodes the indexed columns of a stored tuple.
func (ix *tableIndex) rowKey(t Tuple) string {
	kb := getKeyBuf()
	b := kb.b[:0]
	for i, c := range ix.spec.cols {
		if i > 0 {
			b = append(b, '|')
		}
		b = t.Args[c].appendKey(b)
	}
	s := string(b)
	putKeyBuf(kb, b)
	return s
}

// insert appends a freshly appeared row to its bucket.
func (ix *tableIndex) insert(r *row) {
	k := ix.rowKey(r.tuple)
	ix.buckets[k] = append(ix.buckets[k], r)
}

// planKey addresses the join plan of one (rule, delta atom) pair.
type planKey struct {
	rule  string
	delta int
}

// buildJoinPlans analyzes the program: for every (rule, delta atom) it
// computes, per remaining body atom, the index the atom will probe (nil
// when no argument position is statically bound — those atoms fall back
// to scanning). It also registers point-lookup specs for primary keys
// and aggregate group columns, which the DiffProv reasoning engine
// queries through TuplesMatchingAt.
func buildJoinPlans(prog *Program) (map[planKey][]*indexSpec, map[string][]*indexSpec) {
	plans := map[planKey][]*indexSpec{}
	byTable := map[string][]*indexSpec{}
	interned := map[string]map[string]*indexSpec{} // table -> sig -> spec

	intern := func(table string, cols []int) *indexSpec {
		d := prog.Decl(table)
		if d == nil || d.Event {
			return nil // undeclared or unstored: nothing to index
		}
		clean := cols[:0:0]
		for _, c := range cols {
			if c >= 0 && c < d.Arity {
				clean = append(clean, c)
			}
		}
		if len(clean) == 0 {
			return nil
		}
		sort.Ints(clean)
		uniq := clean[:1]
		for _, c := range clean[1:] {
			if c != uniq[len(uniq)-1] {
				uniq = append(uniq, c)
			}
		}
		sig := sigOf(uniq)
		if interned[table] == nil {
			interned[table] = map[string]*indexSpec{}
		}
		if s, ok := interned[table][sig]; ok {
			return s
		}
		s := &indexSpec{cols: uniq, sig: sig}
		interned[table][sig] = s
		byTable[table] = append(byTable[table], s)
		return s
	}

	for _, r := range prog.Rules() {
		for delta := range r.Body {
			bound := map[string]bool{}
			collectAtomVars(r.Body[delta], bound)
			perAtom := make([]*indexSpec, len(r.Body))
			for next := range r.Body {
				if next == delta {
					continue
				}
				atom := r.Body[next]
				var cols []int
				for i, arg := range atom.Args {
					switch a := arg.(type) {
					case Const:
						cols = append(cols, i)
					case Var:
						if bound[string(a)] {
							cols = append(cols, i)
						}
					}
				}
				if len(cols) > 0 {
					perAtom[next] = intern(atom.Table, cols)
				}
				// This atom's variables are bound for the atoms after it
				// (its location variable too: either resolved from the
				// environment or bound by the per-node loop).
				collectAtomVars(atom, bound)
			}
			plans[planKey{rule: r.Name, delta: delta}] = perAtom
		}
	}

	// Primary keys: FINDSEED repairs keyed configuration tuples by
	// looking up rows whose key columns match (solve.go), and the
	// engine's own keyed-replacement path benefits too.
	for _, name := range prog.Tables() {
		if d := prog.Decl(name); len(d.Key) > 0 {
			intern(name, append([]int(nil), d.Key...))
		}
	}
	// Aggregate groups: MAKEAPPEAR locates a group's current count tuple
	// by its non-count head columns (align.go).
	for _, r := range prog.Rules() {
		if r.CountVar == "" {
			continue
		}
		var cols []int
		for j, a := range r.Head.Args {
			if v, ok := a.(Var); ok && string(v) == r.CountVar {
				continue
			}
			cols = append(cols, j)
		}
		intern(r.Head.Table, cols)
	}
	return plans, byTable
}

// collectAtomVars adds the atom's variables (arguments and location) to
// the bound set.
func collectAtomVars(a Atom, bound map[string]bool) {
	if v, ok := a.Loc.(Var); ok {
		bound[string(v)] = true
	}
	for _, arg := range a.Args {
		if v, ok := arg.(Var); ok {
			bound[string(v)] = true
		}
	}
}

// planFor returns the index spec body atom next probes when the rule is
// triggered at delta, or nil when the atom has no statically bound
// columns (or indexing is off, or the rule was added after New).
func (e *Engine) planFor(r *Rule, delta, next int) *indexSpec {
	specs := e.plans[planKey{rule: r.Name, delta: delta}]
	if next >= len(specs) {
		return nil
	}
	return specs[next]
}

// probeKey encodes the index key for a probe of atom under env. ok is
// false when a planned variable is unexpectedly unbound — the caller
// falls back to a scan.
func probeKey(atom Atom, spec *indexSpec, env Env) (string, bool) {
	kb := getKeyBuf()
	b := kb.b[:0]
	for i, c := range spec.cols {
		var v Value
		switch a := atom.Args[c].(type) {
		case Const:
			v = a.V
		case Var:
			vv, bound := env[string(a)]
			if !bound {
				putKeyBuf(kb, b)
				return "", false
			}
			v = vv
		default:
			putKeyBuf(kb, b)
			return "", false
		}
		if i > 0 {
			b = append(b, '|')
		}
		b = v.appendKey(b)
	}
	s := string(b)
	putKeyBuf(kb, b)
	return s, true
}

// Match constrains one column in an indexed tuple lookup.
type Match struct {
	Col int
	Val Value
}

// MatchTuple reports whether the tuple satisfies every column constraint.
// An out-of-range column never matches.
func MatchTuple(match []Match, t Tuple) bool {
	for _, m := range match {
		if m.Col < 0 || m.Col >= len(t.Args) || t.Args[m.Col] != m.Val {
			return false
		}
	}
	return true
}

// matchKey encodes the index key of a sorted column-match set.
func matchKey(m []Match) string {
	kb := getKeyBuf()
	b := kb.b[:0]
	for i, c := range m {
		if i > 0 {
			b = append(b, '|')
		}
		b = c.Val.appendKey(b)
	}
	s := string(b)
	putKeyBuf(kb, b)
	return s
}

func matchSig(m []Match) string {
	b := make([]byte, 0, 8)
	for i, c := range m {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(c.Col), 10)
	}
	return string(b)
}

// TuplesMatchingAt returns the tuples of a table that existed on the node
// at the given stamp and whose columns satisfy every match constraint, in
// appearance order. When a secondary index covers exactly the matched
// columns the lookup probes its hash bucket; otherwise it degrades to the
// same filtered scan TuplesAt performs. The method never mutates the
// engine, so concurrent diagnoses may query a shared replayed engine.
func (e *Engine) TuplesMatchingAt(nodeName, tableName string, at Stamp, match []Match) []Tuple {
	n := e.nodes[nodeName]
	if n == nil {
		return nil
	}
	tb := n.tables[tableName]
	if tb == nil {
		return nil
	}
	rows := tb.order
	indexed := false
	if e.indexing && len(match) > 0 {
		m := append([]Match(nil), match...)
		sort.Slice(m, func(i, j int) bool { return m[i].Col < m[j].Col })
		if ix := tb.indexes[matchSig(m)]; ix != nil {
			rows = ix.buckets[matchKey(m)]
			indexed = true
		}
	}
	var out []Tuple
	for _, r := range rows {
		if at.Before(r.appearedAt) {
			continue
		}
		if r.dead && !at.Before(r.diedAt) {
			continue
		}
		if !indexed && !MatchTuple(match, r.tuple) {
			continue
		}
		out = append(out, r.tuple)
	}
	return out
}
