package ndlog

import (
	"fmt"
	"sort"
	"strings"
)

// Env binds variable names to values during rule evaluation and taint
// formula evaluation.
type Env map[string]Value

// Clone returns a copy of the environment.
func (e Env) Clone() Env {
	c := make(Env, len(e))
	for k, v := range e {
		c[k] = v
	}
	return c
}

// Expr is an expression over tuple fields: a variable, a constant, a binary
// operation, or a call to a registered builtin function. Expressions appear
// in rule heads, constraints, assignments — and double as the taint
// formulas of the DiffProv algorithm (formulas over seed fields).
type Expr interface {
	// Eval evaluates the expression under the environment.
	Eval(env Env) (Value, error)
	// Vars appends the free variables of the expression to dst.
	Vars(dst []string) []string
	// String renders NDlog source syntax.
	String() string
	// Subst substitutes variables with the given expressions, leaving
	// unmapped variables in place; used for taint formula composition.
	Subst(m map[string]Expr) Expr
}

// Var is a variable reference.
type Var string

// Eval implements Expr.
func (v Var) Eval(env Env) (Value, error) {
	val, ok := env[string(v)]
	if !ok {
		return nil, fmt.Errorf("ndlog: unbound variable %s", string(v))
	}
	return val, nil
}

// Vars implements Expr.
func (v Var) Vars(dst []string) []string { return append(dst, string(v)) }

func (v Var) String() string { return string(v) }

// Subst implements Expr.
func (v Var) Subst(m map[string]Expr) Expr {
	if e, ok := m[string(v)]; ok {
		return e
	}
	return v
}

// Const is a literal constant.
type Const struct{ V Value }

// C wraps a Value as a constant expression.
func C(v Value) Const { return Const{V: v} }

// Eval implements Expr.
func (c Const) Eval(Env) (Value, error) { return c.V, nil }

// Vars implements Expr.
func (c Const) Vars(dst []string) []string { return dst }

func (c Const) String() string {
	if s, ok := c.V.(Str); ok {
		return fmt.Sprintf("%q", string(s))
	}
	return c.V.String()
}

// Subst implements Expr.
func (c Const) Subst(map[string]Expr) Expr { return c }

// BinOp enumerates binary operators.
type BinOp uint8

// Binary operators. Arithmetic operators apply to Int (and, where sensible,
// IP); Concat applies to Str; comparison operators yield Bool.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpAnd // bitwise and
	OpOr  // bitwise or
	OpXor
	OpShl
	OpShr
	OpConcat
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

var binOpNames = map[BinOp]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpAnd: "&", OpOr: "|", OpXor: "^", OpShl: "<<", OpShr: ">>",
	OpConcat: "++", OpEq: "==", OpNe: "!=", OpLt: "<", OpLe: "<=",
	OpGt: ">", OpGe: ">=",
}

func (op BinOp) String() string {
	if s, ok := binOpNames[op]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Bin is a binary operation.
type Bin struct {
	Op   BinOp
	L, R Expr
}

// B builds a binary expression.
func B(op BinOp, l, r Expr) Bin { return Bin{Op: op, L: l, R: r} }

// Eval implements Expr.
func (b Bin) Eval(env Env) (Value, error) {
	l, err := b.L.Eval(env)
	if err != nil {
		return nil, err
	}
	r, err := b.R.Eval(env)
	if err != nil {
		return nil, err
	}
	return applyBin(b.Op, l, r)
}

func applyBin(op BinOp, l, r Value) (Value, error) {
	switch op {
	case OpEq:
		return Bool(l == r), nil
	case OpNe:
		return Bool(l != r), nil
	case OpLt:
		return Bool(Less(l, r)), nil
	case OpLe:
		return Bool(!Less(r, l)), nil
	case OpGt:
		return Bool(Less(r, l)), nil
	case OpGe:
		return Bool(!Less(l, r)), nil
	case OpConcat:
		ls, lok := l.(Str)
		rs, rok := r.(Str)
		if !lok || !rok {
			return nil, fmt.Errorf("ndlog: ++ requires strings, got %s, %s", l.Kind(), r.Kind())
		}
		return ls + rs, nil
	}
	li, lok := asInt(l)
	ri, rok := asInt(r)
	if !lok || !rok {
		return nil, fmt.Errorf("ndlog: %s requires numeric operands, got %s, %s", op, l.Kind(), r.Kind())
	}
	var out int64
	switch op {
	case OpAdd:
		out = li + ri
	case OpSub:
		out = li - ri
	case OpMul:
		out = li * ri
	case OpDiv:
		if ri == 0 {
			return nil, fmt.Errorf("ndlog: division by zero")
		}
		out = li / ri
	case OpMod:
		if ri == 0 {
			return nil, fmt.Errorf("ndlog: modulo by zero")
		}
		out = li % ri
		if out < 0 {
			out += ri
		}
	case OpAnd:
		out = li & ri
	case OpOr:
		out = li | ri
	case OpXor:
		out = li ^ ri
	case OpShl:
		out = li << uint(ri&63)
	case OpShr:
		out = int64(uint64(li) >> uint(ri&63))
	default:
		return nil, fmt.Errorf("ndlog: unknown operator %s", op)
	}
	// Preserve IP-ness through masking-style arithmetic when the left
	// operand is an address.
	if l.Kind() == KindIP && (op == OpAnd || op == OpOr || op == OpXor) {
		return IP(uint32(out)), nil
	}
	return Int(out), nil
}

func asInt(v Value) (int64, bool) {
	switch x := v.(type) {
	case Int:
		return int64(x), true
	case IP:
		return int64(x), true
	case ID:
		return int64(x), true
	case Bool:
		if x {
			return 1, true
		}
		return 0, true
	default:
		return 0, false
	}
}

// Vars implements Expr.
func (b Bin) Vars(dst []string) []string { return b.R.Vars(b.L.Vars(dst)) }

func (b Bin) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// Subst implements Expr.
func (b Bin) Subst(m map[string]Expr) Expr {
	return Bin{Op: b.Op, L: b.L.Subst(m), R: b.R.Subst(m)}
}

// Call invokes a registered builtin function.
type Call struct {
	Fn   string
	Args []Expr
}

// Eval implements Expr.
func (c Call) Eval(env Env) (Value, error) {
	fn, ok := builtins[c.Fn]
	if !ok {
		return nil, fmt.Errorf("ndlog: unknown function %s", c.Fn)
	}
	if fn.arity >= 0 && len(c.Args) != fn.arity {
		return nil, fmt.Errorf("ndlog: %s expects %d args, got %d", c.Fn, fn.arity, len(c.Args))
	}
	args := make([]Value, len(c.Args))
	for i, a := range c.Args {
		v, err := a.Eval(env)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return fn.eval(args)
}

// Vars implements Expr.
func (c Call) Vars(dst []string) []string {
	for _, a := range c.Args {
		dst = a.Vars(dst)
	}
	return dst
}

func (c Call) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", c.Fn, strings.Join(parts, ", "))
}

// Subst implements Expr.
func (c Call) Subst(m map[string]Expr) Expr {
	args := make([]Expr, len(c.Args))
	for i, a := range c.Args {
		args[i] = a.Subst(m)
	}
	return Call{Fn: c.Fn, Args: args}
}

// FreeVars returns the sorted, deduplicated free variables of an expression.
func FreeVars(e Expr) []string {
	vs := e.Vars(nil)
	sort.Strings(vs)
	out := vs[:0]
	for i, v := range vs {
		if i == 0 || vs[i-1] != v {
			out = append(out, v)
		}
	}
	return out
}

// EvalBool evaluates a constraint expression, requiring a boolean result.
func EvalBool(e Expr, env Env) (bool, error) {
	v, err := e.Eval(env)
	if err != nil {
		return false, err
	}
	b, ok := v.(Bool)
	if !ok {
		return false, fmt.Errorf("ndlog: constraint %s is not boolean (got %s)", e, v.Kind())
	}
	return bool(b), nil
}
