package ndlog

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind distinguishes token classes produced by the NDlog lexer.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokVar
	tokNumber // integer, IP, or prefix literal text
	tokString // quoted, still includes quotes
	tokHashID // #hex
	tokSym    // punctuation / operators
)

type token struct {
	kind tokKind
	text string
	line int
	col  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// pos returns the token's source position.
func (t token) pos() Pos { return Pos{Line: t.line, Col: t.col} }

type lexer struct {
	src       string
	pos       int
	line      int
	lineStart int // byte offset of the current line's first character
	toks      []token
}

// lex tokenizes NDlog source. Line comments start with //.
func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, tok)
		if tok.kind == tokEOF {
			return l.toks, nil
		}
	}
}

var twoCharSyms = []string{":-", ":=", "==", "!=", "<=", ">=", "<<", ">>", "++"}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
			l.lineStart = l.pos
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto body
		}
	}
	return token{kind: tokEOF, line: l.line, col: l.pos - l.lineStart + 1}, nil

body:
	start := l.pos
	col := start - l.lineStart + 1
	c := l.src[l.pos]

	// Two-character operators.
	if l.pos+1 < len(l.src) {
		two := l.src[l.pos : l.pos+2]
		for _, s := range twoCharSyms {
			if two == s {
				l.pos += 2
				return token{kind: tokSym, text: two, line: l.line, col: col}, nil
			}
		}
	}

	switch {
	case c == '"':
		l.pos++
		for l.pos < len(l.src) {
			if l.src[l.pos] == '\\' {
				l.pos += 2
				continue
			}
			if l.src[l.pos] == '"' {
				l.pos++
				return token{kind: tokString, text: l.src[start:l.pos], line: l.line, col: col}, nil
			}
			if l.src[l.pos] == '\n' {
				break
			}
			l.pos++
		}
		return token{}, &parseError{pos: Pos{Line: l.line, Col: col}, msg: "unterminated string"}

	case c == '#':
		l.pos++
		for l.pos < len(l.src) && isHex(l.src[l.pos]) {
			l.pos++
		}
		if l.pos == start+1 {
			return token{}, &parseError{pos: Pos{Line: l.line, Col: col}, msg: "expected hex digits after #"}
		}
		return token{kind: tokHashID, text: l.src[start:l.pos], line: l.line, col: col}, nil

	case isDigit(c):
		dots := 0
		l.pos++
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if isDigit(ch) {
				l.pos++
				continue
			}
			// A dot continues the number only when followed by a digit
			// (so a rule-terminating "." is not swallowed).
			if ch == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]) {
				dots++
				l.pos += 2
				continue
			}
			// A slash continues an IP into a prefix only after 3 dots.
			if ch == '/' && dots == 3 && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]) {
				l.pos += 2
				continue
			}
			break
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], line: l.line, col: col}, nil

	case isIdentStart(c):
		l.pos++
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		text := l.src[start:l.pos]
		if unicode.IsUpper(rune(text[0])) || text[0] == '_' {
			return token{kind: tokVar, text: text, line: l.line, col: col}, nil
		}
		return token{kind: tokIdent, text: text, line: l.line, col: col}, nil

	case strings.ContainsRune("()@,.;+-*/%&|^<>!=", rune(c)):
		l.pos++
		return token{kind: tokSym, text: string(c), line: l.line, col: col}, nil

	default:
		return token{}, &parseError{pos: Pos{Line: l.line, Col: col}, msg: fmt.Sprintf("unexpected character %q", string(c))}
	}
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isHex(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}
func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }
