package ndlog_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/ndlog"
	"repro/internal/provenance"
)

// sealAndFork seals an engine/recorder pair and takes one fork of it, the
// exact operation at the head of every counterfactual replay.
func sealAndFork(e *ndlog.Engine, rec *provenance.Recorder) (*ndlog.Engine, *provenance.Recorder) {
	rec.Seal()
	e.Seal()
	frec := rec.Fork()
	return e.Fork(frec), frec
}

// TestCoWSealedForkEqualsStraightThrough is the CoW analogue of
// TestForkHalfRunEqualsStraightThrough: for every cut tick, evaluating up
// to the cut, sealing (which makes Fork share structure instead of deep
// copying), forking, and running the fork to completion must produce
// exactly the graph and state of an uncut run. A second fork taken after
// the first one already ran must see the same frozen prefix — byte for
// byte — proving the first fork's writes never reached shared state.
func TestCoWSealedForkEqualsStraightThrough(t *testing.T) {
	band := ndlog.WithSeqBand(ndlog.SeqBandDefault)

	recRef := provenance.NewRecorder(forkProg)
	ref := ndlog.New(forkProg, recRef, band)
	scheduleFork(t, ref)
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	wantGraph := serializeGraph(recRef.Graph())
	wantState := serializeSnapshot(ref.CaptureState())

	lastTick := forkSchedule[len(forkSchedule)-1].tick
	for cut := int64(0); cut <= lastTick+1; cut++ {
		rec := provenance.NewRecorder(forkProg)
		e := ndlog.New(forkProg, rec, band)
		scheduleFork(t, e)
		if err := e.RunUntil(cut); err != nil {
			t.Fatal(err)
		}
		f1, frec1 := sealAndFork(e, rec)
		if err := f1.Run(); err != nil {
			t.Fatal(err)
		}
		if got := serializeGraph(frec1.Graph()); got != wantGraph {
			t.Fatalf("cut %d: CoW fork's graph differs from straight-through:\nfork:\n%s\nwant:\n%s", cut, got, wantGraph)
		}
		if got := serializeSnapshot(f1.CaptureStateAt(ref.Now().T)); got != wantState {
			t.Fatalf("cut %d: CoW fork's state differs from straight-through:\nfork:\n%s\nwant:\n%s", cut, got, wantState)
		}

		// A sibling fork taken after f1 ran starts from the same frozen
		// prefix and reaches the same end state.
		frec2 := rec.Fork()
		f2 := e.Fork(frec2)
		if err := f2.Run(); err != nil {
			t.Fatal(err)
		}
		if got := serializeGraph(frec2.Graph()); got != wantGraph {
			t.Fatalf("cut %d: sibling fork perturbed by earlier fork's run:\ngot:\n%s\nwant:\n%s", cut, got, wantGraph)
		}
		if got := serializeSnapshot(f2.CaptureStateAt(ref.Now().T)); got != wantState {
			t.Fatalf("cut %d: sibling fork's state perturbed by earlier fork's run", cut)
		}
	}
}

// TestCoWForkIsolation pins the seal contract: a sealed engine refuses
// further scheduling and running, and writes inside a CoW fork are never
// visible through the sealed parent or through sibling forks.
func TestCoWForkIsolation(t *testing.T) {
	rec := provenance.NewRecorder(forkProg)
	e := ndlog.New(forkProg, rec, ndlog.WithSeqBand(ndlog.SeqBandDefault))
	scheduleFork(t, e)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	rec.Seal()
	e.Seal()
	frozenState := serializeSnapshot(e.CaptureState())
	frozenGraph := serializeGraph(rec.Graph())

	if err := e.ScheduleInsert("a", ndlog.NewTuple("link", ndlog.Str("z"), ndlog.Str("z")), 99); err == nil {
		t.Fatal("sealed engine accepted ScheduleInsert")
	}
	if err := e.Run(); err == nil {
		t.Fatal("sealed engine accepted Run")
	}

	onlyFork := ndlog.NewTuple("link", ndlog.Str("x"), ndlog.Str("y"))
	frec := rec.Fork()
	f := e.Fork(frec)
	if err := f.ScheduleInsert("x", onlyFork, 20); err != nil {
		t.Fatal(err)
	}
	if err := f.ScheduleDelete("a", ndlog.NewTuple("link", ndlog.Str("a"), ndlog.Str("d")), 21); err != nil {
		t.Fatal(err)
	}
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	if !f.ExistsEver("x", onlyFork) {
		t.Error("fork failed to apply its own event")
	}

	if e.ExistsEver("x", onlyFork) {
		t.Error("fork-only event leaked into the sealed parent")
	}
	if got := serializeSnapshot(e.CaptureState()); got != frozenState {
		t.Errorf("sealed parent's state changed under a fork:\ngot:\n%s\nwant:\n%s", got, frozenState)
	}
	if got := serializeGraph(rec.Graph()); got != frozenGraph {
		t.Errorf("sealed parent's graph changed under a fork")
	}
	sib := e.Fork(rec.Fork())
	if sib.ExistsEver("x", onlyFork) {
		t.Error("fork-only event leaked into a sibling fork")
	}
}

// TestCoWConcurrentForks runs 16 forks of one sealed prefix concurrently
// (meaningful under -race): each fork applies a private suffix, and every
// result must match a straight-through run of prefix+suffix.
func TestCoWConcurrentForks(t *testing.T) {
	const forks = 16
	rec := provenance.NewRecorder(forkProg)
	e := ndlog.New(forkProg, rec, ndlog.WithSeqBand(ndlog.SeqBandDefault))
	scheduleFork(t, e)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	rec.Seal()
	e.Seal()

	suffix := func(i int) (string, ndlog.Tuple, int64) {
		return "a", ndlog.NewTuple("link", ndlog.Str("a"), ndlog.Str(fmt.Sprintf("w%d", i))), int64(20 + i)
	}
	want := make([]string, forks)
	for i := range want {
		r := provenance.NewRecorder(forkProg)
		s := ndlog.New(forkProg, r, ndlog.WithSeqBand(ndlog.SeqBandDefault))
		scheduleFork(t, s)
		n, tu, tick := suffix(i)
		if err := s.ScheduleInsert(n, tu, tick); err != nil {
			t.Fatal(err)
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		want[i] = serializeGraph(r.Graph()) + serializeSnapshot(s.CaptureStateAt(tick))
	}

	got := make([]string, forks)
	errs := make([]error, forks)
	var wg sync.WaitGroup
	for i := 0; i < forks; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			frec := rec.Fork()
			f := e.Fork(frec)
			n, tu, tick := suffix(i)
			if err := f.ScheduleInsert(n, tu, tick); err != nil {
				errs[i] = err
				return
			}
			if err := f.Run(); err != nil {
				errs[i] = err
				return
			}
			got[i] = serializeGraph(frec.Graph()) + serializeSnapshot(f.CaptureStateAt(tick))
		}(i)
	}
	wg.Wait()
	for i := 0; i < forks; i++ {
		if errs[i] != nil {
			t.Fatalf("fork %d: %v", i, errs[i])
		}
		if got[i] != want[i] {
			t.Errorf("fork %d diverged from its straight-through run:\ngot:\n%.2000s\nwant:\n%.2000s", i, got[i], want[i])
		}
	}
}

// TestCoWForkAllocs is the steady-state allocation guard: forking a
// sealed prefix with CoW must allocate at least 5x less than the deep
// copy it replaces (the measured gap is well over 10x; 5x leaves margin
// against runtime noise).
func TestCoWForkAllocs(t *testing.T) {
	build := func(cow bool) (*ndlog.Engine, *provenance.Recorder) {
		prog := ndlog.MustParse(`
table edge/2 base mutable;
table probe/1 event base;
table hit/2 event;
rule j hit(S, D) :- probe(@r, S), edge(@r, S, D).
`)
		rec := provenance.NewRecorder(prog, provenance.WithCopyOnWriteForks(cow))
		e := ndlog.New(prog, rec, ndlog.WithCopyOnWriteForks(cow))
		if err := e.ScheduleInsert("r", ndlog.NewTuple("edge", ndlog.Int(1), ndlog.Int(2)), 0); err != nil {
			t.Fatal(err)
		}
		for i := 1; i < 2000; i++ {
			if err := e.ScheduleInsert("r", ndlog.NewTuple("probe", ndlog.Int(int64(i%64))), int64(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		rec.Seal()
		e.Seal()
		e.Fork(rec.Fork()) // warm one-time lazy work
		return e, rec
	}
	cowEng, cowRec := build(true)
	deepEng, deepRec := build(false)
	cowAllocs := testing.AllocsPerRun(20, func() { cowEng.Fork(cowRec.Fork()) })
	deepAllocs := testing.AllocsPerRun(20, func() { deepEng.Fork(deepRec.Fork()) })
	if cowAllocs*5 > deepAllocs {
		t.Errorf("CoW fork allocates %.0f/op vs deep %.0f/op; want at least a 5x drop", cowAllocs, deepAllocs)
	}
}
