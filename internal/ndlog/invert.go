package ndlog

import "fmt"

// Invert solves an expression for a single unknown variable. Given an
// expression e, a target output value out, and an environment binding every
// free variable of e except unknown, it returns the candidate values v such
// that evaluating e with unknown=v yields out. This implements the
// computation inversion of §4.5: "if a tuple abc(5,8) has been derived
// using a rule abc(p,q) :- foo(p), bar(x), q=x+2, DiffProv must invert
// q=x+2 to obtain x=q-2".
//
// Several preimages may be returned (the paper: "When there are several
// preimages ... DiffProv can try all of them"). ErrNonInvertible is
// returned for computations that cannot be inverted (hashes, lossy ops).
func Invert(e Expr, out Value, unknown string, env Env) ([]Value, error) {
	switch x := e.(type) {
	case Var:
		if string(x) == unknown {
			return []Value{out}, nil
		}
		v, ok := env[string(x)]
		if !ok {
			return nil, fmt.Errorf("ndlog: invert: variable %s unbound", string(x))
		}
		if v == out {
			return nil, errNoConstraint // consistent but does not determine unknown
		}
		return nil, nil // contradiction: no preimage
	case Const:
		if x.V == out {
			return nil, errNoConstraint
		}
		return nil, nil
	case Bin:
		return invertBin(x, out, unknown, env)
	case Call:
		return invertCall(x, out, unknown, env)
	default:
		return nil, ErrNonInvertible
	}
}

// errNoConstraint signals that the (sub)expression does not mention the
// unknown; it is consistent with the target but contributes no binding.
var errNoConstraint = fmt.Errorf("ndlog: expression does not constrain the unknown")

// containsVar reports whether the expression mentions the variable.
func containsVar(e Expr, name string) bool {
	for _, v := range e.Vars(nil) {
		if v == name {
			return true
		}
	}
	return false
}

func invertBin(b Bin, out Value, unknown string, env Env) ([]Value, error) {
	inL := containsVar(b.L, unknown)
	inR := containsVar(b.R, unknown)
	if inL && inR {
		return nil, ErrNonInvertible // unknown on both sides: give up
	}
	if !inL && !inR {
		v, err := b.Eval(env)
		if err != nil {
			return nil, err
		}
		if v == out {
			return nil, errNoConstraint
		}
		return nil, nil
	}
	// Evaluate the known side.
	knownSide := b.L
	unknownSide := b.R
	if inL {
		knownSide, unknownSide = b.R, b.L
	}
	known, err := knownSide.Eval(env)
	if err != nil {
		return nil, err
	}
	sub, err := invertBinStep(b.Op, out, known, inL)
	if err != nil {
		return nil, err
	}
	var all []Value
	sawNoConstraint := false
	for _, s := range sub {
		vs, err := Invert(unknownSide, s, unknown, env)
		if err == errNoConstraint {
			sawNoConstraint = true
			continue
		}
		if err != nil {
			return nil, err
		}
		all = append(all, vs...)
	}
	if len(all) == 0 && sawNoConstraint {
		return nil, errNoConstraint
	}
	return dedupValues(all), nil
}

// invertBinStep solves op(x, known) = out (unknownLeft) or
// op(known, x) = out (!unknownLeft) for x, returning candidate values of
// the unknown subexpression.
func invertBinStep(op BinOp, out, known Value, unknownLeft bool) ([]Value, error) {
	oi, oOK := asInt(out)
	ki, kOK := asInt(known)
	reint := func(n int64) Value {
		if out.Kind() == KindIP || known.Kind() == KindIP {
			return IP(uint32(n))
		}
		return Int(n)
	}
	switch op {
	case OpAdd:
		if !oOK || !kOK {
			return nil, ErrNonInvertible
		}
		return []Value{reint(oi - ki)}, nil
	case OpSub:
		if !oOK || !kOK {
			return nil, ErrNonInvertible
		}
		if unknownLeft { // x - known = out
			return []Value{reint(oi + ki)}, nil
		}
		// known - x = out
		return []Value{reint(ki - oi)}, nil
	case OpMul:
		if !oOK || !kOK {
			return nil, ErrNonInvertible
		}
		if ki == 0 {
			if oi == 0 {
				return nil, ErrNonInvertible // any value works; underdetermined
			}
			return nil, nil
		}
		if oi%ki != 0 {
			return nil, nil // no integral preimage
		}
		return []Value{reint(oi / ki)}, nil
	case OpXor:
		if !oOK || !kOK {
			return nil, ErrNonInvertible
		}
		return []Value{reint(oi ^ ki)}, nil
	case OpDiv:
		if !oOK || !kOK {
			return nil, ErrNonInvertible
		}
		if unknownLeft {
			// x / known = out: x in [out*known, out*known + known-1];
			// return the canonical preimage out*known. (Lossy division:
			// single representative preimage; forward-checked by caller.)
			return []Value{reint(oi * ki)}, nil
		}
		return nil, ErrNonInvertible
	case OpConcat:
		os, oOK := out.(Str)
		ks, kOK := known.(Str)
		if !oOK || !kOK {
			return nil, ErrNonInvertible
		}
		if unknownLeft { // x ++ known = out
			if len(os) < len(ks) || string(os[len(os)-len(ks):]) != string(ks) {
				return nil, nil
			}
			return []Value{os[:len(os)-len(ks)]}, nil
		}
		if len(os) < len(ks) || string(os[:len(ks)]) != string(ks) {
			return nil, nil
		}
		return []Value{os[len(ks):]}, nil
	case OpMod, OpAnd, OpOr, OpShl, OpShr:
		return nil, ErrNonInvertible
	default:
		return nil, ErrNonInvertible
	}
}

func invertCall(c Call, out Value, unknown string, env Env) ([]Value, error) {
	fn, ok := builtins[c.Fn]
	if !ok {
		return nil, fmt.Errorf("ndlog: unknown function %s", c.Fn)
	}
	unknownArg := -1
	for i, a := range c.Args {
		if containsVar(a, unknown) {
			if unknownArg >= 0 {
				return nil, ErrNonInvertible
			}
			unknownArg = i
		}
	}
	if unknownArg < 0 {
		v, err := c.Eval(env)
		if err != nil {
			return nil, err
		}
		if v == out {
			return nil, errNoConstraint
		}
		return nil, nil
	}
	if fn.invert == nil {
		return nil, ErrNonInvertible
	}
	args := make([]Value, len(c.Args))
	for i, a := range c.Args {
		if i == unknownArg {
			continue
		}
		v, err := a.Eval(env)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	subOuts, err := fn.invert(out, args, unknownArg)
	if err != nil {
		return nil, err
	}
	var all []Value
	sawNoConstraint := false
	for _, s := range subOuts {
		vs, err := Invert(c.Args[unknownArg], s, unknown, env)
		if err == errNoConstraint {
			sawNoConstraint = true
			continue
		}
		if err != nil {
			return nil, err
		}
		all = append(all, vs...)
	}
	if len(all) == 0 && sawNoConstraint {
		return nil, errNoConstraint
	}
	return dedupValues(all), nil
}

func dedupValues(vs []Value) []Value {
	if len(vs) < 2 {
		return vs
	}
	seen := make(map[Value]bool, len(vs))
	out := vs[:0]
	for _, v := range vs {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// InvertChecked inverts and then forward-checks every candidate, dropping
// spurious preimages introduced by lossy inverse steps (e.g. integer
// division).
func InvertChecked(e Expr, out Value, unknown string, env Env) ([]Value, error) {
	cands, err := Invert(e, out, unknown, env)
	if err != nil {
		return nil, err
	}
	var good []Value
	for _, c := range cands {
		env2 := env.Clone()
		env2[unknown] = c
		v, err := e.Eval(env2)
		if err == nil && v == out {
			good = append(good, c)
		}
	}
	return good, nil
}
