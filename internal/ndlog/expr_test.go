package ndlog

import (
	"math/rand"
	"strings"
	"testing"
)

func TestBinArithmetic(t *testing.T) {
	env := Env{"X": Int(10), "Y": Int(3)}
	tests := []struct {
		expr Expr
		want Value
	}{
		{B(OpAdd, Var("X"), Var("Y")), Int(13)},
		{B(OpSub, Var("X"), Var("Y")), Int(7)},
		{B(OpMul, Var("X"), Var("Y")), Int(30)},
		{B(OpDiv, Var("X"), Var("Y")), Int(3)},
		{B(OpMod, Var("X"), Var("Y")), Int(1)},
		{B(OpAnd, Var("X"), Var("Y")), Int(2)},
		{B(OpOr, Var("X"), Var("Y")), Int(11)},
		{B(OpXor, Var("X"), Var("Y")), Int(9)},
		{B(OpShl, Var("X"), C(Int(2))), Int(40)},
		{B(OpShr, Var("X"), C(Int(1))), Int(5)},
		{B(OpEq, Var("X"), C(Int(10))), Bool(true)},
		{B(OpNe, Var("X"), Var("Y")), Bool(true)},
		{B(OpLt, Var("Y"), Var("X")), Bool(true)},
		{B(OpLe, Var("X"), Var("X")), Bool(true)},
		{B(OpGt, Var("X"), Var("Y")), Bool(true)},
		{B(OpGe, Var("Y"), Var("X")), Bool(false)},
	}
	for _, tc := range tests {
		got, err := tc.expr.Eval(env)
		if err != nil {
			t.Errorf("%s: %v", tc.expr, err)
			continue
		}
		if got != tc.want {
			t.Errorf("%s = %v, want %v", tc.expr, got, tc.want)
		}
	}
}

func TestModIsNonNegative(t *testing.T) {
	got, err := B(OpMod, C(Int(-7)), C(Int(3))).Eval(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != Int(2) {
		t.Errorf("-7 %% 3 = %v, want 2 (mathematical mod)", got)
	}
}

func TestDivByZero(t *testing.T) {
	if _, err := B(OpDiv, C(Int(1)), C(Int(0))).Eval(nil); err == nil {
		t.Error("division by zero must error")
	}
	if _, err := B(OpMod, C(Int(1)), C(Int(0))).Eval(nil); err == nil {
		t.Error("modulo by zero must error")
	}
}

func TestConcat(t *testing.T) {
	got, err := B(OpConcat, C(Str("foo")), C(Str("bar"))).Eval(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != Str("foobar") {
		t.Errorf("concat = %v", got)
	}
	if _, err := B(OpConcat, C(Int(1)), C(Str("x"))).Eval(nil); err == nil {
		t.Error("concat of int must error")
	}
}

func TestUnboundVariable(t *testing.T) {
	if _, err := Var("Z").Eval(Env{}); err == nil {
		t.Error("unbound variable must error")
	}
}

func TestIPMaskArithmetic(t *testing.T) {
	ip := MustParseIP("1.2.3.4")
	got, err := B(OpAnd, C(ip), C(Int(0xFF))).Eval(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != IP(4) {
		t.Errorf("ip & 0xFF = %v (%T), want IP(4)", got, got)
	}
}

func TestCallBuiltins(t *testing.T) {
	env := Env{
		"Hdr": MustParseIP("4.3.3.1"),
		"P23": MustParsePrefix("4.3.2.0/23"),
		"P24": MustParsePrefix("4.3.2.0/24"),
	}
	tests := []struct {
		expr string
		e    Expr
		want Value
	}{
		{"matches23", Call{Fn: "matches", Args: []Expr{Var("Hdr"), Var("P23")}}, Bool(true)},
		{"matches24", Call{Fn: "matches", Args: []Expr{Var("Hdr"), Var("P24")}}, Bool(false)},
		{"octet", Call{Fn: "octet", Args: []Expr{Var("Hdr"), C(Int(3))}}, Int(1)},
		{"mask", Call{Fn: "mask", Args: []Expr{Var("Hdr"), C(Int(16))}}, MustParseIP("4.3.0.0")},
		{"prefix", Call{Fn: "prefix", Args: []Expr{Var("Hdr"), C(Int(24))}}, MustParsePrefix("4.3.3.0/24")},
		{"covers", Call{Fn: "covers", Args: []Expr{Var("P23"), Var("P24")}}, Bool(true)},
		{"min2", Call{Fn: "min2", Args: []Expr{C(Int(3)), C(Int(5))}}, Int(3)},
		{"max2", Call{Fn: "max2", Args: []Expr{C(Int(3)), C(Int(5))}}, Int(5)},
	}
	for _, tc := range tests {
		got, err := tc.e.Eval(env)
		if err != nil {
			t.Errorf("%s: %v", tc.expr, err)
			continue
		}
		if got != tc.want {
			t.Errorf("%s = %v, want %v", tc.expr, got, tc.want)
		}
	}
}

func TestCallErrors(t *testing.T) {
	if _, err := (Call{Fn: "nosuch"}).Eval(nil); err == nil {
		t.Error("unknown function must error")
	}
	if _, err := (Call{Fn: "matches", Args: []Expr{C(Int(1))}}).Eval(nil); err == nil {
		t.Error("wrong arity must error")
	}
	if _, err := (Call{Fn: "matches", Args: []Expr{C(Int(1)), C(Int(2))}}).Eval(nil); err == nil {
		t.Error("wrong kinds must error")
	}
}

func TestHashDeterministic(t *testing.T) {
	a := Hash64(Str("hello"))
	b := Hash64(Str("hello"))
	if a != b {
		t.Error("hash must be deterministic")
	}
	if Hash64(Str("hello")) == Hash64(Str("world")) {
		t.Error("distinct strings should hash differently (with overwhelming probability)")
	}
	// Int and Str with same rendering must differ (hash is over the
	// canonical key, which is kind-tagged).
	if Hash64(Int(1)) == Hash64(Str("1")) {
		t.Error("hash must distinguish kinds")
	}
}

func TestHashmod(t *testing.T) {
	e := Call{Fn: "hashmod", Args: []Expr{C(Str("word")), C(Int(4))}}
	v, err := e.Eval(nil)
	if err != nil {
		t.Fatal(err)
	}
	n := v.(Int)
	if n < 0 || n >= 4 {
		t.Errorf("hashmod out of range: %v", n)
	}
	if _, err := (Call{Fn: "hashmod", Args: []Expr{C(Str("w")), C(Int(0))}}).Eval(nil); err == nil {
		t.Error("hashmod with n=0 must error")
	}
}

func TestSubstComposition(t *testing.T) {
	// f(X) = X + 1 composed with X -> 2*Y gives 2*Y + 1.
	f := B(OpAdd, Var("X"), C(Int(1)))
	g := f.Subst(map[string]Expr{"X": B(OpMul, C(Int(2)), Var("Y"))})
	got, err := g.Eval(Env{"Y": Int(5)})
	if err != nil {
		t.Fatal(err)
	}
	if got != Int(11) {
		t.Errorf("composed formula = %v, want 11", got)
	}
	// Original must be unchanged.
	orig, _ := f.Eval(Env{"X": Int(1)})
	if orig != Int(2) {
		t.Error("Subst must not mutate the receiver")
	}
}

func TestSubstLeavesUnmappedVars(t *testing.T) {
	e := B(OpAdd, Var("X"), Var("Y")).Subst(map[string]Expr{"X": C(Int(1))})
	got, err := e.Eval(Env{"Y": Int(2)})
	if err != nil {
		t.Fatal(err)
	}
	if got != Int(3) {
		t.Errorf("got %v", got)
	}
}

func TestFreeVars(t *testing.T) {
	e := B(OpAdd, Var("B"), B(OpMul, Var("A"), Var("B")))
	got := FreeVars(e)
	if len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Errorf("FreeVars = %v, want [A B]", got)
	}
	if len(FreeVars(C(Int(1)))) != 0 {
		t.Error("constants have no free vars")
	}
}

func TestEvalBool(t *testing.T) {
	ok, err := EvalBool(B(OpLt, C(Int(1)), C(Int(2))), nil)
	if err != nil || !ok {
		t.Errorf("1 < 2 should hold: %v %v", ok, err)
	}
	if _, err := EvalBool(C(Int(1)), nil); err == nil {
		t.Error("non-boolean constraint must error")
	}
}

func TestEnvClone(t *testing.T) {
	e := Env{"X": Int(1)}
	c := e.Clone()
	c["X"] = Int(2)
	c["Y"] = Int(3)
	if e["X"] != Int(1) {
		t.Error("Clone must not share storage")
	}
	if _, ok := e["Y"]; ok {
		t.Error("Clone must not leak new keys to the original")
	}
}

func TestExprString(t *testing.T) {
	e := B(OpAdd, Var("X"), B(OpMul, C(Int(2)), Var("Y")))
	if got := e.String(); got != "(X + (2 * Y))" {
		t.Errorf("String = %s", got)
	}
	c := Call{Fn: "octet", Args: []Expr{Var("A"), C(Int(0))}}
	if got := c.String(); got != "octet(A, 0)" {
		t.Errorf("Call String = %s", got)
	}
	s := C(Str("x")).String()
	if s != `"x"` {
		t.Errorf("string const should quote, got %s", s)
	}
}

// randomIntExpr builds a random expression over variable X using only
// invertible operators, for inversion property tests.
func randomIntExpr(r *rand.Rand, depth int) Expr {
	if depth == 0 {
		if r.Intn(2) == 0 {
			return Var("X")
		}
		return C(Int(r.Int63n(20) + 1))
	}
	ops := []BinOp{OpAdd, OpSub, OpMul, OpXor}
	op := ops[r.Intn(len(ops))]
	// Keep X on exactly one side so the expression is invertible.
	known := C(Int(r.Int63n(20) + 1))
	unknown := randomIntExpr(r, depth-1)
	if r.Intn(2) == 0 {
		return B(op, unknown, known)
	}
	return B(op, known, unknown)
}

func TestInvertRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	tried := 0
	for i := 0; i < 2000; i++ {
		e := randomIntExpr(r, 1+r.Intn(3))
		if !containsVar(e, "X") {
			continue
		}
		x := Int(r.Int63n(100) - 50)
		out, err := e.Eval(Env{"X": x})
		if err != nil {
			continue
		}
		cands, err := InvertChecked(e, out, "X", Env{})
		if err != nil {
			t.Fatalf("invert %s = %v: %v", e, out, err)
		}
		found := false
		for _, c := range cands {
			if c == x {
				found = true
			}
			// Every candidate must forward-evaluate to out.
			v, err := e.Eval(Env{"X": c})
			if err != nil || v != out {
				t.Fatalf("spurious preimage %v for %s = %v", c, e, out)
			}
		}
		if !found {
			t.Fatalf("inversion of %s = %v missed true preimage %v (got %v)", e, out, x, cands)
		}
		tried++
	}
	if tried < 500 {
		t.Fatalf("too few property cases exercised: %d", tried)
	}
}

func TestInvertBasics(t *testing.T) {
	// q = x + 2  =>  x = q - 2 (the paper's §4.5 example).
	e := B(OpAdd, Var("X"), C(Int(2)))
	got, err := Invert(e, Int(8), "X", Env{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != Int(6) {
		t.Errorf("invert x+2=8 -> %v, want [6]", got)
	}

	// d = 2*c + 1 (the paper's §4.4 example).
	e2 := B(OpAdd, B(OpMul, C(Int(2)), Var("X")), C(Int(1)))
	got, err = Invert(e2, Int(7), "X", Env{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != Int(3) {
		t.Errorf("invert 2x+1=7 -> %v, want [3]", got)
	}

	// No integral preimage: 2x = 7.
	got, err = Invert(B(OpMul, C(Int(2)), Var("X")), Int(7), "X", Env{})
	if err != nil || len(got) != 0 {
		t.Errorf("2x=7 should have no preimage, got %v, %v", got, err)
	}
}

func TestInvertSubtractionSides(t *testing.T) {
	// x - 3 = 4 => x = 7
	got, _ := Invert(B(OpSub, Var("X"), C(Int(3))), Int(4), "X", Env{})
	if len(got) != 1 || got[0] != Int(7) {
		t.Errorf("x-3=4 -> %v", got)
	}
	// 10 - x = 4 => x = 6
	got, _ = Invert(B(OpSub, C(Int(10)), Var("X")), Int(4), "X", Env{})
	if len(got) != 1 || got[0] != Int(6) {
		t.Errorf("10-x=4 -> %v", got)
	}
}

func TestInvertConcat(t *testing.T) {
	got, err := Invert(B(OpConcat, Var("X"), C(Str("-suffix"))), Str("word-suffix"), "X", Env{})
	if err != nil || len(got) != 1 || got[0] != Str("word") {
		t.Errorf("concat inversion -> %v, %v", got, err)
	}
	got, err = Invert(B(OpConcat, C(Str("pre-")), Var("X")), Str("pre-word"), "X", Env{})
	if err != nil || len(got) != 1 || got[0] != Str("word") {
		t.Errorf("concat inversion -> %v, %v", got, err)
	}
	// Mismatched suffix: no preimage.
	got, err = Invert(B(OpConcat, Var("X"), C(Str("abc"))), Str("xyz"), "X", Env{})
	if err != nil || len(got) != 0 {
		t.Errorf("want no preimage, got %v, %v", got, err)
	}
}

func TestInvertNonInvertible(t *testing.T) {
	// hash(x) = out is not invertible.
	_, err := Invert(Call{Fn: "hash", Args: []Expr{Var("X")}}, ID(1), "X", Env{})
	if err != ErrNonInvertible {
		t.Errorf("hash inversion error = %v, want ErrNonInvertible", err)
	}
	// x % 5 is not invertible.
	_, err = Invert(B(OpMod, Var("X"), C(Int(5))), Int(2), "X", Env{})
	if err != ErrNonInvertible {
		t.Errorf("mod inversion error = %v, want ErrNonInvertible", err)
	}
	// x appearing on both sides: give up.
	_, err = Invert(B(OpAdd, Var("X"), Var("X")), Int(2), "X", Env{})
	if err != ErrNonInvertible {
		t.Errorf("x+x inversion error = %v, want ErrNonInvertible", err)
	}
}

func TestInvertPrefixBuiltin(t *testing.T) {
	// prefix(A, 24) = 4.3.3.0/24 => A = 4.3.3.0 (canonical preimage).
	e := Call{Fn: "prefix", Args: []Expr{Var("A"), C(Int(24))}}
	got, err := Invert(e, MustParsePrefix("4.3.3.0/24"), "A", Env{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != MustParseIP("4.3.3.0") {
		t.Errorf("prefix inversion -> %v", got)
	}
	// Inverting the bits argument.
	e2 := Call{Fn: "prefix", Args: []Expr{C(MustParseIP("4.3.3.0")), Var("N")}}
	got, err = Invert(e2, MustParsePrefix("4.3.3.0/24"), "N", Env{})
	if err != nil || len(got) != 1 || got[0] != Int(24) {
		t.Errorf("prefix bits inversion -> %v, %v", got, err)
	}
}

func TestInvertContradiction(t *testing.T) {
	// Constant 5 against target 6: no preimage, not an error.
	got, err := Invert(C(Int(5)), Int(6), "X", Env{})
	if err != nil || got != nil {
		t.Errorf("constant mismatch: %v, %v", got, err)
	}
	// Known variable mismatch.
	got, err = Invert(Var("Y"), Int(6), "X", Env{"Y": Int(5)})
	if err != nil || got != nil {
		t.Errorf("known-var mismatch: %v, %v", got, err)
	}
}

func TestInvertDivisionForwardChecked(t *testing.T) {
	// x / 3 = 4: canonical preimage 12; InvertChecked keeps it.
	got, err := InvertChecked(B(OpDiv, Var("X"), C(Int(3))), Int(4), "X", Env{})
	if err != nil || len(got) != 1 || got[0] != Int(12) {
		t.Errorf("x/3=4 -> %v, %v", got, err)
	}
}

func TestBinOpString(t *testing.T) {
	if OpAdd.String() != "+" || OpConcat.String() != "++" {
		t.Error("operator rendering broken")
	}
	if !strings.HasPrefix(BinOp(200).String(), "op(") {
		t.Error("unknown op rendering broken")
	}
}
