package ndlog

import (
	"fmt"
	"testing"
)

// cfOrderObserver records the stamps of base changes the counterfactual
// phase delivers, so the fuzz target below can check the queue's
// ordering invariant. All other callbacks are ignored.
type cfOrderObserver struct {
	engine *Engine
	stamps []Stamp
}

func (o *cfOrderObserver) note(at At) {
	if o.engine != nil && o.engine.cfPhase {
		o.stamps = append(o.stamps, at.Stamp)
	}
}

func (o *cfOrderObserver) OnBaseInsert(at At)      { o.note(at) }
func (o *cfOrderObserver) OnBaseDelete(at At)      { o.note(at) }
func (o *cfOrderObserver) OnAppear(At, int64)      {}
func (o *cfOrderObserver) OnDisappear(At, int64)   {}
func (o *cfOrderObserver) OnDerive(Derivation)     {}
func (o *cfOrderObserver) OnUnderive(Underivation) {}

// FuzzDeltaQueueOrder checks the delta queue's ordering invariant: the
// counterfactual queue is a stamp-ordered heap, so however a change set
// is scheduled, the delta phase must (a) deliver the base changes in
// nondecreasing stamp order and (b) reconstruct exactly the state that
// scheduling the same set in tick order produces. Each fuzz byte is one
// change: bit 0 picks insert vs delete, bits 1-3 a key, bits 4-7 the
// tick slot (duplicate slots are dropped so the two schedules describe
// the same set).
func FuzzDeltaQueueOrder(f *testing.F) {
	f.Add([]byte{0x13, 0x02, 0xf1})
	f.Add([]byte{0xff, 0x00})
	f.Add([]byte{0x81, 0x41, 0x21, 0x11})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 16 {
			data = data[:16]
		}
		type change struct {
			insert bool
			tuple  Tuple
			tick   int64
		}
		var changes []change
		usedTick := map[int64]bool{}
		for _, b := range data {
			key := fmt.Sprintf("k%d", (b>>1)&7)
			tick := int64(50 + (b>>4)&15)
			if usedTick[tick] {
				continue
			}
			usedTick[tick] = true
			c := change{insert: b&1 == 1, tick: tick}
			if c.insert {
				c.tuple = NewTuple("cfg", Str(key), Str(fmt.Sprintf("w%d", tick)))
			} else {
				c.tuple = NewTuple("cfg", Str(key), Str("v"))
			}
			changes = append(changes, c)
		}
		if len(changes) == 0 {
			return
		}

		build := func(obs Observer) *Engine {
			e := New(MustParse(`
table cfg/2 base mutable key(0);
table probe/1 event base;
table out/2 event;
rule fwd out(K, V) :- probe(@n, K), cfg(@n, K, V).
`), obs, WithSeqBand(1<<20))
			for i := 0; i < 8; i++ {
				if err := e.ScheduleInsert("n", NewTuple("cfg", Str(fmt.Sprintf("k%d", i)), Str("v")), int64(1+i)); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 8; i++ {
				if err := e.ScheduleInsert("n", NewTuple("probe", Str(fmt.Sprintf("k%d", i))), int64(20+i)); err != nil {
					t.Fatal(err)
				}
			}
			return e
		}
		schedule := func(e *Engine, c change) {
			var err error
			if c.insert {
				err = e.ScheduleCFInsert("n", c.tuple, c.tick)
			} else {
				err = e.ScheduleCFDelete("n", c.tuple, c.tick)
			}
			if err != nil {
				t.Fatal(err)
			}
		}

		// Arm 1: schedule in fuzz order, observe delivery order.
		obs := &cfOrderObserver{}
		e1 := build(obs)
		obs.engine = e1
		for _, c := range changes {
			schedule(e1, c)
		}
		if err := e1.Run(); err != nil {
			t.Fatalf("fuzz-order run: %v", err)
		}
		for i := 1; i < len(obs.stamps); i++ {
			if obs.stamps[i].Before(obs.stamps[i-1]) {
				t.Fatalf("counterfactual deliveries out of order: %v before %v (all: %v)",
					obs.stamps[i], obs.stamps[i-1], obs.stamps)
			}
		}

		// Arm 2: same set scheduled in tick order must land identically.
		e2 := build(nil)
		for tick := int64(50); tick < 66; tick++ {
			for _, c := range changes {
				if c.tick == tick {
					schedule(e2, c)
				}
			}
		}
		if err := e2.Run(); err != nil {
			t.Fatalf("tick-order run: %v", err)
		}
		s1, s2 := e1.CaptureState(), e2.CaptureState()
		if got, want := fmt.Sprintf("%v", s1.State), fmt.Sprintf("%v", s2.State); got != want {
			t.Fatalf("states differ between schedule orders:\nfuzz order: %s\ntick order: %s", got, want)
		}
	})
}
