package ndlog

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestParseIP(t *testing.T) {
	tests := []struct {
		in   string
		want IP
		ok   bool
	}{
		{"1.2.3.4", IP(0x01020304), true},
		{"0.0.0.0", IP(0), true},
		{"255.255.255.255", IP(0xffffffff), true},
		{"4.3.2.1", IP(0x04030201), true},
		{"1.2.3", 0, false},
		{"1.2.3.4.5", 0, false},
		{"1.2.3.256", 0, false},
		{"a.b.c.d", 0, false},
		{"", 0, false},
	}
	for _, tc := range tests {
		got, err := ParseIP(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("ParseIP(%q) error = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParseIP(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestIPStringRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		ip := IP(v)
		back, err := ParseIP(ip.String())
		return err == nil && back == ip
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParsePrefix(t *testing.T) {
	p, err := ParsePrefix("4.3.2.0/23")
	if err != nil {
		t.Fatal(err)
	}
	if p.Bits != 23 {
		t.Errorf("Bits = %d, want 23", p.Bits)
	}
	if !p.Contains(MustParseIP("4.3.3.1")) {
		t.Error("4.3.2.0/23 should contain 4.3.3.1")
	}
	if !p.Contains(MustParseIP("4.3.2.1")) {
		t.Error("4.3.2.0/23 should contain 4.3.2.1")
	}
	if p.Contains(MustParseIP("4.3.4.1")) {
		t.Error("4.3.2.0/23 should not contain 4.3.4.1")
	}

	p24 := MustParsePrefix("4.3.2.0/24")
	if p24.Contains(MustParseIP("4.3.3.1")) {
		t.Error("4.3.2.0/24 should not contain 4.3.3.1 (the paper's SDN1 bug)")
	}

	if _, err := ParsePrefix("4.3.2.0"); err == nil {
		t.Error("ParsePrefix without / should fail")
	}
	if _, err := ParsePrefix("4.3.2.0/33"); err == nil {
		t.Error("ParsePrefix with /33 should fail")
	}
}

func TestPrefixNormalizesHostBits(t *testing.T) {
	p := MustParsePrefix("4.3.3.7/23")
	if p.Addr != MustParseIP("4.3.2.0") {
		t.Errorf("host bits not masked: got %v", p.Addr)
	}
}

func TestPrefixContainsPrefix(t *testing.T) {
	outer := MustParsePrefix("10.0.0.0/8")
	inner := MustParsePrefix("10.1.0.0/16")
	if !outer.ContainsPrefix(inner) {
		t.Error("/8 should contain /16 inside it")
	}
	if inner.ContainsPrefix(outer) {
		t.Error("/16 should not contain its covering /8")
	}
	if !outer.ContainsPrefix(outer) {
		t.Error("prefix should contain itself")
	}
}

func TestMask(t *testing.T) {
	ip := MustParseIP("192.168.37.200")
	tests := []struct {
		bits uint8
		want string
	}{
		{32, "192.168.37.200"},
		{24, "192.168.37.0"},
		{16, "192.168.0.0"},
		{8, "192.0.0.0"},
		{0, "0.0.0.0"},
		{23, "192.168.36.0"},
	}
	for _, tc := range tests {
		if got := ip.Mask(tc.bits); got.String() != tc.want {
			t.Errorf("Mask(%d) = %v, want %v", tc.bits, got, tc.want)
		}
	}
}

func TestOctet(t *testing.T) {
	ip := MustParseIP("1.2.3.4")
	for i, want := range []byte{1, 2, 3, 4} {
		if got := ip.Octet(i); got != want {
			t.Errorf("Octet(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestParseValue(t *testing.T) {
	tests := []struct {
		in   string
		want Value
	}{
		{"42", Int(42)},
		{"-7", Int(-7)},
		{"true", Bool(true)},
		{"false", Bool(false)},
		{`"hello"`, Str("hello")},
		{"1.2.3.4", IP(0x01020304)},
		{"10.0.0.0/8", Prefix{Addr: IP(0x0a000000), Bits: 8}},
		{"#ff", ID(255)},
	}
	for _, tc := range tests {
		got, err := ParseValue(tc.in)
		if err != nil {
			t.Errorf("ParseValue(%q) error: %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseValue(%q) = %#v, want %#v", tc.in, got, tc.want)
		}
	}
	for _, bad := range []string{"", "1.2.3.4.5/8", "zz", `"unterminated`} {
		if _, err := ParseValue(bad); err == nil {
			t.Errorf("ParseValue(%q) should fail", bad)
		}
	}
}

// randomValue generates arbitrary values for property tests.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(6) {
	case 0:
		return Int(r.Int63n(1000) - 500)
	case 1:
		return Str(string(rune('a' + r.Intn(26))))
	case 2:
		return Bool(r.Intn(2) == 0)
	case 3:
		return IP(r.Uint32())
	case 4:
		return Prefix{Addr: IP(r.Uint32()).Mask(uint8(r.Intn(33))), Bits: uint8(r.Intn(33))}
	default:
		return ID(r.Uint64())
	}
}

func TestValueParseStringRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		v := randomValue(r)
		if p, ok := v.(Prefix); ok {
			p.Addr = p.Addr.Mask(p.Bits) // canonical form only
			v = p
		}
		s := v.String()
		if _, isStr := v.(Str); isStr {
			continue // bare strings are not self-delimiting
		}
		back, err := ParseValue(s)
		if err != nil {
			t.Fatalf("ParseValue(%q) from %#v: %v", s, v, err)
		}
		if back != v {
			t.Fatalf("round trip %#v -> %q -> %#v", v, s, back)
		}
	}
}

func TestLessIsStrictWeakOrder(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	vals := make([]Value, 60)
	for i := range vals {
		vals[i] = randomValue(r)
	}
	for _, a := range vals {
		if Less(a, a) {
			t.Fatalf("Less(%v, %v) must be false (irreflexive)", a, a)
		}
		for _, b := range vals {
			if Less(a, b) && Less(b, a) {
				t.Fatalf("Less not antisymmetric for %v, %v", a, b)
			}
			if !Less(a, b) && !Less(b, a) && a != b && a.Kind() == b.Kind() {
				t.Fatalf("distinct same-kind values %v, %v not ordered", a, b)
			}
			for _, c := range vals {
				if Less(a, b) && Less(b, c) && !Less(a, c) {
					t.Fatalf("Less not transitive: %v < %v < %v", a, b, c)
				}
			}
		}
	}
}

func TestTupleKeyCanonical(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		n := r.Intn(4)
		args1 := make([]Value, n)
		args2 := make([]Value, n)
		for j := 0; j < n; j++ {
			args1[j] = randomValue(r)
			if r.Intn(2) == 0 {
				args2[j] = args1[j]
			} else {
				args2[j] = randomValue(r)
			}
		}
		t1 := NewTuple("t", args1...)
		t2 := NewTuple("t", args2...)
		if (t1.Key() == t2.Key()) != t1.Equal(t2) {
			t.Fatalf("key/equality mismatch: %v vs %v", t1, t2)
		}
	}
}

func TestTupleKeyDistinguishesTables(t *testing.T) {
	a := NewTuple("foo", Int(1))
	b := NewTuple("bar", Int(1))
	if a.Key() == b.Key() {
		t.Error("tuples in different tables must have different keys")
	}
}

func TestTupleKeyNoAmbiguity(t *testing.T) {
	// Str values embed their length, so concatenation tricks cannot
	// collide.
	a := NewTuple("t", Str("ab"), Str("c"))
	b := NewTuple("t", Str("a"), Str("bc"))
	if a.Key() == b.Key() {
		t.Error("string boundary ambiguity in Key")
	}
}

func TestTupleString(t *testing.T) {
	tu := NewTuple("flowEntry", Int(5), MustParsePrefix("1.2.3.0/24"), Str("s2"))
	want := `flowEntry(5, 1.2.3.0/24, "s2")`
	if got := tu.String(); got != want {
		t.Errorf("String() = %s, want %s", got, want)
	}
}

func TestTupleClone(t *testing.T) {
	orig := NewTuple("t", Int(1), Int(2))
	cl := orig.Clone()
	cl.Args[0] = Int(99)
	if orig.Args[0] != Int(1) {
		t.Error("Clone must not share argument storage")
	}
}

func TestStampOrder(t *testing.T) {
	a := Stamp{T: 1, Seq: 5}
	b := Stamp{T: 1, Seq: 6}
	c := Stamp{T: 2, Seq: 1}
	if !a.Before(b) || !b.Before(c) || !a.Before(c) {
		t.Error("stamp ordering broken")
	}
	if a.Before(a) {
		t.Error("Before must be irreflexive")
	}
	if !c.After(a) {
		t.Error("After inverted")
	}
}

func TestEqAcrossKinds(t *testing.T) {
	if Eq(Int(1), ID(1)) {
		t.Error("values of different kinds must not be equal")
	}
	if !Eq(Int(1), Int(1)) {
		t.Error("equal ints must be Eq")
	}
}

func TestKindString(t *testing.T) {
	kinds := map[Kind]string{
		KindInt: "int", KindStr: "str", KindBool: "bool",
		KindIP: "ip", KindPrefix: "prefix", KindID: "id",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %s, want %s", k, k.String(), want)
		}
	}
}

func TestValueKeyInjective(t *testing.T) {
	f := func(a, b uint32) bool {
		ka := string(IP(a).appendKey(nil))
		kb := string(IP(b).appendKey(nil))
		return (ka == kb) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeysDifferAcrossKinds(t *testing.T) {
	vals := []Value{Int(1), ID(1), IP(1), Str("1"), Bool(true)}
	seen := map[string]Value{}
	for _, v := range vals {
		k := string(v.appendKey(nil))
		if prev, dup := seen[k]; dup {
			t.Errorf("key collision between %#v and %#v", prev, v)
		}
		seen[k] = v
	}
}

var _ = reflect.DeepEqual // keep reflect imported for quick
