package trace

import (
	"testing"

	"repro/internal/ndlog"
)

func TestDeterminism(t *testing.T) {
	g1 := New(Config{Seed: 42})
	g2 := New(Config{Seed: 42})
	for i := 0; i < 1000; i++ {
		p1, p2 := g1.Next(), g2.Next()
		if p1 != p2 {
			t.Fatalf("packet %d differs: %+v vs %+v", i, p1, p2)
		}
	}
	g3 := New(Config{Seed: 43})
	same := 0
	g1 = New(Config{Seed: 42})
	for i := 0; i < 1000; i++ {
		if g1.Next() == g3.Next() {
			same++
		}
	}
	if same > 50 {
		t.Errorf("different seeds produce %d/1000 identical packets", same)
	}
}

func TestPacketsWithinSubnets(t *testing.T) {
	cfg := Config{Seed: 7}
	g := New(cfg)
	eff := g.Config()
	for i := 0; i < 2000; i++ {
		p := g.Next()
		srcOK, dstOK := false, false
		for _, s := range eff.SrcSubnets {
			if s.Contains(p.Src) {
				srcOK = true
			}
		}
		for _, d := range eff.DstSubnets {
			if d.Contains(p.Dst) {
				dstOK = true
			}
		}
		if !srcOK || !dstOK {
			t.Fatalf("packet %d outside configured subnets: %+v", i, p)
		}
		if p.Size != 500 {
			t.Fatalf("default size = %d, want 500", p.Size)
		}
	}
}

func TestProtocolMix(t *testing.T) {
	g := New(Config{Seed: 1})
	counts := map[int64]int{}
	for i := 0; i < 10000; i++ {
		counts[g.Next().Proto]++
	}
	if counts[6] < 7500 {
		t.Errorf("TCP fraction = %d/10000, want dominant (configured 85%%)", counts[6])
	}
	if counts[17] == 0 || counts[1] == 0 {
		t.Error("UDP and ICMP should both occur")
	}
}

func TestRateArithmetic(t *testing.T) {
	cfg := Config{RateBps: 1e9, PacketSize: 500, DurationSec: 2}
	if pps := cfg.PacketsPerSecond(); pps != 250000 {
		t.Errorf("pps = %f, want 250000", pps)
	}
	if n := cfg.NumPackets(); n != 500000 {
		t.Errorf("NumPackets = %d, want 500000", n)
	}
}

func TestLoggingRateShape(t *testing.T) {
	// Figure 5: logging rate scales linearly with traffic rate.
	rate := func(bps float64, size int) float64 {
		g := New(Config{Seed: 5, RateBps: bps, PacketSize: size})
		r, err := g.LoggingRate(2000)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r1 := rate(1e6, 500)
	r10 := rate(1e7, 500)
	r100 := rate(1e8, 500)
	if ratio := r10 / r1; ratio < 9.5 || ratio > 10.5 {
		t.Errorf("10x traffic -> %.2fx logging, want ~10x", ratio)
	}
	if ratio := r100 / r10; ratio < 9.5 || ratio > 10.5 {
		t.Errorf("10x traffic -> %.2fx logging, want ~10x", ratio)
	}
	// Figure 6: at a fixed bit rate, larger packets mean a lower rate.
	s500 := rate(1e9, 500)
	s1000 := rate(1e9, 1000)
	s1500 := rate(1e9, 1500)
	if !(s500 > s1000 && s1000 > s1500) {
		t.Errorf("logging rate must decrease with packet size: %f, %f, %f", s500, s1000, s1500)
	}
	if ratio := s500 / s1000; ratio < 1.8 || ratio > 2.2 {
		t.Errorf("500B vs 1000B ratio = %.2f, want ~2 (per-record size is fixed)", ratio)
	}
	// Absolute check from the paper's shape: even at 10 Gbps the rate is
	// well within a commodity SSD's sequential write throughput
	// (~400 MB/s in the paper).
	if r := rate(1e10, 500); r > 400e6 {
		t.Errorf("10 Gbps logging rate = %.0f B/s, want under the 400 MB/s SSD budget", r)
	}
}

func TestLoggingRateErrors(t *testing.T) {
	g := New(Config{})
	if _, err := g.LoggingRate(0); err == nil {
		t.Error("zero sample must fail")
	}
}

func TestBuildLog(t *testing.T) {
	g := New(Config{Seed: 3})
	l := g.BuildLog("border", 100, 50)
	if l.Len() != 50 {
		t.Fatalf("log length = %d", l.Len())
	}
	evs := l.Events()
	if evs[0].Tick != 100 || evs[49].Tick != 149 {
		t.Error("ticks must advance one per packet")
	}
	if evs[0].Node != "border" {
		t.Error("wrong ingress")
	}
	if evs[0].Tuple.Table != "packet" {
		t.Error("wrong table")
	}
}

func TestPacketTuple(t *testing.T) {
	p := Packet{Src: ndlog.MustParseIP("1.2.3.4"), Dst: ndlog.MustParseIP("5.6.7.8"), Proto: 6, Size: 500}
	tu := p.Tuple()
	if tu.Table != "packet" || len(tu.Args) != 3 {
		t.Errorf("tuple = %s", tu)
	}
}

func TestAddressesLookPlausible(t *testing.T) {
	g := New(Config{Seed: 9})
	for i := 0; i < 500; i++ {
		p := g.Next()
		if p.Src == 0 || p.Dst == 0 {
			t.Fatal("zero address generated")
		}
	}
}
