// Package trace generates deterministic synthetic packet traces — the
// stand-in for the paper's CAIDA OC-192 capture (§6.1). The paper uses
// the trace purely as a packet workload with a given rate and size
// distribution; this generator produces a statistically similar stream
// (heavy-tailed flow sizes, a mix of subnets and protocols) from a seed,
// so every experiment is reproducible bit-for-bit.
package trace

import (
	"fmt"

	"repro/internal/ndlog"
	"repro/internal/replay"
)

// Packet is one generated packet: a header plus a wire size. Only the
// header is logged (the paper: "we only store fixed-size information for
// each packet, i.e., the header and the timestamp").
type Packet struct {
	Src, Dst ndlog.IP
	Proto    int64
	Size     int // wire size in bytes
}

// Tuple renders the packet as an NDlog event for the SDN model.
func (p Packet) Tuple() ndlog.Tuple {
	return ndlog.NewTuple("packet", p.Src, p.Dst, ndlog.Int(p.Proto))
}

// Config parameterizes a trace.
type Config struct {
	Seed int64
	// RateBps is the traffic rate in bits per second.
	RateBps float64
	// PacketSize is the mean packet size in bytes (fixed per trace, as
	// in the paper's experiments).
	PacketSize int
	// DurationSec is the trace length in (simulated) seconds.
	DurationSec float64
	// SrcSubnets and DstSubnets are the address pools (defaults cover a
	// typical campus mix).
	SrcSubnets, DstSubnets []ndlog.Prefix
	// Protocols and their weights (defaults: TCP-heavy internet mix).
	Protocols []ProtoMix
}

// ProtoMix pairs a protocol number with a relative weight.
type ProtoMix struct {
	Proto  int64
	Weight int
}

func (c *Config) defaults() {
	if c.PacketSize == 0 {
		c.PacketSize = 500
	}
	if c.RateBps == 0 {
		c.RateBps = 1e6
	}
	if c.DurationSec == 0 {
		c.DurationSec = 1
	}
	if len(c.SrcSubnets) == 0 {
		c.SrcSubnets = []ndlog.Prefix{
			ndlog.MustParsePrefix("4.3.2.0/23"),
			ndlog.MustParsePrefix("8.8.0.0/16"),
			ndlog.MustParsePrefix("128.32.0.0/16"),
			ndlog.MustParsePrefix("171.64.0.0/14"),
		}
	}
	if len(c.DstSubnets) == 0 {
		c.DstSubnets = []ndlog.Prefix{
			ndlog.MustParsePrefix("10.0.0.0/24"),
			ndlog.MustParsePrefix("10.0.1.0/24"),
		}
	}
	if len(c.Protocols) == 0 {
		c.Protocols = []ProtoMix{{6, 85}, {17, 12}, {1, 3}}
	}
}

// PacketsPerSecond returns the packet rate implied by the config.
func (c Config) PacketsPerSecond() float64 {
	c.defaults()
	return c.RateBps / (8 * float64(c.PacketSize))
}

// NumPackets returns the number of packets in the configured duration.
func (c Config) NumPackets() int {
	return int(c.PacketsPerSecond() * c.DurationSec)
}

// Generator produces a deterministic packet stream.
type Generator struct {
	cfg    Config
	state  uint64
	weight int
}

// New creates a generator; the zero config is usable (1 Mbps, 500 B).
func New(cfg Config) *Generator {
	cfg.defaults()
	g := &Generator{cfg: cfg, state: uint64(cfg.Seed)*2862933555777941757 + 3037000493}
	for _, p := range cfg.Protocols {
		g.weight += p.Weight
	}
	return g
}

// Config returns the effective configuration.
func (g *Generator) Config() Config { return g.cfg }

// next is a SplitMix64 step: fast, deterministic, well-distributed.
func (g *Generator) next() uint64 {
	g.state += 0x9e3779b97f4a7c15
	z := g.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (g *Generator) pick(prefixes []ndlog.Prefix) ndlog.IP {
	p := prefixes[int(g.next()%uint64(len(prefixes)))]
	host := uint32(g.next())
	if p.Bits < 32 {
		host &= 1<<(32-uint(p.Bits)) - 1
	} else {
		host = 0
	}
	// Avoid the all-zero host so addresses look plausible.
	if host == 0 && p.Bits < 32 {
		host = 1
	}
	return p.Addr | ndlog.IP(host)
}

// Next generates one packet.
func (g *Generator) Next() Packet {
	proto := int64(6)
	if g.weight > 0 {
		w := int(g.next() % uint64(g.weight))
		for _, pm := range g.cfg.Protocols {
			if w < pm.Weight {
				proto = pm.Proto
				break
			}
			w -= pm.Weight
		}
	}
	return Packet{
		Src:   g.pick(g.cfg.SrcSubnets),
		Dst:   g.pick(g.cfg.DstSubnets),
		Proto: proto,
		Size:  g.cfg.PacketSize,
	}
}

// Packets generates n packets.
func (g *Generator) Packets(n int) []Packet {
	out := make([]Packet, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// BuildLog generates the trace and logs every packet (header + timestamp)
// at the given ingress node, one tick per packet, returning the log. This
// is the workload of the storage-cost experiments (Figures 5 and 6).
func (g *Generator) BuildLog(ingress string, startTick int64, n int) *replay.Log {
	l := replay.NewLog()
	for i := 0; i < n; i++ {
		l.Insert(ingress, g.Next().Tuple(), startTick+int64(i))
	}
	return l
}

// LoggingRate measures the log growth rate for the configured traffic:
// bytes of encoded log per (simulated) second. The shape reproduced from
// the paper: linear in the traffic rate, decreasing in packet size at a
// fixed bit rate (fewer packets per second mean fewer log records).
func (g *Generator) LoggingRate(samplePackets int) (bytesPerSec float64, err error) {
	if samplePackets <= 0 {
		return 0, fmt.Errorf("trace: need a positive sample size")
	}
	l := g.BuildLog("border", 0, samplePackets)
	perPacket := float64(l.EncodedSize()) / float64(samplePackets)
	return perPacket * g.cfg.PacketsPerSecond(), nil
}
