package store

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/ndlog"
)

func testEvent(i int) Event {
	kind := EvInsert
	if i%5 == 4 {
		kind = EvDelete
	}
	return Event{
		Kind: kind,
		Node: "sw" + string(rune('A'+i%3)),
		Tuple: ndlog.Tuple{
			Table: "packet",
			Args: []ndlog.Value{
				ndlog.Int(int64(i)),
				ndlog.Str("flow"),
				ndlog.IP(0x0a000001 + uint32(i%7)),
				ndlog.Bool(i%2 == 0),
			},
		},
		Tick: int64(i),
	}
}

func collect(t *testing.T, s *Store) []Event {
	t.Helper()
	var out []Event
	if err := s.Events(func(ev Event) error {
		out = append(out, ev)
		return nil
	}); err != nil {
		t.Fatalf("Events: %v", err)
	}
	return out
}

func TestStoreAppendReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithSegmentEvents(8))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const n = 37 // several sealed segments plus a partial tail
	want := make([]Event, n)
	for i := 0; i < n; i++ {
		want[i] = testEvent(i)
		if err := s.Append(want[i]); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
	}
	if got := collect(t, s); !reflect.DeepEqual(got, want) {
		t.Fatalf("pre-close stream mismatch: got %d events", len(got))
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r, err := Open(dir, WithSegmentEvents(8))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r.Close()
	if r.Len() != n {
		t.Fatalf("reopened Len = %d, want %d", r.Len(), n)
	}
	if got := collect(t, r); !reflect.DeepEqual(got, want) {
		t.Fatalf("reopened stream mismatch")
	}
	// Appending after reopen continues the stream.
	extra := testEvent(n)
	if err := r.Append(extra); err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
	got := collect(t, r)
	if len(got) != n+1 || !reflect.DeepEqual(got[n], extra) {
		t.Fatalf("append after reopen not visible")
	}
}

func TestStoreTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithSegmentEvents(100))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Append(testEvent(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Simulate a crash mid-write: append junk to the active segment.
	path := filepath.Join(dir, "seg-00000000.log")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open segment: %v", err)
	}
	if _, err := f.Write([]byte{0x09, 0xde, 0xad}); err != nil {
		t.Fatalf("write junk: %v", err)
	}
	f.Close()

	r, err := Open(dir, WithSegmentEvents(100))
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	defer r.Close()
	if r.Len() != 10 {
		t.Fatalf("recovered Len = %d, want 10", r.Len())
	}
	got := collect(t, r)
	if len(got) != 10 || got[9].Tick != 9 {
		t.Fatalf("torn-tail recovery lost events: got %d", len(got))
	}
	// The torn bytes must be gone so appends resume cleanly.
	if err := r.Append(testEvent(10)); err != nil {
		t.Fatalf("Append after recovery: %v", err)
	}
	if got := collect(t, r); len(got) != 11 {
		t.Fatalf("post-recovery stream has %d events, want 11", len(got))
	}
}

func TestStoreCorruptRecordDropped(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithSegmentEvents(100))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Append(testEvent(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	s.Close()

	// Flip a byte in the last record's payload: its CRC no longer
	// matches, so recovery truncates it (and only it).
	path := filepath.Join(dir, "seg-00000000.log")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	data[len(data)-6] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}

	r, err := Open(dir, WithSegmentEvents(100))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r.Close()
	if r.Len() != 4 {
		t.Fatalf("recovered Len = %d, want 4 (corrupt final record dropped)", r.Len())
	}
}

func TestStoreCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithSegmentEvents(4))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	for i := 0; i < 6; i++ {
		if err := s.Append(testEvent(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	snap := ndlog.Snapshot{
		Tick: 5,
		State: map[string]map[string][]ndlog.Tuple{
			"swB": {
				"route": {
					{Table: "route", Args: []ndlog.Value{ndlog.Prefix{Addr: 0x0a000000, Bits: 24}, ndlog.Str("p1")}},
					{Table: "route", Args: []ndlog.Value{ndlog.Prefix{Addr: 0x0a000100, Bits: 24}, ndlog.Str("p2")}},
				},
			},
			"swA": {
				"link": {{Table: "link", Args: []ndlog.Value{ndlog.ID(42), ndlog.Int(-7)}}},
			},
		},
	}
	if err := s.PutCheckpoint(5, 6, snap); err != nil {
		t.Fatalf("PutCheckpoint: %v", err)
	}
	cks, err := s.Checkpoints()
	if err != nil {
		t.Fatalf("Checkpoints: %v", err)
	}
	if len(cks) != 1 {
		t.Fatalf("got %d checkpoints, want 1", len(cks))
	}
	ck := cks[0]
	if ck.Tick != 5 || ck.EventsBefore != 6 || ck.Epoch != 0 {
		t.Fatalf("checkpoint header = %+v", ck)
	}
	if !reflect.DeepEqual(ck.State, snap) {
		t.Fatalf("snapshot round trip mismatch:\n got %+v\nwant %+v", ck.State, snap)
	}

	// Same tick replaces; distinct ticks accumulate sorted.
	if err := s.PutCheckpoint(3, 4, ndlog.Snapshot{Tick: 3, State: map[string]map[string][]ndlog.Tuple{}}); err != nil {
		t.Fatalf("PutCheckpoint(3): %v", err)
	}
	if err := s.PutCheckpoint(5, 6, snap); err != nil {
		t.Fatalf("PutCheckpoint(5) again: %v", err)
	}
	cks, err = s.Checkpoints()
	if err != nil {
		t.Fatalf("Checkpoints: %v", err)
	}
	if len(cks) != 2 || cks[0].Tick != 3 || cks[1].Tick != 5 {
		t.Fatalf("checkpoints = %+v", cks)
	}

	// A corrupt checkpoint file is skipped, not fatal.
	if err := os.WriteFile(filepath.Join(dir, "ckpt-00000000000000ff.ck"), []byte("garbage"), 0o644); err != nil {
		t.Fatalf("write corrupt ckpt: %v", err)
	}
	cks, err = s.Checkpoints()
	if err != nil || len(cks) != 2 {
		t.Fatalf("corrupt checkpoint not skipped: %v, %d", err, len(cks))
	}
}

func TestStoreGC(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithSegmentEvents(4))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	const n = 20 // 5 sealed segments, ticks 0..19
	for i := 0; i < n; i++ {
		if err := s.Append(testEvent(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := s.PutCheckpoint(11, 12, ndlog.Snapshot{Tick: 11, State: map[string]map[string][]ndlog.Tuple{}}); err != nil {
		t.Fatalf("PutCheckpoint: %v", err)
	}

	// A pin below the anchor clamps GC.
	release := s.Pin(2)
	removed, err := s.GC(10)
	if err != nil {
		t.Fatalf("GC: %v", err)
	}
	if removed != 0 {
		t.Fatalf("GC removed %d segments despite pin at tick 2", removed)
	}
	release()

	removed, err = s.GC(10)
	if err != nil {
		t.Fatalf("GC: %v", err)
	}
	// Segments [0..3], [4..7] have maxTick < 10; [8..11] reaches 11.
	if removed != 2 {
		t.Fatalf("GC removed %d segments, want 2", removed)
	}
	if s.Len() != n-8 {
		t.Fatalf("post-GC Len = %d, want %d", s.Len(), n-8)
	}
	if s.Epoch() != 1 || s.AgeTick() != 10 {
		t.Fatalf("post-GC epoch/ageTick = %d/%d", s.Epoch(), s.AgeTick())
	}
	got := collect(t, s)
	if len(got) != n-8 || got[0].Tick != 8 {
		t.Fatalf("post-GC stream starts at tick %d with %d events", got[0].Tick, len(got))
	}
	// GC invalidated the checkpoint (old epoch).
	cks, err := s.Checkpoints()
	if err != nil {
		t.Fatalf("Checkpoints: %v", err)
	}
	if len(cks) != 0 {
		t.Fatalf("stale checkpoints survived GC: %+v", cks)
	}

	// Epoch and age tick persist across reopen.
	s.Close()
	r, err := Open(dir, WithSegmentEvents(4))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r.Close()
	if r.Epoch() != 1 || r.AgeTick() != 10 || r.Len() != n-8 {
		t.Fatalf("reopened epoch/age/len = %d/%d/%d", r.Epoch(), r.AgeTick(), r.Len())
	}
}

func TestStoreGCKeepsLastSegment(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithSegmentEvents(4))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	for i := 0; i < 8; i++ { // exactly two sealed segments, no active
		if err := s.Append(testEvent(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	removed, err := s.GC(100)
	if err != nil {
		t.Fatalf("GC: %v", err)
	}
	if removed != 1 {
		t.Fatalf("GC removed %d, want 1 (newest segment always retained)", removed)
	}
	if got := collect(t, s); len(got) != 4 || got[0].Tick != 4 {
		t.Fatalf("post-GC stream wrong: %d events", len(got))
	}
}

func TestStoreLookupEvents(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithSegmentEvents(4))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	target := ndlog.Tuple{Table: "flow", Args: []ndlog.Value{ndlog.Int(99)}}
	var want []Event
	for i := 0; i < 18; i++ {
		ev := testEvent(i)
		if i%5 == 0 { // lands in several segments and the active tail
			ev = Event{Kind: EvInsert, Node: "swZ", Tuple: target, Tick: int64(i)}
			want = append(want, ev)
		}
		if err := s.Append(ev); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	got, err := s.LookupEvents("swZ", target.Key())
	if err != nil {
		t.Fatalf("LookupEvents: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("LookupEvents mismatch:\n got %+v\nwant %+v", got, want)
	}
	// Absent tuples return nothing.
	got, err = s.LookupEvents("swZ", "nope")
	if err != nil || len(got) != 0 {
		t.Fatalf("LookupEvents(absent) = %v, %v", got, err)
	}
	// Survives reopen (sealed index read from sidecars, active rebuilt).
	s.Close()
	r, err := Open(dir, WithSegmentEvents(4))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r.Close()
	got, err = r.LookupEvents("swZ", target.Key())
	if err != nil {
		t.Fatalf("LookupEvents after reopen: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("LookupEvents after reopen mismatch")
	}
}

func TestEventCodecRoundTrip(t *testing.T) {
	for i := 0; i < 10; i++ {
		ev := testEvent(i)
		var b bytes.Buffer
		if err := WriteEvent(&b, ev); err != nil {
			t.Fatalf("WriteEvent: %v", err)
		}
		got, err := ReadEvent(bytes.NewReader(b.Bytes()))
		if err != nil {
			t.Fatalf("ReadEvent: %v", err)
		}
		if !reflect.DeepEqual(got, ev) {
			t.Fatalf("round trip mismatch: %+v != %+v", got, ev)
		}
	}
}

func TestRecordLog(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenRecordLog(dir, "shard_swA", WithRecordsPerSegment(4))
	if err != nil {
		t.Fatalf("OpenRecordLog: %v", err)
	}
	var want [][]byte
	for i := 0; i < 11; i++ {
		payload := []byte{byte(i), byte(i * 3), byte(i * 7)}
		want = append(want, payload)
		ord, err := l.Append(payload)
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		if ord != i {
			t.Fatalf("ordinal = %d, want %d", ord, i)
		}
	}
	// Random-access reads across sealed and active segments.
	for _, i := range []int{10, 0, 5, 3, 9, 1} {
		got, err := l.Get(i)
		if err != nil {
			t.Fatalf("Get(%d): %v", i, err)
		}
		if !bytes.Equal(got, want[i]) {
			t.Fatalf("Get(%d) = %v, want %v", i, got, want[i])
		}
	}
	if _, err := l.Get(11); err == nil {
		t.Fatalf("Get out of range succeeded")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r, err := OpenRecordLog(dir, "shard_swA", WithRecordsPerSegment(4))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r.Close()
	if r.Count() != 11 {
		t.Fatalf("reopened Count = %d, want 11", r.Count())
	}
	var scanned [][]byte
	if err := r.Scan(func(ord int, p []byte) error {
		if ord != len(scanned) {
			t.Fatalf("scan ordinal %d out of order", ord)
		}
		scanned = append(scanned, append([]byte(nil), p...))
		return nil
	}); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if !reflect.DeepEqual(scanned, want) {
		t.Fatalf("Scan mismatch")
	}
}

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"swA":          "swA",
		"node/1":       "node_1",
		"a b\tc":       "a_b_c",
		".hidden":      "_.hidden",
		"-flag":        "_flag",
		"host-1":       "host_1",
		"":             "_",
		"plain_name.0": "plain_name.0",
	}
	for in, want := range cases {
		if got := SanitizeName(in); got != want {
			t.Errorf("SanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestEventsRangeSkipsSegments pins the windowed read path: sealed
// segments whose tick range lies outside the window are skipped without
// contributing a single byte to the read counters.
func TestEventsRangeSkipsSegments(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithSegmentEvents(8))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	const n = 36 // 4 sealed segments of 8 plus an active tail of 4
	for i := 0; i < n; i++ {
		if err := s.Append(testEvent(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}

	// A window covering exactly one sealed segment.
	before := s.ReadStats()
	var got []Event
	if err := s.EventsRange(8, 15, func(ev Event) error {
		got = append(got, ev)
		return nil
	}); err != nil {
		t.Fatalf("EventsRange: %v", err)
	}
	if len(got) != 8 {
		t.Fatalf("EventsRange(8,15) returned %d events, want 8", len(got))
	}
	for i, ev := range got {
		if !reflect.DeepEqual(ev, testEvent(8+i)) {
			t.Fatalf("event %d = %+v, want %+v", i, ev, testEvent(8+i))
		}
	}
	mid := s.ReadStats()
	if d := mid.SegmentsRead - before.SegmentsRead; d != 1 {
		t.Errorf("window over one segment read %d segments, want 1", d)
	}
	if d := mid.SegmentsSkipped - before.SegmentsSkipped; d != 3 {
		t.Errorf("window over one segment skipped %d segments, want 3", d)
	}
	if mid.BytesRead == before.BytesRead {
		t.Error("reading a segment did not move BytesRead")
	}

	// A window past every sealed segment and before the active tail's
	// range: every sealed segment skips, and not one byte is read.
	if err := s.EventsRange(-100, -50, func(Event) error {
		t.Fatal("empty window yielded an event")
		return nil
	}); err != nil {
		t.Fatalf("EventsRange: %v", err)
	}
	after := s.ReadStats()
	if d := after.BytesRead - mid.BytesRead; d != 0 {
		t.Errorf("out-of-window read consumed %d bytes, want 0", d)
	}
	if d := after.SegmentsSkipped - mid.SegmentsSkipped; d != 4 {
		t.Errorf("out-of-window read skipped %d segments, want 4", d)
	}
	if after.SegmentsRead != mid.SegmentsRead {
		t.Error("out-of-window read streamed a segment")
	}
}

// TestRecordLogPointRead pins the sealed-offset fast path: Get on a
// sealed segment must cost one ReadAt spanning exactly the record's
// frame — no whole-segment decode — and a segment whose sidecar predates
// offset tables must fall back to the decode path and still serve reads.
func TestRecordLogPointRead(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenRecordLog(dir, "shard_pr", WithRecordsPerSegment(4))
	if err != nil {
		t.Fatalf("OpenRecordLog: %v", err)
	}
	var want [][]byte
	for i := 0; i < 11; i++ {
		payload := bytes.Repeat([]byte{byte(i + 1)}, 16+i)
		want = append(want, payload)
		if _, err := l.Append(payload); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r, err := OpenRecordLog(dir, "shard_pr", WithRecordsPerSegment(4))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r.Close()
	before := r.sl.counters.bytesRead.Load()
	got, err := r.Get(5) // second sealed segment, middle record
	if err != nil {
		t.Fatalf("Get(5): %v", err)
	}
	if !bytes.Equal(got, want[5]) {
		t.Fatalf("Get(5) = %v, want %v", got, want[5])
	}
	read := r.sl.counters.bytesRead.Load() - before
	// Frame layout: uvarint length prefix, payload, 4-byte CRC.
	frame := int64(binary.PutUvarint(make([]byte, binary.MaxVarintLen64), uint64(len(want[5]))) + len(want[5]) + 4)
	if read != frame {
		t.Errorf("point read consumed %d bytes, want the %d-byte record frame", read, frame)
	}
	if r.cacheIdx != -1 {
		t.Error("point read populated the whole-segment cache")
	}

	// Wipe one segment's offset table to emulate a log written before
	// offsets existed: Get must fall back to decoding the segment.
	r.extras[0] = nil
	r.offIdx, r.offVals = -1, nil
	got, err = r.Get(1)
	if err != nil {
		t.Fatalf("legacy Get(1): %v", err)
	}
	if !bytes.Equal(got, want[1]) {
		t.Fatalf("legacy Get(1) = %v, want %v", got, want[1])
	}
	if r.cacheIdx == -1 {
		t.Error("legacy fallback did not use the whole-segment cache")
	}
}
