package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/ndlog"
)

// Checkpoint is a durable state snapshot keyed into the segment stream:
// EventsBefore is the number of logged events at or before Tick when the
// snapshot was captured, and Epoch ties the checkpoint to the retention
// generation it was captured under — GC bumps the epoch, so checkpoints
// captured against a fuller history are never mistaken for ones a cold
// start from the truncated stream could reproduce.
type Checkpoint struct {
	Tick         int64
	EventsBefore int
	Epoch        uint64
	State        ndlog.Snapshot
}

const ckptMagic = "DPCK1\n"

func (s *Store) ckptPath(tick int64) string {
	return filepath.Join(s.dir, fmt.Sprintf("ckpt-%016x.ck", uint64(tick)))
}

// PutCheckpoint durably records a checkpoint. The segment tail is synced
// first, so a durable checkpoint never refers to events the log could
// lose in a crash; recovery replays the segment tail past the last
// durable checkpoint. Writing is atomic (tmp + rename); a checkpoint at
// an existing tick is replaced.
func (s *Store) PutCheckpoint(tick int64, eventsBefore int, state ndlog.Snapshot) error {
	if err := s.Sync(); err != nil {
		return err
	}
	s.mu.Lock()
	epoch := s.epoch
	s.mu.Unlock()

	var b bytes.Buffer
	b.WriteString(ckptMagic)
	start := b.Len()
	writeUvarint(&b, epoch)
	var scratch [binary.MaxVarintLen64]byte
	n := binary.PutVarint(scratch[:], tick)
	b.Write(scratch[:n])
	writeUvarint(&b, uint64(eventsBefore))
	if err := writeSnapshot(&b, state); err != nil {
		return err
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc32.ChecksumIEEE(b.Bytes()[start:]))
	b.Write(crcBuf[:])

	path := s.ckptPath(tick)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b.Bytes(), 0o644); err != nil {
		return fmt.Errorf("store: %v", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("store: %v", err)
	}
	return syncDir(s.dir)
}

// Checkpoints returns the durable checkpoints of the current retention
// epoch, tick-sorted. Checkpoints from older epochs (invalidated by GC
// but surviving a crash mid-reclaim) are skipped; corrupt files are
// skipped too — a checkpoint is a cache, recovery recaptures what is
// missing.
func (s *Store) Checkpoints() ([]Checkpoint, error) {
	s.mu.Lock()
	epoch := s.epoch
	s.mu.Unlock()
	names, err := filepath.Glob(filepath.Join(s.dir, "ckpt-*.ck"))
	if err != nil {
		return nil, fmt.Errorf("store: %v", err)
	}
	var out []Checkpoint
	for _, name := range names {
		ck, err := readCheckpoint(name)
		if err != nil {
			continue
		}
		if ck.Epoch != epoch {
			continue
		}
		out = append(out, ck)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tick < out[j].Tick })
	return out, nil
}

// dropCheckpointFiles deletes every durable checkpoint; GC calls it
// after bumping the epoch. Callers hold s.mu.
func (s *Store) dropCheckpointFiles() error {
	names, err := filepath.Glob(filepath.Join(s.dir, "ckpt-*.ck"))
	if err != nil {
		return fmt.Errorf("store: %v", err)
	}
	for _, name := range names {
		if err := os.Remove(name); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("store: %v", err)
		}
	}
	return nil
}

func readCheckpoint(path string) (Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Checkpoint{}, fmt.Errorf("store: %v", err)
	}
	if len(data) < len(ckptMagic)+4 || string(data[:len(ckptMagic)]) != ckptMagic {
		return Checkpoint{}, fmt.Errorf("store: bad checkpoint header in %s", filepath.Base(path))
	}
	body := data[len(ckptMagic) : len(data)-4]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(data[len(data)-4:]) {
		return Checkpoint{}, fmt.Errorf("store: checkpoint %s is corrupt", filepath.Base(path))
	}
	r := bytes.NewReader(body)
	epoch, err := binary.ReadUvarint(r)
	if err != nil {
		return Checkpoint{}, fmt.Errorf("store: checkpoint %s is corrupt: %v", filepath.Base(path), err)
	}
	tick, err := binary.ReadVarint(r)
	if err != nil {
		return Checkpoint{}, fmt.Errorf("store: checkpoint %s is corrupt: %v", filepath.Base(path), err)
	}
	eventsBefore, err := binary.ReadUvarint(r)
	if err != nil {
		return Checkpoint{}, fmt.Errorf("store: checkpoint %s is corrupt: %v", filepath.Base(path), err)
	}
	state, err := readSnapshot(r)
	if err != nil {
		return Checkpoint{}, fmt.Errorf("store: checkpoint %s is corrupt: %v", filepath.Base(path), err)
	}
	state.Tick = tick
	return Checkpoint{Tick: tick, EventsBefore: int(eventsBefore), Epoch: epoch, State: state}, nil
}

// writeSnapshot encodes a state snapshot deterministically: nodes and
// tables in sorted order, rows in their (already canonical-key-sorted)
// capture order, tuple values through the shared value codec.
func writeSnapshot(w eventWriter, snap ndlog.Snapshot) error {
	nodes := make([]string, 0, len(snap.State))
	for n := range snap.State {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	if err := writeUvarint(w, uint64(len(nodes))); err != nil {
		return err
	}
	for _, node := range nodes {
		if err := writeString(w, node); err != nil {
			return err
		}
		tbls := snap.State[node]
		names := make([]string, 0, len(tbls))
		for t := range tbls {
			names = append(names, t)
		}
		sort.Strings(names)
		if err := writeUvarint(w, uint64(len(names))); err != nil {
			return err
		}
		for _, table := range names {
			if err := writeString(w, table); err != nil {
				return err
			}
			rows := tbls[table]
			if err := writeUvarint(w, uint64(len(rows))); err != nil {
				return err
			}
			for _, row := range rows {
				if err := writeUvarint(w, uint64(len(row.Args))); err != nil {
					return err
				}
				for _, a := range row.Args {
					if err := writeValue(w, a); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// readSnapshot decodes a snapshot written by writeSnapshot. The caller
// sets Tick.
func readSnapshot(r eventReader) (ndlog.Snapshot, error) {
	snap := ndlog.Snapshot{State: map[string]map[string][]ndlog.Tuple{}}
	nNodes, err := binary.ReadUvarint(r)
	if err != nil {
		return snap, err
	}
	if nNodes > MaxDecodedString {
		return snap, fmt.Errorf("implausible node count %d", nNodes)
	}
	for i := uint64(0); i < nNodes; i++ {
		node, err := readString(r)
		if err != nil {
			return snap, err
		}
		nTables, err := binary.ReadUvarint(r)
		if err != nil {
			return snap, err
		}
		if nTables > MaxDecodedString {
			return snap, fmt.Errorf("implausible table count %d", nTables)
		}
		tbls := map[string][]ndlog.Tuple{}
		for j := uint64(0); j < nTables; j++ {
			table, err := readString(r)
			if err != nil {
				return snap, err
			}
			nRows, err := binary.ReadUvarint(r)
			if err != nil {
				return snap, err
			}
			if nRows > 1<<28 {
				return snap, fmt.Errorf("implausible row count %d", nRows)
			}
			rows := make([]ndlog.Tuple, 0, nRows)
			for k := uint64(0); k < nRows; k++ {
				nargs, err := binary.ReadUvarint(r)
				if err != nil {
					return snap, err
				}
				if nargs > MaxDecodedArgs {
					return snap, fmt.Errorf("tuple with %d columns exceeds the %d bound", nargs, MaxDecodedArgs)
				}
				args := make([]ndlog.Value, nargs)
				for a := range args {
					v, err := readValue(r)
					if err != nil {
						return snap, err
					}
					args[a] = v
				}
				rows = append(rows, ndlog.Tuple{Table: table, Args: args})
			}
			tbls[table] = rows
		}
		if len(tbls) > 0 {
			snap.State[node] = tbls
		}
	}
	return snap, nil
}
