package store

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/ndlog"
)

// EventKind distinguishes logged base events.
type EventKind uint8

// Logged event kinds.
const (
	EvInsert EventKind = iota
	EvDelete
)

// Event is one logged base event. It is the unit the segmented store
// appends and the wire format encodes; internal/replay aliases this type
// so the in-memory log and the on-disk segments share one definition.
type Event struct {
	Kind  EventKind
	Node  string
	Tuple ndlog.Tuple
	Tick  int64
}

// Sanity bounds for decoding untrusted inputs: no legitimate node,
// table, or string field exceeds these, and no tuple has more columns.
const (
	MaxDecodedString = 1 << 20
	MaxDecodedArgs   = 1 << 10
)

// eventWriter is the writer surface the event codec needs; both
// *bufio.Writer and *bytes.Buffer satisfy it.
type eventWriter interface {
	io.Writer
	io.ByteWriter
	io.StringWriter
}

// eventReader is the reader surface the event codec needs; both
// *bufio.Reader and *bytes.Reader satisfy it.
type eventReader interface {
	io.Reader
	io.ByteReader
}

// WriteEvent encodes one event in the compact wire format: a kind byte,
// the tick as a uvarint, node and table as length-prefixed strings, and
// the tuple's values each tagged with their kind byte. The format stores
// fixed-size header information per packet-like event — tuple fields and
// a timestamp — mirroring the paper's observation that the log keeps
// "the header and the timestamp", not payloads.
func WriteEvent(w eventWriter, ev Event) error {
	if err := w.WriteByte(byte(ev.Kind)); err != nil {
		return err
	}
	if err := writeUvarint(w, uint64(ev.Tick)); err != nil {
		return err
	}
	if err := writeString(w, ev.Node); err != nil {
		return err
	}
	if err := writeString(w, ev.Tuple.Table); err != nil {
		return err
	}
	if err := writeUvarint(w, uint64(len(ev.Tuple.Args))); err != nil {
		return err
	}
	for _, a := range ev.Tuple.Args {
		if err := writeValue(w, a); err != nil {
			return err
		}
	}
	return nil
}

// ReadEvent decodes one event previously written by WriteEvent.
func ReadEvent(r eventReader) (Event, error) {
	kind, err := r.ReadByte()
	if err != nil {
		return Event{}, err
	}
	if kind > byte(EvDelete) {
		return Event{}, fmt.Errorf("store: bad event kind %d", kind)
	}
	tick, err := binary.ReadUvarint(r)
	if err != nil {
		return Event{}, err
	}
	node, err := readString(r)
	if err != nil {
		return Event{}, err
	}
	table, err := readString(r)
	if err != nil {
		return Event{}, err
	}
	nargs, err := binary.ReadUvarint(r)
	if err != nil {
		return Event{}, err
	}
	if nargs > MaxDecodedArgs {
		return Event{}, fmt.Errorf("store: tuple with %d columns exceeds the %d bound", nargs, MaxDecodedArgs)
	}
	args := make([]ndlog.Value, nargs)
	for j := range args {
		v, err := readValue(r)
		if err != nil {
			return Event{}, err
		}
		args[j] = v
	}
	return Event{
		Kind:  EventKind(kind),
		Node:  node,
		Tuple: ndlog.Tuple{Table: table, Args: args},
		Tick:  int64(tick),
	}, nil
}

// WriteTuple encodes a tuple alone (table plus tagged values), for
// record formats that frame tuples inside larger records — the
// provenance shard store reuses this so vertex records and event
// records share one value codec.
func WriteTuple(w io.Writer, t ndlog.Tuple) error {
	ew, ok := w.(eventWriter)
	if !ok {
		return fmt.Errorf("store: writer %T lacks byte/string methods", w)
	}
	if err := writeString(ew, t.Table); err != nil {
		return err
	}
	if err := writeUvarint(ew, uint64(len(t.Args))); err != nil {
		return err
	}
	for _, a := range t.Args {
		if err := writeValue(ew, a); err != nil {
			return err
		}
	}
	return nil
}

// ReadTuple decodes a tuple written by WriteTuple.
func ReadTuple(r io.Reader) (ndlog.Tuple, error) {
	er, ok := r.(eventReader)
	if !ok {
		return ndlog.Tuple{}, fmt.Errorf("store: reader %T lacks byte methods", r)
	}
	table, err := readString(er)
	if err != nil {
		return ndlog.Tuple{}, err
	}
	nargs, err := binary.ReadUvarint(er)
	if err != nil {
		return ndlog.Tuple{}, err
	}
	if nargs > MaxDecodedArgs {
		return ndlog.Tuple{}, fmt.Errorf("store: tuple with %d columns exceeds the %d bound", nargs, MaxDecodedArgs)
	}
	args := make([]ndlog.Value, nargs)
	for j := range args {
		v, err := readValue(er)
		if err != nil {
			return ndlog.Tuple{}, err
		}
		args[j] = v
	}
	return ndlog.Tuple{Table: table, Args: args}, nil
}

// WriteUvarint writes a uvarint; exposed so internal/replay can frame
// whole-log encodings (count-prefixed event streams) with the same
// primitives the segment format uses.
func WriteUvarint(w io.Writer, v uint64) error {
	var scratch [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(scratch[:], v)
	_, err := w.Write(scratch[:n])
	return err
}

// ReadUvarint reads a uvarint written by WriteUvarint.
func ReadUvarint(r io.ByteReader) (uint64, error) {
	return binary.ReadUvarint(r)
}

func writeUvarint(w eventWriter, v uint64) error {
	return WriteUvarint(w, v)
}

func writeString(w eventWriter, s string) error {
	if err := writeUvarint(w, uint64(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

func readString(r eventReader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > MaxDecodedString {
		return "", fmt.Errorf("store: string field of %d bytes exceeds the %d-byte bound", n, MaxDecodedString)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func writeValue(w eventWriter, v ndlog.Value) error {
	if err := w.WriteByte(byte(v.Kind())); err != nil {
		return err
	}
	switch x := v.(type) {
	case ndlog.Int:
		var scratch [binary.MaxVarintLen64]byte
		n := binary.PutVarint(scratch[:], int64(x))
		_, err := w.Write(scratch[:n])
		return err
	case ndlog.Str:
		return writeString(w, string(x))
	case ndlog.Bool:
		b := byte(0)
		if x {
			b = 1
		}
		return w.WriteByte(b)
	case ndlog.IP:
		var buf [4]byte
		binary.BigEndian.PutUint32(buf[:], uint32(x))
		_, err := w.Write(buf[:])
		return err
	case ndlog.Prefix:
		var buf [5]byte
		binary.BigEndian.PutUint32(buf[:4], uint32(x.Addr))
		buf[4] = x.Bits
		_, err := w.Write(buf[:])
		return err
	case ndlog.ID:
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], uint64(x))
		_, err := w.Write(buf[:])
		return err
	default:
		return fmt.Errorf("store: cannot encode value of kind %s", v.Kind())
	}
}

func readValue(r eventReader) (ndlog.Value, error) {
	kind, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	switch ndlog.Kind(kind) {
	case ndlog.KindInt:
		n, err := binary.ReadVarint(r)
		if err != nil {
			return nil, err
		}
		return ndlog.Int(n), nil
	case ndlog.KindStr:
		s, err := readString(r)
		if err != nil {
			return nil, err
		}
		return ndlog.Str(s), nil
	case ndlog.KindBool:
		b, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		return ndlog.Bool(b != 0), nil
	case ndlog.KindIP:
		var buf [4]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return nil, err
		}
		return ndlog.IP(binary.BigEndian.Uint32(buf[:])), nil
	case ndlog.KindPrefix:
		var buf [5]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return nil, err
		}
		return ndlog.Prefix{Addr: ndlog.IP(binary.BigEndian.Uint32(buf[:4])), Bits: buf[4]}, nil
	case ndlog.KindID:
		var buf [8]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return nil, err
		}
		return ndlog.ID(binary.BigEndian.Uint64(buf[:])), nil
	default:
		return nil, fmt.Errorf("store: bad value kind %d", kind)
	}
}
