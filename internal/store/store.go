// Package store implements DiffProv's persistent storage layer: an
// append-only, segmented, binary-encoded store for the base-event log,
// durable checkpoint snapshots keyed into the segment stream, and
// retention/GC that truncates segments nothing live anchors into.
//
// The design follows the shape compact Datalog-provenance encodings use
// to scale past memory (Zhao/Subotić/Scholz): the hot path appends
// fixed-size records to the tail segment, sealed segments are immutable
// and carry a sidecar index (event count, tick range, CRC, per-segment
// fingerprint index), and readers reconstruct state lazily by streaming
// segments instead of materializing everything. internal/replay builds
// its crash-safe sessions on top (replay.WithStorage / replay.Open);
// internal/provenance persists its §4.8 shards through RecordLog.
package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// DefaultSegmentEvents is how many events a segment holds before it
// seals.
const DefaultSegmentEvents = 4096

// Option configures a Store.
type Option func(*Store)

// WithSegmentEvents sets the number of events per segment (default
// DefaultSegmentEvents). The value is only consulted when creating new
// segments; an existing store may mix sizes across generations.
func WithSegmentEvents(n int) Option {
	return func(s *Store) { s.segEvents = n }
}

// segInfo is the Store's per-sealed-segment view: counts and tick range
// (parsed from the sidecar extra); the fingerprint index stays on disk
// and is re-read on lookups.
type segInfo struct {
	count            int
	minTick, maxTick int64
}

// SegmentInfo describes one segment for observability and tests.
type SegmentInfo struct {
	Index            int
	Count            int
	MinTick, MaxTick int64
	Sealed           bool
}

// Store is the persistent base-event log: segments plus checkpoint
// snapshots plus the retention metadata. All methods are safe for
// concurrent use.
type Store struct {
	dir       string
	segEvents int

	// gcMu excludes GC from running while a reader streams segments:
	// readers hold it shared, GC exclusively.
	gcMu sync.RWMutex

	mu      sync.Mutex
	sl      *seglog
	infos   []segInfo // parallel to sl.sealed
	count   int       // total retained events (sealed + active)
	closed  bool
	opening bool // inside Open: onSealed counts recovered segments

	// Active-segment accumulators for the sidecar extra.
	actMin, actMax int64
	actOrdinal     int                 // next in-segment ordinal
	actFP          map[uint64][]uint32 // tuple fingerprint -> in-segment ordinals

	// Retention metadata (persisted in the meta file).
	epoch   uint64
	ageTick int64

	// pins holds the retention anchors of live readers and diagnoses; GC
	// never reclaims a segment a pin anchors into.
	pins map[*pin]struct{}

	encBuf bytes.Buffer
}

type pin struct{ tick int64 }

// Open opens (or creates) a store rooted at dir, recovering the active
// segment tail past the last sealed segment: intact records are kept,
// a torn final record is truncated away.
func Open(dir string, opts ...Option) (*Store, error) {
	s := &Store{
		dir:       dir,
		segEvents: DefaultSegmentEvents,
		actFP:     map[uint64][]uint32{},
		pins:      map[*pin]struct{}{},
	}
	for _, o := range opts {
		o(s)
	}
	if err := s.readMeta(); err != nil {
		return nil, err
	}
	s.opening = true
	sl, err := openSeglog(dir, "seg", s.segEvents, seglogHooks{
		sealExtra: s.sealExtra,
		onSealed:  s.onSealed,
		onActiveRecord: func(payload []byte) error {
			ev, err := decodeEventPayload(payload)
			if err != nil {
				return err
			}
			s.accumulate(ev)
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	s.opening = false
	s.sl = sl
	if s.sl.active != nil {
		s.count += s.sl.active.count
	}
	return s, nil
}

// accumulate folds one appended event into the active-segment sidecar
// accumulators.
func (s *Store) accumulate(ev Event) {
	ordinal := s.actOrdinal
	s.actOrdinal++
	if ordinal == 0 {
		s.actMin, s.actMax = ev.Tick, ev.Tick
	} else {
		if ev.Tick < s.actMin {
			s.actMin = ev.Tick
		}
		if ev.Tick > s.actMax {
			s.actMax = ev.Tick
		}
	}
	fp := eventFingerprint(ev.Node, ev.Tuple.Key())
	s.actFP[fp] = append(s.actFP[fp], uint32(ordinal))
}

// eventFingerprint hashes a (node, tuple key) pair for the per-segment
// fingerprint index.
func eventFingerprint(node, tupleKey string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(node))
	h.Write([]byte{'|'})
	h.Write([]byte(tupleKey))
	return h.Sum64()
}

// sealExtra encodes the active segment's tick range and fingerprint
// index for the sidecar, resetting the accumulators.
func (s *Store) sealExtra() []byte {
	var b bytes.Buffer
	var scratch [binary.MaxVarintLen64]byte
	putVarint := func(v int64) {
		n := binary.PutVarint(scratch[:], v)
		b.Write(scratch[:n])
	}
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		b.Write(scratch[:n])
	}
	putVarint(s.actMin)
	putVarint(s.actMax)
	putUvarint(uint64(len(s.actFP)))
	for fp, ords := range s.actFP {
		var fpb [8]byte
		binary.LittleEndian.PutUint64(fpb[:], fp)
		b.Write(fpb[:])
		putUvarint(uint64(len(ords)))
		prev := uint32(0)
		for _, o := range ords {
			putUvarint(uint64(o - prev)) // ordinals ascend; delta-encode
			prev = o
		}
	}
	s.actFP = map[uint64][]uint32{}
	s.actMin, s.actMax = 0, 0
	s.actOrdinal = 0
	return b.Bytes()
}

// onSealed registers a sealed segment's tick range (decoded from the
// sidecar extra at open time, or straight from the just-written extra).
func (s *Store) onSealed(m segMeta, extra []byte) {
	min, max, _, err := parseSegExtra(extra, false)
	if err != nil {
		// A sealed segment with an unreadable extra still streams fine;
		// use a conservative tick range so GC never reclaims it.
		min, max = -1<<62, 1<<62
	}
	s.infos = append(s.infos, segInfo{count: m.count, minTick: min, maxTick: max})
	if s.opening {
		// Runtime seals move already-counted events from the active tail
		// into the sealed list; only recovery discovers new events.
		s.count += m.count
	}
}

// parseSegExtra decodes a sidecar extra: tick range, and (when withFP)
// the fingerprint index mapping tuple fingerprints to in-segment
// ordinals.
func parseSegExtra(extra []byte, withFP bool) (minTick, maxTick int64, fp map[uint64][]uint32, err error) {
	r := bytes.NewReader(extra)
	minTick, err = binary.ReadVarint(r)
	if err != nil {
		return 0, 0, nil, fmt.Errorf("store: bad segment extra: %v", err)
	}
	maxTick, err = binary.ReadVarint(r)
	if err != nil {
		return 0, 0, nil, fmt.Errorf("store: bad segment extra: %v", err)
	}
	if !withFP {
		return minTick, maxTick, nil, nil
	}
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, 0, nil, fmt.Errorf("store: bad segment extra: %v", err)
	}
	fp = make(map[uint64][]uint32, n)
	for i := uint64(0); i < n; i++ {
		var fpb [8]byte
		if _, err := io.ReadFull(r, fpb[:]); err != nil {
			return 0, 0, nil, fmt.Errorf("store: bad segment extra: %v", err)
		}
		key := binary.LittleEndian.Uint64(fpb[:])
		cnt, err := binary.ReadUvarint(r)
		if err != nil || cnt > uint64(maxRecordLen) {
			return 0, 0, nil, fmt.Errorf("store: bad segment extra")
		}
		ords := make([]uint32, cnt)
		prev := uint64(0)
		for j := range ords {
			d, err := binary.ReadUvarint(r)
			if err != nil {
				return 0, 0, nil, fmt.Errorf("store: bad segment extra: %v", err)
			}
			prev += d
			ords[j] = uint32(prev)
		}
		fp[key] = ords
	}
	return minTick, maxTick, fp, nil
}

func decodeEventPayload(payload []byte) (Event, error) {
	r := bytes.NewReader(payload)
	ev, err := ReadEvent(r)
	if err != nil {
		return Event{}, err
	}
	if r.Len() != 0 {
		return Event{}, fmt.Errorf("store: %d trailing bytes after event record", r.Len())
	}
	return ev, nil
}

// Append adds one event to the tail segment, sealing it when full.
// Durability is batched: call Sync (or write a checkpoint) to force the
// tail to disk.
func (s *Store) Append(ev Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	s.encBuf.Reset()
	if err := WriteEvent(&s.encBuf, ev); err != nil {
		return err
	}
	s.accumulate(ev)
	if err := s.sl.append(s.encBuf.Bytes()); err != nil {
		return err
	}
	s.count++
	return nil
}

// Sync forces all appended events to disk.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sl.sync()
}

// Close syncs and closes the store.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.sl.close()
}

// Len returns the number of retained events (excluding any aged out by
// GC).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Epoch returns the retention generation: it bumps every time GC
// reclaims segments, invalidating checkpoints captured against the
// fuller history.
func (s *Store) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// AgeTick returns the retention anchor of the most recent GC (0 when
// nothing was ever reclaimed): all retained events are from segments
// that reach at or past it.
func (s *Store) AgeTick() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ageTick
}

// Segments describes the retained segments in stream order.
func (s *Store) Segments() []SegmentInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SegmentInfo, 0, len(s.infos)+1)
	for i, info := range s.infos {
		out = append(out, SegmentInfo{
			Index: s.sl.sealed[i].idx, Count: info.count,
			MinTick: info.minTick, MaxTick: info.maxTick, Sealed: true,
		})
	}
	if a := s.sl.active; a != nil && a.count > 0 {
		out = append(out, SegmentInfo{
			Index: a.idx, Count: a.count,
			MinTick: s.actMin, MaxTick: s.actMax,
		})
	}
	return out
}

// Pin anchors the retention at the given tick until the returned release
// function runs: GC will not reclaim any segment whose events reach that
// tick or later. Live diagnoses pin the earliest tick they replay from.
func (s *Store) Pin(tick int64) (release func()) {
	p := &pin{tick: tick}
	s.mu.Lock()
	s.pins[p] = struct{}{}
	s.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			s.mu.Lock()
			delete(s.pins, p)
			s.mu.Unlock()
		})
	}
}

// ReadStats reports the store's cumulative segment read traffic:
// segments streamed, segments skipped by a tick-window or fingerprint
// probe without reading a byte, and the bytes and records decoded. Tests
// use it to pin down what a cold start or windowed query actually read.
type ReadStats struct {
	SegmentsRead    int64
	SegmentsSkipped int64
	BytesRead       int64
	RecordsRead     int64
}

// ReadStats returns the cumulative read counters.
func (s *Store) ReadStats() ReadStats {
	c := &s.sl.counters
	return ReadStats{
		SegmentsRead:    c.segmentsRead.Load(),
		SegmentsSkipped: c.segmentsSkipped.Load(),
		BytesRead:       c.bytesRead.Load(),
		RecordsRead:     c.recordsRead.Load(),
	}
}

// EventsRange streams, in append order, the retained events whose tick
// lies in [minTick, maxTick]. Sealed segments whose sidecar tick range
// falls entirely outside the window are skipped without reading a byte
// (counted in ReadStats.SegmentsSkipped); overlapping segments stream
// and filter per event. The active tail is consulted only when its
// accumulated range overlaps.
func (s *Store) EventsRange(minTick, maxTick int64, fn func(Event) error) error {
	s.gcMu.RLock()
	defer s.gcMu.RUnlock()

	s.mu.Lock()
	sealed := append([]segMeta(nil), s.sl.sealed...)
	infos := append([]segInfo(nil), s.infos...)
	actCount := 0
	if s.sl.active != nil {
		actCount = s.sl.active.count
	}
	actMin, actMax := s.actMin, s.actMax
	var activeData []byte
	var err error
	if actCount > 0 && actMin <= maxTick && actMax >= minTick {
		activeData, err = s.sl.activeSnapshot()
	}
	s.mu.Unlock()
	if err != nil {
		return err
	}

	emit := func(payload []byte) error {
		ev, err := decodeEventPayload(payload)
		if err != nil {
			return err
		}
		if ev.Tick < minTick || ev.Tick > maxTick {
			return nil
		}
		return fn(ev)
	}
	for i, m := range sealed {
		if i < len(infos) && (infos[i].maxTick < minTick || infos[i].minTick > maxTick) {
			s.sl.counters.segmentsSkipped.Add(1)
			continue
		}
		if err := s.sl.readSegment(m, emit); err != nil {
			return err
		}
	}
	if len(activeData) > 0 {
		if _, err := scanRecords(activeData, emit); err != nil {
			return err
		}
	}
	return nil
}

// Events streams every retained event in append order: sealed segments
// are read and CRC-verified one at a time (the whole log is never
// materialized), then the active tail. GC is excluded for the duration.
func (s *Store) Events(fn func(Event) error) error {
	s.gcMu.RLock()
	defer s.gcMu.RUnlock()

	s.mu.Lock()
	sealed := append([]segMeta(nil), s.sl.sealed...)
	activeData, err := s.sl.activeSnapshot()
	s.mu.Unlock()
	if err != nil {
		return err
	}

	emit := func(payload []byte) error {
		ev, err := decodeEventPayload(payload)
		if err != nil {
			return err
		}
		return fn(ev)
	}
	for _, m := range sealed {
		if err := s.sl.readSegment(m, emit); err != nil {
			return err
		}
	}
	if len(activeData) > 0 {
		if _, err := scanRecords(activeData, emit); err != nil {
			return err
		}
	}
	return nil
}

// LookupEvents returns, in stream order, the retained events matching a
// (node, tuple) pair. Sealed segments are consulted through their
// sidecar fingerprint index, so only segments that mention the tuple are
// read.
func (s *Store) LookupEvents(node string, tupleKey string) ([]Event, error) {
	s.gcMu.RLock()
	defer s.gcMu.RUnlock()

	s.mu.Lock()
	sealed := append([]segMeta(nil), s.sl.sealed...)
	activeData, err := s.sl.activeSnapshot()
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	activeOrds := append([]uint32(nil), s.actFP[eventFingerprint(node, tupleKey)]...)
	s.mu.Unlock()

	fp := eventFingerprint(node, tupleKey)
	var out []Event
	for _, m := range sealed {
		_, extra, err := readSidecar(s.sl.idxPath(m.idx), m.idx)
		if err != nil {
			return nil, err
		}
		_, _, idx, err := parseSegExtra(extra, true)
		if err != nil {
			return nil, err
		}
		ords, ok := idx[fp]
		if !ok {
			s.sl.counters.segmentsSkipped.Add(1)
			continue
		}
		next := 0
		ordinal := 0
		if err := s.sl.readSegment(m, func(payload []byte) error {
			defer func() { ordinal++ }()
			if next >= len(ords) || uint32(ordinal) != ords[next] {
				return nil
			}
			next++
			ev, err := decodeEventPayload(payload)
			if err != nil {
				return err
			}
			if ev.Node == node && ev.Tuple.Key() == tupleKey {
				out = append(out, ev)
			}
			return nil
		}); err != nil {
			return nil, err
		}
	}
	if len(activeOrds) > 0 {
		next := 0
		ordinal := 0
		if _, err := scanRecords(activeData, func(payload []byte) error {
			defer func() { ordinal++ }()
			if next >= len(activeOrds) || uint32(ordinal) != activeOrds[next] {
				return nil
			}
			next++
			ev, err := decodeEventPayload(payload)
			if err != nil {
				return err
			}
			if ev.Node == node && ev.Tuple.Key() == tupleKey {
				out = append(out, ev)
			}
			return nil
		}); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// GC reclaims the longest prefix of sealed segments whose every event is
// strictly before the retention anchor — the paper's "old entries can be
// gradually aged out" strategy, segment-granular. The effective anchor
// is the requested one clamped to the oldest live Pin, so no segment a
// live checkpoint or diagnosis anchors into is reclaimed. At least one
// segment is always retained. When anything is reclaimed the epoch
// bumps and every durable checkpoint is invalidated and deleted: a
// checkpoint captures state derived from the full history, which a
// cold start from the truncated stream can no longer reproduce (see
// DESIGN.md §14 for the recovery protocol).
func (s *Store) GC(anchorTick int64) (removed int, err error) {
	s.gcMu.Lock()
	defer s.gcMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()

	eff := anchorTick
	for p := range s.pins {
		if p.tick < eff {
			eff = p.tick
		}
	}
	n := 0
	for i, info := range s.infos {
		last := s.sl.active == nil && i == len(s.infos)-1
		if info.maxTick < eff && !last {
			n++
		} else {
			break
		}
	}
	if n == 0 {
		return 0, nil
	}
	prevEpoch, prevAge := s.epoch, s.ageTick
	s.epoch++
	if eff > s.ageTick {
		s.ageTick = eff
	}
	if err := s.writeMeta(); err != nil {
		s.epoch, s.ageTick = prevEpoch, prevAge // keep memory consistent with disk
		return 0, err
	}
	if err := s.dropCheckpointFiles(); err != nil {
		return 0, err
	}
	for _, info := range s.infos[:n] {
		s.count -= info.count
	}
	if err := s.sl.gcPrefix(n); err != nil {
		return 0, err
	}
	s.infos = append([]segInfo(nil), s.infos[n:]...)
	return n, nil
}

// Meta file: epoch and age tick, written atomically on GC.
const metaMagic = "DPMT1\n"

func (s *Store) metaPath() string { return filepath.Join(s.dir, "meta") }

func (s *Store) writeMeta() error {
	var b bytes.Buffer
	b.WriteString(metaMagic)
	start := b.Len()
	writeUvarint(&b, s.epoch)
	var scratch [binary.MaxVarintLen64]byte
	n := binary.PutVarint(scratch[:], s.ageTick)
	b.Write(scratch[:n])
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc32.ChecksumIEEE(b.Bytes()[start:]))
	b.Write(crcBuf[:])
	tmp := s.metaPath() + ".tmp"
	if err := os.WriteFile(tmp, b.Bytes(), 0o644); err != nil {
		return fmt.Errorf("store: %v", err)
	}
	if err := os.Rename(tmp, s.metaPath()); err != nil {
		return fmt.Errorf("store: %v", err)
	}
	return syncDir(s.dir)
}

func (s *Store) readMeta() error {
	data, err := os.ReadFile(s.metaPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: %v", err)
	}
	if len(data) < len(metaMagic)+4 || string(data[:len(metaMagic)]) != metaMagic {
		return fmt.Errorf("store: bad meta file")
	}
	body := data[len(metaMagic) : len(data)-4]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(data[len(data)-4:]) {
		return fmt.Errorf("store: meta file is corrupt")
	}
	r := bytes.NewReader(body)
	epoch, err := binary.ReadUvarint(r)
	if err != nil {
		return fmt.Errorf("store: meta file is corrupt: %v", err)
	}
	age, err := binary.ReadVarint(r)
	if err != nil {
		return fmt.Errorf("store: meta file is corrupt: %v", err)
	}
	s.epoch, s.ageTick = epoch, age
	return nil
}
