package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// Segment file layout (shared by the event store and the shard record
// logs):
//
//	data file <prefix>-NNNNNNNN.log:
//	    6-byte magic "DPSG1\n"
//	    records: uvarint payload length | payload | 4-byte CRC32(payload)
//	sidecar  <prefix>-NNNNNNNN.idx (written when the segment seals):
//	    6-byte magic "DPIX1\n"
//	    body: uvarint record count
//	          uvarint data-region size in bytes
//	          4-byte CRC32 of the data region (everything after the magic)
//	          uvarint extra length | extra (owner-defined: tick range and
//	          fingerprint index for event segments)
//	    4-byte CRC32 of the body
//
// A segment seals after exactly perSeg records; the sidecar is written
// atomically (tmp + rename), so its presence marks the segment immutable
// and verified. The newest segment may lack a sidecar — it is the active
// tail, and recovery re-scans it record by record, truncating at the
// first torn or corrupt record (each record carries its own CRC, so a
// crash mid-write loses at most the unsynced suffix).

const (
	segMagic     = "DPSG1\n"
	sidecarMagic = "DPIX1\n"
	// maxRecordLen bounds a single record payload; no legitimate event or
	// vertex record approaches it.
	maxRecordLen = 1 << 24
)

// appendRecord frames a payload into dst.
func appendRecord(dst, payload []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
}

// parseRecord decodes one framed record at the start of buf. It returns
// the payload and the framed length consumed; ok is false when buf holds
// no complete, CRC-intact record at its start (truncated or corrupt).
func parseRecord(buf []byte) (payload []byte, consumed int, ok bool) {
	l, n := binary.Uvarint(buf)
	if n <= 0 || l > maxRecordLen {
		return nil, 0, false
	}
	end := n + int(l) + 4
	if end > len(buf) || end < 0 {
		return nil, 0, false
	}
	payload = buf[n : n+int(l)]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(buf[end-4:end]) {
		return nil, 0, false
	}
	return payload, end, true
}

// scanRecords walks the framed records in data, calling fn for each
// intact one, and returns the byte offset just past the last intact
// record. A torn or corrupt record stops the scan without error — that
// is the crash-recovery path; fn's error aborts the scan and is
// returned.
func scanRecords(data []byte, fn func(payload []byte) error) (int, error) {
	off := 0
	for off < len(data) {
		payload, consumed, ok := parseRecord(data[off:])
		if !ok {
			break
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return off, err
			}
		}
		off += consumed
	}
	return off, nil
}

// readCounters tallies segment read traffic. The counters are cumulative
// over the log's lifetime and atomically updated, so tests and the stats
// endpoint can assert what a cold start or a windowed query actually
// touched (e.g. that skipped segments contribute zero bytes).
type readCounters struct {
	segmentsRead    atomic.Int64
	segmentsSkipped atomic.Int64
	bytesRead       atomic.Int64
	recordsRead     atomic.Int64
}

// segMeta describes one sealed (immutable) segment.
type segMeta struct {
	idx      int
	count    int
	dataSize int64  // bytes in the data region (after the magic)
	dataCRC  uint32 // CRC32 of the data region
}

// activeSeg is the segment currently being appended to.
type activeSeg struct {
	idx   int
	f     *os.File
	count int
	size  int64  // data-region bytes written (including buffered)
	crc   uint32 // running CRC32 of the data region
	buf   []byte // pending unflushed bytes
	// offs holds each record's start offset within the data region, in
	// append order; record logs seal it into the sidecar extra so lookups
	// by ordinal can ReadAt a single record instead of decoding the
	// segment.
	offs []int64
}

// seglogHooks lets the owner ride along with segment lifecycle events:
// sealExtra produces the sidecar extra for the segment being sealed (and
// should reset the owner's per-segment accumulators); onSealed reports a
// sealed segment (at open time, or right after a runtime seal) with its
// extra; onActiveRecord replays each recovered record of the active tail
// at open time so the owner can rebuild its accumulators.
type seglogHooks struct {
	sealExtra      func() []byte
	onSealed       func(m segMeta, extra []byte)
	onActiveRecord func(payload []byte) error
}

// seglog is the shared segmented record machinery. It is not
// goroutine-safe; owners serialize access.
type seglog struct {
	dir    string
	prefix string
	perSeg int
	hooks  seglogHooks

	sealed  []segMeta
	active  *activeSeg
	nextIdx int

	// counters tallies read traffic across all of this log's segments.
	counters readCounters
}

func (l *seglog) dataPath(idx int) string {
	return filepath.Join(l.dir, fmt.Sprintf("%s-%08d.log", l.prefix, idx))
}

func (l *seglog) idxPath(idx int) string {
	return filepath.Join(l.dir, fmt.Sprintf("%s-%08d.idx", l.prefix, idx))
}

// openSeglog opens (or creates) the segmented log with the given file
// prefix inside dir, recovering the active tail.
func openSeglog(dir, prefix string, perSeg int, hooks seglogHooks) (*seglog, error) {
	if perSeg <= 0 {
		return nil, fmt.Errorf("store: records per segment must be positive, got %d", perSeg)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %v", err)
	}
	l := &seglog{dir: dir, prefix: prefix, perSeg: perSeg, hooks: hooks}
	names, err := filepath.Glob(filepath.Join(dir, prefix+"-*.log"))
	if err != nil {
		return nil, fmt.Errorf("store: %v", err)
	}
	idxs := make([]int, 0, len(names))
	for _, name := range names {
		base := filepath.Base(name)
		numPart := strings.TrimSuffix(strings.TrimPrefix(base, prefix+"-"), ".log")
		n, err := strconv.Atoi(numPart)
		if err != nil {
			return nil, fmt.Errorf("store: unexpected segment file %s", base)
		}
		idxs = append(idxs, n)
	}
	sort.Ints(idxs)
	for i, idx := range idxs {
		if i > 0 && idx != idxs[i-1]+1 {
			return nil, fmt.Errorf("store: segment stream has a gap between %d and %d", idxs[i-1], idx)
		}
		last := i == len(idxs)-1
		if err := l.openSegment(idx, last); err != nil {
			return nil, err
		}
	}
	if len(idxs) > 0 {
		l.nextIdx = idxs[len(idxs)-1] + 1
	}
	return l, nil
}

// openSegment loads one existing segment at open time: sealed segments
// are described by their sidecar; an unsealed segment must be the last
// one and is recovered by scanning.
func (l *seglog) openSegment(idx int, last bool) error {
	m, extra, err := readSidecar(l.idxPath(idx), idx)
	if err == nil {
		l.sealed = append(l.sealed, m)
		if l.hooks.onSealed != nil {
			l.hooks.onSealed(m, extra)
		}
		return nil
	}
	if !os.IsNotExist(err) {
		return err
	}
	// No sidecar: recover by scanning. Seals complete before the next
	// segment is created, so only the final segment may be unsealed.
	if !last {
		return fmt.Errorf("store: segment %d is unsealed but not the newest", idx)
	}
	data, err := os.ReadFile(l.dataPath(idx))
	if err != nil {
		return fmt.Errorf("store: %v", err)
	}
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		return fmt.Errorf("store: segment %d has a bad header", idx)
	}
	region := data[len(segMagic):]
	count := 0
	var offs []int64
	consumed := 0
	for consumed < len(region) {
		payload, n, ok := parseRecord(region[consumed:])
		if !ok {
			break
		}
		offs = append(offs, int64(consumed))
		count++
		if l.hooks.onActiveRecord != nil {
			if err := l.hooks.onActiveRecord(payload); err != nil {
				return err
			}
		}
		consumed += n
	}
	good := int64(len(segMagic) + consumed)
	if good < int64(len(data)) {
		// Torn tail: drop the partial record.
		if err := os.Truncate(l.dataPath(idx), good); err != nil {
			return fmt.Errorf("store: truncating torn segment tail: %v", err)
		}
	}
	f, err := os.OpenFile(l.dataPath(idx), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: %v", err)
	}
	l.active = &activeSeg{
		idx:   idx,
		f:     f,
		count: count,
		size:  int64(consumed),
		crc:   crc32.ChecksumIEEE(region[:consumed]),
		offs:  offs,
	}
	return nil
}

// append adds one record, creating a segment on demand and sealing it
// when full.
func (l *seglog) append(payload []byte) error {
	if l.active == nil {
		f, err := os.OpenFile(l.dataPath(l.nextIdx), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err != nil {
			return fmt.Errorf("store: %v", err)
		}
		if _, err := f.WriteString(segMagic); err != nil {
			f.Close()
			return fmt.Errorf("store: %v", err)
		}
		l.active = &activeSeg{idx: l.nextIdx, f: f}
		l.nextIdx++
	}
	a := l.active
	start := len(a.buf)
	a.offs = append(a.offs, a.size)
	a.buf = appendRecord(a.buf, payload)
	rec := a.buf[start:]
	a.crc = crc32.Update(a.crc, crc32.IEEETable, rec)
	a.size += int64(len(rec))
	a.count++
	if len(a.buf) >= 1<<16 {
		if err := l.flush(); err != nil {
			return err
		}
	}
	if a.count >= l.perSeg {
		return l.seal()
	}
	return nil
}

func (l *seglog) flush() error {
	a := l.active
	if a == nil || len(a.buf) == 0 {
		return nil
	}
	if _, err := a.f.Write(a.buf); err != nil {
		return fmt.Errorf("store: %v", err)
	}
	a.buf = a.buf[:0]
	return nil
}

// sync flushes and fsyncs the active segment.
func (l *seglog) sync() error {
	if l.active == nil {
		return nil
	}
	if err := l.flush(); err != nil {
		return err
	}
	if err := l.active.f.Sync(); err != nil {
		return fmt.Errorf("store: %v", err)
	}
	return nil
}

// seal makes the active segment durable and immutable: fsync the data,
// then atomically publish the sidecar.
func (l *seglog) seal() error {
	a := l.active
	if a == nil {
		return nil
	}
	if err := l.sync(); err != nil {
		return err
	}
	if err := a.f.Close(); err != nil {
		return fmt.Errorf("store: %v", err)
	}
	var extra []byte
	if l.hooks.sealExtra != nil {
		extra = l.hooks.sealExtra()
	}
	m := segMeta{idx: a.idx, count: a.count, dataSize: a.size, dataCRC: a.crc}
	if err := writeSidecar(l.idxPath(a.idx), m, extra); err != nil {
		return err
	}
	l.sealed = append(l.sealed, m)
	l.active = nil
	if l.hooks.onSealed != nil {
		l.hooks.onSealed(m, extra)
	}
	return nil
}

// readChunk is the streaming window size for sealed-segment reads.
const readChunk = 64 << 10

// readSegment streams and verifies a sealed segment's records: the file
// is read in readChunk-sized windows and each record is decoded in place
// as soon as the window completes it, so the resident footprint is one
// window (plus one oversized record, when a payload exceeds it) instead
// of the whole segment. A running CRC over the data region is checked
// against the sidecar at the end, together with the record count and
// region size, preserving the whole-segment corruption guarantees of the
// old slurping reader. Payloads are only valid during the callback.
func (l *seglog) readSegment(m segMeta, fn func(payload []byte) error) error {
	f, err := os.Open(l.dataPath(m.idx))
	if err != nil {
		return fmt.Errorf("store: %v", err)
	}
	defer f.Close()
	var magic [len(segMagic)]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil || string(magic[:]) != segMagic {
		return fmt.Errorf("store: segment %d has a bad header", m.idx)
	}
	l.counters.segmentsRead.Add(1)
	l.counters.bytesRead.Add(int64(len(segMagic)))

	var (
		window []byte // buffered tail: zero or one partial record + fresh bytes
		total  int64  // data-region bytes consumed into records
		count  int
		crc    uint32
		sawEOF bool
	)
	for {
		// Decode every complete record in the window, then compact the
		// partial remainder (if any) to the front.
		off := 0
		for off < len(window) {
			payload, consumed, ok := parseRecord(window[off:])
			if !ok {
				break
			}
			count++
			if err := fn(payload); err != nil {
				return err
			}
			crc = crc32.Update(crc, crc32.IEEETable, window[off:off+consumed])
			total += int64(consumed)
			off += consumed
		}
		window = append(window[:0], window[off:]...)
		if sawEOF {
			break
		}
		// Refill one chunk past the remainder; a record larger than the
		// chunk grows the window until it completes.
		if cap(window) < len(window)+readChunk {
			grown := make([]byte, len(window), len(window)+readChunk)
			copy(grown, window)
			window = grown
		}
		n, err := io.ReadFull(f, window[len(window):len(window)+readChunk])
		window = window[:len(window)+n]
		l.counters.bytesRead.Add(int64(n))
		switch err {
		case nil:
		case io.EOF, io.ErrUnexpectedEOF:
			sawEOF = true
		default:
			return fmt.Errorf("store: reading segment %d: %v", m.idx, err)
		}
	}
	l.counters.recordsRead.Add(int64(count))
	// The partial-record remainder still contributes to the region CRC and
	// size check: a sealed segment must consist of exactly m.count intact
	// records and nothing else.
	crc = crc32.Update(crc, crc32.IEEETable, window)
	total += int64(len(window))
	if total != m.dataSize || crc != m.dataCRC {
		return fmt.Errorf("store: segment %d is corrupt (size or checksum mismatch)", m.idx)
	}
	if len(window) != 0 || count != m.count {
		return fmt.Errorf("store: segment %d is corrupt (%d of %d records intact)", m.idx, count, m.count)
	}
	return nil
}

// activeSnapshot returns a consistent copy of the active segment's
// records written so far (flushing pending bytes first).
func (l *seglog) activeSnapshot() ([]byte, error) {
	if l.active == nil {
		return nil, nil
	}
	if err := l.flush(); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(l.dataPath(l.active.idx))
	if err != nil {
		return nil, fmt.Errorf("store: %v", err)
	}
	if len(data) < len(segMagic) {
		return nil, fmt.Errorf("store: segment %d has a bad header", l.active.idx)
	}
	return data[len(segMagic):], nil
}

// gcPrefix removes the first n sealed segments from disk and from the
// in-memory list. Callers guarantee no concurrent readers.
func (l *seglog) gcPrefix(n int) error {
	for i := 0; i < n; i++ {
		m := l.sealed[i]
		if err := os.Remove(l.dataPath(m.idx)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("store: %v", err)
		}
		if err := os.Remove(l.idxPath(m.idx)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("store: %v", err)
		}
	}
	l.sealed = append([]segMeta(nil), l.sealed[n:]...)
	return nil
}

func (l *seglog) close() error {
	if l.active == nil {
		return nil
	}
	if err := l.sync(); err != nil {
		return err
	}
	return l.active.f.Close()
}

// writeSidecar atomically publishes a sealed segment's sidecar.
func writeSidecar(path string, m segMeta, extra []byte) error {
	var body bytes.Buffer
	body.WriteString(sidecarMagic)
	bodyStart := body.Len()
	writeUvarint(&body, uint64(m.count))
	writeUvarint(&body, uint64(m.dataSize))
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], m.dataCRC)
	body.Write(crcBuf[:])
	writeUvarint(&body, uint64(len(extra)))
	body.Write(extra)
	binary.LittleEndian.PutUint32(crcBuf[:], crc32.ChecksumIEEE(body.Bytes()[bodyStart:]))
	body.Write(crcBuf[:])

	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, body.Bytes(), 0o644); err != nil {
		return fmt.Errorf("store: %v", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("store: %v", err)
	}
	return syncDir(filepath.Dir(path))
}

// readSidecar parses a sealed segment's sidecar.
func readSidecar(path string, idx int) (segMeta, []byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return segMeta{}, nil, err
	}
	if len(data) < len(sidecarMagic)+4 || string(data[:len(sidecarMagic)]) != sidecarMagic {
		return segMeta{}, nil, fmt.Errorf("store: segment %d has a bad sidecar header", idx)
	}
	body := data[len(sidecarMagic) : len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != want {
		return segMeta{}, nil, fmt.Errorf("store: segment %d sidecar is corrupt", idx)
	}
	r := bytes.NewReader(body)
	count, err := binary.ReadUvarint(r)
	if err != nil {
		return segMeta{}, nil, fmt.Errorf("store: segment %d sidecar is corrupt: %v", idx, err)
	}
	dataSize, err := binary.ReadUvarint(r)
	if err != nil {
		return segMeta{}, nil, fmt.Errorf("store: segment %d sidecar is corrupt: %v", idx, err)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
		return segMeta{}, nil, fmt.Errorf("store: segment %d sidecar is corrupt: %v", idx, err)
	}
	extraLen, err := binary.ReadUvarint(r)
	if err != nil || extraLen > uint64(r.Len()) {
		return segMeta{}, nil, fmt.Errorf("store: segment %d sidecar is corrupt", idx)
	}
	extra := make([]byte, extraLen)
	if _, err := io.ReadFull(r, extra); err != nil && extraLen > 0 {
		return segMeta{}, nil, fmt.Errorf("store: segment %d sidecar is corrupt: %v", idx, err)
	}
	return segMeta{
		idx:      idx,
		count:    int(count),
		dataSize: int64(dataSize),
		dataCRC:  binary.LittleEndian.Uint32(crcBuf[:]),
	}, extra, nil
}

// syncDir fsyncs a directory so renames within it are durable; best
// effort on filesystems that reject directory fsync.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync() //nolint:errcheck // best effort
	return nil
}
