package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"strings"
	"sync"
)

// DefaultRecordsPerSegment is the seal threshold for record logs; vertex
// records are larger than base events, so shard segments seal sooner.
const DefaultRecordsPerSegment = 1024

// RecordLogOption configures a RecordLog.
type RecordLogOption func(*RecordLog)

// WithRecordsPerSegment sets the number of records after which a record
// log segment seals.
func WithRecordsPerSegment(n int) RecordLogOption {
	return func(l *RecordLog) { l.perSeg = n }
}

// RecordLog is an append-only log of opaque binary records over the
// shared segment machinery. Records are addressed by their ordinal (the
// zero-based append position), which is how provenance shards key
// vertexes: a vertex's ID is its ordinal in the shard's record log, so
// a stored graph needs no separate ID index. Lookups by ordinal cache
// the containing segment, matching the access pattern of lazy
// materialization (Zhao/Subotić/Scholz): reconstructing one derivation
// touches a handful of neighboring records, not the whole log.
type RecordLog struct {
	mu     sync.Mutex
	sl     *seglog
	perSeg int
	count  int

	// extras holds each sealed segment's sidecar extra (parallel to
	// sl.sealed): the delta-encoded record offsets sealed with the
	// segment. Empty for segments written before offsets existed — those
	// fall back to the whole-segment decode path.
	extras [][]byte

	// cache of one decoded segment for Get (legacy segments without a
	// sealed offset table).
	cacheIdx  int // segment index, -1 when empty
	cacheBase int // ordinal of the segment's first record
	cacheRecs [][]byte

	// offset-table cache for point reads of one sealed segment: the
	// decoded offsets plus an open read-only handle, so consecutive Gets
	// into the same segment cost one ReadAt each.
	offIdx  int // segment index, -1 when empty
	offVals []int64
	offFile *os.File
}

// OpenRecordLog opens (or creates) the record log with the given file
// name prefix inside dir, recovering a torn active tail exactly like the
// event store does.
func OpenRecordLog(dir, prefix string, opts ...RecordLogOption) (*RecordLog, error) {
	l := &RecordLog{perSeg: DefaultRecordsPerSegment, cacheIdx: -1, offIdx: -1}
	for _, o := range opts {
		o(l)
	}
	opening := true
	sl, err := openSeglog(dir, prefix, l.perSeg, seglogHooks{
		// Seal the active segment's record offsets into the sidecar extra
		// so Get can ReadAt one record instead of decoding the segment.
		// The hook only fires from append, after l.sl is assigned.
		sealExtra: func() []byte {
			return encodeOffsets(l.sl.active.offs)
		},
		// Runtime seals move already-counted records from the active tail
		// into the sealed list; only open-time recovery discovers records.
		onSealed: func(m segMeta, extra []byte) {
			l.extras = append(l.extras, extra)
			if opening {
				l.count += m.count
			}
		},
		onActiveRecord: func(payload []byte) error {
			l.count++
			return nil
		},
	})
	opening = false
	if err != nil {
		return nil, err
	}
	l.sl = sl
	return l, nil
}

// encodeOffsets delta-encodes a sealed segment's record start offsets
// (ascending, so every delta is a small uvarint).
func encodeOffsets(offs []int64) []byte {
	var b bytes.Buffer
	var scratch [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		b.Write(scratch[:n])
	}
	put(uint64(len(offs)))
	prev := int64(0)
	for _, o := range offs {
		put(uint64(o - prev))
		prev = o
	}
	return b.Bytes()
}

// decodeOffsets reverses encodeOffsets. It returns nil for an empty
// extra — a segment sealed before offsets existed — which callers treat
// as "no offset table, decode the segment".
func decodeOffsets(extra []byte) ([]int64, error) {
	if len(extra) == 0 {
		return nil, nil
	}
	r := bytes.NewReader(extra)
	n, err := binary.ReadUvarint(r)
	if err != nil || n > uint64(maxRecordLen) {
		return nil, fmt.Errorf("store: bad record-offset table")
	}
	offs := make([]int64, n)
	prev := uint64(0)
	for i := range offs {
		d, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("store: bad record-offset table: %v", err)
		}
		prev += d
		offs[i] = int64(prev)
	}
	return offs, nil
}

// Append adds one record and returns its ordinal.
func (l *RecordLog) Append(payload []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.sl.append(payload); err != nil {
		return 0, err
	}
	ord := l.count
	l.count++
	// Appending may seal the cache's segment or extend the active one the
	// cache copied; drop the cache rather than track either case.
	if l.sl.active == nil || l.cacheIdx == l.sl.active.idx {
		l.cacheIdx = -1
		l.cacheRecs = nil
	}
	return ord, nil
}

// Count returns the number of records appended so far.
func (l *RecordLog) Count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.count
}

// Get returns the record at the given ordinal. The returned slice is the
// caller's to keep.
func (l *RecordLog) Get(ord int) ([]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if ord < 0 || ord >= l.count {
		return nil, fmt.Errorf("store: record %d out of range (have %d)", ord, l.count)
	}
	if l.cacheIdx >= 0 && ord >= l.cacheBase && ord < l.cacheBase+len(l.cacheRecs) {
		return l.cacheRecs[ord-l.cacheBase], nil
	}
	// Locate the segment holding ord.
	base := 0
	for i, m := range l.sl.sealed {
		if ord < base+m.count {
			if p, ok, err := l.getAt(i, m, ord-base); err != nil {
				return nil, err
			} else if ok {
				return p, nil
			}
			// No sealed offset table (legacy segment): decode the whole
			// segment once and serve from the record cache.
			var recs [][]byte
			err := l.sl.readSegment(m, func(p []byte) error {
				recs = append(recs, append([]byte(nil), p...))
				return nil
			})
			if err != nil {
				return nil, err
			}
			l.cacheIdx, l.cacheBase, l.cacheRecs = m.idx, base, recs
			return recs[ord-base], nil
		}
		base += m.count
	}
	data, err := l.sl.activeSnapshot()
	if err != nil {
		return nil, err
	}
	var recs [][]byte
	if _, err := scanRecords(data, func(p []byte) error {
		recs = append(recs, append([]byte(nil), p...))
		return nil
	}); err != nil {
		return nil, err
	}
	if ord-base >= len(recs) {
		return nil, fmt.Errorf("store: record %d missing from active segment", ord)
	}
	l.cacheIdx, l.cacheBase, l.cacheRecs = l.sl.active.idx, base, recs
	return recs[ord-base], nil
}

// getAt point-reads record j of sealed segment i using the offset table
// sealed into its sidecar: one ReadAt spanning exactly the record's
// frame, CRC-checked by parseRecord. ok is false (with no error) when
// the segment predates offset tables; the caller falls back to decoding
// it. Callers hold l.mu.
func (l *RecordLog) getAt(i int, m segMeta, j int) ([]byte, bool, error) {
	if l.offIdx != m.idx {
		offs, err := decodeOffsets(l.extras[i])
		if err != nil {
			return nil, false, err
		}
		if offs == nil {
			return nil, false, nil
		}
		if len(offs) != m.count {
			return nil, false, fmt.Errorf("store: segment %d offset table has %d entries for %d records", m.idx, len(offs), m.count)
		}
		f, err := os.Open(l.sl.dataPath(m.idx))
		if err != nil {
			return nil, false, fmt.Errorf("store: %v", err)
		}
		if l.offFile != nil {
			l.offFile.Close()
		}
		l.offIdx, l.offVals, l.offFile = m.idx, offs, f
	}
	start := l.offVals[j]
	end := m.dataSize
	if j+1 < len(l.offVals) {
		end = l.offVals[j+1]
	}
	if end <= start {
		return nil, false, fmt.Errorf("store: segment %d offset table is not ascending", m.idx)
	}
	buf := make([]byte, end-start)
	if _, err := l.offFile.ReadAt(buf, int64(len(segMagic))+start); err != nil {
		return nil, false, fmt.Errorf("store: reading record %d of segment %d: %v", j, m.idx, err)
	}
	l.sl.counters.bytesRead.Add(int64(len(buf)))
	payload, consumed, ok := parseRecord(buf)
	if !ok || consumed != len(buf) {
		return nil, false, fmt.Errorf("store: record %d of segment %d is corrupt", j, m.idx)
	}
	l.sl.counters.recordsRead.Add(1)
	return payload, true, nil
}

// Scan streams every record in append order. The payload slice is only
// valid during the callback.
func (l *RecordLog) Scan(fn func(ord int, payload []byte) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	ord := 0
	for _, m := range l.sl.sealed {
		err := l.sl.readSegment(m, func(p []byte) error {
			err := fn(ord, p)
			ord++
			return err
		})
		if err != nil {
			return err
		}
	}
	data, err := l.sl.activeSnapshot()
	if err != nil {
		return err
	}
	_, err = scanRecords(data, func(p []byte) error {
		err := fn(ord, p)
		ord++
		return err
	})
	return err
}

// Sync makes all appended records durable.
func (l *RecordLog) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sl.sync()
}

// Close syncs and closes the log.
func (l *RecordLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.offFile != nil {
		l.offFile.Close()
		l.offIdx, l.offVals, l.offFile = -1, nil, nil
	}
	return l.sl.close()
}

// SanitizeName maps an arbitrary shard or node name onto a filesystem-
// safe file prefix: runs of characters outside [A-Za-z0-9_.] become a
// single underscore ('-' is excluded because it separates the prefix
// from the segment number in file names), and a leading dot is escaped
// so the prefix never hides the file. Distinct names that sanitize
// identically would collide, so callers append a disambiguating ordinal
// where that matters.
func SanitizeName(name string) string {
	var b strings.Builder
	lastUnderscore := false
	for _, r := range name {
		ok := r == '_' || r == '.' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
			lastUnderscore = false
		} else if !lastUnderscore {
			b.WriteByte('_')
			lastUnderscore = true
		}
	}
	s := b.String()
	if s == "" || s[0] == '.' {
		s = "_" + s
	}
	return s
}
