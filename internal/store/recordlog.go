package store

import (
	"fmt"
	"strings"
	"sync"
)

// DefaultRecordsPerSegment is the seal threshold for record logs; vertex
// records are larger than base events, so shard segments seal sooner.
const DefaultRecordsPerSegment = 1024

// RecordLogOption configures a RecordLog.
type RecordLogOption func(*RecordLog)

// WithRecordsPerSegment sets the number of records after which a record
// log segment seals.
func WithRecordsPerSegment(n int) RecordLogOption {
	return func(l *RecordLog) { l.perSeg = n }
}

// RecordLog is an append-only log of opaque binary records over the
// shared segment machinery. Records are addressed by their ordinal (the
// zero-based append position), which is how provenance shards key
// vertexes: a vertex's ID is its ordinal in the shard's record log, so
// a stored graph needs no separate ID index. Lookups by ordinal cache
// the containing segment, matching the access pattern of lazy
// materialization (Zhao/Subotić/Scholz): reconstructing one derivation
// touches a handful of neighboring records, not the whole log.
type RecordLog struct {
	mu     sync.Mutex
	sl     *seglog
	perSeg int
	count  int

	// cache of one decoded segment for Get.
	cacheIdx  int // segment index, -1 when empty
	cacheBase int // ordinal of the segment's first record
	cacheRecs [][]byte
}

// OpenRecordLog opens (or creates) the record log with the given file
// name prefix inside dir, recovering a torn active tail exactly like the
// event store does.
func OpenRecordLog(dir, prefix string, opts ...RecordLogOption) (*RecordLog, error) {
	l := &RecordLog{perSeg: DefaultRecordsPerSegment, cacheIdx: -1}
	for _, o := range opts {
		o(l)
	}
	opening := true
	sl, err := openSeglog(dir, prefix, l.perSeg, seglogHooks{
		// Runtime seals move already-counted records from the active tail
		// into the sealed list; only open-time recovery discovers records.
		onSealed: func(m segMeta, extra []byte) {
			if opening {
				l.count += m.count
			}
		},
		onActiveRecord: func(payload []byte) error {
			l.count++
			return nil
		},
	})
	opening = false
	if err != nil {
		return nil, err
	}
	l.sl = sl
	return l, nil
}

// Append adds one record and returns its ordinal.
func (l *RecordLog) Append(payload []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.sl.append(payload); err != nil {
		return 0, err
	}
	ord := l.count
	l.count++
	// Appending may seal the cache's segment or extend the active one the
	// cache copied; drop the cache rather than track either case.
	if l.sl.active == nil || l.cacheIdx == l.sl.active.idx {
		l.cacheIdx = -1
		l.cacheRecs = nil
	}
	return ord, nil
}

// Count returns the number of records appended so far.
func (l *RecordLog) Count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.count
}

// Get returns the record at the given ordinal. The returned slice is the
// caller's to keep.
func (l *RecordLog) Get(ord int) ([]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if ord < 0 || ord >= l.count {
		return nil, fmt.Errorf("store: record %d out of range (have %d)", ord, l.count)
	}
	if l.cacheIdx >= 0 && ord >= l.cacheBase && ord < l.cacheBase+len(l.cacheRecs) {
		return l.cacheRecs[ord-l.cacheBase], nil
	}
	// Locate the segment holding ord.
	base := 0
	for _, m := range l.sl.sealed {
		if ord < base+m.count {
			var recs [][]byte
			err := l.sl.readSegment(m, func(p []byte) error {
				recs = append(recs, append([]byte(nil), p...))
				return nil
			})
			if err != nil {
				return nil, err
			}
			l.cacheIdx, l.cacheBase, l.cacheRecs = m.idx, base, recs
			return recs[ord-base], nil
		}
		base += m.count
	}
	data, err := l.sl.activeSnapshot()
	if err != nil {
		return nil, err
	}
	var recs [][]byte
	if _, err := scanRecords(data, func(p []byte) error {
		recs = append(recs, append([]byte(nil), p...))
		return nil
	}); err != nil {
		return nil, err
	}
	if ord-base >= len(recs) {
		return nil, fmt.Errorf("store: record %d missing from active segment", ord)
	}
	l.cacheIdx, l.cacheBase, l.cacheRecs = l.sl.active.idx, base, recs
	return recs[ord-base], nil
}

// Scan streams every record in append order. The payload slice is only
// valid during the callback.
func (l *RecordLog) Scan(fn func(ord int, payload []byte) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	ord := 0
	for _, m := range l.sl.sealed {
		err := l.sl.readSegment(m, func(p []byte) error {
			err := fn(ord, p)
			ord++
			return err
		})
		if err != nil {
			return err
		}
	}
	data, err := l.sl.activeSnapshot()
	if err != nil {
		return err
	}
	_, err = scanRecords(data, func(p []byte) error {
		err := fn(ord, p)
		ord++
		return err
	})
	return err
}

// Sync makes all appended records durable.
func (l *RecordLog) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sl.sync()
}

// Close syncs and closes the log.
func (l *RecordLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sl.close()
}

// SanitizeName maps an arbitrary shard or node name onto a filesystem-
// safe file prefix: runs of characters outside [A-Za-z0-9_.] become a
// single underscore ('-' is excluded because it separates the prefix
// from the segment number in file names), and a leading dot is escaped
// so the prefix never hides the file. Distinct names that sanitize
// identically would collide, so callers append a disambiguating ordinal
// where that matters.
func SanitizeName(name string) string {
	var b strings.Builder
	lastUnderscore := false
	for _, r := range name {
		ok := r == '_' || r == '.' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
			lastUnderscore = false
		} else if !lastUnderscore {
			b.WriteByte('_')
			lastUnderscore = true
		}
	}
	s := b.String()
	if s == "" || s[0] == '.' {
		s = "_" + s
	}
	return s
}
