package provenance

import (
	"strings"
	"testing"

	"repro/internal/ndlog"
)

// runFwd runs a small forwarding scenario and returns the graph: packets
// at s1 follow the highest-priority matching flow entry toward h1/h2.
func runFwd(t *testing.T) (*ndlog.Engine, *Graph) {
	t.Helper()
	prog := ndlog.MustParse(`
table flowEntry/3 base mutable;   // (prio, match, nextNode)
table packet/1 event base;        // (dstIP)

rule fw packet(@Nxt, Dst) :-
    packet(@Sw, Dst),
    flowEntry(@Sw, Prio, M, Nxt),
    matches(Dst, M),
    argmax Prio.
`)
	rec := NewRecorder(prog)
	e := ndlog.New(prog, rec)
	mp := ndlog.MustParsePrefix
	ip := ndlog.MustParseIP
	e.ScheduleInsert("s1", ndlog.NewTuple("flowEntry", ndlog.Int(10), mp("4.3.2.0/24"), ndlog.Str("s2")), 0)
	e.ScheduleInsert("s1", ndlog.NewTuple("flowEntry", ndlog.Int(1), mp("0.0.0.0/0"), ndlog.Str("s3")), 0)
	e.ScheduleInsert("s2", ndlog.NewTuple("flowEntry", ndlog.Int(1), mp("0.0.0.0/0"), ndlog.Str("h1")), 0)
	e.ScheduleInsert("s3", ndlog.NewTuple("flowEntry", ndlog.Int(1), mp("0.0.0.0/0"), ndlog.Str("h2")), 0)
	e.ScheduleInsert("s1", ndlog.NewTuple("packet", ip("4.3.2.1")), 10)
	e.ScheduleInsert("s1", ndlog.NewTuple("packet", ip("4.3.3.1")), 11)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return e, rec.Graph()
}

func TestRecorderBuildsGraph(t *testing.T) {
	_, g := runFwd(t)
	if g.NumVertexes() == 0 {
		t.Fatal("empty graph")
	}
	counts := map[VertexType]int{}
	g.Vertexes(func(v *Vertex) { counts[v.Type]++ })
	// 5 base inserts, each with an APPEAR; state tuples add EXISTs.
	if counts[Insert] != 6 {
		t.Errorf("INSERT count = %d, want 6", counts[Insert])
	}
	if counts[Exist] != 4 {
		t.Errorf("EXIST count = %d, want 4 (flow entries only)", counts[Exist])
	}
	// Each packet takes 2 hops: 2 derivations each.
	if counts[Derive] != 4 {
		t.Errorf("DERIVE count = %d, want 4", counts[Derive])
	}
	// Appears: 6 base + 4 derived packet arrivals.
	if counts[Appear] != 10 {
		t.Errorf("APPEAR count = %d, want 10", counts[Appear])
	}
}

func TestTreeProjection(t *testing.T) {
	_, g := runFwd(t)
	// The packet 4.3.2.1 arrives at h1.
	arr := g.LastAppear("h1", ndlog.NewTuple("packet", ndlog.MustParseIP("4.3.2.1")))
	if arr == nil {
		t.Fatal("packet did not arrive at h1")
	}
	tree := g.Tree(arr.ID)
	if tree == nil {
		t.Fatal("no tree")
	}
	// Root is the APPEAR; child DERIVE; grandchildren include the
	// upstream packet APPEAR and the flow-entry EXIST.
	if tree.Vertex.Type != Appear {
		t.Errorf("root type = %s", tree.Vertex.Type)
	}
	if len(tree.Children) != 1 || tree.Children[0].Vertex.Type != Derive {
		t.Fatalf("root child = %+v", tree.Children)
	}
	d := tree.Children[0]
	if len(d.Children) != 2 {
		t.Fatalf("derive children = %d, want 2 (packet + flow entry)", len(d.Children))
	}
	// Tree size: APPEAR+DERIVE per hop (2 hops), packet APPEARs, flow
	// entry EXIST+APPEAR+INSERT chains, initial INSERT.
	if tree.Size() != 12 {
		t.Errorf("tree size = %d, want 12\n%s", tree.Size(), tree)
	}
	if tree.Depth() < 5 {
		t.Errorf("tree depth = %d, want >= 5", tree.Depth())
	}
	// Parent pointers are consistent.
	tree.Walk(func(n *Tree) {
		for _, c := range n.Children {
			if c.Parent != n {
				t.Error("broken parent pointer")
			}
		}
	})
	if tree.Children[0].Root() != tree {
		t.Error("Root() broken")
	}
}

func TestFindSeed(t *testing.T) {
	_, g := runFwd(t)
	arr := g.LastAppear("h1", ndlog.NewTuple("packet", ndlog.MustParseIP("4.3.2.1")))
	tree := g.Tree(arr.ID)
	seed, err := tree.FindSeed()
	if err != nil {
		t.Fatal(err)
	}
	if seed.Vertex.Type != Insert {
		t.Fatalf("seed type = %s, want INSERT", seed.Vertex.Type)
	}
	if seed.Vertex.Tuple.Table != "packet" {
		t.Errorf("seed tuple = %s, want the packet (the external stimulus), not config", seed.Vertex.Tuple)
	}
	if seed.Vertex.Node != "s1" {
		t.Errorf("seed node = %s, want s1 (the ingress)", seed.Vertex.Node)
	}
	// The seed is the packet, NOT the flow entries — even though flow
	// entries were inserted too, they appeared earlier.
	if seed.Vertex.Tuple.Args[0] != ndlog.MustParseIP("4.3.2.1") {
		t.Errorf("seed = %s", seed.Vertex.Tuple)
	}
}

func TestFindSeedAgreesWithTriggerMarkers(t *testing.T) {
	_, g := runFwd(t)
	arr := g.LastAppear("h2", ndlog.NewTuple("packet", ndlog.MustParseIP("4.3.3.1")))
	tree := g.Tree(arr.ID)
	// Walk by trigger markers instead of timestamps.
	cur := tree
	for cur.Vertex.Type != Insert {
		switch cur.Vertex.Type {
		case Appear, Exist:
			cur = cur.Children[0]
		case Derive:
			if cur.Vertex.Trigger < 0 {
				t.Fatal("derive without trigger marker")
			}
			cur = cur.Children[cur.Vertex.Trigger]
		}
	}
	seed, err := tree.FindSeed()
	if err != nil {
		t.Fatal(err)
	}
	if seed.Vertex != cur.Vertex {
		t.Errorf("timestamp-based seed %s differs from trigger-based %s", seed.Vertex, cur.Vertex)
	}
}

func TestTriggerChain(t *testing.T) {
	_, g := runFwd(t)
	arr := g.LastAppear("h1", ndlog.NewTuple("packet", ndlog.MustParseIP("4.3.2.1")))
	tree := g.Tree(arr.ID)
	chain, err := tree.TriggerChain()
	if err != nil {
		t.Fatal(err)
	}
	if chain[0] != tree {
		t.Error("chain must start at the root")
	}
	if chain[len(chain)-1].Vertex.Type != Insert {
		t.Error("chain must end at the seed INSERT")
	}
	// The chain alternates through the hops: every packet APPEAR on it.
	var hops []string
	for _, n := range chain {
		if n.Vertex.Type == Appear && n.Vertex.Tuple.Table == "packet" {
			hops = append(hops, n.Vertex.Node)
		}
	}
	want := []string{"h1", "s2", "s1"}
	if len(hops) != len(want) {
		t.Fatalf("hops on chain = %v, want %v", hops, want)
	}
	for i := range want {
		if hops[i] != want[i] {
			t.Fatalf("hops = %v, want %v", hops, want)
		}
	}
}

func TestGraphWellFormedness(t *testing.T) {
	_, g := runFwd(t)
	g.Vertexes(func(v *Vertex) {
		// Acyclicity: children strictly precede parents in ID order.
		for _, c := range v.Children {
			if c >= v.ID {
				t.Errorf("vertex %d has child %d >= itself", v.ID, c)
			}
		}
		switch v.Type {
		case Derive:
			if len(v.Children) == 0 {
				t.Errorf("DERIVE %s has no children", v.Tuple)
			}
			if v.Trigger < 0 || v.Trigger >= len(v.Children) {
				t.Errorf("DERIVE %s has bad trigger %d", v.Tuple, v.Trigger)
			}
			for _, c := range v.Children {
				ct := g.Vertex(c).Type
				if ct != Exist && ct != Appear {
					t.Errorf("DERIVE child is %s", ct)
				}
			}
		case Appear:
			if len(v.Children) != 1 {
				t.Errorf("APPEAR %s has %d causes, want 1", v.Tuple, len(v.Children))
			} else {
				ct := g.Vertex(v.Children[0]).Type
				if ct != Insert && ct != Derive {
					t.Errorf("APPEAR child is %s", ct)
				}
			}
		case Exist:
			if len(v.Children) != 1 || g.Vertex(v.Children[0]).Type != Appear {
				t.Errorf("EXIST %s has bad children", v.Tuple)
			}
		case Insert, Delete:
			if len(v.Children) != 0 {
				t.Errorf("%s must be a leaf", v.Type)
			}
		}
	})
}

func TestExistIntervalClosesOnDelete(t *testing.T) {
	prog := ndlog.MustParse(`
table cfg/1 base mutable;
table d/1;
rule r d(X) :- cfg(X).
`)
	rec := NewRecorder(prog)
	e := ndlog.New(prog, rec)
	e.ScheduleInsert("n", ndlog.NewTuple("cfg", ndlog.Int(1)), 0)
	e.ScheduleDelete("n", ndlog.NewTuple("cfg", ndlog.Int(1)), 10)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	g := rec.Graph()
	var existClosed, underives, disappears, deletes int
	g.Vertexes(func(v *Vertex) {
		switch v.Type {
		case Exist:
			if !v.Span.Open {
				existClosed++
				if v.Span.To.T != 10 {
					t.Errorf("EXIST closed at %v, want t=10", v.Span.To)
				}
			}
		case Underive:
			underives++
			if len(v.Children) != 1 || g.Vertex(v.Children[0]).Type != Disappear {
				t.Error("UNDERIVE must be caused by a DISAPPEAR")
			}
		case Disappear:
			disappears++
		case Delete:
			deletes++
		}
	})
	if existClosed != 2 {
		t.Errorf("closed EXISTs = %d, want 2", existClosed)
	}
	if underives != 1 || disappears != 2 || deletes != 1 {
		t.Errorf("underives/disappears/deletes = %d/%d/%d, want 1/2/1", underives, disappears, deletes)
	}
}

func TestFindAppears(t *testing.T) {
	_, g := runFwd(t)
	pkts := g.FindAppears("h1", "packet", nil)
	if len(pkts) != 1 {
		t.Fatalf("packets at h1 = %d, want 1", len(pkts))
	}
	filtered := g.FindAppears("h1", "packet", func(tu ndlog.Tuple) bool {
		return tu.Args[0] == ndlog.MustParseIP("9.9.9.9")
	})
	if len(filtered) != 0 {
		t.Error("filter must apply")
	}
	if got := g.FindAppears("nowhere", "packet", nil); got != nil {
		t.Error("unknown node should yield nothing")
	}
}

func TestAppearVertexesChronological(t *testing.T) {
	prog := ndlog.MustParse("table a/1 base mutable;")
	rec := NewRecorder(prog)
	e := ndlog.New(prog, rec)
	tup := ndlog.NewTuple("a", ndlog.Int(1))
	e.ScheduleInsert("n", tup, 0)
	e.ScheduleDelete("n", tup, 5)
	e.ScheduleInsert("n", tup, 10)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	ids := rec.Graph().AppearVertexes("n", tup)
	if len(ids) != 2 {
		t.Fatalf("appearances = %d, want 2", len(ids))
	}
	a0 := rec.Graph().Vertex(ids[0])
	a1 := rec.Graph().Vertex(ids[1])
	if !a0.At.Before(a1.At) {
		t.Error("appearances out of order")
	}
	if last := rec.Graph().LastAppear("n", tup); last.ID != ids[1] {
		t.Error("LastAppear should return the most recent")
	}
}

func TestVertexStringAndLabel(t *testing.T) {
	_, g := runFwd(t)
	var sawExist, sawDerive bool
	g.Vertexes(func(v *Vertex) {
		s := v.String()
		l := v.Label()
		if strings.Contains(l, "t0.") || strings.Contains(l, "@") {
			t.Errorf("label must not contain timestamps: %s", l)
		}
		switch v.Type {
		case Exist:
			sawExist = true
			if !strings.HasPrefix(s, "EXIST(") {
				t.Errorf("exist rendering: %s", s)
			}
		case Derive:
			sawDerive = true
			if !strings.Contains(l, "fw") {
				t.Errorf("derive label should name the rule: %s", l)
			}
		}
	})
	if !sawExist || !sawDerive {
		t.Error("scenario should produce EXIST and DERIVE vertexes")
	}
}

func TestBuilderReportedProvenance(t *testing.T) {
	spec := ndlog.MustParse(`
table input/1 base;
table config/2 base mutable;
table output/2;
rule produce output(W, R) :- input(W), config(K, N), R := hashmod(W, N).
`)
	b := NewBuilder(spec)
	in, err := b.Insert("worker", ndlog.NewTuple("input", ndlog.Str("word")), 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := b.Insert("master", ndlog.NewTuple("config", ndlog.Str("reducers"), ndlog.Int(4)), 0)
	if err != nil {
		t.Fatal(err)
	}
	r := ndlog.Int(ndlog.Hash64(ndlog.Str("word")) % 4)
	out, err := b.Derive("produce", "worker", ndlog.NewTuple("output", ndlog.Str("word"), r), 5, []ndlog.At{in, cfg}, -1)
	if err != nil {
		t.Fatal(err)
	}
	g := b.Graph()
	tree := g.Tree(g.LastAppear("worker", out.Tuple).ID)
	if tree.Size() != 8 {
		t.Errorf("reported tree size = %d, want 8\n%s", tree.Size(), tree)
	}
	seed, err := tree.FindSeed()
	if err != nil {
		t.Fatal(err)
	}
	// trigger -1 picks the latest body occurrence: the config appeared
	// after the input, so the seed is the config entry.
	if seed.Vertex.Tuple.Table != "config" {
		t.Errorf("seed = %s, want the config tuple", seed.Vertex.Tuple)
	}
}

func TestBuilderValidation(t *testing.T) {
	spec := ndlog.MustParse(`
table in/1 base;
table out/1;
rule r out(X) :- in(X).
`)
	b := NewBuilder(spec)
	if _, err := b.Insert("n", ndlog.NewTuple("nosuch", ndlog.Int(1)), 0); err == nil {
		t.Error("undeclared table must fail")
	}
	if _, err := b.Insert("n", ndlog.NewTuple("in", ndlog.Int(1), ndlog.Int(2)), 0); err == nil {
		t.Error("bad arity must fail")
	}
	in, _ := b.Insert("n", ndlog.NewTuple("in", ndlog.Int(1)), 0)
	if _, err := b.Derive("nosuchrule", "n", ndlog.NewTuple("out", ndlog.Int(1)), 1, []ndlog.At{in}, 0); err == nil {
		t.Error("unknown rule must fail")
	}
	if _, err := b.Derive("r", "n", ndlog.NewTuple("out", ndlog.Int(1)), 1, nil, -1); err == nil {
		t.Error("empty body must fail")
	}
	if _, err := b.Derive("r", "n", ndlog.NewTuple("out", ndlog.Int(1)), 1, []ndlog.At{in}, 7); err == nil {
		t.Error("out-of-range trigger must fail")
	}
	if _, err := b.Derive("r", "n", ndlog.NewTuple("out", ndlog.Int(1)), 1, []ndlog.At{in}, 0); err != nil {
		t.Errorf("valid derivation failed: %v", err)
	}
}

func TestGraphVertexOutOfRange(t *testing.T) {
	g := NewGraph()
	if g.Vertex(-1) != nil || g.Vertex(0) != nil {
		t.Error("out-of-range Vertex must return nil")
	}
	if g.Tree(0) != nil {
		t.Error("tree of missing vertex must be nil")
	}
}

func TestTreeSizeNil(t *testing.T) {
	var tr *Tree
	if tr.Size() != 0 || tr.Depth() != 0 {
		t.Error("nil tree has size/depth 0")
	}
}

func TestTreeDOT(t *testing.T) {
	_, g := runFwd(t)
	arr := g.LastAppear("h1", ndlog.NewTuple("packet", ndlog.MustParseIP("4.3.2.1")))
	tree := g.Tree(arr.ID)
	dot := tree.DOT("sdn1")
	for _, frag := range []string{"digraph", "INSERT", "DERIVE", "color=blue", "->"} {
		if !strings.Contains(dot, frag) {
			t.Errorf("DOT output missing %q", frag)
		}
	}
	// Edge count = vertex count - 1 for a tree.
	if got := strings.Count(dot, "->"); got != tree.Size()-1 {
		t.Errorf("edges = %d, want %d", got, tree.Size()-1)
	}
	var nilTree *Tree
	if err := nilTree.WriteDOT(&strings.Builder{}, "x"); err == nil {
		t.Error("nil tree must error")
	}
}

func TestExplain(t *testing.T) {
	_, g := runFwd(t)
	arr := g.LastAppear("h1", ndlog.NewTuple("packet", ndlog.MustParseIP("4.3.2.1")))
	tree := g.Tree(arr.ID)
	out := tree.Explain()
	for _, frag := range []string{
		"Why did packet(4.3.2.1)",
		"entered the system at s1",
		"rule fw fired on s1",
		"rule fw fired on s2",
		"because:",
		"flowEntry",
		"vertexes",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("explanation missing %q:\n%s", frag, out)
		}
	}
	// The narration is ordered: ingress before delivery.
	if strings.Index(out, "fired on s1") > strings.Index(out, "fired on s2") {
		t.Error("steps out of order")
	}
}
