package provenance

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/ndlog"
)

// cowSerialize renders every vertex of a graph, ID first, so two graphs
// compare byte-identical exactly when their vertexes are identical.
func cowSerialize(g *Graph) string {
	var sb strings.Builder
	g.Vertexes(func(v *Vertex) {
		fmt.Fprintf(&sb, "%d %s trig=%d kids=%v\n", v.ID, v.String(), v.Trigger, v.Children)
	})
	return sb.String()
}

// TestGraphSealedRejectsRecord pins the seal contract at the graph layer:
// recording into a sealed graph is a bug (it would corrupt every live
// fork sharing the vertex arena) and must panic, not silently append.
func TestGraphSealedRejectsRecord(t *testing.T) {
	_, g := runFwd(t)
	rec := NewRecorder(ndlog.MustParse(`table x/1 base;`))
	rec.Seal()
	if !rec.Sealed() {
		t.Fatal("Seal did not mark the recorder sealed")
	}
	_ = g
	defer func() {
		if recover() == nil {
			t.Error("recording into a sealed graph did not panic")
		}
	}()
	rec.graph.add(&Vertex{Type: Exist, Trigger: -1})
}

// TestRecorderCoWForkLayers drives a sealed recorder through two
// generations of forks — a CoW fork, then a deep fork of that fork (the
// overlay must materialize) — and requires every layer to agree with a
// straight-through run.
func TestRecorderCoWForkLayers(t *testing.T) {
	prog := ndlog.MustParse(`
table link/2 base mutable;
table reach/2;
rule direct reach(@S, S, D) :- link(@S, S, D).
`)
	drive := func(rec *Recorder, extra bool) *ndlog.Engine {
		e := ndlog.New(prog, rec, ndlog.WithSeqBand(ndlog.SeqBandDefault))
		if err := e.ScheduleInsert("a", ndlog.NewTuple("link", ndlog.Str("a"), ndlog.Str("b")), 0); err != nil {
			t.Fatal(err)
		}
		if err := e.ScheduleDelete("a", ndlog.NewTuple("link", ndlog.Str("a"), ndlog.Str("b")), 2); err != nil {
			t.Fatal(err)
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		if extra {
			if err := e.ScheduleInsert("a", ndlog.NewTuple("link", ndlog.Str("a"), ndlog.Str("c")), 4); err != nil {
				t.Fatal(err)
			}
			if err := e.Run(); err != nil {
				t.Fatal(err)
			}
		}
		return e
	}

	// Straight-through references, with and without the suffix.
	refBase := NewRecorder(prog)
	drive(refBase, false)
	wantBase := cowSerialize(refBase.Graph())
	refFull := NewRecorder(prog)
	drive(refFull, true)
	wantFull := cowSerialize(refFull.Graph())

	// Prefix, sealed. The fork records the suffix (including a disappear,
	// which tombstones an open-exist entry inherited from the base).
	rec := NewRecorder(prog)
	e := drive(rec, false)
	rec.Seal()
	e.Seal()
	frec := rec.Fork()
	f := e.Fork(frec)
	if err := f.ScheduleInsert("a", ndlog.NewTuple("link", ndlog.Str("a"), ndlog.Str("c")), 4); err != nil {
		t.Fatal(err)
	}
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	if got := cowSerialize(frec.Graph()); got != wantFull {
		t.Errorf("CoW fork graph differs from straight-through:\ngot:\n%s\nwant:\n%s", got, wantFull)
	}
	if got := cowSerialize(rec.Graph()); got != wantBase {
		t.Errorf("sealed base graph perturbed by fork:\ngot:\n%s\nwant:\n%s", got, wantBase)
	}

	// Deep fork of the CoW fork: the overlay chain must materialize into a
	// self-contained graph that reads identically.
	deep := frec.Fork()
	if got := cowSerialize(deep.Graph()); got != wantFull {
		t.Errorf("deep fork of CoW fork differs:\ngot:\n%s\nwant:\n%s", got, wantFull)
	}

	// And the materialized copy still answers indexed queries.
	if v := deep.Graph().LastAppear("a", ndlog.NewTuple("reach", ndlog.Str("a"), ndlog.Str("c"))); v == nil {
		t.Error("deep fork of CoW fork lost the appearsByTuple index")
	}
}
