package provenance

import (
	"testing"

	"repro/internal/ndlog"
)

func TestFingerprintsNonZeroAndCached(t *testing.T) {
	_, g := runFwd(t)
	g.Vertexes(func(v *Vertex) {
		if v.Fingerprint() == 0 {
			t.Errorf("vertex %d (%s) has no fingerprint", v.ID, v)
		}
	})
	arr := g.LastAppear("h1", ndlog.NewTuple("packet", ndlog.MustParseIP("4.3.2.1")))
	tree := g.Tree(arr.ID)
	if tree.Fingerprint() != arr.Fingerprint() {
		t.Error("tree fingerprint must be the root vertex's cached fingerprint")
	}
	var nilTree *Tree
	if nilTree.Fingerprint() != 0 {
		t.Error("nil tree fingerprints to 0")
	}
}

// TestFingerprintIgnoresTimestamps runs the same execution at shifted
// ticks: the provenance trees have different stamps but identical
// structure, so they must hash identically — that is what lets a
// fingerprint comparison stand in for a full structural walk.
func TestFingerprintIgnoresTimestamps(t *testing.T) {
	build := func(pktTick int64) *Graph {
		prog := ndlog.MustParse(`
table flowEntry/3 base mutable;
table packet/1 event base;
rule fw packet(@Nxt, Dst) :-
    packet(@Sw, Dst), flowEntry(@Sw, Prio, M, Nxt), matches(Dst, M), argmax Prio.
`)
		rec := NewRecorder(prog)
		e := ndlog.New(prog, rec)
		e.ScheduleInsert("s1", ndlog.NewTuple("flowEntry", ndlog.Int(1), ndlog.MustParsePrefix("0.0.0.0/0"), ndlog.Str("h1")), 0)
		e.ScheduleInsert("s1", ndlog.NewTuple("packet", ndlog.MustParseIP("4.3.2.1")), pktTick)
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return rec.Graph()
	}
	gA, gB := build(10), build(500)
	tup := ndlog.NewTuple("packet", ndlog.MustParseIP("4.3.2.1"))
	ta := gA.Tree(gA.LastAppear("h1", tup).ID)
	tb := gB.Tree(gB.LastAppear("h1", tup).ID)
	if ta.Vertex.At == tb.Vertex.At {
		t.Fatal("test expects the arrivals to carry different stamps")
	}
	if ta.Fingerprint() != tb.Fingerprint() {
		t.Errorf("structurally identical trees hash differently: %x vs %x\n%s\nvs\n%s",
			ta.Fingerprint(), tb.Fingerprint(), ta, tb)
	}
}

func TestFingerprintDistinguishesStructure(t *testing.T) {
	_, g := runFwd(t)
	t1 := g.Tree(g.LastAppear("h1", ndlog.NewTuple("packet", ndlog.MustParseIP("4.3.2.1"))).ID)
	t2 := g.Tree(g.LastAppear("h2", ndlog.NewTuple("packet", ndlog.MustParseIP("4.3.3.1"))).ID)
	if t1.Fingerprint() == t2.Fingerprint() {
		t.Error("different trees must hash differently")
	}
	// Sibling subtrees under one derive (packet APPEAR vs flow-entry
	// EXIST) differ too.
	d := t1.Children[0]
	if d.Children[0].Fingerprint() == d.Children[1].Fingerprint() {
		t.Error("distinct derive children must hash differently")
	}
}

// TestTreeFingerprintFallback mirrors a recorded tree into vertexes with
// no cached fingerprint (the shape distributed shard recorders produce)
// and checks the recursive fallback computes the exact same hash as the
// cached bottom-up path.
func TestTreeFingerprintFallback(t *testing.T) {
	_, g := runFwd(t)
	tree := g.Tree(g.LastAppear("h1", ndlog.NewTuple("packet", ndlog.MustParseIP("4.3.2.1"))).ID)

	var mirror func(src *Tree) *Tree
	mirror = func(src *Tree) *Tree {
		v := *src.Vertex
		v.fp = 0
		m := &Tree{Vertex: &v}
		for _, c := range src.Children {
			cm := mirror(c)
			cm.Parent = m
			m.Children = append(m.Children, cm)
		}
		return m
	}
	m := mirror(tree)
	if m.Vertex.Fingerprint() != 0 {
		t.Fatal("mirror must carry no cached fingerprints")
	}
	if m.Fingerprint() != tree.Fingerprint() {
		t.Errorf("fallback hash %x != cached hash %x", m.Fingerprint(), tree.Fingerprint())
	}
}
