package provenance

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/ndlog"
)

const wcFoldSrc = `
table kv/2 event base;          // (word, seq)
table wordcount/2;              // (word, count)
rule wc wordcount(@R, W, N) :- kv(@R, W, S), N := count().
`

// runWordCount drives k contributors (cycling over three words) through
// a recorder-attached engine and returns the resulting graph.
func runWordCount(t *testing.T, k int, opts ...RecorderOption) *Graph {
	t.Helper()
	prog := ndlog.MustParse(wcFoldSrc)
	rec := NewRecorder(prog, opts...)
	e := ndlog.New(prog, rec)
	words := []string{"the", "fox", "dog"}
	for i := 0; i < k; i++ {
		w := words[i%len(words)]
		e.ScheduleInsert("r1", ndlog.NewTuple("kv", ndlog.Str(w), ndlog.Int(int64(i))), int64(i))
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().AggRetractMisses; got != 0 {
		t.Fatalf("AggRetractMisses = %d, want 0", got)
	}
	return rec.Graph()
}

// foldedDump serializes the graph through the folded view (ChildrenOf),
// including fingerprints, so two graphs compare byte-for-byte exactly as
// every consumer (Tree, treediff, alignment) sees them. The recorded
// trigger differs between modes by construction (the lazy delta records
// the contributor at slot 0, the eager list at slot k-1), so it is
// normalized to the newest folded contributor, which is what both
// representations mean.
func foldedDump(g *Graph) string {
	var sb strings.Builder
	g.Vertexes(func(v *Vertex) {
		kids := g.ChildrenOf(v.ID)
		trig := v.Trigger
		if _, _, ok := g.AggDelta(v.ID); ok {
			trig = len(kids) - 1
		}
		fmt.Fprintf(&sb, "%d %s trig=%d fp=%016x kids=%v\n", v.ID, v.String(), trig, v.Fingerprint(), kids)
	})
	return sb.String()
}

// aggHeadDerive locates the DERIVE vertex of the final aggregate head
// for a word, via the head tuple's last APPEAR.
func aggHeadDerive(t *testing.T, g *Graph, word string, count int64) *Vertex {
	t.Helper()
	ap := g.LastAppear("r1", ndlog.NewTuple("wordcount", ndlog.Str(word), ndlog.Int(count)))
	if ap == nil {
		t.Fatalf("no appearance of wordcount(%s, %d)", word, count)
	}
	if len(ap.Children) != 1 {
		t.Fatalf("head APPEAR has %d causes, want 1", len(ap.Children))
	}
	return g.Vertex(ap.Children[0])
}

// TestAggregateRecordingIsLinear is the O(k) property test: the recorded
// provenance of a counting rule must grow linearly in the number of
// contributors. The old full-list scheme recorded the i-th update with i
// children — O(k²) edges per group — so quadrupling the contributors
// grew the edges ~16x; with delta chains it grows ~4x.
func TestAggregateRecordingIsLinear(t *testing.T) {
	edges := func(k int) int {
		g := runWordCount(t, k)
		n := 0
		g.Vertexes(func(v *Vertex) { n += len(v.Children) })
		return n
	}
	e1 := edges(300)
	e4 := edges(1200)
	if float64(e4) > 4.5*float64(e1) {
		t.Errorf("recorded edges grow superlinearly: edges(300)=%d, edges(1200)=%d (ratio %.1f, want <= 4.5)",
			e1, e4, float64(e4)/float64(e1))
	}

	// Each delta derivation records at most one child (the new
	// contributor), yet the folded view of the final head lists them all.
	g := runWordCount(t, 51) // 17 contributors per word
	aggs := 0
	g.Vertexes(func(v *Vertex) {
		if _, _, ok := g.AggDelta(v.ID); ok {
			aggs++
			if len(v.Children) > 1 {
				t.Errorf("delta DERIVE %d records %d children, want <= 1", v.ID, len(v.Children))
			}
		}
	})
	if aggs != 51 {
		t.Errorf("aggregate derivations = %d, want 51", aggs)
	}
	head := aggHeadDerive(t, g, "the", 17)
	if kids := g.ChildrenOf(head.ID); len(kids) != 17 {
		t.Errorf("folded contributor list has %d entries, want 17", len(kids))
	}
	if tree := g.Tree(head.ID); len(tree.Children) != 17 {
		t.Errorf("projected tree has %d children, want 17", len(tree.Children))
	}
}

// TestAggregateFoldDifferentialUnit runs the same execution through a
// lazy (delta-recording) and an eager (full-list) recorder and checks
// that everything downstream of Graph.ChildrenOf is byte-identical:
// folded dumps (including fingerprints — the chain hash must commute
// with folding), projected trees, and seeds.
func TestAggregateFoldDifferentialUnit(t *testing.T) {
	const k = 60
	lazy := runWordCount(t, k)
	eager := runWordCount(t, k, WithEagerAggregates(true))

	if lazy.NumVertexes() != eager.NumVertexes() {
		t.Fatalf("vertex counts differ: lazy %d, eager %d", lazy.NumVertexes(), eager.NumVertexes())
	}
	if dl, de := foldedDump(lazy), foldedDump(eager); dl != de {
		t.Errorf("folded dumps differ\n--- lazy ---\n%s--- eager ---\n%s", dl, de)
	}
	for _, word := range []string{"the", "fox", "dog"} {
		lh := aggHeadDerive(t, lazy, word, k/3)
		eh := aggHeadDerive(t, eager, word, k/3)
		if lh.ID != eh.ID {
			t.Fatalf("%s: head DERIVE IDs diverge: lazy %d, eager %d", word, lh.ID, eh.ID)
		}
		lt, et := lazy.Tree(lh.ID), eager.Tree(eh.ID)
		if lt.String() != et.String() {
			t.Errorf("%s: projected trees differ\n--- lazy ---\n%s--- eager ---\n%s", word, lt, et)
		}
		if lt.Fingerprint() != et.Fingerprint() {
			t.Errorf("%s: tree fingerprints differ: %x vs %x", word, lt.Fingerprint(), et.Fingerprint())
		}
		ls, lerr := lt.FindSeed()
		es, eerr := et.FindSeed()
		if (lerr == nil) != (eerr == nil) {
			t.Fatalf("%s: seed errors diverge: %v vs %v", word, lerr, eerr)
		}
		if lerr == nil && ls.Vertex.String() != es.Vertex.String() {
			t.Errorf("%s: seeds differ: %s vs %s", word, ls.Vertex, es.Vertex)
		}
	}

	// Folding is memoized per fingerprint: repeated projections return
	// the identical slice.
	head := aggHeadDerive(t, lazy, "the", k/3)
	a := lazy.ChildrenOf(head.ID)
	b := lazy.ChildrenOf(head.ID)
	if len(a) != len(b) || (len(a) > 0 && &a[0] != &b[0]) {
		t.Error("folded list not memoized: repeated ChildrenOf returned distinct slices")
	}
}

// TestAggregateFoldAcrossFork checks that a forked graph keeps folding
// correctly: chains extended after the fork fold in the fork, the
// original is untouched, and memoized prefixes are shared.
func TestAggregateFoldAcrossFork(t *testing.T) {
	prog := ndlog.MustParse(wcFoldSrc)
	rec := NewRecorder(prog)
	e := ndlog.New(prog, rec)
	for i := 0; i < 5; i++ {
		e.ScheduleInsert("r1", ndlog.NewTuple("kv", ndlog.Str("w"), ndlog.Int(int64(i))), int64(i))
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Fold (and memoize) in the original before forking.
	origHead := aggHeadDerive(t, rec.Graph(), "w", 5)
	if kids := rec.Graph().ChildrenOf(origHead.ID); len(kids) != 5 {
		t.Fatalf("original folds to %d contributors, want 5", len(kids))
	}

	fr := rec.Fork()
	fe := e.Fork(fr)
	for i := 5; i < 9; i++ {
		fe.ScheduleInsert("r1", ndlog.NewTuple("kv", ndlog.Str("w"), ndlog.Int(int64(i))), int64(i))
	}
	if err := fe.Run(); err != nil {
		t.Fatal(err)
	}
	fg := fr.Graph()
	forkHead := aggHeadDerive(t, fg, "w", 9)
	if kids := fg.ChildrenOf(forkHead.ID); len(kids) != 9 {
		t.Errorf("fork folds to %d contributors, want 9", len(kids))
	}
	// The original graph is unaffected by the fork's growth.
	if kids := rec.Graph().ChildrenOf(origHead.ID); len(kids) != 5 {
		t.Errorf("original mutated by fork: folds to %d contributors, want 5", len(kids))
	}
}
