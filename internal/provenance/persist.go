package provenance

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/ndlog"
	"repro/internal/store"
)

// Shard persistence. Each node's provenance shard is backed by its own
// append-only record log (internal/store.RecordLog): one record per
// vertex, appended in ID order so the record ordinal IS the vertex ID.
// A separate manifest log records node names in shard-creation order, so
// a cold start recovers the same shard set — and the same cross-shard
// reference space — the live recorder built. This is the durable half of
// §4.8: provenance stays sharded per node on disk exactly as it is in
// memory, and Materialize works the same against recovered shards.
//
// Vertex records are self-contained: remote references, aggregate
// delta-chain links, and the engine derivation ID are embedded in the
// DERIVE/APPEAR record they belong to, and an EXIST span closure is
// carried by the DISAPPEAR record that caused it (the EXIST record
// itself is immutable once appended). Loading replays the records in
// order and rebuilds every in-memory index.

// ShardedOption configures a ShardedRecorder.
type ShardedOption func(*ShardedRecorder)

// WithShardStorage backs every shard with a per-node record log under
// dir (created on demand). Persistence failures are sticky: the first
// error is reported by StorageErr and by SyncShardStorage/
// CloseShardStorage.
func WithShardStorage(dir string) ShardedOption {
	return func(r *ShardedRecorder) { r.storageDir = dir }
}

// shardPersist is the storage side of a ShardedRecorder.
type shardPersist struct {
	dir   string
	nodes *store.RecordLog            // manifest: node names, creation order
	logs  map[string]*store.RecordLog // per-node vertex records
	err   error
}

const nodesManifest = "shardnodes"

func shardLogPrefix(node string) string {
	return "shard-" + store.SanitizeName(node)
}

func openShardPersist(dir string) (*shardPersist, error) {
	nodes, err := store.OpenRecordLog(dir, nodesManifest)
	if err != nil {
		return nil, err
	}
	return &shardPersist{dir: dir, nodes: nodes, logs: map[string]*store.RecordLog{}}, nil
}

// fail records the first persistence error; later writes are dropped.
func (p *shardPersist) fail(err error) {
	if p.err == nil {
		p.err = err
	}
}

func (p *shardPersist) logFor(node string) (*store.RecordLog, error) {
	if l, ok := p.logs[node]; ok {
		return l, nil
	}
	l, err := store.OpenRecordLog(p.dir, shardLogPrefix(node))
	if err != nil {
		return nil, err
	}
	p.logs[node] = l
	return l, nil
}

// addNode persists a newly created shard's node name.
func (p *shardPersist) addNode(node string) {
	if p.err != nil {
		return
	}
	if _, err := p.nodes.Append([]byte(node)); err != nil {
		p.fail(fmt.Errorf("provenance: persisting shard manifest: %v", err))
	}
}

func (p *shardPersist) sync() error {
	if p.err != nil {
		return p.err
	}
	if p.nodes == nil {
		return nil
	}
	if err := p.nodes.Sync(); err != nil {
		return err
	}
	for _, l := range p.logs {
		if err := l.Sync(); err != nil {
			return err
		}
	}
	return nil
}

func (p *shardPersist) close() error {
	err := p.err
	if p.nodes == nil {
		return err
	}
	if e := p.nodes.Close(); err == nil {
		err = e
	}
	for _, l := range p.logs {
		if e := l.Close(); err == nil {
			err = e
		}
	}
	return err
}

// vertexRecord is the flattened form of one shard vertex plus the
// shard-map entries keyed by its ID.
type vertexRecord struct {
	v           Vertex
	remote      map[int]remoteRef // by child slot
	agg         *aggLink
	deriveID    int64 // engine derivation ID for DERIVE vertexes
	closedExist int   // EXIST closed by this DISAPPEAR, -1 if none
}

func writeStamp(buf *bytes.Buffer, s ndlog.Stamp) {
	writeVarint(buf, s.T)
	writeUvarintBuf(buf, s.Seq)
}

func readStamp(r *bytes.Reader) (ndlog.Stamp, error) {
	t, err := readVarint(r)
	if err != nil {
		return ndlog.Stamp{}, err
	}
	seq, err := store.ReadUvarint(r)
	if err != nil {
		return ndlog.Stamp{}, err
	}
	return ndlog.Stamp{T: t, Seq: seq}, nil
}

func writeVarint(buf *bytes.Buffer, v int64) {
	// zig-zag via the uvarint primitive
	writeUvarintBuf(buf, uint64(v)<<1^uint64(v>>63))
}

func readVarint(r *bytes.Reader) (int64, error) {
	u, err := store.ReadUvarint(r)
	if err != nil {
		return 0, err
	}
	return int64(u>>1) ^ -int64(u&1), nil
}

func writeUvarintBuf(buf *bytes.Buffer, v uint64) {
	store.WriteUvarint(buf, v) //nolint:errcheck // bytes.Buffer cannot fail
}

func writeStringBuf(buf *bytes.Buffer, s string) {
	writeUvarintBuf(buf, uint64(len(s)))
	buf.WriteString(s)
}

func readStringBuf(r *bytes.Reader) (string, error) {
	n, err := store.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > store.MaxDecodedString {
		return "", fmt.Errorf("provenance: string field of %d bytes exceeds bound", n)
	}
	b := make([]byte, n)
	if _, err := r.Read(b); err != nil {
		return "", err
	}
	return string(b), nil
}

// encodeVertexRecord flattens one vertex (and its shard-map entries)
// into a record payload.
func encodeVertexRecord(rec vertexRecord) ([]byte, error) {
	buf := &bytes.Buffer{}
	buf.WriteByte(byte(rec.v.Type))
	if err := store.WriteTuple(buf, rec.v.Tuple); err != nil {
		return nil, err
	}
	writeStringBuf(buf, rec.v.Rule)
	writeStamp(buf, rec.v.At)
	writeStamp(buf, rec.v.Span.From)
	writeStamp(buf, rec.v.Span.To)
	open := byte(0)
	if rec.v.Span.Open {
		open = 1
	}
	buf.WriteByte(open)
	writeUvarintBuf(buf, uint64(len(rec.v.Children)))
	for _, c := range rec.v.Children {
		writeVarint(buf, int64(c))
	}
	writeVarint(buf, int64(rec.v.Trigger))
	writeUvarintBuf(buf, uint64(len(rec.remote)))
	for _, sr := range sortedRemote(rec.remote) {
		writeUvarintBuf(buf, uint64(sr.slot))
		writeStringBuf(buf, sr.ref.node)
		writeUvarintBuf(buf, uint64(sr.ref.id))
	}
	if rec.agg != nil {
		buf.WriteByte(1)
		writeVarint(buf, int64(rec.agg.prev))
		writeVarint(buf, rec.agg.count)
	} else {
		buf.WriteByte(0)
	}
	writeVarint(buf, rec.deriveID)
	writeVarint(buf, int64(rec.closedExist))
	return buf.Bytes(), nil
}

// slotRef pairs a remote reference with its child slot for
// deterministic encoding order.
type slotRef struct {
	slot int
	ref  remoteRef
}

func sortedRemote(m map[int]remoteRef) []slotRef {
	slots := make([]int, 0, len(m))
	for slot := range m {
		slots = append(slots, slot)
	}
	sort.Ints(slots)
	out := make([]slotRef, 0, len(m))
	for _, slot := range slots {
		out = append(out, slotRef{slot, m[slot]})
	}
	return out
}

// decodeVertexRecord parses one record payload.
func decodeVertexRecord(payload []byte) (vertexRecord, error) {
	r := bytes.NewReader(payload)
	var rec vertexRecord
	tb, err := r.ReadByte()
	if err != nil {
		return rec, err
	}
	if tb > byte(Disappear) {
		return rec, fmt.Errorf("provenance: bad vertex type %d", tb)
	}
	rec.v.Type = VertexType(tb)
	if rec.v.Tuple, err = store.ReadTuple(r); err != nil {
		return rec, err
	}
	if rec.v.Rule, err = readStringBuf(r); err != nil {
		return rec, err
	}
	if rec.v.At, err = readStamp(r); err != nil {
		return rec, err
	}
	if rec.v.Span.From, err = readStamp(r); err != nil {
		return rec, err
	}
	if rec.v.Span.To, err = readStamp(r); err != nil {
		return rec, err
	}
	open, err := r.ReadByte()
	if err != nil {
		return rec, err
	}
	rec.v.Span.Open = open != 0
	nch, err := store.ReadUvarint(r)
	if err != nil {
		return rec, err
	}
	if nch > uint64(len(payload)) {
		return rec, fmt.Errorf("provenance: %d children exceeds record size", nch)
	}
	rec.v.Children = make([]int, nch)
	for i := range rec.v.Children {
		c, err := readVarint(r)
		if err != nil {
			return rec, err
		}
		rec.v.Children[i] = int(c)
	}
	trig, err := readVarint(r)
	if err != nil {
		return rec, err
	}
	rec.v.Trigger = int(trig)
	nrem, err := store.ReadUvarint(r)
	if err != nil {
		return rec, err
	}
	if nrem > uint64(len(payload)) {
		return rec, fmt.Errorf("provenance: %d remote refs exceeds record size", nrem)
	}
	if nrem > 0 {
		rec.remote = make(map[int]remoteRef, nrem)
		for i := uint64(0); i < nrem; i++ {
			slot, err := store.ReadUvarint(r)
			if err != nil {
				return rec, err
			}
			node, err := readStringBuf(r)
			if err != nil {
				return rec, err
			}
			id, err := store.ReadUvarint(r)
			if err != nil {
				return rec, err
			}
			rec.remote[int(slot)] = remoteRef{node: node, id: int(id)}
		}
	}
	hasAgg, err := r.ReadByte()
	if err != nil {
		return rec, err
	}
	if hasAgg != 0 {
		prev, err := readVarint(r)
		if err != nil {
			return rec, err
		}
		count, err := readVarint(r)
		if err != nil {
			return rec, err
		}
		rec.agg = &aggLink{prev: int(prev), count: count}
	}
	if rec.deriveID, err = readVarint(r); err != nil {
		return rec, err
	}
	ce, err := readVarint(r)
	if err != nil {
		return rec, err
	}
	rec.closedExist = int(ce)
	return rec, nil
}

// persistVertex appends one just-added vertex to its shard's record log.
// Called with the shard maps already updated, so the record captures the
// remote references and aggregate link keyed by this vertex.
func (r *ShardedRecorder) persistVertex(s *shard, v *Vertex, deriveID int64, closedExist int) {
	if r.pst == nil || r.pst.err != nil {
		return
	}
	l, err := r.pst.logFor(s.node)
	if err != nil {
		r.pst.fail(fmt.Errorf("provenance: opening shard log for %s: %v", s.node, err))
		return
	}
	rec := vertexRecord{v: *v, remote: s.remote[v.ID], deriveID: deriveID, closedExist: closedExist}
	if link, ok := s.aggDelta[v.ID]; ok {
		rec.agg = &link
	}
	payload, err := encodeVertexRecord(rec)
	if err != nil {
		r.pst.fail(fmt.Errorf("provenance: encoding vertex %d on %s: %v", v.ID, s.node, err))
		return
	}
	ord, err := l.Append(payload)
	if err != nil {
		r.pst.fail(fmt.Errorf("provenance: appending vertex %d on %s: %v", v.ID, s.node, err))
		return
	}
	if ord != v.ID {
		r.pst.fail(fmt.Errorf("provenance: shard log for %s out of step: record %d for vertex %d", s.node, ord, v.ID))
	}
}

// StorageErr reports the first shard-persistence failure, if any.
// Observer callbacks cannot return errors, so persistence problems are
// sticky and surfaced here (and by SyncShardStorage/CloseShardStorage).
func (r *ShardedRecorder) StorageErr() error {
	if r.pst == nil {
		return nil
	}
	return r.pst.err
}

// SyncShardStorage flushes all shard record logs to disk (a no-op
// without storage).
func (r *ShardedRecorder) SyncShardStorage() error {
	if r.pst == nil {
		return nil
	}
	return r.pst.sync()
}

// CloseShardStorage syncs and closes the shard record logs (a no-op
// without storage). The recorder remains usable in memory.
func (r *ShardedRecorder) CloseShardStorage() error {
	if r.pst == nil {
		return nil
	}
	err := r.pst.close()
	r.pst = nil
	return err
}

// OpenStoredShards recovers a sharded recorder from the shard logs under
// dir: every node's vertexes, cross-shard references, aggregate delta
// chains, and indexes are rebuilt by replaying the records in ID order.
// The recovered recorder serves LastAppear/Materialize exactly like the
// live one did, and continues persisting if driven further.
func OpenStoredShards(prog *ndlog.Program, dir string) (*ShardedRecorder, error) {
	r := NewShardedRecorder(prog, WithShardStorage(dir))
	if err := r.StorageErr(); err != nil {
		return nil, err
	}
	var nodes []string
	if err := r.pst.nodes.Scan(func(_ int, payload []byte) error {
		nodes = append(nodes, string(payload))
		return nil
	}); err != nil {
		return nil, fmt.Errorf("provenance: reading shard manifest: %v", err)
	}
	for _, node := range nodes {
		s := newShard(node)
		r.shards[node] = s
		r.order = append(r.order, node)
		l, err := r.pst.logFor(node)
		if err != nil {
			return nil, fmt.Errorf("provenance: opening shard log for %s: %v", node, err)
		}
		// Records replay in ID order; a DISAPPEAR's span closure always
		// points backward to an already-loaded EXIST, so applying each
		// record as it arrives reproduces the live recorder's state.
		if err := l.Scan(func(ord int, payload []byte) error {
			rec, err := decodeVertexRecord(payload)
			if err != nil {
				return fmt.Errorf("record %d: %v", ord, err)
			}
			v := rec.v // copy
			v.Node = node
			added := s.add(&v)
			if added.ID != ord {
				return fmt.Errorf("record %d loaded as vertex %d", ord, added.ID)
			}
			if len(rec.remote) > 0 {
				s.remote[ord] = rec.remote
			}
			if rec.agg != nil {
				s.aggDelta[ord] = *rec.agg
			}
			if rec.deriveID != 0 {
				s.byDerive[rec.deriveID] = ord
			}
			key := fmt.Sprintf("%s|%d", v.Tuple.Key(), v.At.Seq)
			switch v.Type {
			case Appear:
				s.appearByRef[key] = ord
				s.appearsByTuple[v.Tuple.Key()] = append(s.appearsByTuple[v.Tuple.Key()], ord)
			case Exist:
				// The EXIST's reference key uses the APPEAR stamp it wraps.
				exKey := fmt.Sprintf("%s|%d", v.Tuple.Key(), v.Span.From.Seq)
				s.existByRef[exKey] = ord
				if v.Span.Open {
					s.openExist[v.Tuple.Key()] = ord
				}
			case Disappear:
				if rec.closedExist >= 0 && rec.closedExist < len(s.vertexes) {
					ex := s.vertexes[rec.closedExist]
					ex.Span.To = v.At
					ex.Span.Open = false
					if cur, ok := s.openExist[ex.Tuple.Key()]; ok && cur == rec.closedExist {
						delete(s.openExist, ex.Tuple.Key())
					}
				}
			}
			return nil
		}); err != nil {
			return nil, fmt.Errorf("provenance: loading shard %s: %v", node, err)
		}
	}
	return r, nil
}
