package provenance

import (
	"repro/internal/ndlog"
)

// Recorder builds a temporal provenance graph incrementally from the
// primitive events emitted by an ndlog.Engine. It implements
// ndlog.Observer and corresponds to the paper's "provenance recorder"
// component operating in the direct-inference mode (§5): provenance is
// inferred from the declarative rules as they fire.
type Recorder struct {
	prog  *ndlog.Program
	graph *Graph

	// pendingInsert is the INSERT vertex awaiting its APPEAR (the engine
	// emits OnBaseInsert immediately followed by OnAppear for the same
	// tuple within one work item).
	pendingInsert int
	// pendingDelete likewise links DELETE to the following DISAPPEAR.
	pendingDelete int
	// underiveVertex maps engine underivation IDs to UNDERIVE vertexes
	// so a following DISAPPEAR can reference its cause.
	underiveVertex map[int64]int
	// eagerAgg materializes the full contributor list on every aggregate
	// DERIVE at record time (the pre-delta behavior, O(k) per update).
	// Default off: aggregates record the delta alone and Graph.ChildrenOf
	// folds on demand. Both modes yield byte-identical folded trees and
	// fingerprints; the eager mode exists as the reference side of the
	// fold-differential tests.
	eagerAgg bool

	// Copy-on-write state (see cow.go): cow enables CoW forks of sealed
	// recorders (default on), sealed marks the recorder frozen for the
	// prefix cache, and base chains a CoW fork to the frozen recorder it
	// shadows (underiveVertex reads walk the chain; writes stay local).
	cow    bool
	sealed bool
	base   *Recorder
}

// RecorderOption configures a Recorder.
type RecorderOption func(*Recorder)

// WithEagerAggregates selects eager materialization of aggregate
// contributor lists at record time instead of lazy folding.
func WithEagerAggregates(on bool) RecorderOption {
	return func(r *Recorder) { r.eagerAgg = on }
}

// NewRecorder creates a recorder for executions of the given program.
func NewRecorder(prog *ndlog.Program, opts ...RecorderOption) *Recorder {
	r := &Recorder{
		prog:           prog,
		graph:          NewGraph(),
		pendingInsert:  -1,
		pendingDelete:  -1,
		underiveVertex: map[int64]int{},
		cow:            true,
	}
	for _, o := range opts {
		o(r)
	}
	r.graph.cow = r.cow
	return r
}

// Graph returns the graph built so far. The graph remains owned by the
// recorder and keeps growing as the engine runs.
func (r *Recorder) Graph() *Graph { return r.graph }

// OnBaseInsert implements ndlog.Observer.
func (r *Recorder) OnBaseInsert(at ndlog.At) {
	v := r.graph.add(&Vertex{Type: Insert, Node: at.Node, Tuple: at.Tuple, At: at.Stamp})
	r.pendingInsert = v.ID
}

// OnBaseDelete implements ndlog.Observer.
func (r *Recorder) OnBaseDelete(at ndlog.At) {
	v := r.graph.add(&Vertex{Type: Delete, Node: at.Node, Tuple: at.Tuple, At: at.Stamp})
	r.pendingDelete = v.ID
}

// OnDerive implements ndlog.Observer.
func (r *Recorder) OnDerive(d ndlog.Derivation) {
	if d.AggCount > 0 {
		r.onDeriveAggregate(d)
		return
	}
	v := &Vertex{
		Type:    Derive,
		Node:    d.Node,
		Tuple:   d.Head.Tuple,
		Rule:    d.Rule,
		At:      d.Head.Stamp,
		Trigger: -1,
	}
	for i, b := range d.Body {
		child := r.bodyVertex(b)
		if child < 0 {
			continue
		}
		v.Children = append(v.Children, child)
		if i == d.Trigger {
			v.Trigger = len(v.Children) - 1
		}
	}
	r.graph.add(v)
	r.graph.byDerive[d.ID] = v.ID
	if v.Trigger >= 0 {
		trig := v.Children[v.Trigger]
		r.graph.appendIntSlice(selTriggerParents, trig, v.ID)
	}
}

// onDeriveAggregate records an aggregate delta derivation: the vertex is
// annotated with the chain link (previous head's DERIVE, new contributor,
// running count) and carries only the new contributor as a recorded
// child — unless the recorder is in eager mode, in which case the full
// folded list is materialized into Children right away. In both modes the
// trigger (the precondition that appeared last) is the new contributor,
// and the fingerprint is the chain hash, so everything downstream of
// Graph.ChildrenOf sees identical structure.
func (r *Recorder) onDeriveAggregate(d ndlog.Derivation) {
	v := &Vertex{
		Type:       Derive,
		Node:       d.Node,
		Tuple:      d.Head.Tuple,
		Rule:       d.Rule,
		At:         d.Head.Stamp,
		Trigger:    -1,
		aggPrev:    -1,
		aggContrib: -1,
		aggCount:   d.AggCount,
	}
	if d.AggPrev != 0 {
		if pv, ok := r.graph.deriveVertex(d.AggPrev); ok {
			v.aggPrev = pv
		}
	}
	if len(d.Body) > 0 {
		v.aggContrib = r.bodyVertex(d.Body[0])
	}
	if r.eagerAgg {
		// Reference mode: fold the predecessor's list and append the new
		// contributor — O(k) per update, the pre-delta cost.
		if v.aggPrev >= 0 {
			v.Children = append(v.Children, r.graph.ChildrenOf(v.aggPrev)...)
		}
		if v.aggContrib >= 0 {
			v.Children = append(v.Children, v.aggContrib)
			v.Trigger = len(v.Children) - 1
		}
	} else if v.aggContrib >= 0 {
		v.Children = []int{v.aggContrib}
		v.Trigger = 0
	}
	r.graph.add(v)
	r.graph.byDerive[d.ID] = v.ID
	if v.aggContrib >= 0 {
		r.graph.appendIntSlice(selTriggerParents, v.aggContrib, v.ID)
	}
}

// bodyVertex resolves a derivation body reference to its cause vertex:
// the EXIST vertex of the appearance for state tuples, or the APPEAR
// vertex itself for event tuples (which never exist as state).
func (r *Recorder) bodyVertex(b ndlog.At) int {
	key := refKey(b.Node, b.Tuple, b.Stamp.Seq)
	if id, ok := r.graph.lookupStr(selExistByRef, key); ok {
		return id
	}
	if id, ok := r.graph.lookupStr(selAppearByRef, key); ok {
		return id
	}
	return -1
}

// OnAppear implements ndlog.Observer.
func (r *Recorder) OnAppear(at ndlog.At, deriveID int64) {
	ap := &Vertex{Type: Appear, Node: at.Node, Tuple: at.Tuple, At: at.Stamp}
	if deriveID != 0 {
		if dv, ok := r.graph.deriveVertex(deriveID); ok {
			ap.Children = append(ap.Children, dv)
		}
	} else if r.pendingInsert >= 0 {
		ap.Children = append(ap.Children, r.pendingInsert)
		r.pendingInsert = -1
	}
	r.graph.add(ap)
	if len(ap.Children) == 1 {
		r.graph.headAppear[ap.Children[0]] = ap.ID
	}

	key := refKey(at.Node, at.Tuple, at.Stamp.Seq)
	tk := tupleKey(at.Node, at.Tuple)
	r.graph.appearByRef[key] = ap.ID
	r.graph.appendStrSlice(selAppearsByTuple, tk, ap.ID)
	tblKey := at.Node + "|" + at.Tuple.Table
	r.graph.appendStrSlice(selAppearsByTable, tblKey, ap.ID)

	decl := r.prog.Decl(at.Tuple.Table)
	if decl != nil && decl.Event {
		return // events do not persist: no EXIST vertex
	}
	ex := &Vertex{
		Type:     Exist,
		Node:     at.Node,
		Tuple:    at.Tuple,
		Span:     ndlog.Interval{From: at.Stamp, Open: true},
		Children: []int{ap.ID},
	}
	r.graph.add(ex)
	r.graph.openExist[tk] = ex.ID
	r.graph.existByRef[key] = ex.ID
	r.graph.existOf[ap.ID] = ex.ID
}

// OnUnderive implements ndlog.Observer.
func (r *Recorder) OnUnderive(u ndlog.Underivation) {
	v := &Vertex{
		Type:  Underive,
		Node:  u.Node,
		Tuple: u.Head.Tuple,
		Rule:  u.Rule,
		At:    u.Head.Stamp,
	}
	// The cause of the underivation is the disappearance of the body
	// tuple that vanished.
	if dv, ok := r.graph.lookupStr(selLastDisappear, tupleKey(u.Cause.Node, u.Cause.Tuple)); ok {
		v.Children = append(v.Children, dv)
	}
	r.graph.add(v)
	r.underiveVertex[u.ID] = v.ID
}

// OnDisappear implements ndlog.Observer.
func (r *Recorder) OnDisappear(at ndlog.At, underiveID int64) {
	tk := tupleKey(at.Node, at.Tuple)
	if exID, ok := r.graph.lookupStr(selOpenExist, tk); ok {
		ex := r.graph.mutableVertex(exID)
		ex.Span.To = at.Stamp
		ex.Span.Open = false
		r.graph.deleteOpenExist(tk)
	}
	dis := &Vertex{Type: Disappear, Node: at.Node, Tuple: at.Tuple, At: at.Stamp}
	if underiveID != 0 {
		if uv, ok := r.underiveOf(underiveID); ok {
			dis.Children = append(dis.Children, uv)
		}
	} else if r.pendingDelete >= 0 {
		dis.Children = append(dis.Children, r.pendingDelete)
		r.pendingDelete = -1
	}
	r.graph.add(dis)
	r.graph.lastDisappear[tk] = dis.ID
}

var _ ndlog.Observer = (*Recorder)(nil)
