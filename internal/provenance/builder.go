package provenance

import (
	"fmt"

	"repro/internal/ndlog"
)

// Builder constructs a provenance graph from explicitly reported
// dependencies, the paper's second recorder mode (§5): "the primary
// system can be instrumented with hooks that report dependencies to the
// recorder". The instrumented Hadoop MapReduce substrate uses it.
//
// The program passed in is the external specification of the reported
// derivations: each reported rule name must be declared there so that
// DiffProv can later propagate and invert taints through it.
type Builder struct {
	rec      *Recorder
	seq      uint64
	deriveID int64
}

// NewBuilder creates a builder recording against the given specification
// program.
func NewBuilder(spec *ndlog.Program) *Builder {
	return &Builder{rec: NewRecorder(spec)}
}

// Graph returns the graph built so far.
func (b *Builder) Graph() *Graph { return b.rec.Graph() }

// Spec returns the specification program.
func (b *Builder) Spec() *ndlog.Program { return b.rec.prog }

func (b *Builder) stamp(tick int64) ndlog.Stamp {
	b.seq++
	return ndlog.Stamp{T: tick, Seq: b.seq}
}

// Insert reports a base tuple (an external input: a config entry, an
// input file record, a code version). It returns the located occurrence
// to be used as a body reference in later Derive calls.
func (b *Builder) Insert(node string, t ndlog.Tuple, tick int64) (ndlog.At, error) {
	if err := b.check(t); err != nil {
		return ndlog.At{}, err
	}
	at := ndlog.At{Node: node, Tuple: t, Stamp: b.stamp(tick)}
	b.rec.OnBaseInsert(at)
	b.rec.OnAppear(at, 0)
	return at, nil
}

// Derive reports a derived tuple: head derived on node via the named
// spec rule from the given body occurrences; trigger indexes the body
// occurrence that caused the derivation (pass -1 to use the latest).
func (b *Builder) Derive(rule, node string, head ndlog.Tuple, tick int64, body []ndlog.At, trigger int) (ndlog.At, error) {
	if err := b.check(head); err != nil {
		return ndlog.At{}, err
	}
	if b.rec.prog.Rule(rule) == nil {
		return ndlog.At{}, fmt.Errorf("provenance: reported rule %s is not in the specification", rule)
	}
	if len(body) == 0 {
		return ndlog.At{}, fmt.Errorf("provenance: derivation of %s reports no dependencies", head)
	}
	if trigger < 0 {
		for i, at := range body {
			if trigger < 0 || body[trigger].Stamp.Before(at.Stamp) {
				trigger = i
			}
		}
	}
	if trigger >= len(body) {
		return ndlog.At{}, fmt.Errorf("provenance: trigger %d out of range", trigger)
	}
	b.deriveID++
	hat := ndlog.At{Node: node, Tuple: head, Stamp: b.stamp(tick)}
	b.rec.OnDerive(ndlog.Derivation{
		ID:      b.deriveID,
		Rule:    rule,
		Node:    node,
		Head:    hat,
		Body:    body,
		Trigger: trigger,
	})
	b.rec.OnAppear(hat, b.deriveID)
	return hat, nil
}

// Delete reports the deletion of a previously inserted base tuple.
func (b *Builder) Delete(node string, t ndlog.Tuple, tick int64) error {
	at := ndlog.At{Node: node, Tuple: t, Stamp: b.stamp(tick)}
	b.rec.OnBaseDelete(at)
	b.rec.OnDisappear(at, 0)
	return nil
}

func (b *Builder) check(t ndlog.Tuple) error {
	d := b.rec.prog.Decl(t.Table)
	if d == nil {
		return fmt.Errorf("provenance: tuple for undeclared table %s", t.Table)
	}
	if len(t.Args) != d.Arity {
		return fmt.Errorf("provenance: %s has arity %d, got %d args", t.Table, d.Arity, len(t.Args))
	}
	return nil
}
