package provenance

import (
	"fmt"

	"repro/internal/ndlog"
)

// Distributed operation (§4.8): "each node in the distributed system only
// stores the provenance of its local tuples. When a node needs to invoke
// an operation on a vertex that is stored on another node, only that part
// of the provenance tree is materialized on demand."
//
// ShardedRecorder keeps one provenance shard per node. Cross-node edges
// (a derivation whose head lives on another node, or whose body tuples
// do) are remote references; Materialize resolves them shard by shard,
// counting the fetches a real deployment would pay as messages.

// remoteRef identifies a vertex in another node's shard.
type remoteRef struct {
	node string
	id   int
}

// shard is one node's local provenance store.
type shard struct {
	node     string
	vertexes []*Vertex
	// remote[i] holds, for local vertex i, the remote references that
	// stand in for children living on other nodes (keyed by child slot).
	remote map[int]map[int]remoteRef
	// aggDelta links aggregate DERIVE vertexes into their delta chains
	// (counting rules derive locally, so chains are shard-local);
	// Materialize folds a chain into the full contributor list.
	aggDelta map[int]aggLink
	// indexes mirroring the monolithic graph's, but shard-local.
	appearByRef    map[string]int
	existByRef     map[string]int
	openExist      map[string]int
	appearsByTuple map[string][]int
	byDerive       map[int64]int
}

// aggLink is one shard-local delta-chain link.
type aggLink struct {
	prev  int // vertex id of the previous head's DERIVE, -1 for the first
	count int64
}

func newShard(node string) *shard {
	return &shard{
		node:           node,
		remote:         map[int]map[int]remoteRef{},
		aggDelta:       map[int]aggLink{},
		appearByRef:    map[string]int{},
		existByRef:     map[string]int{},
		openExist:      map[string]int{},
		appearsByTuple: map[string][]int{},
		byDerive:       map[int64]int{},
	}
}

func (s *shard) add(v *Vertex) *Vertex {
	v.ID = len(s.vertexes)
	if v.Type != Derive {
		v.Trigger = -1
	}
	s.vertexes = append(s.vertexes, v)
	return v
}

// ShardedRecorder implements ndlog.Observer, storing provenance per node.
type ShardedRecorder struct {
	prog   *ndlog.Program
	shards map[string]*shard
	order  []string

	pendingInsert remoteRef
	// Fetches counts cross-shard materializations performed so far.
	Fetches int

	// storage (see persist.go): nil unless WithShardStorage configured it.
	storageDir string
	pst        *shardPersist
}

// NewShardedRecorder creates a per-node provenance store for the program.
func NewShardedRecorder(prog *ndlog.Program, opts ...ShardedOption) *ShardedRecorder {
	r := &ShardedRecorder{prog: prog, shards: map[string]*shard{}, pendingInsert: remoteRef{id: -1}}
	for _, o := range opts {
		o(r)
	}
	if r.storageDir != "" {
		pst, err := openShardPersist(r.storageDir)
		if err != nil {
			// Observer callbacks cannot fail; carry the error so StorageErr
			// and the storage lifecycle calls surface it.
			r.pst = &shardPersist{err: fmt.Errorf("provenance: opening shard storage at %s: %v", r.storageDir, err)}
		} else {
			r.pst = pst
		}
	}
	return r
}

func (r *ShardedRecorder) shardFor(node string) *shard {
	s, ok := r.shards[node]
	if !ok {
		s = newShard(node)
		r.shards[node] = s
		r.order = append(r.order, node)
		if r.pst != nil {
			r.pst.addNode(node)
		}
	}
	return s
}

// Nodes lists the nodes holding shards.
func (r *ShardedRecorder) Nodes() []string { return append([]string(nil), r.order...) }

// ShardSize returns the number of vertexes stored on a node.
func (r *ShardedRecorder) ShardSize(node string) int {
	if s, ok := r.shards[node]; ok {
		return len(s.vertexes)
	}
	return 0
}

// OnBaseInsert implements ndlog.Observer.
func (r *ShardedRecorder) OnBaseInsert(at ndlog.At) {
	s := r.shardFor(at.Node)
	v := s.add(&Vertex{Type: Insert, Node: at.Node, Tuple: at.Tuple, At: at.Stamp})
	r.pendingInsert = remoteRef{node: at.Node, id: v.ID}
	r.persistVertex(s, v, 0, -1)
}

// OnBaseDelete implements ndlog.Observer.
func (r *ShardedRecorder) OnBaseDelete(at ndlog.At) {
	s := r.shardFor(at.Node)
	v := s.add(&Vertex{Type: Delete, Node: at.Node, Tuple: at.Tuple, At: at.Stamp})
	r.persistVertex(s, v, 0, -1)
}

// OnDerive implements ndlog.Observer. The DERIVE vertex is stored on the
// node that evaluated the rule; its body children may be remote.
func (r *ShardedRecorder) OnDerive(d ndlog.Derivation) {
	s := r.shardFor(d.Node)
	v := &Vertex{Type: Derive, Node: d.Node, Tuple: d.Head.Tuple, Rule: d.Rule, At: d.Head.Stamp, Trigger: -1}
	slotRemote := map[int]remoteRef{}
	for i, b := range d.Body {
		ref, ok := r.resolveBody(b)
		if !ok {
			continue
		}
		slot := len(v.Children)
		if ref.node == d.Node {
			v.Children = append(v.Children, ref.id)
		} else {
			v.Children = append(v.Children, -1) // placeholder for a remote child
			slotRemote[slot] = ref
		}
		if i == d.Trigger {
			v.Trigger = slot
		}
	}
	s.add(v)
	if len(slotRemote) > 0 {
		s.remote[v.ID] = slotRemote
	}
	if d.AggCount > 0 {
		// Delta derivation: the generic loop above recorded only the new
		// contributor; link the chain so Materialize can fold it.
		prev := -1
		if d.AggPrev != 0 {
			if pv, ok := s.byDerive[d.AggPrev]; ok {
				prev = pv
			}
		}
		s.aggDelta[v.ID] = aggLink{prev: prev, count: d.AggCount}
	}
	s.byDerive[d.ID] = v.ID
	r.persistVertex(s, v, d.ID, -1)
}

func (r *ShardedRecorder) resolveBody(b ndlog.At) (remoteRef, bool) {
	s, ok := r.shards[b.Node]
	if !ok {
		return remoteRef{}, false
	}
	key := fmt.Sprintf("%s|%d", b.Tuple.Key(), b.Stamp.Seq)
	if id, ok := s.existByRef[key]; ok {
		return remoteRef{node: b.Node, id: id}, true
	}
	if id, ok := s.appearByRef[key]; ok {
		return remoteRef{node: b.Node, id: id}, true
	}
	return remoteRef{}, false
}

// OnAppear implements ndlog.Observer.
func (r *ShardedRecorder) OnAppear(at ndlog.At, deriveID int64) {
	s := r.shardFor(at.Node)
	ap := &Vertex{Type: Appear, Node: at.Node, Tuple: at.Tuple, At: at.Stamp}
	var remoteCause *remoteRef
	if deriveID != 0 {
		// The producing DERIVE may live on another node (remote head).
		found := false
		for _, nodeName := range r.order {
			if dv, ok := r.shards[nodeName].byDerive[deriveID]; ok {
				if nodeName == at.Node {
					ap.Children = append(ap.Children, dv)
				} else {
					ap.Children = append(ap.Children, -1)
					remoteCause = &remoteRef{node: nodeName, id: dv}
				}
				found = true
				break
			}
		}
		_ = found
	} else if r.pendingInsert.id >= 0 && r.pendingInsert.node == at.Node {
		ap.Children = append(ap.Children, r.pendingInsert.id)
		r.pendingInsert = remoteRef{id: -1}
	}
	s.add(ap)
	if remoteCause != nil {
		s.remote[ap.ID] = map[int]remoteRef{0: *remoteCause}
	}
	key := fmt.Sprintf("%s|%d", at.Tuple.Key(), at.Stamp.Seq)
	s.appearByRef[key] = ap.ID
	s.appearsByTuple[at.Tuple.Key()] = append(s.appearsByTuple[at.Tuple.Key()], ap.ID)
	r.persistVertex(s, ap, 0, -1)

	decl := r.prog.Decl(at.Tuple.Table)
	if decl != nil && decl.Event {
		return
	}
	ex := &Vertex{Type: Exist, Node: at.Node, Tuple: at.Tuple,
		Span: ndlog.Interval{From: at.Stamp, Open: true}, Children: []int{ap.ID}}
	s.add(ex)
	s.existByRef[key] = ex.ID
	s.openExist[at.Tuple.Key()] = ex.ID
	r.persistVertex(s, ex, 0, -1)
}

// OnDisappear implements ndlog.Observer.
func (r *ShardedRecorder) OnDisappear(at ndlog.At, underiveID int64) {
	s := r.shardFor(at.Node)
	closedExist := -1
	if exID, ok := s.openExist[at.Tuple.Key()]; ok {
		ex := s.vertexes[exID]
		ex.Span.To = at.Stamp
		ex.Span.Open = false
		delete(s.openExist, at.Tuple.Key())
		closedExist = exID
	}
	v := s.add(&Vertex{Type: Disappear, Node: at.Node, Tuple: at.Tuple, At: at.Stamp})
	// The EXIST record was written while its span was still open; the
	// closure rides on this DISAPPEAR record instead of rewriting it.
	r.persistVertex(s, v, 0, closedExist)
}

// OnUnderive implements ndlog.Observer.
func (r *ShardedRecorder) OnUnderive(u ndlog.Underivation) {
	s := r.shardFor(u.Node)
	v := s.add(&Vertex{Type: Underive, Node: u.Node, Tuple: u.Head.Tuple, Rule: u.Rule, At: u.Head.Stamp})
	r.persistVertex(s, v, 0, -1)
}

var _ ndlog.Observer = (*ShardedRecorder)(nil)

// LastAppear finds the most recent appearance of a tuple on a node
// (shard-local, no fetches).
func (r *ShardedRecorder) LastAppear(node string, t ndlog.Tuple) (int, bool) {
	s, ok := r.shards[node]
	if !ok {
		return 0, false
	}
	ids := s.appearsByTuple[t.Key()]
	if len(ids) == 0 {
		return 0, false
	}
	return ids[len(ids)-1], true
}

// Materialize assembles the provenance tree rooted at a vertex of a
// node's shard, fetching remote subtrees on demand and counting each
// cross-shard resolution in Fetches.
func (r *ShardedRecorder) Materialize(node string, id int) (*Tree, error) {
	s, ok := r.shards[node]
	if !ok || id < 0 || id >= len(s.vertexes) {
		return nil, fmt.Errorf("provenance: no vertex %d on %s", id, node)
	}
	v := s.vertexes[id]
	t := &Tree{Vertex: v}
	if _, ok := s.aggDelta[id]; ok {
		// Aggregate delta chain: fold it into the full contributor list,
		// front to back, materializing each link's recorded contributor.
		var chain []int
		for cur := id; cur >= 0; {
			chain = append(chain, cur)
			link, ok := s.aggDelta[cur]
			if !ok {
				break
			}
			cur = link.prev
		}
		for i := len(chain) - 1; i >= 0; i-- {
			if err := r.materializeChildren(s, chain[i], t); err != nil {
				return nil, err
			}
		}
		return t, nil
	}
	if err := r.materializeChildren(s, id, t); err != nil {
		return nil, err
	}
	return t, nil
}

// materializeChildren materializes vertex id's direct children (local and
// remote) and appends them to t.
func (r *ShardedRecorder) materializeChildren(s *shard, id int, t *Tree) error {
	v := s.vertexes[id]
	for slot, c := range v.Children {
		var child *Tree
		var err error
		if c >= 0 {
			child, err = r.Materialize(s.node, c)
		} else if ref, ok := s.remote[id][slot]; ok {
			r.Fetches++
			child, err = r.Materialize(ref.node, ref.id)
		} else {
			continue
		}
		if err != nil {
			return err
		}
		child.Parent = t
		t.Children = append(t.Children, child)
	}
	return nil
}
