package provenance

// Structural fingerprints: every vertex recorded through a Graph carries a
// Merkle-style hash of the provenance tree hanging below it — an FNV-1a
// digest of the vertex's label fields (type, node, tuple, rule; never
// timestamps or IDs, matching Label() semantics) mixed with the ordered
// fingerprints of its children. Children are always fully populated before
// add() publishes a vertex, so a single bottom-up computation at add()
// time suffices; and because the graph is append-only (only an EXIST
// vertex's Span is ever mutated after publication, and Span is excluded),
// the cached value never needs invalidating.
//
// Two trees with equal fingerprints are structurally identical modulo
// 2^-64 hash collisions; DiffProv uses this to prune identical subtrees
// from tree diffs in O(1) and to dedupe counterfactual replays whose
// injected change-sets hash identically.

const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

func fnvByte(h uint64, b byte) uint64 {
	h ^= uint64(b)
	h *= fnvPrime
	return h
}

func fnvUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(v>>(8*i)))
	}
	return h
}

// fingerprintOf computes v's structural hash from its label fields and the
// already-cached fingerprints of its children. Must be called before v is
// appended to g.vertexes (children strictly precede parents).
//
// Aggregate DERIVE vertexes (delta chains, aggCount > 0) hash as a chain
// instead: label mixed with the previous head's fingerprint and the new
// contributor's fingerprint — O(1) per update where folding over the full
// contributor list would be O(k). The chain hash determines, recursively,
// every intermediate head label and every contributor subtree, so
// fingerprint equality still implies folded-tree structural identity
// (modulo 2^-64 collisions) — and because it never looks at Children, it
// is byte-identical whether the recorder materialized the full list
// eagerly or left the delta for lazy folding. Fingerprints commute with
// folding, which is what keeps the alignment memo and treediff pruning
// firing across both modes.
func (g *Graph) fingerprintOf(v *Vertex) uint64 {
	var h uint64
	if v.aggCount > 0 {
		h = fnvLabel(v)
		h = fnvUint64(h, g.fpOf(v.aggPrev))
		h = fnvUint64(h, g.fpOf(v.aggContrib))
	} else {
		h = fnvLabel(v)
		for _, c := range v.Children {
			h = fnvUint64(h, g.fpOf(c))
		}
	}
	if h == 0 {
		h = 1 // 0 is reserved for "no fingerprint" (shard-reported vertexes)
	}
	return h
}

// fpOf returns the cached fingerprint of a vertex ID, 0 when out of range.
func (g *Graph) fpOf(id int) uint64 {
	if id >= 0 && id < g.NumVertexes() {
		return g.vertex(id).fp
	}
	return 0
}

// fnvLabel digests the fields Label() renders, with separators so that
// field boundaries cannot alias.
func fnvLabel(v *Vertex) uint64 {
	h := fnvByte(fnvOffset, byte(v.Type))
	h = fnvString(h, v.Node)
	h = fnvByte(h, 0)
	h = fnvString(h, v.Tuple.Key())
	h = fnvByte(h, 0)
	h = fnvString(h, v.Rule)
	h = fnvByte(h, 0)
	return h
}

// Fingerprint returns the vertex's cached structural hash: the hash of the
// provenance subtree rooted at it. It is 0 only for vertexes recorded
// outside a Graph (distributed shard recorders), which carry none.
func (v *Vertex) Fingerprint() uint64 { return v.fp }

// Fingerprint returns the tree's structural hash. For trees projected from
// a Graph this is the root vertex's cached fingerprint; trees materialized
// from shard recorders (whose vertexes carry none) are hashed recursively
// on every call — never cached, because trees are shared read-only across
// concurrent diagnoses.
func (t *Tree) Fingerprint() uint64 {
	if t == nil {
		return 0
	}
	if t.Vertex.fp != 0 {
		return t.Vertex.fp
	}
	h := fnvLabel(t.Vertex)
	for _, c := range t.Children {
		h = fnvUint64(h, c.Fingerprint())
	}
	if h == 0 {
		h = 1
	}
	return h
}
