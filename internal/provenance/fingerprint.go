package provenance

// Structural fingerprints: every vertex recorded through a Graph carries a
// Merkle-style hash of the provenance tree hanging below it — an FNV-1a
// digest of the vertex's label fields (type, node, tuple, rule; never
// timestamps or IDs, matching Label() semantics) mixed with the ordered
// fingerprints of its children. Children are always fully populated before
// add() publishes a vertex, so a single bottom-up computation at add()
// time suffices; and because the graph is append-only (only an EXIST
// vertex's Span is ever mutated after publication, and Span is excluded),
// the cached value never needs invalidating.
//
// Two trees with equal fingerprints are structurally identical modulo
// 2^-64 hash collisions; DiffProv uses this to prune identical subtrees
// from tree diffs in O(1) and to dedupe counterfactual replays whose
// injected change-sets hash identically.

const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

func fnvByte(h uint64, b byte) uint64 {
	h ^= uint64(b)
	h *= fnvPrime
	return h
}

func fnvUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(v>>(8*i)))
	}
	return h
}

// fingerprintOf computes v's structural hash from its label fields and the
// already-cached fingerprints of its children. Must be called before v is
// appended to g.vertexes (children strictly precede parents).
func (g *Graph) fingerprintOf(v *Vertex) uint64 {
	h := fnvLabel(v)
	for _, c := range v.Children {
		var cf uint64
		if c >= 0 && c < len(g.vertexes) {
			cf = g.vertexes[c].fp
		}
		h = fnvUint64(h, cf)
	}
	if h == 0 {
		h = 1 // 0 is reserved for "no fingerprint" (shard-reported vertexes)
	}
	return h
}

// fnvLabel digests the fields Label() renders, with separators so that
// field boundaries cannot alias.
func fnvLabel(v *Vertex) uint64 {
	h := fnvByte(fnvOffset, byte(v.Type))
	h = fnvString(h, v.Node)
	h = fnvByte(h, 0)
	h = fnvString(h, v.Tuple.Key())
	h = fnvByte(h, 0)
	h = fnvString(h, v.Rule)
	h = fnvByte(h, 0)
	return h
}

// Fingerprint returns the vertex's cached structural hash: the hash of the
// provenance subtree rooted at it. It is 0 only for vertexes recorded
// outside a Graph (distributed shard recorders), which carry none.
func (v *Vertex) Fingerprint() uint64 { return v.fp }

// Fingerprint returns the tree's structural hash. For trees projected from
// a Graph this is the root vertex's cached fingerprint; trees materialized
// from shard recorders (whose vertexes carry none) are hashed recursively
// on every call — never cached, because trees are shared read-only across
// concurrent diagnoses.
func (t *Tree) Fingerprint() uint64 {
	if t == nil {
		return 0
	}
	if t.Vertex.fp != 0 {
		return t.Vertex.fp
	}
	h := fnvLabel(t.Vertex)
	for _, c := range t.Children {
		h = fnvUint64(h, c.Fingerprint())
	}
	if h == 0 {
		h = 1
	}
	return h
}
