package provenance

import (
	"fmt"
	"strings"

	"repro/internal/ndlog"
)

// Tree is a provenance tree: the projection of the provenance DAG rooted
// at one vertex (§2.1). Shared subgraphs are unfolded, so a vertex that
// contributes to the root through several paths occurs several times.
type Tree struct {
	Vertex   *Vertex
	Parent   *Tree
	Children []*Tree
}

// Tree projects the provenance tree rooted at the given vertex. Aggregate
// delta chains are folded on the way: a counting rule's DERIVE shows the
// full contributor list (Graph.ChildrenOf), exactly as if every update
// had recorded it in full.
func (g *Graph) Tree(rootID int) *Tree {
	v := g.Vertex(rootID)
	if v == nil {
		return nil
	}
	t := &Tree{Vertex: v}
	for _, c := range g.ChildrenOf(rootID) {
		ct := g.Tree(c)
		if ct != nil {
			ct.Parent = t
			t.Children = append(t.Children, ct)
		}
	}
	return t
}

// Size returns the number of vertexes in the tree (counting repeats, as
// the paper does when reporting tree sizes).
func (t *Tree) Size() int {
	if t == nil {
		return 0
	}
	n := 1
	for _, c := range t.Children {
		n += c.Size()
	}
	return n
}

// Depth returns the height of the tree (a single vertex has depth 1).
func (t *Tree) Depth() int {
	if t == nil {
		return 0
	}
	max := 0
	for _, c := range t.Children {
		if d := c.Depth(); d > max {
			max = d
		}
	}
	return max + 1
}

// Walk calls fn for every tree node in preorder.
func (t *Tree) Walk(fn func(*Tree)) {
	if t == nil {
		return
	}
	fn(t)
	for _, c := range t.Children {
		c.Walk(fn)
	}
}

// Root follows parent pointers to the root of the tree.
func (t *Tree) Root() *Tree {
	for t.Parent != nil {
		t = t.Parent
	}
	return t
}

// String renders the tree with indentation, for debugging and the CLI.
func (t *Tree) String() string {
	var sb strings.Builder
	t.dump(&sb, 0)
	return sb.String()
}

func (t *Tree) dump(sb *strings.Builder, depth int) {
	sb.WriteString(strings.Repeat("  ", depth))
	sb.WriteString(t.Vertex.String())
	sb.WriteByte('\n')
	for _, c := range t.Children {
		c.dump(sb, depth+1)
	}
}

// appearStamp returns the appearance time of a DERIVE child vertex: the
// At of an APPEAR (event tuples) or the opening stamp of an EXIST.
func appearStamp(v *Vertex) (ndlog.Stamp, bool) {
	switch v.Type {
	case Appear:
		return v.At, true
	case Exist:
		return v.Span.From, true
	default:
		return ndlog.Stamp{}, false
	}
}

// FindSeed locates the seed of the tree per §4.2: starting at the root,
// repeatedly descend into the child that appeared last (the trigger of
// each derivation), until reaching an INSERT leaf. The INSERT's tuple is
// the external stimulus from which the tree "sprung".
func (t *Tree) FindSeed() (*Tree, error) {
	cur := t
	for {
		switch cur.Vertex.Type {
		case Insert:
			return cur, nil
		case Appear, Exist:
			// Follow the (single) cause: DERIVE or INSERT.
			if len(cur.Children) != 1 {
				return nil, fmt.Errorf("provenance: %s vertex with %d causes", cur.Vertex.Type, len(cur.Children))
			}
			cur = cur.Children[0]
		case Derive:
			if len(cur.Children) == 0 {
				return nil, fmt.Errorf("provenance: DERIVE %s has no preconditions", cur.Vertex.Tuple)
			}
			best := -1
			var bestStamp ndlog.Stamp
			for i, c := range cur.Children {
				st, ok := appearStamp(c.Vertex)
				if !ok {
					return nil, fmt.Errorf("provenance: DERIVE child is %s, want APPEAR or EXIST", c.Vertex.Type)
				}
				if best < 0 || bestStamp.Before(st) {
					best, bestStamp = i, st
				}
			}
			cur = cur.Children[best]
		default:
			return nil, fmt.Errorf("provenance: cannot descend through %s vertex", cur.Vertex.Type)
		}
	}
}

// TriggerChain returns the path from the root to the seed (inclusive),
// the "special branch" of §4.2 that describes how the stimulus made its
// way through the system.
func (t *Tree) TriggerChain() ([]*Tree, error) {
	seed, err := t.FindSeed()
	if err != nil {
		return nil, err
	}
	var rev []*Tree
	for cur := seed; cur != nil; cur = cur.Parent {
		rev = append(rev, cur)
	}
	chain := make([]*Tree, len(rev))
	for i := range rev {
		chain[i] = rev[len(rev)-1-i]
	}
	return chain, nil
}

// Labels returns the multiset of vertex labels in the tree, used by the
// naive diff baseline.
func (t *Tree) Labels() map[string]int {
	out := map[string]int{}
	t.Walk(func(n *Tree) { out[n.Vertex.Label()]++ })
	return out
}

// CountType returns how many vertexes of the given type the tree contains.
func (t *Tree) CountType(vt VertexType) int {
	n := 0
	t.Walk(func(node *Tree) {
		if node.Vertex.Type == vt {
			n++
		}
	})
	return n
}
