package provenance

import (
	"math/rand"
	"testing"

	"repro/internal/ndlog"
)

// randomExecution drives a random mix of inserts, deletes, and packets
// through a two-rule program and returns the graph plus the engine.
func randomExecution(t *testing.T, seed int64, events int) (*ndlog.Engine, *Graph) {
	t.Helper()
	prog := ndlog.MustParse(`
table flowEntry/3 base mutable;
table policy/2 base mutable;
table derivedEntry/3;
table packet/1 event base;

rule de derivedEntry(Prio + 100, M, Nxt) :- policy(Prio, Nxt), flowEntry(Prio, M, Nxt).
rule fw packet(@Nxt, Dst) :-
    packet(@Sw, Dst), flowEntry(@Sw, Prio, M, Nxt), matches(Dst, M), argmax Prio.
`)
	rec := NewRecorder(prog)
	e := ndlog.New(prog, rec)
	r := rand.New(rand.NewSource(seed))
	nodes := []string{"a", "b", "c"}
	var inserted []ndlog.At
	for i := 0; i < events; i++ {
		node := nodes[r.Intn(len(nodes))]
		tick := int64(i)
		switch r.Intn(5) {
		case 0, 1:
			// Forward strictly "rightward" so forwarding stays loop-free.
			var nxt string
			idx := indexOf(nodes, node)
			if idx+1 < len(nodes) {
				nxt = nodes[idx+1+r.Intn(len(nodes)-idx-1)]
			} else {
				nxt = "sink"
			}
			fe := ndlog.NewTuple("flowEntry",
				ndlog.Int(r.Int63n(10)),
				ndlog.Prefix{Addr: ndlog.IP(r.Uint32()).Mask(8), Bits: 8},
				ndlog.Str(nxt))
			if err := e.ScheduleInsert(node, fe, tick); err != nil {
				t.Fatal(err)
			}
			inserted = append(inserted, ndlog.At{Node: node, Tuple: fe})
		case 2:
			if len(inserted) > 0 {
				victim := inserted[r.Intn(len(inserted))]
				if err := e.ScheduleDelete(victim.Node, victim.Tuple, tick); err != nil {
					t.Fatal(err)
				}
			}
		case 3:
			pol := ndlog.NewTuple("policy", ndlog.Int(r.Int63n(10)), ndlog.Str(nodes[r.Intn(len(nodes))]))
			if err := e.ScheduleInsert(node, pol, tick); err != nil {
				t.Fatal(err)
			}
		default:
			pkt := ndlog.NewTuple("packet", ndlog.IP(r.Uint32()))
			if err := e.ScheduleInsert(node, pkt, tick); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return e, rec.Graph()
}

func indexOf(ss []string, s string) int {
	for i, x := range ss {
		if x == s {
			return i
		}
	}
	return len(ss) - 1
}

// TestGraphInvariantsUnderRandomExecutions checks the provenance
// well-formedness invariants over many random executions (deletions,
// re-derivations, argmax, cross-node messages).
func TestGraphInvariantsUnderRandomExecutions(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		_, g := randomExecution(t, seed, 120)
		counts := map[VertexType]int{}
		g.Vertexes(func(v *Vertex) {
			counts[v.Type]++
			for _, c := range v.Children {
				if c >= v.ID {
					t.Fatalf("seed %d: cycle: vertex %d -> child %d", seed, v.ID, c)
				}
				if g.Vertex(c) == nil {
					t.Fatalf("seed %d: dangling child %d", seed, c)
				}
			}
			switch v.Type {
			case Derive:
				if v.Trigger < 0 || v.Trigger >= len(v.Children) {
					t.Fatalf("seed %d: DERIVE without a valid trigger", seed)
				}
			case Appear:
				if len(v.Children) > 1 {
					t.Fatalf("seed %d: APPEAR with %d causes", seed, len(v.Children))
				}
			case Exist:
				if len(v.Children) != 1 || g.Vertex(v.Children[0]).Type != Appear {
					t.Fatalf("seed %d: malformed EXIST", seed)
				}
				if !v.Span.Open && v.Span.To.Before(v.Span.From) {
					t.Fatalf("seed %d: EXIST interval ends before it starts", seed)
				}
			case Disappear:
				if len(v.Children) > 1 {
					t.Fatalf("seed %d: DISAPPEAR with %d causes", seed, len(v.Children))
				}
			}
		})
		// Conservation: every DISAPPEAR closes an EXIST, so closed
		// EXISTs == DISAPPEARs, and INSERTs+DERIVEs >= APPEARs.
		closed := 0
		g.Vertexes(func(v *Vertex) {
			if v.Type == Exist && !v.Span.Open {
				closed++
			}
		})
		if closed != counts[Disappear] {
			t.Fatalf("seed %d: %d closed EXISTs vs %d DISAPPEARs", seed, closed, counts[Disappear])
		}
		if counts[Appear] > counts[Insert]+counts[Derive] {
			t.Fatalf("seed %d: more appearances than causes", seed)
		}
	}
}

// TestTreesAreFiniteAndSeeded checks that every event appearance yields a
// projectable tree whose seed is a base INSERT.
func TestTreesAreFiniteAndSeeded(t *testing.T) {
	for seed := int64(20); seed < 30; seed++ {
		_, g := randomExecution(t, seed, 100)
		trees := 0
		g.Vertexes(func(v *Vertex) {
			if v.Type != Appear || v.Tuple.Table != "packet" {
				return
			}
			tree := g.Tree(v.ID)
			if tree.Size() <= 0 || tree.Size() > g.NumVertexes()*4 {
				t.Fatalf("seed %d: implausible tree size %d", seed, tree.Size())
			}
			s, err := tree.FindSeed()
			if err != nil {
				t.Fatalf("seed %d: FindSeed: %v", seed, err)
			}
			if s.Vertex.Type != Insert {
				t.Fatalf("seed %d: seed is %s, want INSERT", seed, s.Vertex.Type)
			}
			trees++
		})
		if trees == 0 {
			t.Fatalf("seed %d: no packet trees produced", seed)
		}
	}
}

// TestReplayedGraphIdenticalToLive re-runs a random execution and checks
// the graphs match vertex for vertex (the determinism DiffProv rests on).
func TestReplayedGraphIdenticalToLive(t *testing.T) {
	for seed := int64(30); seed < 38; seed++ {
		_, g1 := randomExecution(t, seed, 80)
		_, g2 := randomExecution(t, seed, 80)
		if g1.NumVertexes() != g2.NumVertexes() {
			t.Fatalf("seed %d: vertex counts differ: %d vs %d", seed, g1.NumVertexes(), g2.NumVertexes())
		}
		for i := 0; i < g1.NumVertexes(); i++ {
			a, b := g1.Vertex(i), g2.Vertex(i)
			if a.Label() != b.Label() || a.At != b.At || a.Trigger != b.Trigger {
				t.Fatalf("seed %d: vertex %d differs: %s vs %s", seed, i, a, b)
			}
		}
	}
}
