package provenance

import (
	"testing"

	"repro/internal/ndlog"
)

// runFwdSharded runs the forwarding scenario with both a monolithic and a
// sharded recorder attached (via a tee), so the materialized trees can be
// compared vertex for vertex.
type teeObserver struct{ a, b ndlog.Observer }

func (t teeObserver) OnBaseInsert(at ndlog.At) { t.a.OnBaseInsert(at); t.b.OnBaseInsert(at) }
func (t teeObserver) OnBaseDelete(at ndlog.At) { t.a.OnBaseDelete(at); t.b.OnBaseDelete(at) }
func (t teeObserver) OnAppear(at ndlog.At, id int64) {
	t.a.OnAppear(at, id)
	t.b.OnAppear(at, id)
}
func (t teeObserver) OnDisappear(at ndlog.At, id int64) {
	t.a.OnDisappear(at, id)
	t.b.OnDisappear(at, id)
}
func (t teeObserver) OnDerive(d ndlog.Derivation)     { t.a.OnDerive(d); t.b.OnDerive(d) }
func (t teeObserver) OnUnderive(u ndlog.Underivation) { t.a.OnUnderive(u); t.b.OnUnderive(u) }

func TestShardedMaterializationMatchesMonolithic(t *testing.T) {
	prog := ndlog.MustParse(`
table flowEntry/3 base mutable;
table packet/1 event base;

rule fw packet(@Nxt, Dst) :-
    packet(@Sw, Dst),
    flowEntry(@Sw, Prio, M, Nxt),
    matches(Dst, M),
    argmax Prio.
`)
	mono := NewRecorder(prog)
	sharded := NewShardedRecorder(prog)
	e := ndlog.New(prog, teeObserver{a: mono, b: sharded})
	mp := ndlog.MustParsePrefix
	e.ScheduleInsert("s1", ndlog.NewTuple("flowEntry", ndlog.Int(1), mp("0.0.0.0/0"), ndlog.Str("s2")), 0)
	e.ScheduleInsert("s2", ndlog.NewTuple("flowEntry", ndlog.Int(1), mp("0.0.0.0/0"), ndlog.Str("h1")), 0)
	pktIP := ndlog.MustParseIP("10.1.2.3")
	e.ScheduleInsert("s1", ndlog.NewTuple("packet", pktIP), 5)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}

	pkt := ndlog.NewTuple("packet", pktIP)
	monoTree := mono.Graph().Tree(mono.Graph().LastAppear("h1", pkt).ID)
	id, ok := sharded.LastAppear("h1", pkt)
	if !ok {
		t.Fatal("sharded recorder lost the arrival")
	}
	distTree, err := sharded.Materialize("h1", id)
	if err != nil {
		t.Fatal(err)
	}
	if monoTree.Size() != distTree.Size() {
		t.Fatalf("tree sizes differ: monolithic %d, sharded %d\n%s\nvs\n%s",
			monoTree.Size(), distTree.Size(), monoTree, distTree)
	}
	// Structural comparison: same labels in the same positions.
	var compare func(a, b *Tree) bool
	compare = func(a, b *Tree) bool {
		if a.Vertex.Label() != b.Vertex.Label() || len(a.Children) != len(b.Children) {
			return false
		}
		for i := range a.Children {
			if !compare(a.Children[i], b.Children[i]) {
				return false
			}
		}
		return true
	}
	if !compare(monoTree, distTree) {
		t.Fatalf("trees differ structurally:\n%s\nvs\n%s", monoTree, distTree)
	}
	// The sharded materialization paid cross-node fetches: the packet
	// crossed s1 -> s2 -> h1, so at least two remote resolutions.
	if sharded.Fetches < 2 {
		t.Errorf("fetches = %d, want >= 2 (cross-node subtrees)", sharded.Fetches)
	}
	// Shards hold only local history.
	if sharded.ShardSize("h1") >= mono.Graph().NumVertexes() {
		t.Error("a shard must be smaller than the whole graph")
	}
	total := 0
	for _, n := range sharded.Nodes() {
		total += sharded.ShardSize(n)
	}
	if total != mono.Graph().NumVertexes() {
		t.Errorf("shard sizes sum to %d, want %d (no vertex lost or duplicated)",
			total, mono.Graph().NumVertexes())
	}
	// The seed is findable on the materialized tree too.
	seed, err := distTree.FindSeed()
	if err != nil {
		t.Fatal(err)
	}
	if seed.Vertex.Type != Insert || seed.Vertex.Node != "s1" {
		t.Errorf("seed = %s on %s", seed.Vertex.Type, seed.Vertex.Node)
	}
}

func TestShardedMaterializeErrors(t *testing.T) {
	r := NewShardedRecorder(ndlog.MustParse("table a/1 base;"))
	if _, err := r.Materialize("nope", 0); err == nil {
		t.Error("unknown shard must error")
	}
	if _, ok := r.LastAppear("nope", ndlog.NewTuple("a", ndlog.Int(1))); ok {
		t.Error("unknown shard must miss")
	}
}
