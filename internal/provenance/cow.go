package provenance

// Copy-on-write graph forks.
//
// A counterfactual trial's provenance graph is the cached prefix graph —
// tens of thousands of vertexes — plus a short suffix. Deep Fork copies
// the whole vertex arena and every index map per trial. The CoW scheme
// shares the frozen prefix instead:
//
//   - Seal freezes a recorder (and its graph) when its engine enters the
//     prefix cache; sealed graphs are never recorded into again.
//   - Fork of a sealed CoW graph keeps a reference to the base, stores
//     only fork-local vertexes in its own arena tail (IDs continue from
//     baseLen), and starts every index map empty: writes land locally,
//     reads walk the base chain in shadowing order.
//   - The single in-place mutation the recorder ever performs — closing
//     an EXIST vertex's Span when its tuple dies — goes through
//     mutableVertex, which copies the base vertex into the fork's
//     redirect map. Fingerprints exclude Span, so the copy keeps its
//     cached fp.
//
// Slice-valued index entries (appearsByTuple, appearsByTable,
// triggerParents) are append-only, so a fork's local entry holds only
// the IDs the fork itself appended (a tail): reads concatenate the
// chain oldest-first instead of the append copying the base's slice —
// a hot table-level entry can index the whole prefix, and one
// counterfactual append must not pay for re-copying it. openExist is
// the only map with deletions; forks tombstone with -1 (vertex IDs are
// never negative).
//
// Everything downstream — tree projection, seed finding, fold memo — goes
// through the accessors, so CoW and deep forks are observationally
// identical; the differential suites run both.

// WithCopyOnWriteForks enables or disables copy-on-write Fork for sealed
// recorders and their graphs (default on). Results are byte-identical
// either way; the switch is the ablation arm of the fork differential
// suites.
func WithCopyOnWriteForks(on bool) RecorderOption {
	return func(r *Recorder) { r.cow = on }
}

// Seal freezes the recorder and its graph for the prefix cache: from now
// on the pair is only ever forked, never recorded into. Forking a sealed
// CoW recorder shares the frozen graph instead of copying it.
func (r *Recorder) Seal() {
	r.sealed = true
	r.graph.sealed = true
}

// Sealed reports whether Seal froze the recorder.
func (r *Recorder) Sealed() bool { return r.sealed }

// vertex returns the vertex with the given ID, resolving through the
// fork-local tail, the redirect overlay, and the frozen base chain. The
// caller guarantees 0 <= id < NumVertexes().
func (g *Graph) vertex(id int) *Vertex {
	if id >= g.baseLen {
		return g.vertexes[id-g.baseLen]
	}
	if v, ok := g.redirect[id]; ok {
		return v
	}
	return g.base.vertex(id)
}

// mutableVertex returns a vertex this graph may mutate in place, copying
// a frozen base vertex into the redirect overlay on first access. Only
// the recorder's EXIST-span closing uses it.
func (g *Graph) mutableVertex(id int) *Vertex {
	if g.sealed {
		panic("provenance: mutate vertex of sealed graph")
	}
	if id >= g.baseLen {
		return g.vertexes[id-g.baseLen]
	}
	if v, ok := g.redirect[id]; ok {
		return v
	}
	cp := *g.base.vertex(id)
	if g.redirect == nil {
		g.redirect = map[int]*Vertex{}
	}
	g.redirect[id] = &cp
	return &cp
}

// Map selectors: top-level functions (no closure allocation) that let the
// chain walkers below address one index map per call site.

func selAppearByRef(g *Graph) map[string]int      { return g.appearByRef }
func selOpenExist(g *Graph) map[string]int        { return g.openExist }
func selExistByRef(g *Graph) map[string]int       { return g.existByRef }
func selLastDisappear(g *Graph) map[string]int    { return g.lastDisappear }
func selHeadAppear(g *Graph) map[int]int          { return g.headAppear }
func selExistOf(g *Graph) map[int]int             { return g.existOf }
func selAppearsByTuple(g *Graph) map[string][]int { return g.appearsByTuple }
func selAppearsByTable(g *Graph) map[string][]int { return g.appearsByTable }
func selTriggerParents(g *Graph) map[int][]int    { return g.triggerParents }

// lookupStr resolves a string-keyed vertex lookup through the chain. A
// negative stored value is a deletion tombstone (only openExist stores
// them; real vertex IDs are never negative).
func (g *Graph) lookupStr(sel func(*Graph) map[string]int, key string) (int, bool) {
	for gr := g; gr != nil; gr = gr.base {
		if v, ok := sel(gr)[key]; ok {
			if v < 0 {
				return 0, false
			}
			return v, true
		}
	}
	return 0, false
}

// lookupInt is lookupStr for int-keyed maps.
func (g *Graph) lookupInt(sel func(*Graph) map[int]int, key int) (int, bool) {
	for gr := g; gr != nil; gr = gr.base {
		if v, ok := sel(gr)[key]; ok {
			if v < 0 {
				return 0, false
			}
			return v, true
		}
	}
	return 0, false
}

// deriveVertex resolves an engine derivation ID to its DERIVE vertex.
func (g *Graph) deriveVertex(id int64) (int, bool) {
	for gr := g; gr != nil; gr = gr.base {
		if v, ok := gr.byDerive[id]; ok {
			return v, true
		}
	}
	return 0, false
}

// deleteOpenExist removes a tuple's open-EXIST entry: deleted outright at
// a chain root, tombstoned in a fork so the base entry stays shadowed.
func (g *Graph) deleteOpenExist(tk string) {
	if g.base != nil {
		g.openExist[tk] = -1
	} else {
		delete(g.openExist, tk)
	}
}

// forEachStrSlice visits a key's effective slice entry in insertion
// order. A fork's local entry is a tail appended after everything in
// its base (IDs only grow along the chain), so the walk runs
// deepest-base-first.
func (g *Graph) forEachStrSlice(sel func(*Graph) map[string][]int, key string, fn func(id int)) {
	if g.base != nil {
		g.base.forEachStrSlice(sel, key, fn)
	}
	for _, id := range sel(g)[key] {
		fn(id)
	}
}

// forEachIntSlice is forEachStrSlice for int-keyed maps.
func (g *Graph) forEachIntSlice(sel func(*Graph) map[int][]int, key int, fn func(id int)) {
	if g.base != nil {
		g.base.forEachIntSlice(sel, key, fn)
	}
	for _, id := range sel(g)[key] {
		fn(id)
	}
}

// lastStrSlice returns the newest ID in a key's effective slice entry,
// or -1. The topmost chain link with a non-empty local entry holds the
// most recent append.
func (g *Graph) lastStrSlice(sel func(*Graph) map[string][]int, key string) int {
	for gr := g; gr != nil; gr = gr.base {
		if ids := sel(gr)[key]; len(ids) > 0 {
			return ids[len(ids)-1]
		}
	}
	return -1
}

// appendStrSlice appends id to a key's local slice entry. The base
// chain's entries stay untouched and are concatenated on read
// (forEachStrSlice) — appends are hot (one per APPEAR) and must not
// re-copy a table-level index of the whole frozen prefix.
func (g *Graph) appendStrSlice(sel func(*Graph) map[string][]int, key string, id int) {
	m := sel(g)
	m[key] = append(m[key], id)
}

// appendIntSlice is appendStrSlice for int-keyed maps.
func (g *Graph) appendIntSlice(sel func(*Graph) map[int][]int, key int, id int) {
	m := sel(g)
	m[key] = append(m[key], id)
}

// Chain collectors: flatten an overlay into one map for deep forks. Each
// falls back to a plain copy for root graphs.

func collectStrInt(g *Graph, sel func(*Graph) map[string]int) map[string]int {
	if g.base == nil {
		return copyIntMap(sel(g))
	}
	out := map[string]int{}
	seen := map[string]bool{}
	for gr := g; gr != nil; gr = gr.base {
		for k, v := range sel(gr) {
			if seen[k] {
				continue
			}
			seen[k] = true
			if v >= 0 {
				out[k] = v
			}
		}
	}
	return out
}

func collectIntInt(g *Graph, sel func(*Graph) map[int]int) map[int]int {
	if g.base == nil {
		m := sel(g)
		out := make(map[int]int, len(m))
		for k, v := range m {
			out[k] = v
		}
		return out
	}
	out := map[int]int{}
	seen := map[int]bool{}
	for gr := g; gr != nil; gr = gr.base {
		for k, v := range sel(gr) {
			if seen[k] {
				continue
			}
			seen[k] = true
			if v >= 0 {
				out[k] = v
			}
		}
	}
	return out
}

func collectStrSlice(g *Graph, sel func(*Graph) map[string][]int) map[string][]int {
	if g.base == nil {
		return copySliceMap(sel(g))
	}
	// Local entries are tails: append them after the base chain's
	// (recursion bottoms out at the root with fresh copies).
	out := collectStrSlice(g.base, sel)
	for k, ids := range sel(g) {
		out[k] = append(out[k], ids...)
	}
	return out
}

func collectIntSlice(g *Graph, sel func(*Graph) map[int][]int) map[int][]int {
	if g.base == nil {
		m := sel(g)
		out := make(map[int][]int, len(m))
		for k, ids := range m {
			out[k] = append([]int(nil), ids...)
		}
		return out
	}
	out := collectIntSlice(g.base, sel)
	for k, ids := range sel(g) {
		out[k] = append(out[k], ids...)
	}
	return out
}

func collectDerive(g *Graph) map[int64]int {
	out := make(map[int64]int, len(g.byDerive))
	for gr := g; gr != nil; gr = gr.base {
		for k, v := range gr.byDerive {
			if _, ok := out[k]; ok {
				continue
			}
			out[k] = v
		}
	}
	return out
}

// underiveOf resolves an engine underivation ID through the recorder's
// frozen-base chain (the map has no deletions, so absence means absence).
func (r *Recorder) underiveOf(id int64) (int, bool) {
	for rr := r; rr != nil; rr = rr.base {
		if v, ok := rr.underiveVertex[id]; ok {
			return v, true
		}
	}
	return 0, false
}
