package provenance

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the tree in Graphviz DOT format, mimicking the paper's
// Figure 2 styling: the trigger chain (the "special branch" carrying the
// stimulus) is highlighted, and vertex shapes distinguish base inputs
// from derivations.
func (t *Tree) WriteDOT(w io.Writer, name string) error {
	if t == nil {
		return fmt.Errorf("provenance: nil tree")
	}
	onChain := map[*Tree]bool{}
	if chain, err := t.TriggerChain(); err == nil {
		for _, n := range chain {
			onChain[n] = true
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=BT;\n  node [fontsize=10];\n")
	id := 0
	var emit func(n *Tree) int
	emit = func(n *Tree) int {
		my := id
		id++
		shape := "box"
		style := "solid"
		switch n.Vertex.Type {
		case Insert, Delete:
			shape = "oval"
			style = "bold"
		case Exist:
			shape = "box"
			style = "rounded"
		case Derive, Underive:
			shape = "hexagon"
		}
		color := "black"
		if onChain[n] {
			color = "blue"
		}
		fmt.Fprintf(&b, "  n%d [label=%q, shape=%s, style=%q, color=%s];\n",
			my, n.Vertex.Label(), shape, style, color)
		for _, c := range n.Children {
			ci := emit(c)
			fmt.Fprintf(&b, "  n%d -> n%d;\n", ci, my)
		}
		return my
	}
	emit(t)
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// DOT renders the tree as a DOT string.
func (t *Tree) DOT(name string) string {
	var sb strings.Builder
	if err := t.WriteDOT(&sb, name); err != nil {
		return ""
	}
	return sb.String()
}
