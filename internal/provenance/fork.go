package provenance

// Fork copies the graph so the fork can keep growing independently of the
// original. A sealed graph with copy-on-write enabled (the default) forks
// in O(1) + O(fold memo): the frozen vertex arena and every index map are
// shared through the base chain and shadowed by fork-local overlays (see
// cow.go). Otherwise Fork deep-copies, materializing any overlays it is
// itself built on; results are byte-identical either way.
//
// In both modes vertex Children slices are shared: children are appended
// only while a vertex is being built, before add() publishes it, and never
// afterwards. The only post-publication mutation — closing an EXIST
// vertex's Span — is deep-copied (struct copy) or redirected (CoW).
//
// Fork never mutates the receiver, so concurrent forks of a shared graph
// are safe as long as the original has stopped recording.
func (g *Graph) Fork() *Graph {
	if g.cow && g.sealed {
		return g.forkCoW()
	}
	f := &Graph{
		vertexes:       make([]*Vertex, g.NumVertexes()),
		appearByRef:    collectStrInt(g, selAppearByRef),
		openExist:      collectStrInt(g, selOpenExist),
		existByRef:     collectStrInt(g, selExistByRef),
		byDerive:       collectDerive(g),
		appearsByTuple: collectStrSlice(g, selAppearsByTuple),
		lastDisappear:  collectStrInt(g, selLastDisappear),
		appearsByTable: collectStrSlice(g, selAppearsByTable),
		triggerParents: collectIntSlice(g, selTriggerParents),
		headAppear:     collectIntInt(g, selHeadAppear),
		existOf:        collectIntInt(g, selExistOf),
		foldMemo:       make(map[uint64][]int, len(g.foldMemo)),
		cow:            g.cow,
	}
	// Folded contributor lists are immutable once memoized, so the fork
	// shares the slices; chains extended in the fork append to fresh
	// slices keyed by new fingerprints. Taken under the lock because
	// sibling forks of a shared prefix may fold concurrently. (A CoW
	// fork's memo is self-contained — forkCoW snapshots the base's — so
	// the receiver's own memo is always the complete one.)
	g.foldMu.Lock()
	for k, ids := range g.foldMemo {
		f.foldMemo[k] = ids
	}
	g.foldMu.Unlock()
	// One backing array for all vertex copies: forking a long prefix
	// copies tens of thousands of vertexes, and per-vertex allocations
	// dominate the fork's cost. vertex() resolves redirected EXIST copies,
	// so a deep fork of a CoW fork materializes the overlay too.
	backing := make([]Vertex, len(f.vertexes))
	for i := range f.vertexes {
		backing[i] = *g.vertex(i)
		f.vertexes[i] = &backing[i]
	}
	return f
}

// forkCoW builds a copy-on-write fork of a sealed graph: empty overlay
// maps with the receiver as their read-through base. Only the fold memo is
// copied eagerly — it is written during reads (tree projection), so
// chaining it through the base would need cross-graph locking.
func (g *Graph) forkCoW() *Graph {
	f := &Graph{
		appearByRef:    map[string]int{},
		openExist:      map[string]int{},
		existByRef:     map[string]int{},
		byDerive:       map[int64]int{},
		appearsByTuple: map[string][]int{},
		lastDisappear:  map[string]int{},
		appearsByTable: map[string][]int{},
		triggerParents: map[int][]int{},
		headAppear:     map[int]int{},
		existOf:        map[int]int{},
		base:           g,
		baseLen:        g.NumVertexes(),
		cow:            true,
	}
	g.foldMu.Lock()
	f.foldMemo = make(map[uint64][]int, len(g.foldMemo))
	for k, ids := range g.foldMemo {
		f.foldMemo[k] = ids
	}
	g.foldMu.Unlock()
	return f
}

func copyIntMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func copySliceMap(m map[string][]int) map[string][]int {
	out := make(map[string][]int, len(m))
	for k, ids := range m {
		out[k] = append([]int(nil), ids...)
	}
	return out
}

// Fork copies the recorder and its graph so the fork can observe a forked
// engine independently. The original recorder must be quiescent (its
// engine paused between work items); the bookkeeping that spans observer
// callbacks within one work item (pendingInsert/pendingDelete) is copied
// as-is, and is -1 between work items. A sealed CoW recorder forks by
// chaining: the graph forks CoW and underiveVertex reads walk the base.
func (r *Recorder) Fork() *Recorder {
	if r.cow && r.sealed {
		return &Recorder{
			prog:           r.prog,
			graph:          r.graph.Fork(),
			pendingInsert:  r.pendingInsert,
			pendingDelete:  r.pendingDelete,
			underiveVertex: map[int64]int{},
			eagerAgg:       r.eagerAgg,
			cow:            true,
			base:           r,
		}
	}
	f := &Recorder{
		prog:           r.prog,
		graph:          r.graph.Fork(),
		pendingInsert:  r.pendingInsert,
		pendingDelete:  r.pendingDelete,
		underiveVertex: make(map[int64]int, len(r.underiveVertex)),
		eagerAgg:       r.eagerAgg,
		cow:            r.cow,
	}
	// The chain walk materializes a CoW fork's overlay (single flat copy
	// for a root recorder; the map has no deletions).
	for rr := r; rr != nil; rr = rr.base {
		for k, v := range rr.underiveVertex {
			if _, ok := f.underiveVertex[k]; !ok {
				f.underiveVertex[k] = v
			}
		}
	}
	return f
}
