package provenance

// Fork deep-copies the graph so the fork can keep growing independently
// of the original. Vertex structs are copied — an EXIST vertex's Span is
// closed in place when its tuple dies — but Children slices are shared:
// children are appended only while a vertex is being built, before add()
// publishes it, and never afterwards. Maps whose values are slices
// (appearsByTuple, appearsByTable, triggerParents) copy the slices, since
// those are appended to as the execution continues.
//
// Fork never mutates the receiver, so concurrent forks of a shared graph
// are safe as long as the original has stopped recording.
func (g *Graph) Fork() *Graph {
	f := &Graph{
		vertexes:       make([]*Vertex, len(g.vertexes)),
		appearByRef:    copyIntMap(g.appearByRef),
		openExist:      copyIntMap(g.openExist),
		existByRef:     copyIntMap(g.existByRef),
		byDerive:       make(map[int64]int, len(g.byDerive)),
		appearsByTuple: copySliceMap(g.appearsByTuple),
		lastDisappear:  copyIntMap(g.lastDisappear),
		appearsByTable: copySliceMap(g.appearsByTable),
		triggerParents: make(map[int][]int, len(g.triggerParents)),
		headAppear:     make(map[int]int, len(g.headAppear)),
		existOf:        make(map[int]int, len(g.existOf)),
		foldMemo:       make(map[uint64][]int, len(g.foldMemo)),
	}
	// Folded contributor lists are immutable once memoized, so the fork
	// shares the slices; chains extended in the fork append to fresh
	// slices keyed by new fingerprints. Taken under the lock because
	// sibling forks of a shared prefix may fold concurrently.
	g.foldMu.Lock()
	for k, ids := range g.foldMemo {
		f.foldMemo[k] = ids
	}
	g.foldMu.Unlock()
	// One backing array for all vertex copies: forking a long prefix
	// copies tens of thousands of vertexes, and per-vertex allocations
	// dominate the fork's cost.
	backing := make([]Vertex, len(g.vertexes))
	for i, v := range g.vertexes {
		backing[i] = *v
		f.vertexes[i] = &backing[i]
	}
	for k, v := range g.byDerive {
		f.byDerive[k] = v
	}
	for k, ids := range g.triggerParents {
		f.triggerParents[k] = append([]int(nil), ids...)
	}
	for k, v := range g.headAppear {
		f.headAppear[k] = v
	}
	for k, v := range g.existOf {
		f.existOf[k] = v
	}
	return f
}

func copyIntMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func copySliceMap(m map[string][]int) map[string][]int {
	out := make(map[string][]int, len(m))
	for k, ids := range m {
		out[k] = append([]int(nil), ids...)
	}
	return out
}

// Fork copies the recorder and its graph so the fork can observe a forked
// engine independently. The original recorder must be quiescent (its
// engine paused between work items); the bookkeeping that spans observer
// callbacks within one work item (pendingInsert/pendingDelete) is copied
// as-is, and is -1 between work items.
func (r *Recorder) Fork() *Recorder {
	f := &Recorder{
		prog:           r.prog,
		graph:          r.graph.Fork(),
		pendingInsert:  r.pendingInsert,
		pendingDelete:  r.pendingDelete,
		underiveVertex: make(map[int64]int, len(r.underiveVertex)),
		eagerAgg:       r.eagerAgg,
	}
	for k, v := range r.underiveVertex {
		f.underiveVertex[k] = v
	}
	return f
}
