// Package provenance implements the temporal provenance graph of DTaP as
// used by DiffProv (§3.2 of the paper): an append-only DAG over seven
// vertex types (INSERT, DELETE, EXIST, DERIVE, UNDERIVE, APPEAR,
// DISAPPEAR) that records the causal connections between the states and
// events of an NDlog execution, plus tree projection and seed finding.
package provenance

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/ndlog"
)

// VertexType enumerates the seven vertex types of §3.2.
type VertexType uint8

// The vertex types. Positive vertexes describe tuples coming into being;
// negative vertexes (DELETE, UNDERIVE, DISAPPEAR) are their counterparts.
const (
	Insert VertexType = iota
	Delete
	Exist
	Derive
	Underive
	Appear
	Disappear
)

var vertexTypeNames = [...]string{
	Insert: "INSERT", Delete: "DELETE", Exist: "EXIST", Derive: "DERIVE",
	Underive: "UNDERIVE", Appear: "APPEAR", Disappear: "DISAPPEAR",
}

func (t VertexType) String() string {
	if int(t) < len(vertexTypeNames) {
		return vertexTypeNames[t]
	}
	return fmt.Sprintf("VERTEX(%d)", uint8(t))
}

// Vertex is one vertex of the provenance graph. Children point at direct
// causes; the graph is acyclic because children always precede parents in
// creation order.
type Vertex struct {
	ID    int
	Type  VertexType
	Node  string
	Tuple ndlog.Tuple
	Rule  string // rule name, for DERIVE/UNDERIVE

	// At is the event time for point vertexes (all but EXIST).
	At ndlog.Stamp
	// Span is the existence interval for EXIST vertexes.
	Span ndlog.Interval

	// Children are the IDs of the direct causes of this vertex.
	Children []int
	// Trigger, for DERIVE vertexes, is the index into Children of the
	// precondition that appeared last and thus triggered the rule
	// (-1 elsewhere). The seed-finding procedure of §4.2 follows these.
	Trigger int

	// fp is the Merkle-style structural hash of the subtree rooted here,
	// computed once by add() (see fingerprint.go); 0 means "none" (vertexes
	// reported by distributed shard recorders, which bypass add).
	fp uint64

	// Delta-chain annotation for aggregate DERIVE vertexes (aggCount > 0):
	// aggPrev is the vertex ID of the previous head's DERIVE (-1 for the
	// group's first), aggContrib the vertex ID of the new contributor's
	// APPEAR (-1 if unresolved), and aggCount the running contributor
	// count. ChildrenOf folds the chain into the full contributor list on
	// demand; recorded Children stay O(1) per update.
	aggPrev    int
	aggContrib int
	aggCount   int64
}

// Label renders the vertex without timestamps; the naive tree diff
// (§2.5) compares vertexes by label.
func (v *Vertex) Label() string {
	var sb strings.Builder
	sb.WriteString(v.Type.String())
	sb.WriteByte('(')
	sb.WriteString(v.Node)
	sb.WriteString(", ")
	sb.WriteString(v.Tuple.String())
	if v.Rule != "" {
		sb.WriteString(", ")
		sb.WriteString(v.Rule)
	}
	sb.WriteByte(')')
	return sb.String()
}

func (v *Vertex) String() string {
	if v.Type == Exist {
		to := "now"
		if !v.Span.Open {
			to = v.Span.To.String()
		}
		return fmt.Sprintf("EXIST(%s, %s, [%s, %s))", v.Node, v.Tuple, v.Span.From, to)
	}
	s := v.Label()
	return fmt.Sprintf("%s@%s", s, v.At)
}

// Graph is an append-only temporal provenance graph.
type Graph struct {
	vertexes []*Vertex

	// appearByRef locates the APPEAR vertex for a tuple appearance,
	// keyed by node|tupleKey|appearSeq (the engine's body references).
	appearByRef map[string]int
	// openExist tracks the currently-open EXIST vertex per node|tupleKey.
	openExist map[string]int
	// existByRef maps node|tupleKey|appearSeq to the EXIST vertex opened
	// by that appearance.
	existByRef map[string]int
	// byDerive maps engine derivation IDs to DERIVE vertex IDs.
	byDerive map[int64]int
	// appearsByTuple indexes APPEAR vertexes by node|tupleKey in order.
	appearsByTuple map[string][]int
	// lastDisappear maps node|tupleKey to the latest DISAPPEAR vertex.
	lastDisappear map[string]int
	// appearsByTable indexes APPEAR vertexes by node|table for queries.
	appearsByTable map[string][]int
	// triggerParents maps a vertex (EXIST or APPEAR) to the DERIVE
	// vertexes it triggered, for walking derivation chains upward.
	triggerParents map[int][]int
	// headAppear maps a DERIVE (or INSERT) vertex to the APPEAR of its
	// head tuple.
	headAppear map[int]int
	// existOf maps an APPEAR vertex to the EXIST vertex it opened.
	existOf map[int]int

	// foldMemo caches folded aggregate contributor lists, keyed by the
	// chain head's fingerprint: repeated Tree projections of the same
	// aggregate head (every diagnosis round, every treediff) pay the
	// O(k) chain walk once. Entries are immutable once stored. Guarded
	// by foldMu because trees may be projected from shared graphs
	// concurrently. Never chained through base: forkCoW snapshots the
	// base's memo, so each graph's memo is self-contained.
	foldMu   sync.Mutex
	foldMemo map[uint64][]int

	// Copy-on-write state (see cow.go). A CoW fork keeps the frozen base
	// graph it shadows: local vertexes occupy IDs baseLen and up, redirect
	// holds fork-private copies of base vertexes whose Span was closed
	// locally, and the index maps above become overlays over the base's.
	base     *Graph
	baseLen  int
	redirect map[int]*Vertex
	cow      bool
	sealed   bool
}

// NewGraph creates an empty provenance graph.
func NewGraph() *Graph {
	return &Graph{
		appearByRef:    map[string]int{},
		openExist:      map[string]int{},
		existByRef:     map[string]int{},
		byDerive:       map[int64]int{},
		appearsByTuple: map[string][]int{},
		lastDisappear:  map[string]int{},
		appearsByTable: map[string][]int{},
		triggerParents: map[int][]int{},
		headAppear:     map[int]int{},
		existOf:        map[int]int{},
		foldMemo:       map[uint64][]int{},
		cow:            true,
	}
}

// NumVertexes returns the number of vertexes in the graph, including
// those inherited from a frozen base.
func (g *Graph) NumVertexes() int { return g.baseLen + len(g.vertexes) }

// Vertex returns the vertex with the given ID.
func (g *Graph) Vertex(id int) *Vertex {
	if id < 0 || id >= g.NumVertexes() {
		return nil
	}
	return g.vertex(id)
}

func (g *Graph) add(v *Vertex) *Vertex {
	if g.sealed {
		panic("provenance: record into sealed graph (fork it instead)")
	}
	v.ID = g.NumVertexes()
	if v.Type != Derive {
		v.Trigger = -1
	}
	// Children are complete before a vertex is published and strictly
	// precede it, so the structural hash is final here.
	v.fp = g.fingerprintOf(v)
	g.vertexes = append(g.vertexes, v)
	return v
}

func refKey(node string, t ndlog.Tuple, seq uint64) string {
	return fmt.Sprintf("%s|%s|%d", node, t.Key(), seq)
}

func tupleKey(node string, t ndlog.Tuple) string {
	return node + "|" + t.Key()
}

// AppearVertexes returns the APPEAR vertex IDs for the exact tuple on the
// node, in chronological order.
func (g *Graph) AppearVertexes(node string, t ndlog.Tuple) []int {
	var out []int
	g.forEachStrSlice(selAppearsByTuple, tupleKey(node, t), func(id int) {
		out = append(out, id)
	})
	return out
}

// FindAppears returns the APPEAR vertexes on a node, over a table,
// matching the predicate, in chronological order. It is the graph's query
// entry point: "the packet that arrived at web server 2" is an APPEAR.
func (g *Graph) FindAppears(node, table string, pred func(ndlog.Tuple) bool) []*Vertex {
	var out []*Vertex
	g.forEachStrSlice(selAppearsByTable, node+"|"+table, func(id int) {
		v := g.vertex(id)
		if pred == nil || pred(v.Tuple) {
			out = append(out, v)
		}
	})
	return out
}

// LastAppear returns the most recent APPEAR of the tuple on the node, or
// nil.
func (g *Graph) LastAppear(node string, t ndlog.Tuple) *Vertex {
	id := g.lastStrSlice(selAppearsByTuple, tupleKey(node, t))
	if id < 0 {
		return nil
	}
	return g.vertex(id)
}

// TriggerParents returns the DERIVE vertexes that were triggered by the
// given vertex (the derivations for which it was the last precondition to
// appear). Following these walks a derivation chain from a seed upward.
func (g *Graph) TriggerParents(id int) []int {
	var out []int
	g.forEachIntSlice(selTriggerParents, id, func(p int) {
		out = append(out, p)
	})
	return out
}

// HeadAppear returns the APPEAR vertex of the head tuple produced by the
// given DERIVE (or following a base INSERT), or -1.
func (g *Graph) HeadAppear(id int) int {
	if a, ok := g.lookupInt(selHeadAppear, id); ok {
		return a
	}
	return -1
}

// ExistOf returns the EXIST vertex opened by the given APPEAR, or -1 for
// event tuples (which never exist as state).
func (g *Graph) ExistOf(appearID int) int {
	if e, ok := g.lookupInt(selExistOf, appearID); ok {
		return e
	}
	return -1
}

// Vertexes calls fn for every vertex in creation order.
func (g *Graph) Vertexes(fn func(*Vertex)) {
	for i, n := 0, g.NumVertexes(); i < n; i++ {
		fn(g.vertex(i))
	}
}

// AggDelta reports a vertex's aggregate delta-chain annotation: the
// vertex ID of the previous head's DERIVE (-1 for the first) and the
// running contributor count. ok is false for non-aggregate vertexes.
func (g *Graph) AggDelta(id int) (prev int, count int64, ok bool) {
	v := g.Vertex(id)
	if v == nil || v.aggCount == 0 {
		return 0, 0, false
	}
	return v.aggPrev, v.aggCount, true
}

// ChildrenOf returns the causal children of a vertex as consumers should
// see them: for aggregate DERIVE vertexes recorded as deltas, the chain
// is folded into the full contributor list (all of the group's
// contributors in appearance order); for everything else it is the
// recorded Children slice. The returned slice must not be mutated.
func (g *Graph) ChildrenOf(id int) []int {
	v := g.Vertex(id)
	if v == nil {
		return nil
	}
	// Eagerly-recorded aggregates (and count-1 chains) already carry the
	// full list in Children.
	if v.aggCount == 0 || int64(len(v.Children)) == v.aggCount {
		return v.Children
	}
	return g.foldAgg(v)
}

// foldAgg reconstructs the full contributor list of an aggregate head by
// walking the delta chain backwards, memoizing the result per chain-head
// fingerprint. The walk stops early at the first predecessor whose fold
// is already memoized, so across the queries a diagnosis issues each
// chain link is visited O(1) times amortized.
func (g *Graph) foldAgg(v *Vertex) []int {
	g.foldMu.Lock()
	defer g.foldMu.Unlock()
	if out, ok := g.foldMemo[v.fp]; ok {
		return out
	}
	var prefix []int
	var rev []int // contributors, newest first
	for cur := v; ; {
		if cur.aggContrib >= 0 {
			rev = append(rev, cur.aggContrib)
		}
		if cur.aggPrev < 0 || cur.aggPrev >= g.NumVertexes() {
			break
		}
		prev := g.vertex(cur.aggPrev)
		if out, ok := g.foldMemo[prev.fp]; ok {
			prefix = out
			break
		}
		if prev.aggCount > 0 && int64(len(prev.Children)) == prev.aggCount {
			prefix = prev.Children // eagerly materialized predecessor
			break
		}
		cur = prev
	}
	out := make([]int, 0, len(prefix)+len(rev))
	out = append(out, prefix...)
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	g.foldMemo[v.fp] = out
	return out
}
