package provenance

import (
	"fmt"
	"strings"
)

// Explain renders the provenance tree as the kind of step-by-step prose
// explanation the paper opens with ("The bus was dispatched at the
// terminal at 4:00pm, and arrived at stop A at 4:13pm; ..."): the trigger
// chain is narrated in order, and each step lists the state it depended
// on. This is the comprehensive-but-verbose answer that motivates
// differential provenance.
func (t *Tree) Explain() string {
	chain, err := t.TriggerChain()
	if err != nil {
		return "no explanation: " + err.Error()
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Why did %s appear on %s?\n", t.Vertex.Tuple, t.Vertex.Node)
	step := 1
	// Narrate from the seed (end of chain) to the root.
	for i := len(chain) - 1; i >= 0; i-- {
		n := chain[i]
		switch n.Vertex.Type {
		case Insert:
			fmt.Fprintf(&sb, "%2d. %s entered the system at %s (time %s).\n",
				step, n.Vertex.Tuple, n.Vertex.Node, n.Vertex.At)
			step++
		case Derive:
			fmt.Fprintf(&sb, "%2d. rule %s fired on %s, deriving %s", step, n.Vertex.Rule, n.Vertex.Node, n.Vertex.Tuple)
			deps := dependencies(n, chain)
			if len(deps) > 0 {
				fmt.Fprintf(&sb, "\n    because: %s", strings.Join(deps, "; "))
			}
			sb.WriteString(".\n")
			step++
		}
	}
	fmt.Fprintf(&sb, "In total, the full explanation has %d vertexes.\n", t.Size())
	return sb.String()
}

// dependencies lists a derivation's side conditions (children not on the
// trigger chain).
func dependencies(d *Tree, chain []*Tree) []string {
	onChain := map[*Tree]bool{}
	for _, n := range chain {
		onChain[n] = true
	}
	var out []string
	for _, c := range d.Children {
		if onChain[c] {
			continue
		}
		v := c.Vertex
		switch v.Type {
		case Exist:
			out = append(out, fmt.Sprintf("%s held %s (since %s)", v.Node, v.Tuple, v.Span.From))
		case Appear:
			out = append(out, fmt.Sprintf("%s saw %s at %s", v.Node, v.Tuple, v.At))
		}
	}
	return out
}
