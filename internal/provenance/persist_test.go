package provenance

import (
	"testing"

	"repro/internal/ndlog"
)

// driveShardScenario runs the forwarding scenario — including a
// flow-entry swap so spans close and DELETE/UNDERIVE/DISAPPEAR vertexes
// exist — into the given sharded recorder.
func driveShardScenario(t *testing.T, r *ShardedRecorder) *ndlog.Engine {
	t.Helper()
	e := ndlog.New(r.prog, r)
	mp := ndlog.MustParsePrefix
	e.ScheduleInsert("s1", ndlog.NewTuple("flowEntry", ndlog.Int(1), mp("0.0.0.0/0"), ndlog.Str("s2")), 0)
	e.ScheduleInsert("s2", ndlog.NewTuple("flowEntry", ndlog.Int(1), mp("0.0.0.0/0"), ndlog.Str("h1")), 0)
	e.ScheduleInsert("s1", ndlog.NewTuple("packet", ndlog.MustParseIP("10.1.2.3")), 5)
	e.ScheduleDelete("s2", ndlog.NewTuple("flowEntry", ndlog.Int(1), mp("0.0.0.0/0"), ndlog.Str("h1")), 10)
	e.ScheduleInsert("s2", ndlog.NewTuple("flowEntry", ndlog.Int(2), mp("0.0.0.0/0"), ndlog.Str("h2")), 10)
	e.ScheduleInsert("s1", ndlog.NewTuple("packet", ndlog.MustParseIP("10.9.9.9")), 15)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return e
}

func shardProg(t *testing.T) *ndlog.Program {
	t.Helper()
	return ndlog.MustParse(`
table flowEntry/3 base mutable;
table packet/1 event base;

rule fw packet(@Nxt, Dst) :-
    packet(@Sw, Dst),
    flowEntry(@Sw, Prio, M, Nxt),
    matches(Dst, M),
    argmax Prio.
`)
}

// compareShards asserts two recorders hold identical shards: same nodes
// in the same order, same vertexes, remote refs, agg links, and indexes
// that matter for queries.
func compareShards(t *testing.T, want, got *ShardedRecorder) {
	t.Helper()
	wn, gn := want.Nodes(), got.Nodes()
	if len(wn) != len(gn) {
		t.Fatalf("node sets differ: %v vs %v", wn, gn)
	}
	for i := range wn {
		if wn[i] != gn[i] {
			t.Fatalf("node order differs: %v vs %v", wn, gn)
		}
	}
	for _, node := range wn {
		ws, gs := want.shards[node], got.shards[node]
		if len(ws.vertexes) != len(gs.vertexes) {
			t.Fatalf("%s: %d vertexes vs %d", node, len(ws.vertexes), len(gs.vertexes))
		}
		for i := range ws.vertexes {
			wv, gv := ws.vertexes[i], gs.vertexes[i]
			if wv.Type != gv.Type || wv.Node != gv.Node || !wv.Tuple.Equal(gv.Tuple) ||
				wv.Rule != gv.Rule || wv.At != gv.At || wv.Span != gv.Span ||
				wv.Trigger != gv.Trigger || len(wv.Children) != len(gv.Children) {
				t.Fatalf("%s vertex %d differs:\n%+v\nvs\n%+v", node, i, wv, gv)
			}
			for j := range wv.Children {
				if wv.Children[j] != gv.Children[j] {
					t.Fatalf("%s vertex %d child %d differs", node, i, j)
				}
			}
		}
		if len(ws.remote) != len(gs.remote) {
			t.Fatalf("%s: remote-ref maps differ in size", node)
		}
		for id, refs := range ws.remote {
			grefs, ok := gs.remote[id]
			if !ok || len(refs) != len(grefs) {
				t.Fatalf("%s: remote refs for vertex %d differ", node, id)
			}
			for slot, ref := range refs {
				if grefs[slot] != ref {
					t.Fatalf("%s: remote ref %d/%d differs: %+v vs %+v", node, id, slot, ref, grefs[slot])
				}
			}
		}
		if len(ws.aggDelta) != len(gs.aggDelta) {
			t.Fatalf("%s: agg-delta maps differ in size", node)
		}
		for id, link := range ws.aggDelta {
			if gs.aggDelta[id] != link {
				t.Fatalf("%s: agg link for vertex %d differs", node, id)
			}
		}
		if len(ws.openExist) != len(gs.openExist) {
			t.Fatalf("%s: open-exist maps differ: %v vs %v", node, ws.openExist, gs.openExist)
		}
	}
}

// TestShardStorageRoundTrip: a storage-backed sharded recorder must be
// recoverable from its record logs, shard for shard and vertex for
// vertex, and the recovered recorder must materialize identical trees.
func TestShardStorageRoundTrip(t *testing.T) {
	prog := shardProg(t)
	dir := t.TempDir()
	live := NewShardedRecorder(prog, WithShardStorage(dir))
	driveShardScenario(t, live)
	if err := live.StorageErr(); err != nil {
		t.Fatalf("persistence error: %v", err)
	}
	if err := live.CloseShardStorage(); err != nil {
		t.Fatalf("CloseShardStorage: %v", err)
	}

	cold, err := OpenStoredShards(prog, dir)
	if err != nil {
		t.Fatalf("OpenStoredShards: %v", err)
	}
	defer cold.CloseShardStorage()
	compareShards(t, live, cold)

	// Materialization over the recovered shards matches the live one,
	// including cross-shard fetches.
	pkt := ndlog.NewTuple("packet", ndlog.MustParseIP("10.1.2.3"))
	wantID, ok := live.LastAppear("h1", pkt)
	if !ok {
		t.Fatal("live recorder lost the arrival")
	}
	gotID, ok := cold.LastAppear("h1", pkt)
	if !ok {
		t.Fatal("recovered recorder lost the arrival")
	}
	if wantID != gotID {
		t.Fatalf("LastAppear differs: %d vs %d", wantID, gotID)
	}
	wantTree, err := live.Materialize("h1", wantID)
	if err != nil {
		t.Fatal(err)
	}
	gotTree, err := cold.Materialize("h1", gotID)
	if err != nil {
		t.Fatal(err)
	}
	var compare func(a, b *Tree) bool
	compare = func(a, b *Tree) bool {
		if a.Vertex.Label() != b.Vertex.Label() || len(a.Children) != len(b.Children) {
			return false
		}
		for i := range a.Children {
			if !compare(a.Children[i], b.Children[i]) {
				return false
			}
		}
		return true
	}
	if !compare(wantTree, gotTree) {
		t.Fatalf("materialized trees differ:\n%s\nvs\n%s", wantTree, gotTree)
	}
	if live.Fetches != cold.Fetches {
		t.Fatalf("fetch counts differ: %d vs %d", live.Fetches, cold.Fetches)
	}
	// Re-routed packet reached h2 — the swap's spans and second route
	// survived too.
	if _, ok := cold.LastAppear("h2", ndlog.NewTuple("packet", ndlog.MustParseIP("10.9.9.9"))); !ok {
		t.Fatal("recovered recorder lost the re-routed arrival")
	}
}

// TestShardStorageResume: a recovered recorder keeps persisting — new
// observations append after the recovered vertexes and survive another
// round trip.
func TestShardStorageResume(t *testing.T) {
	prog := shardProg(t)
	dir := t.TempDir()
	live := NewShardedRecorder(prog, WithShardStorage(dir))
	driveShardScenario(t, live)
	if err := live.CloseShardStorage(); err != nil {
		t.Fatal(err)
	}

	resumed, err := OpenStoredShards(prog, dir)
	if err != nil {
		t.Fatal(err)
	}
	before := resumed.ShardSize("s1")
	// Drive one more event into the recovered recorder.
	e := ndlog.New(prog, resumed)
	e.ScheduleInsert("s1", ndlog.NewTuple("packet", ndlog.MustParseIP("10.7.7.7")), 20)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if err := resumed.StorageErr(); err != nil {
		t.Fatalf("persistence error after resume: %v", err)
	}
	if resumed.ShardSize("s1") <= before {
		t.Fatal("resume did not grow the shard")
	}
	if err := resumed.CloseShardStorage(); err != nil {
		t.Fatal(err)
	}

	again, err := OpenStoredShards(prog, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer again.CloseShardStorage()
	compareShards(t, resumed, again)
}

// TestShardStorageUnattached: without WithShardStorage the lifecycle
// calls are no-ops.
func TestShardStorageUnattached(t *testing.T) {
	r := NewShardedRecorder(shardProg(t))
	if err := r.StorageErr(); err != nil {
		t.Fatal(err)
	}
	if err := r.SyncShardStorage(); err != nil {
		t.Fatal(err)
	}
	if err := r.CloseShardStorage(); err != nil {
		t.Fatal(err)
	}
}
