// Package evaluation implements the measurement harness for the paper's
// evaluation section (§6): the logging-cost experiments (Figures 5 and
// 6), the query-turnaround comparison against single-tree Y!-style
// queries (Figure 7), the reasoning-time decomposition (Figure 8), the
// runtime latency overheads (§6.4), and the Stanford diagnosis (§6.7).
// The numbers are measured on the simulated substrate, so absolute values
// differ from the paper's testbed; the shapes are what the harness
// reproduces (see EXPERIMENTS.md).
package evaluation

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/mapreduce"
	"repro/internal/ndlog"
	"repro/internal/provenance"
	"repro/internal/replay"
	"repro/internal/scenarios"
	"repro/internal/stanford"
	"repro/internal/trace"
)

// Fig5Row is one point of Figure 5: log growth rate vs traffic rate.
type Fig5Row struct {
	RateBps     float64
	LogBytesSec float64
}

// Figure5 measures the logging rate for traffic rates from 1 Mbps to
// 10 Gbps at a fixed 500-byte packet size.
func Figure5(sample int) ([]Fig5Row, error) {
	if sample == 0 {
		sample = 5000
	}
	rates := []float64{1e6, 1e7, 1e8, 1e9, 1e10}
	var rows []Fig5Row
	for _, r := range rates {
		g := trace.New(trace.Config{Seed: 50, RateBps: r, PacketSize: 500})
		b, err := g.LoggingRate(sample)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig5Row{RateBps: r, LogBytesSec: b})
	}
	return rows, nil
}

// Fig6Row is one point of Figure 6: log rate vs packet size at 1 Gbps.
type Fig6Row struct {
	PacketSize  int
	LogBytesSec float64
}

// Figure6 measures the logging rate for packet sizes 500-1500 bytes at a
// fixed 1 Gbps traffic rate.
func Figure6(sample int) ([]Fig6Row, error) {
	if sample == 0 {
		sample = 5000
	}
	sizes := []int{500, 750, 1000, 1250, 1500}
	var rows []Fig6Row
	for _, s := range sizes {
		g := trace.New(trace.Config{Seed: 60, RateBps: 1e9, PacketSize: s})
		b, err := g.LoggingRate(sample)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig6Row{PacketSize: s, LogBytesSec: b})
	}
	return rows, nil
}

// Fig7Row is one bar pair of Figure 7: the turnaround time of a full
// DiffProv query vs a Y!-style single-tree provenance query, with the
// replay/reasoning decomposition.
type Fig7Row struct {
	Scenario string
	// YBang is the time to answer the classic provenance query for the
	// bad tree alone (one replay + tree extraction).
	YBang time.Duration
	// DiffProv is the full differential query time.
	DiffProv time.Duration
	// DiffProvReplay is the portion spent replaying (UPDATETREE).
	DiffProvReplay time.Duration
	// DiffProvReason is the reasoning portion (seed finding, divergence
	// detection, making tuples appear).
	DiffProvReason time.Duration
	// Replay reports the incremental roll-forward and delta-replay
	// activity of the differential query: prefix cache hits/misses, fork
	// time, the logged base events the forked replays skipped, the
	// events counterfactual replays re-fired after the fork point (zero
	// on cache hits with delta replay on), and the (node, table) pairs
	// the delta phases touched (zero for the imperative scenarios, which
	// have no replay session).
	Replay replay.ReplayStats
	// Diag reports the fingerprint and parallel-evaluation activity of
	// the differential query (alignment memo hits, deduplicated
	// counterfactual replays, pool dispatches).
	Diag core.DiagStats
}

// Figure7 measures query turnaround for every scenario.
func Figure7(scale scenarios.Scale) ([]Fig7Row, error) {
	var rows []Fig7Row
	for _, name := range scenarios.Names() {
		s, err := scenarios.Build(name, scale)
		if err != nil {
			return nil, err
		}
		row := Fig7Row{Scenario: name}

		// Y!-style baseline: reconstruct the bad tree by replay.
		if s.BadSession != nil {
			start := time.Now()
			_, g, err := s.BadSession.Replay()
			if err != nil {
				return nil, err
			}
			seed, err := s.Bad.FindSeed()
			if err != nil {
				return nil, err
			}
			_ = g.LastAppear(seed.Vertex.Node, seed.Vertex.Tuple)
			row.YBang = time.Since(start)
		} else {
			// Imperative MR: the Y! query re-runs the instrumented job.
			start := time.Now()
			if _, err := s.World.Apply(context.Background(), nil); err != nil {
				return nil, err
			}
			row.YBang = time.Since(start)
		}

		// The differential query: one replay to query out the trees
		// (measured above as the Y! portion, since the scenario's trees
		// were extracted from a memoized replay) plus the reasoning and
		// the tree-update replays.
		start := time.Now()
		res, err := s.Diagnose()
		if err != nil {
			return nil, err
		}
		row.DiffProv = time.Since(start) + row.YBang
		row.DiffProvReplay = res.Timings.UpdateTree + row.YBang
		row.DiffProvReason = res.Timings.FindSeed + res.Timings.Divergence + res.Timings.MakeAppear
		row.Diag = res.Stats
		if s.BadSession != nil {
			row.Replay = s.BadSession.Stats
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// DeltaRow is one row of the delta-replay ablation: the same scenario
// diagnosis timed with delta replay on (counterfactual trials anchor at
// the fully-evaluated end of the log and push the change set through
// the semi-naïve delta phase) and off (trials anchor before the
// earliest change and re-fire the whole suffix).
type DeltaRow struct {
	Scenario string
	// Delta and Suffix are the wall-clock diagnosis times of the two
	// arms (replay to extract the trees included in both).
	Delta, Suffix time.Duration
	// ReFired, Skipped, and Dirty are the delta arm's cumulative
	// counters across every counterfactual trial: suffix events
	// re-fired after the fork point (zero when every trial anchors at
	// end-of-log), logged base events the forks did not re-execute, and
	// (node, table) pairs the delta phases touched.
	ReFired, Skipped, Dirty int64
	// SuffixReFired is the full-suffix arm's re-fire count, for
	// contrast: the work the delta path avoids.
	SuffixReFired int64
}

// DeltaReplay times every replayable Table 1 scenario's diagnosis with
// delta replay on and off. Imperative scenarios (no replay session) are
// skipped — they have no suffix to re-fire.
func DeltaReplay(scale scenarios.Scale) ([]DeltaRow, error) {
	var rows []DeltaRow
	for _, name := range scenarios.Names() {
		s, err := scenarios.Build(name, scale)
		if err != nil {
			return nil, err
		}
		if s.BadSession == nil {
			continue
		}
		prog := s.BadSession.Program()
		log := s.BadSession.Log()
		row := DeltaRow{Scenario: name}
		for _, delta := range []bool{true, false} {
			sess, err := replay.FromLog(prog, log,
				replay.WithIncrementalReplay(true),
				replay.WithDeltaReplay(delta),
				replay.WithCheckpointEvery(4))
			if err != nil {
				return nil, err
			}
			start := time.Now()
			_, g, err := sess.Graph()
			if err != nil {
				return nil, err
			}
			badTree := g.Tree(s.Bad.Vertex.ID)
			if badTree == nil {
				return nil, fmt.Errorf("%s: bad vertex %d missing from replayed graph", name, s.Bad.Vertex.ID)
			}
			world, err := core.NewWorld(sess)
			if err != nil {
				return nil, err
			}
			if _, err := core.Diagnose(context.Background(), s.Good, badTree, world, core.Options{}); err != nil {
				return nil, err
			}
			elapsed := time.Since(start)
			if delta {
				row.Delta = elapsed
				row.ReFired = sess.Stats.EventsReFired
				row.Skipped = sess.Stats.EventsSkipped
				row.Dirty = sess.Stats.DirtyTables
			} else {
				row.Suffix = elapsed
				row.SuffixReFired = sess.Stats.EventsReFired
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig8Row is one bar of Figure 8: the decomposition of DiffProv's
// reasoning time.
type Fig8Row struct {
	Scenario string
	Timings  core.Timings
}

// Figure8 measures the reasoning-time decomposition for every scenario.
func Figure8(scale scenarios.Scale) ([]Fig8Row, error) {
	var rows []Fig8Row
	for _, name := range scenarios.Names() {
		s, err := scenarios.Build(name, scale)
		if err != nil {
			return nil, err
		}
		res, err := s.Diagnose()
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig8Row{Scenario: name, Timings: res.Timings})
	}
	return rows, nil
}

// LatencyResult reports the §6.4 runtime overheads.
type LatencyResult struct {
	// SDNOverhead is the fractional per-packet latency increase with
	// logging enabled (paper: 6.7%).
	SDNOverhead float64
	// MROverhead is the fractional job slowdown with provenance
	// reporting enabled (paper: 2.3%).
	MROverhead float64
	// MROverheadCachedChecksums is the same with file checksums computed
	// once instead of per record (paper's optimization: 0.2%).
	MROverheadCachedChecksums float64
}

// newLoggedSession creates a replay session over the forwarding model
// (engine + logging engine).
func newLoggedSession() *replay.Session {
	return replay.NewSession(sdnForwardProgram)
}

// StanfordConfig parameterizes the §6.7 experiment.
type StanfordConfig = stanford.Config

func buildStanford(cfg StanfordConfig) (*stanford.Backbone, error) {
	return stanford.Build(cfg)
}

// ForwardProgram returns the minimal forwarding model the latency
// benchmarks use; exported so `diffprov vet` can check it alongside the
// full scenario models.
func ForwardProgram() *ndlog.Program { return sdnForwardProgram }

// sdnForwardProgram is a minimal forwarding model used to isolate the
// per-packet cost.
var sdnForwardProgram = ndlog.MustParse(`
table flowEntry/3 base mutable;
table packet/1 event base;
rule fw packet(@Nxt, Dst) :-
    packet(@Sw, Dst), flowEntry(@Sw, Prio, M, Nxt), matches(Dst, M), argmax Prio.
`)

// MeasureLatency measures the runtime overheads of logging (§6.4) by
// streaming packets through the forwarding model with and without the
// logging engine, and running the instrumented MapReduce job with and
// without provenance reporting.
func MeasureLatency(packets int, corpusLines int) (LatencyResult, error) {
	if packets == 0 {
		packets = 20000
	}
	if corpusLines == 0 {
		corpusLines = 200
	}
	var out LatencyResult

	// SDN: bare engine vs engine + logging engine.
	gen := trace.New(trace.Config{Seed: 70})
	pkts := gen.Packets(packets)
	fe := ndlog.NewTuple("flowEntry", ndlog.Int(1), ndlog.MustParsePrefix("0.0.0.0/0"), ndlog.Str("h"))

	runBare := func() (time.Duration, error) {
		e := ndlog.New(sdnForwardProgram, nil)
		if err := e.ScheduleInsert("s1", fe, 0); err != nil {
			return 0, err
		}
		start := time.Now()
		for i, p := range pkts {
			if err := e.ScheduleInsert("s1", ndlog.NewTuple("packet", p.Dst), int64(i+1)); err != nil {
				return 0, err
			}
			if err := e.Run(); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	runLogged := func() (time.Duration, error) {
		s := newLoggedSession()
		if err := s.Insert("s1", fe, 0); err != nil {
			return 0, err
		}
		start := time.Now()
		for i, p := range pkts {
			if err := s.Insert("s1", ndlog.NewTuple("packet", p.Dst), int64(i+1)); err != nil {
				return 0, err
			}
			if err := s.Run(); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	// Interleave several rounds and take the minimum of each variant to
	// suppress scheduling noise.
	bare, logged := time.Duration(1<<62), time.Duration(1<<62)
	for round := 0; round < 3; round++ {
		b, err := runBare()
		if err != nil {
			return out, err
		}
		if b < bare {
			bare = b
		}
		l, err := runLogged()
		if err != nil {
			return out, err
		}
		if l < logged {
			logged = l
		}
	}
	out.SDNOverhead = float64(logged-bare) / float64(bare)
	if out.SDNOverhead < 0 {
		out.SDNOverhead = 0
	}

	// MapReduce: the same pipeline with reporting disabled vs enabled;
	// then with per-record checksum recomputation (the paper's default,
	// dominated by HDFS checksums) vs the cached-checksum optimization.
	f := syntheticCorpus(corpusLines)
	plain, instrCached, instrRecompute := time.Duration(1<<62), time.Duration(1<<62), time.Duration(1<<62)
	for round := 0; round < 3; round++ {
		p, err := timeJob(f, false, true)
		if err != nil {
			return out, err
		}
		if p < plain {
			plain = p
		}
		c, err := timeJob(f, false, false)
		if err != nil {
			return out, err
		}
		if c < instrCached {
			instrCached = c
		}
		r, err := timeJob(f, true, false)
		if err != nil {
			return out, err
		}
		if r < instrRecompute {
			instrRecompute = r
		}
	}
	out.MROverhead = float64(instrRecompute-plain) / float64(plain)
	out.MROverheadCachedChecksums = float64(instrCached-plain) / float64(plain)
	if out.MROverheadCachedChecksums < 0 {
		out.MROverheadCachedChecksums = 0
	}
	if out.MROverhead < 0 {
		out.MROverhead = 0
	}
	return out, nil
}

func timeJob(f *mapreduce.InputFile, recomputeChecksums, disableProvenance bool) (time.Duration, error) {
	j := mapreduce.NewJob("latency", f, 2, 4, mapreduce.GoodMapper)
	j.RecomputeChecksums = recomputeChecksums
	j.DisableProvenance = disableProvenance
	start := time.Now()
	_, err := j.Run()
	return time.Since(start), err
}

func syntheticCorpus(lines int) *mapreduce.InputFile {
	f := &mapreduce.InputFile{Name: "latency-corpus.txt"}
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	for i := 0; i < lines; i++ {
		row := make([]string, 8)
		for j := range row {
			row[j] = words[(i+j)%len(words)]
		}
		f.Lines = append(f.Lines, row)
	}
	return f
}

// StanfordResult reports the §6.7 experiment.
type StanfordResult struct {
	GoodTree, BadTree, PlainDiff int
	Changes                      int
	FoundFault                   bool
	Turnaround                   time.Duration
}

// Stanford runs the complex-network diagnosis at the given scale
// parameters (zero values use moderate defaults; the paper's full scale
// is ForwardingEntries=757000, ACLRules=1500).
func Stanford(cfg StanfordConfig) (StanfordResult, error) {
	var out StanfordResult
	b, err := buildStanford(cfg)
	if err != nil {
		return out, err
	}
	good, bad, err := b.Trees()
	if err != nil {
		return out, err
	}
	out.GoodTree = good.Size()
	out.BadTree = bad.Size()
	out.PlainDiff = plainDiff(good, bad)
	start := time.Now()
	res, err := b.Diagnose()
	if err != nil {
		return out, err
	}
	out.Turnaround = time.Since(start)
	out.Changes = len(res.Changes)
	out.FoundFault = len(res.Changes) == 1 && b.IsFaultChange(res.Changes[0])
	return out, nil
}

func plainDiff(a, b *provenance.Tree) int {
	la, lb := a.Labels(), b.Labels()
	d := 0
	for l, ca := range la {
		if cb := lb[l]; ca > cb {
			d += ca - cb
		}
	}
	for l, cb := range lb {
		if ca := la[l]; cb > ca {
			d += cb - ca
		}
	}
	return d
}

// FormatBytesPerSec renders a logging rate human-readably.
func FormatBytesPerSec(b float64) string {
	switch {
	case b >= 1e9:
		return fmt.Sprintf("%.2f GB/s", b/1e9)
	case b >= 1e6:
		return fmt.Sprintf("%.2f MB/s", b/1e6)
	case b >= 1e3:
		return fmt.Sprintf("%.2f kB/s", b/1e3)
	default:
		return fmt.Sprintf("%.0f B/s", b)
	}
}
