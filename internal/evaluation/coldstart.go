package evaluation

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/replay"
	"repro/internal/scenarios"
	"repro/internal/sdn"
)

// ColdStartResult reports the segmented-store cold-start benchmark: how
// long recording an SDN1 execution into the persistent store takes, and
// how long a fresh process needs to replay it back out of the segments
// (reusing durable checkpoints instead of recapturing them).
type ColdStartResult struct {
	Events      int           // base events recorded and recovered
	Checkpoints int           // durable checkpoints reused on recovery
	Segments    int           // segment files on disk
	StoreBytes  int64         // total size of the store directory
	Record      time.Duration // build + write-through persistence
	Recover     time.Duration // replay.Open out of the segments
}

// ColdStart records the SDN1 scenario into a temporary segmented store,
// then cold-starts a session from it and verifies the recovered log and
// checkpoints match what was recorded.
func ColdStart(scale scenarios.Scale) (*ColdStartResult, error) {
	dir, err := os.MkdirTemp("", "diffprov-coldstart-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	start := time.Now()
	sc, err := scenarios.Build("SDN1", scale,
		scenarios.WithSessionOptions(replay.WithCheckpointEvery(50), replay.WithStorage(dir)))
	if err != nil {
		return nil, err
	}
	res := &ColdStartResult{Record: time.Since(start)}
	sess := sc.BadSession
	res.Events = sess.Log().Len()
	res.Checkpoints = len(sess.Checkpoints())
	if err := sess.CloseStorage(); err != nil {
		return nil, err
	}

	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil {
		return nil, err
	}
	res.Segments = len(segs)
	filepath.Walk(dir, func(_ string, info os.FileInfo, err error) error { //nolint:errcheck // size is informational
		if err == nil && !info.IsDir() {
			res.StoreBytes += info.Size()
		}
		return nil
	})

	start = time.Now()
	cold, err := replay.Open(sdn.Program(), dir)
	if err != nil {
		return nil, fmt.Errorf("cold start: %v", err)
	}
	res.Recover = time.Since(start)
	defer cold.CloseStorage()
	if got := cold.Log().Len(); got != res.Events {
		return nil, fmt.Errorf("cold start recovered %d events, recorded %d", got, res.Events)
	}
	if got := len(cold.Checkpoints()); got != res.Checkpoints {
		return nil, fmt.Errorf("cold start has %d checkpoints, recorded %d", got, res.Checkpoints)
	}
	return res, nil
}
