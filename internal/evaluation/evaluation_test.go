package evaluation

import (
	"testing"

	"repro/internal/scenarios"
)

func TestFigure5Linear(t *testing.T) {
	rows, err := Figure5(1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		ratio := rows[i].LogBytesSec / rows[i-1].LogBytesSec
		rateRatio := rows[i].RateBps / rows[i-1].RateBps
		if ratio < rateRatio*0.9 || ratio > rateRatio*1.1 {
			t.Errorf("logging rate not linear: %.2fx for %.0fx traffic", ratio, rateRatio)
		}
	}
	// The 10 Gbps point stays under the paper's 400 MB/s SSD budget.
	if last := rows[len(rows)-1]; last.LogBytesSec > 400e6 {
		t.Errorf("10 Gbps logging rate = %s, exceeds the SSD budget", FormatBytesPerSec(last.LogBytesSec))
	}
}

func TestFigure6Decreasing(t *testing.T) {
	rows, err := Figure6(1000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].LogBytesSec >= rows[i-1].LogBytesSec {
			t.Errorf("logging rate must decrease with packet size: %d B -> %s, %d B -> %s",
				rows[i-1].PacketSize, FormatBytesPerSec(rows[i-1].LogBytesSec),
				rows[i].PacketSize, FormatBytesPerSec(rows[i].LogBytesSec))
		}
	}
}

func TestFigure7Shape(t *testing.T) {
	rows, err := Figure7(scenarios.Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		t.Logf("%-6s Y!=%v diffprov=%v (replay %v, reasoning %v)",
			r.Scenario, r.YBang, r.DiffProv, r.DiffProvReplay, r.DiffProvReason)
		if r.DiffProv <= 0 || r.YBang <= 0 {
			t.Errorf("%s: non-positive measurement", r.Scenario)
		}
		// DiffProv does strictly more work than a single-tree query.
		if r.DiffProv < r.YBang/4 {
			t.Errorf("%s: DiffProv (%v) implausibly cheaper than Y! (%v)", r.Scenario, r.DiffProv, r.YBang)
		}
	}
}

func TestFigure8Shape(t *testing.T) {
	rows, err := Figure8(scenarios.Small)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("%-6s findseed=%v divergence=%v makeappear=%v updatetree=%v",
			r.Scenario, r.Timings.FindSeed, r.Timings.Divergence, r.Timings.MakeAppear, r.Timings.UpdateTree)
		reasoning := r.Timings.FindSeed + r.Timings.Divergence + r.Timings.MakeAppear
		if reasoning <= 0 {
			t.Errorf("%s: no reasoning time recorded", r.Scenario)
		}
		// Replay (tree updating) dominates pure reasoning, as in the
		// paper (reasoning was at most 3.8 ms vs. seconds of replay).
		if reasoning > r.Timings.UpdateTree*100 && r.Timings.UpdateTree > 0 {
			t.Errorf("%s: reasoning (%v) unexpectedly dominates replay (%v)", r.Scenario, reasoning, r.Timings.UpdateTree)
		}
	}
}

func TestMeasureLatencySmall(t *testing.T) {
	res, err := MeasureLatency(2000, 60)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("SDN logging overhead: %.1f%%", res.SDNOverhead*100)
	t.Logf("MR provenance overhead: %.1f%% (cached checksums: %.1f%%)",
		res.MROverhead*100, res.MROverheadCachedChecksums*100)
	// Shapes: overheads are bounded, and the checksum cache helps.
	if res.SDNOverhead > 2.0 {
		t.Errorf("SDN logging overhead = %.0f%%, want modest", res.SDNOverhead*100)
	}
	if res.MROverheadCachedChecksums > res.MROverhead {
		t.Errorf("checksum caching must not increase overhead: %.2f vs %.2f",
			res.MROverheadCachedChecksums, res.MROverhead)
	}
}

func TestStanfordExperiment(t *testing.T) {
	res, err := Stanford(StanfordConfig{Seed: 4, ForwardingEntries: 400, ACLRules: 40, BackgroundPackets: 100})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("trees %d/%d, plain diff %d, Δ=%d, turnaround %v",
		res.GoodTree, res.BadTree, res.PlainDiff, res.Changes, res.Turnaround)
	if !res.FoundFault {
		t.Error("the misconfigured entry must be identified")
	}
	if res.Changes != 1 {
		t.Errorf("Δ = %d, want 1", res.Changes)
	}
	if res.PlainDiff == 0 {
		t.Error("plain diff must be non-empty")
	}
}

func TestFormatBytesPerSec(t *testing.T) {
	cases := map[float64]string{
		12:     "12 B/s",
		4500:   "4.50 kB/s",
		2.5e6:  "2.50 MB/s",
		1.25e9: "1.25 GB/s",
	}
	for in, want := range cases {
		if got := FormatBytesPerSec(in); got != want {
			t.Errorf("FormatBytesPerSec(%f) = %q, want %q", in, got, want)
		}
	}
}
