package evaluation

import (
	"runtime"
	"time"

	"repro/internal/ndlog"
	"repro/internal/provenance"
)

// forkCostProgram is the synthetic counterfactual workload also used by
// BenchmarkCounterfactualReplay: one long stream of probe events joined
// against a mutable edge table, so the engine state and the provenance
// graph both grow linearly with N.
const forkCostProgram = `
table edge/2 base mutable;
table probe/1 event base;
table hit/2 event;
rule j hit(S, D) :- probe(@r, S), edge(@r, S, D).
`

// ForkCostRow is one measurement of the prefix fork cost: forking a
// sealed engine plus its provenance recorder, the exact operation at the
// head of every counterfactual replay.
type ForkCostRow struct {
	N          int     // base events driven before sealing
	Mode       string  // "cow" (shared structure) or "deep" (full copy)
	ForkNanos  float64 // wall time per fork pair (fork_ns)
	ForkAllocs float64 // heap allocations per fork pair (fork_allocs)
}

// ForkCost measures the cost of forking a sealed prefix (engine +
// recorder) at each state size, with copy-on-write forks on and off.
// This is the per-candidate setup cost a diagnosis pays before rolling
// the suffix forward; CoW makes it proportional to what the fork later
// changes instead of to the prefix state. iters <= 0 picks a default.
func ForkCost(sizes []int, iters int) ([]ForkCostRow, error) {
	if len(sizes) == 0 {
		sizes = []int{1000, 10000}
	}
	if iters <= 0 {
		iters = 64
	}
	prog, err := ndlog.Parse(forkCostProgram)
	if err != nil {
		return nil, err
	}
	var rows []ForkCostRow
	for _, n := range sizes {
		for _, mode := range []struct {
			name string
			cow  bool
		}{{"cow", true}, {"deep", false}} {
			rec := provenance.NewRecorder(prog, provenance.WithCopyOnWriteForks(mode.cow))
			e := ndlog.New(prog, rec, ndlog.WithCopyOnWriteForks(mode.cow))
			if err := e.ScheduleInsert("r", ndlog.NewTuple("edge", ndlog.Int(1), ndlog.Int(2)), 0); err != nil {
				return nil, err
			}
			for i := 1; i < n; i++ {
				v := ndlog.Int(int64(i % 64))
				if err := e.ScheduleInsert("r", ndlog.NewTuple("probe", v), int64(i)); err != nil {
					return nil, err
				}
			}
			if err := e.Run(); err != nil {
				return nil, err
			}
			rec.Seal()
			e.Seal()
			// Warm once so one-time lazy work is off the clock.
			e.Fork(rec.Fork())

			runtime.GC()
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			start := time.Now()
			for i := 0; i < iters; i++ {
				e.Fork(rec.Fork())
			}
			elapsed := time.Since(start)
			runtime.ReadMemStats(&after)
			rows = append(rows, ForkCostRow{
				N:          n,
				Mode:       mode.name,
				ForkNanos:  float64(elapsed.Nanoseconds()) / float64(iters),
				ForkAllocs: float64(after.Mallocs-before.Mallocs) / float64(iters),
			})
		}
	}
	return rows, nil
}
