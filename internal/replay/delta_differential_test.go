package replay_test

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ndlog"
	"repro/internal/replay"
	"repro/internal/scenarios"
)

// TestDeltaDifferential replays every Table 1 scenario's captured bad
// execution through the full diagnosis four times — delta replay on and
// off, sequentially and with eight candidate workers — and requires all
// four runs to be byte-identical: the same provenance graph, the same
// final state, and the same diagnosis in the same number of rounds.
// This is the correctness guarantee of the delta path: anchoring a
// trial at the fully-evaluated end of the log and pushing the change
// set through the counterfactual phase reconstructs exactly the
// execution that re-firing the whole suffix (or replaying from
// scratch; TestForkDifferential covers that axis) would produce.
//
// The delta arms must also do strictly less work: with the anchor at
// end-of-log nothing is re-fired, so their cumulative EventsReFired
// stays below the full-suffix arms'.
func TestDeltaDifferential(t *testing.T) {
	for _, name := range scenarios.Names() {
		t.Run(name, func(t *testing.T) {
			s, err := scenarios.Build(name, scenarios.Small)
			if err != nil {
				t.Fatal(err)
			}
			if s.BadSession == nil {
				t.Skipf("%s is imperative (no replay session)", name)
			}
			prog := s.BadSession.Program()
			log := s.BadSession.Log()

			// A late counterfactual change exercised directly through
			// ReplayWith, in addition to the full diagnosis below.
			events := log.Events()
			last := events[len(events)-1]
			directChange := []replay.Change{{Insert: true, Node: last.Node, Tuple: last.Tuple, Tick: last.Tick + 1}}

			type arm struct {
				delta bool
				par   int
			}
			type run struct {
				graph    string
				state    string
				direct   string
				diagnose string
				rounds   int
				refired  int64
			}
			arms := []arm{{true, 1}, {true, 8}, {false, 1}, {false, 8}}
			runs := make(map[arm]run, len(arms))
			for _, a := range arms {
				sess, err := replay.FromLog(prog, log,
					replay.WithIncrementalReplay(true),
					replay.WithDeltaReplay(a.delta),
					replay.WithCheckpointEvery(4))
				if err != nil {
					t.Fatal(err)
				}
				de, dg, err := sess.ReplayWith(directChange)
				if err != nil {
					t.Fatal(err)
				}
				direct := forkSerializeGraph(dg) + forkSerializeSnapshot(de.CaptureState())

				eng, g, err := sess.Graph()
				if err != nil {
					t.Fatal(err)
				}
				badTree := g.Tree(s.Bad.Vertex.ID)
				if badTree == nil {
					t.Fatalf("bad vertex %d missing from replayed graph", s.Bad.Vertex.ID)
				}
				world, err := core.NewWorld(sess)
				if err != nil {
					t.Fatal(err)
				}
				res, err := core.Diagnose(context.Background(), s.Good, badTree, world, core.Options{Parallelism: a.par})
				if err != nil {
					t.Fatalf("diagnose (delta=%v par=%d): %v", a.delta, a.par, err)
				}
				if s.Check != nil {
					if err := s.Check(res); err != nil {
						t.Fatalf("check (delta=%v par=%d): %v", a.delta, a.par, err)
					}
				}
				var ch []string
				for _, c := range res.Changes {
					ch = append(ch, c.String())
				}
				runs[a] = run{
					graph:    forkSerializeGraph(g),
					state:    forkSerializeSnapshot(eng.CaptureState()),
					direct:   direct,
					diagnose: strings.Join(ch, "\n"),
					rounds:   res.Iterations,
					refired:  sess.Stats.EventsReFired,
				}
			}
			ref := runs[arms[0]]
			for _, a := range arms[1:] {
				r := runs[a]
				label := fmt.Sprintf("delta=%v par=%d", a.delta, a.par)
				if r.direct != ref.direct {
					t.Errorf("direct ReplayWith differs (%s):\nref (%d bytes):\n%.2000s\ngot (%d bytes):\n%.2000s",
						label, len(ref.direct), ref.direct, len(r.direct), r.direct)
				}
				if r.graph != ref.graph {
					t.Errorf("provenance graphs differ (%s):\nref (%d bytes):\n%.2000s\ngot (%d bytes):\n%.2000s",
						label, len(ref.graph), ref.graph, len(r.graph), r.graph)
				}
				if r.state != ref.state {
					t.Errorf("final states differ (%s):\nref:\n%s\ngot:\n%s", label, ref.state, r.state)
				}
				if r.diagnose != ref.diagnose {
					t.Errorf("diagnoses differ (%s):\nref:\n%s\ngot:\n%s", label, ref.diagnose, r.diagnose)
				}
				if r.rounds != ref.rounds {
					t.Errorf("iteration counts differ (%s): ref=%d got=%d", label, ref.rounds, r.rounds)
				}
			}
			for _, par := range []int{1, 8} {
				d, f := runs[arm{true, par}], runs[arm{false, par}]
				if d.refired >= f.refired {
					t.Errorf("par=%d: delta arm re-fired %d events, full-suffix arm %d; want strictly fewer",
						par, d.refired, f.refired)
				}
			}
		})
	}
}

// TestDeltaReplayBackdate pins the intra-tick displacement semantics of
// a counterfactual insert that lands before an existing same-key row: a
// keyed cfg table gets the wrong value early and the right value only
// after the probe has fired; inserting the right value ahead of the
// probe must erase the mis-derived output and produce the one the
// timely run would have derived, in both delta and full-suffix mode.
func TestDeltaReplayBackdate(t *testing.T) {
	const prog = `
table cfg/2 base mutable key(0);
table probe/1 event base;
table out/2 event;
rule fwd out(K, V) :- probe(@n, K), cfg(@n, K, V).
`
	for _, delta := range []bool{true, false} {
		t.Run(fmt.Sprintf("delta=%v", delta), func(t *testing.T) {
			sess := replay.NewSession(ndlog.MustParse(prog),
				replay.WithDeltaReplay(delta), replay.WithCheckpointEvery(4))
			for i, ins := range []struct {
				table string
				args  []ndlog.Value
				tick  int64
			}{
				{"cfg", []ndlog.Value{ndlog.Str("k"), ndlog.Str("wrong")}, 5},
				{"probe", []ndlog.Value{ndlog.Str("k")}, 40},
				{"cfg", []ndlog.Value{ndlog.Str("k"), ndlog.Str("right")}, 41},
			} {
				if err := sess.Insert("n", ndlog.NewTuple(ins.table, ins.args...), ins.tick); err != nil {
					t.Fatalf("insert %d: %v", i, err)
				}
			}
			if err := sess.Run(); err != nil {
				t.Fatal(err)
			}
			eng, dg, err := sess.ReplayWith([]replay.Change{{
				Insert: true, Node: "n",
				Tuple: ndlog.NewTuple("cfg", ndlog.Str("k"), ndlog.Str("right")),
				Tick:  39,
			}})
			if err != nil {
				t.Fatal(err)
			}
			// Event tuples never enter the live state; the surviving
			// occurrences are the APPEAR vertexes the counterfactual
			// phase did not erase — the history is the authority.
			var outs []string
			for _, v := range dg.FindAppears("n", "out", nil) {
				if eng.Exists("n", v.Tuple, v.At) {
					outs = append(outs, v.Tuple.String())
				}
			}
			want := `out("k", "right")`
			if len(outs) != 1 || outs[0] != want {
				t.Errorf("counterfactual outputs = %v, want exactly [%s]", outs, want)
			}
		})
	}
}
