package replay

import (
	"context"
	"fmt"

	"repro/internal/ndlog"
	"repro/internal/store"
)

// sessionStorage couples a session to the persistent segmented store.
//
// Attach loads the retained events into the in-memory log and arms a
// verify window over them: while a deterministic simulator re-drives a
// recovered execution (the diffprovd restart path), each incoming
// Insert/Delete is checked against the stored prefix position by
// position and NOT re-appended — recovery is a replay of the same
// schedule, so a mismatch means the driver is not the execution the
// store recorded, and the session fails loudly instead of forking
// history. Events past the window are appended to both the log and the
// store, exactly like a fresh session.
type sessionStorage struct {
	st        *store.Store
	verifyPos int // next stored event the re-drive must reproduce
	verifyEnd int // stored events at attach time
}

// WithStorage backs the session with the persistent segmented store at
// dir (created on demand). Stored events and current-epoch checkpoints
// are recovered at construction; new events and checkpoints are written
// through. Store options (e.g. store.WithSegmentEvents) configure the
// underlying store. An attach failure is reported by the first
// Insert/Delete/Run call (construction itself cannot fail).
func WithStorage(dir string, opts ...store.Option) SessionOption {
	return func(s *Session) {
		s.storageDir = dir
		s.storeOpts = opts
	}
}

// attachStorage opens the store and recovers its contents into the
// session: events into the log (streamed segment by segment), durable
// current-epoch checkpoints into the checkpoint set.
func (s *Session) attachStorage(dir string) error {
	st, err := store.Open(dir, s.storeOpts...)
	if err != nil {
		return err
	}
	if err := st.Events(func(ev Event) error {
		s.log.Append(ev)
		return nil
	}); err != nil {
		st.Close()
		return err
	}
	cks, err := st.Checkpoints()
	if err != nil {
		st.Close()
		return err
	}
	for _, ck := range cks {
		if ck.EventsBefore > s.log.Len() {
			// The checkpoint claims more history than the store holds; it
			// cannot have come from this stream. Skip it — recovery will
			// recapture.
			continue
		}
		snap := ck.State
		snap.Tick = ck.Tick
		s.ckpts = append(s.ckpts, snap)
		if ck.Tick > s.lastCkpt {
			s.lastCkpt = ck.Tick
		}
	}
	s.storage = &sessionStorage{st: st, verifyEnd: s.log.Len()}
	return nil
}

// logEvent routes one driven event through the storage layer: verified
// against the stored prefix during recovery re-drive, appended to the
// log and written through to the store otherwise.
func (s *Session) logEvent(ev Event) error {
	if s.storage != nil && s.storage.verifyPos < s.storage.verifyEnd {
		want := s.log.At(s.storage.verifyPos)
		if ev.Kind != want.Kind || ev.Node != want.Node || ev.Tick != want.Tick || !ev.Tuple.Equal(want.Tuple) {
			return fmt.Errorf("replay: recovery re-drive diverged from storage at event %d: driven %v on %s at t=%d, stored %v on %s at t=%d",
				s.storage.verifyPos, ev.Tuple, ev.Node, ev.Tick, want.Tuple, want.Node, want.Tick)
		}
		s.storage.verifyPos++
		return nil
	}
	s.log.Append(ev)
	if s.storage != nil {
		return s.storage.st.Append(ev)
	}
	return nil
}

// putCheckpoint writes a just-captured checkpoint through to the store
// (segments are synced first, so a durable checkpoint never refers to
// events the log could lose).
func (s *Session) putCheckpoint(snap ndlog.Snapshot) error {
	if s.storage == nil {
		return nil
	}
	return s.storage.st.PutCheckpoint(snap.Tick, s.log.Len(), snap)
}

// Storage returns the backing store, or nil when the session is not
// storage-backed. Clones detach from storage — only the original session
// writes through.
func (s *Session) Storage() *store.Store {
	if s.storage == nil {
		return nil
	}
	return s.storage.st
}

// SyncStorage forces all appended events to disk (a no-op without
// storage).
func (s *Session) SyncStorage() error {
	if s.storage == nil {
		return nil
	}
	return s.storage.st.Sync()
}

// CloseStorage syncs and closes the backing store (a no-op without
// storage). The session remains usable in memory, but further events are
// no longer persisted.
func (s *Session) CloseStorage() error {
	if s.storage == nil {
		return nil
	}
	err := s.storage.st.Close()
	s.storage = nil
	return err
}

// PinStorage anchors storage retention at the given tick until the
// returned release runs, so GC cannot reclaim segments a live diagnosis
// replays from. Without storage it returns a no-op release.
func (s *Session) PinStorage(tick int64) (release func()) {
	if s.storage == nil {
		return func() {}
	}
	return s.storage.st.Pin(tick)
}

// GCStorage reclaims stored segments whose every event is before the
// anchor tick (clamped by live pins; see store.Store.GC). The in-memory
// log is untouched — GC bounds what a future cold start can replay, not
// what this session already holds.
func (s *Session) GCStorage(anchorTick int64) (removed int, err error) {
	if s.storage == nil {
		return 0, nil
	}
	return s.storage.st.GC(anchorTick)
}

// Open cold-starts a session from a storage directory: the retained
// events stream out of the segments (one segment at a time — the encoded
// log is never materialized whole) and are re-driven through a fresh
// live engine, durable checkpoints of the current retention epoch are
// reused instead of recaptured, and the session ends up indistinguishable
// from one that recorded the stream live — ready to serve diagnoses and
// to persist further events. This is diffprovd's crash-recovery path:
// the segment tail past the last durable checkpoint is simply replayed.
func Open(prog *ndlog.Program, dir string, opts ...SessionOption) (*Session, error) {
	s := NewSession(prog, append(append([]SessionOption(nil), opts...), WithStorage(dir))...)
	if s.stErr != nil {
		return nil, s.stErr
	}
	// Re-drive the recovered log through the live engine. Every event is
	// inside the verify window, so nothing is re-appended.
	var driveErr error
	s.log.Each(func(ev Event) {
		if driveErr != nil {
			return
		}
		if ev.Kind == EvInsert {
			driveErr = s.Insert(ev.Node, ev.Tuple, ev.Tick)
		} else {
			driveErr = s.Delete(ev.Node, ev.Tuple, ev.Tick)
		}
	})
	if driveErr != nil {
		return nil, fmt.Errorf("replay: cold start from %s: %v", dir, driveErr)
	}
	if err := s.Run(); err != nil {
		return nil, fmt.Errorf("replay: cold start from %s: %v", dir, err)
	}
	if err := s.warmPrefix(); err != nil {
		return nil, fmt.Errorf("replay: cold start from %s: %v", dir, err)
	}
	return s, nil
}

// warmPrefix rehydrates the checkpoint-anchored prefix engine after a
// cold start (WithWarmStart): the last durable checkpoint's anchor is
// materialized into the prefix cache from the already-recovered in-memory
// log — no additional store reads — so the first counterfactual replay
// forks a warm prefix instead of building one. The rebuilt engine's state
// is verified against the durable snapshot it anchors on; a mismatch
// means the store's checkpoint does not describe the recovered stream,
// and the session fails loudly rather than serve replays from it.
func (s *Session) warmPrefix() error {
	if !s.warmStart || !s.incremental || s.lastCkpt <= 0 {
		return nil
	}
	entry, _, err := s.prefix.acquire(context.Background(), s, s.lastCkpt)
	if err != nil {
		return fmt.Errorf("warming prefix at t=%d: %v", s.lastCkpt, err)
	}
	if entry == nil {
		return nil // no events at or before the anchor: nothing to warm
	}
	stored, ok := s.StateAt(s.lastCkpt)
	if !ok || stored.Tick != s.lastCkpt {
		return nil // anchor checkpoint was skipped at attach; nothing to verify
	}
	if got := entry.eng.CaptureStateAt(s.lastCkpt); !snapshotEqual(got, stored) {
		return fmt.Errorf("warming prefix at t=%d: rebuilt state disagrees with durable checkpoint", s.lastCkpt)
	}
	return nil
}

// snapshotEqual compares two state snapshots structurally. Snapshot rows
// are sorted by canonical key, so per-table slices compare positionally.
func snapshotEqual(a, b ndlog.Snapshot) bool {
	if len(a.State) != len(b.State) {
		return false
	}
	for node, tbls := range a.State {
		btbls, ok := b.State[node]
		if !ok || len(tbls) != len(btbls) {
			return false
		}
		for tn, rows := range tbls {
			brows, ok := btbls[tn]
			if !ok || len(rows) != len(brows) {
				return false
			}
			for i := range rows {
				if !rows[i].Equal(brows[i]) {
					return false
				}
			}
		}
	}
	return true
}
