package replay_test

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ndlog"
	"repro/internal/replay"
	"repro/internal/scenarios"
)

// TestCoWDifferential replays every Table 1 scenario's captured bad
// execution twice — copy-on-write prefix forks on and off — and requires
// the two runs to be byte-identical: the same provenance graph, the same
// final state, the same diagnosis. Incremental replay is on in both arms,
// so the only difference is how the cached prefix is forked: shared
// structure with clone-on-first-write versus a full deep copy. This is
// the ablation arm the CoW design argues against (see DESIGN.md §15).
func TestCoWDifferential(t *testing.T) {
	for _, name := range scenarios.Names() {
		t.Run(name, func(t *testing.T) {
			s, err := scenarios.Build(name, scenarios.Small)
			if err != nil {
				t.Fatal(err)
			}
			if s.BadSession == nil {
				t.Skipf("%s is imperative (no replay session)", name)
			}
			prog := s.BadSession.Program()
			log := s.BadSession.Log()

			events := log.Events()
			last := events[len(events)-1]
			directChange := []replay.Change{{Insert: true, Node: last.Node, Tuple: last.Tuple, Tick: last.Tick + 1}}

			type run struct {
				graph    string
				state    string
				direct   string
				diagnose string
				rounds   int
			}
			runs := map[bool]run{}
			for _, cow := range []bool{true, false} {
				sess, err := replay.FromLog(prog, log,
					replay.WithIncrementalReplay(true),
					replay.WithCopyOnWriteForks(cow),
					replay.WithCheckpointEvery(4))
				if err != nil {
					t.Fatal(err)
				}
				de, dg, err := sess.ReplayWith(directChange)
				if err != nil {
					t.Fatal(err)
				}
				direct := forkSerializeGraph(dg) + forkSerializeSnapshot(de.CaptureState())

				eng, g, err := sess.Graph()
				if err != nil {
					t.Fatal(err)
				}
				badTree := g.Tree(s.Bad.Vertex.ID)
				if badTree == nil {
					t.Fatalf("bad vertex %d missing from replayed graph", s.Bad.Vertex.ID)
				}
				world, err := core.NewWorld(sess)
				if err != nil {
					t.Fatal(err)
				}
				res, err := core.Diagnose(context.Background(), s.Good, badTree, world, core.Options{})
				if err != nil {
					t.Fatalf("diagnose (cow=%v): %v", cow, err)
				}
				if s.Check != nil {
					if err := s.Check(res); err != nil {
						t.Fatalf("check (cow=%v): %v", cow, err)
					}
				}
				var ch []string
				for _, c := range res.Changes {
					ch = append(ch, c.String())
				}
				runs[cow] = run{
					graph:    forkSerializeGraph(g),
					state:    forkSerializeSnapshot(eng.CaptureState()),
					direct:   direct,
					diagnose: strings.Join(ch, "\n"),
					rounds:   res.Iterations,
				}
			}
			on, off := runs[true], runs[false]
			if on.direct != off.direct {
				t.Errorf("direct ReplayWith differs between CoW on and off:\non (%d bytes):\n%.2000s\noff (%d bytes):\n%.2000s",
					len(on.direct), on.direct, len(off.direct), off.direct)
			}
			if on.graph != off.graph {
				t.Errorf("provenance graphs differ:\non (%d bytes):\n%.2000s\noff (%d bytes):\n%.2000s",
					len(on.graph), on.graph, len(off.graph), off.graph)
			}
			if on.state != off.state {
				t.Errorf("final states differ:\non:\n%s\noff:\n%s", on.state, off.state)
			}
			if on.diagnose != off.diagnose {
				t.Errorf("diagnoses differ:\non:\n%s\noff:\n%s", on.diagnose, off.diagnose)
			}
			if on.rounds != off.rounds {
				t.Errorf("iteration counts differ: on=%d off=%d", on.rounds, off.rounds)
			}
		})
	}
}

// TestPrefixCacheSizeOption pins WithPrefixCacheSize: the configured
// capacity must survive Clone, and values below 1 clamp to 1 so the
// cache can always hold the anchor being replayed.
func TestPrefixCacheSizeOption(t *testing.T) {
	prog := ndlog.MustParse(`
table edge/2 base mutable;
table probe/1 event base;
table hit/2 event;
rule j hit(S, D) :- probe(@r, S), edge(@r, S, D).
`)
	sess := replay.NewSession(prog,
		replay.WithIncrementalReplay(true),
		replay.WithCheckpointEvery(8),
		replay.WithPrefixCacheSize(1),
		// Delta replay anchors every change set at the end of the log,
		// collapsing the alternating anchors this test needs.
		replay.WithDeltaReplay(false))
	if err := sess.Insert("r", ndlog.NewTuple("edge", ndlog.Int(1), ndlog.Int(2)), 0); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 64; i++ {
		if err := sess.Insert("r", ndlog.NewTuple("probe", ndlog.Int(int64(i%8))), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	// Replay against two different anchors: with capacity 1 the second
	// anchor evicts the first, so coming back to it is a miss.
	change := func(tick int64) []replay.Change {
		return []replay.Change{{Insert: true, Node: "r", Tuple: ndlog.NewTuple("probe", ndlog.Int(1)), Tick: tick}}
	}
	for _, tick := range []int64{20, 60, 20} {
		if _, _, err := sess.ReplayWith(change(tick)); err != nil {
			t.Fatal(err)
		}
	}
	if sess.Stats.PrefixMisses < 3 {
		t.Errorf("PrefixMisses = %d with cache size 1 across alternating anchors, want >= 3", sess.Stats.PrefixMisses)
	}

	// The clone inherits the configured capacity (a fresh cache, same
	// bound) and still produces identical replays.
	clone := sess.Clone()
	if _, _, err := clone.ReplayWith(change(20)); err != nil {
		t.Fatal(err)
	}
}
