//go:build race

package replay

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
