package replay

import (
	"context"
	"fmt"
	"time"

	"repro/internal/ndlog"
	"repro/internal/provenance"
)

// Mode selects how provenance is captured (§5): at runtime (log every
// derivation as it happens; queries are cheap, runtime is expensive) or
// at query time (log base events only; provenance is reconstructed by
// deterministic replay). The paper's prototype defaults to query-time.
type Mode uint8

// Capture modes.
const (
	QueryTime Mode = iota
	Runtime
)

// Change is a counterfactual base-tuple change that UPDATETREE injects
// into a cloned execution (§4.6).
type Change struct {
	Insert bool // true = insert the tuple, false = delete it
	Node   string
	Tuple  ndlog.Tuple
	Tick   int64 // when to apply; "shortly before it is needed" (§4.8)
}

func (c Change) String() string {
	op := "insert"
	if !c.Insert {
		op = "delete"
	}
	return fmt.Sprintf("%s %s on %s at t=%d", op, c.Tuple, c.Node, c.Tick)
}

// Session couples a live engine with the logging engine, and provides the
// replay operations DiffProv needs. It is the embodiment of the paper's
// five-component architecture minus the reasoning engine (which lives in
// internal/core): recorder + logging engine + replay engine.
type Session struct {
	prog *ndlog.Program
	mode Mode
	log  *Log

	live    *ndlog.Engine
	liveRec *provenance.Recorder // only in Runtime mode

	ckptEvery int64 // checkpoint interval in ticks; 0 disables
	lastCkpt  int64
	ckpts     []ndlog.Snapshot

	// memoized full replay for query-time provenance
	replayed    *ndlog.Engine
	replayedG   *provenance.Graph
	replayedLen int // log length the memo was built from

	// ReplayTime accumulates wall-clock time spent replaying, and
	// ReplayCount the number of replays; the turnaround experiments
	// (Figure 7) read these.
	ReplayTime  time.Duration
	ReplayCount int

	engineOpts []ndlog.Option
}

// SessionOption configures a Session.
type SessionOption func(*Session)

// WithMode selects the capture mode (default QueryTime).
func WithMode(m Mode) SessionOption { return func(s *Session) { s.mode = m } }

// WithCheckpointEvery enables periodic state checkpoints at the given
// tick interval.
func WithCheckpointEvery(ticks int64) SessionOption {
	return func(s *Session) { s.ckptEvery = ticks }
}

// WithEngineOptions passes options to every engine the session creates.
func WithEngineOptions(opts ...ndlog.Option) SessionOption {
	return func(s *Session) { s.engineOpts = opts }
}

// NewSession creates a session for the given program.
func NewSession(prog *ndlog.Program, opts ...SessionOption) *Session {
	s := &Session{prog: prog, log: NewLog()}
	for _, o := range opts {
		o(s)
	}
	if s.mode == Runtime {
		s.liveRec = provenance.NewRecorder(prog)
		s.live = ndlog.New(prog, s.liveRec, s.engineOpts...)
	} else {
		s.live = ndlog.New(prog, nil, s.engineOpts...)
	}
	return s
}

// FromLog reconstructs a session from a previously captured base-event
// log: the log is re-driven through a fresh live engine, after which the
// session is indistinguishable from the one that recorded it. This is how
// a diagnosis is run offline against saved logs.
func FromLog(prog *ndlog.Program, l *Log, opts ...SessionOption) (*Session, error) {
	s := NewSession(prog, opts...)
	for _, ev := range l.Events() {
		var err error
		if ev.Kind == EvInsert {
			err = s.Insert(ev.Node, ev.Tuple, ev.Tick)
		} else {
			err = s.Delete(ev.Node, ev.Tuple, ev.Tick)
		}
		if err != nil {
			return nil, fmt.Errorf("replay: rebuilding session: %v", err)
		}
	}
	if err := s.Run(); err != nil {
		return nil, fmt.Errorf("replay: rebuilding session: %v", err)
	}
	return s, nil
}

// Clone returns an independent session over the same captured execution.
// It reuses the copy-on-write structure of counterfactual roll-forward
// (§4.6): the immutable program, engine options, and memoized replay are
// shared, the base-event log is copied, and the replay statistics start
// at zero. Clones are how concurrent diagnoses isolate their mutable
// state — each one replays and accounts time privately, so a completed
// session can serve any number of clones in parallel.
//
// The live engine is shared read-only; driving the execution further
// (Insert/Delete/Run) must happen on the original session, not a clone.
// That sharing extends to the engines' join indexes: indexes are built
// eagerly while an engine runs and are never created or mutated by
// queries (TuplesAt/TuplesMatchingAt/Exists), so concurrent clones can
// probe the shared live or memoized-replay engine without locking, and
// every counterfactual roll-forward (ReplayWith) builds a fresh engine —
// and fresh indexes — of its own.
func (s *Session) Clone() *Session {
	return &Session{
		prog:        s.prog,
		mode:        s.mode,
		log:         s.log.Clone(),
		live:        s.live,
		liveRec:     s.liveRec,
		ckptEvery:   s.ckptEvery,
		lastCkpt:    s.lastCkpt,
		ckpts:       append([]ndlog.Snapshot(nil), s.ckpts...),
		replayed:    s.replayed,
		replayedG:   s.replayedG,
		replayedLen: s.replayedLen,
		engineOpts:  s.engineOpts,
	}
}

// ResetStats zeroes the replay statistics, so subsequent replays are
// accounted from a clean slate (per-request deltas).
func (s *Session) ResetStats() {
	s.ReplayTime = 0
	s.ReplayCount = 0
}

// Program returns the session's program.
func (s *Session) Program() *ndlog.Program { return s.prog }

// Live returns the live engine (the "runtime system").
func (s *Session) Live() *ndlog.Engine { return s.live }

// Log returns the base-event log.
func (s *Session) Log() *Log { return s.log }

// Mode returns the capture mode.
func (s *Session) Mode() Mode { return s.mode }

// Checkpoints returns the state checkpoints captured so far.
func (s *Session) Checkpoints() []ndlog.Snapshot { return s.ckpts }

// Insert logs and schedules a base-tuple insertion on the live system.
func (s *Session) Insert(node string, t ndlog.Tuple, tick int64) error {
	if err := s.live.ScheduleInsert(node, t, tick); err != nil {
		return err
	}
	s.log.Insert(node, t, tick)
	return nil
}

// Delete logs and schedules a base-tuple deletion on the live system.
func (s *Session) Delete(node string, t ndlog.Tuple, tick int64) error {
	if err := s.live.ScheduleDelete(node, t, tick); err != nil {
		return err
	}
	s.log.Delete(node, t, tick)
	return nil
}

// Run drains the live engine and takes due checkpoints.
func (s *Session) Run() error {
	if err := s.live.Run(); err != nil {
		return err
	}
	if s.ckptEvery > 0 && s.live.Now().T >= s.lastCkpt+s.ckptEvery {
		s.ckpts = append(s.ckpts, s.live.CaptureState())
		s.lastCkpt = s.live.Now().T
	}
	return nil
}

// StateAt returns the most recent checkpoint at or before the tick, if
// one exists. This is the fast path for state inspection; provenance
// queries replay instead.
func (s *Session) StateAt(tick int64) (ndlog.Snapshot, bool) {
	for i := len(s.ckpts) - 1; i >= 0; i-- {
		if s.ckpts[i].Tick <= tick {
			return s.ckpts[i], true
		}
	}
	return ndlog.Snapshot{}, false
}

// Graph returns the provenance graph of the execution so far: directly in
// Runtime mode, via (memoized) replay in QueryTime mode. The returned
// engine exposes the temporal store backing the graph.
func (s *Session) Graph() (*ndlog.Engine, *provenance.Graph, error) {
	if s.mode == Runtime {
		return s.live, s.liveRec.Graph(), nil
	}
	if s.replayed != nil && s.replayedLen == s.log.Len() {
		return s.replayed, s.replayedG, nil
	}
	e, g, err := s.Replay()
	if err != nil {
		return nil, nil, err
	}
	s.replayed, s.replayedG, s.replayedLen = e, g, s.log.Len()
	return e, g, nil
}

// Replay deterministically re-executes the log from scratch with a
// provenance recorder attached and returns the fresh engine and graph.
func (s *Session) Replay() (*ndlog.Engine, *provenance.Graph, error) {
	return s.ReplayWith(nil)
}

// ReplayWith clones the logged execution and rolls it forward with the
// given counterfactual changes injected at their ticks. The live system
// is never touched (§4.6: "DiffProv clones the current state of the
// system ... and applies its changes only to the clone").
func (s *Session) ReplayWith(changes []Change) (*ndlog.Engine, *provenance.Graph, error) {
	return s.ReplayWithContext(context.Background(), changes)
}

// ctxCheckEvery is how many scheduled events pass between cancellation
// checks during a replay.
const ctxCheckEvery = 4096

// ReplayWithContext is ReplayWith honoring cancellation and deadlines:
// the replay aborts with the context's error as soon as the cancellation
// is observed (between scheduled events).
func (s *Session) ReplayWithContext(ctx context.Context, changes []Change) (*ndlog.Engine, *provenance.Graph, error) {
	start := time.Now()
	defer func() {
		s.ReplayTime += time.Since(start)
		s.ReplayCount++
	}()
	if err := ctx.Err(); err != nil {
		return nil, nil, fmt.Errorf("replay: %w", err)
	}
	rec := provenance.NewRecorder(s.prog)
	e := ndlog.New(s.prog, rec, s.engineOpts...)
	scheduled := 0
	schedule := func(kind EventKind, node string, t ndlog.Tuple, tick int64) error {
		scheduled++
		if scheduled%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if kind == EvInsert {
			return e.ScheduleInsert(node, t, tick)
		}
		return e.ScheduleDelete(node, t, tick)
	}
	for _, ev := range s.log.events {
		if err := schedule(ev.Kind, ev.Node, ev.Tuple, ev.Tick); err != nil {
			return nil, nil, fmt.Errorf("replay: %w", err)
		}
	}
	for _, c := range changes {
		kind := EvDelete
		if c.Insert {
			kind = EvInsert
		}
		if err := schedule(kind, c.Node, c.Tuple, c.Tick); err != nil {
			return nil, nil, fmt.Errorf("replay: injecting %s: %w", c, err)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, fmt.Errorf("replay: %w", err)
	}
	if err := e.Run(); err != nil {
		return nil, nil, fmt.Errorf("replay: %v", err)
	}
	return e, rec.Graph(), nil
}

// ReplayUntil replays only the log prefix up to and including the given
// tick — the "selective reconstruction" optimization for queries about
// past events.
func (s *Session) ReplayUntil(tick int64) (*ndlog.Engine, *provenance.Graph, error) {
	start := time.Now()
	defer func() {
		s.ReplayTime += time.Since(start)
		s.ReplayCount++
	}()
	rec := provenance.NewRecorder(s.prog)
	e := ndlog.New(s.prog, rec, s.engineOpts...)
	for _, ev := range s.log.events {
		if ev.Tick > tick {
			continue
		}
		var err error
		if ev.Kind == EvInsert {
			err = e.ScheduleInsert(ev.Node, ev.Tuple, ev.Tick)
		} else {
			err = e.ScheduleDelete(ev.Node, ev.Tuple, ev.Tick)
		}
		if err != nil {
			return nil, nil, fmt.Errorf("replay: %v", err)
		}
	}
	if err := e.Run(); err != nil {
		return nil, nil, fmt.Errorf("replay: %v", err)
	}
	return e, rec.Graph(), nil
}
