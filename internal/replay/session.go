package replay

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/ndlog"
	"repro/internal/provenance"
	"repro/internal/store"
)

// Mode selects how provenance is captured (§5): at runtime (log every
// derivation as it happens; queries are cheap, runtime is expensive) or
// at query time (log base events only; provenance is reconstructed by
// deterministic replay). The paper's prototype defaults to query-time.
type Mode uint8

// Capture modes.
const (
	QueryTime Mode = iota
	Runtime
)

// Change is a counterfactual base-tuple change that UPDATETREE injects
// into a cloned execution (§4.6).
type Change struct {
	Insert bool // true = insert the tuple, false = delete it
	Node   string
	Tuple  ndlog.Tuple
	Tick   int64 // when to apply; "shortly before it is needed" (§4.8)
}

func (c Change) String() string {
	op := "insert"
	if !c.Insert {
		op = "delete"
	}
	return fmt.Sprintf("%s %s on %s at t=%d", op, c.Tuple, c.Node, c.Tick)
}

// ReplayStats counts incremental roll-forward activity. The evaluation
// harness and the server report them alongside the replay timings.
type ReplayStats struct {
	// PrefixHits counts replays that forked an already-materialized
	// prefix engine; PrefixMisses counts replays that had to build one.
	PrefixHits   int64
	PrefixMisses int64
	// ForkNanos is the total wall-clock time spent deep-copying prefix
	// engines and their provenance graphs.
	ForkNanos int64
	// EventsSkipped is the total number of logged base events that
	// incremental replays did not re-execute (they were already evaluated
	// inside the forked prefix).
	EventsSkipped int64
	// EventsReFired is the total number of logged base events that
	// counterfactual replays did re-execute after the fork point. With
	// delta replay (WithDeltaReplay, default on) the fork anchors at the
	// end of the log and this stays zero on cache hits: the changes
	// propagate through the delta phase instead of re-firing the suffix.
	EventsReFired int64
	// DirtyTables is the total number of (node, table) pairs the delta
	// phases of counterfactual replays touched — the footprint the
	// semi-naïve propagation actually visited instead of the whole
	// derived state.
	DirtyTables int64
}

// prefixSlack is how many ticks before the earliest injected change the
// roll-forward prefix must stop, so the change still lands in unevaluated
// territory.
const prefixSlack = 1

// maxPrefixEntries is the default bound on the number of materialized
// prefix engines a session (and its clones) keep alive; the oldest entry
// is evicted first. WithPrefixCacheSize overrides it per session.
const maxPrefixEntries = 8

// prefixEntry is one materialized prefix: a recorder-attached engine that
// has every log event scheduled but has only evaluated those at ticks
// <= tick. An entry is published into the cache as a placeholder before
// its engines exist; ready is closed once the build completes (filling
// eng/rec, or err on failure). After ready, the entry is immutable —
// replays Fork it, they never run it — so readers need no lock once
// acquire returns.
type prefixEntry struct {
	tick      int64
	processed int // log events evaluated (tick <= anchor)

	ready chan struct{}
	err   error // build failure; the entry was removed from the cache
	eng   *ndlog.Engine
	rec   *provenance.Recorder
}

// prefixCache holds the materialized prefixes, keyed by anchor tick. It
// is shared by pointer across Clone(), so concurrent diagnoses over the
// same execution reuse each other's prefixes. The mutex only serializes
// lookups and placeholder publication; the expensive part — running the
// prefix engines — happens outside the lock, so two clones can build
// disjoint prefixes in parallel while acquires for an anchor already in
// flight just wait on its ready channel.
type prefixCache struct {
	mu      sync.Mutex
	logLen  int // log length the entries were built from
	entries map[int64]*prefixEntry
	order   []int64 // insertion order, for eviction
	ticks   []int64 // sorted event ticks, for counting events up to an anchor

	// maxEntries caps the cache (WithPrefixCacheSize); 0 means the
	// maxPrefixEntries default.
	maxEntries int

	// buildHook, when set, runs outside the lock at the start of every
	// prefix build; tests use it to prove builds overlap.
	buildHook func(anchor int64)
}

// Session couples a live engine with the logging engine, and provides the
// replay operations DiffProv needs. It is the embodiment of the paper's
// five-component architecture minus the reasoning engine (which lives in
// internal/core): recorder + logging engine + replay engine.
type Session struct {
	prog *ndlog.Program
	mode Mode
	log  *Log

	live    *ndlog.Engine
	liveRec *provenance.Recorder // only in Runtime mode

	ckptEvery int64 // checkpoint interval in ticks; 0 disables
	lastCkpt  int64
	ckpts     []ndlog.Snapshot

	// incremental enables checkpoint-anchored roll-forward: ReplayWith
	// forks a cached prefix engine instead of re-executing the whole log.
	incremental bool
	prefix      *prefixCache
	// deltaReplay anchors counterfactual forks at the END of the log
	// (default on): the whole base run is evaluated once, cached, and
	// every trial forks it and propagates only its change set through the
	// engine's delta phase instead of re-firing the event suffix.
	deltaReplay bool
	// lastTickMemo caches the maximum event tick of the log (lastTickLen
	// is the log length it was computed from).
	lastTickMemo int64
	lastTickLen  int
	// cowForks makes cached prefixes sealed and forked copy-on-write
	// (default on); prefixSize overrides the prefix-cache capacity; and
	// warmStart makes Open rehydrate the last checkpoint-anchored prefix
	// so the first counterfactual replay after a restart hits the cache.
	cowForks   bool
	prefixSize int
	warmStart  bool

	// memoized full replay for query-time provenance
	replayed    *ndlog.Engine
	replayedG   *provenance.Graph
	replayedLen int // log length the memo was built from

	// ReplayTime accumulates wall-clock time spent replaying (including
	// prefix materialization), and ReplayCount the number of replays; the
	// turnaround experiments (Figure 7) read these.
	ReplayTime  time.Duration
	ReplayCount int
	// Stats counts incremental roll-forward activity.
	Stats ReplayStats

	engineOpts []ndlog.Option
	recOpts    []provenance.RecorderOption

	// Persistent storage backing (WithStorage); nil for in-memory
	// sessions. stErr is a storage-attach failure, reported by the first
	// Insert/Delete/Run call since options cannot fail.
	storageDir string
	storeOpts  []store.Option
	storage    *sessionStorage
	stErr      error
}

// SessionOption configures a Session.
type SessionOption func(*Session)

// WithMode selects the capture mode (default QueryTime).
func WithMode(m Mode) SessionOption { return func(s *Session) { s.mode = m } }

// WithCheckpointEvery enables periodic state checkpoints at the given
// tick interval.
func WithCheckpointEvery(ticks int64) SessionOption {
	return func(s *Session) { s.ckptEvery = ticks }
}

// WithEngineOptions passes options to every engine the session creates.
func WithEngineOptions(opts ...ndlog.Option) SessionOption {
	return func(s *Session) { s.engineOpts = opts }
}

// WithIncrementalReplay enables or disables checkpoint-anchored
// incremental roll-forward (default on). Replay results are identical
// either way — a forked prefix reproduces the from-scratch execution
// stamp-for-stamp (asserted by TestForkDifferential); the switch exists
// for that differential test and as an escape hatch.
func WithIncrementalReplay(on bool) SessionOption {
	return func(s *Session) { s.incremental = on }
}

// WithCopyOnWriteForks enables or disables copy-on-write prefix forks
// (default on): cached prefix engines and recorders are sealed when
// published and counterfactual forks share their frozen state, cloning a
// table or index overlay only on first write. Replay results are
// byte-identical either way — the differential suites run both arms; the
// switch exists for them and as an escape hatch.
func WithCopyOnWriteForks(on bool) SessionOption {
	return func(s *Session) { s.cowForks = on }
}

// WithDeltaReplay enables or disables delta replay (default on): with it
// on, a counterfactual ReplayWith forks the cached base run — the log
// evaluated to its last tick — and seeds the engine's semi-naïve delta
// queue with the change set, re-deriving only affected state instead of
// re-firing the whole event suffix after the earliest change. Results
// are byte-identical either way (asserted by TestDeltaDifferential); the
// switch exists for that differential test and as an ablation flag.
func WithDeltaReplay(on bool) SessionOption {
	return func(s *Session) { s.deltaReplay = on }
}

// WithPrefixCacheSize overrides how many materialized prefix engines the
// session (and its clones) keep alive (default 8). Values below 1 are
// clamped to 1.
func WithPrefixCacheSize(n int) SessionOption {
	return func(s *Session) {
		if n < 1 {
			n = 1
		}
		s.prefixSize = n
	}
}

// WithWarmStart makes Open rehydrate a checkpoint-anchored prefix engine
// from the recovered log after a restart (default off), so the first
// incremental replay forks a warm prefix instead of paying a from-scratch
// materialization. The prefix is rebuilt from the in-memory log — no
// additional store reads — and verified against the durable checkpoint
// snapshot it anchors on.
func WithWarmStart(on bool) SessionOption {
	return func(s *Session) { s.warmStart = on }
}

// WithEagerAggregates makes every recorder the session creates
// materialize aggregate contributor lists eagerly at record time instead
// of folding delta chains on demand (default lazy). Folded trees, diffs,
// and diagnoses are byte-identical either way (asserted by
// TestAggregateFoldDifferential); the switch exists for that differential
// test and as an escape hatch.
func WithEagerAggregates(on bool) SessionOption {
	return func(s *Session) {
		s.recOpts = []provenance.RecorderOption{provenance.WithEagerAggregates(on)}
	}
}

// NewSession creates a session for the given program.
func NewSession(prog *ndlog.Program, opts ...SessionOption) *Session {
	s := &Session{
		prog:        prog,
		log:         NewLog(),
		incremental: true,
		deltaReplay: true,
		cowForks:    true,
		prefix:      &prefixCache{entries: map[int64]*prefixEntry{}},
	}
	for _, o := range opts {
		o(s)
	}
	s.prefix.maxEntries = s.prefixSize
	if s.mode == Runtime {
		s.liveRec = provenance.NewRecorder(prog, s.newRecOpts()...)
		s.live = ndlog.New(prog, s.liveRec, s.newEngineOpts()...)
	} else {
		s.live = ndlog.New(prog, nil, s.newEngineOpts()...)
	}
	if s.storageDir != "" {
		if err := s.attachStorage(s.storageDir); err != nil {
			s.stErr = fmt.Errorf("replay: attaching storage at %s: %v", s.storageDir, err)
		}
	}
	return s
}

// newEngineOpts returns the option set for a session-created engine.
// Every engine gets a sequence band: base-event stamps then depend only
// on schedule positions and internal stamps only on processing positions,
// which (a) makes live execution independent of how scheduling
// interleaves with Run calls, and (b) is what lets a forked prefix engine
// reproduce a from-scratch replay byte-for-byte. User options follow, so
// they win on conflict.
func (s *Session) newEngineOpts() []ndlog.Option {
	opts := make([]ndlog.Option, 0, len(s.engineOpts)+2)
	opts = append(opts, ndlog.WithSeqBand(ndlog.SeqBandDefault))
	opts = append(opts, ndlog.WithCopyOnWriteForks(s.cowForks))
	return append(opts, s.engineOpts...)
}

// newRecOpts returns the option set for a session-created recorder. The
// session's copy-on-write setting comes first so user options win on
// conflict.
func (s *Session) newRecOpts() []provenance.RecorderOption {
	opts := make([]provenance.RecorderOption, 0, len(s.recOpts)+1)
	opts = append(opts, provenance.WithCopyOnWriteForks(s.cowForks))
	return append(opts, s.recOpts...)
}

// FromLog reconstructs a session from a previously captured base-event
// log: the log is re-driven through a fresh live engine, after which the
// session is indistinguishable from the one that recorded it — including
// its checkpoint set, which depends only on the event schedule (see Run).
// This is how a diagnosis is run offline against saved logs.
func FromLog(prog *ndlog.Program, l *Log, opts ...SessionOption) (*Session, error) {
	s := NewSession(prog, opts...)
	var driveErr error
	l.Each(func(ev Event) {
		if driveErr != nil {
			return
		}
		if ev.Kind == EvInsert {
			driveErr = s.Insert(ev.Node, ev.Tuple, ev.Tick)
		} else {
			driveErr = s.Delete(ev.Node, ev.Tuple, ev.Tick)
		}
	})
	if driveErr != nil {
		return nil, fmt.Errorf("replay: rebuilding session: %v", driveErr)
	}
	if err := s.Run(); err != nil {
		return nil, fmt.Errorf("replay: rebuilding session: %v", err)
	}
	return s, nil
}

// Clone returns an independent session over the same captured execution.
// It reuses the copy-on-write structure of counterfactual roll-forward
// (§4.6): the immutable program, engine options, memoized replay, and the
// prefix cache are shared, the base-event log is copied, and the replay
// statistics start at zero. Clones are how concurrent diagnoses isolate
// their mutable state — each one replays and accounts time privately, so
// a completed session can serve any number of clones in parallel.
//
// The live engine is shared read-only; driving the execution further
// (Insert/Delete/Run) must happen on the original session, not a clone.
// That sharing extends to the engines' join indexes: indexes are built
// eagerly while an engine runs and are never created or mutated by
// queries (TuplesAt/TuplesMatchingAt/Exists), so concurrent clones can
// probe the shared live or memoized-replay engine without locking. The
// prefix cache is shared by pointer and internally synchronized: each
// materialized prefix is immutable once published, and every
// counterfactual roll-forward (ReplayWith) Forks it into a private
// engine of its own.
//
// Clones detach from persistent storage: only the original session
// verifies, appends, and checkpoints through the store. A diagnosis that
// must survive concurrent GC pins its anchor on the original
// (PinStorage).
func (s *Session) Clone() *Session {
	return &Session{
		prog:        s.prog,
		mode:        s.mode,
		log:         s.log.Clone(),
		live:        s.live,
		liveRec:     s.liveRec,
		ckptEvery:   s.ckptEvery,
		lastCkpt:    s.lastCkpt,
		ckpts:       append([]ndlog.Snapshot(nil), s.ckpts...),
		incremental: s.incremental,
		deltaReplay: s.deltaReplay,
		prefix:      s.prefix,
		replayed:    s.replayed,
		replayedG:   s.replayedG,
		replayedLen: s.replayedLen,
		engineOpts:  s.engineOpts,
		recOpts:     s.recOpts,
		cowForks:    s.cowForks,
		prefixSize:  s.prefixSize,
		warmStart:   s.warmStart,
	}
}

// ResetStats zeroes the replay statistics, so subsequent replays are
// accounted from a clean slate (per-request deltas).
func (s *Session) ResetStats() {
	s.ReplayTime = 0
	s.ReplayCount = 0
	s.Stats = ReplayStats{}
}

// AbsorbStats folds the replay statistics accumulated by another session
// (typically a worker Clone that ran counterfactual replays on behalf of
// this one) into the receiver. The caller must ensure the other session is
// quiescent.
func (s *Session) AbsorbStats(other *Session) {
	if other == nil {
		return
	}
	s.ReplayTime += other.ReplayTime
	s.ReplayCount += other.ReplayCount
	s.Stats.PrefixHits += other.Stats.PrefixHits
	s.Stats.PrefixMisses += other.Stats.PrefixMisses
	s.Stats.ForkNanos += other.Stats.ForkNanos
	s.Stats.EventsSkipped += other.Stats.EventsSkipped
	s.Stats.EventsReFired += other.Stats.EventsReFired
	s.Stats.DirtyTables += other.Stats.DirtyTables
}

// Program returns the session's program.
func (s *Session) Program() *ndlog.Program { return s.prog }

// Live returns the live engine (the "runtime system").
func (s *Session) Live() *ndlog.Engine { return s.live }

// Log returns the base-event log.
func (s *Session) Log() *Log { return s.log }

// Mode returns the capture mode.
func (s *Session) Mode() Mode { return s.mode }

// Checkpoints returns a copy of the state checkpoints captured so far.
// (A copy, so callers cannot perturb the session's checkpoint sequence —
// StateAt and the prefix-anchor search rely on it being tick-sorted.)
func (s *Session) Checkpoints() []ndlog.Snapshot {
	return append([]ndlog.Snapshot(nil), s.ckpts...)
}

// Insert logs and schedules a base-tuple insertion on the live system.
func (s *Session) Insert(node string, t ndlog.Tuple, tick int64) error {
	if s.stErr != nil {
		return s.stErr
	}
	if err := s.live.ScheduleInsert(node, t, tick); err != nil {
		return err
	}
	return s.logEvent(Event{Kind: EvInsert, Node: node, Tuple: t, Tick: tick})
}

// Delete logs and schedules a base-tuple deletion on the live system.
func (s *Session) Delete(node string, t ndlog.Tuple, tick int64) error {
	if s.stErr != nil {
		return s.stErr
	}
	if err := s.live.ScheduleDelete(node, t, tick); err != nil {
		return err
	}
	return s.logEvent(Event{Kind: EvDelete, Node: node, Tuple: t, Tick: tick})
}

// Run drains the live engine and takes due checkpoints — one per
// checkpoint interval crossed, not one per call. The capture rule depends
// only on the event schedule (a checkpoint lands on the first
// event-bearing tick at or past each interval boundary), so a session
// rebuilt from the log with a single Run (FromLog) reproduces the
// checkpoint set of the live session that recorded it, no matter how the
// live drive batched its Run calls.
func (s *Session) Run() error {
	if s.stErr != nil {
		return s.stErr
	}
	if s.ckptEvery <= 0 {
		return s.live.Run()
	}
	for {
		t, ok := s.live.NextPendingTick()
		if !ok {
			return nil
		}
		if err := s.live.RunUntil(t); err != nil {
			return err
		}
		if t >= s.lastCkpt+s.ckptEvery {
			snap := s.live.CaptureStateAt(t)
			s.ckpts = append(s.ckpts, snap)
			s.lastCkpt = t
			if err := s.putCheckpoint(snap); err != nil {
				return err
			}
		}
	}
}

// StateAt returns the most recent checkpoint at or before the tick, if
// one exists. Checkpoints are tick-sorted (Run appends them in order), so
// this is a binary search. This is the fast path for state inspection;
// provenance queries replay instead.
func (s *Session) StateAt(tick int64) (ndlog.Snapshot, bool) {
	i := sort.Search(len(s.ckpts), func(i int) bool { return s.ckpts[i].Tick > tick })
	if i == 0 {
		return ndlog.Snapshot{}, false
	}
	return s.ckpts[i-1], true
}

// Graph returns the provenance graph of the execution so far: directly in
// Runtime mode, via (memoized) replay in QueryTime mode. The returned
// engine exposes the temporal store backing the graph.
func (s *Session) Graph() (*ndlog.Engine, *provenance.Graph, error) {
	if s.mode == Runtime {
		return s.live, s.liveRec.Graph(), nil
	}
	if s.replayed != nil && s.replayedLen == s.log.Len() {
		return s.replayed, s.replayedG, nil
	}
	e, g, err := s.Replay()
	if err != nil {
		return nil, nil, err
	}
	s.replayed, s.replayedG, s.replayedLen = e, g, s.log.Len()
	return e, g, nil
}

// Replay deterministically re-executes the log from scratch with a
// provenance recorder attached and returns the fresh engine and graph.
func (s *Session) Replay() (*ndlog.Engine, *provenance.Graph, error) {
	return s.ReplayWith(nil)
}

// ReplayWith clones the logged execution and rolls it forward with the
// given counterfactual changes injected at their ticks. The live system
// is never touched (§4.6: "DiffProv clones the current state of the
// system ... and applies its changes only to the clone").
func (s *Session) ReplayWith(changes []Change) (*ndlog.Engine, *provenance.Graph, error) {
	return s.ReplayWithContext(context.Background(), changes)
}

// ctxCheckEvery is how many scheduled events pass between cancellation
// checks during a replay.
const ctxCheckEvery = 4096

// ReplayWithContext is ReplayWith honoring cancellation and deadlines:
// the replay aborts with the context's error as soon as the cancellation
// is observed (between scheduled events).
//
// With incremental roll-forward enabled (the default) and at least one
// change to inject, the replay forks a cached prefix engine — the log
// evaluated up to an anchor tick shortly before the earliest change — and
// pays only for the suffix. The result is byte-identical to the
// from-scratch path: base-event stamps are schedule positions (the prefix
// had the whole log scheduled before it ran), internal stamps are
// processing positions, and the fork copies the mid-execution state
// exactly.
func (s *Session) ReplayWithContext(ctx context.Context, changes []Change) (*ndlog.Engine, *provenance.Graph, error) {
	start := time.Now() //diffprov:allow detnow (stats timing only; never feeds derivation)
	defer func() {
		s.ReplayTime += time.Since(start) //diffprov:allow detnow
		s.ReplayCount++
	}()
	if err := ctx.Err(); err != nil {
		return nil, nil, fmt.Errorf("replay: %w", err)
	}
	if s.incremental && len(changes) > 0 {
		anchor, ok := s.anchorFor(changes)
		if s.deltaReplay {
			// Delta replay anchors at the end of the log: the fork has the
			// whole base run evaluated, so none of the suffix re-fires —
			// the changes propagate through the engine's delta phase.
			if t, lok := s.lastLogTick(); lok && (!ok || t > anchor) {
				anchor, ok = t, true
			}
		}
		if ok {
			e, rec, processed, err := s.forkPrefix(ctx, anchor)
			if err != nil {
				return nil, nil, err
			}
			if e != nil {
				if err := s.scheduleChanges(ctx, e, changes); err != nil {
					return nil, nil, err
				}
				if err := e.Run(); err != nil {
					return nil, nil, fmt.Errorf("replay: %v", err)
				}
				s.Stats.EventsReFired += int64(s.log.Len() - processed)
				s.Stats.DirtyTables += int64(e.Stats().DirtyTables)
				return e, rec.Graph(), nil
			}
			// No log events at or before the anchor: fall through to the
			// (equally cheap) from-scratch path.
		}
	}
	e, rec, err := s.scheduleScratch(ctx)
	if err != nil {
		return nil, nil, err
	}
	if err := s.scheduleChanges(ctx, e, changes); err != nil {
		return nil, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, fmt.Errorf("replay: %w", err)
	}
	if err := e.Run(); err != nil {
		return nil, nil, fmt.Errorf("replay: %v", err)
	}
	if len(changes) > 0 {
		s.Stats.EventsReFired += int64(s.log.Len())
		s.Stats.DirtyTables += int64(e.Stats().DirtyTables)
	}
	return e, rec.Graph(), nil
}

// ReplayUntil replays the execution truncated at the given tick — the
// "selective reconstruction" optimization for queries about past events.
// Base events after the tick are excluded; consequences of events at or
// before it are fully evaluated, even when the transit delay carries them
// past the horizon. It delegates to ReplayUntilContext.
func (s *Session) ReplayUntil(tick int64) (*ndlog.Engine, *provenance.Graph, error) {
	return s.ReplayUntilContext(context.Background(), tick)
}

// ReplayUntilContext is ReplayUntil honoring cancellation and deadlines.
// It shares the scheduling and incremental roll-forward machinery of
// ReplayWithContext: with incremental replay on, the truncated replay
// forks a cached prefix anchored at or before the horizon and only
// evaluates the remainder.
func (s *Session) ReplayUntilContext(ctx context.Context, tick int64) (*ndlog.Engine, *provenance.Graph, error) {
	start := time.Now() //diffprov:allow detnow (stats timing only; never feeds derivation)
	defer func() {
		s.ReplayTime += time.Since(start) //diffprov:allow detnow
		s.ReplayCount++
	}()
	if err := ctx.Err(); err != nil {
		return nil, nil, fmt.Errorf("replay: %w", err)
	}
	var e *ndlog.Engine
	var rec *provenance.Recorder
	if s.incremental && tick >= 0 {
		fe, frec, _, err := s.forkPrefix(ctx, tick)
		if err != nil {
			return nil, nil, err
		}
		e, rec = fe, frec
	}
	if e == nil {
		se, srec, err := s.scheduleScratch(ctx)
		if err != nil {
			return nil, nil, err
		}
		e, rec = se, srec
	}
	e.DropPendingBaseAfter(tick)
	if err := ctx.Err(); err != nil {
		return nil, nil, fmt.Errorf("replay: %w", err)
	}
	if err := e.Run(); err != nil {
		return nil, nil, fmt.Errorf("replay: %v", err)
	}
	return e, rec.Graph(), nil
}

// anchorFor picks the prefix anchor tick for a set of changes: the
// earliest injection tick minus the slack, snapped down to a checkpoint
// when one covers it. Returns false when the changes leave no room for a
// prefix.
func (s *Session) anchorFor(changes []Change) (int64, bool) {
	minTick := changes[0].Tick
	for _, c := range changes[1:] {
		if c.Tick < minTick {
			minTick = c.Tick
		}
	}
	target := minTick - prefixSlack
	if target < 0 {
		return 0, false
	}
	return target, true
}

// lastLogTick returns the maximum tick of any logged event (memoized per
// log length); false when the log is empty.
func (s *Session) lastLogTick() (int64, bool) {
	if s.log.Len() == 0 {
		return 0, false
	}
	if s.lastTickLen != s.log.Len() {
		var max int64
		first := true
		s.log.Each(func(ev Event) {
			if first || ev.Tick > max {
				max, first = ev.Tick, false
			}
		})
		s.lastTickMemo, s.lastTickLen = max, s.log.Len()
	}
	return s.lastTickMemo, true
}

// snapToCheckpoint rounds an anchor target down to the latest checkpoint
// tick at or before it, when one exists. The checkpoint grid coarsens
// the cache's base layer — injections at nearby ticks roll forward from
// one shared checkpoint-anchored prefix instead of each paying a full
// from-scratch materialization. Without checkpoints the target itself
// anchors the base.
func (s *Session) snapToCheckpoint(target int64) int64 {
	i := sort.Search(len(s.ckpts), func(i int) bool { return s.ckpts[i].Tick > target })
	if i > 0 {
		return s.ckpts[i-1].Tick
	}
	return target
}

// forkPrefix returns a private fork of the materialized prefix anchored
// at the tick, building (and caching) the prefix on a miss, plus the
// number of log events the prefix already evaluated. A nil engine with
// nil error means no prefix is worthwhile (no log events at or before
// the anchor) and the caller should run from scratch.
func (s *Session) forkPrefix(ctx context.Context, anchor int64) (*ndlog.Engine, *provenance.Recorder, int, error) {
	entry, hit, err := s.prefix.acquire(ctx, s, anchor)
	if err != nil {
		return nil, nil, 0, err
	}
	if entry == nil {
		return nil, nil, 0, nil
	}
	if hit {
		s.Stats.PrefixHits++
	} else {
		s.Stats.PrefixMisses++
	}
	forkStart := time.Now() //diffprov:allow detnow (stats timing only; never feeds derivation)
	rec := entry.rec.Fork()
	e := entry.eng.Fork(rec)
	s.Stats.ForkNanos += time.Since(forkStart).Nanoseconds() //diffprov:allow detnow
	s.Stats.EventsSkipped += int64(entry.processed)
	return e, rec, entry.processed, nil
}

// acquire returns the ready prefix entry for the anchor, building it on
// a miss. The lock only covers lookup and placeholder publication —
// running the prefix engines happens outside it, so concurrent clones
// build disjoint prefixes in parallel, and acquires for an anchor whose
// build is in flight wait on its ready channel instead of duplicating
// the work. A stale cache (the log grew since the entries were built) is
// invalidated wholesale.
//
// The cache is two-layered. The base layer is checkpoint-anchored: a
// miss with no usable cached entry materializes a from-scratch prefix
// run to the latest checkpoint at or before the anchor, so nearby
// anchors share one expensive build. On top of it, exact-anchor entries
// are refined incrementally — fork the closest entry at or before the
// anchor and roll it forward the few remaining ticks — so steady-state
// replays (minimize's candidate subsets, repeated counterfactuals at one
// tick) fork an engine that has already evaluated everything up to the
// slack window and pay only for the change itself.
func (c *prefixCache) acquire(ctx context.Context, s *Session, anchor int64) (*prefixEntry, bool, error) {
	c.mu.Lock()
	if c.logLen != s.log.Len() {
		c.entries = map[int64]*prefixEntry{}
		c.order = c.order[:0]
		c.logLen = s.log.Len()
		// Rebuild the count index: sorted event ticks, so counting the
		// events at or before an anchor is a binary search instead of a
		// scan of the whole log under the mutex.
		c.ticks = c.ticks[:0]
		s.log.Each(func(ev Event) { c.ticks = append(c.ticks, ev.Tick) })
		sort.Slice(c.ticks, func(i, j int) bool { return c.ticks[i] < c.ticks[j] })
	}
	countUpTo := func(tick int64) int {
		return sort.Search(len(c.ticks), func(i int) bool { return c.ticks[i] > tick })
	}
	processed := countUpTo(anchor)
	if processed == 0 {
		c.mu.Unlock()
		return nil, false, nil // an empty prefix saves nothing
	}
	if e, ok := c.entries[anchor]; ok {
		c.mu.Unlock()
		return c.await(ctx, e, true)
	}

	// Plan the build while still holding the lock. The closest entry at
	// or before the anchor (possibly still building) is the cheapest
	// starting point; with none, a from-scratch base anchored at the
	// latest covering checkpoint is planned too. Placeholders for
	// everything this build will produce are published before unlocking,
	// so concurrent acquires join the in-flight work.
	var base *prefixEntry
	for t, e := range c.entries {
		if t <= anchor && (base == nil || t > base.tick) {
			base = e
		}
	}
	entry := &prefixEntry{tick: anchor, processed: processed, ready: make(chan struct{})}
	scratchSelf := false     // the scratch build IS the entry (checkpoint lands on the anchor)
	var ownBase *prefixEntry // scratch base this goroutine must build first
	if base == nil {
		if ck := s.snapToCheckpoint(anchor); ck == anchor {
			scratchSelf = true
		} else {
			base = &prefixEntry{tick: ck, processed: countUpTo(ck), ready: make(chan struct{})}
			c.publish(base)
			ownBase = base
		}
	}
	c.publish(entry)
	hook := c.buildHook
	c.mu.Unlock()
	if hook != nil {
		hook(anchor)
	}

	if scratchSelf {
		if err := c.buildScratch(ctx, s, entry); err != nil {
			return nil, false, err
		}
		return entry, false, nil
	}
	if ownBase != nil {
		if err := c.buildScratch(ctx, s, ownBase); err != nil {
			c.fail(entry, err)
			return nil, false, err
		}
	}

	// Refine: wait for the base, then roll a fork of it forward to the
	// exact anchor.
	select {
	case <-base.ready:
	case <-ctx.Done():
		err := fmt.Errorf("replay: %w", ctx.Err())
		c.fail(entry, err)
		return nil, false, err
	}
	if base.err != nil {
		c.fail(entry, base.err)
		return nil, false, base.err
	}
	rec := base.rec.Fork()
	e := base.eng.Fork(rec)
	if err := e.RunUntil(anchor); err != nil {
		err = fmt.Errorf("replay: refining prefix: %v", err)
		c.fail(entry, err)
		return nil, false, err
	}
	// Published entries are immutable by contract; sealing makes the
	// engine enforce that and enables copy-on-write forks of the pair.
	rec.Seal()
	e.Seal()
	entry.eng, entry.rec = e, rec
	close(entry.ready)
	return entry, false, nil
}

// buildScratch materializes a placeholder entry from scratch: schedule
// the whole log on a fresh recorder-attached engine and evaluate it up
// to the entry's tick. Runs outside the cache lock.
func (c *prefixCache) buildScratch(ctx context.Context, s *Session, e *prefixEntry) error {
	eng, rec, err := s.scheduleScratch(ctx)
	if err == nil {
		if rerr := eng.RunUntil(e.tick); rerr != nil {
			err = fmt.Errorf("replay: materializing prefix: %v", rerr)
		}
	}
	if err != nil {
		c.fail(e, err)
		return err
	}
	// Published entries are immutable by contract; sealing makes the
	// engine enforce that and enables copy-on-write forks of the pair.
	rec.Seal()
	eng.Seal()
	e.eng, e.rec = eng, rec
	close(e.ready)
	return nil
}

// await blocks until the entry's build completes (or the context ends)
// and returns it ready for forking.
func (c *prefixCache) await(ctx context.Context, e *prefixEntry, hit bool) (*prefixEntry, bool, error) {
	select {
	case <-e.ready:
	case <-ctx.Done():
		return nil, false, fmt.Errorf("replay: %w", ctx.Err())
	}
	if e.err != nil {
		return nil, false, e.err
	}
	return e, hit, nil
}

// fail completes a placeholder with an error, releasing its waiters and
// removing it from the cache so a later acquire retries the build.
func (c *prefixCache) fail(e *prefixEntry, err error) {
	e.err = err
	close(e.ready)
	c.unpublish(e)
}

// publish inserts an entry, evicting the oldest beyond capacity; a
// duplicate tick replaces the live entry in place WITHOUT queueing a
// second order slot (a second slot would make a later eviction delete a
// live entry while its tick stayed queued, desyncing entries and order
// and shrinking the effective capacity). Callers hold c.mu.
func (c *prefixCache) publish(e *prefixEntry) {
	if _, ok := c.entries[e.tick]; ok {
		c.entries[e.tick] = e
		return
	}
	max := c.maxEntries
	if max == 0 {
		max = maxPrefixEntries
	}
	if len(c.order) >= max {
		delete(c.entries, c.order[0])
		c.order = c.order[1:]
	}
	c.entries[e.tick] = e
	c.order = append(c.order, e.tick)
}

// unpublish removes an entry if it is still the one cached at its tick
// (it may have been replaced, evicted, or invalidated away meanwhile),
// keeping entries and order in sync.
func (c *prefixCache) unpublish(e *prefixEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.entries[e.tick] != e {
		return
	}
	delete(c.entries, e.tick)
	for i, t := range c.order {
		if t == e.tick {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
}

// scheduleScratch builds a fresh recorder-attached engine with the whole
// log scheduled but nothing evaluated.
func (s *Session) scheduleScratch(ctx context.Context) (*ndlog.Engine, *provenance.Recorder, error) {
	rec := provenance.NewRecorder(s.prog, s.newRecOpts()...)
	e := ndlog.New(s.prog, rec, s.newEngineOpts()...)
	for i, ev := range s.log.events {
		if i%ctxCheckEvery == ctxCheckEvery-1 {
			if err := ctx.Err(); err != nil {
				return nil, nil, fmt.Errorf("replay: %w", err)
			}
		}
		var err error
		if ev.Kind == EvInsert {
			err = e.ScheduleInsert(ev.Node, ev.Tuple, ev.Tick)
		} else {
			err = e.ScheduleDelete(ev.Node, ev.Tuple, ev.Tick)
		}
		if err != nil {
			return nil, nil, fmt.Errorf("replay: %v", err)
		}
	}
	return e, rec, nil
}

// scheduleChanges schedules the injected counterfactual changes through
// the engine's counterfactual phase (ScheduleCFInsert/Delete): they are
// applied after the base run settles, in stamp order, with only affected
// derivations re-evaluated. The engine already has the log scheduled (or
// evaluated, in a fork), so the changes take the next base sequence
// numbers either way — which is what makes the delta-forked and
// from-scratch arms byte-identical.
func (s *Session) scheduleChanges(ctx context.Context, e *ndlog.Engine, changes []Change) error {
	for i, c := range changes {
		if i%ctxCheckEvery == ctxCheckEvery-1 {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("replay: %w", err)
			}
		}
		var err error
		if c.Insert {
			err = e.ScheduleCFInsert(c.Node, c.Tuple, c.Tick)
		} else {
			err = e.ScheduleCFDelete(c.Node, c.Tuple, c.Tick)
		}
		if err != nil {
			return fmt.Errorf("replay: injecting %s: %w", c, err)
		}
	}
	return nil
}
