package replay

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/ndlog"
	"repro/internal/provenance"
)

var fwdProg = ndlog.MustParse(`
table flowEntry/3 base mutable;
table packet/1 event base;

rule fw packet(@Nxt, Dst) :-
    packet(@Sw, Dst),
    flowEntry(@Sw, Prio, M, Nxt),
    matches(Dst, M),
    argmax Prio.
`)

func randomTuple(r *rand.Rand) ndlog.Tuple {
	switch r.Intn(3) {
	case 0:
		return ndlog.NewTuple("flowEntry", ndlog.Int(r.Int63n(100)),
			ndlog.Prefix{Addr: ndlog.IP(r.Uint32()).Mask(8), Bits: 8}, ndlog.Str("nxt"))
	case 1:
		return ndlog.NewTuple("packet", ndlog.IP(r.Uint32()))
	default:
		return ndlog.NewTuple("flowEntry", ndlog.Int(r.Int63n(5)),
			ndlog.MustParsePrefix("0.0.0.0/0"), ndlog.Str(string(rune('a'+r.Intn(26)))))
	}
}

func TestLogEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	l := NewLog()
	for i := 0; i < 200; i++ {
		tu := randomTuple(r)
		if tu.Table == "packet" || r.Intn(4) != 0 {
			l.Insert("n", tu, int64(i))
		} else {
			l.Delete("n", tu, int64(i))
		}
	}
	// Add events covering every value kind.
	l.Insert("m", ndlog.NewTuple("flowEntry", ndlog.Int(-5), ndlog.MustParsePrefix("10.0.0.0/8"), ndlog.Str("x")), 500)

	var buf bytes.Buffer
	if err := l.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != l.Len() {
		t.Fatalf("decoded %d events, want %d", back.Len(), l.Len())
	}
	backEvs := back.Events()
	for i, ev := range l.Events() {
		got := backEvs[i]
		if got.Kind != ev.Kind || got.Node != ev.Node || got.Tick != ev.Tick || !got.Tuple.Equal(ev.Tuple) {
			t.Fatalf("event %d: got %+v, want %+v", i, got, ev)
		}
	}
}

func TestLogEncodedSizeNearFixedPerPacket(t *testing.T) {
	// The log stores header + timestamp per packet: per-event size must
	// be small and near constant.
	l := NewLog()
	l.Insert("s1", ndlog.NewTuple("packet", ndlog.IP(1)), 1)
	one := l.EncodedSize()
	for i := 2; i <= 1001; i++ {
		l.Insert("s1", ndlog.NewTuple("packet", ndlog.IP(uint32(i))), int64(i))
	}
	total := l.EncodedSize()
	per := float64(total-one) / 1000
	if per > 32 {
		t.Errorf("per-packet log record = %.1f bytes, want compact (<32)", per)
	}
	if per <= 0 {
		t.Error("per-packet size must be positive")
	}
}

func TestDecodeCorruptLog(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte{0xff, 0xff, 0xff})); err == nil {
		t.Error("decoding garbage must fail")
	}
	if _, err := Decode(bytes.NewReader(nil)); err == nil {
		t.Error("decoding empty input must fail")
	}
	// Truncated valid log.
	l := NewLog()
	l.Insert("n", ndlog.NewTuple("packet", ndlog.IP(1)), 1)
	var buf bytes.Buffer
	l.Encode(&buf)
	trunc := buf.Bytes()[:buf.Len()-2]
	if _, err := Decode(bytes.NewReader(trunc)); err == nil {
		t.Error("decoding truncated log must fail")
	}
}

func driveScenario(t *testing.T, s *Session) {
	t.Helper()
	mp := ndlog.MustParsePrefix
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.Insert("s1", ndlog.NewTuple("flowEntry", ndlog.Int(10), mp("4.3.2.0/24"), ndlog.Str("s6")), 0))
	must(s.Insert("s1", ndlog.NewTuple("flowEntry", ndlog.Int(1), mp("0.0.0.0/0"), ndlog.Str("s3")), 0))
	must(s.Insert("s6", ndlog.NewTuple("flowEntry", ndlog.Int(1), mp("0.0.0.0/0"), ndlog.Str("web1")), 0))
	must(s.Insert("s3", ndlog.NewTuple("flowEntry", ndlog.Int(1), mp("0.0.0.0/0"), ndlog.Str("web2")), 0))
	must(s.Insert("s1", ndlog.NewTuple("packet", ndlog.MustParseIP("4.3.2.1")), 10))
	must(s.Insert("s1", ndlog.NewTuple("packet", ndlog.MustParseIP("4.3.3.1")), 11))
	must(s.Run())
}

func TestReplayReproducesLiveExecution(t *testing.T) {
	s := NewSession(fwdProg)
	driveScenario(t, s)
	e, g, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if !e.ExistsEver("web1", ndlog.NewTuple("packet", ndlog.MustParseIP("4.3.2.1"))) {
		t.Error("replayed engine missing packet at web1")
	}
	if !e.ExistsEver("web2", ndlog.NewTuple("packet", ndlog.MustParseIP("4.3.3.1"))) {
		t.Error("replayed engine missing packet at web2")
	}
	if g.NumVertexes() == 0 {
		t.Error("replayed graph empty")
	}
}

func TestRuntimeAndQueryTimeModesAgree(t *testing.T) {
	sQ := NewSession(fwdProg)
	sR := NewSession(fwdProg, WithMode(Runtime))
	driveScenario(t, sQ)
	driveScenario(t, sR)

	_, gQ, err := sQ.Graph()
	if err != nil {
		t.Fatal(err)
	}
	_, gR, err := sR.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if gQ.NumVertexes() != gR.NumVertexes() {
		t.Fatalf("graphs differ: %d vs %d vertexes", gQ.NumVertexes(), gR.NumVertexes())
	}
	// Vertex-by-vertex equality of labels and stamps.
	for i := 0; i < gQ.NumVertexes(); i++ {
		vq, vr := gQ.Vertex(i), gR.Vertex(i)
		if vq.Label() != vr.Label() || vq.At != vr.At {
			t.Fatalf("vertex %d differs: %s vs %s", i, vq, vr)
		}
	}
}

func TestReplayDeterminismProperty(t *testing.T) {
	// Random logs replay to identical graphs every time.
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		s := NewSession(fwdProg)
		for i := 0; i < 60; i++ {
			tu := randomTuple(r)
			s.Insert("s1", tu, int64(i))
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		_, g1, err := s.Replay()
		if err != nil {
			t.Fatal(err)
		}
		_, g2, err := s.Replay()
		if err != nil {
			t.Fatal(err)
		}
		if g1.NumVertexes() != g2.NumVertexes() {
			t.Fatalf("trial %d: replay nondeterministic (%d vs %d)", trial, g1.NumVertexes(), g2.NumVertexes())
		}
		for i := 0; i < g1.NumVertexes(); i++ {
			if g1.Vertex(i).Label() != g2.Vertex(i).Label() {
				t.Fatalf("trial %d: vertex %d differs", trial, i)
			}
		}
	}
}

func TestReplayWithCounterfactualChange(t *testing.T) {
	s := NewSession(fwdProg)
	driveScenario(t, s)

	// Counterfactual: add the corrected /23 entry before the bad packet.
	fix := Change{
		Insert: true,
		Node:   "s1",
		Tuple:  ndlog.NewTuple("flowEntry", ndlog.Int(10), ndlog.MustParsePrefix("4.3.2.0/23"), ndlog.Str("s6")),
		Tick:   9,
	}
	e, _, err := s.ReplayWith([]Change{fix})
	if err != nil {
		t.Fatal(err)
	}
	if !e.ExistsEver("web1", ndlog.NewTuple("packet", ndlog.MustParseIP("4.3.3.1"))) {
		t.Error("with the fix, 4.3.3.1 should reach web1")
	}
	if e.ExistsEver("web2", ndlog.NewTuple("packet", ndlog.MustParseIP("4.3.3.1"))) {
		t.Error("with the fix, 4.3.3.1 must no longer reach web2")
	}
	// The live system is untouched.
	if s.Live().ExistsEver("web1", ndlog.NewTuple("packet", ndlog.MustParseIP("4.3.3.1"))) {
		t.Error("counterfactual change leaked into the live system")
	}
	if c := (Change{Insert: false, Node: "n", Tuple: ndlog.NewTuple("flowEntry", ndlog.Int(1), ndlog.MustParsePrefix("0.0.0.0/0"), ndlog.Str("x")), Tick: 3}); c.String() == "" {
		t.Error("Change.String empty")
	}
}

func TestReplayUntilTruncates(t *testing.T) {
	s := NewSession(fwdProg)
	driveScenario(t, s)
	e, _, err := s.ReplayUntil(10)
	if err != nil {
		t.Fatal(err)
	}
	if !e.ExistsEver("web1", ndlog.NewTuple("packet", ndlog.MustParseIP("4.3.2.1"))) {
		t.Error("packet at tick 10 must be replayed")
	}
	if e.ExistsEver("web2", ndlog.NewTuple("packet", ndlog.MustParseIP("4.3.3.1"))) {
		t.Error("packet at tick 11 must be excluded")
	}
}

func TestGraphMemoization(t *testing.T) {
	s := NewSession(fwdProg)
	driveScenario(t, s)
	_, g1, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	rc := s.ReplayCount
	_, g2, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if s.ReplayCount != rc {
		t.Error("second Graph() call should hit the memo")
	}
	if g1 != g2 {
		t.Error("memoized graph identity changed")
	}
	// New events invalidate the memo.
	s.Insert("s1", ndlog.NewTuple("packet", ndlog.MustParseIP("4.3.2.9")), 20)
	s.Run()
	_, g3, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if g3 == g1 {
		t.Error("memo must be invalidated by new events")
	}
	if s.ReplayCount != rc+1 {
		t.Error("expected one more replay")
	}
}

func TestCheckpoints(t *testing.T) {
	s := NewSession(fwdProg, WithCheckpointEvery(5))
	mp := ndlog.MustParsePrefix
	s.Insert("s1", ndlog.NewTuple("flowEntry", ndlog.Int(1), mp("0.0.0.0/0"), ndlog.Str("h")), 0)
	s.Run()
	s.Insert("s1", ndlog.NewTuple("flowEntry", ndlog.Int(2), mp("10.0.0.0/8"), ndlog.Str("h2")), 7)
	s.Run()
	s.Insert("s1", ndlog.NewTuple("flowEntry", ndlog.Int(3), mp("10.0.0.0/8"), ndlog.Str("h3")), 20)
	s.Run()
	cks := s.Checkpoints()
	if len(cks) < 2 {
		t.Fatalf("checkpoints = %d, want >= 2", len(cks))
	}
	snap, ok := s.StateAt(8)
	if !ok {
		t.Fatal("no checkpoint at or before tick 8")
	}
	if !snap.Lookup("s1", ndlog.NewTuple("flowEntry", ndlog.Int(2), mp("10.0.0.0/8"), ndlog.Str("h2"))) {
		t.Error("checkpoint at tick >= 7 should contain the second entry")
	}
	if _, ok := s.StateAt(-1); ok {
		t.Error("no checkpoint should precede tick -1")
	}
	if snap.NumTuples() == 0 {
		t.Error("snapshot should contain tuples")
	}
}

func TestSessionInsertErrors(t *testing.T) {
	s := NewSession(fwdProg)
	if err := s.Insert("n", ndlog.NewTuple("nosuch", ndlog.Int(1)), 0); err == nil {
		t.Error("bad insert must fail and not be logged")
	}
	if s.Log().Len() != 0 {
		t.Error("failed insert must not be logged")
	}
	if err := s.Delete("n", ndlog.NewTuple("nosuch", ndlog.Int(1)), 0); err == nil {
		t.Error("bad delete must fail")
	}
}

func TestLogClone(t *testing.T) {
	l := NewLog()
	l.Insert("n", ndlog.NewTuple("packet", ndlog.IP(1)), 0)
	c := l.Clone()
	c.Insert("n", ndlog.NewTuple("packet", ndlog.IP(2)), 1)
	if l.Len() != 1 || c.Len() != 2 {
		t.Error("clone must not share growth")
	}
}

func TestReplayAccountsTime(t *testing.T) {
	s := NewSession(fwdProg)
	driveScenario(t, s)
	if _, _, err := s.Replay(); err != nil {
		t.Fatal(err)
	}
	if s.ReplayCount != 1 {
		t.Errorf("ReplayCount = %d, want 1", s.ReplayCount)
	}
	if s.ReplayTime <= 0 {
		t.Error("ReplayTime should be positive")
	}
}

var _ = provenance.NewGraph // ensure import is used even if assertions change

func TestFromLogRoundTrip(t *testing.T) {
	orig := NewSession(fwdProg)
	driveScenario(t, orig)

	// Serialize the log, decode it, rebuild a session, and compare.
	var buf bytes.Buffer
	if err := orig.Log().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := FromLog(fwdProg, decoded)
	if err != nil {
		t.Fatal(err)
	}
	_, g1, err := orig.Graph()
	if err != nil {
		t.Fatal(err)
	}
	_, g2, err := rebuilt.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumVertexes() != g2.NumVertexes() {
		t.Fatalf("graphs differ after log round trip: %d vs %d", g1.NumVertexes(), g2.NumVertexes())
	}
	for i := 0; i < g1.NumVertexes(); i++ {
		if g1.Vertex(i).Label() != g2.Vertex(i).Label() {
			t.Fatalf("vertex %d differs after round trip", i)
		}
	}
}

func TestFromLogRejectsBadEvents(t *testing.T) {
	l := NewLog()
	l.Insert("n", ndlog.NewTuple("nosuch", ndlog.Int(1)), 0)
	if _, err := FromLog(fwdProg, l); err == nil {
		t.Error("a log with undeclared tables must be rejected")
	}
}

func TestAgeOut(t *testing.T) {
	l := NewLog()
	for i := int64(0); i < 100; i++ {
		l.Insert("n", ndlog.NewTuple("packet", ndlog.IP(uint32(i))), i)
	}
	aged := l.AgeOut(60)
	if aged.Len() != 40 {
		t.Fatalf("aged log has %d events, want 40", aged.Len())
	}
	for _, ev := range aged.Events() {
		if ev.Tick < 60 {
			t.Fatal("aged log retains old events")
		}
	}
	if l.Len() != 100 {
		t.Error("AgeOut must not mutate the original")
	}
	if aged.EncodedSize() >= l.EncodedSize() {
		t.Error("aging out must reclaim storage")
	}
}

func TestCheckpointsConsistentWithHistory(t *testing.T) {
	// Property: every tuple in a checkpoint existed at the checkpoint's
	// tick according to the replayed temporal store, and vice versa.
	s := NewSession(fwdProg, WithCheckpointEvery(3))
	mp := ndlog.MustParsePrefix
	for i := int64(0); i < 30; i++ {
		fe := ndlog.NewTuple("flowEntry", ndlog.Int(i%7), mp("0.0.0.0/0"), ndlog.Str(string(rune('a'+i%3))))
		if i%4 == 3 {
			if err := s.Delete("s1", fe, i); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := s.Insert("s1", fe, i); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
	}
	e, _, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	cks := s.Checkpoints()
	if len(cks) < 3 {
		t.Fatalf("checkpoints = %d, want several", len(cks))
	}
	for _, ck := range cks {
		at := ndlog.Stamp{T: ck.Tick, Seq: ^uint64(0)}
		for node, tables := range ck.State {
			for _, rows := range tables {
				for _, row := range rows {
					if !e.Exists(node, row, at) {
						t.Fatalf("checkpoint@%d contains %s on %s but history disagrees", ck.Tick, row, node)
					}
				}
			}
		}
		// Reverse direction: everything live at the checkpoint tick is
		// in the snapshot.
		for _, tu := range e.TuplesAt("s1", "flowEntry", at) {
			if !ck.Lookup("s1", tu) {
				t.Fatalf("history has %s at t=%d but checkpoint misses it", tu, ck.Tick)
			}
		}
	}
}

func TestSessionAccessorsAndEngineOptions(t *testing.T) {
	s := NewSession(fwdProg, WithEngineOptions(ndlog.WithDelay(3)), WithMode(Runtime))
	if s.Program() != fwdProg {
		t.Error("Program accessor broken")
	}
	if s.Mode() != Runtime {
		t.Error("Mode accessor broken")
	}
	// The engine option must reach the live engine: a packet takes 3
	// ticks per hop.
	mp := ndlog.MustParsePrefix
	if err := s.Insert("s1", ndlog.NewTuple("flowEntry", ndlog.Int(1), mp("0.0.0.0/0"), ndlog.Str("h")), 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert("s1", ndlog.NewTuple("packet", ndlog.IP(1)), 10); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	hist := s.Live().History("h", ndlog.NewTuple("packet", ndlog.IP(1)))
	if len(hist) != 1 || hist[0].From.T != 13 {
		t.Errorf("arrival = %v, want tick 13 (delay option propagated)", hist)
	}
	// Replays inherit the option too.
	e, _, err := s.Replay()
	if err != nil {
		t.Fatal(err)
	}
	rh := e.History("h", ndlog.NewTuple("packet", ndlog.IP(1)))
	if len(rh) != 1 || rh[0].From.T != 13 {
		t.Errorf("replayed arrival = %v, want tick 13", rh)
	}
}

func TestSessionClone(t *testing.T) {
	s := NewSession(fwdProg)
	driveScenario(t, s)
	if _, _, err := s.Graph(); err != nil { // memoize the full replay
		t.Fatal(err)
	}
	parentReplays := s.ReplayCount

	cl := s.Clone()
	if cl.ReplayCount != 0 || cl.ReplayTime != 0 {
		t.Errorf("clone stats = (%d, %v), want zeroed", cl.ReplayCount, cl.ReplayTime)
	}
	// The memoized replay is shared: Graph() on the clone must not
	// trigger a fresh replay.
	if _, _, err := cl.Graph(); err != nil {
		t.Fatal(err)
	}
	if cl.ReplayCount != 0 {
		t.Errorf("clone.Graph() replayed %d times, want memo hit", cl.ReplayCount)
	}

	// A counterfactual replay on the clone accounts only on the clone.
	ch := Change{Insert: true, Node: "s1",
		Tuple: ndlog.NewTuple("flowEntry", ndlog.Int(20), ndlog.MustParsePrefix("4.3.3.0/24"), ndlog.Str("s6")),
		Tick:  5}
	e, _, err := cl.ReplayWith([]Change{ch})
	if err != nil {
		t.Fatal(err)
	}
	if !e.ExistsEver("web1", ndlog.NewTuple("packet", ndlog.MustParseIP("4.3.3.1"))) {
		t.Error("counterfactual change had no effect in clone replay")
	}
	if cl.ReplayCount != 1 {
		t.Errorf("clone.ReplayCount = %d, want 1", cl.ReplayCount)
	}
	if s.ReplayCount != parentReplays {
		t.Errorf("parent.ReplayCount = %d, want unchanged %d", s.ReplayCount, parentReplays)
	}
	if cl.Log().Len() != s.Log().Len() {
		t.Errorf("clone log length %d, want %d (logs must match)", cl.Log().Len(), s.Log().Len())
	}

	// ResetStats gives per-request deltas.
	cl.ResetStats()
	if cl.ReplayCount != 0 || cl.ReplayTime != 0 {
		t.Error("ResetStats did not zero the counters")
	}
}

func TestSessionCloneConcurrent(t *testing.T) {
	s := NewSession(fwdProg)
	driveScenario(t, s)
	if _, _, err := s.Graph(); err != nil {
		t.Fatal(err)
	}
	ch := Change{Insert: true, Node: "s1",
		Tuple: ndlog.NewTuple("flowEntry", ndlog.Int(20), ndlog.MustParsePrefix("4.3.3.0/24"), ndlog.Str("s6")),
		Tick:  5}
	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl := s.Clone()
			e, _, err := cl.ReplayWith([]Change{ch})
			if err != nil {
				errs[i] = err
				return
			}
			if !e.ExistsEver("web1", ndlog.NewTuple("packet", ndlog.MustParseIP("4.3.3.1"))) {
				errs[i] = fmt.Errorf("replay %d: change not applied", i)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
	if s.ReplayCount != 1 {
		t.Errorf("parent.ReplayCount = %d, want 1 (clones account privately)", s.ReplayCount)
	}
}

func TestReplayWithContextCancelled(t *testing.T) {
	s := NewSession(fwdProg)
	driveScenario(t, s)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := s.ReplayWithContext(ctx, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled replay error = %v, want context.Canceled", err)
	}
}

func TestReplayIndexingOffMatchesDefault(t *testing.T) {
	sDef := NewSession(fwdProg)
	sOff := NewSession(fwdProg, WithEngineOptions(ndlog.WithIndexing(false)))
	driveScenario(t, sDef)
	driveScenario(t, sOff)

	eDef, gDef, err := sDef.Graph()
	if err != nil {
		t.Fatal(err)
	}
	eOff, gOff, err := sOff.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if gDef.NumVertexes() != gOff.NumVertexes() {
		t.Fatalf("graphs differ: %d vs %d vertexes", gDef.NumVertexes(), gOff.NumVertexes())
	}
	for i := 0; i < gDef.NumVertexes(); i++ {
		vd, vo := gDef.Vertex(i), gOff.Vertex(i)
		if vd.Label() != vo.Label() || vd.At != vo.At {
			t.Fatalf("vertex %d differs: %s vs %s", i, vd, vo)
		}
	}
	snapDef, snapOff := eDef.CaptureState(), eOff.CaptureState()
	if snapDef.NumTuples() != snapOff.NumTuples() {
		t.Fatalf("states differ: %d vs %d tuples", snapDef.NumTuples(), snapOff.NumTuples())
	}
	// The fwd rule's flowEntry atom binds no columns from the packet
	// delta (Prio, M, Nxt are all free), so even the indexed engine
	// falls back to scans here — and the off engine must never probe.
	if st := eOff.Stats(); st.IndexProbes != 0 {
		t.Errorf("indexing-off replay probed an index: %+v", st)
	}
}
