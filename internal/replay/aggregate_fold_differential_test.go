package replay_test

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/provenance"
	"repro/internal/replay"
	"repro/internal/scenarios"
)

// foldSerializeGraph dumps the graph through the folded view
// (Graph.ChildrenOf), with fingerprints: this is exactly what Tree,
// treediff, and the alignment see, so byte-equality here means every
// downstream consumer behaves identically. The recorded trigger slot is
// representation-specific for aggregate deltas (slot 0 lazily, the last
// slot eagerly), so it is normalized to the newest folded contributor —
// the meaning both representations share.
func foldSerializeGraph(g *provenance.Graph) string {
	var sb strings.Builder
	g.Vertexes(func(v *provenance.Vertex) {
		kids := g.ChildrenOf(v.ID)
		trig := v.Trigger
		if _, _, ok := g.AggDelta(v.ID); ok {
			trig = len(kids) - 1
		}
		fmt.Fprintf(&sb, "%d %s trig=%d fp=%016x kids=%v\n", v.ID, v.String(), trig, v.Fingerprint(), kids)
	})
	return sb.String()
}

// TestAggregateFoldDifferential replays every Table 1 scenario's bad
// execution twice — once recording aggregate provenance as delta chains
// folded lazily (the default), once materializing full contributor lists
// eagerly (the pre-delta reference behavior) — and requires byte-equal
// results everywhere it matters: the folded provenance graph (with
// fingerprints, which must commute with folding), the bad tree, the
// final engine state, and the diagnosis at default parallelism and at
// Parallelism=8. It also asserts the engine never missed an aggregate
// retraction (Stats.AggRetractMisses stays 0).
func TestAggregateFoldDifferential(t *testing.T) {
	for _, name := range scenarios.Names() {
		t.Run(name, func(t *testing.T) {
			s, err := scenarios.Build(name, scenarios.Small)
			if err != nil {
				t.Fatal(err)
			}
			if s.BadSession == nil {
				t.Skipf("%s is imperative (no replay session)", name)
			}
			prog := s.BadSession.Program()
			log := s.BadSession.Log()

			type run struct {
				graph    string
				tree     string
				state    string
				diagnose string
				rounds   int
			}
			runs := map[bool]run{}
			for _, eager := range []bool{false, true} {
				sess, err := replay.FromLog(prog, log, replay.WithEagerAggregates(eager))
				if err != nil {
					t.Fatal(err)
				}
				eng, g, err := sess.Graph()
				if err != nil {
					t.Fatal(err)
				}
				if got := eng.Stats().AggRetractMisses; got != 0 {
					t.Errorf("AggRetractMisses = %d after replay (eager=%v), want 0", got, eager)
				}
				badTree := g.Tree(s.Bad.Vertex.ID)
				if badTree == nil {
					t.Fatalf("bad vertex %d missing from replayed graph", s.Bad.Vertex.ID)
				}
				world, err := core.NewWorld(sess)
				if err != nil {
					t.Fatal(err)
				}
				var parts []string
				rounds := 0
				for _, par := range []int{0, 8} {
					res, err := core.Diagnose(context.Background(), s.Good, badTree, world, core.Options{Parallelism: par})
					if err != nil {
						t.Fatalf("diagnose (eager=%v, parallelism=%d): %v", eager, par, err)
					}
					if s.Check != nil {
						if err := s.Check(res); err != nil {
							t.Fatalf("check (eager=%v, parallelism=%d): %v", eager, par, err)
						}
					}
					parts = append(parts, fmt.Sprintf("parallelism=%d", par))
					for _, c := range res.Changes {
						parts = append(parts, c.String())
					}
					rounds += res.Iterations
				}
				runs[eager] = run{
					graph:    foldSerializeGraph(g),
					tree:     badTree.String(),
					state:    forkSerializeSnapshot(eng.CaptureState()),
					diagnose: strings.Join(parts, "\n"),
					rounds:   rounds,
				}
			}
			lazy, eager := runs[false], runs[true]
			if lazy.graph != eager.graph {
				t.Errorf("folded graphs differ:\nlazy (%d bytes):\n%.2000s\neager (%d bytes):\n%.2000s",
					len(lazy.graph), lazy.graph, len(eager.graph), eager.graph)
			}
			if lazy.tree != eager.tree {
				t.Errorf("bad trees differ:\nlazy:\n%.2000s\neager:\n%.2000s", lazy.tree, eager.tree)
			}
			if lazy.state != eager.state {
				t.Errorf("final states differ:\nlazy:\n%s\neager:\n%s", lazy.state, eager.state)
			}
			if lazy.diagnose != eager.diagnose {
				t.Errorf("diagnoses differ:\nlazy:\n%s\neager:\n%s", lazy.diagnose, eager.diagnose)
			}
			if lazy.rounds != eager.rounds {
				t.Errorf("iteration counts differ: lazy=%d eager=%d", lazy.rounds, eager.rounds)
			}
		})
	}
}
