package replay

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/ndlog"
	"repro/internal/provenance"
)

// graphString renders every vertex of a graph (ID, full string with
// stamps, trigger, children) so two graphs compare byte-identical exactly
// when the executions behind them were identical.
func graphString(g *provenance.Graph) string {
	var sb strings.Builder
	g.Vertexes(func(v *provenance.Vertex) {
		fmt.Fprintf(&sb, "%d %s trig=%d kids=%v\n", v.ID, v.String(), v.Trigger, v.Children)
	})
	return sb.String()
}

func mustReplayWith(t *testing.T, s *Session, ch []Change) (*ndlog.Engine, *provenance.Graph) {
	t.Helper()
	e, g, err := s.ReplayWith(ch)
	if err != nil {
		t.Fatal(err)
	}
	return e, g
}

// TestIncrementalReplayMatchesScratch pins the core guarantee of
// checkpoint-anchored roll-forward: a replay that forks a cached prefix
// is byte-identical — same provenance graph including every stamp, same
// engine state — to the from-scratch replay, and actually engages the
// prefix cache.
func TestIncrementalReplayMatchesScratch(t *testing.T) {
	rec := NewSession(fwdProg)
	driveScenario(t, rec)
	changes := []Change{
		{Insert: true, Node: "s1", Tuple: ndlog.NewTuple("packet", ndlog.MustParseIP("4.3.2.7")), Tick: 11},
		{Node: "s1", Tuple: ndlog.NewTuple("flowEntry", ndlog.Int(10), ndlog.MustParsePrefix("4.3.2.0/24"), ndlog.Str("s6")), Tick: 12},
	}

	inc, err := FromLog(fwdProg, rec.Log(), WithCheckpointEvery(5))
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := FromLog(fwdProg, rec.Log(), WithIncrementalReplay(false))
	if err != nil {
		t.Fatal(err)
	}

	eS, gS := mustReplayWith(t, scratch, changes)
	for round := 0; round < 3; round++ {
		eI, gI := mustReplayWith(t, inc, changes)
		if got, want := graphString(gI), graphString(gS); got != want {
			t.Fatalf("round %d: incremental graph differs from scratch:\nincremental:\n%s\nscratch:\n%s", round, got, want)
		}
		if !reflect.DeepEqual(eI.CaptureState(), eS.CaptureState()) {
			t.Fatalf("round %d: incremental state differs from scratch", round)
		}
	}
	if inc.Stats.PrefixMisses != 1 {
		t.Errorf("incremental session: PrefixMisses = %d, want 1 (first replay builds the prefix)", inc.Stats.PrefixMisses)
	}
	if inc.Stats.PrefixHits != 2 {
		t.Errorf("incremental session: PrefixHits = %d, want 2 (later replays fork the cached prefix)", inc.Stats.PrefixHits)
	}
	if inc.Stats.EventsSkipped == 0 {
		t.Error("incremental session skipped no events")
	}
	if inc.Stats.ForkNanos <= 0 {
		t.Error("ForkNanos not accounted")
	}
	// Counterfactual-phase counters accrue in every mode (scratch replays
	// route changes through the same delta phase); only prefix-cache
	// stats must stay zero on the scratch session.
	scratchStats := scratch.Stats
	scratchStats.EventsReFired, scratchStats.DirtyTables = 0, 0
	if scratchStats != (ReplayStats{}) {
		t.Errorf("scratch session accumulated incremental stats: %+v", scratchStats)
	}
}

// TestReplayUntilIncrementalMatchesScratch pins ReplayUntil to the same
// guarantee: the truncated replay forks a prefix and still produces the
// identical graph and state.
func TestReplayUntilIncrementalMatchesScratch(t *testing.T) {
	rec := NewSession(fwdProg)
	driveScenario(t, rec)
	for _, horizon := range []int64{0, 5, 10, 11, 50} {
		inc, err := FromLog(fwdProg, rec.Log(), WithCheckpointEvery(4))
		if err != nil {
			t.Fatal(err)
		}
		scratch, err := FromLog(fwdProg, rec.Log(), WithIncrementalReplay(false))
		if err != nil {
			t.Fatal(err)
		}
		eI, gI, err := inc.ReplayUntil(horizon)
		if err != nil {
			t.Fatal(err)
		}
		eS, gS, err := scratch.ReplayUntil(horizon)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := graphString(gI), graphString(gS); got != want {
			t.Fatalf("horizon %d: graphs differ:\nincremental:\n%s\nscratch:\n%s", horizon, got, want)
		}
		if !reflect.DeepEqual(eI.CaptureStateAt(horizon), eS.CaptureStateAt(horizon)) {
			t.Fatalf("horizon %d: states differ", horizon)
		}
	}
}

// TestReplayUntilContextCancelled: a cancelled context aborts the
// truncated replay (ReplayUntil used to ignore cancellation entirely).
func TestReplayUntilContextCancelled(t *testing.T) {
	s := NewSession(fwdProg)
	driveScenario(t, s)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := s.ReplayUntilContext(ctx, 10); !errors.Is(err, context.Canceled) {
		t.Fatalf("ReplayUntilContext with cancelled context: err = %v, want context.Canceled", err)
	}
}

// TestPrefixCacheInvalidatedWhenLogGrows: replays after the live
// execution (and hence the log) advanced must not reuse prefixes built
// from the shorter log.
func TestPrefixCacheInvalidatedWhenLogGrows(t *testing.T) {
	s := NewSession(fwdProg)
	driveScenario(t, s)
	change := []Change{{Insert: true, Node: "s1", Tuple: ndlog.NewTuple("packet", ndlog.MustParseIP("4.3.2.9")), Tick: 11}}
	mustReplayWith(t, s, change) // populates the cache
	mustReplayWith(t, s, change)
	if s.Stats.PrefixHits == 0 {
		t.Fatal("expected a prefix hit before the log grew")
	}

	// Grow the execution: a new packet the earlier prefixes know nothing
	// about.
	late := ndlog.NewTuple("packet", ndlog.MustParseIP("4.3.2.200"))
	if err := s.Insert("s1", late, 20); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}

	eI, gI := mustReplayWith(t, s, []Change{{Insert: true, Node: "s1", Tuple: ndlog.NewTuple("packet", ndlog.MustParseIP("4.3.2.10")), Tick: 21}})
	if !eI.ExistsEver("s6", late) {
		t.Error("replay after log growth lost the late packet (stale prefix reused?)")
	}
	scratch, err := FromLog(fwdProg, s.Log(), WithIncrementalReplay(false))
	if err != nil {
		t.Fatal(err)
	}
	_, gS, err := scratch.ReplayWith([]Change{{Insert: true, Node: "s1", Tuple: ndlog.NewTuple("packet", ndlog.MustParseIP("4.3.2.10")), Tick: 21}})
	if err != nil {
		t.Fatal(err)
	}
	if graphString(gI) != graphString(gS) {
		t.Error("post-growth incremental replay differs from scratch")
	}
}

// TestCheckpointPerIntervalCrossed: a single Run spanning many checkpoint
// intervals captures one checkpoint per interval crossed, not one per
// call (the old behavior).
func TestCheckpointPerIntervalCrossed(t *testing.T) {
	s := NewSession(fwdProg, WithCheckpointEvery(4))
	for tick := int64(0); tick < 20; tick++ {
		tu := ndlog.NewTuple("flowEntry", ndlog.Int(tick), ndlog.MustParsePrefix("0.0.0.0/0"), ndlog.Str("x"))
		if err := s.Insert("s1", tu, tick); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(); err != nil { // one call, ~5 intervals
		t.Fatal(err)
	}
	cks := s.Checkpoints()
	if len(cks) < 4 {
		t.Fatalf("one Run over 20 ticks at interval 4 captured %d checkpoints, want one per interval (>= 4)", len(cks))
	}
	for i := 1; i < len(cks); i++ {
		if cks[i].Tick <= cks[i-1].Tick {
			t.Fatalf("checkpoints out of order: %d then %d", cks[i-1].Tick, cks[i].Tick)
		}
		if cks[i].Tick-cks[i-1].Tick < 4 {
			t.Fatalf("checkpoints %d and %d closer than the interval", cks[i-1].Tick, cks[i].Tick)
		}
	}
}

// TestFromLogCheckpointsIdentical: a session rebuilt from the log with a
// single Run reproduces the exact checkpoint set of the live session that
// recorded it, regardless of how the live drive batched its Run calls.
func TestFromLogCheckpointsIdentical(t *testing.T) {
	live := NewSession(fwdProg, WithCheckpointEvery(3))
	mp := ndlog.MustParsePrefix
	// Irregular batching: some Run calls cover one tick, one covers many.
	batches := [][]int64{{0, 1}, {2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, {15}, {22, 23}}
	for _, batch := range batches {
		for _, tick := range batch {
			tu := ndlog.NewTuple("flowEntry", ndlog.Int(tick), mp("0.0.0.0/0"), ndlog.Str("x"))
			if err := live.Insert("s1", tu, tick); err != nil {
				t.Fatal(err)
			}
		}
		if err := live.Run(); err != nil {
			t.Fatal(err)
		}
	}
	rebuilt, err := FromLog(fwdProg, live.Log(), WithCheckpointEvery(3))
	if err != nil {
		t.Fatal(err)
	}
	a, b := live.Checkpoints(), rebuilt.Checkpoints()
	if len(a) == 0 {
		t.Fatal("live session captured no checkpoints")
	}
	if !reflect.DeepEqual(a, b) {
		ticks := func(cks []ndlog.Snapshot) []int64 {
			var out []int64
			for _, c := range cks {
				out = append(out, c.Tick)
			}
			return out
		}
		t.Fatalf("rebuilt checkpoints differ from live: live ticks %v, rebuilt %v", ticks(a), ticks(b))
	}
}

// TestCheckpointsReturnsCopy: mutating the returned slice must not
// perturb the session.
func TestCheckpointsReturnsCopy(t *testing.T) {
	s := NewSession(fwdProg, WithCheckpointEvery(5))
	driveScenario(t, s)
	cks := s.Checkpoints()
	if len(cks) == 0 {
		t.Fatal("no checkpoints")
	}
	want := cks[0].Tick
	cks[0] = ndlog.Snapshot{Tick: -999}
	if got := s.Checkpoints()[0].Tick; got != want {
		t.Fatalf("Checkpoints exposed internal state: first tick became %d, want %d", got, want)
	}
}

// TestStateAtBinarySearch probes the boundaries of the checkpoint search.
func TestStateAtBinarySearch(t *testing.T) {
	s := NewSession(fwdProg, WithCheckpointEvery(3))
	for tick := int64(0); tick < 12; tick++ {
		tu := ndlog.NewTuple("flowEntry", ndlog.Int(tick), ndlog.MustParsePrefix("0.0.0.0/0"), ndlog.Str("x"))
		if err := s.Insert("s1", tu, tick); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	cks := s.Checkpoints()
	if len(cks) < 2 {
		t.Fatalf("want >= 2 checkpoints, got %d", len(cks))
	}
	if _, ok := s.StateAt(cks[0].Tick - 1); ok {
		t.Error("StateAt before the first checkpoint must report none")
	}
	for _, ck := range cks {
		got, ok := s.StateAt(ck.Tick)
		if !ok || got.Tick != ck.Tick {
			t.Fatalf("StateAt(%d) = (tick %d, %v), want the exact checkpoint", ck.Tick, got.Tick, ok)
		}
	}
	last := cks[len(cks)-1]
	if got, ok := s.StateAt(last.Tick + 1000); !ok || got.Tick != last.Tick {
		t.Fatalf("StateAt far past the end = (tick %d, %v), want last checkpoint %d", got.Tick, ok, last.Tick)
	}
}

// TestConcurrentClonesShareAndIsolatePrefixCache exercises the prefix
// cache under -race: clones of one session replay concurrently through
// the shared cache (hits and misses interleaving with builds), while
// sessions rebuilt from the same log replay through private caches. All
// replays must agree with a from-scratch baseline.
func TestConcurrentClonesShareAndIsolatePrefixCache(t *testing.T) {
	rec := NewSession(fwdProg)
	driveScenario(t, rec)
	parent, err := FromLog(fwdProg, rec.Log(), WithCheckpointEvery(5))
	if err != nil {
		t.Fatal(err)
	}
	changeAt := func(tick int64) []Change {
		return []Change{{Insert: true, Node: "s1", Tuple: ndlog.NewTuple("packet", ndlog.MustParseIP("4.3.2.77")), Tick: tick}}
	}
	baseline := map[int64]string{}
	for _, tick := range []int64{11, 12, 13} {
		sc, err := FromLog(fwdProg, rec.Log(), WithIncrementalReplay(false))
		if err != nil {
			t.Fatal(err)
		}
		_, g, err := sc.ReplayWith(changeAt(tick))
		if err != nil {
			t.Fatal(err)
		}
		baseline[tick] = graphString(g)
	}

	const workers = 12
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var sess *Session
			if w%3 == 0 {
				// Private cache: an independent session over the same log.
				var err error
				sess, err = FromLog(fwdProg, rec.Log(), WithCheckpointEvery(5))
				if err != nil {
					errs <- err
					return
				}
			} else {
				// Shared cache: a clone of the parent.
				sess = parent.Clone()
			}
			for i := 0; i < 4; i++ {
				tick := int64(11 + (w+i)%3)
				_, g, err := sess.ReplayWith(changeAt(tick))
				if err != nil {
					errs <- err
					return
				}
				if got := graphString(g); got != baseline[tick] {
					errs <- fmt.Errorf("worker %d: replay at tick %d differs from scratch baseline", w, tick)
					return
				}
				if _, _, err := sess.ReplayUntil(10); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if parent.Stats != (ReplayStats{}) {
		t.Errorf("parent session accumulated clone stats: %+v", parent.Stats)
	}
}
