package replay_test

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ndlog"
	"repro/internal/provenance"
	"repro/internal/replay"
	"repro/internal/scenarios"
)

func forkSerializeGraph(g *provenance.Graph) string {
	var sb strings.Builder
	g.Vertexes(func(v *provenance.Vertex) {
		fmt.Fprintf(&sb, "%d %s trig=%d kids=%v\n", v.ID, v.String(), v.Trigger, v.Children)
	})
	return sb.String()
}

func forkSerializeSnapshot(s ndlog.Snapshot) string {
	var sb strings.Builder
	nodes := make([]string, 0, len(s.State))
	for n := range s.State {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	fmt.Fprintf(&sb, "tick=%d\n", s.Tick)
	for _, n := range nodes {
		tables := make([]string, 0, len(s.State[n]))
		for tn := range s.State[n] {
			tables = append(tables, tn)
		}
		sort.Strings(tables)
		for _, tn := range tables {
			for _, tp := range s.State[n][tn] {
				fmt.Fprintf(&sb, "%s %s\n", n, tp)
			}
		}
	}
	return sb.String()
}

// TestForkDifferential replays every Table 1 scenario's captured bad
// execution twice — checkpoint-anchored incremental roll-forward on and
// off — and requires the two runs to be byte-identical: the same
// provenance graph (same derivations, same order, same vertex IDs and
// stamps), the same final state, and the same diagnosis with the same
// number of rounds. This is the determinism guarantee of the fork layer:
// forking a half-evaluated prefix engine and rolling the suffix forward
// produces exactly the execution a from-scratch replay would.
func TestForkDifferential(t *testing.T) {
	for _, name := range scenarios.Names() {
		t.Run(name, func(t *testing.T) {
			s, err := scenarios.Build(name, scenarios.Small)
			if err != nil {
				t.Fatal(err)
			}
			if s.BadSession == nil {
				t.Skipf("%s is imperative (no replay session)", name)
			}
			prog := s.BadSession.Program()
			log := s.BadSession.Log()

			// A late counterfactual change exercised directly through
			// ReplayWith, in addition to the full diagnosis below.
			events := log.Events()
			last := events[len(events)-1]
			directChange := []replay.Change{{Insert: true, Node: last.Node, Tuple: last.Tuple, Tick: last.Tick + 1}}

			type run struct {
				graph    string
				state    string
				direct   string
				diagnose string
				rounds   int
			}
			runs := map[bool]run{}
			for _, incremental := range []bool{true, false} {
				sess, err := replay.FromLog(prog, log,
					replay.WithIncrementalReplay(incremental),
					replay.WithCheckpointEvery(4))
				if err != nil {
					t.Fatal(err)
				}
				de, dg, err := sess.ReplayWith(directChange)
				if err != nil {
					t.Fatal(err)
				}
				direct := forkSerializeGraph(dg) + forkSerializeSnapshot(de.CaptureState())

				eng, g, err := sess.Graph()
				if err != nil {
					t.Fatal(err)
				}
				if got := eng.Stats().AggRetractMisses; got != 0 {
					t.Errorf("AggRetractMisses = %d (incremental=%v), want 0", got, incremental)
				}
				badTree := g.Tree(s.Bad.Vertex.ID)
				if badTree == nil {
					t.Fatalf("bad vertex %d missing from replayed graph", s.Bad.Vertex.ID)
				}
				world, err := core.NewWorld(sess)
				if err != nil {
					t.Fatal(err)
				}
				res, err := core.Diagnose(context.Background(), s.Good, badTree, world, core.Options{})
				if err != nil {
					t.Fatalf("diagnose (incremental=%v): %v", incremental, err)
				}
				if s.Check != nil {
					if err := s.Check(res); err != nil {
						t.Fatalf("check (incremental=%v): %v", incremental, err)
					}
				}
				if incremental {
					if sess.Stats.PrefixHits+sess.Stats.PrefixMisses == 0 {
						t.Error("incremental session never touched the prefix cache")
					}
				} else {
					// Counterfactual-phase counters accrue in every mode
					// (scratch replays route changes through the same delta
					// phase); only prefix-cache stats must stay zero.
					stats := sess.Stats
					stats.EventsReFired, stats.DirtyTables = 0, 0
					if stats != (replay.ReplayStats{}) {
						t.Errorf("scratch session accumulated incremental stats: %+v", stats)
					}
				}
				var ch []string
				for _, c := range res.Changes {
					ch = append(ch, c.String())
				}
				runs[incremental] = run{
					graph:    forkSerializeGraph(g),
					state:    forkSerializeSnapshot(eng.CaptureState()),
					direct:   direct,
					diagnose: strings.Join(ch, "\n"),
					rounds:   res.Iterations,
				}
			}
			on, off := runs[true], runs[false]
			if on.direct != off.direct {
				t.Errorf("direct ReplayWith differs between incremental on and off:\non (%d bytes):\n%.2000s\noff (%d bytes):\n%.2000s",
					len(on.direct), on.direct, len(off.direct), off.direct)
			}
			if on.graph != off.graph {
				t.Errorf("provenance graphs differ:\non (%d bytes):\n%.2000s\noff (%d bytes):\n%.2000s",
					len(on.graph), on.graph, len(off.graph), off.graph)
			}
			if on.state != off.state {
				t.Errorf("final states differ:\non:\n%s\noff:\n%s", on.state, off.state)
			}
			if on.diagnose != off.diagnose {
				t.Errorf("diagnoses differ:\non:\n%s\noff:\n%s", on.diagnose, off.diagnose)
			}
			if on.rounds != off.rounds {
				t.Errorf("iteration counts differ: on=%d off=%d", on.rounds, off.rounds)
			}
		})
	}
}
