package replay

import (
	"bytes"
	"testing"

	"repro/internal/ndlog"
)

func tupleSeed() ndlog.Tuple {
	return ndlog.NewTuple("packet", ndlog.MustParseIP("1.2.3.4"), ndlog.Int(-5),
		ndlog.Str("x"), ndlog.Bool(true), ndlog.MustParsePrefix("10.0.0.0/8"), ndlog.ID(9))
}

// FuzzDecode: the log decoder must never panic on arbitrary bytes, and a
// successfully decoded log must re-encode and re-decode identically.
func FuzzDecode(f *testing.F) {
	// Seed with a real encoded log.
	l := NewLog()
	l.Insert("s1", tupleSeed(), 7)
	var buf bytes.Buffer
	if err := l.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := dec.Encode(&out); err != nil {
			t.Fatalf("re-encode of decoded log failed: %v", err)
		}
		dec2, err := Decode(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if dec2.Len() != dec.Len() {
			t.Fatalf("lengths differ after round trip: %d vs %d", dec2.Len(), dec.Len())
		}
		for i := range dec.Events() {
			a, b := dec.Events()[i], dec2.Events()[i]
			if a.Kind != b.Kind || a.Node != b.Node || a.Tick != b.Tick || !a.Tuple.Equal(b.Tuple) {
				t.Fatalf("event %d differs after round trip", i)
			}
		}
	})
}
