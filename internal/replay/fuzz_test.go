package replay

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ndlog"
	"repro/internal/store"
)

func tupleSeed() ndlog.Tuple {
	return ndlog.NewTuple("packet", ndlog.MustParseIP("1.2.3.4"), ndlog.Int(-5),
		ndlog.Str("x"), ndlog.Bool(true), ndlog.MustParsePrefix("10.0.0.0/8"), ndlog.ID(9))
}

// FuzzDecode: the log decoder must never panic on arbitrary bytes, and a
// successfully decoded log must re-encode and re-decode identically.
func FuzzDecode(f *testing.F) {
	// Seed with a real encoded log.
	l := NewLog()
	l.Insert("s1", tupleSeed(), 7)
	var buf bytes.Buffer
	if err := l.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := dec.Encode(&out); err != nil {
			t.Fatalf("re-encode of decoded log failed: %v", err)
		}
		dec2, err := Decode(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if dec2.Len() != dec.Len() {
			t.Fatalf("lengths differ after round trip: %d vs %d", dec2.Len(), dec.Len())
		}
		evs, evs2 := dec.Events(), dec2.Events()
		for i := range evs {
			a, b := evs[i], evs2[i]
			if a.Kind != b.Kind || a.Node != b.Node || a.Tick != b.Tick || !a.Tuple.Equal(b.Tuple) {
				t.Fatalf("event %d differs after round trip", i)
			}
		}
	})
}

// FuzzSegmentRecovery: store.Open must never panic on an arbitrary
// segment file — corrupt headers, bad record CRCs, and torn tails must
// either be rejected or recovered by truncation. When Open succeeds, the
// surviving events must stream cleanly and the store must accept further
// appends that survive a reopen.
func FuzzSegmentRecovery(f *testing.F) {
	// Seed with a real segment file, and with that file truncated and
	// corrupted in representative ways.
	seedDir := f.TempDir()
	st, err := store.Open(seedDir, store.WithSegmentEvents(4))
	if err != nil {
		f.Fatal(err)
	}
	for i := int64(0); i < 6; i++ {
		ev := Event{Kind: EvInsert, Node: "s1", Tuple: tupleSeed(), Tick: i}
		if i%3 == 2 {
			ev.Kind = EvDelete
		}
		if err := st.Append(ev); err != nil {
			f.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		f.Fatal(err)
	}
	seg, err := os.ReadFile(filepath.Join(seedDir, "seg-00000000.log"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seg)
	f.Add(seg[:len(seg)-3])                            // torn tail
	f.Add(append(seg[:len(seg):len(seg)], 0x0c, 0x01)) // extra partial record
	if len(seg) > 10 {
		flipped := append([]byte(nil), seg...)
		flipped[len(flipped)-2] ^= 0xff // CRC mismatch in last record
		f.Add(flipped)
		badMagic := append([]byte(nil), seg...)
		badMagic[0] ^= 0xff
		f.Add(badMagic)
	}
	f.Add([]byte{})
	f.Add([]byte("DPSG1\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "seg-00000000.log"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := store.Open(dir, store.WithSegmentEvents(4))
		if err != nil {
			return // rejected cleanly — fine
		}
		// Recovered events must stream without error and agree with Len.
		n := 0
		if err := st.Events(func(Event) error { n++; return nil }); err != nil {
			t.Fatalf("Events on recovered store: %v", err)
		}
		if n != st.Len() {
			t.Fatalf("streamed %d events, Len reports %d", n, st.Len())
		}
		// The recovered store must accept appends that survive a reopen.
		extra := Event{Kind: EvInsert, Node: "s9", Tuple: tupleSeed(), Tick: 99}
		if err := st.Append(extra); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := st.Close(); err != nil {
			t.Fatalf("close after recovery: %v", err)
		}
		st2, err := store.Open(dir, store.WithSegmentEvents(4))
		if err != nil {
			t.Fatalf("reopen after recovery append: %v", err)
		}
		defer st2.Close()
		if st2.Len() != n+1 {
			t.Fatalf("reopen lost events: %d, want %d", st2.Len(), n+1)
		}
		var lastEv Event
		if err := st2.Events(func(ev Event) error { lastEv = ev; return nil }); err != nil {
			t.Fatalf("Events after reopen: %v", err)
		}
		if lastEv.Node != "s9" || lastEv.Tick != 99 {
			t.Fatalf("recovery append not last after reopen: %+v", lastEv)
		}
	})
}
