package replay

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/ndlog"
	"repro/internal/provenance"
	"repro/internal/store"
)

// driveForwarding drives the same deterministic forwarding workload into
// any session: one flow entry, then n packets at ticks 1..n, with the
// flow entry swapped halfway.
func driveForwarding(t *testing.T, s *Session, n int64) {
	t.Helper()
	insert := func(node string, tu ndlog.Tuple, tick int64) {
		t.Helper()
		if err := s.Insert(node, tu, tick); err != nil {
			t.Fatalf("Insert at %d: %v", tick, err)
		}
	}
	insert("s1", ndlog.NewTuple("flowEntry", ndlog.Int(1),
		ndlog.MustParsePrefix("0.0.0.0/0"), ndlog.Str("s2")), 0)
	for i := int64(1); i <= n; i++ {
		insert("s1", ndlog.NewTuple("packet", ndlog.IP(uint32(i))), i)
		if i == n/2 {
			if err := s.Delete("s1", ndlog.NewTuple("flowEntry", ndlog.Int(1),
				ndlog.MustParsePrefix("0.0.0.0/0"), ndlog.Str("s2")), i); err != nil {
				t.Fatalf("Delete at %d: %v", i, err)
			}
			insert("s1", ndlog.NewTuple("flowEntry", ndlog.Int(2),
				ndlog.MustParsePrefix("0.0.0.0/0"), ndlog.Str("s3")), i)
		}
		// Periodic Run calls, like a live driver.
		if i%7 == 0 {
			if err := s.Run(); err != nil {
				t.Fatalf("Run at %d: %v", i, err)
			}
		}
	}
	if err := s.Run(); err != nil {
		t.Fatalf("final Run: %v", err)
	}
}

// treeFingerprint replays the session and fingerprints the provenance
// tree of the last packet appearance — a full query-path probe.
func treeFingerprint(t *testing.T, s *Session, n int64) uint64 {
	t.Helper()
	_, g, err := s.Replay()
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	v := g.LastAppear("s3", ndlog.NewTuple("packet", ndlog.IP(uint32(n))))
	if v == nil {
		t.Fatalf("no appearance for the last forwarded packet")
	}
	return g.Tree(v.ID).Fingerprint()
}

// TestStorageDifferential: a storage-backed session must be
// indistinguishable from the in-memory path — same log, same
// checkpoints, same provenance — and remain so after a cold start from
// its segments.
func TestStorageDifferential(t *testing.T) {
	// Both fork modes: storage must be invisible to replay results whether
	// the prefix cache hands out copy-on-write or deep forks.
	for _, cow := range []bool{true, false} {
		t.Run(map[bool]string{true: "cow", false: "deep"}[cow], func(t *testing.T) {
			const n = 40
			mem := NewSession(fwdProg, WithCheckpointEvery(10), WithCopyOnWriteForks(cow))
			driveForwarding(t, mem, n)

			dir := t.TempDir()
			st := NewSession(fwdProg, WithCheckpointEvery(10), WithCopyOnWriteForks(cow),
				WithStorage(dir, store.WithSegmentEvents(8)))
			driveForwarding(t, st, n)

			if !reflect.DeepEqual(mem.Log().Events(), st.Log().Events()) {
				t.Fatalf("storage-backed log differs from in-memory log")
			}
			if !reflect.DeepEqual(mem.Checkpoints(), st.Checkpoints()) {
				t.Fatalf("storage-backed checkpoints differ from in-memory checkpoints")
			}
			wantFP := treeFingerprint(t, mem, n)
			if fp := treeFingerprint(t, st, n); fp != wantFP {
				t.Fatalf("storage-backed provenance fingerprint %x != in-memory %x", fp, wantFP)
			}
			if err := st.CloseStorage(); err != nil {
				t.Fatalf("CloseStorage: %v", err)
			}

			// Cold start out of the segments: same session again.
			cold, err := Open(fwdProg, dir, WithCheckpointEvery(10), WithCopyOnWriteForks(cow))
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			defer cold.CloseStorage()
			if !reflect.DeepEqual(mem.Log().Events(), cold.Log().Events()) {
				t.Fatalf("cold-start log differs")
			}
			if !reflect.DeepEqual(mem.Checkpoints(), cold.Checkpoints()) {
				t.Fatalf("cold-start checkpoints differ")
			}
			if fp := treeFingerprint(t, cold, n); fp != wantFP {
				t.Fatalf("cold-start provenance fingerprint differs")
			}
		})
	}
}

// TestStorageRedriveRecovery: restarting a storage-backed session and
// re-driving the same execution must verify against the stored prefix
// (appending nothing), then keep persisting past it.
func TestStorageRedriveRecovery(t *testing.T) {
	const n = 30
	dir := t.TempDir()
	first := NewSession(fwdProg, WithCheckpointEvery(10), WithStorage(dir, store.WithSegmentEvents(8)))
	driveForwarding(t, first, n)
	storedLen := first.Storage().Len()
	if err := first.CloseStorage(); err != nil {
		t.Fatalf("CloseStorage: %v", err)
	}

	// "Restart": fresh session over the same dir, deterministic driver
	// re-drives the identical execution.
	second := NewSession(fwdProg, WithCheckpointEvery(10), WithStorage(dir, store.WithSegmentEvents(8)))
	driveForwarding(t, second, n)
	if got := second.Storage().Len(); got != storedLen {
		t.Fatalf("re-drive appended: store holds %d events, want %d", got, storedLen)
	}

	mem := NewSession(fwdProg, WithCheckpointEvery(10))
	driveForwarding(t, mem, n)
	if !reflect.DeepEqual(mem.Checkpoints(), second.Checkpoints()) {
		t.Fatalf("recovered checkpoints differ from in-memory reference")
	}
	if treeFingerprint(t, mem, n) != treeFingerprint(t, second, n) {
		t.Fatalf("recovered provenance differs from in-memory reference")
	}

	// New events past the recovered execution persist.
	if err := second.Insert("s1", ndlog.NewTuple("packet", ndlog.IP(0xffff0001)), n+5); err != nil {
		t.Fatalf("Insert past recovery: %v", err)
	}
	if err := second.Run(); err != nil {
		t.Fatalf("Run past recovery: %v", err)
	}
	if got := second.Storage().Len(); got != storedLen+1 {
		t.Fatalf("post-recovery append not persisted: %d events, want %d", got, storedLen+1)
	}
	second.CloseStorage()
}

// TestStorageRedriveDivergence: a driver that does not reproduce the
// stored execution must fail loudly, not fork history.
func TestStorageRedriveDivergence(t *testing.T) {
	dir := t.TempDir()
	first := NewSession(fwdProg, WithStorage(dir))
	if err := first.Insert("s1", ndlog.NewTuple("packet", ndlog.IP(1)), 1); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := first.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := first.CloseStorage(); err != nil {
		t.Fatalf("CloseStorage: %v", err)
	}

	second := NewSession(fwdProg, WithStorage(dir))
	err := second.Insert("s1", ndlog.NewTuple("packet", ndlog.IP(2)), 1) // different tuple
	if err == nil || !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("divergent re-drive not rejected: %v", err)
	}
	second.CloseStorage()
}

// TestStorageKillAndRestart: a crash that loses the unflushed tail (and
// leaves a torn record) recovers to the durable prefix; re-driving the
// full execution then re-appends the lost events and converges to the
// in-memory reference.
func TestStorageKillAndRestart(t *testing.T) {
	const n = 30
	dir := t.TempDir()
	first := NewSession(fwdProg, WithCheckpointEvery(10), WithStorage(dir, store.WithSegmentEvents(8)))
	driveForwarding(t, first, n)
	// Crash: no Close, no final Sync — anything the store buffered is
	// lost. Then tear the active segment's tail with a partial record.
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments written: %v", err)
	}
	last := segs[len(segs)-1]
	f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open segment: %v", err)
	}
	if _, err := f.Write([]byte{0x0c, 0x01, 0x02}); err != nil {
		t.Fatalf("write torn record: %v", err)
	}
	f.Close()

	second := NewSession(fwdProg, WithCheckpointEvery(10), WithStorage(dir, store.WithSegmentEvents(8)))
	recovered := second.Log().Len()
	if recovered == 0 || recovered > second.Storage().Len()+1 {
		t.Fatalf("recovered %d events from torn store", recovered)
	}
	driveForwarding(t, second, n)

	mem := NewSession(fwdProg, WithCheckpointEvery(10))
	driveForwarding(t, mem, n)
	if !reflect.DeepEqual(mem.Log().Events(), second.Log().Events()) {
		t.Fatalf("post-crash re-drive log differs from reference")
	}
	if !reflect.DeepEqual(mem.Checkpoints(), second.Checkpoints()) {
		t.Fatalf("post-crash re-drive checkpoints differ from reference")
	}
	if treeFingerprint(t, mem, n) != treeFingerprint(t, second, n) {
		t.Fatalf("post-crash provenance differs from reference")
	}
	if err := second.SyncStorage(); err != nil {
		t.Fatalf("SyncStorage: %v", err)
	}
	if got, want := second.Storage().Len(), second.Log().Len(); got != want {
		t.Fatalf("store holds %d events after recovery, log has %d", got, want)
	}
	second.CloseStorage()
}

// TestStorageGCColdStartMatchesAgeOut: GC truncates whole old segments;
// a cold start from the truncated store must equal an in-memory session
// over the retained suffix of the log (the segment-granular version of
// Log.AgeOut).
func TestStorageGCColdStartMatchesAgeOut(t *testing.T) {
	const n = 40
	dir := t.TempDir()
	s := NewSession(fwdProg, WithCheckpointEvery(10), WithStorage(dir, store.WithSegmentEvents(8)))
	driveForwarding(t, s, n)
	full := s.Log().Events()

	removed, err := s.GCStorage(20)
	if err != nil {
		t.Fatalf("GCStorage: %v", err)
	}
	if removed == 0 {
		t.Fatalf("GC reclaimed nothing")
	}
	// GC reclaims whole segments from the front of the stream, so the
	// retained log is exactly the suffix past the reclaimed segments.
	dropped := removed * 8
	if err := s.CloseStorage(); err != nil {
		t.Fatalf("CloseStorage: %v", err)
	}

	cold, err := Open(fwdProg, dir, WithCheckpointEvery(10))
	if err != nil {
		t.Fatalf("Open after GC: %v", err)
	}
	defer cold.CloseStorage()
	if !reflect.DeepEqual(cold.Log().Events(), full[dropped:]) {
		t.Fatalf("cold start after GC: got %d events, want the %d-event suffix", cold.Log().Len(), len(full)-dropped)
	}

	// And it must match a from-scratch session driven with the same
	// suffix (what AgeOut would leave for tick-sorted logs).
	ref := NewSession(fwdProg, WithCheckpointEvery(10))
	for _, ev := range full[dropped:] {
		var err error
		if ev.Kind == EvInsert {
			err = ref.Insert(ev.Node, ev.Tuple, ev.Tick)
		} else {
			err = ref.Delete(ev.Node, ev.Tuple, ev.Tick)
		}
		if err != nil {
			t.Fatalf("driving reference: %v", err)
		}
	}
	if err := ref.Run(); err != nil {
		t.Fatalf("reference Run: %v", err)
	}
	if !reflect.DeepEqual(ref.Checkpoints(), cold.Checkpoints()) {
		t.Fatalf("cold start after GC: checkpoints differ from aged-out reference")
	}
}

// TestStorageGCPinnedDiagnosis: a pin at a replayed-from tick blocks GC
// from reclaiming the segments a live diagnosis needs; release unblocks.
func TestStorageGCPinnedDiagnosis(t *testing.T) {
	const n = 40
	dir := t.TempDir()
	s := NewSession(fwdProg, WithStorage(dir, store.WithSegmentEvents(8)))
	driveForwarding(t, s, n)

	release := s.PinStorage(0) // diagnosis replaying from the beginning
	removed, err := s.GCStorage(30)
	if err != nil {
		t.Fatalf("GCStorage: %v", err)
	}
	if removed != 0 {
		t.Fatalf("GC reclaimed %d segments under a pin at tick 0", removed)
	}
	// The pinned diagnosis still sees the full history (flow entry, n
	// packets, and the mid-run delete+insert swap).
	if got := s.Log().Len(); got != n+3 {
		t.Fatalf("log shrank under GC: %d events", got)
	}
	release()
	removed, err = s.GCStorage(30)
	if err != nil {
		t.Fatalf("GCStorage after release: %v", err)
	}
	if removed == 0 {
		t.Fatalf("GC reclaimed nothing after the pin was released")
	}
	s.CloseStorage()
}

// TestOpenEmptyDir: cold-starting an empty directory yields an empty,
// usable, persisting session.
func TestOpenEmptyDir(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(fwdProg, dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if s.Log().Len() != 0 {
		t.Fatalf("fresh dir yielded %d events", s.Log().Len())
	}
	if err := s.Insert("s1", ndlog.NewTuple("packet", ndlog.IP(7)), 1); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := s.CloseStorage(); err != nil {
		t.Fatalf("CloseStorage: %v", err)
	}
	re, err := Open(fwdProg, dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.CloseStorage()
	if re.Log().Len() != 1 {
		t.Fatalf("persisted %d events, want 1", re.Log().Len())
	}
}

// TestColdStartReplay1M is the acceptance-scale test: a million-event
// synthetic log must persist into segments and replay from a cold start
// out of them. Skipped in -short mode and under the race detector; the
// CI "cold-start replay" step runs it plainly.
func TestColdStartReplay1M(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-event cold start skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("1M-event cold start skipped under the race detector")
	}
	const n = 1_000_000
	dir := t.TempDir()
	s := NewSession(fwdProg, WithCheckpointEvery(100_000), WithStorage(dir))
	if err := s.Insert("s1", ndlog.NewTuple("flowEntry", ndlog.Int(1),
		ndlog.MustParsePrefix("0.0.0.0/0"), ndlog.Str("s2")), 0); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	for i := int64(1); i <= n; i++ {
		if err := s.Insert("s1", ndlog.NewTuple("packet", ndlog.IP(uint32(i))), i); err != nil {
			t.Fatalf("Insert(%d): %v", i, err)
		}
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	wantCkpts := s.Checkpoints()
	if len(wantCkpts) == 0 {
		t.Fatalf("no checkpoints captured")
	}
	if err := s.CloseStorage(); err != nil {
		t.Fatalf("CloseStorage: %v", err)
	}

	cold, err := Open(fwdProg, dir, WithCheckpointEvery(100_000))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer cold.CloseStorage()
	if cold.Log().Len() != n+1 {
		t.Fatalf("cold start recovered %d events, want %d", cold.Log().Len(), n+1)
	}
	got := cold.Checkpoints()
	if len(got) != len(wantCkpts) {
		t.Fatalf("cold start has %d checkpoints, want %d", len(got), len(wantCkpts))
	}
	for i := range got {
		if got[i].Tick != wantCkpts[i].Tick {
			t.Fatalf("checkpoint %d at tick %d, want %d", i, got[i].Tick, wantCkpts[i].Tick)
		}
	}
	// Spot-check recovered live state: the last packet was forwarded.
	if !cold.Live().Exists("s2", ndlog.NewTuple("packet", ndlog.IP(uint32(n))), cold.Live().Now()) {
		t.Fatalf("recovered live state is missing the last forwarded packet")
	}
}

// TestWarmStartPrefix: Open with WithWarmStart must rehydrate the
// checkpoint-anchored prefix engine during recovery, so the very first
// counterfactual replay forks a warm prefix (a cache hit) instead of
// paying a from-scratch prefix build — and its result must be
// byte-identical to a cold session's.
func TestWarmStartPrefix(t *testing.T) {
	const n = 40
	dir := t.TempDir()
	s := NewSession(fwdProg, WithCheckpointEvery(10), WithStorage(dir, store.WithSegmentEvents(8)))
	driveForwarding(t, s, n)
	if err := s.CloseStorage(); err != nil {
		t.Fatalf("CloseStorage: %v", err)
	}

	warm, err := Open(fwdProg, dir, WithCheckpointEvery(10), WithWarmStart(true))
	if err != nil {
		t.Fatalf("warm Open: %v", err)
	}
	defer warm.CloseStorage()
	cold, err := Open(fwdProg, dir, WithCheckpointEvery(10))
	if err != nil {
		t.Fatalf("cold Open: %v", err)
	}
	defer cold.CloseStorage()

	// The change lands just after the last durable checkpoint, so the
	// replay anchors exactly on the prefix the warm start rebuilt.
	change := []Change{{Insert: true, Node: "s1",
		Tuple: ndlog.NewTuple("packet", ndlog.IP(9999)), Tick: n + 1}}
	we, wg, err := warm.ReplayWith(change)
	if err != nil {
		t.Fatalf("warm ReplayWith: %v", err)
	}
	if warm.Stats.PrefixHits != 1 || warm.Stats.PrefixMisses != 0 {
		t.Errorf("warm start: first replay hit/miss = %d/%d, want 1/0",
			warm.Stats.PrefixHits, warm.Stats.PrefixMisses)
	}
	ce, cg, err := cold.ReplayWith(change)
	if err != nil {
		t.Fatalf("cold ReplayWith: %v", err)
	}
	if cold.Stats.PrefixMisses != 1 {
		t.Errorf("cold start: first replay misses = %d, want 1", cold.Stats.PrefixMisses)
	}
	if got, want := serializeForTest(wg, we.CaptureState()), serializeForTest(cg, ce.CaptureState()); got != want {
		t.Errorf("warm-start replay differs from cold replay:\nwarm:\n%.2000s\ncold:\n%.2000s", got, want)
	}
}

// serializeForTest renders a graph and snapshot deterministically for
// byte-identity comparisons inside the package.
func serializeForTest(g *provenance.Graph, snap ndlog.Snapshot) string {
	var sb strings.Builder
	g.Vertexes(func(v *provenance.Vertex) {
		fmt.Fprintf(&sb, "%d %s trig=%d kids=%v\n", v.ID, v.String(), v.Trigger, v.Children)
	})
	nodes := make([]string, 0, len(snap.State))
	for n := range snap.State {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	fmt.Fprintf(&sb, "tick=%d\n", snap.Tick)
	for _, n := range nodes {
		tables := make([]string, 0, len(snap.State[n]))
		for tn := range snap.State[n] {
			tables = append(tables, tn)
		}
		sort.Strings(tables)
		for _, tn := range tables {
			for _, tp := range snap.State[n][tn] {
				fmt.Fprintf(&sb, "%s %s\n", n, tp)
			}
		}
	}
	return sb.String()
}
