//go:build !race

package replay

// raceEnabled reports whether the race detector is compiled in; large
// synthetic-log tests skip under it (they are about scale, not
// synchronization, and the detector makes them an order of magnitude
// slower).
const raceEnabled = false
