// Package replay implements DiffProv's logging and replay engines (§5).
//
// The logging engine writes down base events (and, optionally, periodic
// state checkpoints); the replay engine reconstructs derivations — and
// hence provenance — via deterministic replay. Replay is also how
// DiffProv applies counterfactual changes: a cloned execution is rolled
// forward with extra base tuples injected, without disturbing the live
// system (§4.6).
//
// Sessions can be backed by the persistent segmented store
// (internal/store) via WithStorage/Open, so base events and checkpoints
// survive restarts and a cold start replays out of segments instead of
// the heap.
package replay

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/ndlog"
	"repro/internal/store"
)

// Event is one logged base event. It is an alias of the store's event
// type: the in-memory log and the on-disk segments share one definition
// and one wire format.
type Event = store.Event

// EventKind distinguishes logged base events.
type EventKind = store.EventKind

// Logged event kinds.
const (
	EvInsert = store.EvInsert
	EvDelete = store.EvDelete
)

// Log is an append-only base-event log. Its encoded size is what the
// storage-cost experiments (Figures 5 and 6) measure.
type Log struct {
	events []Event
}

// NewLog creates an empty log.
func NewLog() *Log { return &Log{} }

// Append adds an event to the log.
func (l *Log) Append(ev Event) { l.events = append(l.events, ev) }

// Insert logs a base-tuple insertion.
func (l *Log) Insert(node string, t ndlog.Tuple, tick int64) {
	l.Append(Event{Kind: EvInsert, Node: node, Tuple: t, Tick: tick})
}

// Delete logs a base-tuple deletion.
func (l *Log) Delete(node string, t ndlog.Tuple, tick int64) {
	l.Append(Event{Kind: EvDelete, Node: node, Tuple: t, Tick: tick})
}

// Len returns the number of logged events.
func (l *Log) Len() int { return len(l.events) }

// Events returns a copy of the logged events in order. Callers may keep
// or mutate the returned slice freely; appends through it never reach
// the log (the session's prefix cache invalidates by log length, so an
// aliased append could corrupt cached prefixes).
func (l *Log) Events() []Event { return append([]Event(nil), l.events...) }

// Each calls fn for every logged event in order without copying. The
// callback must not retain references past the call or append to the
// log while iterating.
func (l *Log) Each(fn func(Event)) {
	for _, ev := range l.events {
		fn(ev)
	}
}

// At returns the event at index i.
func (l *Log) At(i int) Event { return l.events[i] }

// Clone returns a copy of the log (sharing tuples, which are immutable by
// convention).
func (l *Log) Clone() *Log {
	return &Log{events: append([]Event(nil), l.events...)}
}

// Encode writes the log in a compact binary format: an event count
// followed by each event in the store's wire encoding (a kind byte, the
// tick, node and table as length-prefixed strings, kind-tagged values).
// The format stores fixed-size header information per packet-like event
// — tuple fields and a timestamp — mirroring the paper's observation
// that the log keeps "the header and the timestamp", not payloads. The
// per-event encoding is shared with the segmented store, so a segment
// holds the same bytes Encode would produce for its events.
func (l *Log) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := store.WriteUvarint(bw, uint64(len(l.events))); err != nil {
		return err
	}
	for _, ev := range l.events {
		if err := store.WriteEvent(bw, ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode reads a log previously written by Encode.
func Decode(r io.Reader) (*Log, error) {
	br := bufio.NewReader(r)
	count, err := store.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("replay: bad log header: %v", err)
	}
	l := NewLog()
	for i := uint64(0); i < count; i++ {
		ev, err := store.ReadEvent(br)
		if err != nil {
			return nil, err
		}
		l.Append(ev)
	}
	return l, nil
}

// AgeOut returns a new log without events before the given tick — the
// paper's storage-reclamation strategy ("old entries can be gradually
// aged out to reduce the amount of storage needed"). Note that aging out
// the log also ages out the reference events it contains: diagnoses whose
// good example lies in the past (the paper's SDN3) become impossible once
// the events before the fault are gone.
func (l *Log) AgeOut(beforeTick int64) *Log {
	out := NewLog()
	for _, ev := range l.events {
		if ev.Tick >= beforeTick {
			out.Append(ev)
		}
	}
	return out
}

// countingWriter counts bytes written to it.
type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

// EncodedSize returns the size in bytes of the encoded log, as the
// storage-cost experiments measure it.
func (l *Log) EncodedSize() int64 {
	var cw countingWriter
	if err := l.Encode(&cw); err != nil {
		return 0
	}
	return cw.n
}
