// Package replay implements DiffProv's logging and replay engines (§5).
//
// The logging engine writes down base events (and, optionally, periodic
// state checkpoints); the replay engine reconstructs derivations — and
// hence provenance — via deterministic replay. Replay is also how
// DiffProv applies counterfactual changes: a cloned execution is rolled
// forward with extra base tuples injected, without disturbing the live
// system (§4.6).
package replay

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/ndlog"
)

// EventKind distinguishes logged base events.
type EventKind uint8

// Logged event kinds.
const (
	EvInsert EventKind = iota
	EvDelete
)

// Event is one logged base event.
type Event struct {
	Kind  EventKind
	Node  string
	Tuple ndlog.Tuple
	Tick  int64
}

// Log is an append-only base-event log. Its encoded size is what the
// storage-cost experiments (Figures 5 and 6) measure.
type Log struct {
	events []Event
}

// NewLog creates an empty log.
func NewLog() *Log { return &Log{} }

// Append adds an event to the log.
func (l *Log) Append(ev Event) { l.events = append(l.events, ev) }

// Insert logs a base-tuple insertion.
func (l *Log) Insert(node string, t ndlog.Tuple, tick int64) {
	l.Append(Event{Kind: EvInsert, Node: node, Tuple: t, Tick: tick})
}

// Delete logs a base-tuple deletion.
func (l *Log) Delete(node string, t ndlog.Tuple, tick int64) {
	l.Append(Event{Kind: EvDelete, Node: node, Tuple: t, Tick: tick})
}

// Len returns the number of logged events.
func (l *Log) Len() int { return len(l.events) }

// Events returns the logged events in order. The slice is shared; callers
// must not mutate it.
func (l *Log) Events() []Event { return l.events }

// Clone returns a copy of the log (sharing tuples, which are immutable by
// convention).
func (l *Log) Clone() *Log {
	return &Log{events: append([]Event(nil), l.events...)}
}

// Encode writes the log in a compact binary format. The format stores
// fixed-size header information per packet-like event — tuple fields and
// a timestamp — mirroring the paper's observation that the log keeps "the
// header and the timestamp", not payloads.
func (l *Log) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	putString := func(s string) error {
		if err := putUvarint(uint64(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	if err := putUvarint(uint64(len(l.events))); err != nil {
		return err
	}
	for _, ev := range l.events {
		if err := bw.WriteByte(byte(ev.Kind)); err != nil {
			return err
		}
		if err := putUvarint(uint64(ev.Tick)); err != nil {
			return err
		}
		if err := putString(ev.Node); err != nil {
			return err
		}
		if err := putString(ev.Tuple.Table); err != nil {
			return err
		}
		if err := putUvarint(uint64(len(ev.Tuple.Args))); err != nil {
			return err
		}
		for _, a := range ev.Tuple.Args {
			if err := encodeValue(bw, putUvarint, putString, a); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

func encodeValue(bw *bufio.Writer, putUvarint func(uint64) error, putString func(string) error, v ndlog.Value) error {
	if err := bw.WriteByte(byte(v.Kind())); err != nil {
		return err
	}
	switch x := v.(type) {
	case ndlog.Int:
		var scratch [binary.MaxVarintLen64]byte
		n := binary.PutVarint(scratch[:], int64(x))
		_, err := bw.Write(scratch[:n])
		return err
	case ndlog.Str:
		return putString(string(x))
	case ndlog.Bool:
		b := byte(0)
		if x {
			b = 1
		}
		return bw.WriteByte(b)
	case ndlog.IP:
		var buf [4]byte
		binary.BigEndian.PutUint32(buf[:], uint32(x))
		_, err := bw.Write(buf[:])
		return err
	case ndlog.Prefix:
		var buf [5]byte
		binary.BigEndian.PutUint32(buf[:4], uint32(x.Addr))
		buf[4] = x.Bits
		_, err := bw.Write(buf[:])
		return err
	case ndlog.ID:
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], uint64(x))
		_, err := bw.Write(buf[:])
		return err
	default:
		return fmt.Errorf("replay: cannot encode value of kind %s", v.Kind())
	}
}

// Sanity bounds for decoding untrusted logs: no legitimate node, table,
// or string field exceeds these, and no tuple has more columns.
const (
	maxDecodedString = 1 << 20
	maxDecodedArgs   = 1 << 10
)

// Decode reads a log previously written by Encode.
func Decode(r io.Reader) (*Log, error) {
	br := bufio.NewReader(r)
	getString := func() (string, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return "", err
		}
		if n > maxDecodedString {
			return "", fmt.Errorf("replay: string field of %d bytes exceeds the %d-byte bound", n, maxDecodedString)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("replay: bad log header: %v", err)
	}
	l := NewLog()
	for i := uint64(0); i < count; i++ {
		kind, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		if kind > byte(EvDelete) {
			return nil, fmt.Errorf("replay: bad event kind %d", kind)
		}
		tick, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		node, err := getString()
		if err != nil {
			return nil, err
		}
		table, err := getString()
		if err != nil {
			return nil, err
		}
		nargs, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if nargs > maxDecodedArgs {
			return nil, fmt.Errorf("replay: tuple with %d columns exceeds the %d bound", nargs, maxDecodedArgs)
		}
		args := make([]ndlog.Value, nargs)
		for j := range args {
			v, err := decodeValue(br, getString)
			if err != nil {
				return nil, err
			}
			args[j] = v
		}
		l.Append(Event{
			Kind:  EventKind(kind),
			Node:  node,
			Tuple: ndlog.Tuple{Table: table, Args: args},
			Tick:  int64(tick),
		})
	}
	return l, nil
}

func decodeValue(br *bufio.Reader, getString func() (string, error)) (ndlog.Value, error) {
	kind, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	switch ndlog.Kind(kind) {
	case ndlog.KindInt:
		n, err := binary.ReadVarint(br)
		if err != nil {
			return nil, err
		}
		return ndlog.Int(n), nil
	case ndlog.KindStr:
		s, err := getString()
		if err != nil {
			return nil, err
		}
		return ndlog.Str(s), nil
	case ndlog.KindBool:
		b, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		return ndlog.Bool(b != 0), nil
	case ndlog.KindIP:
		var buf [4]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, err
		}
		return ndlog.IP(binary.BigEndian.Uint32(buf[:])), nil
	case ndlog.KindPrefix:
		var buf [5]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, err
		}
		return ndlog.Prefix{Addr: ndlog.IP(binary.BigEndian.Uint32(buf[:4])), Bits: buf[4]}, nil
	case ndlog.KindID:
		var buf [8]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, err
		}
		return ndlog.ID(binary.BigEndian.Uint64(buf[:])), nil
	default:
		return nil, fmt.Errorf("replay: bad value kind %d", kind)
	}
}

// AgeOut returns a new log without events before the given tick — the
// paper's storage-reclamation strategy ("old entries can be gradually
// aged out to reduce the amount of storage needed"). Note that aging out
// the log also ages out the reference events it contains: diagnoses whose
// good example lies in the past (the paper's SDN3) become impossible once
// the events before the fault are gone.
func (l *Log) AgeOut(beforeTick int64) *Log {
	out := NewLog()
	for _, ev := range l.events {
		if ev.Tick >= beforeTick {
			out.Append(ev)
		}
	}
	return out
}

// countingWriter counts bytes written to it.
type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

// EncodedSize returns the size in bytes of the encoded log, as the
// storage-cost experiments measure it.
func (l *Log) EncodedSize() int64 {
	var cw countingWriter
	if err := l.Encode(&cw); err != nil {
		return 0
	}
	return cw.n
}
