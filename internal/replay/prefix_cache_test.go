package replay

import (
	"sync"
	"testing"
	"time"

	"repro/internal/ndlog"
)

// cacheTestSession builds a session with one flow entry and packets at
// every tick in [1, n].
func cacheTestSession(t *testing.T, n int64, opts ...SessionOption) *Session {
	t.Helper()
	s := NewSession(fwdProg, opts...)
	if err := s.Insert("s1", ndlog.NewTuple("flowEntry", ndlog.Int(1),
		ndlog.MustParsePrefix("0.0.0.0/0"), ndlog.Str("s2")), 0); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	for i := int64(1); i <= n; i++ {
		if err := s.Insert("s1", ndlog.NewTuple("packet", ndlog.IP(uint32(i))), i); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return s
}

// TestPrefixBuildsOverlap is the regression test for acquire building
// prefixes while holding the cache mutex: two clones must be able to
// build prefixes for different anchors AT THE SAME TIME. The build hook
// blocks each build until the other arrives; if acquire still serialized
// builds under the lock, neither would see the other and both would time
// out.
func TestPrefixBuildsOverlap(t *testing.T) {
	// Delta replay anchors every change set at the end of the log; the
	// distinct per-change anchors this test needs require the full-suffix
	// path.
	s := cacheTestSession(t, 200, WithDeltaReplay(false))

	const timeout = 30 * time.Second
	var mu sync.Mutex
	arrived := 0
	both := make(chan struct{})
	overlapped := make(chan bool, 2)
	s.prefix.buildHook = func(anchor int64) {
		mu.Lock()
		arrived++
		if arrived == 2 {
			close(both)
		}
		mu.Unlock()
		select {
		case <-both:
			overlapped <- true
		case <-time.After(timeout):
			overlapped <- false
		}
	}

	var wg sync.WaitGroup
	for _, tick := range []int64{150, 40} {
		wg.Add(1)
		go func(tick int64) {
			defer wg.Done()
			clone := s.Clone()
			_, _, err := clone.ReplayWith([]Change{{
				Insert: true, Node: "s1",
				Tuple: ndlog.NewTuple("packet", ndlog.IP(0xffffff00)),
				Tick:  tick,
			}})
			if err != nil {
				t.Errorf("ReplayWith(%d): %v", tick, err)
			}
		}(tick)
	}
	wg.Wait()
	close(overlapped)
	for ok := range overlapped {
		if !ok {
			t.Fatalf("prefix builds did not overlap: a build timed out waiting for the other, so acquire is serializing builds")
		}
	}
}

// TestPrefixCachePublishDuplicate is the regression test for duplicate-
// tick publishes desyncing entries and order: republishing an existing
// tick must replace the entry in place, and evictions afterwards must
// never delete a live entry while its tick stays queued.
func TestPrefixCachePublishDuplicate(t *testing.T) {
	c := &prefixCache{entries: map[int64]*prefixEntry{}}
	check := func(when string) {
		t.Helper()
		if len(c.entries) != len(c.order) {
			t.Fatalf("%s: entries/order desynced: %d entries, %d order slots", when, len(c.entries), len(c.order))
		}
		seen := map[int64]bool{}
		for _, tick := range c.order {
			if seen[tick] {
				t.Fatalf("%s: tick %d queued twice in order", when, tick)
			}
			seen[tick] = true
			if _, ok := c.entries[tick]; !ok {
				t.Fatalf("%s: order references evicted tick %d", when, tick)
			}
		}
	}

	// Fill to capacity.
	for i := 0; i < maxPrefixEntries; i++ {
		c.publish(&prefixEntry{tick: int64(i)})
	}
	check("after fill")

	// Hammer one anchor with republishes at capacity.
	var last *prefixEntry
	for i := 0; i < 3*maxPrefixEntries; i++ {
		last = &prefixEntry{tick: 3}
		c.publish(last)
		check("after duplicate publish")
	}
	if c.entries[3] != last {
		t.Fatalf("duplicate publish did not replace the entry")
	}
	if len(c.entries) != maxPrefixEntries {
		t.Fatalf("capacity shrank to %d after duplicate publishes", len(c.entries))
	}

	// Push fresh ticks through a full round of evictions.
	for i := 0; i < 2*maxPrefixEntries; i++ {
		c.publish(&prefixEntry{tick: int64(100 + i)})
		check("after eviction")
		if len(c.entries) != maxPrefixEntries {
			t.Fatalf("cache holds %d entries, want %d", len(c.entries), maxPrefixEntries)
		}
	}
}

// TestPrefixCacheRepeatedAnchors drives the cache to capacity through
// the public path with anchors that repeat, then verifies every repeat
// is a hit and the cache never desyncs (the symptom of the publish bug
// was effective capacity shrinking until every acquire rebuilt).
func TestPrefixCacheRepeatedAnchors(t *testing.T) {
	s := cacheTestSession(t, 100, WithCheckpointEvery(10))
	anchors := []int64{15, 35, 55, 75, 95, 15, 35, 55, 75, 95, 15, 95}
	for i, a := range anchors {
		_, _, err := s.ReplayWith([]Change{{
			Insert: true, Node: "s1",
			Tuple: ndlog.NewTuple("packet", ndlog.IP(uint32(0xff000000)+uint32(i))),
			Tick:  a + prefixSlack,
		}})
		if err != nil {
			t.Fatalf("ReplayWith anchor %d: %v", a, err)
		}
	}
	c := s.prefix
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.entries) != len(c.order) {
		t.Fatalf("entries/order desynced after repeated anchors: %d vs %d", len(c.entries), len(c.order))
	}
	for _, tick := range c.order {
		if _, ok := c.entries[tick]; !ok {
			t.Fatalf("order references missing tick %d", tick)
		}
	}
	// Second and later rounds of each anchor must all have hit.
	if s.Stats.PrefixHits < int64(len(anchors)-5-1) { // 5 distinct anchors + up to 1 checkpoint base per build
		t.Fatalf("PrefixHits = %d; repeats should hit the cache", s.Stats.PrefixHits)
	}
}

// TestLogEventsReturnsCopy is the regression test for Log.Events
// aliasing its internal slice: mutating or appending through the
// returned slice must never reach the log (aliased appends bypassed the
// prefix cache's log-length invalidation).
func TestLogEventsReturnsCopy(t *testing.T) {
	l := NewLog()
	l.Insert("n1", ndlog.NewTuple("packet", ndlog.IP(1)), 1)
	l.Insert("n1", ndlog.NewTuple("packet", ndlog.IP(2)), 2)

	evs := l.Events()
	evs[0].Tick = 999
	evs[0].Node = "evil"
	if got := l.At(0); got.Tick != 1 || got.Node != "n1" {
		t.Fatalf("mutating the returned slice reached the log: %+v", got)
	}
	_ = append(evs, Event{Kind: EvInsert, Node: "n2", Tick: 3})
	if l.Len() != 2 {
		t.Fatalf("appending through the returned slice changed the log length to %d", l.Len())
	}
	if got := l.Events(); len(got) != 2 || got[0].Tick != 1 {
		t.Fatalf("log corrupted after append through returned slice: %+v", got)
	}
}

// TestCountUpToIndex pins the binary-searched count index: the events a
// forked prefix skips must equal the number of log events at or before
// the anchor, including with duplicate and unsorted ticks.
func TestCountUpToIndex(t *testing.T) {
	// Per-change-tick anchors: delta replay would raise them all to the
	// end of the log.
	s := NewSession(fwdProg, WithDeltaReplay(false))
	if err := s.Insert("s1", ndlog.NewTuple("flowEntry", ndlog.Int(1),
		ndlog.MustParsePrefix("0.0.0.0/0"), ndlog.Str("s2")), 0); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	// Unsorted arrival with duplicates: ticks 7, 3, 7, 5, 9, 3.
	for i, tick := range []int64{7, 3, 7, 5, 9, 3} {
		if err := s.Insert("s1", ndlog.NewTuple("packet", ndlog.IP(uint32(i+1))), tick); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	cases := []struct {
		changeTick int64 // anchor is changeTick - prefixSlack
		want       int64 // events with tick <= anchor (incl. the tick-0 flow entry)
	}{
		{9, 6}, // anchor 8: all but the tick-9 event
		{8, 6}, // anchor 7: ticks 0,3,3,5,7,7
		{6, 4}, // anchor 5: ticks 0,3,3,5
		{4, 3}, // anchor 3: ticks 0,3,3
	}
	for _, tc := range cases {
		clone := s.Clone()
		_, _, err := clone.ReplayWith([]Change{{
			Insert: true, Node: "s1",
			Tuple: ndlog.NewTuple("packet", ndlog.IP(0xfefefefe)),
			Tick:  tc.changeTick,
		}})
		if err != nil {
			t.Fatalf("ReplayWith(%d): %v", tc.changeTick, err)
		}
		if clone.Stats.EventsSkipped != tc.want {
			t.Errorf("change at %d: EventsSkipped = %d, want %d",
				tc.changeTick, clone.Stats.EventsSkipped, tc.want)
		}
	}
}
