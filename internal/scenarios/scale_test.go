package scenarios

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/ndlog"
	"repro/internal/replay"
	"repro/internal/sdn"
)

// TestPaperScale runs every scenario at the paper-approaching workload
// size: the MR trees grow toward the paper's ~1000 vertexes and the SDN
// scenarios carry thousands of background packets. Skipped under -short.
func TestPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale workloads are slow; run without -short")
	}
	rows, err := Table1(Paper)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("%s", r)
		for _, v := range r.DiffProv {
			if v < 1 || v > 2 {
				t.Errorf("%s: DiffProv = %d vertexes, want 1-2 at paper scale too", r.Scenario, v)
			}
		}
	}
	// MR trees approach the paper's scale (~1000 vertexes).
	for _, r := range rows {
		if r.Scenario == "MR1-D" && r.GoodTree < 500 {
			t.Errorf("MR1-D paper-scale tree = %d vertexes, want hundreds", r.GoodTree)
		}
	}
}

// TestAgeOutLosesPastReferences demonstrates the storage/diagnosability
// trade-off the paper's §6.5 implies: after aging out old log entries,
// SDN3's past reference event can no longer be reconstructed, while a
// fresh failure with a fresh reference still diagnoses.
func TestAgeOutLosesPastReferences(t *testing.T) {
	s, err := Build("SDN3", Small)
	if err != nil {
		t.Fatal(err)
	}
	// The diagnosis works on the full log.
	if _, err := s.Diagnose(); err != nil {
		t.Fatalf("pre-ageout diagnosis: %v", err)
	}
	// Find the good seed's tick and age the log out past it.
	goodSeed, err := s.Good.FindSeed()
	if err != nil {
		t.Fatal(err)
	}
	aged := s.BadSession.Log().AgeOut(goodSeed.Vertex.At.T + 1)
	if aged.Len() >= s.BadSession.Log().Len() {
		t.Fatal("age-out removed nothing")
	}
	rebuilt, err := replay.FromLog(s.BadSession.Program(), aged)
	if err != nil {
		// Rebuilding can legitimately fail (e.g. a logged deletion whose
		// insertion was aged out); that too demonstrates the loss.
		t.Logf("rebuild after age-out failed (acceptable): %v", err)
		return
	}
	_, g, err := rebuilt.Graph()
	if err != nil {
		t.Fatal(err)
	}
	// The past reference event is gone from the aged execution.
	if ap := g.LastAppear(goodSeed.Vertex.Node, goodSeed.Vertex.Tuple); ap != nil {
		t.Error("the aged-out reference event should not be reconstructible")
	}
}

// TestDiagnoseIsRepeatable: running the same diagnosis twice gives the
// same Δ (the algorithm is deterministic end to end).
func TestDiagnoseIsRepeatable(t *testing.T) {
	for _, name := range []string{"SDN1", "SDN4", "MR2-I"} {
		s1, err := Build(name, Small)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := Build(name, Small)
		if err != nil {
			t.Fatal(err)
		}
		r1, err := s1.Diagnose()
		if err != nil {
			t.Fatal(err)
		}
		r2, err := s2.Diagnose()
		if err != nil {
			t.Fatal(err)
		}
		if len(r1.Changes) != len(r2.Changes) {
			t.Fatalf("%s: Δ sizes differ across runs", name)
		}
		for i := range r1.Changes {
			a, b := r1.Changes[i], r2.Changes[i]
			if a.Insert != b.Insert || a.Node != b.Node || !a.Tuple.Equal(b.Tuple) || a.Tick != b.Tick {
				t.Fatalf("%s: change %d differs: %v vs %v", name, i, a, b)
			}
		}
	}
}

// TestDiagnosisPostconditionHolds verifies the §4.7 no-false-positives
// property on every scenario: applying Δ to a clone of the bad execution
// really makes the bad event behave like the reference.
func TestDiagnosisPostconditionHolds(t *testing.T) {
	for _, name := range Names() {
		s, err := Build(name, Small)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Diagnose()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.FinalWorld == nil {
			t.Fatalf("%s: no final world", name)
		}
		// Re-walk: the final world must contain an event equivalent to
		// the good root for the bad seed (checked by a fresh Diagnose,
		// which must return an empty Δ against the final world's
		// already-applied changes... here verified via zero further
		// rounds when re-diagnosing from the final world).
		res2, err := core.Diagnose(context.Background(), s.Good, s.Bad, res.FinalWorld, core.Options{})
		if err != nil {
			t.Fatalf("%s: re-diagnosis: %v", name, err)
		}
		if len(res2.Changes) != 0 {
			t.Errorf("%s: final world still needs %v", name, res2.Changes)
		}
	}
}

// TestCaptureModeIndependence: the diagnosis is the same whether
// provenance was captured at runtime or reconstructed by replay at query
// time (the two recorder modes of §5).
func TestCaptureModeIndependence(t *testing.T) {
	// SDN1-like network built twice, once per capture mode.
	build := func(opts ...replay.SessionOption) (*core.Result, error) {
		n := sdnNetworkForModeTest(t, opts...)
		gt, err := n.ArrivalTree("web1", modeGood)
		if err != nil {
			return nil, err
		}
		bt, err := n.ArrivalTree("web2", modeBad)
		if err != nil {
			return nil, err
		}
		world, err := core.NewWorld(n.Session())
		if err != nil {
			return nil, err
		}
		return core.Diagnose(context.Background(), gt, bt, world, core.Options{})
	}
	r1, err := build()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := build(replay.WithMode(replay.Runtime))
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Changes) != 1 || len(r2.Changes) != 1 {
		t.Fatalf("Δ sizes: %d vs %d", len(r1.Changes), len(r2.Changes))
	}
	if !r1.Changes[0].Tuple.Equal(r2.Changes[0].Tuple) {
		t.Errorf("capture modes disagree: %s vs %s", r1.Changes[0].Tuple, r2.Changes[0].Tuple)
	}
}

var (
	modeGood = sdn.Header{Src: ndlog.MustParseIP("4.3.2.1"), Dst: ndlog.MustParseIP("10.0.0.80"), Proto: 6}
	modeBad  = sdn.Header{Src: ndlog.MustParseIP("4.3.3.1"), Dst: ndlog.MustParseIP("10.0.0.80"), Proto: 6}
)

func sdnNetworkForModeTest(t *testing.T, opts ...replay.SessionOption) *sdn.Network {
	t.Helper()
	n := sdn.NewNetwork(sdn.WithSessionOptions(opts...))
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, sw := range []string{"s1", "s2", "s6", "s3"} {
		must(n.SwitchUp(sw))
	}
	must(n.AddPath("web1", "s1", "s2", "s6", "web1"))
	must(n.AddPath("web2", "s1", "s2", "s3", "web2"))
	must(n.AddIntent(10, ndlog.MustParsePrefix("4.3.2.0/24"), sdn.Any, "web1"))
	must(n.AddIntent(1, sdn.Any, sdn.Any, "web2"))
	_, err := n.InjectPacket("s1", modeGood)
	must(err)
	_, err = n.InjectPacket("s1", modeBad)
	must(err)
	must(n.Run())
	return n
}
