package scenarios

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// TestTable1Shape reproduces the shape of the paper's Table 1: plain
// trees have tens-to-hundreds of vertexes, the naive diff is of the same
// order (sometimes bigger than either tree), and DiffProv returns one or
// two vertexes per round.
func TestTable1Shape(t *testing.T) {
	rows, err := Table1(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	for _, r := range rows {
		t.Logf("%s", r)
		if r.GoodTree < 20 {
			t.Errorf("%s: good tree = %d vertexes, want a rich tree", r.Scenario, r.GoodTree)
		}
		if r.BadTree < 20 {
			t.Errorf("%s: bad tree = %d vertexes, want a rich tree", r.Scenario, r.BadTree)
		}
		if r.PlainDiff < 4 {
			t.Errorf("%s: plain diff = %d, want the butterfly effect", r.Scenario, r.PlainDiff)
		}
		for i, v := range r.DiffProv {
			if v < 1 || v > 2 {
				t.Errorf("%s round %d: DiffProv returned %d vertexes, want 1-2", r.Scenario, i+1, v)
			}
		}
		// DiffProv output is orders of magnitude smaller than the trees.
		if r.DiffProvTotal()*10 > r.GoodTree {
			t.Errorf("%s: DiffProv %d vs tree %d — not concise enough", r.Scenario, r.DiffProvTotal(), r.GoodTree)
		}
	}
	// SDN1: the naive diff is larger than either individual tree (the
	// paper's headline observation in §2.5).
	sdn1 := rows[0]
	if sdn1.PlainDiff <= sdn1.GoodTree/2 {
		t.Errorf("SDN1 plain diff = %d, want a large fraction of the trees (%d/%d)",
			sdn1.PlainDiff, sdn1.GoodTree, sdn1.BadTree)
	}
	// SDN4 runs two rounds, one change each.
	sdn4 := rows[3]
	if sdn4.Rounds != 2 {
		t.Errorf("SDN4 rounds = %d, want 2", sdn4.Rounds)
	}
}

func TestScenarioRoundCounts(t *testing.T) {
	for _, name := range Names() {
		s, err := Build(name, Small)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := s.Diagnose()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Check != nil {
			if err := s.Check(res); err != nil {
				t.Errorf("%s: %v", name, err)
			}
		}
		if len(res.Rounds) > s.WantRounds {
			t.Errorf("%s: rounds = %d, want <= %d", name, len(res.Rounds), s.WantRounds)
		}
	}
}

func TestBuildUnknownScenario(t *testing.T) {
	if _, err := Build("SDN99", Small); err == nil {
		t.Error("unknown scenario must fail")
	}
}

func TestBuildCaseInsensitive(t *testing.T) {
	if _, err := Build("sdn1", Small); err != nil {
		t.Errorf("lower-case name should work: %v", err)
	}
}

// TestUnsuitableReferences reproduces §6.3: randomly picked references
// fail with diagnostic error messages.
func TestUnsuitableReferences(t *testing.T) {
	checks, err := RandomReferenceChecks(Small, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(checks) < 6 {
		t.Fatalf("checks = %d, want several per scenario", len(checks))
	}
	for _, c := range checks {
		t.Logf("%s ref=%s -> %s", c.Scenario, c.Reference, c.Kind)
		if c.Kind != core.SeedTypeMismatch && c.Kind != core.ImmutableChange && c.Kind != core.NonInvertible && c.Kind != core.NoProgress {
			t.Errorf("unexpected failure kind %v", c.Kind)
		}
		if c.Message == "" || !strings.Contains(c.Message, "diffprov") {
			t.Errorf("error message should be diagnostic: %q", c.Message)
		}
	}
}

func TestScenarioDescriptions(t *testing.T) {
	all, err := All(Small)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range all {
		if s.Description == "" {
			t.Errorf("%s: missing description", s.Name)
		}
		if s.Good == nil || s.Bad == nil || s.World == nil {
			t.Errorf("%s: incomplete scenario", s.Name)
		}
	}
}
