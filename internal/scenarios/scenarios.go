// Package scenarios wires up the paper's six diagnostic scenarios (§6.2)
// — SDN1–SDN4 plus the MapReduce scenarios in their declarative (MR1-D,
// MR2-D) and imperative (MR1-I, MR2-I) variants — for reuse by the test
// suite, the benchmark harness (Table 1, Figures 7–8), the CLI, and the
// examples.
package scenarios

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/ndlog"
	"repro/internal/netcore"
	"repro/internal/provenance"
	"repro/internal/replay"
	"repro/internal/sdn"
	"repro/internal/trace"
)

// Scale selects the workload size: Small keeps unit tests fast; Paper
// approaches the paper's workload sizes for the benchmark harness.
type Scale int

// The scales.
const (
	Small Scale = iota
	Paper
)

// Scenario is one ready-to-diagnose case study.
type Scenario struct {
	Name        string
	Description string
	// Good and Bad are the reference and diagnostic provenance trees.
	Good, Bad *provenance.Tree
	// World is the bad execution for DiffProv.
	World core.World
	// BadSession is the bad execution's replay session (nil for the
	// imperative MapReduce variants, which re-run jobs instead).
	BadSession *replay.Session
	// WantRounds is the number of DiffProv rounds the paper reports.
	WantRounds int
	// Check validates the diagnosis result against the known root cause.
	Check func(*core.Result) error
}

// Diagnose runs DiffProv on the scenario.
func (s *Scenario) Diagnose() (*core.Result, error) {
	return s.DiagnoseContext(context.Background())
}

// DiagnoseContext runs DiffProv on the scenario, honoring the context's
// cancellation and deadline.
func (s *Scenario) DiagnoseContext(ctx context.Context) (*core.Result, error) {
	return s.DiagnoseOptions(ctx, core.Options{})
}

// DiagnoseOptions is DiagnoseContext with explicit DiffProv options (e.g.
// parallel candidate evaluation or the minimization pass).
func (s *Scenario) DiagnoseOptions(ctx context.Context, opts core.Options) (*core.Result, error) {
	return core.Diagnose(ctx, s.Good, s.Bad, s.World, opts)
}

// Isolated returns a shallow copy of the scenario whose World (and
// BadSession) are backed by a private clone of the bad execution's replay
// session, so a diagnosis can run concurrently with others without
// sharing mutable replay state or timing counters. Scenarios without a
// replay session (the instrumented MapReduce variants, whose worlds
// re-run the job and share nothing mutable) are returned as-is.
func (s *Scenario) Isolated() (*Scenario, error) {
	if s.BadSession == nil {
		return s, nil
	}
	cl := s.BadSession.Clone()
	world, err := core.NewWorld(cl)
	if err != nil {
		return nil, err
	}
	iso := *s
	iso.BadSession = cl
	iso.World = world
	return &iso, nil
}

// Names lists the scenarios in the paper's Table 1 order.
func Names() []string {
	return []string{"SDN1", "SDN2", "SDN3", "SDN4", "MR1-D", "MR2-D", "MR1-I", "MR2-I"}
}

// ErrUnknownScenario reports that a scenario name is not one of Names().
// Callers distinguish it (errors.Is) from a scenario that exists but
// failed to build.
var ErrUnknownScenario = errors.New("unknown scenario")

// BuildOption configures how a scenario is built.
type BuildOption func(*buildConfig)

type buildConfig struct {
	sessOpts []replay.SessionOption
}

// WithSessionOptions passes replay session options (e.g.
// replay.WithStorage for a persistent base-event log) to the scenario's
// underlying session. It applies to the session-backed SDN scenarios;
// the instrumented MapReduce variants re-run jobs instead of replaying a
// session and ignore it.
func WithSessionOptions(opts ...replay.SessionOption) BuildOption {
	return func(c *buildConfig) { c.sessOpts = append(c.sessOpts, opts...) }
}

func applyBuildOptions(opts []BuildOption) *buildConfig {
	c := &buildConfig{}
	for _, o := range opts {
		o(c)
	}
	return c
}

// networkOptions converts build options into sdn.Network options.
func (c *buildConfig) networkOptions() []sdn.Option {
	if len(c.sessOpts) == 0 {
		return nil
	}
	return []sdn.Option{sdn.WithSessionOptions(c.sessOpts...)}
}

// Build constructs a scenario by name.
func Build(name string, scale Scale, opts ...BuildOption) (*Scenario, error) {
	switch strings.ToUpper(name) {
	case "SDN1":
		return SDN1(scale, opts...)
	case "SDN2":
		return SDN2(scale, opts...)
	case "SDN3":
		return SDN3(scale, opts...)
	case "SDN4":
		return SDN4(scale, opts...)
	case "MR1-D":
		return MR1D(scale)
	case "MR2-D":
		return MR2D(scale)
	case "MR1-I":
		return MR1I(scale)
	case "MR2-I":
		return MR2I(scale)
	default:
		return nil, fmt.Errorf("scenarios: %w %q (want one of %s)", ErrUnknownScenario, name, strings.Join(Names(), ", "))
	}
}

// All builds every scenario.
func All(scale Scale) ([]*Scenario, error) {
	var out []*Scenario
	for _, n := range Names() {
		s, err := Build(n, scale)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", n, err)
		}
		out = append(out, s)
	}
	return out, nil
}

// The Figure 1 headers. The web service IP is the same for all clients;
// paths are selected by the source subnet.
var (
	webIP   = ndlog.MustParseIP("10.0.0.80")
	goodHdr = sdn.Header{Src: ndlog.MustParseIP("4.3.2.1"), Dst: webIP, Proto: 6}
	badHdr  = sdn.Header{Src: ndlog.MustParseIP("4.3.3.1"), Dst: webIP, Proto: 6}
)

// figure1Policy is the controller program of §2, written in the NetCore
// front-end, with the operator's typo (4.3.2.0/24 instead of /23).
const figure1Policy = `
policy untrusted priority 10 {
    match src in 4.3.2.0/24;    // TYPO: the untrusted subnet is /23
    route web1;
}
policy default priority 1 {
    route web2;
}
mirror at s6 {
    match src in 0.0.0.0/0;
    to dpi;
}
`

// backgroundPackets returns how much background traffic a scale implies.
func backgroundPackets(scale Scale) int {
	if scale == Paper {
		return 3000
	}
	return 120
}

// buildFigure1 builds the §2 network with the given policy source and
// streams background traffic through it.
func buildFigure1(policySrc string, scale Scale, cfg *buildConfig) (*sdn.Network, error) {
	n := sdn.NewNetwork(cfg.networkOptions()...)
	for _, sw := range []string{"s1", "s2", "s3", "s4", "s5", "s6"} {
		if err := n.SwitchUp(sw); err != nil {
			return nil, err
		}
	}
	if err := n.AddPath("web1", "s1", "s2", "s6", "web1"); err != nil {
		return nil, err
	}
	if err := n.AddPath("web2", "s1", "s2", "s3", "s4", "s5", "web2"); err != nil {
		return nil, err
	}
	prog, err := netcore.Parse(policySrc)
	if err != nil {
		return nil, err
	}
	if err := prog.Install(n); err != nil {
		return nil, err
	}
	// Replay a synthetic capture through the network (the paper replays
	// an OC-192 CAIDA trace through the SDN1 setup).
	gen := trace.New(trace.Config{
		Seed:       11,
		DstSubnets: []ndlog.Prefix{ndlog.MustParsePrefix("10.0.0.80/32")},
	})
	for i := 0; i < backgroundPackets(scale); i++ {
		p := gen.Next()
		if _, err := n.InjectPacket("s1", sdn.Header{Src: p.Src, Dst: p.Dst, Proto: p.Proto}); err != nil {
			return nil, err
		}
	}
	return n, nil
}

func sdnScenario(n *sdn.Network, goodNode string, good sdn.Header, badNode string, bad sdn.Header) (*Scenario, error) {
	if err := n.Run(); err != nil {
		return nil, err
	}
	gt, err := n.ArrivalTree(goodNode, good)
	if err != nil {
		return nil, fmt.Errorf("good tree: %v", err)
	}
	bt, err := n.ArrivalTree(badNode, bad)
	if err != nil {
		return nil, fmt.Errorf("bad tree: %v", err)
	}
	world, err := core.NewWorld(n.Session())
	if err != nil {
		return nil, err
	}
	return &Scenario{Good: gt, Bad: bt, World: world, BadSession: n.Session(), WantRounds: 1}, nil
}

// SDN1 is the broken flow entry scenario of §2/§6.2: the overly specific
// rule misroutes part of the untrusted subnet.
func SDN1(scale Scale, opts ...BuildOption) (*Scenario, error) {
	n, err := buildFigure1(figure1Policy, scale, applyBuildOptions(opts))
	if err != nil {
		return nil, err
	}
	if _, err := n.InjectPacket("s1", goodHdr); err != nil {
		return nil, err
	}
	if _, err := n.InjectPacket("s1", badHdr); err != nil {
		return nil, err
	}
	s, err := sdnScenario(n, "web1", goodHdr, "web2", badHdr)
	if err != nil {
		return nil, err
	}
	s.Name = "SDN1"
	s.Description = "Broken flow entry: 4.3.2.0/23 mistyped as /24; requests from 4.3.3.0/24 reach the wrong server"
	s.Check = func(r *core.Result) error {
		if len(r.Changes) != 1 {
			return fmt.Errorf("Δ = %v, want 1 change", r.Changes)
		}
		c := r.Changes[0]
		if c.Tuple.Table != "intent" || !c.Insert {
			return fmt.Errorf("change = %v, want an intent insertion", c)
		}
		if c.Tuple.Args[1] != ndlog.MustParsePrefix("4.3.2.0/23") {
			return fmt.Errorf("change = %s, want the corrected /23 match", c.Tuple)
		}
		return nil
	}
	return s, nil
}

// SDN2 is the multi-controller inconsistency: a second app's
// higher-priority scrubber rule overlaps legitimate traffic.
func SDN2(scale Scale, opts ...BuildOption) (*Scenario, error) {
	const policy = `
policy webdefault priority 1 {
    route web1;
}
// Installed by a different controller app, unaware of the first:
policy scrubsuspects priority 20 {
    match src in 9.9.0.0/16;    // overlaps legitimate clients
    route scrubber;
}
`
	n := sdn.NewNetwork(applyBuildOptions(opts).networkOptions()...)
	for _, sw := range []string{"s1", "s2"} {
		if err := n.SwitchUp(sw); err != nil {
			return nil, err
		}
	}
	if err := n.AddPath("web1", "s1", "s2", "web1"); err != nil {
		return nil, err
	}
	if err := n.AddPath("scrubber", "s1", "s2", "scrubber"); err != nil {
		return nil, err
	}
	prog, err := netcore.Parse(policy)
	if err != nil {
		return nil, err
	}
	if err := prog.Install(n); err != nil {
		return nil, err
	}
	gen := trace.New(trace.Config{Seed: 12, DstSubnets: []ndlog.Prefix{ndlog.MustParsePrefix("10.0.0.80/32")}})
	for i := 0; i < backgroundPackets(scale); i++ {
		p := gen.Next()
		if _, err := n.InjectPacket("s1", sdn.Header{Src: p.Src, Dst: p.Dst, Proto: p.Proto}); err != nil {
			return nil, err
		}
	}
	good := sdn.Header{Src: ndlog.MustParseIP("8.8.1.1"), Dst: webIP, Proto: 6}
	bad := sdn.Header{Src: ndlog.MustParseIP("9.9.1.1"), Dst: webIP, Proto: 6} // legitimate client
	if _, err := n.InjectPacket("s1", good); err != nil {
		return nil, err
	}
	if _, err := n.InjectPacket("s1", bad); err != nil {
		return nil, err
	}
	s, err := sdnScenario(n, "web1", good, "scrubber", bad)
	if err != nil {
		return nil, err
	}
	s.Name = "SDN2"
	s.Description = "Multi-controller inconsistency: a conflicting higher-priority rule sends legitimate traffic to the scrubber"
	s.Check = func(r *core.Result) error {
		if len(r.Changes) != 1 {
			return fmt.Errorf("Δ = %v, want 1 change", r.Changes)
		}
		c := r.Changes[0]
		if c.Insert || c.Tuple.Table != "intent" {
			return fmt.Errorf("change = %v, want deletion of the conflicting intent", c)
		}
		if c.Tuple.Args[1] != ndlog.MustParsePrefix("9.9.0.0/16") {
			return fmt.Errorf("change = %s, want the scrubber app's intent", c.Tuple)
		}
		return nil
	}
	return s, nil
}

// SDN3 is the unexpected rule expiration: a multicast-style video intent
// expires and traffic falls back to a lower-priority rule toward the
// wrong host. The reference event is in the past.
func SDN3(scale Scale, opts ...BuildOption) (*Scenario, error) {
	n := sdn.NewNetwork(applyBuildOptions(opts).networkOptions()...)
	for _, sw := range []string{"s1", "s2"} {
		if err := n.SwitchUp(sw); err != nil {
			return nil, err
		}
	}
	if err := n.AddPath("video1", "s1", "s2", "video1"); err != nil {
		return nil, err
	}
	if err := n.AddPath("other", "s1", "s2", "other"); err != nil {
		return nil, err
	}
	videoSrc := ndlog.MustParsePrefix("7.7.0.0/16")
	if err := n.AddIntent(10, videoSrc, sdn.Any, "video1"); err != nil {
		return nil, err
	}
	if err := n.AddIntent(1, sdn.Any, sdn.Any, "other"); err != nil {
		return nil, err
	}
	gen := trace.New(trace.Config{Seed: 13, DstSubnets: []ndlog.Prefix{ndlog.MustParsePrefix("10.0.0.80/32")}})
	for i := 0; i < backgroundPackets(scale)/2; i++ {
		p := gen.Next()
		if _, err := n.InjectPacket("s1", sdn.Header{Src: p.Src, Dst: p.Dst, Proto: p.Proto}); err != nil {
			return nil, err
		}
	}
	good := sdn.Header{Src: ndlog.MustParseIP("7.7.1.1"), Dst: webIP, Proto: 17}
	bad := sdn.Header{Src: ndlog.MustParseIP("7.7.1.2"), Dst: webIP, Proto: 17}
	if _, err := n.InjectPacket("s1", good); err != nil {
		return nil, err
	}
	// The rule expires, well after the good packet has traversed...
	n.AdvanceTo(n.Tick() + 20)
	if err := n.RemoveIntent(10, videoSrc, sdn.Any, "video1"); err != nil {
		return nil, err
	}
	n.AdvanceTo(n.Tick() + 20)
	for i := 0; i < backgroundPackets(scale)/2; i++ {
		p := gen.Next()
		if _, err := n.InjectPacket("s1", sdn.Header{Src: p.Src, Dst: p.Dst, Proto: p.Proto}); err != nil {
			return nil, err
		}
	}
	// ... and later traffic is delivered to the wrong host.
	if _, err := n.InjectPacket("s1", bad); err != nil {
		return nil, err
	}
	s, err := sdnScenario(n, "video1", good, "other", bad)
	if err != nil {
		return nil, err
	}
	s.Name = "SDN3"
	s.Description = "Unexpected rule expiration: after the video intent expires, traffic is delivered to the wrong host (the reference is a past packet)"
	s.Check = func(r *core.Result) error {
		if len(r.Changes) != 1 {
			return fmt.Errorf("Δ = %v, want 1 change", r.Changes)
		}
		c := r.Changes[0]
		if !c.Insert || c.Tuple.Table != "intent" || c.Tuple.Args[3] != ndlog.Str("video1") {
			return fmt.Errorf("change = %v, want reinstating the expired video intent", c)
		}
		return nil
	}
	return s, nil
}

// SDN4 extends SDN1 with a larger topology and two faulty entries on
// consecutive hops; DiffProv proceeds in two rounds.
func SDN4(scale Scale, opts ...BuildOption) (*Scenario, error) {
	n, err := buildFigure1(strings.Replace(figure1Policy, "4.3.2.0/24", "4.3.2.0/23", 1), scale, applyBuildOptions(opts))
	if err != nil {
		return nil, err
	}
	// Two injected faults: hard-coded entries on the consecutive hops
	// s2 and s6 that hijack the bad packet's /24.
	badSrc := ndlog.MustParsePrefix("4.3.3.0/24")
	if err := n.AddStaticEntry("s2", 20, badSrc, sdn.Any, "s3"); err != nil {
		return nil, err
	}
	if err := n.AddStaticEntry("s6", 20, badSrc, sdn.Any, "s5"); err != nil {
		return nil, err
	}
	if _, err := n.InjectPacket("s1", goodHdr); err != nil {
		return nil, err
	}
	if _, err := n.InjectPacket("s1", badHdr); err != nil {
		return nil, err
	}
	s, err := sdnScenario(n, "web1", goodHdr, "web2", badHdr)
	if err != nil {
		return nil, err
	}
	s.Name = "SDN4"
	s.WantRounds = 2
	s.Description = "Multiple faulty entries on consecutive hops (s2, s6); DiffProv identifies them in two rounds"
	s.Check = func(r *core.Result) error {
		if len(r.Rounds) != 2 {
			return fmt.Errorf("rounds = %d, want 2", len(r.Rounds))
		}
		for i, round := range r.Rounds {
			if len(round.Changes) != 1 {
				return fmt.Errorf("round %d Δ = %v, want 1", i+1, round.Changes)
			}
			c := round.Changes[0]
			if c.Insert || c.Tuple.Table != "staticEntry" {
				return fmt.Errorf("round %d change = %v, want deletion of a faulty static entry", i+1, c)
			}
		}
		if r.Rounds[0].Changes[0].Node != "s2" || r.Rounds[1].Changes[0].Node != "s6" {
			return fmt.Errorf("faults fixed on %s then %s, want s2 then s6",
				r.Rounds[0].Changes[0].Node, r.Rounds[1].Changes[0].Node)
		}
		return nil
	}
	return s, nil
}
