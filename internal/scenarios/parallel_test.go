package scenarios_test

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/provenance"
	"repro/internal/scenarios"
)

// serializeResult renders everything DiffProv concluded — the change set,
// the per-round grouping, the iteration count, the seeds, and the final
// counterfactual world's full provenance graph — as a byte string, so two
// results can be compared for exact equality. Timings and Stats are
// deliberately excluded: they describe how the work was performed, not
// what was concluded.
func serializeResult(res *core.Result) string {
	var sb strings.Builder
	for _, c := range res.Changes {
		fmt.Fprintf(&sb, "change %s\n", c.String())
	}
	for i, r := range res.Rounds {
		for _, c := range r.Changes {
			fmt.Fprintf(&sb, "round %d %s\n", i, c.String())
		}
	}
	fmt.Fprintf(&sb, "iterations %d\n", res.Iterations)
	fmt.Fprintf(&sb, "goodSeed %s %s @%d.%d\n", res.GoodSeed.Node, res.GoodSeed.Tuple.Key(), res.GoodSeed.Stamp.T, res.GoodSeed.Stamp.Seq)
	fmt.Fprintf(&sb, "badSeed %s %s @%d.%d\n", res.BadSeed.Node, res.BadSeed.Tuple.Key(), res.BadSeed.Stamp.T, res.BadSeed.Stamp.Seq)
	if res.FinalWorld != nil {
		res.FinalWorld.Graph().Vertexes(func(v *provenance.Vertex) {
			fmt.Fprintf(&sb, "%d %s trig=%d kids=%v\n", v.ID, v.String(), v.Trigger, v.Children)
		})
	}
	return sb.String()
}

// replayable returns the Table 1 scenarios whose worlds are backed by a
// replay session (the imperative MapReduce variants re-run jobs and fall
// back to sequential evaluation by construction).
func replayable(t *testing.T) []*scenarios.Scenario {
	t.Helper()
	var out []*scenarios.Scenario
	for _, name := range scenarios.Names() {
		s, err := scenarios.Build(name, scenarios.Small)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.BadSession == nil {
			continue
		}
		out = append(out, s)
	}
	return out
}

// TestParallelDifferential proves the tentpole's determinism claim: for
// every replayable Table 1 scenario, Diagnose returns byte-identical
// results with parallel candidate evaluation on or off and with the
// fingerprint fast paths on or off.
func TestParallelDifferential(t *testing.T) {
	ctx := context.Background()
	for _, s := range replayable(t) {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			configs := []struct {
				name string
				opts core.Options
			}{
				{"sequential", core.Options{Parallelism: -1, Minimize: true}},
				{"parallel8", core.Options{Parallelism: 8, Minimize: true}},
				{"sequential-nofp", core.Options{Parallelism: -1, Minimize: true, DisableFingerprints: true}},
				{"parallel8-nofp", core.Options{Parallelism: 8, Minimize: true, DisableFingerprints: true}},
			}
			var baseline string
			for i, cfg := range configs {
				iso, err := s.Isolated()
				if err != nil {
					t.Fatalf("%s: Isolated: %v", cfg.name, err)
				}
				res, err := iso.DiagnoseOptions(ctx, cfg.opts)
				if err != nil {
					t.Fatalf("%s: Diagnose: %v", cfg.name, err)
				}
				if i == 0 {
					baseline = serializeResult(res)
					if err := s.Check(res); err != nil {
						t.Fatalf("%s: diagnosis check: %v", cfg.name, err)
					}
					continue
				}
				if got := serializeResult(res); got != baseline {
					t.Errorf("%s: result diverges from sequential baseline:\n--- baseline ---\n%s\n--- %s ---\n%s",
						cfg.name, baseline, cfg.name, got)
				}
			}
		})
	}
}

// TestParallelAutoDiagnoseDifferential proves the same for the automatic
// reference search: the parallel candidate scan picks the same reference
// and produces the same result as the sequential scan — or fails with the
// same error.
func TestParallelAutoDiagnoseDifferential(t *testing.T) {
	ctx := context.Background()
	for _, s := range replayable(t) {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			type outcome struct {
				res *core.Result
				ref string
				err error
			}
			run := func(par int) outcome {
				iso, err := s.Isolated()
				if err != nil {
					t.Fatalf("Isolated: %v", err)
				}
				res, ref, err := core.AutoDiagnose(ctx, iso.Bad, iso.World, core.Options{Parallelism: par, Minimize: true})
				o := outcome{res: res, err: err}
				if ref != nil {
					o.ref = ref.Vertex.Node + " " + ref.Vertex.Tuple.Key()
				}
				return o
			}
			seq, par := run(-1), run(8)
			if (seq.err == nil) != (par.err == nil) {
				t.Fatalf("sequential err = %v, parallel err = %v", seq.err, par.err)
			}
			if seq.err != nil {
				if seq.err.Error() != par.err.Error() {
					t.Fatalf("error diverges:\nsequential: %v\nparallel:   %v", seq.err, par.err)
				}
				return
			}
			if seq.ref != par.ref {
				t.Fatalf("reference diverges: sequential %q, parallel %q", seq.ref, par.ref)
			}
			if a, b := serializeResult(seq.res), serializeResult(par.res); a != b {
				t.Errorf("result diverges:\n--- sequential ---\n%s\n--- parallel ---\n%s", a, b)
			}
		})
	}
}

// TestParallelDiagnoseStress drives 16 concurrent diagnoses, each with
// 8-way candidate parallelism, through session clones that share one
// prefix cache — the race surface the -race runs of CI exercise.
func TestParallelDiagnoseStress(t *testing.T) {
	s, err := scenarios.Build("SDN1", scenarios.Small)
	if err != nil {
		t.Fatal(err)
	}
	base, err := s.DiagnoseOptions(context.Background(), core.Options{Parallelism: -1, Minimize: true})
	if err != nil {
		t.Fatal(err)
	}
	want := serializeResult(base)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			iso, err := s.Isolated()
			if err != nil {
				errs <- err
				return
			}
			res, err := iso.DiagnoseOptions(context.Background(), core.Options{Parallelism: 8, Minimize: true})
			if err != nil {
				errs <- err
				return
			}
			if got := serializeResult(res); got != want {
				errs <- fmt.Errorf("concurrent result diverges from baseline")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
