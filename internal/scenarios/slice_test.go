package scenarios_test

import (
	"context"
	"testing"

	"repro/internal/core"
)

// TestSliceDifferential proves the slicing soundness claim: for every
// replayable Table 1 scenario, Diagnose returns byte-identical results
// with static candidate slicing enabled (the default) and disabled, both
// sequentially and with 8-way candidate parallelism. Slicing may only
// change how many counterfactual replays run — never what is concluded.
func TestSliceDifferential(t *testing.T) {
	ctx := context.Background()
	for _, s := range replayable(t) {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			configs := []struct {
				name string
				opts core.Options
			}{
				{"sequential", core.Options{Parallelism: -1, Minimize: true}},
				{"sequential-noslice", core.Options{Parallelism: -1, Minimize: true, DisableSlicing: true}},
				{"parallel8", core.Options{Parallelism: 8, Minimize: true}},
				{"parallel8-noslice", core.Options{Parallelism: 8, Minimize: true, DisableSlicing: true}},
			}
			var baseline string
			for i, cfg := range configs {
				iso, err := s.Isolated()
				if err != nil {
					t.Fatalf("%s: Isolated: %v", cfg.name, err)
				}
				res, err := iso.DiagnoseOptions(ctx, cfg.opts)
				if err != nil {
					t.Fatalf("%s: Diagnose: %v", cfg.name, err)
				}
				if cfg.opts.DisableSlicing && res.Stats.CandidatesSliced != 0 {
					t.Errorf("%s: CandidatesSliced = %d with slicing disabled", cfg.name, res.Stats.CandidatesSliced)
				}
				if i == 0 {
					baseline = serializeResult(res)
					if err := s.Check(res); err != nil {
						t.Fatalf("%s: diagnosis check: %v", cfg.name, err)
					}
					continue
				}
				if got := serializeResult(res); got != baseline {
					t.Errorf("%s: result diverges from sequential baseline:\n--- baseline ---\n%s\n--- %s ---\n%s",
						cfg.name, baseline, cfg.name, got)
				}
			}
		})
	}
}
