package scenarios

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/ndlog"
	"repro/internal/replay"
	"repro/internal/treediff"
)

// Table1Row reproduces one row block of the paper's Table 1: the number
// of vertexes returned by each diagnostic technique.
type Table1Row struct {
	Scenario  string
	GoodTree  int   // vertexes in T_G
	BadTree   int   // vertexes in T_B
	PlainDiff int   // vertexes in the naive tree diff (§2.5 strawman)
	DiffProv  []int // vertexes returned by DiffProv, per round
	Rounds    int
}

// DiffProvTotal sums the per-round counts.
func (r Table1Row) DiffProvTotal() int {
	n := 0
	for _, v := range r.DiffProv {
		n += v
	}
	return n
}

func (r Table1Row) String() string {
	per := make([]string, len(r.DiffProv))
	for i, v := range r.DiffProv {
		per[i] = fmt.Sprintf("%d", v)
	}
	return fmt.Sprintf("%-6s good=%-5d bad=%-5d plaindiff=%-5d diffprov=%s",
		r.Scenario, r.GoodTree, r.BadTree, r.PlainDiff, strings.Join(per, "/"))
}

// Run executes the scenario's diagnosis and assembles its Table 1 row.
func (s *Scenario) Run() (Table1Row, *core.Result, error) {
	row := Table1Row{
		Scenario:  s.Name,
		GoodTree:  s.Good.Size(),
		BadTree:   s.Bad.Size(),
		PlainDiff: treediff.PlainDiff(s.Good, s.Bad),
	}
	res, err := s.Diagnose()
	if err != nil {
		return row, nil, err
	}
	if s.Check != nil {
		if err := s.Check(res); err != nil {
			return row, res, fmt.Errorf("%s: wrong root cause: %v", s.Name, err)
		}
	}
	row.Rounds = len(res.Rounds)
	for _, round := range res.Rounds {
		row.DiffProv = append(row.DiffProv, deltaVertexes(s.World, round.Changes))
	}
	return row, res, nil
}

// deltaVertexes counts the vertexes DiffProv returns for a set of
// changes, as Table 1 does: one per inserted or deleted tuple, plus one
// for the old value when an insertion into a keyed table replaces an
// existing tuple (the paper reports two vertexes for the MR scenarios:
// the old and new configuration/code values).
func deltaVertexes(w core.World, changes []replay.Change) int {
	prog := w.Program()
	n := 0
	seen := map[string]bool{}
	for _, c := range changes {
		k := fmt.Sprintf("%v|%s|%s", c.Insert, c.Node, c.Tuple.Key())
		if seen[k] {
			continue
		}
		seen[k] = true
		n++
		if !c.Insert {
			continue
		}
		decl := prog.Decl(c.Tuple.Table)
		if decl == nil || len(decl.Key) == 0 {
			continue
		}
		// Replaced counterpart: same primary key, different tuple.
		for _, t := range w.TuplesAt(c.Node, c.Tuple.Table, ndlog.Stamp{T: c.Tick, Seq: ^uint64(0)}) {
			if t.Key() != c.Tuple.Key() && samePrimaryKey(decl, t, c.Tuple) {
				n++
				break
			}
		}
	}
	return n
}

func samePrimaryKey(decl *ndlog.TableDecl, a, b ndlog.Tuple) bool {
	for _, i := range decl.Key {
		if i < len(a.Args) && i < len(b.Args) && a.Args[i] != b.Args[i] {
			return false
		}
	}
	return true
}

// Table1 runs every scenario at the given scale and returns the rows in
// the paper's order.
func Table1(scale Scale) ([]Table1Row, error) {
	all, err := All(scale)
	if err != nil {
		return nil, err
	}
	var rows []Table1Row
	for _, s := range all {
		row, _, err := s.Run()
		if err != nil {
			return nil, fmt.Errorf("%s: %v", s.Name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
