package scenarios

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/replay"
)

// TestScenarioStorageDifferential: an SDN scenario built over a
// persistent store must diagnose identically to the in-memory build —
// sequentially and with parallel candidate evaluation — and a rebuild
// over the same directory (the daemon-restart path) must recover by
// re-driving the deterministic build against the stored prefix and
// still produce the same diagnosis.
func TestScenarioStorageDifferential(t *testing.T) {
	mem, err := SDN1(Small)
	if err != nil {
		t.Fatal(err)
	}
	memRes, err := mem.Diagnose()
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.Check(memRes); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	stored, err := SDN1(Small, WithSessionOptions(replay.WithCheckpointEvery(25), replay.WithStorage(dir)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mem.BadSession.Log().Events(), stored.BadSession.Log().Events()) {
		t.Fatal("storage-backed scenario recorded a different log")
	}
	for _, par := range []int{1, 8} {
		res, err := stored.DiagnoseOptions(context.Background(), core.Options{Parallelism: par})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if err := stored.Check(res); err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if !reflect.DeepEqual(memRes.Changes, res.Changes) {
			t.Fatalf("parallelism %d: Δ differs from in-memory: %v vs %v", par, res.Changes, memRes.Changes)
		}
	}
	if err := stored.BadSession.CloseStorage(); err != nil {
		t.Fatal(err)
	}

	// Restart: rebuilding over the same directory re-drives the
	// deterministic build; the events verify against the stored prefix
	// instead of appending again.
	segsBefore, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil || len(segsBefore) == 0 {
		t.Fatalf("no segments persisted: %v", err)
	}
	recovered, err := SDN1(Small, WithSessionOptions(replay.WithCheckpointEvery(25), replay.WithStorage(dir)))
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.BadSession.CloseStorage()
	if got, want := recovered.BadSession.Storage().Len(), stored.BadSession.Log().Len(); got != want {
		t.Fatalf("rebuild appended: store holds %d events, want %d", got, want)
	}
	for _, par := range []int{1, 8} {
		res, err := recovered.DiagnoseOptions(context.Background(), core.Options{Parallelism: par})
		if err != nil {
			t.Fatalf("recovered, parallelism %d: %v", par, err)
		}
		if !reflect.DeepEqual(memRes.Changes, res.Changes) {
			t.Fatalf("recovered, parallelism %d: Δ differs: %v vs %v", par, res.Changes, memRes.Changes)
		}
	}
}

// TestScenarioStorageCrashRecovery: a torn segment tail (crash without
// close) must not stop the rebuild from recovering and diagnosing
// identically.
func TestScenarioStorageCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	first, err := SDN1(Small, WithSessionOptions(replay.WithStorage(dir)))
	if err != nil {
		t.Fatal(err)
	}
	wantLen := first.BadSession.Log().Len()
	if err := first.BadSession.SyncStorage(); err != nil {
		t.Fatal(err)
	}
	// Crash: no CloseStorage. Tear the active segment's tail.
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments persisted: %v", err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x1f, 0x03}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	second, err := SDN1(Small, WithSessionOptions(replay.WithStorage(dir)))
	if err != nil {
		t.Fatal(err)
	}
	defer second.BadSession.CloseStorage()
	if got := second.BadSession.Log().Len(); got != wantLen {
		t.Fatalf("recovered build has %d events, want %d", got, wantLen)
	}
	res, err := second.Diagnose()
	if err != nil {
		t.Fatal(err)
	}
	if err := second.Check(res); err != nil {
		t.Fatal(err)
	}
}
