package scenarios

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mapreduce"
	"repro/internal/ndlog"
)

// corpusFor generates a deterministic text corpus; the Paper scale
// produces trees of the same order as the paper's MR trees (~1000
// vertexes for the declarative variant).
func corpusFor(scale Scale) *mapreduce.InputFile {
	lines := 12
	if scale == Paper {
		lines = 60
	}
	words := []string{"the", "quick", "brown", "fox", "jumps", "over", "lazy", "dog",
		"a", "stream", "of", "words", "flows", "into", "reducers"}
	f := &mapreduce.InputFile{Name: "wikipedia-sample.txt"}
	state := uint64(1234567)
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := 0; i < lines; i++ {
		n := 5 + int(next()%5)
		line := make([]string, n)
		line[0] = "the" // every line starts with "the": MR2's victim word
		for j := 1; j < n; j++ {
			line[j] = words[int(next()%uint64(len(words)))]
		}
		f.Lines = append(f.Lines, line)
	}
	return f
}

// diagWord picks the most frequent word whose final count moved between
// reducers (a frequent word gives trees of the paper's size).
func diagWord(good, bad *mapreduce.Cluster, f *mapreduce.InputFile) (string, error) {
	counts := f.ExpectedCounts()
	best, bestCount := "", 0
	for _, w := range f.Vocabulary() {
		gr, _, err1 := good.CountTuple("goodjob", w)
		br, _, err2 := bad.CountTuple("badjob", w)
		if err1 == nil && err2 == nil && gr != br && counts[w] > bestCount {
			best, bestCount = w, counts[w]
		}
	}
	if best == "" {
		return "", fmt.Errorf("scenarios: no word moved between reducers")
	}
	return best, nil
}

func checkConfigChange(r *core.Result) error {
	if len(r.Changes) != 1 {
		return fmt.Errorf("Δ = %v, want 1 change", r.Changes)
	}
	c := r.Changes[0]
	if c.Tuple.Table != "jobConfig" || c.Tuple.Args[0] != ndlog.Str(mapreduce.ConfigReduces) {
		return fmt.Errorf("change = %v, want %s", c, mapreduce.ConfigReduces)
	}
	if c.Tuple.Args[1] != ndlog.Int(4) {
		return fmt.Errorf("change = %v, want the reference value 4", c)
	}
	return nil
}

func checkCodeChange(r *core.Result) error {
	if len(r.Changes) != 1 {
		return fmt.Errorf("Δ = %v, want 1 change", r.Changes)
	}
	c := r.Changes[0]
	if c.Tuple.Table != "mapperCode" {
		return fmt.Errorf("change = %v, want the mapper code version", c)
	}
	if c.Tuple.Args[1] != mapreduce.GoodMapper {
		return fmt.Errorf("change = %v, want the reference bytecode checksum", c)
	}
	return nil
}

// MR1D is the configuration-change scenario on the declarative runtime:
// mapreduce.job.reduces silently changed from 4 to 2.
func MR1D(scale Scale) (*Scenario, error) {
	f := corpusFor(scale)
	good, err := mapreduce.NewCluster(2, 4, mapreduce.GoodMapper)
	if err != nil {
		return nil, err
	}
	if err := good.RunJob("goodjob", f); err != nil {
		return nil, err
	}
	bad, err := mapreduce.NewCluster(2, 2, mapreduce.GoodMapper)
	if err != nil {
		return nil, err
	}
	if err := bad.RunJob("badjob", f); err != nil {
		return nil, err
	}
	word, err := diagWord(good, bad, f)
	if err != nil {
		return nil, err
	}
	gt, err := good.CountTree("goodjob", word)
	if err != nil {
		return nil, err
	}
	bt, err := bad.CountTree("badjob", word)
	if err != nil {
		return nil, err
	}
	world, err := core.NewWorld(bad.Session())
	if err != nil {
		return nil, err
	}
	return &Scenario{
		Name:        "MR1-D",
		Description: "Configuration change (declarative): the number of reducers changed, so words land on different reducers",
		Good:        gt, Bad: bt, World: world, BadSession: bad.Session(),
		WantRounds: 2, // the reference tick is refined in a second round
		Check:      checkConfigChange,
	}, nil
}

// MR2D is the code-change scenario on the declarative runtime: the new
// mapper version omits the first word of each line.
func MR2D(scale Scale) (*Scenario, error) {
	f := corpusFor(scale)
	good, err := mapreduce.NewCluster(2, 4, mapreduce.GoodMapper)
	if err != nil {
		return nil, err
	}
	if err := good.RunJob("goodjob", f); err != nil {
		return nil, err
	}
	bad, err := mapreduce.NewCluster(2, 4, mapreduce.BuggyMapper)
	if err != nil {
		return nil, err
	}
	if err := bad.RunJob("badjob", f); err != nil {
		return nil, err
	}
	gt, err := good.CountTree("goodjob", "the")
	if err != nil {
		return nil, err
	}
	bt, err := bad.CountTree("badjob", "the")
	if err != nil {
		return nil, err
	}
	world, err := core.NewWorld(bad.Session())
	if err != nil {
		return nil, err
	}
	return &Scenario{
		Name:        "MR2-D",
		Description: "Code change (declarative): the new mapper omits the first word of each line",
		Good:        gt, Bad: bt, World: world, BadSession: bad.Session(),
		WantRounds: 1,
		Check:      checkCodeChange,
	}, nil
}

// MR1I is the configuration-change scenario on the instrumented
// imperative pipeline.
func MR1I(scale Scale) (*Scenario, error) {
	f := corpusFor(scale)
	goodEx, err := mapreduce.NewJob("goodjob", f, 2, 4, mapreduce.GoodMapper).Run()
	if err != nil {
		return nil, err
	}
	badEx, err := mapreduce.NewJob("badjob", f, 2, 2, mapreduce.GoodMapper).Run()
	if err != nil {
		return nil, err
	}
	counts := f.ExpectedCounts()
	word, bestCount := "", 0
	for _, w := range f.Vocabulary() {
		ga, ok1 := goodEx.CountAt(w)
		ba, ok2 := badEx.CountAt(w)
		if ok1 && ok2 && ga.Node != ba.Node && counts[w] > bestCount {
			word, bestCount = w, counts[w]
		}
	}
	if word == "" {
		return nil, fmt.Errorf("scenarios: no word moved between reducers")
	}
	gt, err := goodEx.CountTree(word)
	if err != nil {
		return nil, err
	}
	bt, err := badEx.CountTree(word)
	if err != nil {
		return nil, err
	}
	return &Scenario{
		Name:        "MR1-I",
		Description: "Configuration change (instrumented Hadoop): provenance reported at key-value granularity",
		Good:        gt, Bad: bt, World: badEx.World(),
		WantRounds: 1,
		Check:      checkConfigChange,
	}, nil
}

// MR2I is the code-change scenario on the instrumented imperative
// pipeline; DiffProv pinpoints the bytecode checksum.
func MR2I(scale Scale) (*Scenario, error) {
	f := corpusFor(scale)
	goodEx, err := mapreduce.NewJob("goodjob", f, 2, 4, mapreduce.GoodMapper).Run()
	if err != nil {
		return nil, err
	}
	badEx, err := mapreduce.NewJob("badjob", f, 2, 4, mapreduce.BuggyMapper).Run()
	if err != nil {
		return nil, err
	}
	gt, err := goodEx.CountTree("the")
	if err != nil {
		return nil, err
	}
	bt, err := badEx.CountTree("the")
	if err != nil {
		return nil, err
	}
	return &Scenario{
		Name:        "MR2-I",
		Description: "Code change (instrumented Hadoop): the root cause is the mapper's bytecode checksum",
		Good:        gt, Bad: bt, World: badEx.World(),
		WantRounds: 1,
		Check:      checkCodeChange,
	}, nil
}
