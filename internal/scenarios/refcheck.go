package scenarios

import (
	"context"

	"fmt"

	"repro/internal/core"
	"repro/internal/provenance"
)

// RefCheckResult summarizes one unsuitable-reference query (§6.3: "we
// issued ten additional queries ... for which we picked a reference
// event at random. As expected, DiffProv failed with an error message in
// all cases").
type RefCheckResult struct {
	Scenario  string
	Reference string
	Kind      core.FailureKind
	Message   string
}

// RandomReferenceChecks runs unsuitable-reference queries against SDN1
// and MR1-D: references are picked from other tuple appearances in the
// same execution (configuration state, other packets at other ingress
// points), and every query must fail with a diagnostic error.
func RandomReferenceChecks(scale Scale, perScenario int) ([]RefCheckResult, error) {
	var out []RefCheckResult
	for _, name := range []string{"SDN1", "MR1-D"} {
		s, err := Build(name, scale)
		if err != nil {
			return nil, err
		}
		refs, err := unsuitableReferences(s, perScenario)
		if err != nil {
			return nil, err
		}
		for _, ref := range refs {
			_, derr := core.Diagnose(context.Background(), ref, s.Bad, s.World, core.Options{})
			if derr == nil {
				return nil, fmt.Errorf("%s: diagnosis with unsuitable reference %s unexpectedly succeeded",
					name, ref.Vertex)
			}
			de, ok := derr.(*core.DiagnosisError)
			if !ok {
				return nil, fmt.Errorf("%s: unexpected error type: %v", name, derr)
			}
			out = append(out, RefCheckResult{
				Scenario:  name,
				Reference: ref.Vertex.Label(),
				Kind:      de.Kind,
				Message:   de.Error(),
			})
		}
	}
	return out, nil
}

// unsuitableReferences picks reference trees that are known to be wrong:
// trees rooted at configuration-state appearances (seed type mismatch)
// and, where available, trees of events whose alignment would require
// immutable changes.
func unsuitableReferences(s *Scenario, n int) ([]*provenance.Tree, error) {
	g := s.World.Graph()
	badSeedTable := ""
	if seed, err := s.Bad.FindSeed(); err == nil {
		badSeedTable = seed.Vertex.Tuple.Table
	}
	var refs []*provenance.Tree
	// Walk appearances and pick ones that make bad references: state
	// tuples (different seed type) are always unsuitable.
	g.Vertexes(func(v *provenance.Vertex) {
		if len(refs) >= n || v.Type != provenance.Appear {
			return
		}
		if v.Tuple.Table == badSeedTable {
			return // might be a legitimate reference; skip
		}
		decl := s.World.Program().Decl(v.Tuple.Table)
		if decl == nil || decl.Event {
			return
		}
		if len(refs) > 0 && refs[len(refs)-1].Vertex.Tuple.Table == v.Tuple.Table {
			return // diversify
		}
		refs = append(refs, g.Tree(v.ID))
	})
	if len(refs) == 0 {
		return nil, fmt.Errorf("scenarios: no unsuitable references found for %s", s.Name)
	}
	return refs, nil
}
