package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/ndlog"
	"repro/internal/provenance"
	"repro/internal/replay"
)

// endOfExecution is the deadline for aggregate contributions: far past
// any logical tick a workload uses.
const endOfExecution = int64(1) << 40

// divergence describes the first point at which the bad execution departs
// from the good one (§4.4): the good-tree derivation that has no
// equivalent in the bad world.
type divergence struct {
	level    gLevel      // the good derivation with no bad equivalent
	expected ndlog.At    // the tuple that ought to exist in the bad world
	trigger  ndlog.At    // the aligned bad-world trigger at this level
	asOf     ndlog.Stamp // the bad-world time at which it is needed
}

// endOfTick is a stamp covering everything that happened within a tick.
func endOfTick(t int64) ndlog.Stamp {
	return ndlog.Stamp{T: t, Seq: ^uint64(0)}
}

// firstDivergence walks the good chain from the seed upward, predicting
// the equivalent bad-world tuple at each level and checking it against
// the bad execution's actual derivations. It returns nil when the chains
// align all the way to the root (the trees are equivalent).
func (d *diag) firstDivergence(chainG []gLevel, w World, seedB ndlog.At) (*divergence, error) {
	g := w.Graph()

	// Locate the bad seed's APPEAR in the (possibly updated) bad graph:
	// prefer the appearance at the original tick, but fall back to the
	// latest one (counterfactual re-runs of instrumented systems may
	// shift event times).
	curID := -1
	appears := g.AppearVertexes(seedB.Node, seedB.Tuple)
	for _, id := range appears {
		if g.Vertex(id).At.T == seedB.Stamp.T {
			curID = id
			break
		}
	}
	if curID < 0 && len(appears) > 0 {
		curID = appears[len(appears)-1]
	}
	if curID < 0 {
		return nil, failf(NoProgress, "bad seed %s vanished from the bad execution", seedB.Tuple)
	}
	cur := ndlog.At{Node: seedB.Node, Tuple: seedB.Tuple, Stamp: g.Vertex(curID).At}

	for _, lvl := range chainG {
		rule := d.prog.Rule(lvl.derive.Vertex.Rule)
		if rule == nil {
			return nil, failf(NoProgress, "rule %s of the good tree is not in the program", lvl.derive.Vertex.Rule)
		}
		trigIdx := triggerAtomIndex(rule, lvl.derive)

		// The forward prediction is a pure function of the good derive
		// subtree, the trigger index, the head occurrence, and the bad
		// cursor's node and tuple — never of timestamps or the bad world —
		// so it memoizes under a fingerprint key across rounds, minimize
		// trials, and concurrent pool workers (the equal-subtree fast
		// path: an identical good subtree is never re-solved).
		var expected ndlog.At
		var key alignKey
		hit := false
		if d.align != nil {
			key = alignKey{
				deriveFP: lvl.derive.Fingerprint(),
				trigIdx:  trigIdx,
				headNode: lvl.headAt.Node,
				headKey:  lvl.headAt.Tuple.Key(),
				curNode:  cur.Node,
				curKey:   cur.Tuple.Key(),
			}
			d.alignMu.Lock()
			expected, hit = d.align[key]
			d.alignMu.Unlock()
		}
		if hit {
			atomic.AddInt64(&d.stats.FingerprintHits, 1)
		} else {
			var err error
			expected, err = d.expectedAtLevel(lvl, rule, trigIdx, w, cur)
			if err != nil {
				return nil, err
			}
			if d.align != nil {
				d.alignMu.Lock()
				d.align[key] = expected
				d.alignMu.Unlock()
			}
		}

		// Does the bad execution actually derive the expected tuple from
		// the current trigger via the same rule?
		match := -1
		if rule.CountVar != "" {
			// Aggregate level: the cursor is one contribution of the
			// group (the group fields were bound from it); the tree is
			// aligned here iff the group's FINAL count matches the
			// expectation, regardless of which contribution happened to
			// trigger the final derivation.
			if final, ok := finalAggTuple(w, rule, expected); ok && final.Equal(expected.Tuple) {
				if fa := g.LastAppear(expected.Node, final); fa != nil {
					match = fa.ID
				}
			}
		} else {
			cands := g.TriggerParents(curID)
			if ex := g.ExistOf(curID); ex >= 0 {
				cands = append(cands, g.TriggerParents(ex)...)
			}
			for _, pid := range cands {
				pv := g.Vertex(pid)
				if pv.Rule != rule.Name || !pv.Tuple.Equal(expected.Tuple) {
					continue
				}
				ha := g.HeadAppear(pid)
				if ha < 0 || g.Vertex(ha).Node != expected.Node {
					continue
				}
				// The graph is append-only, so a derivation the
				// counterfactual phase erased (delta replay: the timely run
				// with the changes applied would never have fired it) still
				// has its vertexes; the world's history is the authority on
				// whether the head occurrence still happened.
				hv := g.Vertex(ha)
				if !w.Exists(hv.Node, hv.Tuple, hv.At) {
					continue
				}
				match = ha
				break
			}
		}
		if match < 0 {
			return &divergence{level: lvl, expected: expected, trigger: cur, asOf: endOfTick(cur.Stamp.T)}, nil
		}
		hv := g.Vertex(match)
		curID = match
		cur = ndlog.At{Node: hv.Node, Tuple: hv.Tuple, Stamp: hv.At}
	}
	return nil, nil
}

// alignKey identifies one §4.4 forward-prediction instance. The good
// derive subtree is named by its structural fingerprint, which covers the
// rule name and every body occurrence's node and tuple; the trigger atom
// index and the head occurrence are properties of the derive's position
// in the chain (not covered by its own fingerprint), and the cursor is
// the bad-world trigger the prediction binds from. Stamps are deliberately
// absent: the solver never reads them, which is what lets predictions
// memoize across minimize trials whose injected changes shift stamps.
type alignKey struct {
	deriveFP uint64
	trigIdx  int
	headNode string
	headKey  string
	curNode  string
	curKey   string
}

// expectedAtLevel runs the §4.4 forward prediction for one chain level:
// the head occurrence the bad world should derive from cur via the good
// derivation's rule, with side variables defaulted to good values.
func (d *diag) expectedAtLevel(lvl gLevel, rule *ndlog.Rule, trigIdx int, w World, cur ndlog.At) (ndlog.At, error) {
	children, err := gChildrenOf(lvl.derive)
	if err != nil {
		return ndlog.At{}, err
	}
	s, err := newSolver(d.prog, rule, childAts(children))
	if err != nil {
		return ndlog.At{}, failf(NoProgress, "%v", err)
	}
	if err := s.bindTrigger(trigIdx, cur); err != nil {
		return ndlog.At{}, failf(NoProgress, "%v", err)
	}
	if rule.CountVar != "" {
		// Aggregate level: the expected count is the good count.
		if cv, ok := headCountValue(rule, lvl.headAt.Tuple); ok {
			s.bind(rule.CountVar, cv, fromDefault)
		}
	}
	s.propagate(nil) // forward mode: defaults side variables to good values
	if d.opts.FollowKeyedRows {
		s.followKeyedRows(w, d.prog, trigIdx, true, cur.Stamp.T)
	}
	return s.expectedHead(cur.Node)
}

// triggerAtomIndex maps a DERIVE vertex's trigger back to the rule's body
// atom index. For aggregates the single body atom is always the trigger.
func triggerAtomIndex(rule *ndlog.Rule, dn *provenance.Tree) int {
	if rule.CountVar != "" {
		return 0
	}
	if t := dn.Vertex.Trigger; t >= 0 && t < len(rule.Body) {
		return t
	}
	return 0
}

// groupFieldsEqual compares two aggregate head tuples ignoring the count
// argument positions.
func groupFieldsEqual(rule *ndlog.Rule, a, b ndlog.Tuple) bool {
	if a.Table != b.Table || len(a.Args) != len(b.Args) {
		return false
	}
	for j := range a.Args {
		if j < len(rule.Head.Args) && isVar(rule.Head.Args[j], rule.CountVar) {
			continue
		}
		if a.Args[j] != b.Args[j] {
			return false
		}
	}
	return true
}

// finalAggTuple finds the group's current (final) count tuple in the bad
// world's live state. The non-count group columns are bound by the
// expected tuple, so the lookup probes the aggregate-group hash index
// registered for every counting rule's head table.
func finalAggTuple(w World, rule *ndlog.Rule, expected ndlog.At) (ndlog.Tuple, bool) {
	var match []ndlog.Match
	for j := range expected.Tuple.Args {
		if j < len(rule.Head.Args) && isVar(rule.Head.Args[j], rule.CountVar) {
			continue
		}
		match = append(match, ndlog.Match{Col: j, Val: expected.Tuple.Args[j]})
	}
	for _, t := range w.TuplesMatchingAt(expected.Node, expected.Tuple.Table, endOfTick(endOfExecution), match) {
		if groupFieldsEqual(rule, t, expected.Tuple) {
			return t, true
		}
	}
	return ndlog.Tuple{}, false
}

// headCountValue extracts the aggregate count from a good head tuple.
func headCountValue(rule *ndlog.Rule, head ndlog.Tuple) (ndlog.Value, bool) {
	for j, e := range rule.Head.Args {
		if isVar(e, rule.CountVar) && j < len(head.Args) {
			return head.Args[j], true
		}
	}
	return nil, false
}

// makeAppear implements §4.5: make the expected tuple appear in the bad
// world, using the good derivation as a guide. trigB, when non-nil, is
// the already-aligned bad-world trigger at this level. needBy is the
// bad-world tick by which the expected tuple must exist; it is refined
// down the recursion so that counterfactual changes are injected
// "shortly before they are needed for the first time" (§4.8). Changes
// accumulate in d.pending.
func (d *diag) makeAppear(w World, gDerive *provenance.Tree, expected ndlog.At, trigB *ndlog.At, needBy int64, depth int) error {
	if depth > d.opts.MaxDepth {
		return failf(NoProgress, "MAKEAPPEAR recursion exceeds %d levels", d.opts.MaxDepth)
	}
	rule := d.prog.Rule(gDerive.Vertex.Rule)
	if rule == nil {
		return failf(NoProgress, "rule %s is not in the program", gDerive.Vertex.Rule)
	}
	children, err := gChildrenOf(gDerive)
	if err != nil {
		return err
	}
	s, err := newSolver(d.prog, rule, childAts(children))
	if err != nil {
		return failf(NoProgress, "%v", err)
	}
	if rule.CountVar != "" {
		// Aggregates bind only the group variables (from the expected
		// head); contributor-specific fields vary per contributor and
		// must not leak in from the trigger. Contributions may arrive
		// any time before the count is observed, so the deadline is the
		// end of the execution, not the trigger's occurrence; the
		// per-contributor recursion re-pins times from event triggers.
		if cv, ok := headCountValue(rule, expected.Tuple); ok {
			s.bind(rule.CountVar, cv, fromHead)
		}
		return d.makeAggregateAppear(w, rule, children, s, expected, endOfExecution, depth)
	}
	trigIdx := triggerAtomIndex(rule, gDerive)
	if trigB != nil {
		if err := s.bindTrigger(trigIdx, *trigB); err != nil {
			return failf(NoProgress, "%v", err)
		}
		if trigB.Stamp.T < needBy {
			needBy = trigB.Stamp.T
		}
	}
	if err := s.bindHead(expected); err != nil {
		return err
	}
	s.propagate(&expected)

	// Refine the needed time: when the expected derivation is triggered
	// by an event, it can only fire at that event's occurrence, so the
	// other preconditions must be in place by then. (State triggers do
	// not pin a time: the derivation may fire whenever its inputs are
	// all present, up to the parent's deadline.)
	if trigB == nil {
		if decl := d.prog.Decl(rule.Body[trigIdx].Table); decl != nil && decl.Event {
			if ts, terr := s.sideTuple(trigIdx); terr == nil {
				if occ, ok := w.FirstOccurrence(ts.Node, ts.Tuple, needBy); ok && occ < needBy {
					needBy = occ
				}
			}
		}
	}

	// §4.5: "the tuple may exist even if it is not currently part of
	// T_B" — for side atoms whose variables were merely defaulted from
	// the good execution, prefer an existing bad-world tuple that
	// satisfies the rule over inventing a change.
	d.adoptExistingSides(w, rule, s, trigB, trigIdx, expected, needBy)

	if _, err := s.verify(expected); err != nil {
		if de, ok := err.(*DiagnosisError); ok {
			de.Tuple = expected.Tuple
			de.Node = expected.Node
		}
		return err
	}

	// Ensure every precondition of the expected derivation holds in the
	// bad world, recursing through the good tree for missing ones.
	pendingBefore := len(d.pending)
	for k := range rule.Body {
		if trigB != nil && k == trigIdx {
			continue
		}
		side, err := s.sideTuple(k)
		if err != nil {
			return err
		}
		if d.existsInB(w, side, needBy) {
			continue
		}
		if err := d.provide(w, children[k], side, needBy, depth); err != nil {
			return err
		}
	}

	// For priority rules, verify that the expected binding would actually
	// win the argmax in the bad world; suppress competitors otherwise.
	// When preconditions were just provided (often via derivations whose
	// consequences only materialize after replay), the check is deferred
	// to the next round, where the updated bad world is visible.
	if rule.ArgMax != "" && trigB != nil && len(d.pending) == pendingBefore {
		if err := d.resolveArgMax(w, rule, trigIdx, *trigB, s, children, expected, needBy); err != nil {
			return err
		}
	}
	return nil
}

// adoptExistingSides rebinds the defaulted variables of each side atom to
// match an existing bad-world tuple when the current (good-defaulted)
// values violate a constraint but some other tuple satisfies the rule and
// still derives the expected head.
func (d *diag) adoptExistingSides(w World, rule *ndlog.Rule, s *solver, trigB *ndlog.At, trigIdx int, expected ndlog.At, needBy int64) {
	if constraintsHold(rule, s.envB) {
		return
	}
	for k, atom := range rule.Body {
		if trigB != nil && k == trigIdx {
			continue
		}
		free := s.defaultedVarsOf(atom)
		if len(free) == 0 {
			continue
		}
		// Current assignment already fine? Keep it.
		if constraintsHold(rule, s.envB) {
			return
		}
		base := s.envB.Clone()
		for _, v := range free {
			delete(base, v)
		}
		node, known, err := ndlog.ResolveLocation(atom.Loc, "", base)
		var nodes []string
		if err == nil && known && node != "" {
			nodes = []string{node}
		} else {
			nodes = w.Nodes()
		}
		for _, nn := range nodes {
			for _, t := range w.TuplesAt(nn, atom.Table, endOfTick(needBy)) {
				trial := base.Clone()
				if !ndlog.UnifyAtom(atom, nn, t, trial) {
					continue
				}
				if !constraintsHold(rule, trial) || !headConsistent(rule, trial, expected) {
					continue
				}
				for v, val := range trial {
					s.bind(v, val, fromRepair)
				}
				break
			}
		}
	}
}

// provide makes one missing precondition appear: a base change if the
// good execution obtained it as a base tuple, a recursive MAKEAPPEAR if
// it was derived.
func (d *diag) provide(w World, gc childAt, side ndlog.At, needBy int64, depth int) error {
	if gc.cause == nil {
		return failf(NoProgress, "good tree does not explain %s", gc.at.Tuple)
	}
	if gc.base {
		tick := d.changeTick(w, side, needBy)
		if !w.IsMutable(side.Node, side.Tuple) {
			return &DiagnosisError{
				Kind: ImmutableChange,
				Detail: fmt.Sprintf("aligning the trees requires inserting %s on %s, but that tuple is immutable; pick a different reference event",
					side.Tuple, side.Node),
				Tuple:     side.Tuple,
				Node:      side.Node,
				Attempted: []replay.Change{{Insert: true, Node: side.Node, Tuple: side.Tuple, Tick: tick}},
			}
		}
		d.addChange(replay.Change{Insert: true, Node: side.Node, Tuple: side.Tuple, Tick: tick})
		return nil
	}
	return d.makeAppear(w, gc.cause, side, nil, needBy, depth+1)
}

// changeTick picks when to inject a counterfactual insertion: shortly
// before it is needed, but after any bad-world base insertion it must
// override (keyed tables replace on insert, so injecting before the bad
// execution's own write would be undone by it).
func (d *diag) changeTick(w World, side ndlog.At, needBy int64) int64 {
	tick := needBy - d.opts.InjectSlack
	decl := d.prog.Decl(side.Tuple.Table)
	if decl == nil || len(decl.Key) == 0 {
		return tick
	}
	pk := primaryKeyOf(decl, side.Tuple)
	for _, t := range w.TuplesAt(side.Node, side.Tuple.Table, endOfTick(needBy)) {
		if t.Key() == side.Tuple.Key() || primaryKeyOf(decl, t) != pk {
			continue
		}
		if occ, ok := w.FirstOccurrence(side.Node, t, needBy); ok && occ+1 > tick {
			tick = occ + 1
		}
	}
	return tick
}

// primaryKeyOf projects a tuple onto its table's key columns.
func primaryKeyOf(decl *ndlog.TableDecl, t ndlog.Tuple) string {
	b := make([]byte, 0, 32)
	for _, i := range decl.Key {
		if i < len(t.Args) {
			b = append(b, '|')
			b = append(b, t.Args[i].String()...)
		}
	}
	return string(b)
}

// makeAggregateAppear aligns an aggregate (count) derivation: every
// contributing event of the good execution must have an equivalent in the
// bad world. Each good contributor is mapped into the bad world through
// the group variables bound from the expected head (the taint), with its
// remaining fields defaulted to the good values.
func (d *diag) makeAggregateAppear(w World, rule *ndlog.Rule, children []childAt, s *solver, expected ndlog.At, needBy int64, depth int) error {
	if err := s.bindHead(expected); err != nil {
		return err
	}
	atom := rule.Body[0]
	for _, gc := range children {
		// Bind the contributor's own fields from the good occurrence,
		// keeping the head-derived (tainted) bindings.
		envC := s.envB.Clone()
		envG := ndlog.Env{}
		if !ndlog.UnifyAtom(atom, gc.at.Node, gc.at.Tuple, envG) {
			return failf(NoProgress, "contributor %s does not unify with %s", gc.at.Tuple, atom)
		}
		for v, val := range envG {
			if _, bound := envC[v]; !bound {
				envC[v] = val
			}
		}
		args := make([]ndlog.Value, len(atom.Args))
		ok := true
		for i, e := range atom.Args {
			v, err := e.Eval(envC)
			if err != nil {
				ok = false
				break
			}
			args[i] = v
		}
		if !ok {
			continue
		}
		node, known, err := ndlog.ResolveLocation(atom.Loc, gc.at.Node, envC)
		if err != nil || !known {
			node = gc.at.Node
		}
		side := ndlog.At{Node: node, Tuple: ndlog.Tuple{Table: atom.Table, Args: args}}
		if d.existsInB(w, side, needBy) {
			continue
		}
		if err := d.provide(w, gc, side, needBy, depth); err != nil {
			return err
		}
	}
	return nil
}

// addChange appends a change, deduplicating. A change identical to an
// existing one but needed earlier is kept: a later round may discover
// that the same tuple was needed before the point it was first injected.
func (d *diag) addChange(c replay.Change) {
	for _, p := range d.pending {
		if p.Insert == c.Insert && p.Node == c.Node && p.Tuple.Key() == c.Tuple.Key() && p.Tick <= c.Tick {
			return
		}
	}
	for _, p := range d.applied {
		if p.Insert == c.Insert && p.Node == c.Node && p.Tuple.Key() == c.Tuple.Key() && p.Tick <= c.Tick {
			return
		}
	}
	d.pending = append(d.pending, c)
}

// existsInB reports whether the tuple is available in the bad world at
// the given tick, taking pending (not yet applied) changes into account.
func (d *diag) existsInB(w World, at ndlog.At, needBy int64) bool {
	for _, p := range d.pending {
		if p.Node == at.Node && p.Tuple.Key() == at.Tuple.Key() && p.Tick <= needBy {
			return p.Insert
		}
	}
	decl := d.prog.Decl(at.Tuple.Table)
	if decl != nil && decl.Event {
		return w.OccurredBefore(at.Node, at.Tuple, needBy)
	}
	return w.Exists(at.Node, at.Tuple, endOfTick(needBy))
}
