package core
