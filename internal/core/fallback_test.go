package core

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/ndlog"
	"repro/internal/replay"
)

// raceProgram models a config-distribution race: a probe is answered from
// the config table, and an unrelated audit pipeline generates mutable
// noise that a static slice of "out" must prune.
const raceProgram = `
table cfg/2 base mutable key(0);  // (key, value)
table probe/1 event base;         // (key)
table out/2 event;                // (key, value): the observable
table audit/2 base mutable;       // unrelated noise, outside the slice
table auditTrail/2;

rule fwd out(@N, K, V) :- probe(@N, K), cfg(@N, K, V).
rule a1  auditTrail(@N, K, V) :- audit(@N, K, V).
`

func cfgT(key, val string) ndlog.Tuple {
	return ndlog.NewTuple("cfg", ndlog.Str(key), ndlog.Str(val))
}

func probeT(key string) ndlog.Tuple {
	return ndlog.NewTuple("probe", ndlog.Str(key))
}

func outT(key, val string) ndlog.Tuple {
	return ndlog.NewTuple("out", ndlog.Str(key), ndlog.Str(val))
}

// auditNoiseEvents is how many out-of-slice mutable base events the race
// session logs; each must be slice-pruned before replay.
const auditNoiseEvents = 10

// buildRaceSession constructs the §4.9 intra-tick race: on node b the
// corrected config value arrives in the same tick as the probe, but after
// it, so the probe is answered from the stale value. Node g receives the
// corrected value long before its probe and answers correctly. The audit
// noise is mutable but has no rule path to "out".
func buildRaceSession(t testing.TB) *replay.Session {
	t.Helper()
	s := replay.NewSession(ndlog.MustParse(raceProgram))
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.Insert("g", cfgT("k", "right"), 5))
	must(s.Insert("b", cfgT("k", "wrong"), 5))
	for i := 0; i < auditNoiseEvents; i++ {
		must(s.Insert("b", ndlog.NewTuple("audit", ndlog.Int(int64(i)), ndlog.Int(int64(i))), int64(6+i)))
	}
	must(s.Insert("g", probeT("k"), 40))
	must(s.Insert("b", probeT("k"), 40))
	// The race: scheduled after the probe within tick 40, so the keyed
	// replacement is invisible to the probe's join.
	must(s.Insert("b", cfgT("k", "right"), 40))
	must(s.Run())
	return s
}

func diagnoseRace(t testing.TB, opts Options) *Result {
	t.Helper()
	res, _ := diagnoseRaceSession(t, opts)
	return res
}

func diagnoseRaceSession(t testing.TB, opts Options) (*Result, *replay.Session) {
	t.Helper()
	s := buildRaceSession(t)
	_, g, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	goodAp := g.LastAppear("g", outT("k", "right"))
	badAp := g.LastAppear("b", outT("k", "wrong"))
	if goodAp == nil || badAp == nil {
		t.Fatalf("missing arrivals: good=%v bad=%v", goodAp, badAp)
	}
	world, err := NewWorld(s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Diagnose(context.Background(), g.Tree(goodAp.ID), g.Tree(badAp.ID), world, opts)
	if err != nil {
		t.Fatalf("Diagnose: %v", err)
	}
	return res, s
}

func TestFallbackDiagnosesIntraTickRace(t *testing.T) {
	res := diagnoseRace(t, Options{})
	if len(res.Changes) != 1 {
		t.Fatalf("Δ = %v, want exactly 1 change", res.Changes)
	}
	c := res.Changes[0]
	if !c.Insert || c.Node != "b" || !c.Tuple.Equal(cfgT("k", "right")) || c.Tick != 39 {
		t.Fatalf("change = %v, want Insert b cfg(k,right)@39 (the update, one tick earlier)", c)
	}
	if res.Stats.CandidatesSliced != auditNoiseEvents {
		t.Errorf("CandidatesSliced = %d, want %d (one per out-of-slice audit event)",
			res.Stats.CandidatesSliced, auditNoiseEvents)
	}
}

func TestFallbackDisableSlicingIsByteIdentical(t *testing.T) {
	base, baseSess := diagnoseRaceSession(t, Options{})
	ablated, ablatedSess := diagnoseRaceSession(t, Options{DisableSlicing: true})
	if ablated.Stats.CandidatesSliced != 0 {
		t.Errorf("CandidatesSliced = %d with slicing disabled, want 0", ablated.Stats.CandidatesSliced)
	}
	if base.Stats.CandidatesSliced == 0 {
		t.Errorf("CandidatesSliced = 0 with slicing enabled, want > 0")
	}
	if a, b := fmt.Sprint(base.Changes), fmt.Sprint(ablated.Changes); a != b {
		t.Errorf("changes diverge: with slicing %s, without %s", a, b)
	}
	if a, b := len(base.Rounds), len(ablated.Rounds); a != b {
		t.Errorf("rounds diverge: with slicing %d, without %d", a, b)
	}
	// Slicing's only observable effect is fewer counterfactual replays.
	if baseSess.ReplayCount >= ablatedSess.ReplayCount {
		t.Errorf("replays: with slicing %d, without %d — pruning saved nothing",
			baseSess.ReplayCount, ablatedSess.ReplayCount)
	}
}

func TestFallbackParallelMatchesSequential(t *testing.T) {
	seq := diagnoseRace(t, Options{Parallelism: -1})
	par := diagnoseRace(t, Options{Parallelism: 8})
	if a, b := fmt.Sprint(seq.Changes), fmt.Sprint(par.Changes); a != b {
		t.Errorf("changes diverge: sequential %s, parallel %s", a, b)
	}
	if seq.Stats.CandidatesSliced != par.Stats.CandidatesSliced {
		t.Errorf("CandidatesSliced: sequential %d, parallel %d",
			seq.Stats.CandidatesSliced, par.Stats.CandidatesSliced)
	}
}
