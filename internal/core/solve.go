package core

import (
	"fmt"
	"sort"

	"repro/internal/ndlog"
)

// bindSource records how a variable in the bad-world binding obtained its
// value, which determines whether constraint repair may adjust it.
type bindSource uint8

const (
	fromTrigger bindSource = iota // unified from the aligned trigger tuple
	fromHead                      // inverted from the expected head
	fromAssign                    // computed by an assignment / inverse
	fromDefault                   // defaulted to the good execution's value
	fromRepair                    // adjusted by constraint repair
)

// solver rebinds one rule firing from the good tree into the bad world.
// This is the operational form of the taint formulas of §4.3–§4.5: a
// field of the good execution is "tainted" exactly when its bad-world
// value (in envB) differs from its good-world value (in envG); the
// formulas are the rule's own expressions, re-evaluated or inverted under
// the bad-world binding.
type solver struct {
	rule *ndlog.Rule
	prog *ndlog.Program

	// Good-world binding reconstructed from the provenance vertexes.
	envG ndlog.Env
	// gChildren are the good derivation's body occurrences (atom order).
	gChildren []ndlog.At

	// Bad-world binding under construction.
	envB   ndlog.Env
	source map[string]bindSource
}

// newSolver reconstructs the good-world binding of a derivation. children
// must follow the rule's body atom order.
func newSolver(prog *ndlog.Program, rule *ndlog.Rule, children []ndlog.At) (*solver, error) {
	if rule.CountVar == "" && len(children) != len(rule.Body) {
		return nil, fmt.Errorf("diffprov: derivation via %s has %d children, rule has %d body atoms",
			rule.Name, len(children), len(rule.Body))
	}
	s := &solver{
		rule:      rule,
		prog:      prog,
		envG:      ndlog.Env{},
		gChildren: children,
		envB:      ndlog.Env{},
		source:    map[string]bindSource{},
	}
	if rule.CountVar != "" {
		// Aggregates: unify the single body atom against each contributor.
		for _, c := range children {
			if !ndlog.UnifyAtom(rule.Body[0], c.Node, c.Tuple, s.envG) {
				// Contributors legitimately differ in non-group fields;
				// rebuild group bindings from the last one.
				s.envG = ndlog.Env{}
				ndlog.UnifyAtom(rule.Body[0], c.Node, c.Tuple, s.envG)
			}
		}
	} else {
		for i, atom := range rule.Body {
			if !ndlog.UnifyAtom(atom, children[i].Node, children[i].Tuple, s.envG) {
				return nil, fmt.Errorf("diffprov: cannot re-unify %s against %s on %s",
					atom, children[i].Tuple, children[i].Node)
			}
		}
	}
	for _, a := range rule.Assigns {
		v, err := a.Expr.Eval(s.envG)
		if err != nil {
			return nil, fmt.Errorf("diffprov: replaying assignment %s: %v", a, err)
		}
		s.envG[a.Var] = v
	}
	return s, nil
}

// bind sets a bad-world binding, rejecting contradictions (the existing
// value is kept unless the new source is a repair, which may override
// defaulted values).
func (s *solver) bind(v string, val ndlog.Value, src bindSource) error {
	if old, ok := s.envB[v]; ok && old != val && src != fromRepair {
		return fmt.Errorf("diffprov: conflicting bindings for %s: %s vs %s", v, old, val)
	}
	s.envB[v] = val
	s.source[v] = src
	return nil
}

// bindTrigger unifies the rule's trigger atom against the aligned
// bad-world tuple, seeding the bad binding.
func (s *solver) bindTrigger(atomIdx int, at ndlog.At) error {
	env := ndlog.Env{}
	if !ndlog.UnifyAtom(s.rule.Body[atomIdx], at.Node, at.Tuple, env) {
		return fmt.Errorf("diffprov: bad-world trigger %s does not unify with %s", at.Tuple, s.rule.Body[atomIdx])
	}
	for v, val := range env {
		if err := s.bind(v, val, fromTrigger); err != nil {
			return err
		}
	}
	return nil
}

// bindHead binds variables from the expected bad-world head tuple,
// inverting head computations where necessary (§4.5). Non-invertible
// computations are tolerated here: the affected variables simply stay
// unbound and may be filled by defaults later.
func (s *solver) bindHead(expected ndlog.At) error {
	exprs := append([]ndlog.Expr(nil), s.rule.Head.Args...)
	targets := make([]ndlog.Value, len(s.rule.Head.Args))
	copy(targets, expected.Tuple.Args)
	if s.rule.Head.Loc != nil {
		exprs = append(exprs, s.rule.Head.Loc)
		targets = append(targets, ndlog.Str(expected.Node))
	}
	for j, e := range exprs {
		if err := s.solveExpr(e, targets[j], fromHead); err != nil {
			return err
		}
	}
	return nil
}

// solveExpr tries to bind exactly one unknown variable of e so that it
// evaluates to target.
func (s *solver) solveExpr(e ndlog.Expr, target ndlog.Value, src bindSource) error {
	unknowns := s.unknownVars(e)
	switch len(unknowns) {
	case 0:
		return nil // fully bound; verification happens later
	case 1:
		// The count variable of aggregates is bound specially.
		if unknowns[0] == s.rule.CountVar && s.rule.CountVar != "" {
			return s.bind(s.rule.CountVar, target, src)
		}
		cands, err := ndlog.InvertChecked(e, target, unknowns[0], s.envB)
		if err == ndlog.ErrNonInvertible {
			return nil // leave unbound; defaults or inverse rules may help
		}
		if err != nil {
			return nil // treat as unconstraining
		}
		if len(cands) == 0 {
			return nil
		}
		// Prefer the candidate matching the good world (minimal change).
		chosen := cands[0]
		if gv, ok := s.envG[unknowns[0]]; ok {
			for _, c := range cands {
				if c == gv {
					chosen = c
					break
				}
			}
		}
		return s.bind(unknowns[0], chosen, src)
	default:
		return nil // underdetermined; handled by defaults
	}
}

func (s *solver) unknownVars(e ndlog.Expr) []string {
	var out []string
	for _, v := range ndlog.FreeVars(e) {
		if _, ok := s.envB[v]; !ok {
			out = append(out, v)
		}
	}
	return out
}

// propagate runs the fixpoint over assignments (forward and inverted) and
// hand-written inverse rules, then defaults any remaining variables to
// their good-world values ("untainted fields keep their values").
// expected is nil in forward mode (divergence detection), where the head
// is predicted rather than given.
func (s *solver) propagate(expected *ndlog.At) {
	for changed := true; changed; {
		changed = false
		before := len(s.envB)
		for _, a := range s.rule.Assigns {
			if _, ok := s.envB[a.Var]; !ok && len(s.unknownVars(a.Expr)) == 0 {
				if v, err := a.Expr.Eval(s.envB); err == nil {
					s.bind(a.Var, v, fromAssign)
				}
			} else if tv, ok := s.envB[a.Var]; ok {
				s.solveExpr(a.Expr, tv, fromAssign)
			}
		}
		for _, inv := range s.rule.Inverses {
			if _, ok := s.envB[inv.Var]; !ok && len(s.unknownVars(inv.Expr)) == 0 {
				if v, err := inv.Expr.Eval(s.envB); err == nil {
					s.bind(inv.Var, v, fromAssign)
				}
			}
		}
		// Head expressions may become invertible as more vars bind.
		if expected != nil {
			s.bindHead(*expected)
		}
		if len(s.envB) != before {
			changed = true
		}
	}
	// Default remaining good-world variables — except assignment
	// targets, whose bad-world values must be recomputed from their
	// expressions once the inputs are defaulted (e.g. a load-balancer
	// bucket must be re-hashed for the bad seed, not copied).
	assignTargets := map[string]bool{}
	for _, a := range s.rule.Assigns {
		assignTargets[a.Var] = true
	}
	names := make([]string, 0, len(s.envG))
	for v := range s.envG {
		names = append(names, v)
	}
	sort.Strings(names)
	for _, v := range names {
		if _, ok := s.envB[v]; !ok && !assignTargets[v] {
			s.bind(v, s.envG[v], fromDefault)
		}
	}
	// Re-run assignment forward evaluation now that defaults are in.
	for _, a := range s.rule.Assigns {
		if _, ok := s.envB[a.Var]; !ok && len(s.unknownVars(a.Expr)) == 0 {
			if v, err := a.Expr.Eval(s.envB); err == nil {
				s.bind(a.Var, v, fromAssign)
			}
		}
	}
	// Any assignment target still unbound (its expression could not be
	// evaluated) falls back to the good-world value after all.
	for _, v := range names {
		if _, ok := s.envB[v]; !ok {
			s.bind(v, s.envG[v], fromDefault)
		}
	}
}

// followKeyedRows implements Options.FollowKeyedRows: for each side atom
// over a keyed table whose key columns are bound (and at least one is
// tainted — differs from the good execution), the bad world's live row
// for that key replaces the good-world defaults for the remaining
// columns.
func (s *solver) followKeyedRows(w World, prog *ndlog.Program, trigIdx int, haveTrig bool, needBy int64) {
	for k, atom := range s.rule.Body {
		if haveTrig && k == trigIdx {
			continue
		}
		decl := prog.Decl(atom.Table)
		if decl == nil || len(decl.Key) == 0 || decl.Event {
			continue
		}
		// Key columns must be bound; at least one must be tainted.
		tainted := false
		keyMatch := make([]ndlog.Match, 0, len(decl.Key))
		ok := true
		for _, col := range decl.Key {
			if col >= len(atom.Args) {
				ok = false
				break
			}
			v, err := atom.Args[col].Eval(s.envB)
			if err != nil {
				ok = false
				break
			}
			keyMatch = append(keyMatch, ndlog.Match{Col: col, Val: v})
			if gv, gerr := atom.Args[col].Eval(s.envG); gerr == nil && gv != v {
				tainted = true
			}
		}
		if !ok || !tainted {
			continue
		}
		node, known, err := ndlog.ResolveLocation(atom.Loc, "", s.envB)
		if err != nil || !known {
			continue
		}
		// The primary-key lookup probes the table's key-column hash index
		// (registered for every keyed table) instead of scanning.
		for _, row := range w.TuplesMatchingAt(node, atom.Table, ndlog.Stamp{T: needBy, Seq: ^uint64(0)}, keyMatch) {
			// Rebind the atom's non-key variables from this row.
			trial := s.envB.Clone()
			for _, fv := range s.defaultedVarsOf(atom) {
				delete(trial, fv)
			}
			if !ndlog.UnifyAtom(atom, node, row, trial) {
				continue
			}
			for v, val := range trial {
				s.bind(v, val, fromRepair)
			}
			break
		}
	}
}

// defaultedVarsOf returns the atom's variables whose bad-world values
// were merely defaulted from the good execution (and may be rebound).
func (s *solver) defaultedVarsOf(atom ndlog.Atom) []string {
	var out []string
	seen := map[string]bool{}
	collect := func(e ndlog.Expr) {
		for _, v := range ndlog.FreeVars(e) {
			if seen[v] {
				continue
			}
			seen[v] = true
			if src, ok := s.source[v]; ok && (src == fromDefault || src == fromRepair) {
				out = append(out, v)
			}
		}
	}
	for _, a := range atom.Args {
		collect(a)
	}
	if atom.Loc != nil {
		collect(atom.Loc)
	}
	return out
}

// constraintsHold evaluates every rule constraint under an environment,
// ignoring constraints whose variables are not all bound.
func constraintsHold(rule *ndlog.Rule, env ndlog.Env) bool {
	for _, wc := range rule.Where {
		allBound := true
		for _, v := range ndlog.FreeVars(wc) {
			if _, ok := env[v]; !ok {
				allBound = false
				break
			}
		}
		if !allBound {
			continue
		}
		ok, err := ndlog.EvalBool(wc, env)
		if err != nil || !ok {
			return false
		}
	}
	return true
}

// headConsistent checks that the head would still evaluate to the
// expected tuple under the environment.
func headConsistent(rule *ndlog.Rule, env ndlog.Env, expected ndlog.At) bool {
	trial := env.Clone()
	for _, a := range rule.Assigns {
		allBound := true
		for _, v := range ndlog.FreeVars(a.Expr) {
			if _, ok := trial[v]; !ok {
				allBound = false
				break
			}
		}
		if allBound {
			if v, err := a.Expr.Eval(trial); err == nil {
				trial[a.Var] = v
			}
		}
	}
	for j, e := range rule.Head.Args {
		if rule.CountVar != "" && isVar(e, rule.CountVar) {
			continue
		}
		allBound := true
		for _, v := range ndlog.FreeVars(e) {
			if _, ok := trial[v]; !ok {
				allBound = false
				break
			}
		}
		if !allBound {
			continue
		}
		got, err := e.Eval(trial)
		if err != nil || got != expected.Tuple.Args[j] {
			return false
		}
	}
	if rule.Head.Loc != nil {
		node, known, err := ndlog.ResolveLocation(rule.Head.Loc, expected.Node, trial)
		if err == nil && known && node != expected.Node {
			return false
		}
	}
	return true
}

// verify checks that the bad-world binding derives the expected head and
// satisfies the rule's constraints, attempting constraint repair where
// allowed. It returns the list of repaired variables.
func (s *solver) verify(expected ndlog.At) ([]string, error) {
	var repaired []string
	for pass := 0; pass < 4; pass++ {
		bad, err := s.failingConstraint()
		if err != nil {
			return repaired, err
		}
		if bad == nil {
			break
		}
		v, nv, ok := s.repairConstraint(bad)
		if !ok {
			return repaired, &DiagnosisError{
				Kind:   NonInvertible,
				Detail: fmt.Sprintf("constraint %s of rule %s cannot be satisfied in the bad execution", bad, s.rule.Name),
			}
		}
		s.bind(v, nv, fromRepair)
		repaired = append(repaired, v)
	}
	if bad, _ := s.failingConstraint(); bad != nil {
		return repaired, &DiagnosisError{
			Kind:   NonInvertible,
			Detail: fmt.Sprintf("constraint %s of rule %s still fails after repair", bad, s.rule.Name),
		}
	}
	// The head must re-derive to the expected tuple.
	env := s.envB
	for j, e := range s.rule.Head.Args {
		if s.rule.CountVar != "" && isVar(e, s.rule.CountVar) {
			continue // aggregate counts are established by the contributors
		}
		got, err := e.Eval(env)
		if err != nil {
			return repaired, failf(NonInvertible, "cannot evaluate head field %s of rule %s: %v", e, s.rule.Name, err)
		}
		if got != expected.Tuple.Args[j] {
			return repaired, failf(NonInvertible,
				"rule %s would derive field %d as %s, expected %s (non-invertible dependency)",
				s.rule.Name, j, got, expected.Tuple.Args[j])
		}
	}
	if s.rule.Head.Loc != nil {
		node, known, err := ndlog.ResolveLocation(s.rule.Head.Loc, expected.Node, env)
		if err != nil || !known || node != expected.Node {
			return repaired, failf(NonInvertible,
				"rule %s would derive on %s, expected %s", s.rule.Name, node, expected.Node)
		}
	}
	return repaired, nil
}

func isVar(e ndlog.Expr, name string) bool {
	v, ok := e.(ndlog.Var)
	return ok && string(v) == name
}

// failingConstraint returns the first constraint that evaluates to false
// under the bad binding, or nil.
func (s *solver) failingConstraint() (ndlog.Expr, error) {
	for _, w := range s.rule.Where {
		ok, err := ndlog.EvalBool(w, s.envB)
		if err != nil {
			return nil, failf(NonInvertible, "cannot evaluate constraint %s: %v", w, err)
		}
		if !ok {
			return w, nil
		}
	}
	// Assignments whose target is bound act as unification constraints.
	for _, a := range s.rule.Assigns {
		tv, bound := s.envB[a.Var]
		if !bound || len(s.unknownVars(a.Expr)) > 0 {
			continue
		}
		v, err := a.Expr.Eval(s.envB)
		if err != nil {
			return nil, failf(NonInvertible, "cannot evaluate assignment %s: %v", a, err)
		}
		if v != tv {
			return ndlog.Bin{Op: ndlog.OpEq, L: ndlog.Var(a.Var), R: a.Expr}, nil
		}
	}
	return nil, nil
}

// repairConstraint attempts to satisfy a failing constraint by adjusting
// one variable whose value was merely defaulted from the good execution
// (never values pinned by the trigger or the expected head). Returns the
// variable, its new value, and success.
func (s *solver) repairConstraint(c ndlog.Expr) (string, ndlog.Value, bool) {
	adjustable := func(v string) bool {
		src, ok := s.source[v]
		return ok && (src == fromDefault || src == fromRepair)
	}
	switch x := c.(type) {
	case ndlog.Call:
		// matches(ip, P): generalize the prefix P to the longest common
		// prefix of its current value and the address — the minimal
		// generalization that makes the constraint hold. This is what
		// turns the overly-specific 4.3.2.0/24 into 4.3.2.0/23 (§2).
		if x.Fn == "matches" && len(x.Args) == 2 {
			pv, ok := x.Args[1].(ndlog.Var)
			if !ok || !adjustable(string(pv)) {
				break
			}
			ipVal, err := x.Args[0].Eval(s.envB)
			if err != nil {
				break
			}
			ip, ok1 := ipVal.(ndlog.IP)
			pfx, ok2 := s.envB[string(pv)].(ndlog.Prefix)
			if !ok1 || !ok2 {
				break
			}
			return string(pv), generalizePrefix(pfx, ip), true
		}
		// covers(P, Q) with adjustable P: same generalization.
		if x.Fn == "covers" && len(x.Args) == 2 {
			pv, ok := x.Args[0].(ndlog.Var)
			if !ok || !adjustable(string(pv)) {
				break
			}
			qVal, err := x.Args[1].Eval(s.envB)
			if err != nil {
				break
			}
			q, ok1 := qVal.(ndlog.Prefix)
			p, ok2 := s.envB[string(pv)].(ndlog.Prefix)
			if !ok1 || !ok2 {
				break
			}
			np := generalizePrefix(p, q.Addr)
			if np.Bits > q.Bits {
				np.Bits = q.Bits
				np.Addr = np.Addr.Mask(np.Bits)
			}
			return string(pv), np, true
		}
	case ndlog.Bin:
		// Equality with a single adjustable variable on one side.
		if x.Op == ndlog.OpEq {
			if v, ok := x.L.(ndlog.Var); ok && adjustable(string(v)) {
				if val, err := x.R.Eval(s.envB); err == nil {
					return string(v), val, true
				}
			}
			if v, ok := x.R.(ndlog.Var); ok && adjustable(string(v)) {
				if val, err := x.L.Eval(s.envB); err == nil {
					return string(v), val, true
				}
			}
		}
	}
	return "", nil, false
}

// generalizePrefix returns the most specific prefix that covers both the
// original prefix and the address: the paper's /24 -> /23 repair.
func generalizePrefix(p ndlog.Prefix, ip ndlog.IP) ndlog.Prefix {
	bits := uint8(0)
	for b := p.Bits; ; b-- {
		if ip.Mask(b) == p.Addr.Mask(b) {
			bits = b
			break
		}
		if b == 0 {
			break
		}
	}
	return ndlog.Prefix{Addr: p.Addr.Mask(bits), Bits: bits}
}

// sideTuple computes the expected bad-world occurrence of body atom k.
func (s *solver) sideTuple(k int) (ndlog.At, error) {
	atom := s.rule.Body[k]
	args := make([]ndlog.Value, len(atom.Args))
	for i, e := range atom.Args {
		v, err := e.Eval(s.envB)
		if err != nil {
			return ndlog.At{}, failf(NonInvertible,
				"cannot determine field %d of expected %s tuple: %v", i, atom.Table, err)
		}
		args[i] = v
	}
	defNode := ""
	if s.rule.CountVar == "" && k < len(s.gChildren) {
		defNode = s.gChildren[k].Node
	}
	node, known, err := ndlog.ResolveLocation(atom.Loc, defNode, s.envB)
	if err != nil || !known {
		node = defNode
	}
	return ndlog.At{Node: node, Tuple: ndlog.Tuple{Table: atom.Table, Args: args}}, nil
}

// expectedHead evaluates the head under the bad binding (forward mode,
// used by divergence detection). For aggregates the count variable must
// already be bound (from the good head).
func (s *solver) expectedHead(evalNode string) (ndlog.At, error) {
	args := make([]ndlog.Value, len(s.rule.Head.Args))
	for j, e := range s.rule.Head.Args {
		v, err := e.Eval(s.envB)
		if err != nil {
			return ndlog.At{}, failf(NonInvertible, "cannot evaluate expected head field %s: %v", e, err)
		}
		args[j] = v
	}
	node, known, err := ndlog.ResolveLocation(s.rule.Head.Loc, evalNode, s.envB)
	if err != nil || !known {
		return ndlog.At{}, failf(NonInvertible, "cannot resolve expected head location of rule %s", s.rule.Name)
	}
	return ndlog.At{Node: node, Tuple: ndlog.Tuple{Table: s.rule.Head.Table, Args: args}}, nil
}
