package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/ndlog"
	"repro/internal/provenance"
)

// Automatic reference discovery — the §4.9 extension the paper sketches
// ("we are also exploring to automate this process using inspirations
// from Automatic Test Packet Generation and the guided probes idea in
// Everflow"). Instead of asking the operator for a reference event,
// candidates are mined from the bad execution itself: appearances of the
// same kind of event whose seeds share the bad seed's type but whose
// outcomes differ, ranked by header similarity.

// Candidate is one ranked reference candidate.
type Candidate struct {
	Tree  *provenance.Tree
	Score int // field-similarity to the bad event (higher is better)
}

// FindReferenceCandidates mines the world's provenance graph for
// reference candidates for the given bad tree: appearances over the same
// table as the bad root, on any node, excluding occurrences of the bad
// event itself, ranked by similarity (shared fields; shared address
// prefixes count proportionally to the common prefix length).
func FindReferenceCandidates(badTree *provenance.Tree, w World, limit int) ([]Candidate, error) {
	if limit <= 0 {
		limit = 8
	}
	badRoot := badTree.Vertex
	badSeedT, err := badTree.FindSeed()
	if err != nil {
		return nil, err
	}
	g := w.Graph()
	seen := map[string]bool{}
	var cands []Candidate
	g.Vertexes(func(v *provenance.Vertex) {
		if v.Type != provenance.Appear || v.Tuple.Table != badRoot.Tuple.Table {
			return
		}
		if v.Tuple.Equal(badRoot.Tuple) {
			return // another hop of the bad event itself
		}
		// Only terminal occurrences are outcomes: an appearance that
		// triggered further derivations is an intermediate hop.
		if len(g.TriggerParents(v.ID)) > 0 {
			return
		}
		if ex := g.ExistOf(v.ID); ex >= 0 && len(g.TriggerParents(ex)) > 0 {
			return
		}
		key := v.Node + "|" + v.Tuple.Key()
		if seen[key] {
			return // one candidate per (outcome node, event)
		}
		seen[key] = true
		tree := g.Tree(v.ID)
		seed, err := tree.FindSeed()
		if err != nil || seed.Vertex.Tuple.Table != badSeedT.Vertex.Tuple.Table {
			return // not comparable (§4.3)
		}
		cands = append(cands, Candidate{
			Tree:  tree,
			Score: similarity(v.Tuple, badRoot.Tuple),
		})
	})
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].Score > cands[j].Score })
	if len(cands) > limit {
		cands = cands[:limit]
	}
	return cands, nil
}

// similarity scores two same-table tuples: 32 per equal field; for
// differing IP fields, the length of the common address prefix.
func similarity(a, b ndlog.Tuple) int {
	s := 0
	for i := range a.Args {
		if i >= len(b.Args) {
			break
		}
		if a.Args[i] == b.Args[i] {
			s += 32
			continue
		}
		ai, aok := a.Args[i].(ndlog.IP)
		bi, bok := b.Args[i].(ndlog.IP)
		if aok && bok {
			for bits := uint8(32); ; bits-- {
				if ai.Mask(bits) == bi.Mask(bits) {
					s += int(bits)
					break
				}
				if bits == 0 {
					break
				}
			}
		}
	}
	return s
}

// AutoDiagnose diagnoses a bad event without an operator-supplied
// reference: it tries the mined candidates in similarity order until one
// yields a non-trivial diagnosis. Candidates that align trivially (the
// "reference" suffered the same fault: empty Δ) or are unusable
// (DiagnosisError) are skipped. It returns the result and the reference
// that produced it. Cancellation is honored between candidates (and
// inside each candidate's diagnosis).
//
// When Options.Parallelism allows and the world can fork workers, the
// candidate diagnoses are evaluated concurrently, each against a private
// session clone with its own inner diagnosis forced sequential (one level
// of fan-out only). The winner is the lowest-ranked candidate that
// succeeds — every higher-ranked candidate is guaranteed evaluated — so
// the outcome is identical to the sequential scan. All candidate
// diagnoses against the same base world share one replay memo: two
// references that need the same fix dedupe their counterfactual replays.
func AutoDiagnose(ctx context.Context, badTree *provenance.Tree, w World, opts Options) (*Result, *provenance.Tree, error) {
	cands, err := FindReferenceCandidates(badTree, w, 32)
	if err != nil {
		return nil, nil, err
	}
	if !opts.DisableFingerprints && opts.sharedMemo == nil {
		opts.sharedMemo = newReplayMemo()
	}
	var stats DiagStats
	pool := newCandidatePool(w, opts.parallelism(), &stats)
	if pool == nil {
		var lastErr error
		for _, c := range cands {
			if err := ctx.Err(); err != nil {
				return nil, nil, fmt.Errorf("diffprov: reference search interrupted: %w", err)
			}
			res, err := Diagnose(ctx, c.Tree, badTree, w, opts)
			if err != nil {
				if ctx.Err() != nil {
					return nil, nil, err
				}
				lastErr = err
				continue
			}
			if len(res.Changes) == 0 {
				continue // same outcome as the bad event: not a useful reference
			}
			return res, c.Tree, nil
		}
		return nil, nil, autoRefFailure(lastErr)
	}
	defer pool.drain()
	inner := opts
	inner.Parallelism = -1
	type outcome struct {
		res *Result
		err error
	}
	vals, ran, best := runCandidates(ctx, pool, len(cands),
		func(ww World, i int) (outcome, bool) {
			res, err := Diagnose(ctx, cands[i].Tree, badTree, ww, inner)
			return outcome{res: res, err: err}, err == nil && len(res.Changes) > 0
		})
	if err := ctx.Err(); err != nil {
		return nil, nil, fmt.Errorf("diffprov: reference search interrupted: %w", err)
	}
	if best >= 0 {
		res := vals[best].res
		res.Stats.ParallelCandidates += stats.ParallelCandidates
		return res, cands[best].Tree, nil
	}
	// No winner: with no cutoff ever applied, every candidate was
	// evaluated, so the highest-indexed error is exactly the sequential
	// scan's last error.
	var lastErr error
	for i := range vals {
		if ran[i] && vals[i].err != nil {
			lastErr = vals[i].err
		}
	}
	return nil, nil, autoRefFailure(lastErr)
}

func autoRefFailure(lastErr error) error {
	if lastErr != nil {
		return failf(NoProgress, "no mined reference produced a diagnosis (last error: %v)", lastErr)
	}
	return failf(NoProgress, "no suitable reference event found in the execution")
}
