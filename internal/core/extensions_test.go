package core

import (
	"context"
	"testing"

	"repro/internal/ndlog"
	"repro/internal/replay"
)

func TestMinimizeDropsRedundantChanges(t *testing.T) {
	// SDN4-style: two faults, but we also verify that minimization keeps
	// both (each is necessary).
	s := replay.NewSession(ndlog.MustParse(sdn1Program))
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.Insert("s1", fe(10, "4.3.2.0/24", "s2"), 0))
	must(s.Insert("s1", fe(1, "0.0.0.0/0", "x1"), 0))
	must(s.Insert("x1", fe(1, "0.0.0.0/0", "webWrong"), 0))
	must(s.Insert("s2", fe(10, "4.3.2.0/24", "s6"), 0))
	must(s.Insert("s2", fe(1, "0.0.0.0/0", "x2"), 0))
	must(s.Insert("x2", fe(1, "0.0.0.0/0", "webWrong"), 0))
	must(s.Insert("s6", fe(1, "0.0.0.0/0", "web1"), 0))
	must(s.Insert("s1", pkt("4.3.2.1"), 10))
	must(s.Insert("s1", pkt("4.3.3.1"), 20))
	must(s.Run())
	_, g, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	good := treeFor(t, g, "web1", pkt("4.3.2.1"))
	bad := treeFor(t, g, "webWrong", pkt("4.3.3.1"))
	world, err := NewWorld(s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Diagnose(context.Background(), good, bad, world, Options{Minimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Changes) != 2 {
		t.Fatalf("Δ = %v; both fixes are necessary, minimization must keep them", res.Changes)
	}
	// The final world still routes the bad packet correctly.
	fw := res.FinalWorld.(*ndlogWorld)
	if !fw.engine.ExistsEver("web1", pkt("4.3.3.1")) {
		t.Error("minimized Δ must still align the trees")
	}
}

func TestMinimizeRemovesGenuinelyRedundantChange(t *testing.T) {
	// Craft a redundancy: diagnose, then re-diagnose with an extra
	// no-op change appended; minimization strips it.
	s := buildSDN1(t)
	_, g, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	good := treeFor(t, g, "web1", pkt("4.3.2.1"))
	bad := treeFor(t, g, "web2", pkt("4.3.3.1"))
	world, err := NewWorld(s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Diagnose(context.Background(), good, bad, world, Options{})
	if err != nil {
		t.Fatal(err)
	}
	extra := append(append([]replay.Change(nil), res.Changes...),
		replay.Change{Insert: true, Node: "s4", Tuple: fe(3, "9.9.9.0/24", "s5"), Tick: 5})
	w2, err := world.Apply(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Minimize manually through the exported path: re-run Diagnose with
	// Minimize on a world pre-loaded with the redundant change.
	_ = w2
	d := &diag{prog: world.Program(), opts: Options{MaxRounds: 8, InjectSlack: 2, MaxDepth: 64}}
	chainG, err := goodChain(good)
	if err != nil {
		t.Fatal(err)
	}
	seedBT, err := bad.FindSeed()
	if err != nil {
		t.Fatal(err)
	}
	seedB := ndlog.At{Node: seedBT.Vertex.Node, Tuple: seedBT.Vertex.Tuple, Stamp: seedBT.Vertex.At}
	resM := &Result{Changes: extra}
	if err := d.minimize(context.Background(), resM, world, chainG, seedB); err != nil {
		t.Fatal(err)
	}
	if len(resM.Changes) != 1 {
		t.Fatalf("minimization kept %v, want only the real fix", resM.Changes)
	}
	if !resM.Changes[0].Tuple.Equal(res.Changes[0].Tuple) {
		t.Errorf("kept %s, want %s", resM.Changes[0].Tuple, res.Changes[0].Tuple)
	}
}

func TestAutoDiagnoseSDN1(t *testing.T) {
	// No operator-supplied reference: mine one from the execution.
	s := buildSDN1(t)
	// Add extra traffic so several candidates exist.
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.Insert("s1", pkt("4.3.2.7"), 30)) // another correctly-routed untrusted packet
	must(s.Insert("s1", pkt("8.8.8.8"), 31)) // ordinary traffic to web2
	must(s.Run())
	_, g, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	bad := treeFor(t, g, "web2", pkt("4.3.3.1"))
	world, err := NewWorld(s)
	if err != nil {
		t.Fatal(err)
	}
	res, ref, err := AutoDiagnose(context.Background(), bad, world, Options{})
	if err != nil {
		t.Fatalf("AutoDiagnose: %v", err)
	}
	if ref == nil {
		t.Fatal("no reference returned")
	}
	// The best-ranked usable reference is an untrusted-subnet packet
	// (longest shared source prefix), and the diagnosis is the /23 fix.
	if len(res.Changes) != 1 {
		t.Fatalf("Δ = %v, want 1", res.Changes)
	}
	want := fe(10, "4.3.2.0/23", "s6")
	if !res.Changes[0].Tuple.Equal(want) {
		t.Fatalf("change = %s, want %s (mined reference should be the similar untrusted packet)", res.Changes[0].Tuple, want)
	}
}

func TestFindReferenceCandidatesRanking(t *testing.T) {
	s := buildSDN1(t)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.Insert("s1", pkt("8.8.8.8"), 30))
	must(s.Run())
	_, g, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	bad := treeFor(t, g, "web2", pkt("4.3.3.1"))
	world, err := NewWorld(s)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := FindReferenceCandidates(bad, world, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) < 2 {
		t.Fatalf("candidates = %d, want at least the 4.3.2.1 and 8.8.8.8 packets", len(cands))
	}
	// 4.3.2.1 shares a /23 with 4.3.3.1; 8.8.8.8 shares nearly nothing.
	first := cands[0].Tree.Vertex.Tuple
	if first.Args[0] != ndlog.MustParseIP("4.3.2.1") {
		t.Errorf("top candidate = %s, want the similar untrusted packet", first)
	}
	for i := 1; i < len(cands); i++ {
		if cands[i].Score > cands[i-1].Score {
			t.Error("candidates must be sorted by similarity")
		}
	}
	if _, err := FindReferenceCandidates(bad, world, 0); err != nil {
		t.Errorf("default limit should work: %v", err)
	}
}

func TestAutoDiagnoseNoCandidates(t *testing.T) {
	// A lone bad event with no other traffic: nothing to mine.
	s := replay.NewSession(ndlog.MustParse(sdn1Program))
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.Insert("s1", fe(1, "0.0.0.0/0", "h"), 0))
	must(s.Insert("s1", pkt("1.2.3.4"), 10))
	must(s.Run())
	_, g, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	bad := treeFor(t, g, "h", pkt("1.2.3.4"))
	world, err := NewWorld(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := AutoDiagnose(context.Background(), bad, world, Options{}); err == nil {
		t.Error("no candidates must be an error")
	}
}

// TestECMPWithSeed reproduces §4.9's load-balancer discussion: "in the
// presence of load-balancers that make random decisions, e.g., ECMP with
// a random seed, DiffProv would need to reason about the balancing
// mechanism using the seed". The seed is modeled as state, the balancer
// as a deterministic builtin over it.
func TestECMPWithSeed(t *testing.T) {
	prog := ndlog.MustParse(`
table route/2 base mutable key(0);   // (bucket, nextHop)
table ecmpSeed/1 base mutable;       // (seed)
table packet/1 event base;           // (src)

rule fw packet(@Nxt, Src) :-
    packet(@Sw, Src),
    ecmpSeed(@Sw, Seed),
    B := hashmod(Src ^ Seed, 2),
    route(@Sw, B, Nxt).
`)
	s := replay.NewSession(prog)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.Insert("lb", ndlog.NewTuple("ecmpSeed", ndlog.Int(12345)), 0))
	must(s.Insert("lb", ndlog.NewTuple("route", ndlog.Int(0), ndlog.Str("backendA")), 0))
	must(s.Insert("lb", ndlog.NewTuple("route", ndlog.Int(1), ndlog.Str("backendBroken")), 0)) // fault
	// Find one src per bucket.
	var src0, src1 ndlog.IP
	for ip := uint32(1); src0 == 0 || src1 == 0; ip++ {
		// Mirror the engine's evaluation: IP ^ Int keeps the IP kind.
		b := ndlog.Hash64(ndlog.IP(uint32(int64(ip)^12345))) % 2
		if b == 0 && src0 == 0 {
			src0 = ndlog.IP(ip)
		}
		if b == 1 && src1 == 0 {
			src1 = ndlog.IP(ip)
		}
	}
	must(s.Insert("lb", ndlog.NewTuple("packet", src0), 10)) // good: backendA
	must(s.Insert("lb", ndlog.NewTuple("packet", src1), 20)) // bad: broken backend
	must(s.Run())
	_, g, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	good := treeFor(t, g, "backendA", ndlog.NewTuple("packet", src0))
	bad := treeFor(t, g, "backendBroken", ndlog.NewTuple("packet", src1))
	world, err := NewWorld(s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Diagnose(context.Background(), good, bad, world, Options{})
	if err != nil {
		t.Fatalf("Diagnose: %v", err)
	}
	if len(res.Changes) != 1 {
		t.Fatalf("Δ = %v, want 1", res.Changes)
	}
	c := res.Changes[0]
	// The balancer itself (hashmod over the seed) is deterministic and
	// re-evaluated, so the root cause is bucket 1's route: changed to
	// the good backend (keyed replacement).
	if c.Tuple.Table != "route" || c.Tuple.Args[0] != ndlog.Int(1) || c.Tuple.Args[1] != ndlog.Str("backendA") {
		t.Fatalf("change = %v, want route(1, backendA)", c)
	}
}

// TestFollowKeyedRows contrasts the two resolution strategies for
// load-balancer indirection (§4.9): without the option, DiffProv aligns
// by re-aiming the selector's row; with it, the bad world's own selected
// row is followed and the diagnosis lands on that row's content.
func TestFollowKeyedRows(t *testing.T) {
	prog := ndlog.MustParse(`
table record/2 base mutable key(0);   // (name, addr) on a server
table pool/2 base mutable key(0);     // (slot, server) at the resolver
table poolSize/1 base mutable;
table query/2 event base;             // (id, name)
table ask/2 event;
table response/3 event;

rule q1 ask(@Srv, Q, Name) :- query(@R, Q, Name), poolSize(@R, N), I := hashmod(Q, N), pool(@R, I, Srv).
rule q2 response(@r1, Q, Name, Addr) :- ask(@Srv, Q, Name), record(@Srv, Name, Addr).
`)
	oldA := ndlog.MustParseIP("192.0.2.10")
	newA := ndlog.MustParseIP("192.0.2.99")
	name := ndlog.Str("api")
	build := func() *replay.Session {
		s := replay.NewSession(prog)
		must := func(err error) {
			if err != nil {
				t.Fatal(err)
			}
		}
		for i, srv := range []string{"nsA", "nsB"} {
			must(s.Insert("r1", ndlog.NewTuple("pool", ndlog.Int(int64(i)), ndlog.Str(srv)), 1))
		}
		must(s.Insert("r1", ndlog.NewTuple("poolSize", ndlog.Int(2)), 2))
		must(s.Insert("nsA", ndlog.NewTuple("record", name, oldA), 3)) // stale
		must(s.Insert("nsB", ndlog.NewTuple("record", name, newA), 4)) // fresh
		return s
	}
	// Query ids per slot.
	var qA, qB int64
	for q := int64(1); qA == 0 || qB == 0; q++ {
		if ndlog.Hash64(ndlog.Int(q))%2 == 0 {
			if qA == 0 {
				qA = q
			}
		} else if qB == 0 {
			qB = q
		}
	}
	s := build()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.Insert("r1", ndlog.NewTuple("query", ndlog.Int(qB), name), 100)) // good: fresh
	must(s.Insert("r1", ndlog.NewTuple("query", ndlog.Int(qA), name), 110)) // bad: stale
	must(s.Run())
	_, g, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	good := treeFor(t, g, "r1", ndlog.NewTuple("response", ndlog.Int(qB), name, newA))
	bad := treeFor(t, g, "r1", ndlog.NewTuple("response", ndlog.Int(qA), name, oldA))
	world, err := NewWorld(s)
	if err != nil {
		t.Fatal(err)
	}

	// Default strategy: re-aim slot 0 (a valid counterfactual).
	res, err := Diagnose(context.Background(), good, bad, world, Options{})
	if err != nil {
		t.Fatalf("default: %v", err)
	}
	if len(res.Changes) != 1 || res.Changes[0].Tuple.Table != "pool" {
		t.Fatalf("default Δ = %v, want a pool re-aim", res.Changes)
	}

	// FollowKeyedRows: fix the selected server's record.
	res, err = Diagnose(context.Background(), good, bad, world, Options{FollowKeyedRows: true})
	if err != nil {
		t.Fatalf("follow: %v", err)
	}
	if len(res.Changes) != 1 {
		t.Fatalf("follow Δ = %v, want 1", res.Changes)
	}
	c := res.Changes[0]
	if c.Tuple.Table != "record" || c.Node != "nsA" || c.Tuple.Args[1] != newA {
		t.Fatalf("follow Δ = %v, want the stale record on nsA replaced", c)
	}
}
