package core

// The §4.9 fallback: when MAKEAPPEAR cannot bind any change — every side
// of the diverging derivation already exists in the bad world (an
// intra-tick race: the state arrived in the same tick as the trigger but
// after it), or the only candidate change was already applied in an
// earlier round and then swallowed by a later logged event — the forward
// prediction has run out of leads. The paper's answer is to widen the
// search to the events themselves: some logged mutable event is doing
// the damage, so try, one at a time, counterfactuals derived from the
// log:
//
//   - a logged DELETE of a mutable tuple -> re-insert the tuple one tick
//     after the delete (undo a spurious retraction);
//   - a logged INSERT of a mutable tuple -> insert a copy one tick
//     earlier (fix an arrived-too-late race), and delete it one tick
//     after (undo a harmful insert).
//
// Each candidate is replayed and kept only if the first divergence
// strictly advances along the good chain (or disappears). Candidates are
// enumerated in log order and selected by the lowest successful index,
// so the outcome is deterministic at any parallelism.
//
// Before any replay is launched, candidates are pruned with the static
// slice of the symptom table (ndlog.Slice over the program's dependency
// graph): a mutable event whose table has no rule path to the symptom
// cannot change any derivation along the good chain — the slice is a
// backward closure, so a table outside it cannot reach ANY in-slice
// table — and is skipped, counted in Stats.CandidatesSliced. Pruning is
// sound (the slice is conservative), so diagnoses are byte-identical
// with Options.DisableSlicing set; only the replay count changes.

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/ndlog"
	"repro/internal/replay"
)

// maxFallbackCandidates bounds how many candidate changes one fallback
// round replays (after slice pruning). Log order makes the bound
// deterministic; scenarios that need more have bigger problems than a
// diagnosis can solve.
const maxFallbackCandidates = 64

// symptomSlice lazily computes the static slice of the symptom table:
// the root of the good chain (the observable the operator is comparing),
// falling back to the seed's table for single-level chains.
func (d *diag) symptomSlice(chainG []gLevel, seedB ndlog.At) *ndlog.SliceResult {
	d.sliceOnce.Do(func() {
		symptom := seedB.Tuple.Table
		if len(chainG) > 0 {
			symptom = chainG[len(chainG)-1].headAt.Tuple.Table
		}
		d.slice = ndlog.Slice(d.prog, symptom)
	})
	return d.slice
}

// levelIndex locates a divergence's level in the good chain (the chain
// levels hold distinct derive-tree nodes, so pointer identity is the
// level's name).
func levelIndex(chainG []gLevel, div *divergence) int {
	for i := range chainG {
		if chainG[i].derive == div.level.derive {
			return i
		}
	}
	return -1
}

// fallbackCandidates enumerates the candidate changes for one fallback
// round: log-ordered toggles of mutable base events, slice-pruned, with
// exact duplicates of already-applied changes removed.
func (d *diag) fallbackCandidates(world World, chainG []gLevel, seedB ndlog.At) []replay.Change {
	lister, ok := world.(eventLister)
	if !ok {
		return nil
	}
	var slice *ndlog.SliceResult
	if !d.opts.DisableSlicing {
		slice = d.symptomSlice(chainG, seedB)
	}
	var out []replay.Change
	for _, ev := range lister.BaseEvents() {
		if len(out) >= maxFallbackCandidates {
			break
		}
		if !world.IsMutable(ev.Node, ev.Tuple) {
			continue
		}
		if slice != nil && !slice.Contains(ev.Tuple.Table) {
			atomic.AddInt64(&d.stats.CandidatesSliced, 1)
			continue
		}
		var cands []replay.Change
		if ev.Kind == replay.EvInsert {
			cands = []replay.Change{
				{Insert: true, Node: ev.Node, Tuple: ev.Tuple, Tick: ev.Tick - 1},
				{Insert: false, Node: ev.Node, Tuple: ev.Tuple, Tick: ev.Tick + 1},
			}
		} else {
			cands = []replay.Change{
				{Insert: true, Node: ev.Node, Tuple: ev.Tuple, Tick: ev.Tick + 1},
			}
		}
		for _, c := range cands {
			if len(out) >= maxFallbackCandidates {
				break
			}
			if d.isApplied(c) {
				continue
			}
			out = append(out, c)
		}
	}
	return out
}

// isApplied reports whether an identical or earlier equivalent change is
// already part of the diagnosis (mirrors addChange's deduplication).
func (d *diag) isApplied(c replay.Change) bool {
	for _, p := range d.applied {
		if p.Insert == c.Insert && p.Node == c.Node && p.Tuple.Key() == c.Tuple.Key() && p.Tick <= c.Tick {
			return true
		}
	}
	return false
}

// fallbackChange searches the logged mutable events for a single change
// that strictly advances the first divergence, returning nil when none
// does (the caller then reports NoProgress). The search evaluates
// candidates on the pool when one is available; selection is always by
// the lowest successful log-order index, so results are byte-identical
// at any parallelism.
func (d *diag) fallbackChange(ctx context.Context, world World, chainG []gLevel, seedB ndlog.At, div *divergence) (*replay.Change, error) {
	cands := d.fallbackCandidates(world, chainG, seedB)
	if len(cands) == 0 {
		return nil, nil
	}
	divIdx := levelIndex(chainG, div)

	// advances reports whether a candidate's replayed world moves the
	// first divergence strictly past the current level. The comparison
	// is structural (level identity), never stamp-based, so injected
	// changes shifting sequence numbers cannot flip it. The elapsed time
	// is returned, not accumulated: pool workers run this concurrently
	// and timings must fold back in deterministically.
	advances := func(w World) (bool, time.Duration, error) {
		t0 := time.Now()
		div2, err := d.firstDivergence(chainG, w, seedB)
		dt := time.Since(t0)
		if err != nil {
			return false, dt, err
		}
		return div2 == nil || levelIndex(chainG, div2) > divIdx, dt, nil
	}

	if d.pool == nil {
		for i := range cands {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("diffprov: fallback search interrupted: %w", err)
			}
			t0 := time.Now()
			w, err := d.applyCached(ctx, world, cands[i:i+1], false)
			d.timings.UpdateTree += time.Since(t0)
			if err != nil {
				if ctx.Err() != nil {
					return nil, fmt.Errorf("diffprov: fallback search interrupted: %w", err)
				}
				continue
			}
			ok, dt, err := advances(w)
			d.timings.Divergence += dt
			if err != nil {
				continue
			}
			if ok {
				return &cands[i], nil
			}
		}
		return nil, nil
	}

	type trial struct {
		apply   time.Duration
		diverge time.Duration
		err     error
	}
	vals, ran, best := runCandidates(ctx, d.pool, len(cands),
		func(w World, k int) (trial, bool) {
			// Workers fork from the pre-diagnosis base world: replay the
			// full cumulative list so the counterfactual (and its memo
			// key) is identical to the sequential path's.
			full := append(append([]replay.Change(nil), d.applied...), cands[k])
			var tr trial
			t0 := time.Now()
			cw, err := d.applyCached(ctx, w, full, false)
			tr.apply = time.Since(t0)
			if err != nil {
				tr.err = err
				return tr, false
			}
			ok, dt, err := advances(cw)
			tr.diverge = dt
			if err != nil {
				tr.err = err
				return tr, false
			}
			return tr, ok
		})
	for k := range vals {
		if !ran[k] {
			continue
		}
		d.timings.UpdateTree += vals[k].apply
		d.timings.Divergence += vals[k].diverge
		if vals[k].err != nil && ctx.Err() != nil {
			return nil, fmt.Errorf("diffprov: fallback search interrupted: %w", vals[k].err)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("diffprov: fallback search interrupted: %w", err)
	}
	if best < 0 {
		return nil, nil
	}
	return &cands[best], nil
}
