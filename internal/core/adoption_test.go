package core

import (
	"context"
	"testing"

	"repro/internal/ndlog"
	"repro/internal/replay"
)

// derivedEntryProgram models controller-derived flow entries so that
// argmax competitors must be traced through their provenance to a
// mutable base (the intent), exercising traceCompetitorBase locally.
const derivedEntryProgram = `
table intent/4 base mutable;      // (prio, match, sw, nxt)
table switchUp/1 base mutable;    // (sw)
table flowEntry/3;                // (prio, match, nxt) derived per switch
table packet/1 event base;

rule fi flowEntry(@Sw, Prio, M, Nxt) :- intent(@C, Prio, M, Sw, Nxt), switchUp(@C, Sw).
rule fw packet(@Nxt, Dst) :-
    packet(@Sw, Dst), flowEntry(@Sw, Prio, M, Nxt), matches(Dst, M), argmax Prio.
`

func TestArgmaxCompetitorTracedToIntent(t *testing.T) {
	s := replay.NewSession(ndlog.MustParse(derivedEntryProgram))
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	intent := func(prio int64, m, sw, nxt string) ndlog.Tuple {
		return ndlog.NewTuple("intent", ndlog.Int(prio), ndlog.MustParsePrefix(m), ndlog.Str(sw), ndlog.Str(nxt))
	}
	must(s.Insert("ctl", ndlog.NewTuple("switchUp", ndlog.Str("s1")), 0))
	must(s.Insert("ctl", intent(1, "0.0.0.0/0", "s1", "web"), 1))
	// The conflicting app's rule shadows part of the legit traffic.
	must(s.Insert("ctl", intent(20, "9.9.0.0/16", "s1", "scrubber"), 2))
	must(s.Insert("s1", pkt("8.8.1.1"), 10)) // good
	must(s.Insert("s1", pkt("9.9.1.1"), 20)) // bad: legitimate but scrubbed
	must(s.Run())

	_, g, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	good := treeFor(t, g, "web", pkt("8.8.1.1"))
	bad := treeFor(t, g, "scrubber", pkt("9.9.1.1"))
	world, err := NewWorld(s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Diagnose(context.Background(), good, bad, world, Options{})
	if err != nil {
		t.Fatalf("Diagnose: %v", err)
	}
	if len(res.Changes) != 1 {
		t.Fatalf("Δ = %v, want 1", res.Changes)
	}
	c := res.Changes[0]
	// The deleted tuple must be the conflicting INTENT (the mutable base
	// beneath the derived competitor entry), not the entry itself.
	if c.Insert || c.Tuple.Table != "intent" {
		t.Fatalf("change = %v, want deleting the conflicting intent", c)
	}
	if c.Tuple.Args[0] != ndlog.Int(20) {
		t.Fatalf("change = %v, want the priority-20 intent", c)
	}
}

// TestAdoptionOfCoexistingEntry reproduces the Stanford §6.7 shape
// locally: the expected derivation's side entry is a *different* entry
// that already exists in the bad world (the co-located subnet's route),
// and the fault is a higher-priority drop entry.
func TestAdoptionOfCoexistingEntry(t *testing.T) {
	s := replay.NewSession(ndlog.MustParse(sdn1Program))
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	// Two co-located subnets behind the same next hop; the bad one also
	// matches a higher-priority drop entry (the fault).
	must(s.Insert("s2", fe(5, "172.19.254.0/24", "zone"), 0))
	must(s.Insert("s2", fe(5, "172.20.10.32/27", "zone"), 0))
	must(s.Insert("s2", fe(9, "172.20.10.32/27", "dropbox"), 0))
	must(s.Insert("s2", pkt("172.19.254.7"), 10)) // good: reaches the zone
	must(s.Insert("s2", pkt("172.20.10.33"), 20)) // bad: dropped
	must(s.Run())

	_, g, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	good := treeFor(t, g, "zone", pkt("172.19.254.7"))
	bad := treeFor(t, g, "dropbox", pkt("172.20.10.33"))
	world, err := NewWorld(s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Diagnose(context.Background(), good, bad, world, Options{})
	if err != nil {
		t.Fatalf("Diagnose: %v", err)
	}
	// The /27 route exists and is adopted; the only change is deleting
	// the drop entry — not inserting any generalized prefix.
	if len(res.Changes) != 1 {
		t.Fatalf("Δ = %v, want 1 (adoption must prevent an extra insert)", res.Changes)
	}
	c := res.Changes[0]
	if c.Insert || !c.Tuple.Equal(fe(9, "172.20.10.32/27", "dropbox")) {
		t.Fatalf("change = %v, want deleting the drop entry", c)
	}
}

// TestRepairCoversConstraint exercises the covers() repair branch: a
// policy prefix must cover the packet's more specific prefix.
func TestRepairCoversConstraint(t *testing.T) {
	prog := ndlog.MustParse(`
table policy/2 base mutable;      // (scope, nxt)
table ann/1 event base;           // (announced prefix)
table accepted/2 event;

rule acc accepted(P, Nxt) :- ann(P), policy(Scope, Nxt), covers(Scope, P).
`)
	s := replay.NewSession(prog)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	scope := ndlog.MustParsePrefix("10.0.0.0/9") // too narrow: meant /8
	must(s.Insert("r", ndlog.NewTuple("policy", scope, ndlog.Str("peer")), 0))
	annG := ndlog.NewTuple("ann", ndlog.MustParsePrefix("10.1.0.0/16"))   // covered
	annB := ndlog.NewTuple("ann", ndlog.MustParsePrefix("10.200.0.0/16")) // outside the /9
	must(s.Insert("r", annG, 10))
	must(s.Insert("r", annB, 20))
	must(s.Run())
	_, g, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	good := treeFor(t, g, "r", ndlog.NewTuple("accepted", ndlog.MustParsePrefix("10.1.0.0/16"), ndlog.Str("peer")))
	// The bad announcement was never accepted; there is no bad tree for
	// it — instead use a bad event that DID occur: nothing. This test
	// exercises the repair at the solver level instead.
	rule := prog.Rule("acc")
	solver, err := newSolver(prog, rule, []ndlog.At{
		{Node: "r", Tuple: annG},
		{Node: "r", Tuple: ndlog.NewTuple("policy", scope, ndlog.Str("peer"))},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := solver.bindTrigger(0, ndlog.At{Node: "r", Tuple: annB}); err != nil {
		t.Fatal(err)
	}
	expected := ndlog.At{Node: "r", Tuple: ndlog.NewTuple("accepted", ndlog.MustParsePrefix("10.200.0.0/16"), ndlog.Str("peer"))}
	if err := solver.bindHead(expected); err != nil {
		t.Fatal(err)
	}
	solver.propagate(&expected)
	repaired, err := solver.verify(expected)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if len(repaired) != 1 || repaired[0] != "Scope" {
		t.Fatalf("repaired = %v, want the Scope prefix generalized", repaired)
	}
	got := solver.envB["Scope"].(ndlog.Prefix)
	if !got.ContainsPrefix(ndlog.MustParsePrefix("10.200.0.0/16")) {
		t.Errorf("repaired scope %v does not cover the announcement", got)
	}
	if got.Bits > 8 {
		t.Errorf("repaired scope %v, want at most /8 (minimal generalization)", got)
	}
	_ = good
}

// TestWorldAccessors covers the ndlogWorld surface used indirectly.
func TestWorldAccessors(t *testing.T) {
	s := buildSDN1(t)
	w, err := NewWorld(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Nodes()) < 5 {
		t.Errorf("nodes = %v", w.Nodes())
	}
	if !w.OccurredBefore("web2", pkt("4.3.3.1"), 1<<40) {
		t.Error("the bad packet occurred")
	}
	if w.OccurredBefore("web2", pkt("4.3.3.1"), 0) {
		t.Error("not before tick 0")
	}
	if _, ok := w.FirstOccurrence("web2", pkt("4.3.3.1"), 1<<40); !ok {
		t.Error("first occurrence must be found")
	}
	if w.IsMutable("s1", pkt("4.3.3.1")) {
		t.Error("packets are immutable")
	}
}
