package core

import (
	"context"
	"testing"

	"repro/internal/ndlog"
	"repro/internal/replay"
)

// A minimal counting pipeline for core-local aggregate tests.
const countProgram = `
table item/2 event base;        // (group, seq)
table allowed/1 base mutable;   // (group)
table passed/2 event;           // (group, seq)
table total/2;                  // (group, count)

rule p passed(G, S) :- item(G, S), allowed(G).
rule t total(G, N) :- passed(G, S), N := count().
`

func buildCounting(t *testing.T, groups []string, perGroup int, allow []string) *replay.Session {
	t.Helper()
	s := replay.NewSession(ndlog.MustParse(countProgram))
	tick := int64(0)
	for _, g := range allow {
		tick++
		if err := s.Insert("n", ndlog.NewTuple("allowed", ndlog.Str(g)), tick); err != nil {
			t.Fatal(err)
		}
	}
	tick += 10
	for i := 0; i < perGroup; i++ {
		for _, g := range groups {
			tick++
			if err := s.Insert("n", ndlog.NewTuple("item", ndlog.Str(g), ndlog.Int(int64(i))), tick); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestAggregateDivergenceCountMismatch: the bad execution lost an
// "allowed" tuple mid-run, so the group's count is short; DiffProv must
// reinstate it.
func TestAggregateDivergenceCountMismatch(t *testing.T) {
	good := buildCounting(t, []string{"g"}, 4, []string{"g"})
	// Bad: allowed(g) never present -> zero events... that yields no bad
	// tree; instead allow g but remove it partway.
	bad := replay.NewSession(ndlog.MustParse(countProgram))
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(bad.Insert("n", ndlog.NewTuple("allowed", ndlog.Str("g")), 1))
	for i := 0; i < 2; i++ {
		must(bad.Insert("n", ndlog.NewTuple("item", ndlog.Str("g"), ndlog.Int(int64(i))), int64(20+i)))
	}
	must(bad.Delete("n", ndlog.NewTuple("allowed", ndlog.Str("g")), 30))
	for i := 2; i < 4; i++ {
		must(bad.Insert("n", ndlog.NewTuple("item", ndlog.Str("g"), ndlog.Int(int64(i))), int64(40+i)))
	}
	must(bad.Run())

	_, gg, err := good.Graph()
	if err != nil {
		t.Fatal(err)
	}
	_, gb, err := bad.Graph()
	if err != nil {
		t.Fatal(err)
	}
	goodTree := treeFor(t, gg, "n", ndlog.NewTuple("total", ndlog.Str("g"), ndlog.Int(4)))
	badTree := treeFor(t, gb, "n", ndlog.NewTuple("total", ndlog.Str("g"), ndlog.Int(2)))
	world, err := NewWorld(bad)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Diagnose(context.Background(), goodTree, badTree, world, Options{})
	if err != nil {
		t.Fatalf("Diagnose: %v", err)
	}
	if len(res.Changes) != 1 {
		t.Fatalf("Δ = %v, want reinstating allowed(g)", res.Changes)
	}
	c := res.Changes[0]
	if !c.Insert || !c.Tuple.Equal(ndlog.NewTuple("allowed", ndlog.Str("g"))) {
		t.Fatalf("change = %v, want insert allowed(g)", c)
	}
	// The reinsertion must land before the first missed item (tick 42).
	if c.Tick >= 42 {
		t.Errorf("change at t=%d, want before the first missed contribution", c.Tick)
	}
}

// TestAggregateHelpers covers the aggregate utility functions directly.
func TestAggregateHelpers(t *testing.T) {
	prog := ndlog.MustParse(countProgram)
	rule := prog.Rule("t")
	a := ndlog.NewTuple("total", ndlog.Str("g"), ndlog.Int(3))
	b := ndlog.NewTuple("total", ndlog.Str("g"), ndlog.Int(7))
	c := ndlog.NewTuple("total", ndlog.Str("h"), ndlog.Int(3))
	if !groupFieldsEqual(rule, a, b) {
		t.Error("same group, different count: group-equal")
	}
	if groupFieldsEqual(rule, a, c) {
		t.Error("different groups must not be group-equal")
	}
	if groupFieldsEqual(rule, a, ndlog.NewTuple("other", ndlog.Str("g"), ndlog.Int(3))) {
		t.Error("different tables must not be group-equal")
	}
	if v, ok := headCountValue(rule, a); !ok || v != ndlog.Int(3) {
		t.Errorf("headCountValue = %v, %v", v, ok)
	}
}

func TestSortChangesDeterministic(t *testing.T) {
	cs := []replay.Change{
		{Insert: true, Node: "b", Tuple: ndlog.NewTuple("t", ndlog.Int(2)), Tick: 5},
		{Insert: true, Node: "a", Tuple: ndlog.NewTuple("t", ndlog.Int(1)), Tick: 5},
		{Insert: false, Node: "c", Tuple: ndlog.NewTuple("t", ndlog.Int(3)), Tick: 1},
		{Insert: true, Node: "a", Tuple: ndlog.NewTuple("t", ndlog.Int(0)), Tick: 5},
	}
	sortChanges(cs)
	if cs[0].Tick != 1 {
		t.Error("earliest tick first")
	}
	if cs[1].Node != "a" || cs[2].Node != "a" || cs[3].Node != "b" {
		t.Errorf("node order broken: %v", cs)
	}
	if cs[1].Tuple.Key() > cs[2].Tuple.Key() {
		t.Error("tuple key order broken")
	}
}

func TestFailureKindStrings(t *testing.T) {
	for k, want := range map[FailureKind]string{
		SeedTypeMismatch: "seed type mismatch",
		ImmutableChange:  "change to immutable tuple required",
		NonInvertible:    "non-invertible computation",
		NoProgress:       "no progress",
		FailureKind(99):  "failure(99)",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

func TestMergeChangesKeepsEarliest(t *testing.T) {
	tu := ndlog.NewTuple("t", ndlog.Int(1))
	cs := mergeChanges([]replay.Change{
		{Insert: true, Node: "n", Tuple: tu, Tick: 50},
		{Insert: true, Node: "n", Tuple: tu, Tick: 10},
		{Insert: false, Node: "n", Tuple: tu, Tick: 30},
	})
	if len(cs) != 2 {
		t.Fatalf("merged = %v, want insert+delete", cs)
	}
	for _, c := range cs {
		if c.Insert && c.Tick != 10 {
			t.Errorf("insert kept tick %d, want earliest 10", c.Tick)
		}
	}
}
