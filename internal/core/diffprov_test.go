package core

import (
	"context"
	"testing"

	"repro/internal/ndlog"
	"repro/internal/provenance"
	"repro/internal/replay"
)

// sdn1Program is the Figure 1 network: six switches, two web servers, a
// DPI box. S2 has the overly specific rule (4.3.2.0/24 instead of /23).
const sdn1Program = `
table flowEntry/3 base mutable;   // (prio, match, nextNode)
table packet/1 event base;        // (dstIP); destination selects the path

rule fw packet(@Nxt, Dst) :-
    packet(@Sw, Dst),
    flowEntry(@Sw, Prio, M, Nxt),
    matches(Dst, M),
    argmax Prio.
`

func fe(prio int64, match, nxt string) ndlog.Tuple {
	return ndlog.NewTuple("flowEntry", ndlog.Int(prio), ndlog.MustParsePrefix(match), ndlog.Str(nxt))
}

func pkt(ip string) ndlog.Tuple {
	return ndlog.NewTuple("packet", ndlog.MustParseIP(ip))
}

// buildSDN1 drives the scenario: the good packet (4.3.2.1) reaches web1
// via s1-s2-s6; the bad packet (4.3.3.1) should too, but the overly
// specific /24 sends it to web2 via s1-s2-s3 instead.
func buildSDN1(t *testing.T) *replay.Session {
	t.Helper()
	s := replay.NewSession(ndlog.MustParse(sdn1Program))
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.Insert("s1", fe(1, "0.0.0.0/0", "s2"), 0))
	must(s.Insert("s2", fe(10, "4.3.2.0/24", "s6"), 0)) // the fault: should be /23
	must(s.Insert("s2", fe(1, "0.0.0.0/0", "s3"), 0))
	must(s.Insert("s6", fe(1, "0.0.0.0/0", "web1"), 0))
	must(s.Insert("s3", fe(1, "0.0.0.0/0", "web2"), 0))
	must(s.Insert("s1", pkt("4.3.2.1"), 10)) // good: reaches web1
	must(s.Insert("s1", pkt("4.3.3.1"), 20)) // bad: reaches web2
	must(s.Run())
	return s
}

// treeFor extracts the provenance tree for a packet arrival.
func treeFor(t *testing.T, g *provenance.Graph, node string, tuple ndlog.Tuple) *provenance.Tree {
	t.Helper()
	ap := g.LastAppear(node, tuple)
	if ap == nil {
		t.Fatalf("no arrival of %s at %s", tuple, node)
	}
	return g.Tree(ap.ID)
}

func TestDiffProvSDN1(t *testing.T) {
	s := buildSDN1(t)
	_, g, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	good := treeFor(t, g, "web1", pkt("4.3.2.1"))
	bad := treeFor(t, g, "web2", pkt("4.3.3.1"))

	world, err := NewWorld(s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Diagnose(context.Background(), good, bad, world, Options{})
	if err != nil {
		t.Fatalf("Diagnose: %v", err)
	}
	if len(res.Changes) != 1 {
		t.Fatalf("Δ = %v, want exactly 1 change (the paper's headline result)", res.Changes)
	}
	c := res.Changes[0]
	if !c.Insert || c.Node != "s2" {
		t.Fatalf("change = %v, want an insert on s2", c)
	}
	want := fe(10, "4.3.2.0/23", "s6")
	if !c.Tuple.Equal(want) {
		t.Fatalf("change = %s, want %s (the generalized /23 entry)", c.Tuple, want)
	}
	// Postcondition: in the final world the bad packet reaches web1.
	fw := res.FinalWorld.(*ndlogWorld)
	if !fw.engine.ExistsEver("web1", pkt("4.3.3.1")) {
		t.Error("after applying Δ, the bad packet must reach web1")
	}
	// The live system was never touched.
	if s.Live().ExistsEver("web1", pkt("4.3.3.1")) {
		t.Error("diagnosis must not modify the live execution")
	}
	if res.Iterations < 2 {
		t.Errorf("iterations = %d, want at least 2 (one fix round + one verification round)", res.Iterations)
	}
	if len(res.Rounds) != 1 {
		t.Errorf("rounds with changes = %d, want 1", len(res.Rounds))
	}
	// Seeds: the packets themselves.
	if res.GoodSeed.Tuple.Table != "packet" || res.BadSeed.Tuple.Table != "packet" {
		t.Errorf("seeds = %s / %s, want packets", res.GoodSeed.Tuple, res.BadSeed.Tuple)
	}
	if res.Timings.Total() <= 0 {
		t.Error("timings must be recorded")
	}
}

func TestDiffProvSDN2MultiControllerConflict(t *testing.T) {
	// Two conflicting rules from different controller apps: the
	// higher-priority scrubber rule overlaps legitimate traffic.
	s := replay.NewSession(ndlog.MustParse(sdn1Program))
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.Insert("s1", fe(1, "0.0.0.0/0", "s2"), 0))
	must(s.Insert("s2", fe(1, "0.0.0.0/0", "web"), 0))        // app 1: default to web
	must(s.Insert("s2", fe(20, "9.9.0.0/16", "scrubber"), 0)) // app 2: suspect range, too broad
	must(s.Insert("s1", pkt("8.8.1.1"), 10))                  // good: reaches web
	must(s.Insert("s1", pkt("9.9.1.1"), 20))                  // bad: legitimate but scrubbed
	must(s.Run())

	_, g, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	good := treeFor(t, g, "web", pkt("8.8.1.1"))
	bad := treeFor(t, g, "scrubber", pkt("9.9.1.1"))
	world, err := NewWorld(s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Diagnose(context.Background(), good, bad, world, Options{})
	if err != nil {
		t.Fatalf("Diagnose: %v", err)
	}
	if len(res.Changes) != 1 {
		t.Fatalf("Δ = %v, want exactly 1", res.Changes)
	}
	c := res.Changes[0]
	if c.Insert {
		t.Fatalf("change = %v, want a deletion of the conflicting rule", c)
	}
	if !c.Tuple.Equal(fe(20, "9.9.0.0/16", "scrubber")) || c.Node != "s2" {
		t.Fatalf("change = %v, want the scrubber rule on s2", c)
	}
	fw := res.FinalWorld.(*ndlogWorld)
	if !fw.engine.ExistsEver("web", pkt("9.9.1.1")) {
		t.Error("after applying Δ, the legitimate packet must reach the web server")
	}
}

func TestDiffProvSDN3ExpiredRule(t *testing.T) {
	// A high-priority rule expires; traffic falls back to a lower-priority
	// rule and reaches the wrong host. The good example is in the past.
	s := replay.NewSession(ndlog.MustParse(sdn1Program))
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	video := fe(10, "7.7.7.0/24", "hostA")
	must(s.Insert("s1", video, 0))
	must(s.Insert("s1", fe(1, "0.0.0.0/0", "hostB"), 0))
	must(s.Insert("s1", pkt("7.7.7.1"), 10)) // good (past): reaches hostA
	must(s.Delete("s1", video, 50))          // the rule expires
	must(s.Insert("s1", pkt("7.7.7.2"), 60)) // bad: reaches hostB
	must(s.Run())

	_, g, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	good := treeFor(t, g, "hostA", pkt("7.7.7.1"))
	bad := treeFor(t, g, "hostB", pkt("7.7.7.2"))
	world, err := NewWorld(s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Diagnose(context.Background(), good, bad, world, Options{})
	if err != nil {
		t.Fatalf("Diagnose: %v", err)
	}
	if len(res.Changes) != 1 {
		t.Fatalf("Δ = %v, want exactly 1 (the expired entry)", res.Changes)
	}
	c := res.Changes[0]
	if !c.Insert || !c.Tuple.Equal(video) {
		t.Fatalf("change = %v, want reinstating %s", c, video)
	}
	if c.Tick >= 60 {
		t.Errorf("the entry must be reinstated before the bad packet (tick %d)", c.Tick)
	}
}

func TestDiffProvSDN4TwoFaultsTwoRounds(t *testing.T) {
	// Two faulty entries on consecutive hops: DiffProv needs two rounds.
	s := replay.NewSession(ndlog.MustParse(sdn1Program))
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.Insert("s1", fe(10, "4.3.2.0/24", "s2"), 0)) // fault 1: should be /23
	must(s.Insert("s1", fe(1, "0.0.0.0/0", "x1"), 0))
	must(s.Insert("x1", fe(1, "0.0.0.0/0", "webWrong"), 0))
	must(s.Insert("s2", fe(10, "4.3.2.0/24", "s6"), 0)) // fault 2: should be /23
	must(s.Insert("s2", fe(1, "0.0.0.0/0", "x2"), 0))
	must(s.Insert("x2", fe(1, "0.0.0.0/0", "webWrong"), 0))
	must(s.Insert("s6", fe(1, "0.0.0.0/0", "web1"), 0))
	must(s.Insert("s1", pkt("4.3.2.1"), 10)) // good
	must(s.Insert("s1", pkt("4.3.3.1"), 20)) // bad: misrouted at s1 already
	must(s.Run())

	_, g, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	good := treeFor(t, g, "web1", pkt("4.3.2.1"))
	bad := treeFor(t, g, "webWrong", pkt("4.3.3.1"))
	world, err := NewWorld(s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Diagnose(context.Background(), good, bad, world, Options{})
	if err != nil {
		t.Fatalf("Diagnose: %v", err)
	}
	if len(res.Rounds) != 2 {
		t.Fatalf("rounds = %d, want 2 (the paper reports 1/1 for SDN4)", len(res.Rounds))
	}
	for i, r := range res.Rounds {
		if len(r.Changes) != 1 {
			t.Errorf("round %d Δ = %v, want exactly 1", i, r.Changes)
		}
	}
	if len(res.Changes) != 2 {
		t.Fatalf("total Δ = %v, want 2", res.Changes)
	}
	fw := res.FinalWorld.(*ndlogWorld)
	if !fw.engine.ExistsEver("web1", pkt("4.3.3.1")) {
		t.Error("after both rounds the bad packet must reach web1")
	}
}

func TestDiffProvSeedTypeMismatch(t *testing.T) {
	s := buildSDN1(t)
	_, g, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	// "Good" reference: a flow entry's own provenance (a config tuple,
	// not a packet).
	feAppear := g.LastAppear("s6", fe(1, "0.0.0.0/0", "web1"))
	good := g.Tree(feAppear.ID)
	bad := treeFor(t, g, "web2", pkt("4.3.3.1"))
	world, err := NewWorld(s)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Diagnose(context.Background(), good, bad, world, Options{})
	de, ok := err.(*DiagnosisError)
	if !ok {
		t.Fatalf("err = %v, want DiagnosisError", err)
	}
	if de.Kind != SeedTypeMismatch {
		t.Fatalf("kind = %s, want seed type mismatch", de.Kind)
	}
	if de.Error() == "" {
		t.Error("error message empty")
	}
}

func TestDiffProvImmutableChange(t *testing.T) {
	// The only fix would be to change the packet's ingress, which is
	// immutable: the packets enter at different switches.
	prog := ndlog.MustParse(`
table flowEntry/3 base;           // immutable flow entries this time
table packet/1 event base;

rule fw packet(@Nxt, Dst) :-
    packet(@Sw, Dst),
    flowEntry(@Sw, Prio, M, Nxt),
    matches(Dst, M),
    argmax Prio.
`)
	s := replay.NewSession(prog)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.Insert("s1", fe(10, "4.3.2.0/24", "good"), 0))
	must(s.Insert("s1", fe(1, "0.0.0.0/0", "bad"), 0))
	must(s.Insert("s1", pkt("4.3.2.1"), 10))
	must(s.Insert("s1", pkt("4.3.3.1"), 20))
	must(s.Run())
	_, g, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	good := treeFor(t, g, "good", pkt("4.3.2.1"))
	bad := treeFor(t, g, "bad", pkt("4.3.3.1"))
	world, err := NewWorld(s)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Diagnose(context.Background(), good, bad, world, Options{})
	de, ok := err.(*DiagnosisError)
	if !ok {
		t.Fatalf("err = %v, want DiagnosisError", err)
	}
	if de.Kind != ImmutableChange {
		t.Fatalf("kind = %s, want immutable change", de.Kind)
	}
	if len(de.Attempted) == 0 {
		t.Error("the attempted change must be reported as a diagnostic clue (§4.7)")
	}
}

func TestDiffProvInversionThroughAssignment(t *testing.T) {
	// The paper's §4.5 example shape: abc(p, q) :- foo(p), bar(x), q = x+2.
	prog := ndlog.MustParse(`
table foo/1 event base;
table bar/1 base mutable;
table abc/2 event;

rule mk abc(P, Q) :- foo(P), bar(X), Q := X + 2.
`)
	s := replay.NewSession(prog)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.Insert("n", ndlog.NewTuple("bar", ndlog.Int(4)), 0))
	must(s.Insert("n", ndlog.NewTuple("foo", ndlog.Int(1)), 10)) // good: abc(1, 6)
	must(s.Run())
	// Bad world: a separate session where bar is 9 instead of 4.
	sB := replay.NewSession(prog)
	must(sB.Insert("n", ndlog.NewTuple("bar", ndlog.Int(9)), 0))
	must(sB.Insert("n", ndlog.NewTuple("foo", ndlog.Int(2)), 10)) // bad: abc(2, 11)
	must(sB.Run())

	_, gg, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	_, gb, err := sB.Graph()
	if err != nil {
		t.Fatal(err)
	}
	good := treeFor(t, gg, "n", ndlog.NewTuple("abc", ndlog.Int(1), ndlog.Int(6)))
	bad := treeFor(t, gb, "n", ndlog.NewTuple("abc", ndlog.Int(2), ndlog.Int(11)))
	world, err := NewWorld(sB)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Diagnose(context.Background(), good, bad, world, Options{})
	if err != nil {
		t.Fatalf("Diagnose: %v", err)
	}
	if len(res.Changes) != 1 {
		t.Fatalf("Δ = %v, want 1", res.Changes)
	}
	// x = q - 2 = 4: the inverted computation recovers bar(4).
	if !res.Changes[0].Tuple.Equal(ndlog.NewTuple("bar", ndlog.Int(4))) {
		t.Fatalf("change = %v, want bar(4) via inversion of q = x+2", res.Changes[0])
	}
}
