package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/ndlog"
	"repro/internal/provenance"
	"repro/internal/replay"
)

// Options configure the DiffProv algorithm.
type Options struct {
	// MaxRounds bounds the FIRSTDIV / MAKEAPPEAR / UPDATETREE iterations
	// (one per independent fault; the paper's SDN4 needs two).
	MaxRounds int
	// InjectSlack is how many ticks before the bad seed counterfactual
	// changes are injected ("shortly before they are needed", §4.8).
	InjectSlack int64
	// MaxDepth bounds the MAKEAPPEAR recursion.
	MaxDepth int
	// Minimize enables the post-pass of §4.9 ("the set of changes
	// returned by DiffProv is not necessarily the smallest"): after
	// alignment, each change is tentatively dropped and the alignment
	// re-verified; redundant changes are removed.
	Minimize bool
	// FollowKeyedRows changes how load-balancer-style indirection is
	// resolved (§4.9's ECMP discussion): when a side atom over a keyed
	// table has its key columns bound to values that differ from the
	// good execution's (a recomputed hash bucket, an anycast slot), the
	// bad world's own row for that key is followed instead of expecting
	// the good row's values. With it, "the bad query hashed to replica 0,
	// so replica 0's record is what matters" — the diagnosis lands on
	// the selected row's content rather than on re-aiming the selector.
	FollowKeyedRows bool
}

func (o *Options) defaults() {
	if o.MaxRounds == 0 {
		o.MaxRounds = 8
	}
	if o.InjectSlack == 0 {
		o.InjectSlack = 2
	}
	if o.MaxDepth == 0 {
		o.MaxDepth = 64
	}
}

// Timings decomposes DiffProv's reasoning time, reproducing the paper's
// Figure 8 breakdown. Replay time is accounted separately (Figure 7) by
// the replay session.
type Timings struct {
	FindSeed   time.Duration // locating and checking the seeds (§4.2-4.3)
	Divergence time.Duration // detecting the first divergence (§4.4)
	MakeAppear time.Duration // making missing tuples appear (§4.5)
	UpdateTree time.Duration // updating T_B after tuple changes (§4.6), incl. replay
}

// Total returns the total reasoning time.
func (t Timings) Total() time.Duration {
	return t.FindSeed + t.Divergence + t.MakeAppear + t.UpdateTree
}

// Round records the changes discovered in one iteration of the main loop.
type Round struct {
	Changes []replay.Change
}

// Result is the output of a successful diagnosis.
type Result struct {
	// Changes is the differential provenance Δ(B→G): the estimated root
	// cause. For the paper's scenarios this has exactly one element per
	// fault.
	Changes []replay.Change
	// Rounds groups the changes by iteration.
	Rounds []Round
	// Iterations is the number of main-loop iterations executed.
	Iterations int
	// Timings decomposes the reasoning time.
	Timings Timings
	// FinalWorld is the counterfactual bad world with all changes
	// applied, in which the bad execution behaves like the good one.
	FinalWorld World
	// GoodSeed and BadSeed are the seeds of the two trees.
	GoodSeed, BadSeed ndlog.At
}

// diag carries the state of one diagnosis.
type diag struct {
	prog    *ndlog.Program
	opts    Options
	timings Timings
	// pending are the changes of the current round, not yet applied.
	pending []replay.Change
	// applied are the changes of earlier rounds, already in the world.
	applied []replay.Change
}

// gLevel is one step of the good tree's trigger chain, seed to root.
type gLevel struct {
	derive *provenance.Tree
	headAt ndlog.At
}

// Diagnose runs the DiffProv algorithm of Figure 3: given the good tree,
// the bad tree, and the bad execution's world, it computes the set of
// changes to mutable base tuples that makes the bad tree equivalent to
// the good tree while preserving the bad seed.
//
// The context bounds the diagnosis: cancellation and deadlines are
// honored at every round boundary and inside the UPDATETREE replays, and
// the context's error is returned (wrapped) when the diagnosis is cut
// short.
func Diagnose(ctx context.Context, goodTree, badTree *provenance.Tree, world World, opts Options) (*Result, error) {
	opts.defaults()
	d := &diag{prog: world.Program(), opts: opts}
	baseWorld := world

	// Step 1: find the seeds and check comparability (§4.2-4.3).
	t0 := time.Now()
	seedGT, err := goodTree.FindSeed()
	if err != nil {
		return nil, failf(SeedTypeMismatch, "cannot find seed of good tree: %v", err)
	}
	seedBT, err := badTree.FindSeed()
	if err != nil {
		return nil, failf(SeedTypeMismatch, "cannot find seed of bad tree: %v", err)
	}
	seedG := ndlog.At{Node: seedGT.Vertex.Node, Tuple: seedGT.Vertex.Tuple, Stamp: seedGT.Vertex.At}
	seedB := ndlog.At{Node: seedBT.Vertex.Node, Tuple: seedBT.Vertex.Tuple, Stamp: seedBT.Vertex.At}
	d.timings.FindSeed += time.Since(t0)
	if seedG.Tuple.Table != seedB.Tuple.Table {
		return nil, &DiagnosisError{
			Kind: SeedTypeMismatch,
			Detail: fmt.Sprintf("good seed is a %s tuple but bad seed is a %s tuple; the events are not comparable",
				seedG.Tuple.Table, seedB.Tuple.Table),
			Tuple: seedB.Tuple,
			Node:  seedB.Node,
		}
	}
	// Extract the good chain (trigger path, seed to root).
	chainG, err := goodChain(goodTree)
	if err != nil {
		return nil, err
	}

	res := &Result{GoodSeed: seedG, BadSeed: seedB}
	for iter := 0; iter < opts.MaxRounds; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("diffprov: diagnosis interrupted after %d rounds: %w", iter, err)
		}
		res.Iterations = iter + 1
		// Step 2: find the first divergence (§4.4).
		t1 := time.Now()
		div, err := d.firstDivergence(chainG, world, seedB)
		d.timings.Divergence += time.Since(t1)
		if err != nil {
			return nil, err
		}
		if div == nil {
			// Trees are equivalent: done.
			res.Changes = mergeChanges(d.applied)
			res.Timings = d.timings
			res.FinalWorld = world
			if opts.Minimize && len(res.Changes) > 1 {
				if err := d.minimize(ctx, res, baseWorld, chainG, seedB); err != nil {
					return nil, err
				}
			}
			return res, nil
		}

		// Step 3: make the expected tuple appear (§4.5).
		t2 := time.Now()
		d.pending = nil
		err = d.makeAppear(world, div.level.derive, div.expected, &div.trigger, div.asOf.T, 0)
		d.timings.MakeAppear += time.Since(t2)
		if err != nil {
			if de, ok := err.(*DiagnosisError); ok {
				de.Attempted = append(de.Attempted, d.pending...)
			}
			return nil, err
		}
		if len(d.pending) == 0 {
			return nil, &DiagnosisError{
				Kind:   NoProgress,
				Detail: fmt.Sprintf("divergence at %s on %s but no applicable change found (possible race condition, §4.9)", div.expected.Tuple, div.expected.Node),
				Tuple:  div.expected.Tuple,
				Node:   div.expected.Node,
			}
		}

		// Step 4: update T_B (§4.6) by rolling the clone forward.
		t3 := time.Now()
		newWorld, err := world.Apply(ctx, d.pending)
		d.timings.UpdateTree += time.Since(t3)
		if err != nil {
			return nil, fmt.Errorf("diffprov: updating the bad tree: %w", err)
		}
		world = newWorld
		res.Rounds = append(res.Rounds, Round{Changes: d.pending})
		d.applied = append(d.applied, d.pending...)
		d.pending = nil
	}
	return nil, &DiagnosisError{
		Kind:      NoProgress,
		Detail:    fmt.Sprintf("trees still differ after %d rounds", opts.MaxRounds),
		Attempted: d.applied,
	}
}

// minimize greedily drops changes whose removal keeps the trees aligned,
// re-verifying each candidate subset against a fresh clone of the
// original bad execution.
func (d *diag) minimize(ctx context.Context, res *Result, baseWorld World, chainG []gLevel, seedB ndlog.At) error {
	changes := append([]replay.Change(nil), res.Changes...)
	for i := 0; i < len(changes); {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("diffprov: minimization interrupted: %w", err)
		}
		candidate := append(append([]replay.Change(nil), changes[:i]...), changes[i+1:]...)
		t0 := time.Now()
		w, err := baseWorld.Apply(ctx, candidate)
		d.timings.UpdateTree += time.Since(t0)
		if err != nil {
			i++
			continue
		}
		t1 := time.Now()
		div, err := d.firstDivergence(chainG, w, seedB)
		d.timings.Divergence += time.Since(t1)
		if err == nil && div == nil {
			changes = candidate // the dropped change was redundant
			res.FinalWorld = w
			continue
		}
		i++
	}
	res.Changes = changes
	res.Timings = d.timings
	return nil
}

// goodChain extracts the derivation levels along the good tree's trigger
// chain, ordered from the seed to the root.
func goodChain(t *provenance.Tree) ([]gLevel, error) {
	chain, err := t.TriggerChain()
	if err != nil {
		return nil, err
	}
	var levels []gLevel
	for i := len(chain) - 1; i >= 0; i-- {
		n := chain[i]
		if n.Vertex.Type != provenance.Derive {
			continue
		}
		head := headOf(n)
		levels = append(levels, gLevel{derive: n, headAt: head})
	}
	return levels, nil
}

// headOf returns the head occurrence of a DERIVE tree node: its parent
// APPEAR (or the vertex's own tuple when the derive is the tree root).
func headOf(dn *provenance.Tree) ndlog.At {
	if dn.Parent != nil && dn.Parent.Vertex.Type == provenance.Appear {
		v := dn.Parent.Vertex
		return ndlog.At{Node: v.Node, Tuple: v.Tuple, Stamp: v.At}
	}
	v := dn.Vertex
	return ndlog.At{Node: v.Node, Tuple: v.Tuple, Stamp: v.At}
}

// childAt describes one body occurrence of a derivation in the good tree.
type childAt struct {
	at    ndlog.At
	cause *provenance.Tree // the INSERT or DERIVE beneath it (nil if absent)
	base  bool             // cause is an INSERT
}

// gChildrenOf extracts the body occurrences of a DERIVE tree node in body
// order, along with the cause subtree under each.
func gChildrenOf(dn *provenance.Tree) ([]childAt, error) {
	out := make([]childAt, 0, len(dn.Children))
	for _, c := range dn.Children {
		v := c.Vertex
		var at ndlog.At
		causeHolder := c
		switch v.Type {
		case provenance.Appear:
			at = ndlog.At{Node: v.Node, Tuple: v.Tuple, Stamp: v.At}
		case provenance.Exist:
			at = ndlog.At{Node: v.Node, Tuple: v.Tuple, Stamp: v.Span.From}
			if len(c.Children) != 1 {
				return nil, fmt.Errorf("diffprov: EXIST %s has %d children", v.Tuple, len(c.Children))
			}
			causeHolder = c.Children[0] // the APPEAR
		default:
			return nil, fmt.Errorf("diffprov: DERIVE child is %s", v.Type)
		}
		ca := childAt{at: at}
		if len(causeHolder.Children) == 1 {
			cause := causeHolder.Children[0]
			ca.cause = cause
			ca.base = cause.Vertex.Type == provenance.Insert
		}
		out = append(out, ca)
	}
	return out, nil
}

func childAts(cs []childAt) []ndlog.At {
	out := make([]ndlog.At, len(cs))
	for i, c := range cs {
		out[i] = c.at
	}
	return out
}

// mergeChanges deduplicates changes that differ only in injection time
// (a later round may re-inject a tuple earlier), keeping the earliest.
func mergeChanges(cs []replay.Change) []replay.Change {
	type key struct {
		insert bool
		node   string
		tkey   string
	}
	best := map[key]int{}
	var out []replay.Change
	for _, c := range cs {
		k := key{c.Insert, c.Node, c.Tuple.Key()}
		if i, ok := best[k]; ok {
			if c.Tick < out[i].Tick {
				out[i] = c
			}
			continue
		}
		best[k] = len(out)
		out = append(out, c)
	}
	sortChanges(out)
	return out
}
