package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ndlog"
	"repro/internal/provenance"
	"repro/internal/replay"
)

// Options configure the DiffProv algorithm.
type Options struct {
	// MaxRounds bounds the FIRSTDIV / MAKEAPPEAR / UPDATETREE iterations
	// (one per independent fault; the paper's SDN4 needs two).
	MaxRounds int
	// InjectSlack is how many ticks before the bad seed counterfactual
	// changes are injected ("shortly before they are needed", §4.8).
	InjectSlack int64
	// MaxDepth bounds the MAKEAPPEAR recursion.
	MaxDepth int
	// Minimize enables the post-pass of §4.9 ("the set of changes
	// returned by DiffProv is not necessarily the smallest"): after
	// alignment, each change is tentatively dropped and the alignment
	// re-verified; redundant changes are removed.
	Minimize bool
	// FollowKeyedRows changes how load-balancer-style indirection is
	// resolved (§4.9's ECMP discussion): when a side atom over a keyed
	// table has its key columns bound to values that differ from the
	// good execution's (a recomputed hash bucket, an anycast slot), the
	// bad world's own row for that key is followed instead of expecting
	// the good row's values. With it, "the bad query hashed to replica 0,
	// so replica 0's record is what matters" — the diagnosis lands on
	// the selected row's content rather than on re-aiming the selector.
	FollowKeyedRows bool
	// Parallelism bounds how many independent counterfactual candidate
	// evaluations (minimize drop-subsets, AutoDiagnose references) run
	// concurrently, each on a private replay-session clone. 0 means
	// GOMAXPROCS; negative means sequential. Results are byte-identical
	// at any setting: candidates are selected by their original
	// enumeration index, never by completion order.
	Parallelism int
	// DisableFingerprints turns off the structural-fingerprint fast
	// paths — the alignment memo over the good chain and the
	// counterfactual replay deduplication — as an ablation for the
	// differential tests and benchmarks. It never changes results, only
	// how much work is repeated.
	DisableFingerprints bool
	// DisableSlicing turns off static candidate pruning as an ablation
	// arm. When the §4.9 fallback search enumerates logged mutable
	// events as counterfactual candidates, events whose table lies
	// outside the symptom's static slice (ndlog.Slice: no rule path from
	// the table to the diverging chain) are skipped before any replay is
	// launched and counted in Stats.CandidatesSliced. The slice is
	// conservative, so pruned candidates can never succeed: diagnoses
	// are byte-identical with slicing on or off.
	DisableSlicing bool

	// sharedMemo, when non-nil, is a replay memo shared across several
	// Diagnose calls against the same base world; AutoDiagnose sets it so
	// candidate references dedupe identical counterfactual replays.
	sharedMemo *replayMemo
}

func (o *Options) defaults() {
	if o.MaxRounds == 0 {
		o.MaxRounds = 8
	}
	if o.InjectSlack == 0 {
		o.InjectSlack = 2
	}
	if o.MaxDepth == 0 {
		o.MaxDepth = 64
	}
}

// Timings decomposes DiffProv's reasoning time, reproducing the paper's
// Figure 8 breakdown. Replay time is accounted separately (Figure 7) by
// the replay session.
type Timings struct {
	FindSeed   time.Duration // locating and checking the seeds (§4.2-4.3)
	Divergence time.Duration // detecting the first divergence (§4.4)
	MakeAppear time.Duration // making missing tuples appear (§4.5)
	UpdateTree time.Duration // updating T_B after tuple changes (§4.6), incl. replay
}

// Total returns the total reasoning time.
func (t Timings) Total() time.Duration {
	return t.FindSeed + t.Divergence + t.MakeAppear + t.UpdateTree
}

// DiagStats counts the fast-path and parallelism activity of one
// diagnosis. The counters describe how the work was performed, never what
// was concluded: diagnoses are byte-identical with the fast paths on or
// off and at any parallelism.
type DiagStats struct {
	// FingerprintHits counts chain-alignment steps answered from the
	// fingerprint-keyed memo instead of re-running the rule solver.
	FingerprintHits int64
	// CandidatesDeduped counts counterfactual replays skipped because an
	// identical cumulative change list had already been replayed.
	CandidatesDeduped int64
	// ParallelCandidates counts candidate evaluations executed on pool
	// workers.
	ParallelCandidates int64
	// CandidatesSliced counts fallback candidate events skipped before
	// any replay because their table is outside the symptom's static
	// slice (see Options.DisableSlicing).
	CandidatesSliced int64
}

// add folds another stats record into the receiver.
func (s *DiagStats) add(o DiagStats) {
	s.FingerprintHits += o.FingerprintHits
	s.CandidatesDeduped += o.CandidatesDeduped
	s.ParallelCandidates += o.ParallelCandidates
	s.CandidatesSliced += o.CandidatesSliced
}

// Round records the changes discovered in one iteration of the main loop.
type Round struct {
	Changes []replay.Change
}

// Result is the output of a successful diagnosis.
type Result struct {
	// Changes is the differential provenance Δ(B→G): the estimated root
	// cause. For the paper's scenarios this has exactly one element per
	// fault.
	Changes []replay.Change
	// Rounds groups the changes by iteration.
	Rounds []Round
	// Iterations is the number of main-loop iterations executed.
	Iterations int
	// Timings decomposes the reasoning time.
	Timings Timings
	// FinalWorld is the counterfactual bad world with all changes
	// applied, in which the bad execution behaves like the good one.
	FinalWorld World
	// GoodSeed and BadSeed are the seeds of the two trees.
	GoodSeed, BadSeed ndlog.At
	// Stats counts fingerprint fast-path hits and parallel evaluations.
	Stats DiagStats
}

// diag carries the state of one diagnosis.
type diag struct {
	prog    *ndlog.Program
	opts    Options
	timings Timings
	// pending are the changes of the current round, not yet applied.
	pending []replay.Change
	// applied are the changes of earlier rounds, already in the world.
	applied []replay.Change

	// stats fields are updated atomically: pool workers run
	// firstDivergence and applyCached concurrently.
	stats DiagStats
	// replays dedupes counterfactual replays by cumulative change list
	// (nil when fingerprints are disabled).
	replays *replayMemo
	// align memoizes the §4.4 forward prediction per chain level, keyed
	// by the good derive vertex's structural fingerprint plus the bad
	// cursor (see alignKey); nil when fingerprints are disabled or keyed
	// rows are followed (the prediction then probes the live world).
	alignMu sync.Mutex
	align   map[alignKey]ndlog.At
	// pool evaluates minimize candidates in parallel (nil = sequential).
	pool *candidatePool
	// sliceOnce/slice lazily cache the static slice of the symptom table
	// (the good chain's root) used to prune fallback candidates; nil
	// when slicing is disabled (see fallback.go).
	sliceOnce sync.Once
	slice     *ndlog.SliceResult
}

// statsSnapshot reads the counters after all workers have quiesced.
func (d *diag) statsSnapshot() DiagStats {
	return DiagStats{
		FingerprintHits:    atomic.LoadInt64(&d.stats.FingerprintHits),
		CandidatesDeduped:  atomic.LoadInt64(&d.stats.CandidatesDeduped),
		ParallelCandidates: atomic.LoadInt64(&d.stats.ParallelCandidates),
		CandidatesSliced:   atomic.LoadInt64(&d.stats.CandidatesSliced),
	}
}

// gLevel is one step of the good tree's trigger chain, seed to root.
type gLevel struct {
	derive *provenance.Tree
	headAt ndlog.At
}

// Diagnose runs the DiffProv algorithm of Figure 3: given the good tree,
// the bad tree, and the bad execution's world, it computes the set of
// changes to mutable base tuples that makes the bad tree equivalent to
// the good tree while preserving the bad seed.
//
// The context bounds the diagnosis: cancellation and deadlines are
// honored at every round boundary and inside the UPDATETREE replays, and
// the context's error is returned (wrapped) when the diagnosis is cut
// short.
func Diagnose(ctx context.Context, goodTree, badTree *provenance.Tree, world World, opts Options) (*Result, error) {
	opts.defaults()
	d := &diag{prog: world.Program(), opts: opts}
	baseWorld := world
	if !opts.DisableFingerprints {
		d.replays = opts.sharedMemo
		if d.replays == nil {
			d.replays = newReplayMemo()
		}
		if !opts.FollowKeyedRows {
			d.align = map[alignKey]ndlog.At{}
		}
	}
	d.pool = newCandidatePool(baseWorld, opts.parallelism(), &d.stats)
	defer d.pool.drain()

	// Step 1: find the seeds and check comparability (§4.2-4.3).
	t0 := time.Now()
	seedGT, err := goodTree.FindSeed()
	if err != nil {
		return nil, failf(SeedTypeMismatch, "cannot find seed of good tree: %v", err)
	}
	seedBT, err := badTree.FindSeed()
	if err != nil {
		return nil, failf(SeedTypeMismatch, "cannot find seed of bad tree: %v", err)
	}
	seedG := ndlog.At{Node: seedGT.Vertex.Node, Tuple: seedGT.Vertex.Tuple, Stamp: seedGT.Vertex.At}
	seedB := ndlog.At{Node: seedBT.Vertex.Node, Tuple: seedBT.Vertex.Tuple, Stamp: seedBT.Vertex.At}
	d.timings.FindSeed += time.Since(t0)
	if seedG.Tuple.Table != seedB.Tuple.Table {
		return nil, &DiagnosisError{
			Kind: SeedTypeMismatch,
			Detail: fmt.Sprintf("good seed is a %s tuple but bad seed is a %s tuple; the events are not comparable",
				seedG.Tuple.Table, seedB.Tuple.Table),
			Tuple: seedB.Tuple,
			Node:  seedB.Node,
		}
	}
	// Extract the good chain (trigger path, seed to root).
	chainG, err := goodChain(goodTree)
	if err != nil {
		return nil, err
	}

	res := &Result{GoodSeed: seedG, BadSeed: seedB}
	for iter := 0; iter < opts.MaxRounds; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("diffprov: diagnosis interrupted after %d rounds: %w", iter, err)
		}
		res.Iterations = iter + 1
		// Step 2: find the first divergence (§4.4).
		t1 := time.Now()
		div, err := d.firstDivergence(chainG, world, seedB)
		d.timings.Divergence += time.Since(t1)
		if err != nil {
			return nil, err
		}
		if div == nil {
			// Trees are equivalent: done.
			res.Changes = mergeChanges(d.applied)
			res.Timings = d.timings
			res.FinalWorld = world
			if opts.Minimize && len(res.Changes) > 1 {
				if err := d.minimize(ctx, res, baseWorld, chainG, seedB); err != nil {
					return nil, err
				}
			}
			res.Stats = d.statsSnapshot()
			return res, nil
		}

		// Step 3: make the expected tuple appear (§4.5).
		t2 := time.Now()
		d.pending = nil
		err = d.makeAppear(world, div.level.derive, div.expected, &div.trigger, div.asOf.T, 0)
		d.timings.MakeAppear += time.Since(t2)
		if err != nil {
			if de, ok := err.(*DiagnosisError); ok {
				de.Attempted = append(de.Attempted, d.pending...)
			}
			return nil, err
		}
		if len(d.pending) == 0 {
			// The §4.4 prediction could not bind a change: every side of
			// the diverging derivation already exists in the bad world
			// (an intra-tick race) or the only applicable change was
			// applied in an earlier round and swallowed again. Fall back
			// to searching the logged mutable events themselves (§4.9),
			// pruned by the symptom's static slice.
			c, err := d.fallbackChange(ctx, world, chainG, seedB, div)
			if err != nil {
				return nil, err
			}
			if c == nil {
				return nil, &DiagnosisError{
					Kind:   NoProgress,
					Detail: fmt.Sprintf("divergence at %s on %s but no applicable change found (possible race condition, §4.9)", div.expected.Tuple, div.expected.Node),
					Tuple:  div.expected.Tuple,
					Node:   div.expected.Node,
				}
			}
			d.pending = []replay.Change{*c}
		}

		// Step 4: update T_B (§4.6) by rolling the clone forward.
		t3 := time.Now()
		newWorld, err := d.applyCached(ctx, world, d.pending, true)
		d.timings.UpdateTree += time.Since(t3)
		if err != nil {
			return nil, fmt.Errorf("diffprov: updating the bad tree: %w", err)
		}
		world = newWorld
		res.Rounds = append(res.Rounds, Round{Changes: d.pending})
		d.applied = append(d.applied, d.pending...)
		d.pending = nil
	}
	return nil, &DiagnosisError{
		Kind:      NoProgress,
		Detail:    fmt.Sprintf("trees still differ after %d rounds", opts.MaxRounds),
		Attempted: d.applied,
	}
}

// minimize greedily drops changes whose removal keeps the trees aligned,
// re-verifying each candidate subset against a fresh clone of the
// original bad execution. With a candidate pool, the remaining drop
// candidates are evaluated wave by wave in parallel: the lowest
// successful index of a wave is committed — exactly the candidate the
// sequential greedy scan would have committed, since every lower index
// provably failed against the same change list — and the trials beyond
// it (which the sequential scan would never have run against the old
// list) are discarded. A replay failure marks the candidate as
// non-droppable, unless the context was cancelled, which aborts the
// whole minimization.
func (d *diag) minimize(ctx context.Context, res *Result, baseWorld World, chainG []gLevel, seedB ndlog.At) error {
	changes := append([]replay.Change(nil), res.Changes...)
	dropped := func(i int) []replay.Change {
		return append(append([]replay.Change(nil), changes[:i]...), changes[i+1:]...)
	}
	if d.pool == nil {
		for i := 0; i < len(changes); {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("diffprov: minimization interrupted: %w", err)
			}
			candidate := dropped(i)
			t0 := time.Now()
			w, err := d.applyCached(ctx, baseWorld, candidate, false)
			d.timings.UpdateTree += time.Since(t0)
			if err != nil {
				if ctx.Err() != nil {
					return fmt.Errorf("diffprov: minimization interrupted: %w", err)
				}
				i++
				continue
			}
			t1 := time.Now()
			div, err := d.firstDivergence(chainG, w, seedB)
			d.timings.Divergence += time.Since(t1)
			if err == nil && div == nil {
				changes = candidate // the dropped change was redundant
				res.FinalWorld = w
				continue
			}
			i++
		}
		res.Changes = changes
		res.Timings = d.timings
		return nil
	}

	type trial struct {
		w       World
		err     error
		apply   time.Duration
		diverge time.Duration
	}
	for start := 0; start < len(changes); {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("diffprov: minimization interrupted: %w", err)
		}
		vals, ran, best := runCandidates(ctx, d.pool, len(changes)-start,
			func(w World, k int) (trial, bool) {
				candidate := dropped(start + k)
				var tr trial
				t0 := time.Now()
				cw, err := d.applyCached(ctx, w, candidate, false)
				tr.apply = time.Since(t0)
				if err != nil {
					tr.err = err
					return tr, false
				}
				t1 := time.Now()
				div, derr := d.firstDivergence(chainG, cw, seedB)
				tr.diverge = time.Since(t1)
				tr.w = cw
				return tr, derr == nil && div == nil
			})
		// Fold worker-local timings back in deterministically (index
		// order) and surface replays aborted by cancellation.
		for k := range vals {
			if !ran[k] {
				continue
			}
			d.timings.UpdateTree += vals[k].apply
			d.timings.Divergence += vals[k].diverge
			if vals[k].err != nil && ctx.Err() != nil {
				return fmt.Errorf("diffprov: minimization interrupted: %w", vals[k].err)
			}
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("diffprov: minimization interrupted: %w", err)
		}
		if best < 0 {
			break // no remaining change is redundant
		}
		j := start + best
		changes = append(changes[:j], changes[j+1:]...)
		res.FinalWorld = vals[best].w
		start = j
	}
	res.Changes = changes
	res.Timings = d.timings
	return nil
}

// goodChain extracts the derivation levels along the good tree's trigger
// chain, ordered from the seed to the root.
func goodChain(t *provenance.Tree) ([]gLevel, error) {
	chain, err := t.TriggerChain()
	if err != nil {
		return nil, err
	}
	var levels []gLevel
	for i := len(chain) - 1; i >= 0; i-- {
		n := chain[i]
		if n.Vertex.Type != provenance.Derive {
			continue
		}
		head := headOf(n)
		levels = append(levels, gLevel{derive: n, headAt: head})
	}
	return levels, nil
}

// headOf returns the head occurrence of a DERIVE tree node: its parent
// APPEAR (or the vertex's own tuple when the derive is the tree root).
func headOf(dn *provenance.Tree) ndlog.At {
	if dn.Parent != nil && dn.Parent.Vertex.Type == provenance.Appear {
		v := dn.Parent.Vertex
		return ndlog.At{Node: v.Node, Tuple: v.Tuple, Stamp: v.At}
	}
	v := dn.Vertex
	return ndlog.At{Node: v.Node, Tuple: v.Tuple, Stamp: v.At}
}

// childAt describes one body occurrence of a derivation in the good tree.
type childAt struct {
	at    ndlog.At
	cause *provenance.Tree // the INSERT or DERIVE beneath it (nil if absent)
	base  bool             // cause is an INSERT
}

// gChildrenOf extracts the body occurrences of a DERIVE tree node in body
// order, along with the cause subtree under each.
func gChildrenOf(dn *provenance.Tree) ([]childAt, error) {
	out := make([]childAt, 0, len(dn.Children))
	for _, c := range dn.Children {
		v := c.Vertex
		var at ndlog.At
		causeHolder := c
		switch v.Type {
		case provenance.Appear:
			at = ndlog.At{Node: v.Node, Tuple: v.Tuple, Stamp: v.At}
		case provenance.Exist:
			at = ndlog.At{Node: v.Node, Tuple: v.Tuple, Stamp: v.Span.From}
			if len(c.Children) != 1 {
				return nil, fmt.Errorf("diffprov: EXIST %s has %d children", v.Tuple, len(c.Children))
			}
			causeHolder = c.Children[0] // the APPEAR
		default:
			return nil, fmt.Errorf("diffprov: DERIVE child is %s", v.Type)
		}
		ca := childAt{at: at}
		if len(causeHolder.Children) == 1 {
			cause := causeHolder.Children[0]
			ca.cause = cause
			ca.base = cause.Vertex.Type == provenance.Insert
		}
		out = append(out, ca)
	}
	return out, nil
}

func childAts(cs []childAt) []ndlog.At {
	out := make([]ndlog.At, len(cs))
	for i, c := range cs {
		out[i] = c.at
	}
	return out
}

// mergeChanges deduplicates changes that differ only in injection time
// (a later round may re-inject a tuple earlier), keeping the earliest.
func mergeChanges(cs []replay.Change) []replay.Change {
	type key struct {
		insert bool
		node   string
		tkey   string
	}
	best := map[key]int{}
	var out []replay.Change
	for _, c := range cs {
		k := key{c.Insert, c.Node, c.Tuple.Key()}
		if i, ok := best[k]; ok {
			if c.Tick < out[i].Tick {
				out[i] = c
			}
			continue
		}
		best[k] = len(out)
		out = append(out, c)
	}
	sortChanges(out)
	return out
}
