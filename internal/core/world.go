// Package core implements DiffProv, the differential provenance algorithm
// of the paper (§4): given a "good" provenance tree and a "bad" one, it
// computes a set of changes to mutable base tuples that transforms the bad
// tree into one equivalent to the good tree while preserving the bad
// tree's seed — the estimated root cause of the divergence.
package core

import (
	"context"

	"repro/internal/ndlog"
	"repro/internal/provenance"
	"repro/internal/replay"
)

// World is the bad execution as DiffProv sees it: a provenance graph plus
// the temporal state store behind it, and the ability to clone the
// execution with counterfactual changes applied (§4.6). Declarative
// systems implement it with the replay engine; instrumented systems (the
// simulated Hadoop MapReduce) implement it by re-running the job.
type World interface {
	// Program returns the derivation rules (or the external
	// specification) governing the world.
	Program() *ndlog.Program
	// Graph returns the provenance graph of the execution.
	Graph() *provenance.Graph
	// Exists reports whether a state tuple existed at the given time.
	Exists(node string, t ndlog.Tuple, at ndlog.Stamp) bool
	// OccurredBefore reports whether an event tuple occurred at or
	// before the given tick.
	OccurredBefore(node string, t ndlog.Tuple, tick int64) bool
	// FirstOccurrence returns the earliest tick (at or before the given
	// tick) at which the tuple appeared, if any.
	FirstOccurrence(node string, t ndlog.Tuple, tick int64) (int64, bool)
	// TuplesAt returns the tuples of a table existing at a time.
	TuplesAt(node, table string, at ndlog.Stamp) []ndlog.Tuple
	// TuplesMatchingAt is TuplesAt restricted to tuples whose columns
	// satisfy the match constraints; engine-backed worlds answer it from
	// the table's secondary hash indexes when one covers the columns.
	TuplesMatchingAt(node, table string, at ndlog.Stamp, match []ndlog.Match) []ndlog.Tuple
	// Nodes lists the nodes of the system.
	Nodes() []string
	// IsMutable reports whether DiffProv may change the base tuple.
	IsMutable(node string, t ndlog.Tuple) bool
	// Apply clones the world, rolls it forward with the changes
	// injected, and returns the new world. The receiver is unchanged.
	// The roll-forward honors the context's cancellation and deadline.
	Apply(ctx context.Context, changes []replay.Change) (World, error)
}

// ParallelWorld is implemented by worlds that can fan counterfactual
// replays out over private workers. ForkWorker returns a world equivalent
// to the receiver backed by its own replay-session clone (sharing the
// base session's prefix cache), safe to Apply concurrently with the
// receiver and with other workers; JoinWorker folds a quiescent worker's
// replay statistics back into the receiver. The imperative substrates
// (the simulated MapReduce jobs) deliberately do not implement it —
// re-running a job concurrently with itself has no determinism guarantee
// — so diagnoses over them fall back to sequential evaluation.
type ParallelWorld interface {
	World
	ForkWorker() World
	JoinWorker(worker World)
}

// cumulativeWorld exposes the counterfactual changes already folded into
// a world, so the replay memo can key on the full cumulative list.
type cumulativeWorld interface {
	appliedChanges() []replay.Change
}

// eventLister exposes the base-event log of the ORIGINAL execution, in
// schedule order, so the §4.9 fallback can enumerate logged mutable
// events as counterfactual candidates. Imperative substrates (the
// simulated MapReduce jobs) have no event log and do not implement it;
// diagnoses over them simply skip the fallback.
type eventLister interface {
	BaseEvents() []replay.Event
}

// ndlogWorld adapts a replay.Session (plus accumulated changes) to World.
type ndlogWorld struct {
	session *replay.Session
	changes []replay.Change
	engine  *ndlog.Engine
	graph   *provenance.Graph
}

// NewWorld wraps a replay session as a DiffProv world. The session's
// execution must be complete (Run already called).
func NewWorld(s *replay.Session) (World, error) {
	e, g, err := s.Graph()
	if err != nil {
		return nil, err
	}
	return &ndlogWorld{session: s, engine: e, graph: g}, nil
}

func (w *ndlogWorld) Program() *ndlog.Program  { return w.session.Program() }
func (w *ndlogWorld) Graph() *provenance.Graph { return w.graph }
func (w *ndlogWorld) Nodes() []string          { return w.engine.Nodes() }

func (w *ndlogWorld) Exists(node string, t ndlog.Tuple, at ndlog.Stamp) bool {
	return w.engine.Exists(node, t, at)
}

func (w *ndlogWorld) OccurredBefore(node string, t ndlog.Tuple, tick int64) bool {
	_, ok := w.FirstOccurrence(node, t, tick)
	return ok
}

func (w *ndlogWorld) FirstOccurrence(node string, t ndlog.Tuple, tick int64) (int64, bool) {
	best, found := int64(0), false
	for _, iv := range w.engine.History(node, t) {
		if iv.From.T <= tick && (!found || iv.From.T < best) {
			best, found = iv.From.T, true
		}
	}
	return best, found
}

func (w *ndlogWorld) TuplesAt(node, table string, at ndlog.Stamp) []ndlog.Tuple {
	return w.engine.TuplesAt(node, table, at)
}

func (w *ndlogWorld) TuplesMatchingAt(node, table string, at ndlog.Stamp, match []ndlog.Match) []ndlog.Tuple {
	return w.engine.TuplesMatchingAt(node, table, at, match)
}

func (w *ndlogWorld) IsMutable(node string, t ndlog.Tuple) bool {
	return w.engine.IsMutable(node, t)
}

func (w *ndlogWorld) Apply(ctx context.Context, changes []replay.Change) (World, error) {
	all := append(append([]replay.Change(nil), w.changes...), changes...)
	e, g, err := w.session.ReplayWithContext(ctx, all)
	if err != nil {
		return nil, err
	}
	return &ndlogWorld{session: w.session, changes: all, engine: e, graph: g}, nil
}

func (w *ndlogWorld) appliedChanges() []replay.Change { return w.changes }

// BaseEvents returns the original execution's logged base events in
// schedule order (injected counterfactual changes are not part of the
// log; they are the w.changes overlay).
func (w *ndlogWorld) BaseEvents() []replay.Event { return w.session.Log().Events() }

// ForkWorker clones the session (sharing the log contents, the memoized
// query-time replay, and the prefix cache) so the worker's counterfactual
// replays are isolated from the receiver's. Replay statistics accumulate
// on the clone until JoinWorker.
func (w *ndlogWorld) ForkWorker() World {
	return &ndlogWorld{session: w.session.Clone(), changes: w.changes, engine: w.engine, graph: w.graph}
}

func (w *ndlogWorld) JoinWorker(worker World) {
	if nw, ok := worker.(*ndlogWorld); ok {
		w.session.AbsorbStats(nw.session)
	}
}
