package core

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/replay"
)

// parallelism resolves Options.Parallelism: 0 means GOMAXPROCS, negative
// means sequential.
func (o *Options) parallelism() int {
	switch {
	case o.Parallelism > 0:
		return o.Parallelism
	case o.Parallelism < 0:
		return 1
	default:
		return runtime.GOMAXPROCS(0)
	}
}

// candidatePool fans independent counterfactual candidate evaluations out
// over a bounded set of worker worlds (private replay-session clones that
// share the base session's prefix cache, so workers reuse each other's
// materialized prefixes instead of re-forking cold). Workers are forked
// lazily and reused across waves; drain() folds their accumulated replay
// statistics back into the base world.
type candidatePool struct {
	base  ParallelWorld
	sem   chan struct{}
	stats *DiagStats

	mu   sync.Mutex
	idle []World
}

// newCandidatePool builds a pool of up to par workers over base, or
// returns nil when parallel evaluation is pointless (par <= 1) or
// unsupported (the world cannot fork workers — imperative substrates
// re-run jobs whose concurrent determinism is not guaranteed).
func newCandidatePool(base World, par int, stats *DiagStats) *candidatePool {
	pw, ok := base.(ParallelWorld)
	if !ok || par <= 1 {
		return nil
	}
	return &candidatePool{base: pw, sem: make(chan struct{}, par), stats: stats}
}

func (p *candidatePool) acquire() World {
	p.mu.Lock()
	if n := len(p.idle); n > 0 {
		w := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return w
	}
	p.mu.Unlock()
	return p.base.ForkWorker()
}

func (p *candidatePool) release(w World) {
	p.mu.Lock()
	p.idle = append(p.idle, w)
	p.mu.Unlock()
}

// drain joins every idle worker back into the base world, merging the
// replay statistics its session accumulated. All evaluations must have
// completed.
func (p *candidatePool) drain() {
	if p == nil {
		return
	}
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.mu.Unlock()
	for _, w := range idle {
		p.base.JoinWorker(w)
	}
}

// runCandidates evaluates candidates 0..n-1 on the pool's workers, each
// call receiving a private worker world. eval reports whether its
// candidate succeeded; the final selection is by enumeration index, never
// completion order: best is the lowest evaluated index that succeeded
// (-1 if none). Candidates are launched in index order, and once a
// success at index j is known no candidate beyond j is started — every
// index <= best is therefore guaranteed to have been evaluated, which is
// what makes the parallel outcome identical to a sequential
// first-success scan. A context error stops launching; in-flight
// evaluations finish.
func runCandidates[T any](ctx context.Context, p *candidatePool, n int,
	eval func(w World, idx int) (T, bool)) (vals []T, ran []bool, best int) {
	vals = make([]T, n)
	ran = make([]bool, n)
	okAt := make([]bool, n)
	var mu sync.Mutex
	bestKnown := n
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			break
		}
		p.sem <- struct{}{}
		mu.Lock()
		cut := bestKnown
		mu.Unlock()
		if i > cut {
			<-p.sem
			break
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-p.sem }()
			w := p.acquire()
			atomic.AddInt64(&p.stats.ParallelCandidates, 1)
			v, ok := eval(w, i)
			p.release(w)
			mu.Lock()
			vals[i], ran[i], okAt[i] = v, true, ok
			if ok && i < bestKnown {
				bestKnown = i
			}
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	best = -1
	for i := 0; i < n; i++ {
		if ran[i] && okAt[i] {
			best = i
			break
		}
	}
	return vals, ran, best
}

// maxReplayMemo bounds the number of memoized counterfactual worlds
// (each holds a replayed engine and provenance graph).
const maxReplayMemo = 32

// replayMemo dedupes counterfactual replays. Replay is deterministic, so
// two applications of the same cumulative change list over the same base
// execution yield byte-identical worlds; the memo keys on the exact
// ordered list (order matters — injected changes take base sequence
// numbers in list order) and returns the previously replayed world.
type replayMemo struct {
	mu      sync.Mutex
	entries map[string]World
	order   []string // insertion order, for FIFO eviction
}

func newReplayMemo() *replayMemo {
	return &replayMemo{entries: map[string]World{}}
}

func (m *replayMemo) get(key string) (World, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	w, ok := m.entries[key]
	return w, ok
}

func (m *replayMemo) put(key string, w World) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.entries[key]; ok {
		return
	}
	if len(m.order) >= maxReplayMemo {
		delete(m.entries, m.order[0])
		m.order = m.order[1:]
	}
	m.entries[key] = w
	m.order = append(m.order, key)
}

// replayKey renders the full cumulative change list (the world's own
// accumulated changes followed by the new ones) as a memo key.
func replayKey(applied, changes []replay.Change) string {
	var sb strings.Builder
	for _, cs := range [2][]replay.Change{applied, changes} {
		for _, c := range cs {
			fmt.Fprintf(&sb, "%v|%s|%s|%d\n", c.Insert, c.Node, c.Tuple.Key(), c.Tick)
		}
	}
	return sb.String()
}

// applyCached is World.Apply routed through the diagnosis' replay memo.
// Only worlds that expose their cumulative change list participate (the
// key must identify the full counterfactual, not just the delta); others
// replay directly. store controls whether a freshly replayed world is
// published back into the memo: UPDATETREE rounds store (a later
// minimization trial or AutoDiagnose candidate that reconstructs the
// same cumulative list skips the replay), while minimization trials only
// read — their keys are never queried twice, so storing them would just
// pin dozens of forked engines in memory for zero hits.
func (d *diag) applyCached(ctx context.Context, w World, changes []replay.Change, store bool) (World, error) {
	cw, ok := w.(cumulativeWorld)
	if d.replays == nil || !ok {
		return w.Apply(ctx, changes)
	}
	key := replayKey(cw.appliedChanges(), changes)
	if cached, hit := d.replays.get(key); hit {
		atomic.AddInt64(&d.stats.CandidatesDeduped, 1)
		return cached, nil
	}
	nw, err := w.Apply(ctx, changes)
	if err != nil {
		return nil, err
	}
	if store {
		d.replays.put(key, nw)
	}
	return nw, nil
}
