package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/ndlog"
	"repro/internal/replay"
)

// TestHandWrittenInverseRules exercises §4.5's "in cases when automatic
// inverting is not possible, we depend on the model to provide inverse
// rules": the head computation uses a builtin the solver cannot invert,
// but the rule declares an inverse assignment.
func TestHandWrittenInverseRules(t *testing.T) {
	// encode(x) = x*2 via min2 (builtins have no registered inverse for
	// min2, so automatic inversion fails); the model supplies the
	// inverse X := Y / 2.
	prog := ndlog.MustParse(`
table cfg/1 base mutable;
table req/1 event base;
table resp/2 event;

rule enc resp(R, Y) :-
    req(R),
    cfg(X),
    Y := min2(X + X, 1000000),
    inverse X := Y / 2.
`)
	build := func(x int64, r int64) (*replay.Session, ndlog.Tuple) {
		s := replay.NewSession(prog)
		if err := s.Insert("n", ndlog.NewTuple("cfg", ndlog.Int(x)), 0); err != nil {
			t.Fatal(err)
		}
		if err := s.Insert("n", ndlog.NewTuple("req", ndlog.Int(r)), 10); err != nil {
			t.Fatal(err)
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return s, ndlog.NewTuple("resp", ndlog.Int(r), ndlog.Int(2*x))
	}
	sG, respG := build(21, 1) // good: resp(1, 42)
	sB, respB := build(50, 2) // bad: resp(2, 100); root cause cfg(50) should be cfg(21)

	_, gg, err := sG.Graph()
	if err != nil {
		t.Fatal(err)
	}
	_, gb, err := sB.Graph()
	if err != nil {
		t.Fatal(err)
	}
	good := treeFor(t, gg, "n", respG)
	bad := treeFor(t, gb, "n", respB)
	world, err := NewWorld(sB)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Diagnose(context.Background(), good, bad, world, Options{})
	if err != nil {
		t.Fatalf("Diagnose: %v", err)
	}
	if len(res.Changes) != 1 {
		t.Fatalf("Δ = %v, want 1", res.Changes)
	}
	// Wait — the expected bad-world response is resp(2, 42) (same Y as
	// the good one, since Y is untainted by the seed), so X must be
	// recovered as 21 via the hand-written inverse.
	if !res.Changes[0].Tuple.Equal(ndlog.NewTuple("cfg", ndlog.Int(21))) {
		t.Fatalf("change = %v, want cfg(21) via the inverse rule", res.Changes[0])
	}
}

// TestHashedDependencySucceedsViaDefaulting documents a behavior beyond
// the paper: a hashed dependency (§4.7's failure example) does not stop
// the diagnosis when the hashed input is untainted — the solver simply
// keeps the good execution's value instead of inverting the hash, and
// the counterfactual still aligns the trees.
func TestHashedDependencySucceedsViaDefaulting(t *testing.T) {
	prog := ndlog.MustParse(`
table secret/1 base mutable;
table req/1 event base;
table token/2 event;

rule tk token(R, hash(S)) :- req(R), secret(S).
`)
	build := func(secret string, r int64) (*replay.Session, ndlog.Tuple) {
		s := replay.NewSession(prog)
		if err := s.Insert("n", ndlog.NewTuple("secret", ndlog.Str(secret)), 0); err != nil {
			t.Fatal(err)
		}
		if err := s.Insert("n", ndlog.NewTuple("req", ndlog.Int(r)), 10); err != nil {
			t.Fatal(err)
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return s, ndlog.NewTuple("token", ndlog.Int(r), ndlog.ID(ndlog.Hash64(ndlog.Str(secret))))
	}
	sG, tokG := build("alpha", 1)
	sB, tokB := build("beta", 2)
	_, gg, err := sG.Graph()
	if err != nil {
		t.Fatal(err)
	}
	_, gb, err := sB.Graph()
	if err != nil {
		t.Fatal(err)
	}
	good := treeFor(t, gg, "n", tokG)
	bad := treeFor(t, gb, "n", tokB)
	world, err := NewWorld(sB)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Diagnose(context.Background(), good, bad, world, Options{})
	if err != nil {
		t.Fatalf("Diagnose: %v", err)
	}
	if len(res.Changes) != 1 || !res.Changes[0].Tuple.Equal(ndlog.NewTuple("secret", ndlog.Str("alpha"))) {
		t.Fatalf("Δ = %v, want secret(alpha): the hash input is untainted and defaulted", res.Changes)
	}
}

// TestNonInvertibleConstraintFails exercises §4.7's third failure mode at
// the solver level: a violated constraint whose only free slot is not a
// plain variable cannot be repaired, so verification fails with a
// NonInvertible diagnostic. (End-to-end scenarios rarely reach this state
// because expected values are forward-computed; see
// TestHashedDependencySucceedsViaDefaulting.)
func TestNonInvertibleConstraintFails(t *testing.T) {
	prog := ndlog.MustParse(`
table acl/1 base mutable;
table pkt/1 event base;
table out/1 event;

rule r out(D) :- pkt(D), acl(A), matches(D, prefix(A, 24)).
`)
	rule := prog.Rule("r")
	gChildren := []ndlog.At{
		{Node: "n", Tuple: ndlog.NewTuple("pkt", ndlog.MustParseIP("1.2.3.4"))},
		{Node: "n", Tuple: ndlog.NewTuple("acl", ndlog.MustParseIP("1.2.3.0"))},
	}
	s, err := newSolver(prog, rule, gChildren)
	if err != nil {
		t.Fatal(err)
	}
	// Bad trigger from a different /24: the defaulted acl base cannot
	// satisfy matches(D, prefix(A, 24)), and the prefix(...) call slot is
	// not a repairable variable.
	badTrig := ndlog.At{Node: "n", Tuple: ndlog.NewTuple("pkt", ndlog.MustParseIP("9.9.9.9"))}
	if err := s.bindTrigger(0, badTrig); err != nil {
		t.Fatal(err)
	}
	expected := ndlog.At{Node: "n", Tuple: ndlog.NewTuple("out", ndlog.MustParseIP("9.9.9.9"))}
	if err := s.bindHead(expected); err != nil {
		t.Fatal(err)
	}
	s.propagate(&expected)
	_, verr := s.verify(expected)
	if verr == nil {
		t.Fatal("unrepairable constraint must fail verification")
	}
	de, ok := verr.(*DiagnosisError)
	if !ok {
		t.Fatalf("error = %v, want DiagnosisError", verr)
	}
	if de.Kind != NonInvertible {
		t.Fatalf("kind = %s, want NonInvertible", de.Kind)
	}
	if !strings.Contains(de.Error(), "constraint") {
		t.Errorf("diagnostic should mention the constraint: %v", de)
	}
}

// TestEquivalentExecutionsDiagnoseEmpty: when the "bad" event was in fact
// treated the same as the reference (modulo the seed), the diagnosis
// succeeds with an empty Δ — there is nothing to fix.
func TestEquivalentExecutionsDiagnoseEmpty(t *testing.T) {
	prog := ndlog.MustParse(`
table flag/1 base mutable;
table req/1 event base;
table ok/1 event;

rule chk ok(R) :- req(R), flag(F), R == hash(F) & 1023.
`)
	build := func(f string) (*replay.Session, ndlog.Int) {
		s := replay.NewSession(prog)
		if err := s.Insert("n", ndlog.NewTuple("flag", ndlog.Str(f)), 0); err != nil {
			t.Fatal(err)
		}
		r := ndlog.Int(int64(ndlog.Hash64(ndlog.Str(f)) & 1023))
		if err := s.Insert("n", ndlog.NewTuple("req", r), 10); err != nil {
			t.Fatal(err)
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return s, r
	}
	sG, rG := build("alpha")
	sB, rB := build("beta")
	_, gg, _ := sG.Graph()
	_, gb, _ := sB.Graph()
	good := treeFor(t, gg, "n", ndlog.NewTuple("ok", rG))
	bad := treeFor(t, gb, "n", ndlog.NewTuple("ok", rB))
	world, err := NewWorld(sB)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Diagnose(context.Background(), good, bad, world, Options{})
	if err != nil {
		t.Fatalf("Diagnose: %v", err)
	}
	if len(res.Changes) != 0 {
		t.Fatalf("Δ = %v, want empty: the executions are equivalent modulo the seed", res.Changes)
	}
}

// TestPreimageEnumeration exercises the "several preimages, try all of
// them" path: x*x-style multi-candidate inversion via xor composition.
func TestPreimageEnumeration(t *testing.T) {
	// q = x ^ k has exactly one preimage; chain two levels so that the
	// inversion result feeds a side-tuple lookup.
	prog := ndlog.MustParse(`
table k1/1 base mutable;
table req/1 event base;
table out/2 event;

rule o out(R, X ^ 12345) :- req(R), k1(X).
`)
	build := func(x int64, r int64) (*replay.Session, ndlog.Tuple) {
		s := replay.NewSession(prog)
		if err := s.Insert("n", ndlog.NewTuple("k1", ndlog.Int(x)), 0); err != nil {
			t.Fatal(err)
		}
		if err := s.Insert("n", ndlog.NewTuple("req", ndlog.Int(r)), 10); err != nil {
			t.Fatal(err)
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return s, ndlog.NewTuple("out", ndlog.Int(r), ndlog.Int(x^12345))
	}
	sG, outG := build(7, 1)
	sB, outB := build(9, 2)
	_, gg, _ := sG.Graph()
	_, gb, _ := sB.Graph()
	good := treeFor(t, gg, "n", outG)
	bad := treeFor(t, gb, "n", outB)
	world, err := NewWorld(sB)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Diagnose(context.Background(), good, bad, world, Options{})
	if err != nil {
		t.Fatalf("Diagnose: %v", err)
	}
	if len(res.Changes) != 1 || !res.Changes[0].Tuple.Equal(ndlog.NewTuple("k1", ndlog.Int(7))) {
		t.Fatalf("Δ = %v, want k1(7) recovered by inverting the xor", res.Changes)
	}
}
