package core

import (
	"fmt"
	"sort"

	"repro/internal/ndlog"
	"repro/internal/provenance"
	"repro/internal/replay"
)

// candidate is one satisfying binding of a rule body in the bad world.
type candidate struct {
	env  ndlog.Env
	body []ndlog.At
}

// resolveArgMax checks that the expected binding would win the rule's
// priority selection in the bad world. If a competing binding wins
// instead (the paper's SDN2: a conflicting higher-priority rule installed
// by another controller app), the competitor's distinguishing tuple is
// suppressed. This iterates because several competitors may shadow the
// expected derivation.
func (d *diag) resolveArgMax(w World, rule *ndlog.Rule, trigIdx int, trigB ndlog.At, s *solver, children []childAt, expected ndlog.At, needBy int64) error {
	expectedKey := ndlog.BindingKey(s.envB)
	for guard := 0; guard < 16; guard++ {
		cands, err := d.joinCandidates(w, rule, trigIdx, trigB, endOfTick(needBy))
		if err != nil {
			return err
		}
		if len(cands) == 0 {
			return nil // the expected binding is pending insertion; nothing competes
		}
		winner := pickArgMax(cands, rule)
		if ndlog.BindingKey(winner.env) == expectedKey {
			return nil
		}
		// Also accept a winner that derives the same head (an equivalent
		// but differently-bound derivation).
		if head, err := evalHead(rule, winner.env, trigB.Node); err == nil && head.Tuple.Equal(expected.Tuple) && head.Node == expected.Node {
			return nil
		}
		// Suppress the competitor: delete its distinguishing side tuple.
		ch, err := d.competitorChange(w, rule, trigIdx, winner, s, children, needBy)
		if err != nil {
			return err
		}
		before := len(d.pending)
		d.addChange(ch)
		if len(d.pending) == before {
			// The suppressing change is already pending but its effect
			// is indirect (e.g. deleting the base tuple underives the
			// competitor only after replay): defer to the next round.
			return nil
		}
	}
	return failf(NoProgress, "could not resolve argmax conflicts for rule %s", rule.Name)
}

// competitorChange picks the winning competitor's side tuple to delete:
// the first mutable base tuple that differs from the expected binding's
// counterpart. When the competitor tuple is itself derived, its
// provenance in the bad world is traced down to a mutable base leaf
// (skipping leaves the expected derivation also depends on).
func (d *diag) competitorChange(w World, rule *ndlog.Rule, trigIdx int, winner candidate, s *solver, children []childAt, needBy int64) (replay.Change, error) {
	var immutableHit *DiagnosisError
	for k := range rule.Body {
		if k == trigIdx {
			continue
		}
		side := winner.body[k]
		exp, err := s.sideTuple(k)
		if err == nil && exp.Tuple.Equal(side.Tuple) && exp.Node == side.Node {
			continue // shared with the expected derivation: not the culprit
		}
		decl := d.prog.Decl(side.Tuple.Table)
		if decl == nil {
			continue
		}
		if decl.Base {
			if !w.IsMutable(side.Node, side.Tuple) {
				immutableHit = &DiagnosisError{
					Kind: ImmutableChange,
					Detail: fmt.Sprintf("the higher-priority tuple %s on %s shadows the expected derivation but is immutable",
						side.Tuple, side.Node),
					Tuple:     side.Tuple,
					Node:      side.Node,
					Attempted: []replay.Change{{Insert: false, Node: side.Node, Tuple: side.Tuple, Tick: d.deleteTick(w, side, needBy)}},
				}
				continue
			}
			return replay.Change{Insert: false, Node: side.Node, Tuple: side.Tuple, Tick: d.deleteTick(w, side, needBy)}, nil
		}
		// Derived competitor: trace its bad-world provenance to a
		// mutable base leaf not shared with the expected derivation.
		if ch, ok := d.traceCompetitorBase(w, side, children, k, needBy); ok {
			return ch, nil
		}
	}
	if immutableHit != nil {
		return replay.Change{}, immutableHit
	}
	return replay.Change{}, failf(NoProgress, "argmax competitor for rule %s has no mutable distinguishing tuple", rule.Name)
}

// traceCompetitorBase walks the bad-world provenance of a derived
// competitor tuple and returns a deletion of one of its mutable base
// leaves — excluding leaves that also support the expected derivation's
// good-world counterpart (shared infrastructure must survive).
func (d *diag) traceCompetitorBase(w World, side ndlog.At, children []childAt, k int, needBy int64) (replay.Change, bool) {
	g := w.Graph()
	ap := g.LastAppear(side.Node, side.Tuple)
	if ap == nil {
		return replay.Change{}, false
	}
	tree := g.Tree(ap.ID)
	// Collect the base leaves of the expected counterpart's good subtree.
	shared := map[string]bool{}
	if k < len(children) && children[k].cause != nil {
		children[k].cause.Walk(func(n *provenance.Tree) {
			if n.Vertex.Type == provenance.Insert {
				shared[n.Vertex.Node+"|"+n.Vertex.Tuple.Key()] = true
			}
		})
	}
	var pick *provenance.Vertex
	tree.Walk(func(n *provenance.Tree) {
		if pick != nil || n.Vertex.Type != provenance.Insert {
			return
		}
		key := n.Vertex.Node + "|" + n.Vertex.Tuple.Key()
		if shared[key] {
			return
		}
		if !w.IsMutable(n.Vertex.Node, n.Vertex.Tuple) {
			return
		}
		pick = n.Vertex
	})
	if pick == nil {
		return replay.Change{}, false
	}
	return replay.Change{Insert: false, Node: pick.Node, Tuple: pick.Tuple, Tick: d.deleteTick(w, ndlog.At{Node: pick.Node, Tuple: pick.Tuple}, needBy)}, true
}

// deleteTick picks when to inject a counterfactual deletion: shortly
// before the shadowed derivation is needed, but after the tuple's own
// insertion (a deletion scheduled before the insertion is a no-op).
func (d *diag) deleteTick(w World, side ndlog.At, needBy int64) int64 {
	tick := needBy - d.opts.InjectSlack
	if occ, ok := w.FirstOccurrence(side.Node, side.Tuple, needBy); ok && occ+1 > tick {
		tick = occ + 1
	}
	return tick
}

// joinCandidates enumerates the satisfying bindings of the rule body in
// the bad world at the given time, with the trigger atom fixed, and with
// pending changes taken into account. It mirrors the engine's evaluation
// (including constraints and assignments) so that the predicted argmax
// winner matches what replay will do.
func (d *diag) joinCandidates(w World, rule *ndlog.Rule, trigIdx int, trigB ndlog.At, asOf ndlog.Stamp) ([]candidate, error) {
	env := ndlog.Env{}
	if !ndlog.UnifyAtom(rule.Body[trigIdx], trigB.Node, trigB.Tuple, env) {
		return nil, failf(NoProgress, "trigger %s does not unify with %s", trigB.Tuple, rule.Body[trigIdx])
	}
	seed := candidate{env: env, body: make([]ndlog.At, len(rule.Body))}
	seed.body[trigIdx] = trigB
	all, err := d.joinRest(w, rule, trigIdx, trigB.Node, seed, 0, asOf)
	if err != nil {
		return nil, err
	}
	var sat []candidate
	for _, c := range all {
		ok := true
		for _, a := range rule.Assigns {
			v, err := a.Expr.Eval(c.env)
			if err != nil {
				ok = false
				break
			}
			c.env[a.Var] = v
		}
		if !ok {
			continue
		}
		for _, wc := range rule.Where {
			pass, err := ndlog.EvalBool(wc, c.env)
			if err != nil || !pass {
				ok = false
				break
			}
		}
		if ok {
			sat = append(sat, c)
		}
	}
	return sat, nil
}

func (d *diag) joinRest(w World, rule *ndlog.Rule, trigIdx int, evalNode string, c candidate, next int, asOf ndlog.Stamp) ([]candidate, error) {
	if next == len(rule.Body) {
		return []candidate{c}, nil
	}
	if next == trigIdx {
		return d.joinRest(w, rule, trigIdx, evalNode, c, next+1, asOf)
	}
	atom := rule.Body[next]
	decl := d.prog.Decl(atom.Table)
	if decl == nil {
		return nil, failf(NoProgress, "unknown table %s", atom.Table)
	}
	if decl.Event {
		return nil, nil // non-trigger event atoms never join
	}
	node, known, err := ndlog.ResolveLocation(atom.Loc, evalNode, c.env)
	if err != nil {
		return nil, failf(NoProgress, "%v", err)
	}
	var nodes []string
	if known {
		nodes = []string{node}
	} else {
		nodes = w.Nodes()
	}
	var out []candidate
	for _, nn := range nodes {
		for _, t := range d.tuplesAtWithPending(w, nn, atom.Table, asOf) {
			env2 := c.env.Clone()
			if !ndlog.UnifyAtom(atom, nn, t, env2) {
				continue
			}
			c2 := candidate{env: env2, body: make([]ndlog.At, len(c.body))}
			copy(c2.body, c.body)
			c2.body[next] = ndlog.At{Node: nn, Tuple: t}
			rest, err := d.joinRest(w, rule, trigIdx, evalNode, c2, next+1, asOf)
			if err != nil {
				return nil, err
			}
			out = append(out, rest...)
		}
	}
	return out, nil
}

// tuplesAtWithPending lists a table's tuples at a time, with pending
// inserts included and pending deletes excluded.
func (d *diag) tuplesAtWithPending(w World, node, table string, asOf ndlog.Stamp) []ndlog.Tuple {
	tuples := w.TuplesAt(node, table, asOf)
	skip := map[string]bool{}
	for _, p := range append(append([]replay.Change(nil), d.applied...), d.pending...) {
		if p.Node != node || p.Tuple.Table != table {
			continue
		}
		if p.Insert {
			dup := false
			for _, t := range tuples {
				if t.Key() == p.Tuple.Key() {
					dup = true
					break
				}
			}
			if !dup {
				tuples = append(tuples, p.Tuple)
			}
		} else {
			skip[p.Tuple.Key()] = true
		}
	}
	if len(skip) == 0 {
		return tuples
	}
	out := tuples[:0]
	for _, t := range tuples {
		if !skip[t.Key()] {
			out = append(out, t)
		}
	}
	return out
}

// pickArgMax selects the winning candidate exactly as the engine does:
// maximal argmax variable, ties broken on the canonical binding key.
func pickArgMax(cands []candidate, rule *ndlog.Rule) candidate {
	best := 0
	for i := 1; i < len(cands); i++ {
		bi := cands[i].env[rule.ArgMax]
		bb := cands[best].env[rule.ArgMax]
		if ndlog.Less(bb, bi) || (!ndlog.Less(bi, bb) && ndlog.BindingKey(cands[i].env) < ndlog.BindingKey(cands[best].env)) {
			best = i
		}
	}
	return cands[best]
}

// evalHead evaluates a rule head under a binding.
func evalHead(rule *ndlog.Rule, env ndlog.Env, evalNode string) (ndlog.At, error) {
	args := make([]ndlog.Value, len(rule.Head.Args))
	for j, e := range rule.Head.Args {
		v, err := e.Eval(env)
		if err != nil {
			return ndlog.At{}, err
		}
		args[j] = v
	}
	node, known, err := ndlog.ResolveLocation(rule.Head.Loc, evalNode, env)
	if err != nil || !known {
		return ndlog.At{}, fmt.Errorf("diffprov: unresolved head location")
	}
	return ndlog.At{Node: node, Tuple: ndlog.Tuple{Table: rule.Head.Table, Args: args}}, nil
}

// sortChanges orders changes deterministically for presentation.
func sortChanges(cs []replay.Change) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Tick != cs[j].Tick {
			return cs[i].Tick < cs[j].Tick
		}
		if cs[i].Node != cs[j].Node {
			return cs[i].Node < cs[j].Node
		}
		return cs[i].Tuple.Key() < cs[j].Tuple.Key()
	})
}
