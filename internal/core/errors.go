package core

import (
	"fmt"
	"strings"

	"repro/internal/ndlog"
	"repro/internal/replay"
)

// FailureKind classifies the three failure modes of §4.7 ("False
// negatives: DiffProv can fail for three reasons").
type FailureKind uint8

// The failure modes.
const (
	// SeedTypeMismatch: the seeds of the two trees have different types;
	// the events are not comparable and the operator must pick another
	// reference.
	SeedTypeMismatch FailureKind = iota
	// ImmutableChange: aligning the trees would require changing an
	// immutable tuple (an incoming packet, a pinned flow entry).
	ImmutableChange
	// NonInvertible: a computation on the derivation path cannot be
	// inverted (e.g. a hash) and no hand-written inverse is available.
	NonInvertible
	// NoProgress: an iteration produced no new changes yet the trees
	// remained different (e.g. a race or an unmodeled dependency).
	NoProgress
)

func (k FailureKind) String() string {
	switch k {
	case SeedTypeMismatch:
		return "seed type mismatch"
	case ImmutableChange:
		return "change to immutable tuple required"
	case NonInvertible:
		return "non-invertible computation"
	case NoProgress:
		return "no progress"
	default:
		return fmt.Sprintf("failure(%d)", uint8(k))
	}
}

// DiagnosisError is returned when DiffProv cannot align the trees. Per
// §4.7, it carries enough context for the operator to pick a better
// reference: what would have needed to change, and why it could not.
type DiagnosisError struct {
	Kind   FailureKind
	Detail string
	// Attempted lists the changes DiffProv would have liked to make
	// ("DiffProv can output the attempted change it would like to try,
	// which may still be a useful diagnostic clue").
	Attempted []replay.Change
	// Tuple is the tuple at which the failure occurred, if any.
	Tuple ndlog.Tuple
	// Node is the node of that tuple.
	Node string
}

func (e *DiagnosisError) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "diffprov: %s", e.Kind)
	if e.Detail != "" {
		fmt.Fprintf(&sb, ": %s", e.Detail)
	}
	if e.Tuple.Table != "" {
		fmt.Fprintf(&sb, " (at %s on %s)", e.Tuple, e.Node)
	}
	for _, c := range e.Attempted {
		fmt.Fprintf(&sb, "; attempted change: %s", c)
	}
	return sb.String()
}

// failf builds a DiagnosisError.
func failf(kind FailureKind, format string, args ...interface{}) *DiagnosisError {
	return &DiagnosisError{Kind: kind, Detail: fmt.Sprintf(format, args...)}
}
